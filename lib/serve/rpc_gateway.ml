(* A gateway topology on the simulator: clients speak the [src]
   encoding to a proxy, which relays each request to an echo backend
   speaking the [dst] encoding and relays the reply back.  The proxy
   never materializes values on the relay path: it executes fused
   forward stubs (Stub_forward) over the request and reply payloads —
   or, with [forward:false], the decode-then-reencode baseline the
   bench compares against.

   Framing is Rpc_serve's wire format on both hops.  The proxy owns the
   sequence space on the backend hop (one backend connection funnels
   every client), demultiplexing replies through a pending table back
   to the originating client connection and its original sequence
   number. *)

type route = {
  rt_name : string;
  rt_relay_req : Stub_forward.forward;  (* src payload -> dst payload *)
  rt_relay_rep : Stub_forward.forward;  (* dst payload -> src payload *)
}

type t = {
  gsim : Sim_core.t;
  src : Encoding.t;
  dst : Encoding.t;
  forward : bool;
  mf : int;  (* frame-length sanity bound, both hops *)
  cl_ingress : Link.t;  (* client -> proxy *)
  cl_egress : Link.t;  (* proxy -> client *)
  backend : Rpc_serve.t;
  bconn : Rpc_serve.conn;
  routes : (int * int, route) Hashtbl.t;
  pending : (int, gconn * int * route * Obs_request.record option) Hashtbl.t;
      (* proxy seq -> origin (plus the client hop's trace record) *)
  gw_domain : int;  (* request-recorder correlation domain, client hop *)
  mutable next_pseq : int;
  mutable next_conn : int;
  mutable g_requests_in : int;
  mutable g_relayed_req : int;
  mutable g_relayed_rep : int;
  mutable g_relay_errors : int;
  mutable g_unknown_op : int;
  mutable g_killed_conns : int;
  mutable g_bytes_in : int;
  mutable g_bytes_out : int;
}

and gconn = {
  g_id : int;
  g_gw : t;
  g_deliver : bytes -> unit;
  mutable g_closed : bool;
  mutable g_buf : bytes;  (* partial-frame input buffer *)
  mutable g_off : int;
  mutable g_len : int;
}

let c_gw_requests = Obs.counter "gateway.requests"
let c_gw_relay_errors = Obs.counter "gateway.relay_errors"

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff
let body_min = 12 (* iface + op + seq *)
let reply_body_min = 8 (* status + seq *)

(* The decode-then-reencode baseline the fused path is measured
   against: materialize every value, re-encode under the destination
   encoding.  Compiled through the same caches as any server stub. *)
let baseline_relay ~src ~dst ~mint ~named droots roots : Stub_forward.forward
    =
  let dec = Stub_opt.compile_decoder ~enc:src ~mint ~named droots in
  let re = Stub_opt.compile_encoder ~enc:dst ~mint ~named roots in
  fun r w -> re w (dec r)

let relay_for t ~(from_enc : Encoding.t) ~(to_enc : Encoding.t)
    (ms : Paper_fixtures.method_spec) : Stub_forward.forward =
  if t.forward then
    Stub_forward.compile_forward ~src:from_enc ~dst:to_enc
      ~mint:ms.Paper_fixtures.ms_mint ~named:ms.Paper_fixtures.ms_named
      (List.map Stub_opt.to_dplan_droot ms.Paper_fixtures.ms_droots)
      ms.Paper_fixtures.ms_roots
  else
    baseline_relay ~src:from_enc ~dst:to_enc ~mint:ms.Paper_fixtures.ms_mint
      ~named:ms.Paper_fixtures.ms_named ms.Paper_fixtures.ms_droots
      ms.Paper_fixtures.ms_roots

(* -- reply hop: backend -> proxy -> client -------------------------- *)

(* [rec_] is the client hop's trace record: delivery closes its egress
   phase and finishes it (the relay itself is instantaneous in virtual
   time, so there is no flush-wait on this hop). *)
let deliver_to_client ?rec_ t (g : gconn) data =
  t.g_bytes_out <- t.g_bytes_out + Bytes.length data;
  match rec_ with
  | None ->
      Link.transmit t.cl_egress ~bytes:(Bytes.length data) (fun () ->
          if not g.g_closed then g.g_deliver data)
  | Some r ->
      let tm =
        Link.transmit_timed t.cl_egress ~bytes:(Bytes.length data) (fun () ->
            Obs_request.mark r Obs_request.Egress_wire
              ~now_s:(Sim_core.now t.gsim);
            Obs_request.finish r;
            if not g.g_closed then g.g_deliver data)
      in
      Obs_request.add_wire_queue_ns r (Obs_request.ns_of_s tm.Link.tx_queue_s)

let error_frame status seq =
  let f = Bytes.create (4 + reply_body_min) in
  Bytes.set_int32_be f 0 (Int32.of_int reply_body_min);
  Bytes.set_int32_be f 4 (Int32.of_int (Rpc_serve.status_code status));
  Bytes.set_int32_be f 8 (Int32.of_int seq);
  f

(* Assemble one reply frame around a relayed payload writer: header,
   then one segment walk (the scatter-gather DMA of a real NIC; the
   relay engine's own copy accounting is already settled). *)
let payload_frame ~head ~fill (w : Mbuf.t) =
  let plen = Mbuf.pos w in
  let f = Bytes.create (4 + head + plen) in
  Bytes.set_int32_be f 0 (Int32.of_int (head + plen));
  fill f;
  let at = ref (4 + head) in
  Mbuf.iter_segments w (fun b off len ->
      Bytes.blit b off f !at len;
      at := !at + len);
  f

let on_backend_flush t data =
  List.iter
    (fun (status, pseq, payload) ->
      match Hashtbl.find_opt t.pending pseq with
      | None -> () (* originating client connection is gone *)
      | Some (g, seq, rt, rec_) -> (
          Hashtbl.remove t.pending pseq;
          (* the backend window just closed: the hop-1 record (finished
             at this same instant) owns it, so the client hop's record
             skips to now without charging a phase *)
          (match rec_ with
          | Some r -> Obs_request.skip_to r ~now_s:(Sim_core.now t.gsim)
          | None -> ());
          match status with
          | Rpc_serve.Sok -> (
              let r = Mbuf.reader_of_bytes payload in
              let w = Mbuf.acquire () in
              match rt.rt_relay_rep r w with
              | exception (Mbuf.Short_buffer | Codec.Decode_error _) ->
                  Mbuf.release w;
                  t.g_relay_errors <- t.g_relay_errors + 1;
                  Obs.incr c_gw_relay_errors 1;
                  (match rec_ with
                  | Some r ->
                      Obs_request.set_outcome r Obs_request.Rbad_request
                  | None -> ());
                  deliver_to_client ?rec_ t g
                    (error_frame Rpc_serve.Sbad_request seq)
              | () ->
                  let f =
                    payload_frame ~head:reply_body_min
                      ~fill:(fun f ->
                        Bytes.set_int32_be f 4
                          (Int32.of_int (Rpc_serve.status_code Rpc_serve.Sok));
                        Bytes.set_int32_be f 8 (Int32.of_int seq))
                      w
                  in
                  Mbuf.release w;
                  t.g_relayed_rep <- t.g_relayed_rep + 1;
                  deliver_to_client ?rec_ t g f)
          | err ->
              (* shed / error statuses pass through untouched *)
              (match rec_ with
              | Some r ->
                  Obs_request.set_outcome r
                    (Obs_request.outcome_of_fault_status
                       (Rpc_serve.status_code err))
              | None -> ());
              deliver_to_client ?rec_ t g (error_frame err seq)))
    (Rpc_serve.parse_replies data)

(* -- request hop: client -> proxy -> backend ------------------------ *)

let handle_frame t (g : gconn) ~body_off ~body_len =
  t.g_requests_in <- t.g_requests_in + 1;
  Obs.incr c_gw_requests 1;
  let iface = get_u32 g.g_buf body_off in
  let op = get_u32 g.g_buf (body_off + 4) in
  let seq = get_u32 g.g_buf (body_off + 8) in
  let rec_ =
    if Obs_request.enabled () then begin
      let now = Sim_core.now t.gsim in
      let r =
        match Obs_request.find ~domain:t.gw_domain ~conn:g.g_id ~seq with
        | Some r -> r
        | None ->
            (* fed straight into the parser: the timeline starts here *)
            Obs_request.client_send ~domain:t.gw_domain ~conn:g.g_id ~seq
              ~now_s:now
      in
      Obs_request.mark r Obs_request.Ingress_wire ~now_s:now;
      Obs_request.mark r Obs_request.Header_parse ~now_s:now;
      Some r
    end
    else None
  in
  match Hashtbl.find_opt t.routes (iface, op) with
  | None ->
      t.g_unknown_op <- t.g_unknown_op + 1;
      (match rec_ with
      | Some r -> Obs_request.set_outcome r Obs_request.Runknown_op
      | None -> ());
      deliver_to_client ?rec_ t g (error_frame Rpc_serve.Sunknown_op seq)
  | Some rt -> (
      let r =
        Mbuf.reader_of_bytes ~off:(body_off + body_min)
          ~len:(body_len - body_min) g.g_buf
      in
      let w = Mbuf.acquire () in
      match rt.rt_relay_req r w with
      | exception (Mbuf.Short_buffer | Codec.Decode_error _) ->
          Mbuf.release w;
          t.g_relay_errors <- t.g_relay_errors + 1;
          Obs.incr c_gw_relay_errors 1;
          (match rec_ with
          | Some r -> Obs_request.set_outcome r Obs_request.Rbad_request
          | None -> ());
          deliver_to_client ?rec_ t g (error_frame Rpc_serve.Sbad_request seq)
      | () ->
          let pseq = t.next_pseq land 0xffffffff in
          t.next_pseq <- t.next_pseq + 1;
          Hashtbl.add t.pending pseq (g, seq, rt, rec_);
          let f =
            payload_frame ~head:body_min
              ~fill:(fun f ->
                Bytes.set_int32_be f 4 (Int32.of_int iface);
                Bytes.set_int32_be f 8 (Int32.of_int op);
                Bytes.set_int32_be f 12 (Int32.of_int pseq))
              w
          in
          Mbuf.release w;
          t.g_relayed_req <- t.g_relayed_req + 1;
          (* hand the trace to the backend hop before relaying: its
             record (keyed by the backend's domain, the shared backend
             connection, and the proxy sequence) joins this trace at
             hop 1, so the two timelines stitch in the export *)
          (match rec_ with
          | Some r ->
              Obs_request.propagate
                ~domain:(Rpc_serve.trace_domain t.backend)
                ~conn:(Rpc_serve.conn_id t.bconn)
                ~seq:pseq
                ~trace:(Obs_request.trace_id r)
                ~hop:1
                ~sampled:(Obs_request.is_sampled r)
          | None -> ());
          Rpc_serve.send t.bconn f)

let rec parse_loop t (g : gconn) =
  if not g.g_closed then begin
    let avail = g.g_len - g.g_off in
    if avail >= 4 then begin
      let body_len = get_u32 g.g_buf g.g_off in
      if body_len < body_min || body_len > t.mf then begin
        (* protocol error: this client connection dies, others live *)
        t.g_killed_conns <- t.g_killed_conns + 1;
        g.g_closed <- true;
        g.g_off <- 0;
        g.g_len <- 0;
        if Obs_request.enabled () then
          Obs_request.abort_conn ~domain:t.gw_domain ~conn:g.g_id
            ~ensure_marker:true ~outcome:Obs_request.Rkilled
            ~now_s:(Sim_core.now t.gsim) ()
      end
      else if avail >= 4 + body_len then begin
        let body_off = g.g_off + 4 in
        g.g_off <- g.g_off + 4 + body_len;
        handle_frame t g ~body_off ~body_len;
        parse_loop t g
      end
    end
  end

let feed (g : gconn) data =
  if not g.g_closed then begin
    let t = g.g_gw in
    let n = Bytes.length data in
    t.g_bytes_in <- t.g_bytes_in + n;
    if g.g_len + n > Bytes.length g.g_buf && g.g_off > 0 then begin
      Bytes.blit g.g_buf g.g_off g.g_buf 0 (g.g_len - g.g_off);
      g.g_len <- g.g_len - g.g_off;
      g.g_off <- 0
    end;
    if g.g_len + n > Bytes.length g.g_buf then begin
      let cap = ref (2 * Bytes.length g.g_buf) in
      while g.g_len + n > !cap do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit g.g_buf 0 bigger 0 g.g_len;
      g.g_buf <- bigger
    end;
    Bytes.blit data 0 g.g_buf g.g_len n;
    g.g_len <- g.g_len + n;
    parse_loop t g
  end

let send (g : gconn) data =
  let t = g.g_gw in
  if not (Obs_request.enabled ()) then
    Link.transmit t.cl_ingress ~bytes:(Bytes.length data) (fun () ->
        feed g data)
  else begin
    let recs =
      Rpc_serve.trace_request_frames ~domain:t.gw_domain ~conn_id:g.g_id
        ~now_s:(Sim_core.now t.gsim) data
    in
    let tm =
      Link.transmit_timed t.cl_ingress ~bytes:(Bytes.length data) (fun () ->
          feed g data)
    in
    let qns = Obs_request.ns_of_s tm.Link.tx_queue_s in
    List.iter (fun r -> Obs_request.add_wire_queue_ns r qns) recs
  end

let connect t ~deliver =
  let id = t.next_conn in
  t.next_conn <- id + 1;
  {
    g_id = id;
    g_gw = t;
    g_deliver = deliver;
    g_closed = false;
    g_buf = Bytes.create 256;
    g_off = 0;
    g_len = 0;
  }

let conn_id (g : gconn) = g.g_id

let close_conn (g : gconn) =
  g.g_closed <- true;
  g.g_off <- 0;
  g.g_len <- 0;
  if Obs_request.enabled () then begin
    let t = g.g_gw in
    Obs_request.abort_conn ~domain:t.gw_domain ~conn:g.g_id
      ~outcome:Obs_request.Rdropped ~now_s:(Sim_core.now t.gsim) ()
  end

(* -- construction --------------------------------------------------- *)

let create ~sim ?(forward = true) ?(config = Rpc_serve.default_config) ~src
    ~dst () =
  let cl_ingress = Link.ethernet_100 ~sim in
  let cl_egress = Link.ethernet_100 ~sim in
  let b_ingress = Link.ethernet_100 ~sim in
  let b_egress = Link.ethernet_100 ~sim in
  let backend =
    Rpc_serve.create ~sim ~config ~ingress:b_ingress ~egress:b_egress ()
  in
  let tref = ref None in
  let bconn =
    Rpc_serve.connect backend ~deliver:(fun data ->
        match !tref with Some t -> on_backend_flush t data | None -> ())
  in
  let t =
    {
      gsim = sim;
      src;
      dst;
      forward;
      mf = config.Rpc_serve.max_frame;
      cl_ingress;
      cl_egress;
      backend;
      bconn;
      routes = Hashtbl.create 8;
      pending = Hashtbl.create 64;
      next_pseq = 0;
      next_conn = 0;
      gw_domain = Obs_request.new_domain ();
      g_requests_in = 0;
      g_relayed_req = 0;
      g_relayed_rep = 0;
      g_relay_errors = 0;
      g_unknown_op = 0;
      g_killed_conns = 0;
      g_bytes_in = 0;
      g_bytes_out = 0;
    }
  in
  tref := Some t;
  t

let register t (ms : Paper_fixtures.method_spec) ~iface ~op =
  (* the backend serves the echo under the destination encoding *)
  Rpc_serve.register t.backend (Rpc_serve.echo_op ~iface ~op ~enc:t.dst ms);
  Hashtbl.replace t.routes (iface, op)
    {
      rt_name = ms.Paper_fixtures.ms_name;
      rt_relay_req = relay_for t ~from_enc:t.src ~to_enc:t.dst ms;
      rt_relay_rep = relay_for t ~from_enc:t.dst ~to_enc:t.src ms;
    }

let backend t = t.backend
let trace_domain t = t.gw_domain

let route_name t ~iface ~op =
  Option.map (fun rt -> rt.rt_name) (Hashtbl.find_opt t.routes (iface, op))

let client_frame t (ms : Paper_fixtures.method_spec) ~iface ~op ~seq vals =
  Rpc_serve.request_frame (Rpc_serve.echo_op ~iface ~op ~enc:t.src ms) ~seq
    vals

(* -- accounting ----------------------------------------------------- *)

type stats = {
  gs_requests_in : int;
  gs_relayed_req : int;
  gs_relayed_rep : int;
  gs_relay_errors : int;
  gs_unknown_op : int;
  gs_killed_conns : int;
  gs_pending : int;
  gs_bytes_in : int;
  gs_bytes_out : int;
  gs_backend : Rpc_serve.stats;
}

let stats t =
  {
    gs_requests_in = t.g_requests_in;
    gs_relayed_req = t.g_relayed_req;
    gs_relayed_rep = t.g_relayed_rep;
    gs_relay_errors = t.g_relay_errors;
    gs_unknown_op = t.g_unknown_op;
    gs_killed_conns = t.g_killed_conns;
    gs_pending = Hashtbl.length t.pending;
    gs_bytes_in = t.g_bytes_in;
    gs_bytes_out = t.g_bytes_out;
    gs_backend = Rpc_serve.stats t.backend;
  }
