(** A gateway (proxy) topology on the discrete-event simulator.

    Clients speaking the [src] encoding connect to a proxy; the proxy
    relays each request over its own connection to an echo backend
    speaking the [dst] encoding, and relays the reply back.  Both hops
    use {!Rpc_serve}'s wire format and ride simulator {!Link}s.

    The relay path is the point: by default the proxy executes fused
    forward stubs ({!Stub_forward.compile_forward}) over request and
    reply payloads — same-encoding spans move as blits or
    scatter-gather borrows of the receive buffer, cross-encoding
    scalars convert in place, and no {!Value.t} is ever built.  With
    [forward:false] it runs the decode-then-reencode baseline
    (materialize every value through {!Stub_opt}, re-encode), which is
    what [bench gateway] compares against and what [make ci] exercises
    as the forced-fallback pass.

    Sequence numbers: the proxy owns the backend hop's sequence space
    (one backend connection funnels every client) and demultiplexes
    replies through a pending table back to the originating client
    connection and its original sequence number.  A relay failure in
    either direction earns the client an {!Rpc_serve.Sshed}-style
    error reply ({!Rpc_serve.Sbad_request}); backend shed/error
    statuses pass through untouched. *)

type t
type gconn

val create :
  sim:Sim_core.t ->
  ?forward:bool ->
  ?config:Rpc_serve.config ->
  src:Encoding.t ->
  dst:Encoding.t ->
  unit ->
  t
(** A proxy plus its backend server and the four links (client→proxy,
    proxy→client, proxy→backend, backend→proxy).  [forward] (default
    [true]) selects fused relaying; [config] is the backend server's
    configuration (and supplies the proxy's frame-length bound). *)

val register : t -> Paper_fixtures.method_spec -> iface:int -> op:int -> unit
(** Route one operation: registers the echo under the destination
    encoding on the backend and compiles the two relay closures
    (request: src→dst, reply: dst→src) through the shared caches. *)

val backend : t -> Rpc_serve.t
val route_name : t -> iface:int -> op:int -> string option

val trace_domain : t -> int
(** The client hop's {!Obs_request} correlation domain.  When the
    request recorder is enabled, {!send} opens one trace record per
    request frame here, and the proxy hands the trace id to the backend
    hop through the pending table — the backend's record (under
    {!Rpc_serve.trace_domain} of {!backend}) joins the same trace at
    hop 1, so the two per-hop timelines stitch to the exact
    client-observed round trip. *)

val connect : t -> deliver:(bytes -> unit) -> gconn
(** A client connection; reply frames arrive at [deliver] after the
    proxy→client link delay. *)

val conn_id : gconn -> int

val send : gconn -> bytes -> unit
(** Transmit raw bytes over the client→proxy link. *)

val feed : gconn -> bytes -> unit
(** Hand bytes straight to the proxy's frame parser (the byte-exact
    seam the fault tests drive).  Partial frames buffer per
    connection; a bad length prefix kills exactly this connection. *)

val close_conn : gconn -> unit

val client_frame :
  t -> Paper_fixtures.method_spec -> iface:int -> op:int -> seq:int ->
  Value.t array -> bytes
(** A complete request frame under the {e client} ([src]) encoding. *)

type stats = {
  gs_requests_in : int;  (** complete request frames parsed *)
  gs_relayed_req : int;  (** requests relayed to the backend *)
  gs_relayed_rep : int;  (** Ok replies relayed to clients *)
  gs_relay_errors : int;  (** relays that raised (client got Sbad_request) *)
  gs_unknown_op : int;
  gs_killed_conns : int;  (** client connections killed by framing errors *)
  gs_pending : int;  (** requests awaiting a backend reply *)
  gs_bytes_in : int;
  gs_bytes_out : int;
  gs_backend : Rpc_serve.stats;
}

val stats : t -> stats
