(** A concurrent RPC server loop on the discrete-event simulator.

    This is the paper's stubs put under real traffic: N simulated
    connections feed length-prefixed request frames into a demultiplexer
    that routes by (interface id, operation id) to per-interface
    compiled plans — the encoder and decoder closures come out of the
    shared {!Plan_cache} via {!Stub_opt}, so every registered operation
    rides the same optimized marshal path the benchmarks measure.  The
    shape follows an event-loop server: per-connection producers push
    bytes in, the server executes decode → handler → encode out of
    pooled {!Mbuf} writers on a serial virtual CPU, and replies drain
    per connection through coalesced flushes (one wire message carrying
    every reply that became ready inside the flush window).

    {2 Backpressure}

    Accepted-but-incomplete requests are bounded by
    [config.max_in_flight].  A request arriving at the budget is {e
    shed}: the server answers immediately with an explicit
    {!Sshed} reject frame rather than queueing without bound — the
    client knows to back off (the bundled workload retransmits once).
    Shedding happens before the body is decoded, so overload costs the
    server only the frame header parse.

    {2 Fault containment}

    A malformed length prefix kills exactly the connection that sent it
    (with a pinned {!Diag}-formatted error recorded in {!diags});
    a well-framed body that fails to decode earns an {!Sbad_request}
    reply and the connection lives on; an unknown interface/op id earns
    {!Sunknown_op}.  Every failure path releases its pooled writers —
    {!Mbuf.pool_stats} returns to baseline, which the fault-injection
    tests assert.

    {2 Wire format}

    Big-endian throughout.  Request frame:
    [len:u32] [iface:u32] [op:u32] [seq:u32] [payload...], where [len]
    counts the body (everything after the length word).  Reply frame:
    [len:u32] [status:u32] [seq:u32] [payload...]. *)

(** {1 Server} *)

type t

type config = {
  max_in_flight : int;
      (** backpressure budget: accepted requests not yet replied *)
  max_in_flight_per_conn : int option;
      (** fairness cap on one connection's share of the budget: a
          connection already holding this many in-flight requests is
          shed even while global slots remain, so a pipelining hog
          cannot starve its peers ([None] = global budget only; the
          hog-vs-peers latency test pins the effect). *)
  max_frame : int;  (** bodies larger than this are a protocol error *)
  service_fixed_s : float;
      (** virtual seconds of server CPU per request, fixed part *)
  service_per_byte_s : float;  (** ... plus this per body byte *)
  flush_delay_s : float;
      (** reply coalescing window: replies becoming ready within this
          window of each other leave in one wire message *)
}

val default_config : config
(** 32 in flight (no per-connection cap), 1 MiB frames, 150us + 1ns/B
    service, 50us flush. *)

(** One registered operation: the request/reply marshal specs plus the
    handler.  The encoder and decoder are compiled through the shared
    plan cache at {!register} time. *)
type op_spec = {
  os_iface : int;
  os_op : int;
  os_name : string;
  os_enc : Encoding.t;
  os_mint : Mint.t;
  os_named : (string * (Mint.idx * Pres.t)) list;
  os_req_roots : Plan_compile.root list;
  os_req_droots : Stub_opt.droot list;
  os_reply_roots : Plan_compile.root list;
  os_handler : Value.t array -> Value.t array;
}

val echo_op :
  iface:int -> op:int -> enc:Encoding.t -> Paper_fixtures.method_spec ->
  op_spec
(** The identity service on one of the paper's bench operations: decode
    the request, re-encode the same values as the reply.  Replies are
    therefore byte-identical to request payloads, which is what the
    differential tests pin. *)

val create :
  sim:Sim_core.t -> ?config:config -> ingress:Link.t -> egress:Link.t ->
  unit -> t
(** A server on the given simulator.  [ingress] carries request frames
    from every connection (the shared NIC receive side), [egress] the
    reply flushes; both serialize, so heavy traffic queues exactly as it
    would on one host's wire. *)

val register : t -> op_spec -> unit
(** Add the operation to the demux table (replacing any previous entry
    for the same (iface, op)), compiling its plans through the cache. *)

val trace_domain : t -> int
(** This server's {!Obs_request} correlation domain: trace records for
    its requests are keyed [(trace_domain, conn id, seq)].  Unique per
    server instance, so gateways and backends sharing a process never
    collide. *)

(** {1 Connections} *)

type conn

val connect : t -> deliver:(bytes -> unit) -> conn
(** A new connection whose reply flushes arrive at [deliver] (after the
    egress link's delay).  Connection ids count up from 0 per server. *)

val conn_id : conn -> int

val send : conn -> bytes -> unit
(** Transmit raw bytes from the client over the ingress link; they are
    fed to the server's frame parser on arrival.  When the request
    recorder is enabled, a trace record is opened per complete request
    frame at this (client-transmit) instant — the recorder-off path is
    the historical one, untouched. *)

val trace_request_frames :
  domain:int -> conn_id:int -> now_s:float -> bytes -> Obs_request.record list
(** Open a trace record for every complete request frame in the buffer
    (oldest first), as {!send} does — exposed for callers that transmit
    over their own links, e.g. the gateway's client side.  [] when the
    recorder is disabled. *)

val feed : conn -> bytes -> unit
(** Hand bytes straight to the server's frame parser, bypassing the
    link — the fault-injection tests use this for byte-exact control.
    Partial frames are buffered per connection until completed. *)

val close_conn : conn -> unit
(** The client vanishes: pending input is discarded (a partial frame is
    recorded as a truncation error), queued replies are dropped and
    their writers released, and later frames or flushes for this
    connection are ignored.  Other connections are unaffected. *)

(** {1 Frames (client side)} *)

type status = Sok | Sshed | Sbad_request | Sunknown_op

val status_code : status -> int
val status_of_code : int -> status option

val request_frame :
  op_spec -> seq:int -> Value.t array -> bytes
(** A complete request frame for the operation, payload encoded with the
    same cached encoder the server's echo baseline uses. *)

val parse_replies : bytes -> (status * int * bytes) list
(** Split one delivered flush into [(status, seq, payload)] reply
    frames.  Flushes always carry whole frames. *)

(** {1 Accounting} *)

type stats = {
  st_frames_in : int;  (** complete request frames parsed *)
  st_bytes_in : int;
  st_bytes_out : int;
  st_accepted : int;
  st_shed : int;  (** requests refused at the in-flight budget *)
  st_shed_per_conn : int;
      (** of those, refused by the per-connection fairness cap while
          global slots were still free *)
  st_bad_request : int;  (** well-framed bodies that failed to decode *)
  st_unknown_op : int;
  st_ok_replies : int;
  st_flushes : int;  (** wire messages carrying replies *)
  st_coalesced : int;  (** replies that shared a flush with an earlier one *)
  st_dropped_replies : int;  (** replies discarded because the connection died *)
  st_killed_conns : int;  (** connections killed by protocol errors *)
  st_in_flight_hw : int;  (** high-water mark of the in-flight gauge *)
}

val stats : t -> stats

val diags : t -> string list
(** Every error this server recorded, {!Diag}-formatted, oldest first.
    The fault-injection tests pin these strings. *)

val in_flight : t -> int

(** {1 The bundled demo/bench workload}

    A socket-free closed-loop workload: [conns] connections each issue
    [requests_per_conn] echo requests of one paper payload, one
    outstanding request per connection, retrying a shed request once
    (counted as a retransmit) before giving up on it.  Deterministic:
    all time is virtual, so requests/sec and shed rates are exactly
    reproducible. *)

type sweep_point = {
  sp_conns : int;
  sp_requests : int;  (** logical requests issued *)
  sp_ok : int;
  sp_shed_final : int;  (** requests abandoned after the retry was shed too *)
  sp_retransmits : int;
  sp_duration_s : float;  (** virtual time of the last reply *)
  sp_rps : float;  (** completed requests per virtual second *)
  sp_shed_rate : float;  (** shed replies / frames sent *)
  sp_p50_us : float;  (** client-observed round-trip latency, virtual *)
  sp_p99_us : float;
  sp_diff_ok : bool;
      (** every Ok reply payload was byte-identical to its request's *)
  sp_stats : stats;
}

val run_workload :
  ?enc:Encoding.t ->
  ?payload:[ `Ints | `Rects | `Dirents ] ->
  ?payload_bytes:int ->
  ?requests_per_conn:int ->
  ?config:config ->
  ?retry:bool ->
  conns:int ->
  unit ->
  sweep_point
(** Defaults: XDR, 1 KiB integer arrays, 100 requests per connection,
    {!default_config}, retry on. *)
