(* The server loop.  See the .mli for the wire format and policies; the
   implementation notes that matter:

   - The server CPU is serial, modelled exactly like Link's wire
     ([cpu_busy_until]): an accepted request starts service when the CPU
     frees up, so a burst builds a queue and the in-flight count is that
     queue plus the request being served.  Backpressure falls out: once
     the queue reaches [max_in_flight], arrivals are shed with a header
     parse only.

   - A reply payload is encoded into its own pooled writer and copied
     segment-wise into the connection's outgoing writer under the frame
     header.  The copy is unavoidable — the frame's length word must
     precede a payload of unknown size, and borrowing from the payload
     writer would dangle once it is released back to the pool — but it
     is one segment walk, never a flatten.

   - Flushes coalesce per connection with a cancellable timer: the
     first reply arms it, replies landing inside the window ride along,
     connection death cancels it.  All reply frames queued at fire time
     leave as one wire message. *)

type status = Sok | Sshed | Sbad_request | Sunknown_op

let status_code = function
  | Sok -> 0
  | Sshed -> 1
  | Sbad_request -> 2
  | Sunknown_op -> 3

let status_of_code = function
  | 0 -> Some Sok
  | 1 -> Some Sshed
  | 2 -> Some Sbad_request
  | 3 -> Some Sunknown_op
  | _ -> None

type config = {
  max_in_flight : int;
  max_in_flight_per_conn : int option;
  max_frame : int;
  service_fixed_s : float;
  service_per_byte_s : float;
  flush_delay_s : float;
}

let default_config =
  {
    max_in_flight = 32;
    max_in_flight_per_conn = None;
    max_frame = 1 lsl 20;
    service_fixed_s = 150e-6;
    service_per_byte_s = 1e-9;
    flush_delay_s = 50e-6;
  }

type op_spec = {
  os_iface : int;
  os_op : int;
  os_name : string;
  os_enc : Encoding.t;
  os_mint : Mint.t;
  os_named : (string * (Mint.idx * Pres.t)) list;
  os_req_roots : Plan_compile.root list;
  os_req_droots : Stub_opt.droot list;
  os_reply_roots : Plan_compile.root list;
  os_handler : Value.t array -> Value.t array;
}

let echo_op ~iface ~op ~enc (ms : Paper_fixtures.method_spec) =
  {
    os_iface = iface;
    os_op = op;
    os_name = ms.Paper_fixtures.ms_name;
    os_enc = enc;
    os_mint = ms.Paper_fixtures.ms_mint;
    os_named = ms.Paper_fixtures.ms_named;
    os_req_roots = ms.Paper_fixtures.ms_roots;
    os_req_droots = ms.Paper_fixtures.ms_droots;
    os_reply_roots = ms.Paper_fixtures.ms_roots;
    os_handler = (fun vs -> vs);
  }

(* Process-wide instruments (the registry owns names for the process
   lifetime, so these register once at module load).  Per-connection
   latency histograms are memoized by connection id for the same
   reason: servers come and go within a process — every bench sweep
   point builds one — and re-registering "serve.conn.N.latency_ns"
   would raise Duplicate_metric. *)
let c_frames_in = Obs.counter "serve.frames_in"
let c_accepted = Obs.counter "serve.accepted"
let c_shed = Obs.counter "serve.shed"
let c_errors = Obs.counter "serve.errors"
let c_flushes = Obs.counter "serve.flushes"
let c_retransmits = Obs.counter "serve.retransmits"
let g_in_flight = Obs.gauge "serve.in_flight"
let h_latency = Obs.hist "serve.latency_ns"

let conn_hists : (int, Obs.hist) Hashtbl.t = Hashtbl.create 16

let conn_hist id =
  match Hashtbl.find_opt conn_hists id with
  | Some h -> h
  | None ->
      let h = Obs.hist (Printf.sprintf "serve.conn.%d.latency_ns" id) in
      Hashtbl.add conn_hists id h;
      h

type op_entry = {
  oe_spec : op_spec;
  oe_decode : Stub_opt.decoder;
  oe_encode : Stub_opt.encoder;
}

type t = {
  sim : Sim_core.t;
  cfg : config;
  ingress : Link.t;
  egress : Link.t;
  ops : (int * int, op_entry) Hashtbl.t;
  mutable next_conn : int;
  mutable in_flight : int;
  mutable cpu_busy_until : float;
  mutable diag_log : Diag.t list;  (* newest first *)
  mutable s_frames_in : int;
  mutable s_bytes_in : int;
  mutable s_bytes_out : int;
  mutable s_accepted : int;
  mutable s_shed : int;
  mutable s_shed_per_conn : int;
  mutable s_bad_request : int;
  mutable s_unknown_op : int;
  mutable s_ok_replies : int;
  mutable s_flushes : int;
  mutable s_coalesced : int;
  mutable s_dropped_replies : int;
  mutable s_killed_conns : int;
  mutable s_in_flight_hw : int;
  rec_domain : int;  (* request-recorder correlation domain *)
}

type conn = {
  c_id : int;
  c_server : t;
  c_deliver : bytes -> unit;
  mutable c_closed : bool;
  mutable c_in_flight : int;  (* this connection's share of the budget *)
  mutable c_buf : bytes;  (* partial-frame input buffer *)
  mutable c_off : int;  (* consumed prefix of c_buf *)
  mutable c_len : int;  (* valid prefix of c_buf *)
  mutable c_out : Mbuf.t option;  (* queued reply frames *)
  mutable c_out_count : int;  (* replies queued in c_out *)
  mutable c_flush : Sim_core.handle option;
  mutable c_recs : Obs_request.record list;
      (* newest first: trace records of the replies queued in c_out *)
}

let create ~sim ?(config = default_config) ~ingress ~egress () =
  {
    sim;
    cfg = config;
    ingress;
    egress;
    ops = Hashtbl.create 8;
    next_conn = 0;
    in_flight = 0;
    cpu_busy_until = 0.;
    diag_log = [];
    s_frames_in = 0;
    s_bytes_in = 0;
    s_bytes_out = 0;
    s_accepted = 0;
    s_shed = 0;
    s_shed_per_conn = 0;
    s_bad_request = 0;
    s_unknown_op = 0;
    s_ok_replies = 0;
    s_flushes = 0;
    s_coalesced = 0;
    s_dropped_replies = 0;
    s_killed_conns = 0;
    s_in_flight_hw = 0;
    rec_domain = Obs_request.new_domain ();
  }

let trace_domain t = t.rec_domain

let register t spec =
  let decode =
    Stub_opt.compile_decoder ~enc:spec.os_enc ~mint:spec.os_mint
      ~named:spec.os_named spec.os_req_droots
  in
  let encode =
    Stub_opt.compile_encoder ~enc:spec.os_enc ~mint:spec.os_mint
      ~named:spec.os_named spec.os_reply_roots
  in
  Hashtbl.replace t.ops
    (spec.os_iface, spec.os_op)
    { oe_spec = spec; oe_decode = decode; oe_encode = encode }

let connect t ~deliver =
  let id = t.next_conn in
  t.next_conn <- id + 1;
  {
    c_id = id;
    c_server = t;
    c_deliver = deliver;
    c_closed = false;
    c_in_flight = 0;
    c_buf = Bytes.create 256;
    c_off = 0;
    c_len = 0;
    c_out = None;
    c_out_count = 0;
    c_flush = None;
    c_recs = [];
  }

let conn_id c = c.c_id
let in_flight t = t.in_flight
let diags t = List.rev_map Diag.to_string t.diag_log

let record_diag t fmt =
  Printf.ksprintf
    (fun msg ->
      t.diag_log <-
        { Diag.severity = Diag.Error_sev; loc = Loc.dummy;
          message = "serve: " ^ msg }
        :: t.diag_log;
      Obs.incr c_errors 1)
    fmt

(* -- framing ------------------------------------------------------- *)

let body_min = 12 (* iface + op + seq *)
let reply_body_min = 8 (* status + seq *)

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff

let set_gauge_in_flight t =
  Obs.set_gauge g_in_flight (float_of_int t.in_flight);
  if t.in_flight > t.s_in_flight_hw then t.s_in_flight_hw <- t.in_flight

(* Tear a connection down: discard buffered input, cancel the pending
   flush, release the outgoing writer (counting its queued replies as
   dropped).  Shared by voluntary close and protocol-error kill.  The
   flight recorder gets every in-flight record of the connection before
   the state is discarded — queued replies, requests still on the CPU
   queue, replies riding the egress wire — with the terminal outcome,
   so a dead connection's partial timelines land in the ring instead of
   vanishing with it. *)
let teardown c ~outcome =
  let t = c.c_server in
  c.c_closed <- true;
  c.c_off <- 0;
  c.c_len <- 0;
  (match c.c_flush with
  | Some h ->
      Sim_core.cancel h;
      c.c_flush <- None
  | None -> ());
  c.c_recs <- [];
  (match c.c_out with
  | Some f ->
      t.s_dropped_replies <- t.s_dropped_replies + c.c_out_count;
      c.c_out <- None;
      c.c_out_count <- 0;
      Mbuf.release f
  | None -> ());
  if Obs_request.enabled () then
    Obs_request.abort_conn ~domain:t.rec_domain ~conn:c.c_id
      ~ensure_marker:(outcome = Obs_request.Rkilled)
      ~outcome ~now_s:(Sim_core.now t.sim) ()

let close_conn c =
  if not c.c_closed then begin
    let t = c.c_server in
    let pending = c.c_len - c.c_off in
    if pending > 0 then
      record_diag t
        "connection %d closed mid-frame (%d buffered bytes discarded)" c.c_id
        pending;
    teardown c ~outcome:Obs_request.Rdropped
  end

let kill c fmt =
  Printf.ksprintf
    (fun msg ->
      let t = c.c_server in
      record_diag t "connection %d: %s" c.c_id msg;
      t.s_killed_conns <- t.s_killed_conns + 1;
      teardown c ~outcome:Obs_request.Rkilled)
    fmt

(* -- reply path ---------------------------------------------------- *)

let flush c =
  let t = c.c_server in
  c.c_flush <- None;
  match c.c_out with
  | None -> ()
  | Some f ->
      c.c_out <- None;
      c.c_out_count <- 0;
      let recs = List.rev c.c_recs in
      c.c_recs <- [];
      let data = Mbuf.contents f in
      Mbuf.release f;
      t.s_flushes <- t.s_flushes + 1;
      Obs.incr c_flushes 1;
      t.s_bytes_out <- t.s_bytes_out + Bytes.length data;
      if recs = [] then
        Link.transmit t.egress ~bytes:(Bytes.length data) (fun () ->
            if not c.c_closed then c.c_deliver data)
      else begin
        (* the records' cursors sit at enqueue time; the flush firing
           closes their flush-wait phase, delivery closes egress *)
        let now = Sim_core.now t.sim in
        List.iter
          (fun r -> Obs_request.mark r Obs_request.Flush_wait ~now_s:now)
          recs;
        let tm =
          Link.transmit_timed t.egress ~bytes:(Bytes.length data) (fun () ->
              let now = Sim_core.now t.sim in
              List.iter
                (fun r ->
                  Obs_request.mark r Obs_request.Egress_wire ~now_s:now;
                  if c.c_closed then
                    Obs_request.set_outcome r Obs_request.Rdropped;
                  Obs_request.finish r)
                recs;
              if not c.c_closed then c.c_deliver data)
        in
        let qns = Obs_request.ns_of_s tm.Link.tx_queue_s in
        List.iter (fun r -> Obs_request.add_wire_queue_ns r qns) recs
      end

(* Append one reply frame to the connection's outgoing writer and make
   sure a flush is armed.  [payload] (when present) is copied segment
   by segment — the caller releases it.  [rec_] is the request's trace
   record: it rides the connection's reply queue until the coalesced
   flush carries it out (fault statuses stamp their outcome here, which
   is what forces the record into the flight ring at finish). *)
let enqueue_reply ?rec_ c status seq (payload : Mbuf.t option) =
  let t = c.c_server in
  if c.c_closed then begin
    t.s_dropped_replies <- t.s_dropped_replies + 1;
    match rec_ with
    | Some r ->
        Obs_request.set_outcome r Obs_request.Rdropped;
        Obs_request.finish r
    | None -> ()
  end
  else begin
    let f =
      match c.c_out with
      | Some f ->
          t.s_coalesced <- t.s_coalesced + 1;
          f
      | None ->
          let f = Mbuf.acquire () in
          c.c_out <- Some f;
          f
    in
    c.c_out_count <- c.c_out_count + 1;
    let plen = match payload with Some p -> Mbuf.pos p | None -> 0 in
    Mbuf.put_i32 f ~be:true (reply_body_min + plen);
    Mbuf.put_i32 f ~be:true (status_code status);
    Mbuf.put_i32 f ~be:true seq;
    (match payload with
    | None -> ()
    | Some p ->
        Mbuf.iter_segments p (fun b off len ->
            Mbuf.ensure f len;
            (* set_* offsets are cursor-relative *)
            Mbuf.set_bytes f 0 b off len;
            Mbuf.advance f len));
    (match rec_ with
    | Some r ->
        (match status with
        | Sok -> ()
        | s ->
            Obs_request.set_outcome r
              (Obs_request.outcome_of_fault_status (status_code s)));
        c.c_recs <- r :: c.c_recs
    | None -> ());
    match c.c_flush with
    | Some _ -> ()
    | None ->
        c.c_flush <-
          Some
            (Sim_core.schedule_cancellable t.sim ~delay:t.cfg.flush_delay_s
               (fun () -> flush c))
  end

(* Split the service window into its marshal and handler shares for the
   phase timeline: the per-byte cost is marshal work, halved between
   decode and encode, and the fixed cost is the handler.  All shares
   are integer nanoseconds computed against the record's cursor, so
   they telescope exactly with the surrounding boundaries.  A request
   that died in decode burned the whole window there. *)
let charge_service t r ~start ~body_len ~decode_only =
  Obs_request.mark r Obs_request.Queue_wait ~now_s:start;
  let service_ns =
    Obs_request.ns_of_s (Sim_core.now t.sim) - Obs_request.end_ns r
  in
  if decode_only then Obs_request.add_ns r Obs_request.Decode service_ns
  else begin
    let marshal_ns =
      min service_ns
        (Obs_request.ns_of_s
           (t.cfg.service_per_byte_s *. float_of_int body_len))
    in
    let dec = marshal_ns / 2 in
    Obs_request.add_ns r Obs_request.Decode dec;
    Obs_request.add_ns r Obs_request.Handler (service_ns - marshal_ns);
    Obs_request.add_ns r Obs_request.Encode (marshal_ns - dec)
  end

(* Service completion: runs on the virtual CPU once the request's slot
   comes up.  The work was spent either way; a connection that died in
   the meantime just loses the reply. *)
let complete c (entry : op_entry) ~seq ~body ~arrival ~start rec_ =
  let t = c.c_server in
  t.in_flight <- t.in_flight - 1;
  c.c_in_flight <- c.c_in_flight - 1;
  set_gauge_in_flight t;
  let body_len = Bytes.length body + body_min in
  if c.c_closed then begin
    t.s_dropped_replies <- t.s_dropped_replies + 1;
    match rec_ with
    | Some r ->
        charge_service t r ~start ~body_len ~decode_only:false;
        Obs_request.set_outcome r Obs_request.Rdropped;
        Obs_request.finish r
    | None -> ()
  end
  else begin
    let rd = Mbuf.reader_of_bytes body in
    match entry.oe_decode rd with
    | exception (Mbuf.Short_buffer | Codec.Decode_error _) ->
        (match rec_ with
        | Some r -> charge_service t r ~start ~body_len ~decode_only:true
        | None -> ());
        t.s_bad_request <- t.s_bad_request + 1;
        record_diag t "connection %d: undecodable %s request (seq %d, %d bytes)"
          c.c_id entry.oe_spec.os_name seq (Bytes.length body);
        enqueue_reply ?rec_ c Sbad_request seq None
    | vals ->
        let out = entry.oe_spec.os_handler vals in
        let p = Mbuf.acquire () in
        (match entry.oe_encode p out with
        | () ->
            (match rec_ with
            | Some r -> charge_service t r ~start ~body_len ~decode_only:false
            | None -> ());
            enqueue_reply ?rec_ c Sok seq (Some p);
            Mbuf.release p;
            t.s_ok_replies <- t.s_ok_replies + 1;
            let lat_ns = (Sim_core.now t.sim -. arrival) *. 1e9 in
            (match rec_ with
            | Some r ->
                Obs.observe_ex h_latency lat_ns
                  ~exemplar:(Obs_request.trace_id r)
            | None -> Obs.observe h_latency lat_ns);
            Obs.observe (conn_hist c.c_id) lat_ns
        | exception e ->
            Mbuf.release p;
            raise e)
  end

(* -- request path -------------------------------------------------- *)

let handle_frame c ~body_off ~body_len =
  let t = c.c_server in
  t.s_frames_in <- t.s_frames_in + 1;
  Obs.incr c_frames_in 1;
  let iface = get_u32 c.c_buf body_off in
  let op = get_u32 c.c_buf (body_off + 4) in
  let seq = get_u32 c.c_buf (body_off + 8) in
  (* correlate with the client-transmit record and close its wire and
     header phases — both boundaries land on this instant.  A frame fed
     straight into the parser (no client transmit) starts its timeline
     here, so fault-injected requests still reach the flight ring. *)
  let rec_ =
    if Obs_request.enabled () then begin
      let now = Sim_core.now t.sim in
      let r =
        match Obs_request.find ~domain:t.rec_domain ~conn:c.c_id ~seq with
        | Some r -> r
        | None ->
            Obs_request.client_send ~domain:t.rec_domain ~conn:c.c_id ~seq
              ~now_s:now
      in
      Obs_request.mark r Obs_request.Ingress_wire ~now_s:now;
      Obs_request.mark r Obs_request.Header_parse ~now_s:now;
      Some r
    end
    else None
  in
  match Hashtbl.find_opt t.ops (iface, op) with
  | None ->
      t.s_unknown_op <- t.s_unknown_op + 1;
      record_diag t "connection %d: unknown operation (iface %d, op %d)" c.c_id
        iface op;
      enqueue_reply ?rec_ c Sunknown_op seq None
  | Some entry ->
      (* fairness: one connection cannot pipeline its way to the whole
         budget — past its per-connection share it sheds even while
         global slots remain, so its peers' requests still land *)
      let conn_capped =
        match t.cfg.max_in_flight_per_conn with
        | Some cap -> c.c_in_flight >= cap
        | None -> false
      in
      if t.in_flight >= t.cfg.max_in_flight || conn_capped then begin
        t.s_shed <- t.s_shed + 1;
        if conn_capped && t.in_flight < t.cfg.max_in_flight then
          t.s_shed_per_conn <- t.s_shed_per_conn + 1;
        Obs.incr c_shed 1;
        enqueue_reply ?rec_ c Sshed seq None
      end else begin
        t.s_accepted <- t.s_accepted + 1;
        Obs.incr c_accepted 1;
        t.in_flight <- t.in_flight + 1;
        c.c_in_flight <- c.c_in_flight + 1;
        set_gauge_in_flight t;
        (* the input buffer is reused for the next frame, so the body
           must outlive it *)
        let body =
          Bytes.sub c.c_buf (body_off + body_min) (body_len - body_min)
        in
        let arrival = Sim_core.now t.sim in
        let service =
          t.cfg.service_fixed_s
          +. (t.cfg.service_per_byte_s *. float_of_int body_len)
        in
        let start = Float.max arrival t.cpu_busy_until in
        let finish = start +. service in
        t.cpu_busy_until <- finish;
        Sim_core.schedule t.sim ~delay:(finish -. arrival) (fun () ->
            complete c entry ~seq ~body ~arrival ~start rec_)
      end

let rec parse_loop c =
  let t = c.c_server in
  if not c.c_closed then begin
    let avail = c.c_len - c.c_off in
    if avail >= 4 then begin
      let body_len = get_u32 c.c_buf c.c_off in
      if body_len < body_min || body_len > t.cfg.max_frame then
        kill c "bad frame length %d (min %d, max %d)" body_len body_min
          t.cfg.max_frame
      else if avail >= 4 + body_len then begin
        let body_off = c.c_off + 4 in
        c.c_off <- c.c_off + 4 + body_len;
        handle_frame c ~body_off ~body_len;
        parse_loop c
      end
    end
  end

let feed c data =
  if not c.c_closed then begin
    let t = c.c_server in
    let n = Bytes.length data in
    t.s_bytes_in <- t.s_bytes_in + n;
    (* compact, then grow if the tail still does not fit *)
    if c.c_len + n > Bytes.length c.c_buf && c.c_off > 0 then begin
      Bytes.blit c.c_buf c.c_off c.c_buf 0 (c.c_len - c.c_off);
      c.c_len <- c.c_len - c.c_off;
      c.c_off <- 0
    end;
    if c.c_len + n > Bytes.length c.c_buf then begin
      let cap = ref (2 * Bytes.length c.c_buf) in
      while c.c_len + n > !cap do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit c.c_buf 0 bigger 0 c.c_len;
      c.c_buf <- bigger
    end;
    Bytes.blit data 0 c.c_buf c.c_len n;
    c.c_len <- c.c_len + n;
    parse_loop c
  end

(* Open a trace record for every complete request frame in [data] at
   the client-transmit instant — the gateway reuses this for the frames
   it sends over its own client link.  Returns the records oldest
   first; [] when the recorder is off or nothing parsed. *)
let trace_request_frames ~domain ~conn_id ~now_s data =
  if not (Obs_request.enabled ()) then []
  else begin
    let total = Bytes.length data in
    let rec go off acc =
      if off + 4 > total then acc
      else begin
        let body_len = get_u32 data off in
        if body_len < body_min || off + 4 + body_len > total then acc
        else begin
          let seq = get_u32 data (off + 12) in
          let r = Obs_request.client_send ~domain ~conn:conn_id ~seq ~now_s in
          go (off + 4 + body_len) (r :: acc)
        end
      end
    in
    List.rev (go 0 [])
  end

let send c data =
  let t = c.c_server in
  if not (Obs_request.enabled ()) then
    Link.transmit t.ingress ~bytes:(Bytes.length data) (fun () -> feed c data)
  else begin
    let recs =
      trace_request_frames ~domain:t.rec_domain ~conn_id:c.c_id
        ~now_s:(Sim_core.now t.sim) data
    in
    let tm =
      Link.transmit_timed t.ingress ~bytes:(Bytes.length data) (fun () ->
          feed c data)
    in
    let qns = Obs_request.ns_of_s tm.Link.tx_queue_s in
    List.iter (fun r -> Obs_request.add_wire_queue_ns r qns) recs
  end

(* -- client-side frame helpers ------------------------------------- *)

let request_frame spec ~seq vals =
  let encode =
    Stub_opt.compile_encoder ~enc:spec.os_enc ~mint:spec.os_mint
      ~named:spec.os_named spec.os_req_roots
  in
  let m = Mbuf.acquire () in
  encode m vals;
  let plen = Mbuf.pos m in
  let frame = Bytes.create (4 + body_min + plen) in
  Bytes.set_int32_be frame 0 (Int32.of_int (body_min + plen));
  Bytes.set_int32_be frame 4 (Int32.of_int spec.os_iface);
  Bytes.set_int32_be frame 8 (Int32.of_int spec.os_op);
  Bytes.set_int32_be frame 12 (Int32.of_int seq);
  let at = ref (4 + body_min) in
  Mbuf.iter_segments m (fun b off len ->
      Bytes.blit b off frame !at len;
      at := !at + len);
  Mbuf.release m;
  frame

let parse_replies data =
  let total = Bytes.length data in
  let rec go off acc =
    if off >= total then List.rev acc
    else begin
      if off + 4 > total then invalid_arg "Rpc_serve.parse_replies: torn frame";
      let body_len = get_u32 data off in
      if body_len < reply_body_min || off + 4 + body_len > total then
        invalid_arg "Rpc_serve.parse_replies: torn frame";
      let status =
        match status_of_code (get_u32 data (off + 4)) with
        | Some s -> s
        | None -> invalid_arg "Rpc_serve.parse_replies: bad status"
      in
      let seq = get_u32 data (off + 8) in
      let payload = Bytes.sub data (off + 12) (body_len - reply_body_min) in
      go (off + 4 + body_len) ((status, seq, payload) :: acc)
    end
  in
  go 0 []

(* -- accounting ---------------------------------------------------- *)

type stats = {
  st_frames_in : int;
  st_bytes_in : int;
  st_bytes_out : int;
  st_accepted : int;
  st_shed : int;
  st_shed_per_conn : int;
  st_bad_request : int;
  st_unknown_op : int;
  st_ok_replies : int;
  st_flushes : int;
  st_coalesced : int;
  st_dropped_replies : int;
  st_killed_conns : int;
  st_in_flight_hw : int;
}

let stats t =
  {
    st_frames_in = t.s_frames_in;
    st_bytes_in = t.s_bytes_in;
    st_bytes_out = t.s_bytes_out;
    st_accepted = t.s_accepted;
    st_shed = t.s_shed;
    st_shed_per_conn = t.s_shed_per_conn;
    st_bad_request = t.s_bad_request;
    st_unknown_op = t.s_unknown_op;
    st_ok_replies = t.s_ok_replies;
    st_flushes = t.s_flushes;
    st_coalesced = t.s_coalesced;
    st_dropped_replies = t.s_dropped_replies;
    st_killed_conns = t.s_killed_conns;
    st_in_flight_hw = t.s_in_flight_hw;
  }

(* -- the bundled closed-loop workload ------------------------------ *)

type sweep_point = {
  sp_conns : int;
  sp_requests : int;
  sp_ok : int;
  sp_shed_final : int;
  sp_retransmits : int;
  sp_duration_s : float;
  sp_rps : float;
  sp_shed_rate : float;
  sp_p50_us : float;
  sp_p99_us : float;
  sp_diff_ok : bool;
  sp_stats : stats;
}

let style_of_enc (enc : Encoding.t) =
  match enc.Encoding.name with
  | "cdr" -> `Corba
  | "xdr" -> `Rpcgen
  | _ -> `Fluke

let run_workload ?(enc = Encoding.xdr) ?(payload = `Ints) ?(payload_bytes = 1024)
    ?(requests_per_conn = 100) ?(config = default_config) ?(retry = true)
    ~conns () =
  let sim = Sim_core.create () in
  let ingress = Link.ethernet_100 ~sim in
  let egress = Link.ethernet_100 ~sim in
  let t = create ~sim ~config ~ingress ~egress () in
  let pc = Paper_fixtures.bench_presc (style_of_enc enc) in
  let op_name = Paper_fixtures.op_of_payload payload in
  let ms = Paper_fixtures.request_spec pc ~op:op_name in
  let spec = echo_op ~iface:1 ~op:1 ~enc ms in
  register t spec;
  let vals = [| Paper_fixtures.payload payload ~bytes:payload_bytes |] in
  let frame = request_frame spec ~seq:0 vals in
  let expect =
    Bytes.sub frame (4 + body_min) (Bytes.length frame - 4 - body_min)
  in
  let ok = ref 0
  and shed_final = ref 0
  and retransmits = ref 0
  and diff_ok = ref true
  and last_reply = ref 0.
  and latencies = ref [] in
  for cid = 0 to conns - 1 do
    let issued = ref 0 in
    let retried = ref false in
    let send_time = ref 0. in
    let the_conn = ref None in
    let send_current () =
      let seq = (cid * 1_000_000) + !issued in
      let f = Bytes.copy frame in
      Bytes.set_int32_be f 12 (Int32.of_int seq);
      send_time := Sim_core.now sim;
      send (Option.get !the_conn) f
    in
    let send_next () =
      if !issued < requests_per_conn then begin
        incr issued;
        retried := false;
        send_current ()
      end
    in
    let deliver data =
      List.iter
        (fun (status, _seq, pl) ->
          match status with
          | Sok ->
              incr ok;
              let now = Sim_core.now sim in
              latencies := (now -. !send_time) :: !latencies;
              if now > !last_reply then last_reply := now;
              if not (Bytes.equal pl expect) then diff_ok := false;
              send_next ()
          | Sshed ->
              if retry && not !retried then begin
                retried := true;
                incr retransmits;
                Obs.incr c_retransmits 1;
                (* back off a couple of round trips before retrying *)
                Sim_core.schedule sim ~delay:2e-3 send_current
              end else begin
                incr shed_final;
                send_next ()
              end
          | Sbad_request | Sunknown_op ->
              diff_ok := false;
              send_next ())
        (parse_replies data)
    in
    let conn = connect t ~deliver in
    the_conn := Some conn;
    (* stagger the first requests so connections do not move in
       lockstep *)
    Sim_core.schedule sim ~delay:(float_of_int cid *. 10e-6) send_next
  done;
  Sim_core.run sim;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let pct p =
    let n = Array.length lat in
    if n = 0 then 0.
    else lat.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let st = stats t in
  let duration = if !last_reply > 0. then !last_reply else Sim_core.now sim in
  let duration = if duration <= 0. then 1e-9 else duration in
  {
    sp_conns = conns;
    sp_requests = conns * requests_per_conn;
    sp_ok = !ok;
    sp_shed_final = !shed_final;
    sp_retransmits = !retransmits;
    sp_duration_s = duration;
    sp_rps = float_of_int !ok /. duration;
    sp_shed_rate =
      (if st.st_frames_in = 0 then 0.
       else float_of_int st.st_shed /. float_of_int st.st_frames_in);
    sp_p50_us = pct 0.5 *. 1e6;
    sp_p99_us = pct 0.99 *. 1e6;
    sp_diff_ok = !diff_ok;
    sp_stats = st;
  }
