type t = { lx : Idl_lexer.t; mutable last : Loc.t }

let make lx = { lx; last = Loc.dummy }
let of_string ?file src = make (Idl_lexer.of_string ?file src)

let peek t = fst (Idl_lexer.peek t.lx)
let peek2 t = Idl_lexer.peek2 t.lx

let next t =
  let tok, loc = Idl_lexer.next t.lx in
  t.last <- loc;
  tok

let cur_loc t = snd (Idl_lexer.peek t.lx)
let last_loc t = t.last

let syntax_error t ~expected =
  let tok, loc = Idl_lexer.peek t.lx in
  Diag.error ~loc "expected %s but found %a" expected Idl_token.pp tok

let expect t tok =
  let found = peek t in
  if Idl_token.equal found tok then ignore (next t)
  else syntax_error t ~expected:(Format.asprintf "%a" Idl_token.pp tok)

let accept t tok =
  if Idl_token.equal (peek t) tok then begin
    ignore (next t);
    true
  end
  else false

let expect_ident t =
  match peek t with
  | Idl_token.Ident s ->
      ignore (next t);
      s
  | Idl_token.Int_lit _ | Idl_token.Float_lit _ | Idl_token.Char_lit _
  | Idl_token.String_lit _ | Idl_token.Lbrace | Idl_token.Rbrace
  | Idl_token.Lparen | Idl_token.Rparen | Idl_token.Lbracket
  | Idl_token.Rbracket | Idl_token.Langle | Idl_token.Rangle | Idl_token.Semi
  | Idl_token.Colon | Idl_token.Coloncolon | Idl_token.Comma | Idl_token.Equal
  | Idl_token.Star | Idl_token.Plus | Idl_token.Minus | Idl_token.Slash
  | Idl_token.Percent | Idl_token.Pipe | Idl_token.Amp | Idl_token.Caret
  | Idl_token.Tilde | Idl_token.Lshift | Idl_token.Rshift | Idl_token.Question
  | Idl_token.At | Idl_token.Eof ->
      syntax_error t ~expected:"an identifier"

let accept_kw t kw =
  match peek t with
  | Idl_token.Ident s when s = kw ->
      ignore (next t);
      true
  | _ -> false

let expect_kw t kw =
  if not (accept_kw t kw) then syntax_error t ~expected:(Printf.sprintf "'%s'" kw)

let peek_is_kw t kw =
  match peek t with Idl_token.Ident s -> s = kw | _ -> false

let scoped_name t =
  let absolute = accept t Idl_token.Coloncolon in
  let first = expect_ident t in
  let rec rest acc =
    if accept t Idl_token.Coloncolon then rest (expect_ident t :: acc)
    else List.rev acc
  in
  let parts = rest [ first ] in
  if absolute then "" :: parts else parts

let comma_list t elem =
  let rec go acc =
    let x = elem t in
    if accept t Idl_token.Comma then go (x :: acc) else List.rev (x :: acc)
  in
  go []
