(** Constant-expression parsing and evaluation.

    Both the CORBA and ONC RPC IDLs allow constant expressions wherever
    a constant is required (array dimensions, bounds, case labels, const
    declarations).  The grammar and operator precedence follow CORBA 2.0
    (which is a superset of what rpcgen accepts): [|], [^], [&], [<<]
    [>>], [+] [-], [*] [/] [%], unary [- + ~], literals, parenthesised
    expressions, and scoped names referring to previously declared
    constants or enumerators. *)

val parse :
  Parser_util.t -> lookup:(Aoi.qname -> Aoi.const option) -> Aoi.const
(** Parse and evaluate a constant expression.  [lookup] resolves scoped
    names to previously evaluated constants.  Raises {!Diag.Error} on
    type errors (e.g. shifting a float) or unknown names. *)

val to_int : Aoi.const -> int64
(** Coerce to an integer, raising a diagnostic for non-integer consts.
    Enumerator references are not integers; callers that allow them must
    handle {!Aoi.Const_enum} themselves. *)

val positive_int : Aoi.const -> int
(** Coerce to a strictly positive OCaml int (for bounds/dimensions). *)
