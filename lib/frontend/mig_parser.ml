module P = Parser_util
module T = Idl_token

type scalar = Sint | Schar | Sbool

type mig_type =
  | Tscalar of scalar
  | Tfixed_array of scalar * int
  | Tcounted_array of scalar * int

type arg = { a_name : string; a_dir : Aoi.param_dir; a_type : mig_type }

type routine = {
  r_name : string;
  r_oneway : bool;
  r_args : arg list;
  r_msg_id : int64;
}

type spec = {
  sub_name : string;
  sub_base : int64;
  types : (string * mig_type) list;
  routines : routine list;
}

let scalar_of p name =
  match name with
  | "int" | "integer_t" -> Sint
  | "char" -> Schar
  | "boolean" | "boolean_t" -> Sbool
  | other ->
      Diag.error ~loc:(P.last_loc p)
        "MIG cannot express type '%s' (only scalars and arrays of scalars)"
        other

let rec mig_type p (types : (string * mig_type) list) : mig_type =
  if P.accept_kw p "array" then begin
    P.expect p T.Lbracket;
    if P.accept p T.Star then begin
      P.expect p T.Colon;
      let bound =
        match P.next p with
        | T.Int_lit n -> Int64.to_int n
        | _ -> P.syntax_error p ~expected:"an array bound"
      in
      P.expect p T.Rbracket;
      P.expect_kw p "of";
      match mig_type p types with
      | Tscalar s -> Tcounted_array (s, bound)
      | Tfixed_array _ | Tcounted_array _ ->
          Diag.error ~loc:(P.last_loc p)
            "MIG cannot express arrays of non-atomic types"
    end
    else begin
      let len =
        match P.next p with
        | T.Int_lit n -> Int64.to_int n
        | _ -> P.syntax_error p ~expected:"an array length"
      in
      P.expect p T.Rbracket;
      P.expect_kw p "of";
      match mig_type p types with
      | Tscalar s -> Tfixed_array (s, len)
      | Tfixed_array _ | Tcounted_array _ ->
          Diag.error ~loc:(P.last_loc p)
            "MIG cannot express arrays of non-atomic types"
    end
  end
  else
    let name = P.expect_ident p in
    match List.assoc_opt name types with
    | Some ty -> ty
    | None -> Tscalar (scalar_of p name)

let arg p types : arg =
  let dir =
    if P.accept_kw p "in" then Aoi.In
    else if P.accept_kw p "out" then Aoi.Out
    else if P.accept_kw p "inout" then Aoi.Inout
    else Aoi.In
  in
  let name = P.expect_ident p in
  P.expect p T.Colon;
  let ty = mig_type p types in
  { a_name = name; a_dir = dir; a_type = ty }

let routine p types ~oneway ~msg_id : routine =
  let name = P.expect_ident p in
  P.expect p T.Lparen;
  let args =
    if P.peek p = T.Rparen then []
    else
      let rec go acc =
        let a = arg p types in
        if P.accept p T.Semi then go (a :: acc) else List.rev (a :: acc)
      in
      go []
  in
  P.expect p T.Rparen;
  P.expect p T.Semi;
  { r_name = name; r_oneway = oneway; r_args = args; r_msg_id = msg_id }

let parse ?(file = "<string>") src =
  let p = P.of_string ~file src in
  P.expect_kw p "subsystem";
  let sub_name = P.expect_ident p in
  let sub_base =
    match P.next p with
    | T.Int_lit n -> n
    | _ -> P.syntax_error p ~expected:"the subsystem message base"
  in
  P.expect p T.Semi;
  let types = ref [] in
  let routines = ref [] in
  let next_id = ref sub_base in
  let rec go () =
    match P.peek p with
    | T.Eof -> ()
    | T.Ident "type" ->
        ignore (P.next p);
        let name = P.expect_ident p in
        P.expect p T.Equal;
        let ty = mig_type p !types in
        P.expect p T.Semi;
        types := (name, ty) :: !types;
        go ()
    | T.Ident "skip" ->
        (* MIG's way of reserving a message id *)
        ignore (P.next p);
        P.expect p T.Semi;
        next_id := Int64.add !next_id 1L;
        go ()
    | T.Ident "routine" ->
        ignore (P.next p);
        let id = !next_id in
        next_id := Int64.add id 1L;
        routines := routine p !types ~oneway:false ~msg_id:id :: !routines;
        go ()
    | T.Ident "simpleroutine" ->
        ignore (P.next p);
        let id = !next_id in
        next_id := Int64.add id 1L;
        routines := routine p !types ~oneway:true ~msg_id:id :: !routines;
        go ()
    | _ -> P.syntax_error p ~expected:"'type', 'routine' or 'simpleroutine'"
  in
  go ();
  {
    sub_name;
    sub_base;
    types = List.rev !types;
    routines = List.rev !routines;
  }
