type t =
  | Ident of string
  | Int_lit of int64
  | Float_lit of float
  | Char_lit of char
  | String_lit of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Langle
  | Rangle
  | Semi
  | Colon
  | Coloncolon
  | Comma
  | Equal
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Pipe
  | Amp
  | Caret
  | Tilde
  | Lshift
  | Rshift
  | Question
  | At
  | Eof

let pp ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int_lit n -> Format.fprintf ppf "integer literal %Ld" n
  | Float_lit f -> Format.fprintf ppf "float literal %g" f
  | Char_lit c -> Format.fprintf ppf "character literal %C" c
  | String_lit s -> Format.fprintf ppf "string literal %S" s
  | Lbrace -> Format.pp_print_string ppf "'{'"
  | Rbrace -> Format.pp_print_string ppf "'}'"
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Lbracket -> Format.pp_print_string ppf "'['"
  | Rbracket -> Format.pp_print_string ppf "']'"
  | Langle -> Format.pp_print_string ppf "'<'"
  | Rangle -> Format.pp_print_string ppf "'>'"
  | Semi -> Format.pp_print_string ppf "';'"
  | Colon -> Format.pp_print_string ppf "':'"
  | Coloncolon -> Format.pp_print_string ppf "'::'"
  | Comma -> Format.pp_print_string ppf "','"
  | Equal -> Format.pp_print_string ppf "'='"
  | Star -> Format.pp_print_string ppf "'*'"
  | Plus -> Format.pp_print_string ppf "'+'"
  | Minus -> Format.pp_print_string ppf "'-'"
  | Slash -> Format.pp_print_string ppf "'/'"
  | Percent -> Format.pp_print_string ppf "'%'"
  | Pipe -> Format.pp_print_string ppf "'|'"
  | Amp -> Format.pp_print_string ppf "'&'"
  | Caret -> Format.pp_print_string ppf "'^'"
  | Tilde -> Format.pp_print_string ppf "'~'"
  | Lshift -> Format.pp_print_string ppf "'<<'"
  | Rshift -> Format.pp_print_string ppf "'>>'"
  | Question -> Format.pp_print_string ppf "'?'"
  | At -> Format.pp_print_string ppf "'@'"
  | Eof -> Format.pp_print_string ppf "end of input"

let equal (a : t) (b : t) = a = b
