module P = Parser_util
module T = Idl_token

let to_int (c : Aoi.const) =
  match c with
  | Aoi.Const_int n -> n
  | Aoi.Const_char ch -> Int64.of_int (Char.code ch)
  | Aoi.Const_bool b -> if b then 1L else 0L
  | Aoi.Const_enum q ->
      Diag.error "enumerator %s used where an integer constant is required"
        (Aoi.qname_to_string q)
  | Aoi.Const_string _ | Aoi.Const_float _ ->
      Diag.error "integer constant required"

let positive_int c =
  let n = to_int c in
  if Int64.compare n 1L < 0 || Int64.compare n (Int64.of_int max_int) > 0 then
    Diag.error "constant %Ld is not a valid positive size" n
  else Int64.to_int n

let int_binop _name f a b = Aoi.Const_int (f (to_int a) (to_int b))

let arith _name fi ff (a : Aoi.const) (b : Aoi.const) =
  match (a, b) with
  | Aoi.Const_float x, Aoi.Const_float y -> Aoi.Const_float (ff x y)
  | Aoi.Const_float x, _ -> Aoi.Const_float (ff x (Int64.to_float (to_int b)))
  | _, Aoi.Const_float y -> Aoi.Const_float (ff (Int64.to_float (to_int a)) y)
  | _, _ -> int_binop _name fi a b

let shift_amount b =
  let n = to_int b in
  if Int64.compare n 0L < 0 || Int64.compare n 63L > 0 then
    Diag.error "shift amount %Ld out of range" n
  else Int64.to_int n

let rec parse p ~lookup = or_expr p ~lookup

and or_expr p ~lookup =
  let rec go acc =
    if P.accept p T.Pipe then go (int_binop "|" Int64.logor acc (xor_expr p ~lookup))
    else acc
  in
  go (xor_expr p ~lookup)

and xor_expr p ~lookup =
  let rec go acc =
    if P.accept p T.Caret then go (int_binop "^" Int64.logxor acc (and_expr p ~lookup))
    else acc
  in
  go (and_expr p ~lookup)

and and_expr p ~lookup =
  let rec go acc =
    if P.accept p T.Amp then go (int_binop "&" Int64.logand acc (shift_expr p ~lookup))
    else acc
  in
  go (shift_expr p ~lookup)

and shift_expr p ~lookup =
  let rec go acc =
    if P.accept p T.Lshift then
      go
        (int_binop "<<"
           (fun a b -> Int64.shift_left a (shift_amount (Aoi.Const_int b)))
           acc
           (add_expr p ~lookup))
    else if P.accept p T.Rshift then
      go
        (int_binop ">>"
           (fun a b -> Int64.shift_right a (shift_amount (Aoi.Const_int b)))
           acc
           (add_expr p ~lookup))
    else acc
  in
  go (add_expr p ~lookup)

and add_expr p ~lookup =
  let rec go acc =
    if P.accept p T.Plus then go (arith "+" Int64.add ( +. ) acc (mul_expr p ~lookup))
    else if P.accept p T.Minus then
      go (arith "-" Int64.sub ( -. ) acc (mul_expr p ~lookup))
    else acc
  in
  go (mul_expr p ~lookup)

and mul_expr p ~lookup =
  let rec go acc =
    if P.accept p T.Star then go (arith "*" Int64.mul ( *. ) acc (unary p ~lookup))
    else if P.accept p T.Slash then
      go
        (arith "/"
           (fun a b ->
             if b = 0L then Diag.error "division by zero in constant expression"
             else Int64.div a b)
           ( /. ) acc (unary p ~lookup))
    else if P.accept p T.Percent then
      go
        (int_binop "%"
           (fun a b ->
             if b = 0L then Diag.error "division by zero in constant expression"
             else Int64.rem a b)
           acc (unary p ~lookup))
    else acc
  in
  go (unary p ~lookup)

and unary p ~lookup =
  if P.accept p T.Minus then
    match unary p ~lookup with
    | Aoi.Const_int n -> Aoi.Const_int (Int64.neg n)
    | Aoi.Const_float f -> Aoi.Const_float (-.f)
    | Aoi.Const_bool _ | Aoi.Const_char _ | Aoi.Const_string _ | Aoi.Const_enum _
      ->
        Diag.error "operand of unary '-' must be numeric"
  else if P.accept p T.Plus then unary p ~lookup
  else if P.accept p T.Tilde then Aoi.Const_int (Int64.lognot (to_int (unary p ~lookup)))
  else primary p ~lookup

and primary p ~lookup =
  match P.peek p with
  | T.Int_lit n ->
      ignore (P.next p);
      Aoi.Const_int n
  | T.Float_lit f ->
      ignore (P.next p);
      Aoi.Const_float f
  | T.Char_lit c ->
      ignore (P.next p);
      Aoi.Const_char c
  | T.String_lit s ->
      ignore (P.next p);
      Aoi.Const_string s
  | T.Lparen ->
      ignore (P.next p);
      let v = parse p ~lookup in
      P.expect p T.Rparen;
      v
  | T.Ident "TRUE" ->
      ignore (P.next p);
      Aoi.Const_bool true
  | T.Ident "FALSE" ->
      ignore (P.next p);
      Aoi.Const_bool false
  | T.Ident _ | T.Coloncolon -> (
      let loc = P.cur_loc p in
      let q = P.scoped_name p in
      match lookup q with
      | Some v -> v
      | None ->
          Diag.error ~loc "unknown constant %s" (Aoi.qname_to_string q))
  | _ -> P.syntax_error p ~expected:"a constant expression"
