module P = Parser_util
module T = Idl_token

type ctx = {
  p : P.t;
  consts : (string, Aoi.const) Hashtbl.t;  (* flat XDR namespace *)
}

let lookup ctx q =
  match q with
  | [ name ] -> Hashtbl.find_opt ctx.consts name
  | _ -> None

let add_const ctx name v =
  if Hashtbl.mem ctx.consts name then
    Diag.error ~loc:(P.last_loc ctx.p) "duplicate constant %s" name;
  Hashtbl.replace ctx.consts name v

let const_expr ctx = Const_eval.parse ctx.p ~lookup:(lookup ctx)
let const_int ctx = Const_eval.to_int (const_expr ctx)

let integer ~bits ~signed : Aoi.typ = Aoi.Integer { bits; signed }

(* ------------------------------------------------------------------ *)
(* Type specifiers and declarations                                    *)
(* ------------------------------------------------------------------ *)

(* A declaration in the XDR sense: a type specifier followed by a
   declarator with optional array/pointer decorations, or bare "void".
   Returns [None, Void] for void. *)
let rec declaration ctx : string option * Aoi.typ =
  if P.accept_kw ctx.p "void" then (None, Aoi.Void)
  else if P.accept_kw ctx.p "opaque" then begin
    let name = P.expect_ident ctx.p in
    match array_suffix ctx with
    | `Fixed n -> (Some name, Aoi.Array (Aoi.Octet, [ n ]))
    | `Variable bound -> (Some name, Aoi.Sequence (Aoi.Octet, bound))
    | `None ->
        Diag.error ~loc:(P.last_loc ctx.p) "opaque requires an array declarator"
  end
  else if P.accept_kw ctx.p "string" then begin
    let name = P.expect_ident ctx.p in
    match array_suffix ctx with
    | `Variable bound -> (Some name, Aoi.String bound)
    | `Fixed _ | `None ->
        Diag.error ~loc:(P.last_loc ctx.p)
          "string requires a variable-length declarator <>"
  end
  else begin
    let ty = type_spec ctx in
    let optional = P.accept ctx.p T.Star in
    let name = P.expect_ident ctx.p in
    let ty =
      match array_suffix ctx with
      | `Fixed n -> Aoi.Array (ty, [ n ])
      | `Variable bound -> Aoi.Sequence (ty, bound)
      | `None -> ty
    in
    let ty = if optional then Aoi.Optional ty else ty in
    (Some name, ty)
  end

and array_suffix ctx =
  if P.accept ctx.p T.Lbracket then begin
    let n = Const_eval.positive_int (const_expr ctx) in
    P.expect ctx.p T.Rbracket;
    `Fixed n
  end
  else if P.accept ctx.p T.Langle then
    if P.accept ctx.p T.Rangle then `Variable None
    else begin
      let n = Const_eval.positive_int (const_expr ctx) in
      P.expect ctx.p T.Rangle;
      `Variable (Some n)
    end
  else `None

and type_spec ctx : Aoi.typ =
  match P.peek ctx.p with
  | T.Ident "unsigned" ->
      ignore (P.next ctx.p);
      if P.accept_kw ctx.p "int" || P.accept_kw ctx.p "long" then
        integer ~bits:32 ~signed:false
      else if P.accept_kw ctx.p "hyper" then integer ~bits:64 ~signed:false
      else if P.accept_kw ctx.p "short" then integer ~bits:16 ~signed:false
      else if P.accept_kw ctx.p "char" then integer ~bits:8 ~signed:false
      else integer ~bits:32 ~signed:false (* bare "unsigned" *)
  | T.Ident "int" | T.Ident "long" ->
      ignore (P.next ctx.p);
      integer ~bits:32 ~signed:true
  | T.Ident "hyper" ->
      ignore (P.next ctx.p);
      integer ~bits:64 ~signed:true
  | T.Ident "short" ->
      ignore (P.next ctx.p);
      integer ~bits:16 ~signed:true
  | T.Ident "char" ->
      ignore (P.next ctx.p);
      integer ~bits:8 ~signed:true
  | T.Ident "float" ->
      ignore (P.next ctx.p);
      Aoi.Float 32
  | T.Ident "double" ->
      ignore (P.next ctx.p);
      Aoi.Float 64
  | T.Ident "quadruple" ->
      Diag.error ~loc:(P.cur_loc ctx.p) "quadruple is not supported"
  | T.Ident "bool" ->
      ignore (P.next ctx.p);
      Aoi.Boolean
  | T.Ident "enum" -> Aoi.Enum_type (enum_body ctx)
  | T.Ident "struct" ->
      ignore (P.next ctx.p);
      (* inline "struct { ... }" or a reference "struct foo" *)
      if P.peek ctx.p = T.Lbrace then Aoi.Struct_type (struct_body ctx)
      else Aoi.Named [ P.expect_ident ctx.p ]
  | T.Ident "union" ->
      ignore (P.next ctx.p);
      if P.peek_is_kw ctx.p "switch" then Aoi.Union_type (union_body ctx)
      else Aoi.Named [ P.expect_ident ctx.p ]
  | T.Ident _ -> Aoi.Named [ P.expect_ident ctx.p ]
  | _ -> P.syntax_error ctx.p ~expected:"a type specifier"

and enum_body ctx =
  P.expect_kw ctx.p "enum";
  if P.peek ctx.p <> T.Lbrace then
    (* reference to a named enum *)
    P.syntax_error ctx.p ~expected:"'{' (inline enum bodies only)"
  else begin
    P.expect ctx.p T.Lbrace;
    let next_implicit = ref 0L in
    let enumerator p =
      let name = P.expect_ident p in
      let value =
        if P.accept p T.Equal then Const_eval.to_int (const_expr ctx)
        else !next_implicit
      in
      next_implicit := Int64.add value 1L;
      add_const ctx name (Aoi.Const_int value);
      (name, value)
    in
    let names = P.comma_list ctx.p enumerator in
    P.expect ctx.p T.Rbrace;
    names
  end

and struct_body ctx =
  P.expect ctx.p T.Lbrace;
  let rec go acc =
    if P.accept ctx.p T.Rbrace then List.rev acc
    else begin
      let name, ty = declaration ctx in
      P.expect ctx.p T.Semi;
      match name with
      | None ->
          Diag.error ~loc:(P.last_loc ctx.p) "void is not a valid struct member"
      | Some n -> go ({ Aoi.f_name = n; f_type = ty } :: acc)
    end
  in
  go []

and union_body ctx : Aoi.union_body =
  P.expect_kw ctx.p "switch";
  P.expect ctx.p T.Lparen;
  let dname, dty = declaration ctx in
  ignore dname;
  P.expect ctx.p T.Rparen;
  P.expect ctx.p T.Lbrace;
  let cases = ref [] in
  let default = ref None in
  let arm () =
    let name, ty = declaration ctx in
    P.expect ctx.p T.Semi;
    match name with
    | None -> { Aoi.f_name = "_void"; f_type = Aoi.Void }
    | Some n -> { Aoi.f_name = n; f_type = ty }
  in
  let rec go () =
    if P.accept ctx.p T.Rbrace then ()
    else if P.accept_kw ctx.p "case" then begin
      let rec labels acc =
        let v = const_expr ctx in
        P.expect ctx.p T.Colon;
        if P.accept_kw ctx.p "case" then labels (v :: acc) else List.rev (v :: acc)
      in
      let ls = labels [] in
      let field = arm () in
      cases := { Aoi.c_labels = ls; c_field = field } :: !cases;
      go ()
    end
    else if P.accept_kw ctx.p "default" then begin
      P.expect ctx.p T.Colon;
      (match !default with
      | Some _ -> Diag.error ~loc:(P.last_loc ctx.p) "duplicate default case"
      | None -> default := Some (arm ()));
      go ()
    end
    else P.syntax_error ctx.p ~expected:"'case', 'default' or '}'"
  in
  go ();
  if !cases = [] && !default = None then
    Diag.error ~loc:(P.last_loc ctx.p) "union has no cases";
  { Aoi.u_discrim = dty; u_cases = List.rev !cases; u_default = !default }

(* ------------------------------------------------------------------ *)
(* Top-level definitions                                               *)
(* ------------------------------------------------------------------ *)

let enum_def ctx =
  (* "enum" already peeked *)
  ignore (P.next ctx.p);
  let name = P.expect_ident ctx.p in
  (* reuse enum_body's core by faking the keyword: inline here instead *)
  P.expect ctx.p T.Lbrace;
  let next_implicit = ref 0L in
  let enumerator p =
    let n = P.expect_ident p in
    let value =
      if P.accept p T.Equal then Const_eval.to_int (const_expr ctx)
      else !next_implicit
    in
    next_implicit := Int64.add value 1L;
    add_const ctx n (Aoi.Const_int value);
    (n, value)
  in
  let names = P.comma_list ctx.p enumerator in
  P.expect ctx.p T.Rbrace;
  P.expect ctx.p T.Semi;
  Aoi.Dtype (name, Aoi.Enum_type names)

let struct_def ctx =
  ignore (P.next ctx.p);
  let name = P.expect_ident ctx.p in
  let fields = struct_body ctx in
  P.expect ctx.p T.Semi;
  Aoi.Dtype (name, Aoi.Struct_type fields)

let union_def ctx =
  ignore (P.next ctx.p);
  let name = P.expect_ident ctx.p in
  let u = union_body ctx in
  P.expect ctx.p T.Semi;
  Aoi.Dtype (name, Aoi.Union_type u)

let typedef_def ctx =
  ignore (P.next ctx.p);
  let name, ty = declaration ctx in
  P.expect ctx.p T.Semi;
  match name with
  | None -> Diag.error ~loc:(P.last_loc ctx.p) "cannot typedef void"
  | Some n -> Aoi.Dtype (n, ty)

let const_def ctx =
  ignore (P.next ctx.p);
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Equal;
  let v = const_expr ctx in
  P.expect ctx.p T.Semi;
  add_const ctx name v;
  Aoi.Dconst (name, integer ~bits:32 ~signed:true, v)

(* Procedure argument and result types allow bare "string" (meaning an
   unbounded string) and "opaque<>" in addition to ordinary type
   specifiers — an rpcgen convenience. *)
let proc_type ctx : Aoi.typ =
  if P.accept_kw ctx.p "string" then begin
    match array_suffix ctx with
    | `Variable bound -> Aoi.String bound
    | `None -> Aoi.String None
    | `Fixed _ ->
        Diag.error ~loc:(P.last_loc ctx.p) "string cannot have a fixed bound"
  end
  else if P.accept_kw ctx.p "opaque" then begin
    match array_suffix ctx with
    | `Variable bound -> Aoi.Sequence (Aoi.Octet, bound)
    | `Fixed n -> Aoi.Array (Aoi.Octet, [ n ])
    | `None -> Aoi.Sequence (Aoi.Octet, None)
  end
  else begin
    let ty = type_spec ctx in
    (* "node *" as a result or argument type is optional data *)
    if P.accept ctx.p T.Star then Aoi.Optional ty else ty
  end

(* A procedure: rettype name(argtype, ...) = number ; *)
let procedure ctx : Aoi.operation =
  let ret =
    if P.accept_kw ctx.p "void" then Aoi.Void else proc_type ctx
  in
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lparen;
  let args =
    if P.accept_kw ctx.p "void" then []
    else if P.peek ctx.p = T.Rparen then []
    else P.comma_list ctx.p (fun _ -> proc_type ctx)
  in
  P.expect ctx.p T.Rparen;
  P.expect ctx.p T.Equal;
  let code = const_int ctx in
  P.expect ctx.p T.Semi;
  let params =
    List.mapi
      (fun i ty ->
        { Aoi.p_name = Printf.sprintf "arg%d" (i + 1); p_dir = Aoi.In; p_type = ty })
      args
  in
  {
    Aoi.op_name = name;
    op_oneway = false;
    op_return = ret;
    op_params = params;
    op_raises = [];
    op_code = code;
  }

let version ctx : Aoi.interface * int64 =
  P.expect_kw ctx.p "version";
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lbrace;
  let rec procs acc =
    if P.accept ctx.p T.Rbrace then List.rev acc
    else procs (procedure ctx :: acc)
  in
  let ops = procs [] in
  P.expect ctx.p T.Equal;
  let vers_num = const_int ctx in
  P.expect ctx.p T.Semi;
  ( {
      Aoi.i_name = name;
      i_parents = [];
      i_defs = [];
      i_ops = ops;
      i_attrs = [];
      i_program = None;
    },
    vers_num )

let program_def ctx =
  P.expect_kw ctx.p "program";
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lbrace;
  let rec versions acc =
    if P.accept ctx.p T.Rbrace then List.rev acc
    else versions (version ctx :: acc)
  in
  let parsed = versions [] in
  P.expect ctx.p T.Equal;
  (* the program number is only known after the versions are parsed *)
  let prog_num = const_int ctx in
  P.expect ctx.p T.Semi;
  let interfaces =
    List.map
      (fun (i, vers_num) ->
        Aoi.Dinterface { i with Aoi.i_program = Some (prog_num, vers_num) })
      parsed
  in
  Aoi.Dmodule (name, interfaces)

let parse ?(file = "<string>") src =
  let ctx = { p = P.of_string ~file src; consts = Hashtbl.create 16 } in
  let rec go acc =
    match P.peek ctx.p with
    | T.Eof -> List.rev acc
    | T.Ident "enum" -> go (enum_def ctx :: acc)
    | T.Ident "struct" -> go (struct_def ctx :: acc)
    | T.Ident "union" -> go (union_def ctx :: acc)
    | T.Ident "typedef" -> go (typedef_def ctx :: acc)
    | T.Ident "const" -> go (const_def ctx :: acc)
    | T.Ident "program" -> go (program_def ctx :: acc)
    | _ -> P.syntax_error ctx.p ~expected:"a definition"
  in
  let defs = go [] in
  { Aoi.s_file = file; s_defs = defs }
