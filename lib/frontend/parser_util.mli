(** Recursive-descent parsing helpers shared by the three IDL parsers.

    Wraps an {!Idl_lexer.t} with the expect/accept combinators the
    CORBA, ONC RPC, and MIG grammars need.  Keywords are ordinary
    identifiers classified by each parser, so [accept_kw "struct"] only
    matches the identifier [struct]. *)

type t

val make : Idl_lexer.t -> t
val of_string : ?file:string -> string -> t

val peek : t -> Idl_token.t
val peek2 : t -> Idl_token.t
val next : t -> Idl_token.t
val cur_loc : t -> Loc.t
(** Location of the token {!peek} would return. *)

val last_loc : t -> Loc.t
(** Location of the most recently consumed token. *)

val expect : t -> Idl_token.t -> unit
(** Consume exactly the given token or raise a syntax error. *)

val accept : t -> Idl_token.t -> bool
(** Consume the given token if it is next; report whether it was. *)

val expect_ident : t -> string
(** Consume any identifier and return its text. *)

val accept_kw : t -> string -> bool
(** Consume the identifier [kw] if it is next. *)

val expect_kw : t -> string -> unit
val peek_is_kw : t -> string -> bool

val syntax_error : t -> expected:string -> 'a
(** Raise a positioned syntax error naming what was expected and what
    was found instead. *)

val scoped_name : t -> Aoi.qname
(** Parse [::a::b] or [a::b]; a leading [::] yields a leading [""]
    component (absolute name). *)

val comma_list : t -> (t -> 'a) -> 'a list
(** Parse one or more occurrences of an element separated by commas. *)
