(** Tokens shared by the CORBA, ONC RPC, and MIG front ends.

    The lexer is keyword-agnostic: all words are produced as {!Ident}
    and each parser classifies the keywords of its own IDL.  This is
    what lets one scanner serve three source languages (the "base
    library" of Flick's front-end phase). *)

type t =
  | Ident of string
  | Int_lit of int64
  | Float_lit of float
  | Char_lit of char
  | String_lit of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Langle
  | Rangle
  | Semi
  | Colon
  | Coloncolon
  | Comma
  | Equal
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Pipe
  | Amp
  | Caret
  | Tilde
  | Lshift
  | Rshift
  | Question
  | At
  | Eof

val pp : Format.formatter -> t -> unit
(** Human-readable rendering used in syntax-error messages. *)

val equal : t -> t -> bool
