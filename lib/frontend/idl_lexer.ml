
type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
  mutable lookahead : (Idl_token.t * Loc.t) list;
}

let of_string ?(file = "<string>") src =
  { src; file; pos = 0; line = 1; bol = 0; lookahead = [] }

let cur_pos t : Loc.pos = { line = t.line; col = t.pos - t.bol + 1 }

let loc_from t (start_pos : Loc.pos) =
  Loc.make ~file:t.file ~start_pos ~end_pos:(cur_pos t)

let fail t start_pos fmt = Diag.error ~loc:(loc_from t start_pos) fmt

let at_end t = t.pos >= String.length t.src
let cur t = t.src.[t.pos]

let advance t =
  (if cur t = '\n' then begin
     t.line <- t.line + 1;
     t.bol <- t.pos + 1
   end);
  t.pos <- t.pos + 1

let rec skip_line t =
  if not (at_end t) then
    if cur t = '\n' then advance t
    else begin
      advance t;
      skip_line t
    end

(* Skip whitespace, comments, '#' preprocessor lines and '%' pass-through
   lines.  Returns when positioned at the start of a real token. *)
let rec skip_trivia t =
  if at_end t then ()
  else
    match cur t with
    | ' ' | '\t' | '\r' | '\n' ->
        advance t;
        skip_trivia t
    | '#' ->
        skip_line t;
        skip_trivia t
    | '%' when t.pos = t.bol ->
        (* rpcgen pass-through line: only when '%' is in column one *)
        skip_line t;
        skip_trivia t
    | '%' -> ()
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
        skip_line t;
        skip_trivia t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
        let start_pos = cur_pos t in
        advance t;
        advance t;
        skip_block_comment t start_pos;
        skip_trivia t
    | 'a' .. 'z'
    | 'A' .. 'Z' | '_' | '0' .. '9' | '"' | '\''
    | '{' | '}' | '(' | ')' | '[' | ']' | '<' | '>' | ';' | ':' | ','
    | '=' | '*' | '+' | '-' | '/' | '|' | '&' | '^' | '~' | '?' | '@' ->
        ()
    | c ->
        let start_pos = cur_pos t in
        fail t start_pos "unexpected character %C" c

and skip_block_comment t start_pos =
  if at_end t then fail t start_pos "unterminated comment"
  else if
    cur t = '*' && t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/'
  then begin
    advance t;
    advance t
  end
  else begin
    advance t;
    skip_block_comment t start_pos
  end

let is_ident_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let lex_ident t =
  let start = t.pos in
  let rec go () =
    if (not (at_end t)) && is_ident_char (cur t) then begin
      advance t;
      go ()
    end
  in
  go ();
  String.sub t.src start (t.pos - start)

(* Numbers: decimal, 0x hex, 0 octal, or floats (decimal point and/or
   exponent).  IDL has no negative literals; '-' is an operator. *)
let lex_number t start_pos =
  let start = t.pos in
  let two_prefix =
    t.pos + 1 < String.length t.src
    && cur t = '0'
    && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X')
  in
  if two_prefix then begin
    advance t;
    advance t;
    let hstart = t.pos in
    let rec go () =
      if
        (not (at_end t))
        &&
        match cur t with
        | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
        | _ -> false
      then begin
        advance t;
        go ()
      end
    in
    go ();
    if t.pos = hstart then fail t start_pos "malformed hexadecimal literal";
    let s = String.sub t.src start (t.pos - start) in
    Idl_token.Int_lit (Int64.of_string s)
  end
  else begin
    let rec digits () =
      if (not (at_end t)) && is_digit (cur t) then begin
        advance t;
        digits ()
      end
    in
    digits ();
    let is_float = ref false in
    (if
       (not (at_end t))
       && cur t = '.'
       && t.pos + 1 < String.length t.src
       && is_digit t.src.[t.pos + 1]
     then begin
       is_float := true;
       advance t;
       digits ()
     end);
    (if (not (at_end t)) && (cur t = 'e' || cur t = 'E') then begin
       is_float := true;
       advance t;
       if (not (at_end t)) && (cur t = '+' || cur t = '-') then advance t;
       digits ()
     end);
    let s = String.sub t.src start (t.pos - start) in
    if !is_float then Idl_token.Float_lit (float_of_string s)
    else if String.length s > 1 && s.[0] = '0' then
      (* octal, per C convention *)
      Idl_token.Int_lit (Int64.of_string ("0o" ^ String.sub s 1 (String.length s - 1)))
    else Idl_token.Int_lit (Int64.of_string s)
  end

let lex_escape t start_pos =
  if at_end t then fail t start_pos "unterminated escape sequence";
  let c = cur t in
  advance t;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> fail t start_pos "unsupported escape sequence '\\%c'" c

let lex_string t start_pos =
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end t then fail t start_pos "unterminated string literal"
    else
      match cur t with
      | '"' -> advance t
      | '\\' ->
          advance t;
          Buffer.add_char buf (lex_escape t start_pos);
          go ()
      | c ->
          advance t;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Idl_token.String_lit (Buffer.contents buf)

let lex_char t start_pos =
  if at_end t then fail t start_pos "unterminated character literal";
  let c =
    match cur t with
    | '\\' ->
        advance t;
        lex_escape t start_pos
    | c ->
        advance t;
        c
  in
  if at_end t || cur t <> '\'' then fail t start_pos "unterminated character literal";
  advance t;
  Idl_token.Char_lit c

let lex_token t : Idl_token.t * Loc.t =
  skip_trivia t;
  let start_pos = cur_pos t in
  if at_end t then (Idl_token.Eof, loc_from t start_pos)
  else
    let tok =
      match cur t with
      | c when is_ident_start c -> Idl_token.Ident (lex_ident t)
      | c when is_digit c -> lex_number t start_pos
      | '"' ->
          advance t;
          lex_string t start_pos
      | '\'' ->
          advance t;
          lex_char t start_pos
      | '{' -> advance t; Idl_token.Lbrace
      | '}' -> advance t; Idl_token.Rbrace
      | '(' -> advance t; Idl_token.Lparen
      | ')' -> advance t; Idl_token.Rparen
      | '[' -> advance t; Idl_token.Lbracket
      | ']' -> advance t; Idl_token.Rbracket
      | '<' ->
          advance t;
          if (not (at_end t)) && cur t = '<' then begin
            advance t;
            Idl_token.Lshift
          end
          else Idl_token.Langle
      | '>' ->
          advance t;
          if (not (at_end t)) && cur t = '>' then begin
            advance t;
            Idl_token.Rshift
          end
          else Idl_token.Rangle
      | ';' -> advance t; Idl_token.Semi
      | ':' ->
          advance t;
          if (not (at_end t)) && cur t = ':' then begin
            advance t;
            Idl_token.Coloncolon
          end
          else Idl_token.Colon
      | ',' -> advance t; Idl_token.Comma
      | '=' -> advance t; Idl_token.Equal
      | '*' -> advance t; Idl_token.Star
      | '+' -> advance t; Idl_token.Plus
      | '-' -> advance t; Idl_token.Minus
      | '/' -> advance t; Idl_token.Slash
      | '%' -> advance t; Idl_token.Percent
      | '|' -> advance t; Idl_token.Pipe
      | '&' -> advance t; Idl_token.Amp
      | '^' -> advance t; Idl_token.Caret
      | '~' -> advance t; Idl_token.Tilde
      | '?' -> advance t; Idl_token.Question
      | '@' -> advance t; Idl_token.At
      | c -> fail t start_pos "unexpected character %C" c
    in
    (tok, loc_from t start_pos)

let next t =
  match t.lookahead with
  | tok :: rest ->
      t.lookahead <- rest;
      tok
  | [] -> lex_token t

let peek t =
  match t.lookahead with
  | tok :: _ -> tok
  | [] ->
      let tok = lex_token t in
      t.lookahead <- [ tok ];
      tok

let peek2 t =
  match t.lookahead with
  | _ :: (tok, _) :: _ -> tok
  | [ first ] ->
      let second = lex_token t in
      t.lookahead <- [ first; second ];
      fst second
  | [] ->
      let first = lex_token t in
      let second = lex_token t in
      t.lookahead <- [ first; second ];
      fst second

let tokens_of_string ?file src =
  let t = of_string ?file src in
  let rec go acc =
    match next t with
    | Idl_token.Eof, _ -> List.rev acc
    | tok -> go (tok :: acc)
  in
  go []
