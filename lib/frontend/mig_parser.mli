(** MIG front end (paper section 2.1).

    MIG, the Mach Interface Generator, is the paper's example of a rigid
    IDL: its type system is essentially scalars and arrays of scalars,
    and its interface definitions contain constructs specific to C and
    to Mach messaging.  This parser accepts the core MIG subsystem
    syntax:

    {v
    subsystem name base;
    type int_array = array[64] of int;
    type var_data = array[*:1024] of char;
    routine echo(in x : int; out y : int);
    simpleroutine notify(in code : int);
    v}

    [routine] declarations become operations with message ids assigned
    from the subsystem base; [simpleroutine] is oneway.  Following the
    paper, the MIG front end is conjoined with its presentation
    generator ({!Presgen_mig}) rather than producing IDL-independent
    AOI: the returned {!spec} is the private contract between the two.

    MIG's restrictiveness is enforced: only [int], [char], [boolean],
    fixed arrays and counted arrays ([array[*:n] of t]) of scalars are
    accepted — "MIG cannot express arrays of non-atomic types". *)

type scalar = Sint | Schar | Sbool

type mig_type =
  | Tscalar of scalar
  | Tfixed_array of scalar * int
  | Tcounted_array of scalar * int  (** [array[*:n] of t] *)

type arg = {
  a_name : string;
  a_dir : Aoi.param_dir;
  a_type : mig_type;
}

type routine = {
  r_name : string;
  r_oneway : bool;
  r_args : arg list;
  r_msg_id : int64;
}

type spec = {
  sub_name : string;
  sub_base : int64;
  types : (string * mig_type) list;
  routines : routine list;
}

val parse : ?file:string -> string -> spec
(** Raises {!Diag.Error} on syntax errors or non-MIG-expressible
    types. *)
