(** CORBA 2.0 IDL front end (paper section 2.1).

    Parses a CORBA IDL specification and produces its AOI
    representation.  Supports modules, interfaces (including
    inheritance, attributes, [oneway] operations and [raises] clauses),
    [typedef]s, structs, discriminated unions, enums, sequences, bounded
    and unbounded strings, fixed arrays, constants with full
    constant-expression evaluation, and exceptions.

    [any], [wchar], [wstring], [fixed] and [Object] are rejected with a
    diagnostic, mirroring the subset Flick's CORBA front end handled in
    1997.  Preprocessor lines ([#include], [#pragma], ...) are skipped;
    like Flick, we assume [cpp] has already run.

    Operations are numbered in declaration order; the IIOP back end
    dispatches on operation {e names} (GIOP semantics) while the ONC
    back end uses these codes as procedure numbers. *)

val parse : ?file:string -> string -> Aoi.spec
(** Raises {!Diag.Error} on any syntax or semantic error. *)
