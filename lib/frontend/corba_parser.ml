module P = Parser_util
module T = Idl_token

type ctx = {
  p : P.t;
  consts : (string, Aoi.const) Hashtbl.t;  (* qualified name -> value *)
  mutable scope : string list;
}

let key q = String.concat "::" q

let lookup ctx q =
  match q with
  | "" :: abs -> Hashtbl.find_opt ctx.consts (key abs)
  | _ ->
      let rec search scope =
        match Hashtbl.find_opt ctx.consts (key (scope @ q)) with
        | Some v -> Some v
        | None -> (
            match List.rev scope with
            | [] -> None
            | _ :: outer_rev -> search (List.rev outer_rev))
      in
      search ctx.scope

let add_const ctx name v = Hashtbl.replace ctx.consts (key (ctx.scope @ [ name ])) v

let const_expr ctx = Const_eval.parse ctx.p ~lookup:(lookup ctx)

(* Registering an enum makes each enumerator available as a constant in
   the scope that declares the enum. *)
let register_enum ctx names =
  List.iter
    (fun n -> add_const ctx n (Aoi.Const_enum (ctx.scope @ [ n ])))
    names

let unsupported ctx what =
  Diag.error ~loc:(P.last_loc ctx.p) "CORBA IDL construct '%s' is not supported" what

(* ------------------------------------------------------------------ *)
(* Type specifications                                                 *)
(* ------------------------------------------------------------------ *)

let integer ~bits ~signed : Aoi.typ = Aoi.Integer { bits; signed }

(* [defs] accumulates definitions of the current scope so that inline
   constructed types ([struct X {...}] used as a member type) are
   registered as declarations, as CORBA scoping requires. *)
let rec type_spec ctx defs : Aoi.typ =
  match P.peek ctx.p with
  | T.Ident "float" ->
      ignore (P.next ctx.p);
      Aoi.Float 32
  | T.Ident "double" ->
      ignore (P.next ctx.p);
      Aoi.Float 64
  | T.Ident "short" ->
      ignore (P.next ctx.p);
      integer ~bits:16 ~signed:true
  | T.Ident "long" ->
      ignore (P.next ctx.p);
      if P.accept_kw ctx.p "long" then integer ~bits:64 ~signed:true
      else if P.peek_is_kw ctx.p "double" then unsupported ctx "long double"
      else integer ~bits:32 ~signed:true
  | T.Ident "unsigned" ->
      ignore (P.next ctx.p);
      if P.accept_kw ctx.p "short" then integer ~bits:16 ~signed:false
      else if P.accept_kw ctx.p "long" then
        if P.accept_kw ctx.p "long" then integer ~bits:64 ~signed:false
        else integer ~bits:32 ~signed:false
      else P.syntax_error ctx.p ~expected:"'short' or 'long' after 'unsigned'"
  | T.Ident "char" ->
      ignore (P.next ctx.p);
      Aoi.Char
  | T.Ident "boolean" ->
      ignore (P.next ctx.p);
      Aoi.Boolean
  | T.Ident "octet" ->
      ignore (P.next ctx.p);
      Aoi.Octet
  | T.Ident "string" ->
      ignore (P.next ctx.p);
      if P.accept ctx.p T.Langle then begin
        let bound = Const_eval.positive_int (const_expr ctx) in
        P.expect ctx.p T.Rangle;
        Aoi.String (Some bound)
      end
      else Aoi.String None
  | T.Ident "sequence" ->
      ignore (P.next ctx.p);
      P.expect ctx.p T.Langle;
      let elem = type_spec ctx defs in
      let bound =
        if P.accept ctx.p T.Comma then
          Some (Const_eval.positive_int (const_expr ctx))
        else None
      in
      P.expect ctx.p T.Rangle;
      Aoi.Sequence (elem, bound)
  | T.Ident "struct" ->
      let name, fields = struct_decl ctx defs in
      defs := Aoi.Dtype (name, Aoi.Struct_type fields) :: !defs;
      Aoi.Named [ name ]
  | T.Ident "union" ->
      let name, u = union_decl ctx defs in
      defs := Aoi.Dtype (name, Aoi.Union_type u) :: !defs;
      Aoi.Named [ name ]
  | T.Ident "enum" ->
      let name, names = enum_decl ctx in
      defs := Aoi.Dtype (name, Aoi.Enum_type names) :: !defs;
      Aoi.Named [ name ]
  | T.Ident ("any" | "wchar" | "wstring" | "fixed" | "Object") ->
      let k = P.expect_ident ctx.p in
      unsupported ctx k
  | T.Ident _ | T.Coloncolon -> Aoi.Named (P.scoped_name ctx.p)
  | _ -> P.syntax_error ctx.p ~expected:"a type specification"

(* declarator: id with optional fixed-array dimensions *)
and declarator ctx =
  let name = P.expect_ident ctx.p in
  let rec dims acc =
    if P.accept ctx.p T.Lbracket then begin
      let d = Const_eval.positive_int (const_expr ctx) in
      P.expect ctx.p T.Rbracket;
      dims (d :: acc)
    end
    else List.rev acc
  in
  (name, dims [])

and apply_dims ty = function [] -> ty | dims -> Aoi.Array (ty, dims)

and member_list ctx defs =
  let rec go acc =
    if P.peek ctx.p = T.Rbrace then List.rev acc
    else begin
      let ty = type_spec ctx defs in
      let decls = P.comma_list ctx.p (fun _ -> declarator ctx) in
      P.expect ctx.p T.Semi;
      let fields =
        List.map
          (fun (name, dims) -> { Aoi.f_name = name; f_type = apply_dims ty dims })
          decls
      in
      go (List.rev_append fields acc)
    end
  in
  go []

and struct_decl ctx defs =
  (* Inline constructed member types are hoisted into [defs], the
     enclosing scope, as CORBA scoping requires. *)
  P.expect_kw ctx.p "struct";
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lbrace;
  let fields = member_list ctx defs in
  P.expect ctx.p T.Rbrace;
  (name, fields)

and union_decl ctx defs =
  P.expect_kw ctx.p "union";
  let name = P.expect_ident ctx.p in
  P.expect_kw ctx.p "switch";
  P.expect ctx.p T.Lparen;
  let discrim = switch_type ctx in
  P.expect ctx.p T.Rparen;
  P.expect ctx.p T.Lbrace;
  let cases = ref [] in
  let default = ref None in
  let rec go () =
    if P.peek ctx.p = T.Rbrace then ()
    else begin
      let labels = ref [] in
      let is_default = ref false in
      let rec labels_loop () =
        if P.accept_kw ctx.p "case" then begin
          let v = const_expr ctx in
          P.expect ctx.p T.Colon;
          labels := v :: !labels;
          labels_loop ()
        end
        else if P.accept_kw ctx.p "default" then begin
          P.expect ctx.p T.Colon;
          is_default := true;
          labels_loop ()
        end
      in
      labels_loop ();
      if !labels = [] && not !is_default then
        P.syntax_error ctx.p ~expected:"'case' or 'default'";
      let ty = type_spec ctx defs in
      let fname, dims = declarator ctx in
      P.expect ctx.p T.Semi;
      let field = { Aoi.f_name = fname; f_type = apply_dims ty dims } in
      (if !is_default then
         match !default with
         | Some _ -> Diag.error ~loc:(P.last_loc ctx.p) "duplicate default case"
         | None -> default := Some field);
      if !labels <> [] then
        cases := { Aoi.c_labels = List.rev !labels; c_field = field } :: !cases;
      go ()
    end
  in
  go ();
  P.expect ctx.p T.Rbrace;
  if !cases = [] && !default = None then
    Diag.error ~loc:(P.last_loc ctx.p) "union %s has no cases" name;
  (name, { Aoi.u_discrim = discrim; u_cases = List.rev !cases; u_default = !default })

and switch_type ctx : Aoi.typ =
  match P.peek ctx.p with
  | T.Ident "long" | T.Ident "short" | T.Ident "unsigned" | T.Ident "char"
  | T.Ident "boolean" ->
      let defs = ref [] in
      type_spec ctx defs
  | T.Ident "enum" ->
      let name, names = enum_decl ctx in
      ignore name;
      Aoi.Enum_type names
  | T.Ident _ | T.Coloncolon -> Aoi.Named (P.scoped_name ctx.p)
  | _ -> P.syntax_error ctx.p ~expected:"a switch type"

and enum_decl ctx =
  P.expect_kw ctx.p "enum";
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lbrace;
  let ids = P.comma_list ctx.p (fun p -> P.expect_ident p) in
  P.expect ctx.p T.Rbrace;
  register_enum ctx ids;
  (* CORBA enumerators take consecutive ordinals starting at zero *)
  (name, List.mapi (fun i n -> (n, Int64.of_int i)) ids)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let const_decl ctx defs =
  P.expect_kw ctx.p "const";
  let ty = type_spec ctx defs in
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Equal;
  let v = const_expr ctx in
  P.expect ctx.p T.Semi;
  add_const ctx name v;
  Aoi.Dconst (name, ty, v)

let exception_decl ctx defs =
  P.expect_kw ctx.p "exception";
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lbrace;
  let fields = member_list ctx defs in
  P.expect ctx.p T.Rbrace;
  P.expect ctx.p T.Semi;
  Aoi.Dexception (name, fields)

let typedef_decl ctx defs =
  P.expect_kw ctx.p "typedef";
  let ty = type_spec ctx defs in
  let decls = P.comma_list ctx.p (fun _ -> declarator ctx) in
  P.expect ctx.p T.Semi;
  List.map (fun (name, dims) -> Aoi.Dtype (name, apply_dims ty dims)) decls

let param ctx defs : Aoi.param =
  let dir =
    if P.accept_kw ctx.p "in" then Aoi.In
    else if P.accept_kw ctx.p "out" then Aoi.Out
    else if P.accept_kw ctx.p "inout" then Aoi.Inout
    else P.syntax_error ctx.p ~expected:"'in', 'out' or 'inout'"
  in
  let ty = type_spec ctx defs in
  let name = P.expect_ident ctx.p in
  { Aoi.p_name = name; p_dir = dir; p_type = ty }

let operation ctx defs ~code : Aoi.operation =
  let oneway = P.accept_kw ctx.p "oneway" in
  let ret =
    if P.accept_kw ctx.p "void" then Aoi.Void else type_spec ctx defs
  in
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lparen;
  let params =
    if P.peek ctx.p = T.Rparen then []
    else P.comma_list ctx.p (fun _ -> param ctx defs)
  in
  P.expect ctx.p T.Rparen;
  let raises =
    if P.accept_kw ctx.p "raises" then begin
      P.expect ctx.p T.Lparen;
      let names = P.comma_list ctx.p (fun p -> P.scoped_name p) in
      P.expect ctx.p T.Rparen;
      names
    end
    else []
  in
  (if P.accept_kw ctx.p "context" then begin
     P.expect ctx.p T.Lparen;
     let _ = P.comma_list ctx.p (fun p ->
       match P.next p with
       | T.String_lit s -> s
       | _ -> P.syntax_error p ~expected:"a context string literal")
     in
     P.expect ctx.p T.Rparen
   end);
  P.expect ctx.p T.Semi;
  {
    Aoi.op_name = name;
    op_oneway = oneway;
    op_return = ret;
    op_params = params;
    op_raises = raises;
    op_code = code;
  }

let attribute ctx defs : Aoi.attribute list =
  let readonly = P.accept_kw ctx.p "readonly" in
  P.expect_kw ctx.p "attribute";
  let ty = type_spec ctx defs in
  let names = P.comma_list ctx.p (fun p -> P.expect_ident p) in
  P.expect ctx.p T.Semi;
  List.map
    (fun n -> { Aoi.at_name = n; at_type = ty; at_readonly = readonly })
    names

let rec interface_decl ctx =
  P.expect_kw ctx.p "interface";
  let name = P.expect_ident ctx.p in
  if P.peek ctx.p = T.Semi then begin
    (* forward declaration *)
    ignore (P.next ctx.p);
    None
  end
  else begin
    let parents =
      if P.accept ctx.p T.Colon then P.comma_list ctx.p (fun p -> P.scoped_name p)
      else []
    in
    P.expect ctx.p T.Lbrace;
    let saved_scope = ctx.scope in
    ctx.scope <- ctx.scope @ [ name ];
    let defs = ref [] in
    let ops = ref [] in
    let attrs = ref [] in
    let code = ref 0L in
    let next_code () =
      let c = !code in
      code := Int64.add c 1L;
      c
    in
    let rec exports () =
      if P.peek ctx.p = T.Rbrace then ()
      else begin
        (match P.peek ctx.p with
        | T.Ident "typedef" -> defs := List.rev_append (typedef_decl ctx defs) !defs
        | T.Ident "const" -> defs := const_decl ctx defs :: !defs
        | T.Ident "exception" -> defs := exception_decl ctx defs :: !defs
        | T.Ident "struct" ->
            let n, fields = struct_decl ctx defs in
            P.expect ctx.p T.Semi;
            defs := Aoi.Dtype (n, Aoi.Struct_type fields) :: !defs
        | T.Ident "union" ->
            let n, u = union_decl ctx defs in
            P.expect ctx.p T.Semi;
            defs := Aoi.Dtype (n, Aoi.Union_type u) :: !defs
        | T.Ident "enum" ->
            let n, names = enum_decl ctx in
            P.expect ctx.p T.Semi;
            defs := Aoi.Dtype (n, Aoi.Enum_type names) :: !defs
        | T.Ident "readonly" | T.Ident "attribute" ->
            attrs := List.rev_append (attribute ctx defs) !attrs
        | _ -> ops := operation ctx defs ~code:(next_code ()) :: !ops);
        exports ()
      end
    in
    exports ();
    P.expect ctx.p T.Rbrace;
    P.expect ctx.p T.Semi;
    ctx.scope <- saved_scope;
    Some
      {
        Aoi.i_name = name;
        i_parents = parents;
        i_defs = List.rev !defs;
        i_ops = List.rev !ops;
        i_attrs = List.rev !attrs;
        i_program = None;
      }
  end

and module_decl ctx =
  P.expect_kw ctx.p "module";
  let name = P.expect_ident ctx.p in
  P.expect ctx.p T.Lbrace;
  let saved_scope = ctx.scope in
  ctx.scope <- ctx.scope @ [ name ];
  let defs = definitions ctx in
  P.expect ctx.p T.Rbrace;
  P.expect ctx.p T.Semi;
  ctx.scope <- saved_scope;
  Aoi.Dmodule (name, defs)

and definitions ctx =
  let defs = ref [] in
  let rec go () =
    match P.peek ctx.p with
    | T.Eof | T.Rbrace -> ()
    | T.Ident "module" ->
        defs := module_decl ctx :: !defs;
        go ()
    | T.Ident "interface" ->
        (match interface_decl ctx with
        | Some i -> defs := Aoi.Dinterface i :: !defs
        | None -> ());
        go ()
    | T.Ident "typedef" ->
        defs := List.rev_append (typedef_decl ctx defs) !defs;
        go ()
    | T.Ident "struct" ->
        let n, fields = struct_decl ctx defs in
        P.expect ctx.p T.Semi;
        defs := Aoi.Dtype (n, Aoi.Struct_type fields) :: !defs;
        go ()
    | T.Ident "union" ->
        let n, u = union_decl ctx defs in
        P.expect ctx.p T.Semi;
        defs := Aoi.Dtype (n, Aoi.Union_type u) :: !defs;
        go ()
    | T.Ident "enum" ->
        let n, names = enum_decl ctx in
        P.expect ctx.p T.Semi;
        defs := Aoi.Dtype (n, Aoi.Enum_type names) :: !defs;
        go ()
    | T.Ident "const" ->
        defs := const_decl ctx defs :: !defs;
        go ()
    | T.Ident "exception" ->
        defs := exception_decl ctx defs :: !defs;
        go ()
    | _ -> P.syntax_error ctx.p ~expected:"a definition"
  in
  go ();
  List.rev !defs

let parse ?(file = "<string>") src =
  let ctx = { p = P.of_string ~file src; consts = Hashtbl.create 16; scope = [] } in
  let defs = definitions ctx in
  P.expect ctx.p T.Eof;
  { Aoi.s_file = file; s_defs = defs }
