(** Shared lexer for the three supported IDLs.

    Handles C-style comments ([/* */] and [//]), preprocessor lines
    beginning with [#] (skipped, as Flick relies on a prior cpp pass),
    and rpcgen pass-through lines beginning with [%] (also skipped).
    Integer literals may be decimal, octal ([0...]) or hexadecimal
    ([0x...]).  Raises {!Diag.Error} on malformed input. *)

type t

val of_string : ?file:string -> string -> t
(** Lex from an in-memory buffer.  [file] is used in locations. *)

val next : t -> Idl_token.t * Loc.t
(** Consume and return the next token.  Returns {!Idl_token.Eof} forever at
    the end of input. *)

val peek : t -> Idl_token.t * Loc.t
(** Look at the next token without consuming it. *)

val peek2 : t -> Idl_token.t
(** Look two tokens ahead (used by parsers to disambiguate). *)

val tokens_of_string : ?file:string -> string -> (Idl_token.t * Loc.t) list
(** Convenience: lex a whole buffer, excluding the final [Eof]. *)
