(** ONC RPC (rpcgen [.x]) front end (paper section 2.1).

    Parses the XDR/RPC language of RFC 1832 plus the [program]/[version]
    extension of RFC 1831, as accepted by Sun's rpcgen, and produces
    AOI.  Each [version] block becomes an AOI interface named after the
    version, nested in a module named after the program; procedure
    numbers become operation codes and the (program, version) numbers
    are recorded in {!Aoi.interface.i_program}.

    Supported: [typedef] with XDR declarators (fixed [\[n\]] and
    variable [<n>] arrays, [opaque], [string], [*] optional data),
    [struct], discriminated [union] (including [void] arms), [enum]
    with explicit values, [const], nested constant expressions, and
    multi-argument procedures (an rpcgen extension).  [quadruple] is
    rejected.  [%] pass-through lines and [#] directives are skipped by
    the lexer. *)

val parse : ?file:string -> string -> Aoi.spec
(** Raises {!Diag.Error} on any syntax or semantic error. *)
