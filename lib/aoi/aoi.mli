(** AOI: the Abstract Object Interface (paper section 2.1.1).

    AOI is Flick's highest-level intermediate representation.  It
    describes the {e network contract} declared by an IDL specification
    — data types, constants, exceptions, interfaces, operations and
    attributes — independently of any target-language mapping, message
    encoding, or transport.  Both the CORBA and the ONC RPC front ends
    produce AOI; the presentation generators consume it. *)

type qname = string list
(** Qualified name, outermost scope first; [["M"; "Mail"]] is [M::Mail]. *)

type integer_kind = {
  bits : int;  (** 8, 16, 32 or 64 *)
  signed : bool;
}

(** Constant values, as produced by constant-expression evaluation. *)
type const =
  | Const_int of int64
  | Const_bool of bool
  | Const_char of char
  | Const_string of string
  | Const_float of float
  | Const_enum of qname  (** reference to an enumerator *)

type typ =
  | Void
  | Boolean
  | Char
  | Octet  (** uninterpreted 8-bit quantity (CORBA [octet], XDR opaque element) *)
  | Integer of integer_kind
  | Float of int  (** 32 or 64 bits *)
  | String of int option  (** optional bound *)
  | Sequence of typ * int option  (** CORBA sequence / XDR variable array *)
  | Array of typ * int list  (** fixed array, one entry per dimension *)
  | Named of qname  (** reference to a type definition in scope *)
  | Struct_type of field list
  | Union_type of union_body
  | Enum_type of (string * int64) list
      (** enumerators with explicit wire values; CORBA assigns 0..n-1 *)
  | Optional of typ  (** XDR optional data ([type *name]); 0-or-1 sequence *)
  | Object of qname  (** object reference to an interface *)

and field = {
  f_name : string;
  f_type : typ;
}

and union_body = {
  u_discrim : typ;  (** integral, enum, char or boolean type *)
  u_cases : union_case list;
  u_default : field option;
}

and union_case = {
  c_labels : const list;  (** one arm may carry several [case] labels *)
  c_field : field;
}

type param_dir = In | Out | Inout

type param = {
  p_name : string;
  p_dir : param_dir;
  p_type : typ;
}

(** An operation of an interface, with the codes used to identify its
    request and reply messages on the wire (e.g. the ONC RPC procedure
    number, or an index assigned by the CORBA front end for GIOP's
    operation-name dispatch). *)
type operation = {
  op_name : string;
  op_oneway : bool;
  op_return : typ;
  op_params : param list;
  op_raises : qname list;  (** exceptions this operation may raise *)
  op_code : int64;
}

type attribute = {
  at_name : string;
  at_type : typ;
  at_readonly : bool;
}

type interface = {
  i_name : string;
  i_parents : qname list;
  i_defs : def list;  (** types, constants and exceptions declared inside *)
  i_ops : operation list;
  i_attrs : attribute list;
  i_program : (int64 * int64) option;
      (** ONC RPC (program, version) numbers, when derived from an ONC
          specification *)
}

and def =
  | Dtype of string * typ  (** [typedef], [struct], [union], [enum] declaration *)
  | Dconst of string * typ * const
  | Dexception of string * field list
  | Dinterface of interface
  | Dmodule of string * def list

type spec = {
  s_file : string;
  s_defs : def list;
}

val def_name : def -> string

val qname_to_string : qname -> string
(** Renders with ["::"] separators. *)

val interfaces : spec -> (qname * interface) list
(** All interfaces in the specification, with their fully qualified
    names, in declaration order (recurses into modules). *)

val attribute_operations : interface -> operation list
(** The getter (and setter, unless [readonly]) operations implied by the
    interface's attributes, in CORBA style ([_get_x] / [_set_x]), with
    operation codes following the interface's explicit operations. *)

val equal_typ : typ -> typ -> bool
val pp_const : Format.formatter -> const -> unit
