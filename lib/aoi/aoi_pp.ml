let pp_qname ppf q = Format.pp_print_string ppf (Aoi.qname_to_string q)

(* IDL puts array dimensions after the declared name, C style; nested
   arrays flatten into one dimension list *)
let rec split_array_dims (ty : Aoi.typ) =
  match ty with
  | Aoi.Array (elem, dims) ->
      let base, inner = split_array_dims elem in
      (base, dims @ inner)
  | _ -> (ty, [])

let integer_name (k : Aoi.integer_kind) =
  match (k.bits, k.signed) with
  | 8, true -> "int8"
  | 8, false -> "uint8"
  | 16, true -> "short"
  | 16, false -> "unsigned short"
  | 32, true -> "long"
  | 32, false -> "unsigned long"
  | 64, true -> "long long"
  | 64, false -> "unsigned long long"
  | _, _ -> Printf.sprintf "int%d" k.bits

let rec pp_typ ppf (ty : Aoi.typ) =
  match ty with
  | Aoi.Void -> Format.pp_print_string ppf "void"
  | Aoi.Boolean -> Format.pp_print_string ppf "boolean"
  | Aoi.Char -> Format.pp_print_string ppf "char"
  | Aoi.Octet -> Format.pp_print_string ppf "octet"
  | Aoi.Integer k -> Format.pp_print_string ppf (integer_name k)
  | Aoi.Float 32 -> Format.pp_print_string ppf "float"
  | Aoi.Float _ -> Format.pp_print_string ppf "double"
  | Aoi.String None -> Format.pp_print_string ppf "string"
  | Aoi.String (Some b) -> Format.fprintf ppf "string<%d>" b
  | Aoi.Sequence (elem, None) -> Format.fprintf ppf "sequence<%a>" pp_typ elem
  | Aoi.Sequence (elem, Some b) -> Format.fprintf ppf "sequence<%a, %d>" pp_typ elem b
  | Aoi.Array (elem, dims) ->
      Format.fprintf ppf "%a%a" pp_typ elem
        (Format.pp_print_list ~pp_sep:(fun _ () -> ())
           (fun ppf d -> Format.fprintf ppf "[%d]" d))
        dims
  | Aoi.Named q -> pp_qname ppf q
  | Aoi.Struct_type fields ->
      Format.fprintf ppf "@[<v 2>struct {@,%a@]@,}" pp_fields fields
  | Aoi.Union_type u -> pp_union ppf u
  | Aoi.Enum_type names ->
      Format.fprintf ppf "enum { %a }"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (n, _) -> Format.pp_print_string ppf n))
        names
  | Aoi.Optional elem -> Format.fprintf ppf "%a?" pp_typ elem
  | Aoi.Object q -> Format.fprintf ppf "object %a" pp_qname q

and pp_declared ppf (ty, name) =
  let base, dims = split_array_dims ty in
  Format.fprintf ppf "%a %s%a" pp_typ base name
    (Format.pp_print_list ~pp_sep:(fun _ () -> ())
       (fun ppf d -> Format.fprintf ppf "[%d]" d))
    dims

and pp_fields ppf fields =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    (fun ppf (f : Aoi.field) ->
      Format.fprintf ppf "%a;" pp_declared (f.Aoi.f_type, f.Aoi.f_name))
    ppf fields

and pp_union ppf (u : Aoi.union_body) =
  Format.fprintf ppf "@[<v 2>union switch (%a) {@," pp_typ u.Aoi.u_discrim;
  List.iter
    (fun (c : Aoi.union_case) ->
      List.iter
        (fun label -> Format.fprintf ppf "case %a:@," Aoi.pp_const label)
        c.Aoi.c_labels;
      Format.fprintf ppf "  %a;@," pp_declared
        (c.Aoi.c_field.Aoi.f_type, c.Aoi.c_field.Aoi.f_name))
    u.Aoi.u_cases;
  (match u.Aoi.u_default with
  | None -> ()
  | Some f ->
      Format.fprintf ppf "default:@,  %a;@," pp_declared (f.Aoi.f_type, f.Aoi.f_name));
  Format.fprintf ppf "@]}"

let pp_param ppf (p : Aoi.param) =
  let dir =
    match p.Aoi.p_dir with
    | Aoi.In -> "in"
    | Aoi.Out -> "out"
    | Aoi.Inout -> "inout"
  in
  Format.fprintf ppf "%s %a" dir pp_declared (p.Aoi.p_type, p.Aoi.p_name)

let pp_operation ppf (op : Aoi.operation) =
  Format.fprintf ppf "%s%a %s(%a)%a; // code %Ld"
    (if op.Aoi.op_oneway then "oneway " else "")
    pp_typ op.Aoi.op_return op.Aoi.op_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_param)
    op.Aoi.op_params
    (fun ppf raises ->
      match raises with
      | [] -> ()
      | _ ->
          Format.fprintf ppf " raises (%a)"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               pp_qname)
            raises)
    op.Aoi.op_raises op.Aoi.op_code

let rec pp_def ppf (def : Aoi.def) =
  match def with
  | Aoi.Dtype (n, (Aoi.Struct_type fields)) ->
      Format.fprintf ppf "@[<v 2>struct %s {@,%a@]@,};" n pp_fields fields
  | Aoi.Dtype (n, Aoi.Enum_type names) ->
      Format.fprintf ppf "enum %s { %a };" n
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (en, _) -> Format.pp_print_string ppf en))
        names
  | Aoi.Dtype (n, (Aoi.Union_type u)) ->
      Format.fprintf ppf "@[<v>union %s switch (%a) %a;@]" n pp_typ u.Aoi.u_discrim
        (fun ppf u -> pp_union_body_only ppf u) u
  | Aoi.Dtype (n, ty) -> Format.fprintf ppf "typedef %a;" pp_declared (ty, n)
  | Aoi.Dconst (n, ty, v) ->
      Format.fprintf ppf "const %a %s = %a;" pp_typ ty n Aoi.pp_const v
  | Aoi.Dexception (n, fields) ->
      Format.fprintf ppf "@[<v 2>exception %s {@,%a@]@,};" n pp_fields fields
  | Aoi.Dinterface i -> pp_interface ppf i
  | Aoi.Dmodule (n, defs) ->
      Format.fprintf ppf "@[<v 2>module %s {@,%a@]@,};" n pp_defs defs

and pp_union_body_only ppf (u : Aoi.union_body) =
  Format.fprintf ppf "@[<v 2>{@,";
  List.iter
    (fun (c : Aoi.union_case) ->
      List.iter
        (fun label -> Format.fprintf ppf "case %a:@," Aoi.pp_const label)
        c.Aoi.c_labels;
      Format.fprintf ppf "  %a;@," pp_declared
        (c.Aoi.c_field.Aoi.f_type, c.Aoi.c_field.Aoi.f_name))
    u.Aoi.u_cases;
  (match u.Aoi.u_default with
  | None -> ()
  | Some f ->
      Format.fprintf ppf "default:@,  %a;@," pp_declared (f.Aoi.f_type, f.Aoi.f_name));
  Format.fprintf ppf "@]}"

and pp_interface ppf (i : Aoi.interface) =
  Format.fprintf ppf "@[<v 2>interface %s%a {" i.Aoi.i_name
    (fun ppf parents ->
      match parents with
      | [] -> ()
      | _ ->
          Format.fprintf ppf " : %a"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               pp_qname)
            parents)
    i.Aoi.i_parents;
  (match i.Aoi.i_program with
  | None -> ()
  | Some (prog, vers) ->
      Format.fprintf ppf "@,// ONC RPC program 0x%Lx version %Ld" prog vers);
  List.iter (fun d -> Format.fprintf ppf "@,%a" pp_def d) i.Aoi.i_defs;
  List.iter
    (fun (a : Aoi.attribute) ->
      Format.fprintf ppf "@,%sattribute %a %s;"
        (if a.Aoi.at_readonly then "readonly " else "")
        pp_typ a.Aoi.at_type a.Aoi.at_name)
    i.Aoi.i_attrs;
  List.iter (fun op -> Format.fprintf ppf "@,%a" pp_operation op) i.Aoi.i_ops;
  Format.fprintf ppf "@]@,};"

and pp_defs ppf defs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    pp_def ppf defs

let pp_spec ppf (spec : Aoi.spec) =
  Format.fprintf ppf "@[<v>// AOI for %s@,%a@]@." spec.Aoi.s_file pp_defs
    spec.Aoi.s_defs

let spec_to_string spec = Format.asprintf "%a" pp_spec spec
