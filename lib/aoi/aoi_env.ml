
type binding =
  | Btype of Aoi.typ
  | Bconst of Aoi.typ * Aoi.const
  | Benumerator of Aoi.qname * int64
  | Bexception of Aoi.field list
  | Binterface of Aoi.interface
  | Bmodule

type t = { table : (string, Aoi.qname * binding) Hashtbl.t }

let key (q : Aoi.qname) = String.concat "::" q

let add t qname binding =
  let k = key qname in
  if Hashtbl.mem t.table k then
    Diag.error "duplicate definition of %s" (Aoi.qname_to_string qname);
  Hashtbl.add t.table k (qname, binding)

(* Enumerators declared by a type [ty] named [owner] become constants in
   the scope that declares the enum (the CORBA scoping rule). *)
let add_enumerators t scope owner ty =
  match (ty : Aoi.typ) with
  | Aoi.Enum_type names ->
      List.iter
        (fun (n, value) -> add t (scope @ [ n ]) (Benumerator (owner, value)))
        names
  | Aoi.Void | Aoi.Boolean | Aoi.Char | Aoi.Octet | Aoi.Integer _ | Aoi.Float _
  | Aoi.String _ | Aoi.Sequence _ | Aoi.Array _ | Aoi.Named _ | Aoi.Struct_type _
  | Aoi.Union_type _ | Aoi.Optional _ | Aoi.Object _ ->
      ()

let rec add_defs t scope defs =
  List.iter
    (fun (def : Aoi.def) ->
      match def with
      | Aoi.Dtype (n, ty) ->
          let qn = scope @ [ n ] in
          add t qn (Btype ty);
          add_enumerators t scope qn ty
      | Aoi.Dconst (n, ty, v) -> add t (scope @ [ n ]) (Bconst (ty, v))
      | Aoi.Dexception (n, fields) -> add t (scope @ [ n ]) (Bexception fields)
      | Aoi.Dinterface i ->
          let qn = scope @ [ i.Aoi.i_name ] in
          add t qn (Binterface i);
          add_defs t qn i.Aoi.i_defs
      | Aoi.Dmodule (n, sub) ->
          let qn = scope @ [ n ] in
          add t qn Bmodule;
          add_defs t qn sub)
    defs

let build (spec : Aoi.spec) =
  let t = { table = Hashtbl.create 64 } in
  add_defs t [] spec.Aoi.s_defs;
  t

let resolve t ~scope q =
  match q with
  | "" :: abs -> Hashtbl.find_opt t.table (key abs)
  | _ ->
      let rec search scope =
        match Hashtbl.find_opt t.table (key (scope @ q)) with
        | Some r -> Some r
        | None -> (
            match List.rev scope with
            | [] -> None
            | _ :: outer_rev -> search (List.rev outer_rev))
      in
      search scope

let resolve_exn t ~scope q =
  match resolve t ~scope q with
  | Some r -> r
  | None ->
      Diag.error "unresolved name %s (in scope %s)" (Aoi.qname_to_string q)
        (match scope with [] -> "<global>" | _ -> Aoi.qname_to_string scope)

let fold f t init =
  Hashtbl.fold (fun _ (qn, b) acc -> f qn b acc) t.table init
