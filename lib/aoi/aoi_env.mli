(** Name resolution environments for AOI specifications.

    An environment records every name introduced by a specification —
    types, constants, enumerators, exceptions, interfaces and modules —
    keyed by fully qualified name.  Resolution searches from an inner
    scope outward, following the scoping rules shared by the CORBA and
    ONC RPC IDLs. *)

type binding =
  | Btype of Aoi.typ
  | Bconst of Aoi.typ * Aoi.const
  | Benumerator of Aoi.qname * int64
      (** enumerator: (qualified name of the enum type, wire value) *)
  | Bexception of Aoi.field list
  | Binterface of Aoi.interface
  | Bmodule

type t

val build : Aoi.spec -> t
(** Index a specification.  Raises {!Diag.Error} when two
    definitions in the same scope share a name. *)

val resolve : t -> scope:Aoi.qname -> Aoi.qname -> (Aoi.qname * binding) option
(** [resolve t ~scope q] looks [q] up starting in [scope] and walking
    outward to the global scope.  A [q] beginning with the empty string
    (rendered "::q") is absolute. *)

val resolve_exn : t -> scope:Aoi.qname -> Aoi.qname -> Aoi.qname * binding
(** Like {!resolve} but raises a diagnostic for unknown names. *)

val fold : (Aoi.qname -> binding -> 'a -> 'a) -> t -> 'a -> 'a
