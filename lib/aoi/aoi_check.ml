
type report = {
  env : Aoi_env.t;
  self_referential : Aoi.qname list;
  exception_count : int;
  warnings : Diag.t list;
}

let key q = String.concat "::" q

(* ------------------------------------------------------------------ *)
(* Structural checks on a single type                                  *)
(* ------------------------------------------------------------------ *)

let check_unique what names =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then Diag.error "duplicate %s %s" what n;
      Hashtbl.add seen n ())
    names

let rec discrim_kind env scope (ty : Aoi.typ) =
  match ty with
  | Aoi.Integer _ -> `Int
  | Aoi.Boolean -> `Bool
  | Aoi.Char -> `Char
  | Aoi.Enum_type names -> `Enum names
  | Aoi.Named q -> (
      match Aoi_env.resolve_exn env ~scope q with
      | _, Aoi_env.Btype ty' -> discrim_kind env scope ty'
      | _, ( Aoi_env.Bconst _ | Aoi_env.Benumerator _ | Aoi_env.Bexception _
           | Aoi_env.Binterface _ | Aoi_env.Bmodule ) ->
          Diag.error "union discriminator %s does not name a type"
            (Aoi.qname_to_string q))
  | Aoi.Void | Aoi.Octet | Aoi.Float _ | Aoi.String _ | Aoi.Sequence _
  | Aoi.Array _ | Aoi.Struct_type _ | Aoi.Union_type _ | Aoi.Optional _
  | Aoi.Object _ ->
      Diag.error "invalid union discriminator type"

let label_key (c : Aoi.const) =
  match c with
  | Aoi.Const_int n -> Printf.sprintf "i%Ld" n
  | Aoi.Const_bool b -> Printf.sprintf "b%B" b
  | Aoi.Const_char c -> Printf.sprintf "c%d" (Char.code c)
  | Aoi.Const_enum q -> "e" ^ String.concat "::" q
  | Aoi.Const_string _ | Aoi.Const_float _ ->
      Diag.error "invalid union case label"

let check_label_kind kind (c : Aoi.const) =
  match (kind, c) with
  | `Int, Aoi.Const_int _
  | `Bool, Aoi.Const_bool _
  | `Char, Aoi.Const_char _
  | `Enum _, Aoi.Const_enum _
  (* enum labels may also be written as bare integers by the ONC front end *)
  | `Enum _, Aoi.Const_int _ ->
      ()
  | ( (`Int | `Bool | `Char | `Enum _),
      ( Aoi.Const_int _ | Aoi.Const_bool _ | Aoi.Const_char _ | Aoi.Const_enum _
      | Aoi.Const_string _ | Aoi.Const_float _ ) ) ->
      Diag.error "union case label does not match the discriminator type"

let rec check_typ env scope ~allow_void (ty : Aoi.typ) =
  match ty with
  | Aoi.Void -> if not allow_void then Diag.error "void is only valid as a return type"
  | Aoi.Boolean | Aoi.Char | Aoi.Octet -> ()
  | Aoi.Integer { bits; signed = _ } ->
      if not (List.mem bits [ 8; 16; 32; 64 ]) then
        Diag.error "invalid integer width %d" bits
  | Aoi.Float bits ->
      if bits <> 32 && bits <> 64 then Diag.error "invalid float width %d" bits
  | Aoi.String bound -> (
      match bound with
      | Some b when b <= 0 -> Diag.error "string bound must be positive"
      | Some _ | None -> ())
  | Aoi.Sequence (elem, bound) ->
      (match bound with
      | Some b when b <= 0 -> Diag.error "sequence bound must be positive"
      | Some _ | None -> ());
      check_typ env scope ~allow_void:false elem
  | Aoi.Array (elem, dims) ->
      if dims = [] then Diag.error "array must have at least one dimension";
      List.iter (fun d -> if d <= 0 then Diag.error "array dimension must be positive") dims;
      check_typ env scope ~allow_void:false elem
  | Aoi.Named q -> (
      match Aoi_env.resolve_exn env ~scope q with
      | _, (Aoi_env.Btype _ | Aoi_env.Binterface _) -> ()
      | _, ( Aoi_env.Bconst _ | Aoi_env.Benumerator _ | Aoi_env.Bexception _
           | Aoi_env.Bmodule ) ->
          Diag.error "%s does not name a type" (Aoi.qname_to_string q))
  | Aoi.Struct_type fields ->
      if fields = [] then Diag.error "struct must have at least one member";
      check_unique "struct member" (List.map (fun f -> f.Aoi.f_name) fields);
      List.iter (fun f -> check_typ env scope ~allow_void:false f.Aoi.f_type) fields
  | Aoi.Union_type u ->
      let kind = discrim_kind env scope u.Aoi.u_discrim in
      if u.Aoi.u_cases = [] && u.Aoi.u_default = None then
        Diag.error "union must have at least one case";
      let labels = List.concat_map (fun c -> c.Aoi.c_labels) u.Aoi.u_cases in
      List.iter (check_label_kind kind) labels;
      check_unique "union case label" (List.map label_key labels);
      check_unique "union member"
        (List.map (fun c -> c.Aoi.c_field.Aoi.f_name) u.Aoi.u_cases
        @ match u.Aoi.u_default with None -> [] | Some f -> [ f.Aoi.f_name ]);
      (* XDR permits void union arms ("case 0: void;") *)
      List.iter
        (fun c -> check_typ env scope ~allow_void:true c.Aoi.c_field.Aoi.f_type)
        u.Aoi.u_cases;
      (match u.Aoi.u_default with
      | None -> ()
      | Some f -> check_typ env scope ~allow_void:true f.Aoi.f_type)
  | Aoi.Enum_type names ->
      if names = [] then Diag.error "enum must have at least one enumerator";
      check_unique "enumerator" (List.map fst names);
      check_unique "enumerator value"
        (List.map (fun (_, v) -> Int64.to_string v) names)
  | Aoi.Optional elem -> check_typ env scope ~allow_void:false elem
  | Aoi.Object q -> (
      match Aoi_env.resolve_exn env ~scope q with
      | _, Aoi_env.Binterface _ -> ()
      | _, ( Aoi_env.Btype _ | Aoi_env.Bconst _ | Aoi_env.Benumerator _
           | Aoi_env.Bexception _ | Aoi_env.Bmodule ) ->
          Diag.error "%s does not name an interface" (Aoi.qname_to_string q))

(* ------------------------------------------------------------------ *)
(* Recursion classification                                            *)
(* ------------------------------------------------------------------ *)

(* Walk the type graph from every named type.  [path] holds the named
   types currently being expanded, innermost last, each paired with a
   flag saying whether the edge *into* it was guarded by an Optional or
   Sequence constructor.  A cycle whose back edge cannot see a guard is
   an illegal direct recursion; a guarded cycle marks every participant
   as self-referential. *)
let classify_recursion env (spec : Aoi.spec) =
  let self_ref : (string, Aoi.qname) Hashtbl.t = Hashtbl.create 8 in
  let finished : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec walk scope path ~guarded (ty : Aoi.typ) =
    match ty with
    | Aoi.Void | Aoi.Boolean | Aoi.Char | Aoi.Octet | Aoi.Integer _ | Aoi.Float _
    | Aoi.String _ | Aoi.Enum_type _ | Aoi.Object _ ->
        ()
    | Aoi.Sequence (elem, _) | Aoi.Optional elem ->
        walk scope path ~guarded:true elem
    | Aoi.Array (elem, _) -> walk scope path ~guarded elem
    | Aoi.Struct_type fields ->
        List.iter (fun f -> walk scope path ~guarded f.Aoi.f_type) fields
    | Aoi.Union_type u ->
        List.iter (fun c -> walk scope path ~guarded c.Aoi.c_field.Aoi.f_type) u.Aoi.u_cases;
        (match u.Aoi.u_default with
        | None -> ()
        | Some f -> walk scope path ~guarded f.Aoi.f_type)
    | Aoi.Named q -> (
        match Aoi_env.resolve_exn env ~scope q with
        | _, Aoi_env.Binterface _ -> ()
        | qn, Aoi_env.Btype ty' -> visit qn path ~guarded ty'
        | _, ( Aoi_env.Bconst _ | Aoi_env.Benumerator _ | Aoi_env.Bexception _
             | Aoi_env.Bmodule ) ->
            ())
  and visit qn path ~guarded ty =
    let k = key qn in
    (* [path] lists the named types being expanded, innermost first, each
       with the guardedness of the edge leading *into* it.  For a back
       edge to [k], the cycle's edges are the current edge plus the
       entering edges of every node above the older occurrence of [k];
       the entering edge of [k] itself is outside the cycle. *)
    let rec on_path acc = function
      | [] -> None
      | (k', g') :: rest -> if k' = k then Some acc else on_path (acc || g') rest
    in
    match on_path guarded path with
    | Some cycle_guarded ->
        if cycle_guarded then begin
          let rec mark = function
            | [] -> ()
            | (k', _) :: rest ->
                if not (Hashtbl.mem self_ref k') then Hashtbl.add self_ref k' qn;
                if k' = k then () else mark rest
          in
          (* mark everything from the top of the path down to [k] *)
          mark path;
          if not (Hashtbl.mem self_ref k) then Hashtbl.add self_ref k qn
        end
        else
          Diag.error "illegal recursive type %s (recursion must pass through \
                      a sequence or optional constructor)"
            (Aoi.qname_to_string qn)
    | None ->
        if not (Hashtbl.mem finished k) then begin
          let scope = match List.rev qn with [] -> [] | _ :: r -> List.rev r in
          walk scope ((k, guarded) :: path) ~guarded:false ty;
          Hashtbl.replace finished k ()
        end
  in
  let rec roots scope defs =
    List.iter
      (fun (def : Aoi.def) ->
        match def with
        | Aoi.Dtype (n, ty) -> visit (scope @ [ n ]) [] ~guarded:false ty
        | Aoi.Dconst _ -> ()
        | Aoi.Dexception (_, fields) ->
            List.iter (fun f -> walk scope [] ~guarded:false f.Aoi.f_type) fields
        | Aoi.Dinterface i -> roots (scope @ [ i.Aoi.i_name ]) i.Aoi.i_defs
        | Aoi.Dmodule (n, sub) -> roots (scope @ [ n ]) sub)
      defs
  in
  roots [] spec.Aoi.s_defs;
  Hashtbl.fold (fun k _ acc -> String.split_on_char ':' k :: acc) self_ref []
  |> List.map (fun parts -> List.filter (fun s -> s <> "") parts)

(* ------------------------------------------------------------------ *)
(* Interfaces and top-level walk                                       *)
(* ------------------------------------------------------------------ *)

let check_operation env scope collector (op : Aoi.operation) =
  check_typ env scope ~allow_void:true op.Aoi.op_return;
  check_unique "parameter" (List.map (fun p -> p.Aoi.p_name) op.Aoi.op_params);
  List.iter (fun p -> check_typ env scope ~allow_void:false p.Aoi.p_type) op.Aoi.op_params;
  List.iter
    (fun q ->
      match Aoi_env.resolve_exn env ~scope q with
      | _, Aoi_env.Bexception _ -> ()
      | _, ( Aoi_env.Btype _ | Aoi_env.Bconst _ | Aoi_env.Benumerator _
           | Aoi_env.Binterface _ | Aoi_env.Bmodule ) ->
          Diag.error "raises clause %s does not name an exception"
            (Aoi.qname_to_string q))
    op.Aoi.op_raises;
  if op.Aoi.op_oneway then begin
    if op.Aoi.op_return <> Aoi.Void then
      Diag.error "oneway operation %s must return void" op.Aoi.op_name;
    if List.exists (fun p -> p.Aoi.p_dir <> Aoi.In) op.Aoi.op_params then
      Diag.error "oneway operation %s may only have 'in' parameters" op.Aoi.op_name;
    if op.Aoi.op_raises <> [] then
      Diag.warn collector "oneway operation %s has a raises clause" op.Aoi.op_name
  end

let check_interface env scope collector (i : Aoi.interface) =
  let iscope = scope @ [ i.Aoi.i_name ] in
  List.iter
    (fun q ->
      match Aoi_env.resolve_exn env ~scope q with
      | _, Aoi_env.Binterface _ -> ()
      | _, ( Aoi_env.Btype _ | Aoi_env.Bconst _ | Aoi_env.Benumerator _
           | Aoi_env.Bexception _ | Aoi_env.Bmodule ) ->
          Diag.error "parent %s of interface %s is not an interface"
            (Aoi.qname_to_string q) i.Aoi.i_name)
    i.Aoi.i_parents;
  check_unique
    (Printf.sprintf "operation/attribute in interface %s" i.Aoi.i_name)
    (List.map (fun o -> o.Aoi.op_name) i.Aoi.i_ops
    @ List.map (fun a -> a.Aoi.at_name) i.Aoi.i_attrs);
  check_unique
    (Printf.sprintf "operation code in interface %s" i.Aoi.i_name)
    (List.map (fun o -> Int64.to_string o.Aoi.op_code) i.Aoi.i_ops);
  List.iter (check_operation env iscope collector) i.Aoi.i_ops;
  List.iter
    (fun a -> check_typ env iscope ~allow_void:false a.Aoi.at_type)
    i.Aoi.i_attrs

let check (spec : Aoi.spec) =
  let env = Aoi_env.build spec in
  let collector = Diag.make_collector () in
  let exception_count = ref 0 in
  let rec check_defs scope defs =
    List.iter
      (fun (def : Aoi.def) ->
        match def with
        | Aoi.Dtype (_, ty) -> check_typ env scope ~allow_void:false ty
        | Aoi.Dconst (_, ty, _) -> check_typ env scope ~allow_void:false ty
        | Aoi.Dexception (_, fields) ->
            incr exception_count;
            check_unique "exception member" (List.map (fun f -> f.Aoi.f_name) fields);
            List.iter (fun f -> check_typ env scope ~allow_void:false f.Aoi.f_type) fields
        | Aoi.Dinterface i ->
            check_interface env scope collector i;
            check_defs (scope @ [ i.Aoi.i_name ]) i.Aoi.i_defs
        | Aoi.Dmodule (n, sub) -> check_defs (scope @ [ n ]) sub)
      defs
  in
  check_defs [] spec.Aoi.s_defs;
  let self_referential = classify_recursion env spec in
  {
    env;
    self_referential;
    exception_count = !exception_count;
    warnings = Diag.warnings collector;
  }

let is_self_referential report q =
  let k = key q in
  List.exists (fun q' -> key q' = k) report.self_referential
