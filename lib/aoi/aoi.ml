type qname = string list
type integer_kind = { bits : int; signed : bool }

type const =
  | Const_int of int64
  | Const_bool of bool
  | Const_char of char
  | Const_string of string
  | Const_float of float
  | Const_enum of qname

type typ =
  | Void
  | Boolean
  | Char
  | Octet
  | Integer of integer_kind
  | Float of int
  | String of int option
  | Sequence of typ * int option
  | Array of typ * int list
  | Named of qname
  | Struct_type of field list
  | Union_type of union_body
  | Enum_type of (string * int64) list
  | Optional of typ
  | Object of qname

and field = { f_name : string; f_type : typ }

and union_body = {
  u_discrim : typ;
  u_cases : union_case list;
  u_default : field option;
}

and union_case = { c_labels : const list; c_field : field }

type param_dir = In | Out | Inout
type param = { p_name : string; p_dir : param_dir; p_type : typ }

type operation = {
  op_name : string;
  op_oneway : bool;
  op_return : typ;
  op_params : param list;
  op_raises : qname list;
  op_code : int64;
}

type attribute = { at_name : string; at_type : typ; at_readonly : bool }

type interface = {
  i_name : string;
  i_parents : qname list;
  i_defs : def list;
  i_ops : operation list;
  i_attrs : attribute list;
  i_program : (int64 * int64) option;
}

and def =
  | Dtype of string * typ
  | Dconst of string * typ * const
  | Dexception of string * field list
  | Dinterface of interface
  | Dmodule of string * def list

type spec = { s_file : string; s_defs : def list }

let def_name = function
  | Dtype (n, _) -> n
  | Dconst (n, _, _) -> n
  | Dexception (n, _) -> n
  | Dinterface i -> i.i_name
  | Dmodule (n, _) -> n

let qname_to_string q = String.concat "::" q

let interfaces spec =
  let rec defs_interfaces prefix defs =
    List.concat_map
      (fun def ->
        match def with
        | Dinterface i -> [ (prefix @ [ i.i_name ], i) ]
        | Dmodule (n, sub) -> defs_interfaces (prefix @ [ n ]) sub
        | Dtype _ | Dconst _ | Dexception _ -> [])
      defs
  in
  defs_interfaces [] spec.s_defs

let attribute_operations intf =
  let next_code =
    List.fold_left (fun acc op -> max acc (Int64.add op.op_code 1L)) 0L intf.i_ops
  in
  let code = ref next_code in
  let fresh () =
    let c = !code in
    code := Int64.add c 1L;
    c
  in
  List.concat_map
    (fun at ->
      let getter =
        {
          op_name = "_get_" ^ at.at_name;
          op_oneway = false;
          op_return = at.at_type;
          op_params = [];
          op_raises = [];
          op_code = fresh ();
        }
      in
      if at.at_readonly then [ getter ]
      else
        let setter =
          {
            op_name = "_set_" ^ at.at_name;
            op_oneway = false;
            op_return = Void;
            op_params = [ { p_name = "value"; p_dir = In; p_type = at.at_type } ];
            op_raises = [];
            op_code = fresh ();
          }
        in
        [ getter; setter ])
    intf.i_attrs

let equal_typ (a : typ) (b : typ) = a = b

let pp_const ppf = function
  | Const_int n -> Format.fprintf ppf "%Ld" n
  | Const_bool b -> Format.fprintf ppf "%B" b
  | Const_char c -> Format.fprintf ppf "%C" c
  | Const_string s -> Format.fprintf ppf "%S" s
  | Const_float f -> Format.fprintf ppf "%g" f
  | Const_enum q -> Format.pp_print_string ppf (qname_to_string q)
