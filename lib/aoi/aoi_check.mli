(** Well-formedness checking of AOI specifications.

    The checker resolves every name reference, validates type
    constructions (union discriminators and labels, array dimensions,
    bounds, enum contents, duplicate members), and classifies recursive
    types.  Recursion is legal only when every cycle passes through an
    {!Aoi.Optional} or {!Aoi.Sequence} constructor (XDR linked-list
    style); such types are reported as {e self-referential}, which the
    CORBA presentation generator uses to reject them (the paper's
    footnote 3 restriction). *)

type report = {
  env : Aoi_env.t;
  self_referential : Aoi.qname list;
      (** named types involved in a legal recursion cycle *)
  exception_count : int;  (** number of exception definitions *)
  warnings : Diag.t list;
}

val check : Aoi.spec -> report
(** Raises {!Diag.Error} on the first fatal problem. *)

val is_self_referential : report -> Aoi.qname -> bool
