(** Pretty-printing of AOI specifications.

    Renders AOI in a CORBA-IDL-like concrete syntax.  The output is used
    by [flick dump-aoi], in tests, and in error messages.  For
    specifications originating from the CORBA front end the output is
    itself valid CORBA IDL, which the round-trip tests exploit. *)

val pp_typ : Format.formatter -> Aoi.typ -> unit
val pp_def : Format.formatter -> Aoi.def -> unit
val pp_spec : Format.formatter -> Aoi.spec -> unit
val spec_to_string : Aoi.spec -> string
