(** The ONC RPC back end: RFC 1831 call/reply framing with XDR data
    encoding (paper Table 1: 410 lines over the back-end base library).
    Requests are keyed by procedure number, so dispatch is a plain
    integer switch. *)

val transport : Backend_base.transport

val generate : Pres_c.t -> (string * string) list
