open Cast

let proc_number (st : Pres_c.op_stub) =
  match st.Pres_c.os_request_case with
  | Mint.Cint n -> n
  | Mint.Cstring _ | Mint.Cbool _ | Mint.Cchar _ -> st.Pres_c.os_op.Aoi.op_code

let program_numbers (pc : Pres_c.t) =
  match pc.Pres_c.pc_program with Some (p, v) -> (p, v) | None -> (0x20000000L, 1L)

(* dispatch is keyed by procedure number regardless of the source
   presentation *)
let rekey (pc : Pres_c.t) =
  {
    pc with
    Pres_c.pc_stubs =
      List.map
        (fun st -> { st with Pres_c.os_request_case = Mint.Cint (proc_number st) })
        pc.Pres_c.pc_stubs;
  }

let transport =
  {
    Backend_base.tr_name = "oncrpc";
    tr_enc = Encoding.xdr;
    tr_description = "ONC RPC (XDR) over TCP/UDP";
    tr_begin_request =
      (fun pc st ->
        let prog, vers = program_numbers pc in
        [
          Sexpr
            (call "flick_onc_begin_call"
               [ Eid "_buf"; Eint prog; Eint vers; Eint (proc_number st) ]);
        ]);
    tr_end_request = [];
    tr_recv_reply = [ Sexpr (call "flick_onc_recv_reply" [ Eid "_msg" ]) ];
    tr_server_recv =
      (fun _pc ->
        `Int_key
          [
            Sdecl ("_xid", uint32_t, None);
            Sdecl
              ( "_op",
                uint32_t,
                Some (call "flick_onc_recv_call" [ Eid "_msg"; Eunop (Addr, Eid "_xid") ])
              );
          ]);
    tr_begin_reply =
      [ Sexpr (call "flick_onc_begin_reply" [ Eid "_out"; Eid "_xid" ]) ];
    tr_end_reply = [];
  }

let generate pc = Backend_base.generate_files transport (rekey pc)
