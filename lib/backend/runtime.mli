(** The vendored C runtime header, [flick_runtime.h].

    Flick-generated stubs are self-contained C except for a small
    runtime: marshal buffers (reserve/store/advance split), checked
    message readers, a bump allocator for unmarshaled parameters (the
    section 3.1 parameter-management substrate), a loopback transport
    used by the generated-code tests (client stubs invoke the server
    dispatch function in-process), and the per-transport message
    framing helpers (GIOP, ONC RPC, Mach, Fluke).

    The header is emitted next to generated stubs by [flick compile]
    and by the test suite, which compiles every generated file with
    gcc. *)

val header : string
(** The complete text of [flick_runtime.h]. *)

val write_to : string -> unit
(** Write the header into the given directory. *)
