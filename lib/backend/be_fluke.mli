(** The Fluke kernel IPC back end (paper Table 1: 514 lines over the
    back-end base library).  Fluke messages are packed words with no
    per-item descriptors; the first words of a small message travel in
    machine registers across the kernel IPC path, which the loopback
    transport models as the leading buffer words. *)

val transport : Backend_base.transport

val generate : Pres_c.t -> (string * string) list
