(** The Mach 3 back end: MIG-style typed messages between Mach ports
    (paper Table 1: 664 lines over the back-end base library).  Every
    data item carries a type-descriptor word; messages are keyed by
    [msgh_id] (operation code plus the conventional base of 100). *)

val transport : Backend_base.transport

val generate : Pres_c.t -> (string * string) list
