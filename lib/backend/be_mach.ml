open Cast

let msgh_base = 100L

let msgh_id (st : Pres_c.op_stub) =
  match st.Pres_c.os_request_case with
  | Mint.Cint n -> Int64.add msgh_base n
  | Mint.Cstring _ | Mint.Cbool _ | Mint.Cchar _ ->
      Int64.add msgh_base st.Pres_c.os_op.Aoi.op_code

(* dispatch matches on msgh_id, so the case labels must use it too *)
let rekey (pc : Pres_c.t) =
  {
    pc with
    Pres_c.pc_stubs =
      List.map
        (fun st -> { st with Pres_c.os_request_case = Mint.Cint (msgh_id st) })
        pc.Pres_c.pc_stubs;
  }

let transport =
  {
    Backend_base.tr_name = "mach3";
    tr_enc = Encoding.mach3;
    tr_description = "Mach 3 typed messages between ports";
    tr_begin_request =
      (fun _pc st ->
        (* the stub has already been rekeyed to its msgh_id *)
        let id =
          match st.Pres_c.os_request_case with
          | Mint.Cint n -> n
          | Mint.Cstring _ | Mint.Cbool _ | Mint.Cchar _ -> msgh_id st
        in
        [ Sexpr (call "flick_mach_begin" [ Eid "_buf"; Eint id ]) ]);
    tr_end_request = [ Sexpr (call "flick_mach_end" [ Eid "_buf" ]) ];
    tr_recv_reply = [ Sexpr (Ecall ("flick_mach_recv", [ Eid "_msg" ])) ];
    tr_server_recv =
      (fun _pc ->
        `Int_key
          [ Sdecl ("_op", uint32_t, Some (call "flick_mach_recv" [ Eid "_msg" ])) ]);
    tr_begin_reply =
      [ Sexpr (call "flick_mach_begin" [ Eid "_out"; num 200 ]) ];
    tr_end_reply = [ Sexpr (call "flick_mach_end" [ Eid "_out" ]) ];
  }

let generate pc = Backend_base.generate_files transport (rekey pc)
