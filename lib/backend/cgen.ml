open Cast

let counter = ref 0

let fresh_reset () = counter := 0

let fresh prefix =
  let n = !counter in
  incr counter;
  Printf.sprintf "_%s%d" prefix n

(* ------------------------------------------------------------------ *)
(* Plan paths as C lvalues                                              *)
(* ------------------------------------------------------------------ *)

let rec expr_of_rv ~vars (rv : Mplan.rv) : expr =
  match rv with
  | Mplan.Rparam { name; deref; _ } ->
      if deref then Eunop (Deref, Eid name) else Eid name
  | Mplan.Rvar i -> vars i
  | Mplan.Rfield { base; member; index } ->
      let b = expr_of_rv ~vars base in
      if String.length member > 0 && member.[0] = '[' then Eindex (b, num index)
      else Efield (b, member)
  | Mplan.Rarm { base; member; union_field; _ } ->
      Efield (Efield (expr_of_rv ~vars base, union_field), member)
  | Mplan.Ropt base -> Eunop (Deref, expr_of_rv ~vars base)
  | Mplan.Rdiscrim { base; member } -> Efield (expr_of_rv ~vars base, member)

let len_expr ~vars (arr : Mplan.rv) (via : Mplan.via) : expr =
  let a = expr_of_rv ~vars arr in
  match via with
  | Mplan.Via_seq { len_field; _ } -> Efield (a, len_field)
  | Mplan.Via_string -> Ecast (uint32_t, call "strlen" [ a ])
  | Mplan.Via_fixed n -> num n
  | Mplan.Via_opt -> Econd (a, num 1, num 0)

let buf_expr ~vars (arr : Mplan.rv) (via : Mplan.via) : expr =
  let a = expr_of_rv ~vars arr in
  match via with
  | Mplan.Via_seq { buf_field; _ } -> Efield (a, buf_field)
  | Mplan.Via_string | Mplan.Via_fixed _ -> a
  | Mplan.Via_opt -> a

(* ------------------------------------------------------------------ *)
(* Atom store/load helpers                                              *)
(* ------------------------------------------------------------------ *)

let store_macro ~be (atom : Mplan.atom) =
  let e = if be then "BE" else "LE" in
  match (atom.Mplan.kind, atom.Mplan.size) with
  | Encoding.Kfloat { bits = 32 }, _ -> "FLICK_ST_F32" ^ e
  | Encoding.Kfloat _, _ -> "FLICK_ST_F64" ^ e
  | _, 1 -> "FLICK_ST_U8"
  | _, 2 -> "FLICK_ST_16" ^ e
  | _, 4 -> "FLICK_ST_32" ^ e
  | _, 8 -> "FLICK_ST_64" ^ e
  | _, n -> invalid_arg (Printf.sprintf "Cgen.store_macro: size %d" n)

(* an expression reading one atom from _msg (aligned, checked) *)
let load_call ~be (atom : Mplan.atom) : expr =
  let bee = if be then num 1 else num 0 in
  match (atom.Mplan.kind, atom.Mplan.size) with
  | Encoding.Kfloat { bits = 32 }, _ -> call "flick_get_f32" [ Eid "_msg"; bee ]
  | Encoding.Kfloat _, _ ->
      call "flick_get_f64" [ Eid "_msg"; bee; num atom.Mplan.align ]
  | Encoding.Kbool, 1 -> call "flick_get_bool8" [ Eid "_msg" ]
  | Encoding.Kbool, _ -> call "flick_get_bool32" [ Eid "_msg"; bee ]
  | Encoding.Kchar, 1 -> Ecast (Tchar, call "flick_get_u8" [ Eid "_msg" ])
  | Encoding.Kchar, _ -> Ecast (Tchar, call "flick_get_32" [ Eid "_msg"; bee ])
  | Encoding.Kint { bits; signed }, size ->
      let raw =
        match size with
        | 1 -> call "flick_get_u8" [ Eid "_msg" ]
        | 2 -> call "flick_get_16" [ Eid "_msg"; bee ]
        | 4 -> call "flick_get_32" [ Eid "_msg"; bee ]
        | 8 -> call "flick_get_64" [ Eid "_msg"; bee; num atom.Mplan.align ]
        | n -> invalid_arg (Printf.sprintf "Cgen.load_call: size %d" n)
      in
      Ecast (int_of_bits ~bits ~signed, raw)

(* ------------------------------------------------------------------ *)
(* Marshal: plan ops -> statements                                      *)
(* ------------------------------------------------------------------ *)

let rec marshal_op ~enc ~vars (op : Mplan.op) : stmt list =
  let be = enc.Encoding.big_endian in
  let bee = if be then num 1 else num 0 in
  match op with
  | Mplan.Align n -> [ Sexpr (call "flick_align" [ Eid "_buf"; num n ]) ]
  | Mplan.Chunk { size; items; check; align = _ } ->
      let ptr = fresh "c" in
      let covered =
        List.map
          (fun (it : Mplan.item) ->
            match it with
            | Mplan.It_atom { off; atom; _ } -> (off, off + atom.Mplan.size)
            | Mplan.It_bytes { off; len; pad; _ } -> (off, off + len + pad)
            | Mplan.It_const { off; atom; _ } -> (off, off + atom.Mplan.size))
          items
        |> List.sort compare
      in
      let rec gaps pos acc = function
        | [] -> if pos < size then (pos, size - pos) :: acc else acc
        | (s, e) :: rest ->
            let acc = if s > pos then (pos, s - pos) :: acc else acc in
            gaps (max pos e) acc rest
      in
      let gap_stmts =
        List.rev_map
          (fun (off, len) ->
            Sexpr
              (call "memset"
                 [ Ebinop (Add, Eid ptr, num off); num 0; num len ]))
          (gaps 0 [] covered)
      in
      let item_stmts =
        List.map
          (fun (it : Mplan.item) ->
            match it with
            | Mplan.It_atom { off; atom; src } ->
                Sexpr
                  (call (store_macro ~be atom)
                     [ Ebinop (Add, Eid ptr, num off); expr_of_rv ~vars src ])
            | Mplan.It_const { off; atom; value } ->
                Sexpr
                  (call (store_macro ~be atom)
                     [ Ebinop (Add, Eid ptr, num off); Eint value ])
            | Mplan.It_bytes { off; len; pad; src } ->
                let copy =
                  Sexpr
                    (call "memcpy"
                       [
                         Ebinop (Add, Eid ptr, num off); expr_of_rv ~vars src;
                         num len;
                       ])
                in
                if pad = 0 then copy
                else
                  Sblock
                    [
                      copy;
                      Sexpr
                        (call "memset"
                           [ Ebinop (Add, Eid ptr, num (off + len)); num 0; num pad ]);
                    ])
          items
      in
      [
        Sblock
          ((if check then [ Sexpr (call "flick_ensure" [ Eid "_buf"; num size ]) ]
            else [ Scomment "capacity pre-reserved for this run" ])
          @ [ Sdecl (ptr, Tptr Tchar, Some (call "flick_ptr" [ Eid "_buf" ])) ]
          @ gap_stmts @ item_stmts
          @ [ Sexpr (call "flick_advance" [ Eid "_buf"; num size ]) ]);
      ]
  | Mplan.Ensure_count { arr; via; unit_size } ->
      [
        Sexpr
          (call "flick_ensure"
             [ Eid "_buf"; Ebinop (Mul, len_expr ~vars arr via, num unit_size) ]);
      ]
  | Mplan.Put_const_str { s; nul; pad = _ } ->
      [
        Sexpr
          (call "flick_put_str"
             [
               Eid "_buf"; Estr s; num (if nul then 1 else 0);
               num enc.Encoding.pad_unit; bee;
             ]);
      ]
  | Mplan.Put_string { src; nul; pad = _; len_src = None; borrow = _ } ->
      [
        Sexpr
          (call "flick_put_str"
             [
               Eid "_buf"; expr_of_rv ~vars src; num (if nul then 1 else 0);
               num enc.Encoding.pad_unit; bee;
             ]);
      ]
  | Mplan.Put_string { src; nul; pad = _; len_src = Some len; borrow = _ } ->
      (* the explicit-length presentation: no strlen in the stub *)
      [
        Sexpr
          (call "flick_put_str_n"
             [
               Eid "_buf"; expr_of_rv ~vars src; expr_of_rv ~vars len;
               num (if nul then 1 else 0); num enc.Encoding.pad_unit; bee;
             ]);
      ]
  | Mplan.Put_byteseq { arr; via; pad = _; borrow = _ } ->
      [
        Sexpr
          (call "flick_put_bseq"
             [
               Eid "_buf"; Ecast (Tconst_ptr Tchar, buf_expr ~vars arr via);
               len_expr ~vars arr via; num enc.Encoding.pad_unit; bee;
             ]);
      ]
  | Mplan.Put_blit { src; len; pad } ->
      (* the C runtime marshals into one contiguous buffer, so the blit
         stays a memcpy there; only the OCaml engine borrows.  A real
         iovec-based C runtime would append a segment here instead. *)
      [
        Sexpr
          (call "flick_put_blit"
             [
               Eid "_buf"; Ecast (Tconst_ptr Tchar, expr_of_rv ~vars src);
               num len; num pad;
             ]);
      ]
  | Mplan.Put_atom_array { arr; via; atom; with_len } ->
      let n = fresh "n" in
      let p = fresh "p" in
      let i = fresh "i" in
      let size = atom.Mplan.size in
      let elem = Eindex (buf_expr ~vars arr via, Eid i) in
      let loop =
        Sfor
          ( Some (Eassign (Eid i, num 0)),
            Some (Ebinop (Lt, Eid i, Eid n)),
            Some (Eassign_op (Add, Eid i, num 1)),
            [
              Sexpr
                (call (store_macro ~be atom)
                   [
                     Ebinop (Add, Eid p, Ebinop (Mul, Eid i, num size)); elem;
                   ]);
            ] )
      in
      let body =
        (* the memcpy optimization applies exactly when the presented and
           encoded layouts agree (section 3.2) *)
        if size = 4 && (match atom.Mplan.kind with Encoding.Kint _ -> true | _ -> false)
        then
          [
            Sraw
              (Printf.sprintf "#if %s"
                 (if be then "defined(FLICK_HOST_BIG_ENDIAN)"
                  else "!defined(FLICK_HOST_BIG_ENDIAN)"));
            Sexpr (call "memcpy" [ Eid p; buf_expr ~vars arr via; Ebinop (Mul, Eid n, num size) ]);
            Sraw "#else";
            Sdecl (i, uint32_t, None);
            loop;
            Sraw "#endif";
          ]
        else [ Sdecl (i, uint32_t, None); loop ]
      in
      [
        Sblock
          ([ Sdecl (n, uint32_t, Some (len_expr ~vars arr via)) ]
          @ (if with_len then
               [ Sexpr (call "flick_put_u32" [ Eid "_buf"; Eid n; bee ]) ]
             else [])
          @ [
              Sif
                ( Ebinop (Gt, Eid n, num 0),
                  [
                    Sexpr (call "flick_align" [ Eid "_buf"; num atom.Mplan.align ]);
                    Sexpr
                      (call "flick_ensure"
                         [ Eid "_buf"; Ebinop (Mul, Eid n, num size) ]);
                    Sdecl (p, Tptr Tchar, Some (call "flick_ptr" [ Eid "_buf" ]));
                  ]
                  @ body
                  @ [
                      Sexpr
                        (call "flick_advance"
                           [ Eid "_buf"; Ebinop (Mul, Eid n, num size) ]);
                    ],
                  [] );
            ]);
      ]
  | Mplan.Put_len { arr; via } ->
      [ Sexpr (call "flick_put_u32" [ Eid "_buf"; len_expr ~vars arr via; bee ]) ]
  | Mplan.Loop { arr; via; var; body } ->
      let i = fresh "i" in
      let elem =
        match via with
        | Mplan.Via_opt -> Eunop (Deref, expr_of_rv ~vars arr)
        | Mplan.Via_seq _ | Mplan.Via_string | Mplan.Via_fixed _ ->
            Eindex (buf_expr ~vars arr via, Eid i)
      in
      let vars' j = if j = var then elem else vars j in
      let inner = List.concat_map (marshal_op ~enc ~vars:vars') body in
      (match via with
      | Mplan.Via_opt ->
          [ Sif (expr_of_rv ~vars arr, inner, []) ]
      | Mplan.Via_seq _ | Mplan.Via_string | Mplan.Via_fixed _ ->
          [
            Sblock
              [
                Sdecl (i, uint32_t, None);
                Sfor
                  ( Some (Eassign (Eid i, num 0)),
                    Some (Ebinop (Lt, Eid i, len_expr ~vars arr via)),
                    Some (Eassign_op (Add, Eid i, num 1)),
                    inner );
              ];
          ])
  | Mplan.Switch { u; discrim_atom; arms; default; discrim_field; union_field = _ }
    -> (
      match discrim_atom with
      | Some _ ->
          let scrutinee = Efield (expr_of_rv ~vars u, discrim_field) in
          let const_expr (c : Mint.const) =
            match c with
            | Mint.Cint n -> Eint n
            | Mint.Cbool b -> num (if b then 1 else 0)
            | Mint.Cchar ch -> Echar ch
            | Mint.Cstring _ -> invalid_arg "Cgen: string label in C switch"
          in
          let cases =
            List.map
              (fun (a : Mplan.arm) ->
                {
                  sc_labels = [ const_expr a.Mplan.a_const ];
                  sc_body = List.concat_map (marshal_op ~enc ~vars) a.Mplan.a_body;
                })
              arms
            @
            match default with
            | None ->
                [
                  {
                    sc_labels = [];
                    sc_body =
                      [ Sexpr (call "flick_fail" [ Estr "bad discriminator" ]) ];
                  };
                ]
            | Some (_, body) ->
                [
                  {
                    sc_labels = [];
                    sc_body = List.concat_map (marshal_op ~enc ~vars) body;
                  };
                ]
          in
          [ Sswitch (scrutinee, cases) ]
      | None ->
          (* string-keyed unions are dispatched per stub; a data union
             with string keys cannot be presented in C *)
          [ Sexpr (call "flick_fail" [ Estr "string-keyed data union" ]) ])
  | Mplan.Put_varhead _ ->
      (* value-dependent headers only appear in plans for self-describing
         encodings (msgpack/cbor), which the C back end does not target;
         the driver restricts C generation to fixed-layout encodings *)
      invalid_arg "Cgen: variable-width header in a C-targeted plan"
  | Mplan.Call (name, rv) ->
      [
        Sexpr
          (call ("flick_enc_" ^ name)
             [ Eid "_buf"; Eunop (Addr, expr_of_rv ~vars rv) ]);
      ]

let no_vars _ = invalid_arg "Cgen: unbound loop variable"

let marshal_stmts ~enc ops = List.concat_map (marshal_op ~enc ~vars:no_vars) ops

let marshal_sub_functions ~enc subs =
  List.map
    (fun (name, body) ->
      Dfun
        ( Static,
          "flick_enc_" ^ name,
          Tvoid,
          [ ("_buf", Tptr (Tnamed "flick_buf_t")); ("_v", Tptr (Tnamed name)) ],
          List.concat_map
            (marshal_op ~enc ~vars:no_vars)
            body ))
    subs

(* ------------------------------------------------------------------ *)
(* Unmarshal: (MINT, PRES) -> statements                                *)
(* ------------------------------------------------------------------ *)

let atom_of enc kind = Plan_compile.atom_of enc kind

let rec unmarshal ~(enc : Encoding.t) ~mint ~named ~(dest : expr) idx
    (pres : Pres.t) : stmt list =
  let be = enc.Encoding.big_endian in
  let def = Mint.get mint idx in
  let hdr =
    if enc.Encoding.typed_headers then
      [ Sexpr (call "flick_msg_skip_hdr" [ Eid "_msg" ]) ]
    else []
  in
  match (def, pres) with
  | _, Pres.Ref name ->
      [
        Sexpr
          (call ("flick_dec_" ^ name) [ Eid "_msg"; Eunop (Addr, dest) ]);
      ]
  | Mint.Void, _ -> []
  | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
      match Encoding.atom_of_mint def with
      | Some kind ->
          hdr @ [ Sexpr (Eassign (dest, load_call ~be (atom_of enc kind))) ]
      | None -> assert false)
  | Mint.Array { elem; min_len; max_len }, _ ->
      hdr @ unmarshal_array ~enc ~mint ~named ~dest ~elem ~min_len ~max_len pres
  | Mint.Struct fields, Pres.Struct arms ->
      List.concat
        (List.map2
           (fun (_, fidx) (member, sub) ->
             unmarshal ~enc ~mint ~named ~dest:(Efield (dest, member)) fidx sub)
           fields arms)
  | ( Mint.Union { discrim; cases; default },
      Pres.Union { discrim_field; union_field; arms; default_arm } ) -> (
      match Encoding.atom_of_mint (Mint.get mint discrim) with
      | Some kind ->
          let datom = atom_of enc kind in
          let dexpr = Efield (dest, discrim_field) in
          let const_expr (c : Mint.const) =
            match c with
            | Mint.Cint n -> Eint n
            | Mint.Cbool b -> num (if b then 1 else 0)
            | Mint.Cchar ch -> Echar ch
            | Mint.Cstring _ -> invalid_arg "Cgen: string label in C switch"
          in
          let arm_cases =
            List.map2
              (fun (c : Mint.case) (member, sub) ->
                {
                  sc_labels = [ const_expr c.Mint.c_const ];
                  sc_body =
                    (if member = "" then [ Scomment "void arm" ]
                     else
                       unmarshal ~enc ~mint ~named
                         ~dest:(Efield (Efield (dest, union_field), member))
                         c.Mint.c_body sub);
                })
              cases arms
          in
          let default_case =
            match (default, default_arm) with
            | Some didx, Some (member, sub) ->
                [
                  {
                    sc_labels = [];
                    sc_body =
                      (if member = "" then [ Scomment "void arm" ]
                       else
                         unmarshal ~enc ~mint ~named
                           ~dest:(Efield (Efield (dest, union_field), member))
                           didx sub);
                  };
                ]
            | _, _ ->
                [
                  {
                    sc_labels = [];
                    sc_body =
                      [ Sexpr (call "flick_fail" [ Estr "bad discriminator" ]) ];
                  };
                ]
          in
          hdr
          @ [
              Sexpr (Eassign (dexpr, load_call ~be datom));
              Sswitch (dexpr, arm_cases @ default_case);
            ]
      | None -> [ Sexpr (call "flick_fail" [ Estr "string-keyed data union" ]) ])
  | (Mint.Struct _ | Mint.Union _), _ ->
      invalid_arg "Cgen.unmarshal: PRES does not match MINT"

and unmarshal_array ~enc ~mint ~named ~dest ~elem ~min_len ~max_len
    (pres : Pres.t) : stmt list =
  let be = enc.Encoding.big_endian in
  let bee = if be then num 1 else num 0 in
  let pad = enc.Encoding.pad_unit in
  let bound_check n_expr =
    match max_len with
    | Some b ->
        [
          Sif
            ( Ebinop (Gt, n_expr, num b),
              [ Sexpr (call "flick_fail" [ Estr "length exceeds bound" ]) ],
              [] );
        ]
    | None -> []
  in
  match pres with
  | Pres.Terminated_string | Pres.Terminated_string_len _ ->
      let n = fresh "n" in
      [
        Sblock
          ([
             Sdecl
               (n, uint32_t, Some (call "flick_get_u32" [ Eid "_msg"; bee ]));
           ]
          @ (if enc.Encoding.string_nul then
               [
                 Sif
                   ( Ebinop (Eq, Eid n, num 0),
                     [ Sexpr (call "flick_fail" [ Estr "bad string length" ]) ],
                     [] );
               ]
             else [])
          @ bound_check
              (if enc.Encoding.string_nul then Ebinop (Sub, Eid n, num 1)
               else Eid n)
          @ [
              Sexpr
                (Eassign
                   ( dest,
                     Ecast (Tptr Tchar, call "flick_salloc" [ Ebinop (Add, Eid n, num 1) ]) ));
              Sexpr
                (call "flick_get_bytes"
                   [
                     Eid "_msg"; dest;
                     (if enc.Encoding.string_nul then Ebinop (Sub, Eid n, num 1)
                      else Eid n);
                   ]);
              Sexpr
                (Eassign
                   ( Eindex
                       ( dest,
                         if enc.Encoding.string_nul then Ebinop (Sub, Eid n, num 1)
                         else Eid n ),
                     num 0 ));
            ]
          @ (if enc.Encoding.string_nul then
               [ Sexpr (call "flick_msg_skip" [ Eid "_msg"; num 1 ]) ]
             else [])
          @ [ Sexpr (call "flick_msg_skip_pad" [ Eid "_msg"; Eid n; num pad ]) ]);
      ]
  | Pres.Fixed_array sub -> (
      match Mint.get mint elem with
      | Mint.Char8 | Mint.Int { bits = 8; _ } ->
          (* statically sized byte run: fold the trailing pad into the
             blit's single bounds check (decode mirror of Put_blit) *)
          let padded = Plan_compile.round_up min_len pad in
          [
            Sexpr
              (call "flick_get_blit"
                 [ Eid "_msg"; dest; num min_len; num (padded - min_len) ]);
          ]
      | _ ->
          let i = fresh "i" in
          let body =
            (* array elements carry no per-item descriptor of their own *)
            match Encoding.atom_of_mint (Mint.get mint elem) with
            | Some kind ->
                [
                  Sexpr
                    (Eassign
                       ( Eindex (dest, Eid i),
                         load_call ~be:enc.Encoding.big_endian (atom_of enc kind)
                       ));
                ]
            | None ->
                unmarshal ~enc ~mint ~named ~dest:(Eindex (dest, Eid i)) elem sub
          in
          [
            Sblock
              [
                Sdecl (i, uint32_t, None);
                Sfor
                  ( Some (Eassign (Eid i, num 0)),
                    Some (Ebinop (Lt, Eid i, num min_len)),
                    Some (Eassign_op (Add, Eid i, num 1)),
                    body );
              ];
          ])
  | Pres.Counted_seq { len_field; buf_field; elem = sub } -> (
      let n = fresh "n" in
      let buf_dest = Efield (dest, buf_field) in
      let common =
        [
          Sdecl (n, uint32_t, Some (call "flick_get_u32" [ Eid "_msg"; bee ]));
        ]
        @ bound_check (Eid n)
        @ [ Sexpr (Eassign (Efield (dest, len_field), Eid n)) ]
      in
      match Mint.get mint elem with
      | Mint.Char8 | Mint.Int { bits = 8; _ } ->
          [
            Sblock
              (common
              @ [
                  Sexpr
                    (Eassign
                       (buf_dest, call "flick_salloc" [ Econd (Eid n, Eid n, num 1) ]));
                  Sexpr (call "flick_get_bytes" [ Eid "_msg"; buf_dest; Eid n ]);
                  Sexpr (call "flick_msg_skip_pad" [ Eid "_msg"; Eid n; num pad ]);
                ]);
          ]
      | _ ->
          let i = fresh "i" in
          let body =
            match Encoding.atom_of_mint (Mint.get mint elem) with
            | Some kind ->
                [
                  Sexpr
                    (Eassign
                       ( Eindex (buf_dest, Eid i),
                         load_call ~be:enc.Encoding.big_endian (atom_of enc kind)
                       ));
                ]
            | None ->
                unmarshal ~enc ~mint ~named
                  ~dest:(Eindex (buf_dest, Eid i))
                  elem sub
          in
          [
            Sblock
              (common
              @ [
                  Sexpr
                    (Eassign
                       ( buf_dest,
                         call "flick_salloc"
                           [
                             Ebinop
                               ( Mul,
                                 Econd (Eid n, Eid n, num 1),
                                 Esizeof_expr (Eunop (Deref, buf_dest)) );
                           ] ));
                  Sdecl (i, uint32_t, None);
                  Sfor
                    ( Some (Eassign (Eid i, num 0)),
                      Some (Ebinop (Lt, Eid i, Eid n)),
                      Some (Eassign_op (Add, Eid i, num 1)),
                      body );
                ]);
          ])
  | Pres.Opt_ptr sub ->
      let n = fresh "n" in
      [
        Sblock
          ([
             Sdecl (n, uint32_t, Some (call "flick_get_u32" [ Eid "_msg"; bee ]));
             Sif
               ( Ebinop (Gt, Eid n, num 1),
                 [ Sexpr (call "flick_fail" [ Estr "bad optional count" ]) ],
                 [] );
             Sif
               ( Eid n,
                 [
                   Sexpr
                     (Eassign
                        ( dest,
                          call "flick_salloc"
                            [ Esizeof_expr (Eunop (Deref, dest)) ] ));
                 ]
                 @ unmarshal ~enc ~mint ~named ~dest:(Eunop (Deref, dest)) elem
                     sub,
                 [ Sexpr (Eassign (dest, num 0)) ] );
           ]);
      ]
  | Pres.Direct | Pres.Enum_direct | Pres.Struct _ | Pres.Union _ | Pres.Void
  | Pres.Ref _ ->
      invalid_arg "Cgen.unmarshal_array: PRES mismatch"

let unmarshal_stmts ~enc ~mint ~named ~dest idx pres =
  unmarshal ~enc ~mint ~named ~dest idx pres

let unmarshal_sub_functions ~enc ~mint ~named =
  List.map
    (fun (name, (idx, pres)) ->
      Dfun
        ( Static,
          "flick_dec_" ^ name,
          Tvoid,
          [ ("_msg", Tptr (Tnamed "flick_msg_t")); ("_v", Tptr (Tnamed name)) ],
          unmarshal ~enc ~mint ~named ~dest:(Eunop (Deref, Eid "_v")) idx pres ))
    named
