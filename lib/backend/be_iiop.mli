(** The CORBA IIOP back end: GIOP 1.0 framing with CDR data encoding
    over the loopback transport (paper Table 1: 353 lines over the
    back-end base library).  Requests carry the operation name, so the
    generated dispatch function uses the word-chunked string
    demultiplexer. *)

val transport : Backend_base.transport

val generate : Pres_c.t -> (string * string) list
