(** Lowering marshal plans to C statements (the code-generator half of
    the back-end base library, section 2.3).

    The marshal side prints {!Mplan} programs — so the emitted C embodies
    exactly the optimization decisions the stub engine executes.  Chunks
    become one capacity check, a chunk pointer, and stores at constant
    offsets ("pointer-plus-offset instructions", section 3.2); byte runs
    become [memcpy]; scalar arrays become a guarded [memcpy]-or-loop on
    byte order; everything is emitted inline except {!Mplan.op.Call}
    nodes, which call the per-type marshal functions emitted for
    recursive types.

    The unmarshal side is generated directly from (MINT, PRES) with the
    same layout discipline, reading through the runtime's checked-view
    helpers and allocating presented data with [flick_salloc] (the
    parameter-management optimization of section 3.1). *)

val expr_of_rv : vars:(int -> Cast.expr) -> Mplan.rv -> Cast.expr
(** The C lvalue a plan path denotes; [vars] supplies loop variables. *)

val marshal_stmts : enc:Encoding.t -> Mplan.op list -> Cast.stmt list
(** Statements appending one message body to [_buf]. *)

val marshal_sub_functions :
  enc:Encoding.t -> (string * Mplan.op list) list -> Cast.decl list
(** One [static void flick_enc_<name>(flick_buf_t *_buf, <T> *_v)]
    definition per named (recursive) presentation. *)

val unmarshal_stmts :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  dest:Cast.expr ->
  Mint.idx ->
  Pres.t ->
  Cast.stmt list
(** Statements decoding one value from [_msg] into [dest].  Allocation
    sizes are taken from the destination lvalue with [sizeof]. *)

val unmarshal_sub_functions :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Cast.decl list

val fresh_reset : unit -> unit
(** Reset the generated-temporary counter (per compilation unit). *)
