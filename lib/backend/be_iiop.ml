open Cast

let operation_name (st : Pres_c.op_stub) =
  match st.Pres_c.os_request_case with
  | Mint.Cstring s -> s
  | Mint.Cint _ | Mint.Cbool _ | Mint.Cchar _ ->
      (* a non-CORBA presentation routed over IIOP: dispatch on the
         operation name anyway, GIOP has no other key *)
      st.Pres_c.os_op.Aoi.op_name

(* GIOP dispatches on operation names regardless of the source
   presentation *)
let rekey (pc : Pres_c.t) =
  {
    pc with
    Pres_c.pc_stubs =
      List.map
        (fun st ->
          { st with Pres_c.os_request_case = Mint.Cstring (operation_name st) })
        pc.Pres_c.pc_stubs;
  }

let transport =
  {
    Backend_base.tr_name = "iiop";
    tr_enc = Encoding.cdr;
    tr_description = "CORBA IIOP (GIOP 1.0, CDR) over TCP";
    tr_begin_request =
      (fun pc st ->
        ignore pc;
        [
          Sexpr
            (call "flick_giop_begin_request"
               [
                 Eid "_buf";
                 Efield (Eunop (Deref, Backend_base.handle_expr pc), "key");
                 Estr (operation_name st);
                 num (if st.Pres_c.os_op.Aoi.op_oneway then 0 else 1);
               ]);
        ]);
    tr_end_request = [ Sexpr (call "flick_giop_end" [ Eid "_buf" ]) ];
    tr_recv_reply = [ Sexpr (call "flick_giop_recv_reply" [ Eid "_msg" ]) ];
    tr_server_recv =
      (fun _pc ->
        `String_key
          [
            Sraw "  char _key[128];";
            Sdecl ("_klen", uint32_t, None);
            Sdecl
              ( "_reqid",
                uint32_t,
                Some
                  (call "flick_giop_recv_request"
                     [
                       Eid "_msg"; Eid "_key"; Esizeof (Tarray (Tchar, Some 128));
                       Eunop (Addr, Eid "_klen");
                     ]) );
          ]);
    tr_begin_reply =
      [
        Sexpr (call "flick_giop_begin_reply" [ Eid "_out"; Eid "_reqid" ]);
      ];
    tr_end_reply = [ Sexpr (call "flick_giop_end" [ Eid "_out" ]) ];
  }

let generate pc = Backend_base.generate_files transport (rekey pc)
