let header =
  {header|/* flick_runtime.h - runtime support for Flick-generated stubs.
 *
 * The buffer API mirrors the optimization contract of the stub
 * compiler: flick_ensure() reserves capacity once per fixed-size
 * segment, after which generated code stores at constant offsets from
 * flick_ptr() and commits with one flick_advance() (the paper's
 * "chunk" discipline).  Traditional per-datum stubs instead call the
 * checked flick_put_* helpers.
 */
#ifndef FLICK_RUNTIME_H
#define FLICK_RUNTIME_H

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_BIG_ENDIAN__)
#define FLICK_HOST_BIG_ENDIAN 1
#endif

/* ---- failure ----------------------------------------------------- */

static inline void flick_fail(const char *why)
{
  fprintf(stderr, "flick: %s\n", why);
  abort();
}

/* ---- marshal buffers ---------------------------------------------- */

typedef struct flick_buf {
  char *data;
  size_t cap;
  size_t pos;
} flick_buf_t;

static inline void flick_buf_init(flick_buf_t *b)
{
  b->cap = 256;
  b->data = (char *)malloc(b->cap);
  b->pos = 0;
}

static inline void flick_buf_reset(flick_buf_t *b) { b->pos = 0; }

static inline void flick_ensure(flick_buf_t *b, size_t n)
{
  if (b->pos + n > b->cap) {
    while (b->pos + n > b->cap) b->cap *= 2;
    b->data = (char *)realloc(b->data, b->cap);
  }
}

static inline char *flick_ptr(flick_buf_t *b) { return b->data + b->pos; }
static inline void flick_advance(flick_buf_t *b, size_t n) { b->pos += n; }

static inline void flick_align(flick_buf_t *b, size_t a)
{
  size_t rem = b->pos & (a - 1);
  if (rem) {
    size_t pad = a - rem;
    flick_ensure(b, pad);
    memset(b->data + b->pos, 0, pad);
    b->pos += pad;
  }
}

/* ---- endian stores ------------------------------------------------- */

#define FLICK_ST_U8(p, v) (*(uint8_t *)(p) = (uint8_t)(v))
#define FLICK_ST_16BE(p, v) flick_st16be((char *)(p), (uint16_t)(v))
#define FLICK_ST_16LE(p, v) flick_st16le((char *)(p), (uint16_t)(v))
#define FLICK_ST_32BE(p, v) flick_st32be((char *)(p), (uint32_t)(v))
#define FLICK_ST_32LE(p, v) flick_st32le((char *)(p), (uint32_t)(v))
#define FLICK_ST_64BE(p, v) flick_st64be((char *)(p), (uint64_t)(v))
#define FLICK_ST_64LE(p, v) flick_st64le((char *)(p), (uint64_t)(v))
#define FLICK_ST_F32BE(p, v) flick_stf32(p, (float)(v), 1)
#define FLICK_ST_F32LE(p, v) flick_stf32(p, (float)(v), 0)
#define FLICK_ST_F64BE(p, v) flick_stf64(p, (double)(v), 1)
#define FLICK_ST_F64LE(p, v) flick_stf64(p, (double)(v), 0)

static inline void flick_st16be(char *p, uint16_t v)
{
  p[0] = (char)(v >> 8); p[1] = (char)v;
}
static inline void flick_st16le(char *p, uint16_t v)
{
  p[0] = (char)v; p[1] = (char)(v >> 8);
}
static inline void flick_st32be(char *p, uint32_t v)
{
  p[0] = (char)(v >> 24); p[1] = (char)(v >> 16);
  p[2] = (char)(v >> 8); p[3] = (char)v;
}
static inline void flick_st32le(char *p, uint32_t v)
{
  p[0] = (char)v; p[1] = (char)(v >> 8);
  p[2] = (char)(v >> 16); p[3] = (char)(v >> 24);
}
static inline void flick_st64be(char *p, uint64_t v)
{
  flick_st32be(p, (uint32_t)(v >> 32));
  flick_st32be(p + 4, (uint32_t)v);
}
static inline void flick_st64le(char *p, uint64_t v)
{
  flick_st32le(p, (uint32_t)v);
  flick_st32le(p + 4, (uint32_t)(v >> 32));
}
static inline void flick_stf32(char *p, float v, int be)
{
  uint32_t bits;
  memcpy(&bits, &v, 4);
  if (be) flick_st32be(p, bits); else flick_st32le(p, bits);
}
static inline void flick_stf64(char *p, double v, int be)
{
  uint64_t bits;
  memcpy(&bits, &v, 8);
  if (be) flick_st64be(p, bits); else flick_st64le(p, bits);
}

/* ---- checked appends (traditional per-datum shape) ----------------- */

static inline void flick_put_u32(flick_buf_t *b, uint32_t v, int be)
{
  flick_align(b, 4);
  flick_ensure(b, 4);
  if (be) flick_st32be(flick_ptr(b), v); else flick_st32le(flick_ptr(b), v);
  b->pos += 4;
}

static inline void flick_put_str(flick_buf_t *b, const char *s, int nul, int pad,
                          int be)
{
  size_t slen = strlen(s);
  size_t data = slen + (nul ? 1 : 0);
  size_t padded = (data + pad - 1) / pad * pad;
  flick_put_u32(b, (uint32_t)data, be);
  flick_ensure(b, padded);
  memcpy(flick_ptr(b), s, slen);
  memset(flick_ptr(b) + slen, 0, padded - slen);
  b->pos += padded;
}

/* explicit-length variant: the optimized presentation never calls
 * strlen (paper section 2.2) */
static inline void flick_put_str_n(flick_buf_t *b, const char *s, uint32_t slen,
                            int nul, int pad, int be)
{
  size_t data = slen + (nul ? 1 : 0);
  size_t padded = (data + pad - 1) / pad * pad;
  flick_put_u32(b, (uint32_t)data, be);
  flick_ensure(b, padded);
  memcpy(flick_ptr(b), s, slen);
  memset(flick_ptr(b) + slen, 0, padded - slen);
  b->pos += padded;
}

static inline void flick_put_bseq(flick_buf_t *b, const char *p, uint32_t n, int pad,
                           int be)
{
  size_t padded = ((size_t)n + pad - 1) / pad * pad;
  flick_put_u32(b, n, be);
  flick_ensure(b, padded);
  memcpy(flick_ptr(b), p, n);
  memset(flick_ptr(b) + n, 0, padded - n);
  b->pos += padded;
}

/* fixed-length packed run split out of its chunk (scatter-gather shape);
 * the contiguous C runtime copies, an iovec runtime would borrow */
static inline void flick_put_blit(flick_buf_t *b, const char *p, uint32_t n,
                           uint32_t pad)
{
  flick_ensure(b, (size_t)n + pad);
  memcpy(flick_ptr(b), p, n);
  memset(flick_ptr(b) + n, 0, pad);
  b->pos += (size_t)n + pad;
}

/* ---- message readers ------------------------------------------------ */

typedef struct flick_msg {
  const char *data;
  size_t pos;
  size_t end;
} flick_msg_t;

static inline void flick_need(flick_msg_t *m, size_t n)
{
  if (m->pos + n > m->end) flick_fail("short message");
}

static inline void flick_msg_align(flick_msg_t *m, size_t a)
{
  size_t rem = m->pos & (a - 1);
  if (rem) { flick_need(m, a - rem); m->pos += a - rem; }
}

static inline void flick_msg_skip(flick_msg_t *m, size_t n)
{
  flick_need(m, n);
  m->pos += n;
}

static inline void flick_msg_skip_pad(flick_msg_t *m, uint32_t n, int pad)
{
  uint32_t padded = (n + pad - 1) / pad * pad;
  if (padded > n) flick_msg_skip(m, padded - n);
}

static inline void flick_msg_skip_hdr(flick_msg_t *m)
{
  flick_msg_align(m, 4);
  flick_msg_skip(m, 4);
}

static inline uint8_t flick_get_u8(flick_msg_t *m)
{
  flick_need(m, 1);
  return (uint8_t)m->data[m->pos++];
}

static inline uint16_t flick_get_16(flick_msg_t *m, int be)
{
  const unsigned char *p;
  uint16_t v;
  flick_msg_align(m, 2);
  flick_need(m, 2);
  p = (const unsigned char *)m->data + m->pos;
  v = be ? (uint16_t)((p[0] << 8) | p[1]) : (uint16_t)((p[1] << 8) | p[0]);
  m->pos += 2;
  return v;
}

static inline uint32_t flick_get_32(flick_msg_t *m, int be)
{
  const unsigned char *p;
  uint32_t v;
  flick_msg_align(m, 4);
  flick_need(m, 4);
  p = (const unsigned char *)m->data + m->pos;
  v = be ? ((uint32_t)p[0] << 24) | ((uint32_t)p[1] << 16)
             | ((uint32_t)p[2] << 8) | p[3]
         : ((uint32_t)p[3] << 24) | ((uint32_t)p[2] << 16)
             | ((uint32_t)p[1] << 8) | p[0];
  m->pos += 4;
  return v;
}

static inline uint32_t flick_get_u32(flick_msg_t *m, int be) { return flick_get_32(m, be); }

static inline uint64_t flick_get_64(flick_msg_t *m, int be, int align)
{
  uint64_t hi, lo;
  flick_msg_align(m, align);
  flick_need(m, 8);
  if (be) {
    hi = flick_get_32(m, 1);
    lo = flick_get_32(m, 1);
  } else {
    lo = flick_get_32(m, 0);
    hi = flick_get_32(m, 0);
  }
  return (hi << 32) | lo;
}

static inline float flick_get_f32(flick_msg_t *m, int be)
{
  uint32_t bits = flick_get_32(m, be);
  float v;
  memcpy(&v, &bits, 4);
  return v;
}

static inline double flick_get_f64(flick_msg_t *m, int be, int align)
{
  uint64_t bits = flick_get_64(m, be, align);
  double v;
  memcpy(&v, &bits, 8);
  return v;
}

static inline int flick_get_bool8(flick_msg_t *m)
{
  uint8_t v = flick_get_u8(m);
  if (v > 1) flick_fail("invalid boolean");
  return v;
}

static inline int flick_get_bool32(flick_msg_t *m, int be)
{
  uint32_t v = flick_get_32(m, be);
  if (v > 1) flick_fail("invalid boolean");
  return (int)v;
}

static inline void flick_get_bytes(flick_msg_t *m, void *dst, size_t n)
{
  flick_need(m, n);
  memcpy(dst, m->data + m->pos, n);
  m->pos += n;
}

/* fixed-length packed run split out of its chunk: one bounds check
 * covers the data and its trailing pad, mirroring flick_put_blit on
 * the encode side.  The contiguous C runtime copies; an iovec runtime
 * would hand back a borrowed pointer instead. */
static inline void flick_get_blit(flick_msg_t *m, void *dst, size_t n,
                           size_t pad)
{
  flick_need(m, n + pad);
  memcpy(dst, m->data + m->pos, n);
  m->pos += n + pad;
}

/* Reads a counted string key (operation name, exception id) into a
 * caller-supplied buffer. */
static inline void flick_get_key(flick_msg_t *m, char *dst, size_t cap,
                          uint32_t *len, int nul, int pad, int be)
{
  uint32_t wire = flick_get_u32(m, be);
  uint32_t data = nul ? wire - 1 : wire;
  if (nul && wire == 0) flick_fail("bad key length");
  if (data + 1 > cap) flick_fail("key too long");
  flick_get_bytes(m, dst, data);
  dst[data] = 0;
  *len = data;
  if (nul) flick_msg_skip(m, 1);
  flick_msg_skip_pad(m, wire, pad);
}

/* word-at-a-time loads for the demultiplexing switches (section 3.3) */
static inline uint32_t flick_ld32be(const char *p)
{
  const unsigned char *u = (const unsigned char *)p;
  return ((uint32_t)u[0] << 24) | ((uint32_t)u[1] << 16)
       | ((uint32_t)u[2] << 8) | u[3];
}
#define FLICK_LD_32BE(p) flick_ld32be(p)

/* ---- parameter storage (section 3.1) -------------------------------- */
/* A bump arena stands in for the paper's stack/in-buffer parameter
 * allocation: unmarshaled data lives until the work function returns,
 * then the whole arena is recycled at once. */

static char flick_arena[1 << 20];
static size_t flick_arena_pos;

static inline void *flick_salloc(size_t n)
{
  void *p;
  n = (n + 7) & ~(size_t)7;
  if (flick_arena_pos + n > sizeof(flick_arena))
    flick_fail("parameter arena exhausted");
  p = flick_arena + flick_arena_pos;
  flick_arena_pos += n;
  return p;
}

static inline void flick_salloc_reset(void) { flick_arena_pos = 0; }

/* ---- presentation support ------------------------------------------- */

typedef int flick_bool_t;

typedef struct flick_env {
  int _major;              /* 0 = no exception */
  const char *exc_name;
  void *exc_value;
} flick_env_t;

static inline void flick_env_clear(flick_env_t *ev)
{
  ev->_major = 0;
  ev->exc_name = 0;
  ev->exc_value = 0;
}

static inline void flick_env_raise(flick_env_t *ev, const char *name, void *value)
{
  ev->_major = 1;
  ev->exc_name = name;
  ev->exc_value = value;
}

/* ---- loopback transport --------------------------------------------- */
/* Object references carry a direct pointer to the server dispatch
 * function; flick_invoke runs it in-process over the marshaled request.
 * This is the testing transport; the framing below is still the real
 * wire format of each back end. */

typedef void (*flick_dispatch_fn)(flick_msg_t *, flick_buf_t *, void *);

typedef struct flick_object {
  flick_dispatch_fn dispatch;
  void *impl_state;
  const char *key;         /* object key for GIOP framing */
} *flick_objref_t;

typedef struct flick_object flick_client_t;
typedef struct flick_svc_req { int proc; } flick_svc_req_t;

static flick_buf_t flick_reply_buf;

static inline flick_msg_t flick_invoke(struct flick_object *obj, flick_buf_t *req)
{
  flick_msg_t in, out;
  if (!flick_reply_buf.data) flick_buf_init(&flick_reply_buf);
  flick_buf_reset(&flick_reply_buf);
  in.data = req->data;
  in.pos = 0;
  in.end = req->pos;
  obj->dispatch(&in, &flick_reply_buf, obj->impl_state);
  out.data = flick_reply_buf.data;
  out.pos = 0;
  out.end = flick_reply_buf.pos;
  return out;
}

/* ---- GIOP / IIOP framing -------------------------------------------- */

static uint32_t flick_giop_request_id;

static inline void flick_giop_begin_request(flick_buf_t *b, const char *obj_key,
                                     const char *operation, int response)
{
  /* GIOP header: magic, version 1.0, flags (big endian), Request, size */
  flick_ensure(b, 12);
  memcpy(flick_ptr(b), "GIOP\x01\x00\x00\x00", 8);
  flick_st32be(flick_ptr(b) + 8, 0);
  b->pos += 12;
  flick_put_u32(b, 0, 1);                    /* empty service context */
  flick_put_u32(b, ++flick_giop_request_id, 1);
  flick_ensure(b, 1);
  *flick_ptr(b) = (char)response;
  b->pos += 1;
  flick_put_bseq(b, obj_key, (uint32_t)strlen(obj_key), 1, 1);
  flick_put_str(b, operation, 1, 1, 1);
  flick_put_u32(b, 0, 1);                    /* no principal */
  flick_align(b, 8);                          /* body starts max-aligned */
}

static inline void flick_giop_end(flick_buf_t *b)
{
  flick_st32be(b->data + 8, (uint32_t)(b->pos - 12));
}

static inline void flick_giop_begin_reply(flick_buf_t *b, uint32_t request_id)
{
  flick_ensure(b, 12);
  memcpy(flick_ptr(b), "GIOP\x01\x00\x00\x01", 8); /* Reply */
  flick_st32be(flick_ptr(b) + 8, 0);
  b->pos += 12;
  flick_put_u32(b, 0, 1);                    /* empty service context */
  flick_put_u32(b, request_id, 1);
  flick_align(b, 8);
}

/* Reads the request header; copies the operation name into key (at most
 * keycap bytes) and returns the request id. */
static inline uint32_t flick_giop_recv_request(flick_msg_t *m, char *key,
                                        size_t keycap, uint32_t *klen)
{
  uint32_t request_id, n;
  flick_msg_skip(m, 12);                      /* GIOP header */
  flick_get_u32(m, 1);                        /* service context */
  request_id = flick_get_u32(m, 1);
  flick_get_u8(m);                            /* response_expected */
  n = flick_get_u32(m, 1);                    /* object key */
  flick_msg_skip(m, n);
  n = flick_get_u32(m, 1);                    /* operation (incl. NUL) */
  if (n == 0 || n > keycap) flick_fail("operation name too long");
  flick_get_bytes(m, key, n);
  *klen = n - 1;                              /* drop the NUL */
  flick_get_u32(m, 1);                        /* principal */
  flick_msg_align(m, 8);
  return request_id;
}

static inline void flick_giop_recv_reply(flick_msg_t *m)
{
  flick_msg_skip(m, 12);
  flick_get_u32(m, 1);                        /* service context */
  flick_get_u32(m, 1);                        /* request id */
  flick_msg_align(m, 8);
}

/* ---- ONC RPC framing ------------------------------------------------- */

static uint32_t flick_onc_xid;

static inline void flick_onc_begin_call(flick_buf_t *b, uint32_t prog, uint32_t vers,
                                 uint32_t proc)
{
  flick_put_u32(b, ++flick_onc_xid, 1);
  flick_put_u32(b, 0, 1);                     /* CALL */
  flick_put_u32(b, 2, 1);                     /* RPC version */
  flick_put_u32(b, prog, 1);
  flick_put_u32(b, vers, 1);
  flick_put_u32(b, proc, 1);
  flick_put_u32(b, 0, 1);                     /* cred AUTH_NONE */
  flick_put_u32(b, 0, 1);
  flick_put_u32(b, 0, 1);                     /* verf AUTH_NONE */
  flick_put_u32(b, 0, 1);
}

static inline void flick_onc_begin_reply(flick_buf_t *b, uint32_t xid)
{
  flick_put_u32(b, xid, 1);
  flick_put_u32(b, 1, 1);                     /* REPLY */
  flick_put_u32(b, 0, 1);                     /* MSG_ACCEPTED */
  flick_put_u32(b, 0, 1);                     /* verf AUTH_NONE */
  flick_put_u32(b, 0, 1);
  flick_put_u32(b, 0, 1);                     /* SUCCESS */
}

static inline uint32_t flick_onc_recv_call(flick_msg_t *m, uint32_t *xid)
{
  uint32_t proc;
  *xid = flick_get_u32(m, 1);
  flick_get_u32(m, 1);                        /* CALL */
  flick_get_u32(m, 1);                        /* rpc version */
  flick_get_u32(m, 1);                        /* prog */
  flick_get_u32(m, 1);                        /* vers */
  proc = flick_get_u32(m, 1);
  flick_get_u32(m, 1); flick_get_u32(m, 1);   /* cred */
  flick_get_u32(m, 1); flick_get_u32(m, 1);   /* verf */
  return proc;
}

static inline void flick_onc_recv_reply(flick_msg_t *m)
{
  flick_get_u32(m, 1);                        /* xid */
  flick_get_u32(m, 1);                        /* REPLY */
  flick_get_u32(m, 1);                        /* MSG_ACCEPTED */
  flick_get_u32(m, 1); flick_get_u32(m, 1);   /* verf */
  if (flick_get_u32(m, 1) != 0) flick_fail("rpc call rejected");
}

/* ---- Mach 3 framing --------------------------------------------------- */

static inline void flick_mach_begin(flick_buf_t *b, uint32_t msgh_id)
{
  flick_put_u32(b, 0, 0);                     /* msgh_bits */
  flick_put_u32(b, 0, 0);                     /* msgh_size, patched */
  flick_put_u32(b, 1, 0);                     /* remote port */
  flick_put_u32(b, 2, 0);                     /* local port */
  flick_put_u32(b, msgh_id, 0);
  flick_align(b, 8);
}

static inline void flick_mach_end(flick_buf_t *b)
{
  flick_st32le(b->data + 4, (uint32_t)b->pos);
}

static inline uint32_t flick_mach_recv(flick_msg_t *m)
{
  uint32_t id;
  flick_get_u32(m, 0); flick_get_u32(m, 0);
  flick_get_u32(m, 0); flick_get_u32(m, 0);
  id = flick_get_u32(m, 0);
  flick_msg_align(m, 8);
  return id;
}

/* ---- Fluke framing ----------------------------------------------------- */
/* The first words of a Fluke message travel in registers; the loopback
 * transport models them as the leading words of the buffer. */

static inline void flick_fluke_begin(flick_buf_t *b, uint32_t msg_id)
{
  flick_put_u32(b, msg_id, 0);
  flick_align(b, 8);
}

static inline uint32_t flick_fluke_recv(flick_msg_t *m)
{
  uint32_t id = flick_get_u32(m, 0);
  flick_msg_align(m, 8);
  return id;
}

#endif /* FLICK_RUNTIME_H */
|header}

let write_to dir =
  let path = Filename.concat dir "flick_runtime.h" in
  let oc = open_out path in
  output_string oc header;
  close_out oc
