open Cast

type transport = {
  tr_name : string;
  tr_enc : Encoding.t;
  tr_description : string;
  tr_begin_request : Pres_c.t -> Pres_c.op_stub -> Cast.stmt list;
  tr_end_request : Cast.stmt list;
  tr_recv_reply : Cast.stmt list;
  tr_server_recv :
    Pres_c.t -> [ `Int_key of Cast.stmt list | `String_key of Cast.stmt list ];
  tr_begin_reply : Cast.stmt list;
  tr_end_reply : Cast.stmt list;
}

let find_proto (pc : Pres_c.t) name =
  let rec search = function
    | [] -> invalid_arg ("Backend_base: missing prototype for " ^ name)
    | Dfun_proto (_, n, ret, params) :: _ when n = name -> (ret, params)
    | _ :: rest -> search rest
  in
  search pc.Pres_c.pc_decls

let handle_expr (pc : Pres_c.t) =
  match pc.Pres_c.pc_style with
  | Pres_c.Corba | Pres_c.Mig | Pres_c.Fluke -> Eid "_obj"
  | Pres_c.Rpcgen -> Eid "_clnt"

let has_status (pc : Pres_c.t) = pc.Pres_c.pc_style = Pres_c.Corba

let deref_ctype = function Tptr t -> t | t -> t

let in_params (st : Pres_c.op_stub) =
  List.filter
    (fun (pi : Pres_c.param_info) ->
      match pi.Pres_c.pi_dir with Aoi.In | Aoi.Inout -> true | Aoi.Out -> false)
    st.Pres_c.os_params

let out_params (st : Pres_c.op_stub) =
  List.filter
    (fun (pi : Pres_c.param_info) ->
      match pi.Pres_c.pi_dir with Aoi.Out | Aoi.Inout -> true | Aoi.In -> false)
    st.Pres_c.os_params

let request_roots (st : Pres_c.op_stub) =
  List.mapi
    (fun i (pi : Pres_c.param_info) ->
      Plan_compile.Rvalue
        ( Mplan.Rparam
            { index = i; name = pi.Pres_c.pi_name; deref = pi.Pres_c.pi_byref },
          pi.Pres_c.pi_mint,
          pi.Pres_c.pi_pres ))
    (in_params st)

let u32_kind = Encoding.Kint { bits = 32; signed = false }

(* ------------------------------------------------------------------ *)
(* Client stubs                                                         *)
(* ------------------------------------------------------------------ *)

let buf_setup =
  [
    Sraw "  /* buffers are reused between invocations (section 3.1) */";
    Sraw "  static flick_buf_t _buf_store;";
    Sdecl ("_buf", Tptr (Tnamed "flick_buf_t"), Some (Eunop (Addr, Eid "_buf_store")));
    Sif
      ( Eunop (Lognot, Efield (Eid "_buf_store", "data")),
        [ Sexpr (call "flick_buf_init" [ Eid "_buf" ]) ],
        [] );
    Sexpr (call "flick_buf_reset" [ Eid "_buf" ]);
  ]

let zero_return ret_ct =
  match ret_ct with
  | Tvoid -> Sreturn None
  | _ -> Sreturn (Some (Ecast (ret_ct, num 0)))

let client_stub (tr : transport) (pc : Pres_c.t) (st : Pres_c.op_stub) : decl =
  let enc = tr.tr_enc in
  let be = enc.Encoding.big_endian in
  let bee = if be then num 1 else num 0 in
  let ret_ct, params = find_proto pc st.Pres_c.os_client_name in
  let named = pc.Pres_c.pc_named in
  let mint = pc.Pres_c.pc_mint in
  let plan =
    Plan_cache.plan ~enc ~mint ~named (request_roots st)
  in
  let marshal = Cgen.marshal_stmts ~enc plan.Plan_compile.p_ops in
  let invoke =
    [
      Sraw "  /* exchange the message with the server */";
      Sdecl
        ( "_msg_store",
          Tnamed "flick_msg_t",
          Some (call "flick_invoke" [ handle_expr pc; Eid "_buf" ]) );
      Sdecl ("_msg", Tptr (Tnamed "flick_msg_t"), Some (Eunop (Addr, Eid "_msg_store")));
    ]
  in
  let decode_out (pi : Pres_c.param_info) =
    Cgen.unmarshal_stmts ~enc ~mint ~named
      ~dest:(Eunop (Deref, Eid pi.Pres_c.pi_name))
      pi.Pres_c.pi_mint pi.Pres_c.pi_pres
  in
  let ret_stmts =
    match st.Pres_c.os_return with
    | None ->
        List.concat_map decode_out (out_params st) @ [ Sreturn None ]
    | Some r when r.Pres_c.pi_byref ->
        let base = deref_ctype r.Pres_c.pi_ctype in
        [
          Sdecl
            ( "_ret",
              r.Pres_c.pi_ctype,
              Some (Ecast (r.Pres_c.pi_ctype, call "flick_salloc" [ Esizeof base ]))
            );
        ]
        @ Cgen.unmarshal_stmts ~enc ~mint ~named
            ~dest:(Eunop (Deref, Eid "_ret"))
            r.Pres_c.pi_mint r.Pres_c.pi_pres
        @ List.concat_map decode_out (out_params st)
        @ [ Sreturn (Some (Eid "_ret")) ]
    | Some r ->
        [ Sdecl ("_ret", r.Pres_c.pi_ctype, None) ]
        @ Cgen.unmarshal_stmts ~enc ~mint ~named ~dest:(Eid "_ret")
            r.Pres_c.pi_mint r.Pres_c.pi_pres
        @ List.concat_map decode_out (out_params st)
        @ [ Sreturn (Some (Eid "_ret")) ]
  in
  let reply_handling =
    if st.Pres_c.os_op.Aoi.op_oneway then
      [
        Sexpr (call "flick_invoke" [ handle_expr pc; Eid "_buf" ]);
        Sreturn None;
      ]
    else
      invoke @ tr.tr_recv_reply
      @
      if has_status pc then
        let exc_chain =
          List.fold_right
            (fun (wire, (pi : Pres_c.param_info)) otherwise ->
              [
                Sif
                  ( Ebinop (Eq, call "strcmp" [ Eid "_exckey"; Estr wire ], num 0),
                    [
                      Sdecl
                        ( "_exc",
                          pi.Pres_c.pi_ctype,
                          Some
                            (Ecast
                               ( pi.Pres_c.pi_ctype,
                                 call "flick_salloc"
                                   [ Esizeof (deref_ctype pi.Pres_c.pi_ctype) ]
                               )) );
                    ]
                    @ Cgen.unmarshal_stmts ~enc ~mint ~named
                        ~dest:(Eunop (Deref, Eid "_exc"))
                        pi.Pres_c.pi_mint pi.Pres_c.pi_pres
                    @ [
                        Sexpr
                          (call "flick_env_raise"
                             [ Eid "_ev"; Estr wire; Eid "_exc" ]);
                      ],
                    otherwise );
              ])
            st.Pres_c.os_exceptions
            [ Sexpr (call "flick_fail" [ Estr "unknown user exception" ]) ]
        in
        (if enc.Encoding.typed_headers then
           [ Sexpr (call "flick_msg_skip_hdr" [ Eid "_msg" ]) ]
         else [])
        @ [
          Sdecl ("_status", uint32_t, Some (call "flick_get_u32" [ Eid "_msg"; bee ]));
          Sif
            ( Ebinop (Ne, Eid "_status", num 0),
              (if enc.Encoding.typed_headers then
                 [ Sexpr (call "flick_msg_skip_hdr" [ Eid "_msg" ]) ]
               else [])
              @ [
                Sraw "    char _exckey[128];";
                Sdecl ("_exclen", uint32_t, None);
                Sexpr
                  (call "flick_get_key"
                     [
                       Eid "_msg"; Eid "_exckey"; Esizeof (Tarray (Tchar, Some 128));
                       Eunop (Addr, Eid "_exclen");
                       num (if enc.Encoding.string_nul then 1 else 0);
                       num enc.Encoding.pad_unit; bee;
                     ]);
              ]
              @ exc_chain
              @ [ zero_return ret_ct ],
              [] );
        ]
        @ ret_stmts
      else ret_stmts
  in
  Dfun
    ( Public,
      st.Pres_c.os_client_name,
      ret_ct,
      params,
      buf_setup
      @ tr.tr_begin_request pc st
      @ [ Scomment "marshal the request (compiled marshal plan)" ]
      @ marshal @ tr.tr_end_request @ reply_handling )

(* ------------------------------------------------------------------ *)
(* Server dispatch                                                      *)
(* ------------------------------------------------------------------ *)

(* The word-chunked demultiplexer of section 3.3: operation names are
   compared one 32-bit chunk at a time via nested switches. *)
let word_of_key name i =
  let b j =
    if (4 * i) + j < String.length name then
      Int64.of_int (Char.code name.[(4 * i) + j])
    else 0L
  in
  Int64.logor
    (Int64.shift_left (b 0) 24)
    (Int64.logor (Int64.shift_left (b 1) 16)
       (Int64.logor (Int64.shift_left (b 2) 8) (b 3)))

let rec match_words ops word_idx : stmt list =
  match ops with
  | [ (label, name) ] when 4 * word_idx >= String.length name -> [ Sgoto label ]
  | _ ->
      let groups = Hashtbl.create 4 in
      List.iter
        (fun (label, name) ->
          let w = word_of_key name word_idx in
          let existing = try Hashtbl.find groups w with Not_found -> [] in
          Hashtbl.replace groups w ((label, name) :: existing))
        ops;
      let cases =
        Hashtbl.fold
          (fun w members acc ->
            {
              sc_labels = [ Eint w ];
              sc_body = match_words (List.rev members) (word_idx + 1);
            }
            :: acc)
          groups []
        @ [
            {
              sc_labels = [];
              sc_body = [ Sexpr (call "flick_fail" [ Estr "unknown operation" ]) ];
            };
          ]
      in
      [
        Sswitch
          ( call "FLICK_LD_32BE" [ Ebinop (Add, Eid "_key", num (4 * word_idx)) ],
            cases );
      ]

let string_demux (stubs : (string * Pres_c.op_stub) list) : stmt list =
  let by_len = Hashtbl.create 4 in
  List.iter
    (fun (label, (st : Pres_c.op_stub)) ->
      match st.Pres_c.os_request_case with
      | Mint.Cstring name ->
          let len = String.length name in
          let existing = try Hashtbl.find by_len len with Not_found -> [] in
          Hashtbl.replace by_len len ((label, name) :: existing)
      | Mint.Cint _ | Mint.Cbool _ | Mint.Cchar _ ->
          invalid_arg "Backend_base: mixed request keys")
    stubs;
  let cases =
    Hashtbl.fold
      (fun len members acc ->
        { sc_labels = [ num len ]; sc_body = match_words (List.rev members) 0 }
        :: acc)
      by_len []
    @ [
        {
          sc_labels = [];
          sc_body = [ Sexpr (call "flick_fail" [ Estr "unknown operation" ]) ];
        };
      ]
  in
  [
    Scomment "demultiplex on the operation name, one machine word at a time";
    Sexpr
      (call "memset"
         [
           Ebinop (Add, Eid "_key", Eid "_klen"); num 0;
           Ebinop (Sub, Esizeof (Tarray (Tchar, Some 128)), Eid "_klen");
         ]);
    Sswitch (Eid "_klen", cases);
  ]

let int_demux (stubs : (string * Pres_c.op_stub) list) : stmt list =
  let cases =
    List.map
      (fun (label, (st : Pres_c.op_stub)) ->
        let v =
          match st.Pres_c.os_request_case with
          | Mint.Cint n -> Eint n
          | Mint.Cbool b -> num (if b then 1 else 0)
          | Mint.Cchar c -> Echar c
          | Mint.Cstring _ -> invalid_arg "Backend_base: mixed request keys"
        in
        { sc_labels = [ v ]; sc_body = [ Sgoto label ] })
      stubs
    @ [
        {
          sc_labels = [];
          sc_body = [ Sexpr (call "flick_fail" [ Estr "unknown operation" ]) ];
        };
      ]
  in
  [ Sswitch (Eid "_op", cases) ]

let server_case (tr : transport) (pc : Pres_c.t) (st : Pres_c.op_stub)
    ~(label : string) ~(has_int_key : bool) : stmt list =
  let enc = tr.tr_enc in
  let named = pc.Pres_c.pc_named in
  let mint = pc.Pres_c.pc_mint in
  let _, impl_params = find_proto pc st.Pres_c.os_server_name in
  let ret_ct, _ = find_proto pc st.Pres_c.os_server_name in
  (* locals for every parameter; in-params are decoded, out-params are
     filled by the work function *)
  let local_decls =
    List.map
      (fun (pi : Pres_c.param_info) ->
        let base = deref_ctype pi.Pres_c.pi_ctype in
        let ty = if pi.Pres_c.pi_byref then base else pi.Pres_c.pi_ctype in
        Sdecl (pi.Pres_c.pi_name, ty, None))
      st.Pres_c.os_params
  in
  let decode_ins =
    List.concat_map
      (fun (pi : Pres_c.param_info) ->
        match pi.Pres_c.pi_dir with
        | Aoi.In | Aoi.Inout ->
            Cgen.unmarshal_stmts ~enc ~mint ~named ~dest:(Eid pi.Pres_c.pi_name)
              pi.Pres_c.pi_mint pi.Pres_c.pi_pres
        | Aoi.Out -> [])
      st.Pres_c.os_params
  in
  let arg_of (pname, pty) =
    match pname with
    | "_obj" -> Ecast (pty, Eid "_state")
    | "_ev" -> Eid "_ev"
    | "_rqstp" -> Eunop (Addr, Eid "_rq")
    | _ -> (
        match
          List.find_opt
            (fun (pi : Pres_c.param_info) -> pi.Pres_c.pi_name = pname)
            st.Pres_c.os_params
        with
        | Some pi ->
            if pi.Pres_c.pi_byref then Eunop (Addr, Eid pname) else Eid pname
        | None -> (
            (* explicit string-length parameters are derived on the
               server side *)
            match
              List.find_opt
                (fun (pi : Pres_c.param_info) ->
                  match pi.Pres_c.pi_pres with
                  | Pres.Terminated_string_len { len_param } ->
                      len_param = pname
                  | _ -> false)
                st.Pres_c.os_params
            with
            | Some pi ->
                Ecast (uint32_t, call "strlen" [ Eid pi.Pres_c.pi_name ])
            | None ->
                invalid_arg ("Backend_base: unknown parameter " ^ pname)))
  in
  let args = List.map arg_of impl_params in
  let call_impl =
    match st.Pres_c.os_op.Aoi.op_return with
    | Aoi.Void -> [ Sexpr (Ecall (st.Pres_c.os_server_name, args)) ]
    | _ ->
        [
          Sdecl
            ( "_ret",
              ret_ct,
              Some (Ecall (st.Pres_c.os_server_name, args)) );
        ]
  in
  let reply_roots =
    (if has_status pc then [ Plan_compile.Rconst_int (0L, u32_kind) ] else [])
    @ (match st.Pres_c.os_return with
      | None -> []
      | Some r ->
          [
            Plan_compile.Rvalue
              ( Mplan.Rparam
                  { index = 0; name = "_ret"; deref = r.Pres_c.pi_byref },
                r.Pres_c.pi_mint,
                r.Pres_c.pi_pres );
          ])
    @ List.map
        (fun (pi : Pres_c.param_info) ->
          Plan_compile.Rvalue
            ( Mplan.Rparam { index = 0; name = pi.Pres_c.pi_name; deref = false },
              pi.Pres_c.pi_mint,
              pi.Pres_c.pi_pres ))
        (out_params st)
  in
  let reply_plan = Plan_cache.plan ~enc ~mint ~named reply_roots in
  let marshal_reply = Cgen.marshal_stmts ~enc reply_plan.Plan_compile.p_ops in
  let exception_replies =
    if has_status pc && st.Pres_c.os_exceptions <> [] then
      let chain =
        List.fold_right
          (fun (wire, (pi : Pres_c.param_info)) otherwise ->
            let exc_plan =
              Plan_cache.plan ~enc ~mint ~named
                [
                  Plan_compile.Rconst_int (1L, u32_kind);
                  Plan_compile.Rconst_str wire;
                  Plan_compile.Rvalue
                    ( Mplan.Rparam { index = 0; name = "_exc"; deref = true },
                      pi.Pres_c.pi_mint,
                      pi.Pres_c.pi_pres );
                ]
            in
            [
              Sif
                ( Ebinop
                    ( Eq,
                      call "strcmp" [ Earrow (Eid "_ev", "exc_name"); Estr wire ],
                      num 0 ),
                  [
                    Sdecl
                      ( "_exc",
                        pi.Pres_c.pi_ctype,
                        Some
                          (Ecast (pi.Pres_c.pi_ctype, Earrow (Eid "_ev", "exc_value")))
                      );
                  ]
                  @ Cgen.marshal_stmts ~enc exc_plan.Plan_compile.p_ops,
                  otherwise );
            ])
          st.Pres_c.os_exceptions
          [ Sexpr (call "flick_fail" [ Estr "undeclared exception raised" ]) ]
      in
      [
        Sif
          ( Earrow (Eid "_ev", "_major"),
            tr.tr_begin_reply @ chain @ tr.tr_end_reply @ [ Sreturn None ],
            [] );
      ]
    else []
  in
  let rq_local =
    if pc.Pres_c.pc_style = Pres_c.Rpcgen then
      [
        Sraw "    flick_svc_req_t _rq = { 0 };";
        (if has_int_key then Sexpr (Eassign (Efield (Eid "_rq", "proc"), Ecast (Tnamed "int", Eid "_op")))
         else Scomment "no numeric key on this transport");
      ]
    else []
  in
  [ Slabel label;
    Sblock
      (rq_local @ local_decls
      @ [ Scomment "unmarshal the request" ]
      @ decode_ins
      @ [ Scomment "invoke the work function" ]
      @ call_impl @ exception_replies
      @ (if st.Pres_c.os_op.Aoi.op_oneway then [ Sreturn None ]
         else
           tr.tr_begin_reply
           @ [ Scomment "marshal the reply" ]
           @ marshal_reply @ tr.tr_end_reply)
      @ [ Sreturn None ]);
  ]

let dispatch_name (pc : Pres_c.t) = pc.Pres_c.pc_name ^ "_dispatch"

let server_dispatch (tr : transport) (pc : Pres_c.t) : decl =
  let labelled =
    List.mapi (fun i st -> (Printf.sprintf "_op_%d" i, st)) pc.Pres_c.pc_stubs
  in
  let recv = tr.tr_server_recv pc in
  let has_int_key = match recv with `Int_key _ -> true | `String_key _ -> false in
  let demux =
    match recv with
    | `Int_key stmts -> stmts @ int_demux labelled
    | `String_key stmts -> stmts @ string_demux labelled
  in
  let cases =
    List.concat_map
      (fun (label, st) -> server_case tr pc st ~label ~has_int_key)
      labelled
  in
  Dfun
    ( Public,
      dispatch_name pc,
      Tvoid,
      [
        ("_msg", Tptr (Tnamed "flick_msg_t"));
        ("_out", Tptr (Tnamed "flick_buf_t"));
        ("_state", Tptr Tvoid);
      ],
      [
        Sraw "  flick_env_t _env_store;";
        Sdecl ("_ev", Tptr (Tnamed "flick_env_t"), Some (Eunop (Addr, Eid "_env_store")));
        Sdecl ("_buf", Tptr (Tnamed "flick_buf_t"), Some (Eid "_out"));
        Sexpr (call "flick_env_clear" [ Eid "_ev" ]);
        Sraw "  /* unmarshaled parameters live in the arena until we return */";
        Sexpr (call "flick_salloc_reset" []);
      ]
      @ demux @ cases )

(* ------------------------------------------------------------------ *)
(* Files                                                                *)
(* ------------------------------------------------------------------ *)

let banner tr pc what =
  Printf.sprintf
    "Generated by Flick (OCaml reproduction): %s of %s\n * presentation: %s, back end: %s (%s)"
    what pc.Pres_c.pc_name
    (match pc.Pres_c.pc_style with
    | Pres_c.Corba -> "corba-c"
    | Pres_c.Rpcgen -> "rpcgen-c"
    | Pres_c.Mig -> "mig-c"
    | Pres_c.Fluke -> "fluke-c")
    tr.tr_name tr.tr_description

let generate_header (tr : transport) (pc : Pres_c.t) : string
    =
  let decls =
    [ Dcomment (banner tr pc "header") ]
    @ pc.Pres_c.pc_decls
    @ [
        Dfun_proto
          ( Public,
            dispatch_name pc,
            Tvoid,
            [
              ("_msg", Tptr (Tnamed "flick_msg_t"));
              ("_out", Tptr (Tnamed "flick_buf_t"));
              ("_state", Tptr Tvoid);
            ] );
      ]
  in
  Cast_pp.guard (pc.Pres_c.pc_name ^ "_H") decls

let header_name (pc : Pres_c.t) = String.lowercase_ascii pc.Pres_c.pc_name ^ ".h"

(* marshal subroutines for the named (recursive) presentations *)
let marshal_subs (tr : transport) (pc : Pres_c.t) =
  List.map
    (fun (name, (idx, pres)) ->
      let plan =
        Plan_cache.plan ~enc:tr.tr_enc ~mint:pc.Pres_c.pc_mint
          ~named:pc.Pres_c.pc_named
          [
            Plan_compile.Rvalue
              (Mplan.Rparam { index = 0; name = "_v"; deref = true }, idx, pres);
          ]
      in
      (name, plan.Plan_compile.p_ops))
    pc.Pres_c.pc_named
  |> Cgen.marshal_sub_functions ~enc:tr.tr_enc

let generate_client (tr : transport) (pc : Pres_c.t) : string =
  Cgen.fresh_reset ();
  let decls =
    [
      Dcomment (banner tr pc "client stubs");
      Dinclude_local (header_name pc);
    ]
    @ marshal_subs tr pc
    @ Cgen.unmarshal_sub_functions ~enc:tr.tr_enc ~mint:pc.Pres_c.pc_mint
        ~named:pc.Pres_c.pc_named
    @ List.map (client_stub tr pc) pc.Pres_c.pc_stubs
  in
  Cast_pp.file decls

let generate_server (tr : transport) (pc : Pres_c.t) : string =
  Cgen.fresh_reset ();
  let decls =
    [
      Dcomment (banner tr pc "server skeleton");
      Dinclude_local (header_name pc);
    ]
    @ marshal_subs tr pc
    @ Cgen.unmarshal_sub_functions ~enc:tr.tr_enc ~mint:pc.Pres_c.pc_mint
        ~named:pc.Pres_c.pc_named
    @ [ server_dispatch tr pc ]
  in
  Cast_pp.file decls

let generate_files tr pc =
  let base = String.lowercase_ascii pc.Pres_c.pc_name in
  [
    (base ^ ".h", generate_header tr pc);
    (base ^ "_client.c", generate_client tr pc);
    (base ^ "_server.c", generate_server tr pc);
  ]
