(** The back-end base library (paper section 2.3).

    A back end turns a PRES_C presentation into C source implementing it
    over one message format and transport.  Almost everything — marshal
    code generation, stub and dispatch-function shapes, the
    demultiplexing switch — is shared; a concrete back end
    ({!Be_iiop}, {!Be_xdr}, {!Be_mach}, {!Be_fluke}) contributes only
    the encoding and the framing calls, which is the code-reuse
    structure of the paper's Table 1.

    Generated server dispatch functions demultiplex exactly as section
    3.3 describes: integer keys become a C [switch]; operation-name
    string keys are compared a machine word at a time through nested
    [switch] statements over 32-bit chunks of the name. *)

type transport = {
  tr_name : string;
  tr_enc : Encoding.t;
  tr_description : string;
  tr_begin_request : Pres_c.t -> Pres_c.op_stub -> Cast.stmt list;
      (** open the request framing; [_buf] and the handle are in scope *)
  tr_end_request : Cast.stmt list;
  tr_recv_reply : Cast.stmt list;  (** skip the reply framing in [_msg] *)
  tr_server_recv : Pres_c.t -> [ `Int_key of Cast.stmt list | `String_key of Cast.stmt list ];
      (** read the request framing; [`Int_key] sets [_op],
          [`String_key] fills [_key]/[_klen] *)
  tr_begin_reply : Cast.stmt list;
  tr_end_reply : Cast.stmt list;
}

val handle_expr : Pres_c.t -> Cast.expr
(** The client-side transport handle ([_obj] for CORBA-style
    presentations, [_clnt] for rpcgen-style). *)

val generate_header : transport -> Pres_c.t -> string
(** The [.h] file: presented types, stub prototypes, dispatch
    prototype. *)

val generate_client : transport -> Pres_c.t -> string
(** The client-side [.c] file: one stub per operation. *)

val generate_server : transport -> Pres_c.t -> string
(** The server-side [.c] file: the dispatch function, expecting the
    user-supplied work functions. *)

val generate_files : transport -> Pres_c.t -> (string * string) list
(** [(filename, contents)] for header, client and server, named after
    the presentation. *)
