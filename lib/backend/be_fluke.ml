open Cast

let msg_id (st : Pres_c.op_stub) =
  match st.Pres_c.os_request_case with
  | Mint.Cint n -> n
  | Mint.Cstring _ | Mint.Cbool _ | Mint.Cchar _ -> st.Pres_c.os_op.Aoi.op_code

let rekey (pc : Pres_c.t) =
  {
    pc with
    Pres_c.pc_stubs =
      List.map
        (fun st -> { st with Pres_c.os_request_case = Mint.Cint (msg_id st) })
        pc.Pres_c.pc_stubs;
  }

let transport =
  {
    Backend_base.tr_name = "fluke";
    tr_enc = Encoding.fluke;
    tr_description = "Fluke kernel IPC (register-window messages)";
    tr_begin_request =
      (fun _pc st ->
        [ Sexpr (call "flick_fluke_begin" [ Eid "_buf"; Eint (msg_id st) ]) ]);
    tr_end_request = [];
    tr_recv_reply = [ Sexpr (Ecall ("flick_fluke_recv", [ Eid "_msg" ])) ];
    tr_server_recv =
      (fun _pc ->
        `Int_key
          [ Sdecl ("_op", uint32_t, Some (call "flick_fluke_recv" [ Eid "_msg" ])) ]);
    tr_begin_reply = [ Sexpr (call "flick_fluke_begin" [ Eid "_out"; num 0 ]) ];
    tr_end_reply = [];
  }

let generate pc = Backend_base.generate_files transport (rekey pc)
