(** Marshal buffers: the runtime substrate Flick-generated stubs write
    into and read from.

    A writer is a scatter-gather message builder (paper section 3.1,
    "marshal buffer management").  Small writes land in pooled chunk
    storage with an explicit capacity-reservation step ({!ensure})
    separated from the raw store operations, exactly mirroring the
    split the paper's optimization relies on: optimized stubs call
    {!ensure} once per fixed-size message segment and then use the
    unchecked [set_*]/[advance] operations at static offsets, while
    rpcgen-style stubs call a checked [put_*] per datum.  Large
    payloads can be {e borrowed} by reference ({!put_borrow_string},
    {!put_borrow_bytes}): the message becomes an iovec-style list of
    segments and the payload bytes are never copied.  Flattening to
    contiguous bytes happens at most once per message, and only when a
    consumer actually asks for it ({!contents}, {!unsafe_contents},
    {!view}); length-only consumers use {!pos} and checksum-style
    consumers use {!iter_segments}, neither of which copies.

    Writers are reused across invocations ({!reset}) as Flick stubs
    reuse their dynamically allocated buffers, and can be pooled
    ({!acquire}/{!release}) so steady-state encode allocates nothing
    beyond the segment table.

    Multi-byte stores come in big- and little-endian variants; [set_*]
    writes at a cursor-relative offset without moving the cursor (chunk
    addressing: pointer-plus-constant-offset), [put_*] appends at the
    cursor with a bounds check and growth (the traditional stub shape).

    A {!reader} is a bounded view used by unmarshal code, with checked
    reads and a batched {!need} precheck for chunked decoding.  Readers
    decode transparently across segment boundaries: {!need} gathers a
    spanning datum into a contiguous window (BSD-mbuf "pullup") so the
    unchecked [get_*] reads stay valid.  Reads past the message raise
    {!Short_buffer} — truncated-message failure injection in the tests
    relies on this, including truncation that lands mid-segment.

    {2 Aliasing and reuse contracts}

    - {!unsafe_contents} and {!view} return internal storage, but that
      storage is {e detached} on the next {!reset}: a later
      [reset]+encode cycle on the same writer (or a pooled reuse) never
      mutates bytes previously handed out.  The returned bytes stay
      valid indefinitely.
    - A {!reader} obtained from a writer aliases the writer's live
      storage (that is what makes it copy-free): it stays valid only
      until the writer is next {e written to} — whether appending more
      data or a [reset]+encode reuse.  Decode fully (or copy) before
      reusing the writer.
    - {!put_borrow_bytes} borrows the caller's buffer by reference: the
      caller must not mutate it until the message has been consumed
      (transmitted, read, flattened) or the writer reset.  Borrowed
      bytes are never written to or recycled by this module.
    - {!iter_segments} passes internal storage to the callback; the
      slices are only valid during the iteration — copy anything that
      must outlive it.
    - {!view_bytes} returns a slice that aliases whatever backs the
      reader's current window: the source writer's live storage, a
      payload that was borrowed into the message, or a private pullup
      spill buffer.  A view into a writer-backed reader is therefore
      valid only until that writer is next written to (same rule as the
      reader itself) — {e unless} the reader is first pinned with
      {!pin_reader}, which marks the writer's storage exposed so the
      next [reset]+encode detaches it instead of overwriting or
      recycling it.  Decoders that hand out zero-copy views
      ([Value.Vbytes_view]/[Vstring_view]) pin the reader at decode
      time for exactly this reason; consumers that need the bytes to
      survive the original message's lifetime must still
      [Value.materialize] them. *)

exception Short_buffer

type t

val create : int -> t
val reset : t -> unit
(** Clear the writer for a new message.  Sealed chunks are recycled to
    the chunk pool unless the storage was exposed via
    {!unsafe_contents}/{!view}, in which case it is detached instead
    (see the aliasing contract above). *)

val pos : t -> int
(** Message length so far.  Length-only consumers (e.g. a simulated
    link) should use this rather than flattening. *)

val contents : t -> bytes
(** Copy of the bytes written so far (always a fresh buffer). *)

val unsafe_contents : t -> bytes
(** The message as contiguous bytes (valid up to {!pos}); not a copy
    when the message is a single segment, otherwise a cached one-time
    flattening.  Safe across a later [reset]+encode (see contract). *)

val view : t -> bytes * int
(** [view t] = [(unsafe_contents t, pos t)]: contiguous bytes plus the
    valid length, without the per-call copy of {!contents}. *)

val iter_segments : t -> (bytes -> int -> int -> unit) -> unit
(** [iter_segments t f] calls [f base off len] for each segment of the
    message in order, without flattening.  Slices are valid only during
    the iteration. *)

val segment_count : t -> int
(** Number of segments the message currently spans (1 for a fully
    contiguous message). *)

val ensure : t -> int -> unit
(** Guarantee capacity for [n] more contiguous bytes: grows the single
    chunk geometrically while the message is contiguous, otherwise
    seals the active region and continues in a fresh pooled chunk.
    The reservation survives interleaved borrows: unchecked stores
    pre-reserved by an [ensure] (e.g. a hoisted [Ensure_count]) stay in
    bounds even if a borrow seals the active chunk in between. *)

val advance : t -> int -> unit
(** Move the cursor forward over bytes already stored with [set_*]. *)

val align : t -> int -> unit
(** Pad the cursor with zero bytes to the given power-of-two alignment
    (message-relative); includes its own capacity check. *)

(** Unchecked stores at [pos t + off]; call {!ensure} first. *)

val set_u8 : t -> int -> int -> unit
val set_i16_be : t -> int -> int -> unit
val set_i16_le : t -> int -> int -> unit
val set_i32_be : t -> int -> int -> unit
val set_i32_le : t -> int -> int -> unit
val set_i64_be : t -> int -> int64 -> unit
val set_i64_le : t -> int -> int64 -> unit
val set_f32_be : t -> int -> float -> unit
val set_f32_le : t -> int -> float -> unit
val set_f64_be : t -> int -> float -> unit
val set_f64_le : t -> int -> float -> unit
val set_bytes : t -> int -> bytes -> int -> int -> unit
(** [set_bytes t off src srcoff len] — the memcpy path (counted in
    {!stats}). *)

val fill_zero : t -> int -> int -> unit
(** [fill_zero t off len] zeroes a reserved span (chunk padding). *)

val set_string : t -> int -> string -> int -> int -> unit

(** Checked appends: each performs its own {!ensure} — the per-datum
    shape of traditional stubs. *)

val put_u8 : t -> int -> unit
val put_i16 : t -> be:bool -> int -> unit
val put_i32 : t -> be:bool -> int -> unit
val put_i64 : t -> be:bool -> int64 -> unit
val put_f32 : t -> be:bool -> float -> unit
val put_f64 : t -> be:bool -> float -> unit

(** Zero-copy appends: splice [len] bytes of the caller's payload into
    the message by reference (no copy, no capacity needed).  See the
    aliasing contract for {!put_borrow_bytes}. *)

val put_borrow_string : t -> string -> int -> int -> unit
val put_borrow_bytes : t -> bytes -> int -> int -> unit

(** {2 Scatter-gather configuration}

    Stub engines consult these when compiling an encoder (the cached
    closure's behaviour is fully determined by its fingerprint, which
    includes both settings): a blit-shaped datum is borrowed only when
    scatter-gather is enabled and the datum is at least
    {!borrow_threshold} bytes (below that, the copy into pooled chunk
    storage is cheaper than carrying a segment).  The [--no-sg] bench
    flag flips {!set_sg_enabled} for ablation. *)

val sg_enabled : unit -> bool
val set_sg_enabled : bool -> unit
val borrow_threshold : unit -> int
val set_borrow_threshold : int -> unit
val borrow_eligible : int -> bool
(** [borrow_eligible len] — [sg_enabled () && len >= borrow_threshold ()]. *)

(** {2 Copy accounting} *)

type stats = {
  bytes_copied : int;  (** payload bytes memcpy'd (set_bytes/set_string,
                           plus whole-message copies by contents/flatten) *)
  bytes_borrowed : int;  (** payload bytes spliced by reference *)
  copies : int;
  borrows : int;
  flattens : int;  (** times a segmented message was flattened *)
  seals : int;
}

val stats : t -> stats
(** Cumulative counters since creation or {!reset_stats} ({!reset} does
    not clear them, so steady-state loops can be measured). *)

val reset_stats : t -> unit

(** {2 Writer pool} *)

val acquire : ?size:int -> unit -> t
(** Take a writer from the reuse pool (or create one); [?size] is a
    capacity hint.  The writer comes back reset. *)

val release : t -> unit
(** Reset and return a writer to the pool. *)

(** {2 Pool accounting}

    Checked-out object counts for the writer and reader pools:
    [*_outstanding] is acquires minus releases since process start, so a
    code path that takes a pooled object on every request must leave the
    outstanding counts exactly where it found them — the leak check the
    server fault-injection tests pin after every failure path.  Objects
    built with {!create}/{!reader_of_bytes} and never released are
    invisible here (they were never the pool's to reclaim). *)

type pool_stats = {
  writers_pooled : int;  (** writers currently resting in the pool *)
  writers_outstanding : int;  (** {!acquire} minus {!release} calls *)
  readers_pooled : int;
  readers_outstanding : int;  (** {!acquire_reader} minus {!release_reader} *)
  chunks_pooled : int;
}

val pool_stats : unit -> pool_stats

(** {2 Readers} *)

type reader

val reader_of_bytes : ?off:int -> ?len:int -> bytes -> reader
val reader : ?len:int -> t -> reader
(** Read back what was written, directly over the writer's segments (no
    flattening, no copy).  [?len] caps the readable prefix — used to
    inject truncation, including mid-segment.  Valid until the writer
    is written to again (see the aliasing contract). *)

val acquire_reader : ?len:int -> t -> reader
(** Pooled variant of {!reader}; pair with {!release_reader}. *)

val release_reader : reader -> unit

val rpos : reader -> int
(** Global (message-relative) read position. *)

val remaining : reader -> int
val need : reader -> int -> unit
(** Raise {!Short_buffer} unless [n] bytes remain — the batched check
    unmarshal chunks use.  Guarantees the next [n] bytes are contiguous
    for the unchecked [get_*] reads, gathering across a segment
    boundary when necessary. *)

val skip : reader -> int -> unit
val ralign : reader -> int -> unit

(** Unchecked reads at [rpos + off]; call {!need} first. *)

val get_u8 : reader -> int -> int
val get_i16_be : reader -> int -> int
val get_i16_le : reader -> int -> int
val get_i32_be : reader -> int -> int
val get_i32_le : reader -> int -> int
val get_i64_be : reader -> int -> int64
val get_i64_le : reader -> int -> int64
val get_f32_be : reader -> int -> float
val get_f32_le : reader -> int -> float
val get_f64_be : reader -> int -> float
val get_f64_le : reader -> int -> float
val get_bytes : reader -> int -> int -> bytes
val get_string : reader -> int -> int -> string

(** Checked sequential reads (advance the cursor); the bulk reads
    gather across segment boundaries. *)

val read_u8 : reader -> int
val read_i16 : reader -> be:bool -> int
val read_i32 : reader -> be:bool -> int
val read_i64 : reader -> be:bool -> int64
val read_f32 : reader -> be:bool -> float
val read_f64 : reader -> be:bool -> float
val read_bytes : reader -> int -> bytes
val read_string : reader -> int -> string

(** {2 Zero-copy reader views} *)

val view_bytes : reader -> int -> (bytes * int * int) option
(** [view_bytes r len] consumes the next [len] bytes without copying
    when they lie whole inside one segment, returning [(base, off, len)]
    into that segment's backing storage and advancing the cursor.
    Returns [None] (cursor unmoved) when the span crosses a segment
    boundary — fall back to {!read_bytes}.  Raises {!Short_buffer} when
    fewer than [len] bytes remain.  See the aliasing contract above:
    pin the reader ({!pin_reader}) if the view must survive reuse of
    the source writer. *)

val pin_reader : reader -> unit
(** Mark the storage behind a writer-backed reader as exposed, so the
    writer's next [reset] detaches it rather than recycling or
    overwriting it — the same detachment {!unsafe_contents} gets.
    After pinning, views and the reader itself stay valid across later
    [reset]+encode cycles on that writer.  No-op for
    {!reader_of_bytes} readers (the caller owns that storage). *)

(** {2 Reader → writer forwarding}

    The primitives behind fused forward stubs (gateway relaying): bytes
    move straight from a receive buffer to a transmit buffer without an
    intermediate value. *)

val copy_at : reader -> int -> t -> int -> int -> unit
(** [copy_at r soff w doff len] blits [len] bytes at [rpos r + soff]
    into the writer at [pos w + doff].  Unchecked on both sides: call
    {!need} covering the source span and {!ensure} covering the
    destination span first (a fused run does one of each for the whole
    run).  Counted as a writer copy in {!stats}. *)

val transfer : ?borrow:bool -> reader -> t -> int -> int
(** [transfer ?borrow r w len] moves the next [len] bytes from the read
    cursor to the write cursor, advancing both.  With [~borrow:true],
    when the span is {!borrow_eligible} and lies whole inside one
    segment, it is spliced by reference ({!put_borrow_bytes}) with the
    reader pinned — zero bytes touched; otherwise the span is copied
    segment by segment (no intermediate allocation).  Returns the
    number of bytes borrowed (0 when copied).  Raises {!Short_buffer}
    when fewer than [len] bytes remain, cursor unmoved. *)

(** {2 Reader-side copy accounting}

    Module-wide counters (readers are pooled and short-lived): bulk
    payload bytes copied out of messages ({!read_bytes},
    {!read_string}) versus handed out by reference ({!view_bytes}). *)

type reader_stats = {
  rbytes_copied : int;
  rcopies : int;
  rbytes_viewed : int;
  rviews : int;
}

val reader_stats : unit -> reader_stats
val reset_reader_stats : unit -> unit
