(** Marshal buffers: the runtime substrate Flick-generated stubs write
    into and read from.

    A writer is a growable byte buffer with an explicit
    capacity-reservation step ({!ensure}) separated from the raw store
    operations, exactly mirroring the split the paper's optimization
    relies on (section 3.1): optimized stubs call {!ensure} once per
    fixed-size message segment and then use the unchecked
    [set_*]/[advance] operations at static offsets, while rpcgen-style
    stubs call a checked [put_*] per datum.

    Writers are reused across invocations ({!reset}) as Flick stubs
    reuse their dynamically allocated buffers.

    Multi-byte stores come in big- and little-endian variants; [set_*]
    writes at an absolute offset without moving the cursor (chunk
    addressing: pointer-plus-constant-offset), [put_*] appends at the
    cursor with a bounds check and growth (the traditional stub shape).

    A {!reader} is a bounded view used by unmarshal code, with checked
    reads and a batched {!need} precheck for chunked decoding.  Reads
    past the message raise {!Short_buffer} — truncated-message failure
    injection in the tests relies on this. *)

exception Short_buffer

type t

val create : int -> t
val reset : t -> unit
val pos : t -> int
val contents : t -> bytes
(** Copy of the bytes written so far. *)

val unsafe_contents : t -> bytes
(** The underlying storage (valid up to {!pos}); not a copy. *)

val ensure : t -> int -> unit
(** Guarantee capacity for [n] more bytes, growing geometrically. *)

val advance : t -> int -> unit
(** Move the cursor forward over bytes already stored with [set_*]. *)

val align : t -> int -> unit
(** Pad the cursor with zero bytes to the given power-of-two alignment
    (message-relative); includes its own capacity check. *)

(** Unchecked stores at [pos t + off]; call {!ensure} first. *)

val set_u8 : t -> int -> int -> unit
val set_i16_be : t -> int -> int -> unit
val set_i16_le : t -> int -> int -> unit
val set_i32_be : t -> int -> int -> unit
val set_i32_le : t -> int -> int -> unit
val set_i64_be : t -> int -> int64 -> unit
val set_i64_le : t -> int -> int64 -> unit
val set_f32_be : t -> int -> float -> unit
val set_f32_le : t -> int -> float -> unit
val set_f64_be : t -> int -> float -> unit
val set_f64_le : t -> int -> float -> unit
val set_bytes : t -> int -> bytes -> int -> int -> unit
(** [set_bytes t off src srcoff len] — the memcpy path. *)

val fill_zero : t -> int -> int -> unit
(** [fill_zero t off len] zeroes a reserved span (chunk padding). *)

val set_string : t -> int -> string -> int -> int -> unit

(** Checked appends: each performs its own {!ensure} — the per-datum
    shape of traditional stubs. *)

val put_u8 : t -> int -> unit
val put_i16 : t -> be:bool -> int -> unit
val put_i32 : t -> be:bool -> int -> unit
val put_i64 : t -> be:bool -> int64 -> unit
val put_f32 : t -> be:bool -> float -> unit
val put_f64 : t -> be:bool -> float -> unit

(** Readers *)

type reader

val reader_of_bytes : ?off:int -> ?len:int -> bytes -> reader
val reader : t -> reader
(** Read back what was written (no copy). *)

val rpos : reader -> int
val remaining : reader -> int
val need : reader -> int -> unit
(** Raise {!Short_buffer} unless [n] bytes remain — the batched check
    unmarshal chunks use. *)

val skip : reader -> int -> unit
val ralign : reader -> int -> unit

(** Unchecked reads at [rpos + off]; call {!need} first. *)

val get_u8 : reader -> int -> int
val get_i16_be : reader -> int -> int
val get_i16_le : reader -> int -> int
val get_i32_be : reader -> int -> int
val get_i32_le : reader -> int -> int
val get_i64_be : reader -> int -> int64
val get_i64_le : reader -> int -> int64
val get_f32_be : reader -> int -> float
val get_f32_le : reader -> int -> float
val get_f64_be : reader -> int -> float
val get_f64_le : reader -> int -> float
val get_bytes : reader -> int -> int -> bytes
val get_string : reader -> int -> int -> string

(** Checked sequential reads (advance the cursor). *)

val read_u8 : reader -> int
val read_i16 : reader -> be:bool -> int
val read_i32 : reader -> be:bool -> int
val read_i64 : reader -> be:bool -> int64
val read_f32 : reader -> be:bool -> float
val read_f64 : reader -> be:bool -> float
val read_bytes : reader -> int -> bytes
val read_string : reader -> int -> string
