exception Short_buffer

external unsafe_set16 : bytes -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_set32 : bytes -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_set64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"
external unsafe_get16 : bytes -> int -> int = "%caml_bytes_get16u"
external unsafe_get32 : bytes -> int -> int32 = "%caml_bytes_get32u"
external unsafe_get64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external bswap16 : int -> int = "%bswap16"
external bswap32 : int32 -> int32 = "%bswap_int32"
external bswap64 : int64 -> int64 = "%bswap_int64"

(* The primitives store in native order; convert when the requested
   endianness differs from the machine's. *)
let native_big = Sys.big_endian

type t = { mutable buf : bytes; mutable pos : int }

let create n = { buf = Bytes.create (max n 16); pos = 0 }
let reset t = t.pos <- 0
let pos t = t.pos
let contents t = Bytes.sub t.buf 0 t.pos
let unsafe_contents t = t.buf

let ensure t n =
  let want = t.pos + n in
  if want > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf * 2) in
    while want > !cap do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit t.buf 0 bigger 0 t.pos;
    t.buf <- bigger
  end

let advance t n = t.pos <- t.pos + n

let align t a =
  let rem = t.pos land (a - 1) in
  if rem <> 0 then begin
    let pad = a - rem in
    ensure t pad;
    Bytes.fill t.buf t.pos pad '\000';
    t.pos <- t.pos + pad
  end

(* -- unchecked stores ---------------------------------------------- *)

let set_u8 t off v = Bytes.unsafe_set t.buf (t.pos + off) (Char.unsafe_chr (v land 0xff))

let set_i16_be t off v =
  unsafe_set16 t.buf (t.pos + off) (if native_big then v else bswap16 v)

let set_i16_le t off v =
  unsafe_set16 t.buf (t.pos + off) (if native_big then bswap16 v else v)

let set_i32_be t off v =
  let v = Int32.of_int v in
  unsafe_set32 t.buf (t.pos + off) (if native_big then v else bswap32 v)

let set_i32_le t off v =
  let v = Int32.of_int v in
  unsafe_set32 t.buf (t.pos + off) (if native_big then bswap32 v else v)

let set_i64_be t off v =
  unsafe_set64 t.buf (t.pos + off) (if native_big then v else bswap64 v)

let set_i64_le t off v =
  unsafe_set64 t.buf (t.pos + off) (if native_big then bswap64 v else v)

let set_f32_be t off v =
  let bits = Int32.bits_of_float v in
  unsafe_set32 t.buf (t.pos + off) (if native_big then bits else bswap32 bits)

let set_f32_le t off v =
  let bits = Int32.bits_of_float v in
  unsafe_set32 t.buf (t.pos + off) (if native_big then bswap32 bits else bits)

let set_f64_be t off v =
  let bits = Int64.bits_of_float v in
  unsafe_set64 t.buf (t.pos + off) (if native_big then bits else bswap64 bits)

let set_f64_le t off v =
  let bits = Int64.bits_of_float v in
  unsafe_set64 t.buf (t.pos + off) (if native_big then bswap64 bits else bits)

let set_bytes t off src srcoff len = Bytes.blit src srcoff t.buf (t.pos + off) len
let fill_zero t off len = Bytes.fill t.buf (t.pos + off) len '\000'
let set_string t off src srcoff len = Bytes.blit_string src srcoff t.buf (t.pos + off) len

(* -- checked appends ------------------------------------------------ *)

let put_u8 t v =
  ensure t 1;
  set_u8 t 0 v;
  t.pos <- t.pos + 1

let put_i16 t ~be v =
  ensure t 2;
  if be then set_i16_be t 0 v else set_i16_le t 0 v;
  t.pos <- t.pos + 2

let put_i32 t ~be v =
  ensure t 4;
  if be then set_i32_be t 0 v else set_i32_le t 0 v;
  t.pos <- t.pos + 4

let put_i64 t ~be v =
  ensure t 8;
  if be then set_i64_be t 0 v else set_i64_le t 0 v;
  t.pos <- t.pos + 8

let put_f32 t ~be v =
  ensure t 4;
  if be then set_f32_be t 0 v else set_f32_le t 0 v;
  t.pos <- t.pos + 4

let put_f64 t ~be v =
  ensure t 8;
  if be then set_f64_be t 0 v else set_f64_le t 0 v;
  t.pos <- t.pos + 8

(* -- readers --------------------------------------------------------- *)

type reader = { rbuf : bytes; mutable rpos : int; rend : int }

let reader_of_bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Mbuf.reader_of_bytes";
  { rbuf = b; rpos = off; rend = off + len }

let reader t = { rbuf = t.buf; rpos = 0; rend = t.pos }
let rpos r = r.rpos
let remaining r = r.rend - r.rpos
let need r n = if r.rpos + n > r.rend then raise Short_buffer
let skip r n =
  need r n;
  r.rpos <- r.rpos + n

let ralign r a =
  let rem = r.rpos land (a - 1) in
  if rem <> 0 then skip r (a - rem)

let get_u8 r off = Char.code (Bytes.unsafe_get r.rbuf (r.rpos + off))

let get_i16_be r off =
  let v = unsafe_get16 r.rbuf (r.rpos + off) in
  if native_big then v else bswap16 v

let get_i16_le r off =
  let v = unsafe_get16 r.rbuf (r.rpos + off) in
  if native_big then bswap16 v else v

let get_i32_be r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.to_int (if native_big then v else bswap32 v)

let get_i32_le r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.to_int (if native_big then bswap32 v else v)

let get_i64_be r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  if native_big then v else bswap64 v

let get_i64_le r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  if native_big then bswap64 v else v

let get_f32_be r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.float_of_bits (if native_big then v else bswap32 v)

let get_f32_le r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.float_of_bits (if native_big then bswap32 v else v)

let get_f64_be r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  Int64.float_of_bits (if native_big then v else bswap64 v)

let get_f64_le r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  Int64.float_of_bits (if native_big then bswap64 v else v)

let get_bytes r off len = Bytes.sub r.rbuf (r.rpos + off) len
let get_string r off len = Bytes.sub_string r.rbuf (r.rpos + off) len

let read_u8 r =
  need r 1;
  let v = get_u8 r 0 in
  r.rpos <- r.rpos + 1;
  v

let read_i16 r ~be =
  need r 2;
  let v = if be then get_i16_be r 0 else get_i16_le r 0 in
  r.rpos <- r.rpos + 2;
  v

let read_i32 r ~be =
  need r 4;
  let v = if be then get_i32_be r 0 else get_i32_le r 0 in
  r.rpos <- r.rpos + 4;
  v

let read_i64 r ~be =
  need r 8;
  let v = if be then get_i64_be r 0 else get_i64_le r 0 in
  r.rpos <- r.rpos + 8;
  v

let read_f32 r ~be =
  need r 4;
  let v = if be then get_f32_be r 0 else get_f32_le r 0 in
  r.rpos <- r.rpos + 4;
  v

let read_f64 r ~be =
  need r 8;
  let v = if be then get_f64_be r 0 else get_f64_le r 0 in
  r.rpos <- r.rpos + 8;
  v

let read_bytes r len =
  need r len;
  let v = get_bytes r 0 len in
  r.rpos <- r.rpos + len;
  v

let read_string r len =
  need r len;
  let v = get_string r 0 len in
  r.rpos <- r.rpos + len;
  v
