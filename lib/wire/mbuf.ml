exception Short_buffer

external unsafe_set16 : bytes -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_set32 : bytes -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_set64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"
external unsafe_get16 : bytes -> int -> int = "%caml_bytes_get16u"
external unsafe_get32 : bytes -> int -> int32 = "%caml_bytes_get32u"
external unsafe_get64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external bswap16 : int -> int = "%bswap16"
external bswap32 : int32 -> int32 = "%bswap_int32"
external bswap64 : int64 -> int64 = "%bswap_int64"

(* The primitives store in native order; convert when the requested
   endianness differs from the machine's. *)
let native_big = Sys.big_endian

(* -- scatter-gather configuration ----------------------------------- *)

let sg_on = ref true
let sg_thresh = ref 512
let sg_enabled () = !sg_on
let set_sg_enabled b = sg_on := b
let borrow_threshold () = !sg_thresh

let set_borrow_threshold n =
  if n < 1 then invalid_arg "Mbuf.set_borrow_threshold";
  sg_thresh := n

let borrow_eligible len = !sg_on && len >= !sg_thresh

(* -- module-wide accounting ----------------------------------------- *)

(* Writer stats are per-writer (see [stats]); these mirrors accumulate
   the same events across every writer in the process so the metrics
   registry can report the wire layer as a whole.  Plain refs: the
   per-event cost is one integer add on paths that already do a blit. *)
let g_copied = ref 0
let g_copies = ref 0
let g_borrowed = ref 0
let g_borrows = ref 0
let g_flattens = ref 0
let g_seals = ref 0

(* Pool occupancy high-water marks, maxed at each release. *)
let chunk_pool_hw = ref 0
let writer_pool_hw = ref 0
let reader_pool_hw = ref 0

(* -- pooled chunk storage ------------------------------------------- *)

let chunk_size = 8192
let pool_max = 32
let chunk_pool : bytes list ref = ref []
let chunk_pool_len = ref 0

let chunk_get n =
  let n = if n < chunk_size then chunk_size else n in
  match !chunk_pool with
  | b :: rest when Bytes.length b >= n ->
      chunk_pool := rest;
      decr chunk_pool_len;
      b
  | _ -> Bytes.create n

let chunk_put b =
  if Bytes.length b >= chunk_size && !chunk_pool_len < pool_max then begin
    chunk_pool := b :: !chunk_pool;
    incr chunk_pool_len;
    if !chunk_pool_len > !chunk_pool_hw then chunk_pool_hw := !chunk_pool_len
  end

(* -- writer ---------------------------------------------------------- *)

(* A sealed segment of the message.  [s_owned] segments live in chunk
   storage this module allocated (recyclable on [reset]); borrowed
   segments alias caller-owned payload bytes and are never written to
   or recycled. *)
type seg = { s_base : bytes; s_off : int; s_len : int; s_owned : bool }

type t = {
  mutable buf : bytes;  (* active chunk: unsealed tail of the message *)
  mutable w_off : int;  (* where the active region starts inside [buf] *)
  mutable base : int;  (* global position of the active region's start *)
  mutable pos : int;  (* global cursor = message length so far *)
  mutable promised : int;  (* high-water [ensure] mark (global), so
                              unchecked stores stay in bounds even when a
                              borrow seals the chunk mid-reservation *)
  mutable segs_rev : seg list;  (* sealed segments, most recent first *)
  mutable nsegs : int;
  mutable exposed : bool;  (* internal storage aliased by a caller
                              ([unsafe_contents]/[view]); [reset] must
                              detach rather than recycle *)
  mutable flat : bytes option;  (* cached flattening; at most one per
                                   message generation *)
  mutable st_copied : int;
  mutable st_borrowed : int;
  mutable st_copies : int;
  mutable st_borrows : int;
  mutable st_flattens : int;
  mutable st_seals : int;
}

let create n =
  {
    buf = Bytes.create (max n 16);
    w_off = 0;
    base = 0;
    pos = 0;
    promised = 0;
    segs_rev = [];
    nsegs = 0;
    exposed = false;
    flat = None;
    st_copied = 0;
    st_borrowed = 0;
    st_copies = 0;
    st_borrows = 0;
    st_flattens = 0;
    st_seals = 0;
  }

let reset t =
  (if t.exposed then
     (* A caller still holds the storage ([unsafe_contents], [view], a
        live reader): abandon it to the GC and start on fresh pooled
        storage so the alias keeps seeing the old message. *)
     t.buf <- chunk_get chunk_size
   else begin
     (* Recycle sealed own chunks (one chunk may back several segments;
        recycle each physical chunk once, and never the active one). *)
     let rec recycle seen = function
       | [] -> ()
       | s :: rest ->
           if s.s_owned && s.s_base != t.buf && not (List.memq s.s_base seen)
           then begin
             chunk_put s.s_base;
             recycle (s.s_base :: seen) rest
           end
           else recycle seen rest
     in
     recycle [] t.segs_rev
   end);
  t.w_off <- 0;
  t.base <- 0;
  t.pos <- 0;
  t.promised <- 0;
  t.segs_rev <- [];
  t.nsegs <- 0;
  t.exposed <- false;
  t.flat <- None

let pos t = t.pos

(* Physical address in the active chunk of global position [pos + off]. *)
let apos t off = t.w_off + (t.pos - t.base) + off

(* Seal the active region into a segment; writing continues in the same
   chunk right after it. *)
let seal t =
  let len = t.pos - t.base in
  if len > 0 then begin
    t.segs_rev <-
      { s_base = t.buf; s_off = t.w_off; s_len = len; s_owned = true }
      :: t.segs_rev;
    t.nsegs <- t.nsegs + 1;
    t.st_seals <- t.st_seals + 1;
    incr g_seals;
    t.w_off <- t.w_off + len;
    t.base <- t.pos
  end

let ensure t n =
  t.flat <- None;
  if t.pos + n > t.promised then t.promised <- t.pos + n;
  if apos t n > Bytes.length t.buf then
    if t.segs_rev = [] then begin
      (* Single-segment message: grow geometrically in place (the
         contiguous PR-1 behaviour; also keeps any exposed alias valid,
         since the old storage is left untouched). *)
      let want = t.pos + n in
      let cap = ref (max 16 (Bytes.length t.buf * 2)) in
      while want > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.pos;
      t.buf <- bigger
    end
    else begin
      (* Segmented message: seal the active region and continue in a
         fresh pooled chunk sized for everything still promised. *)
      seal t;
      t.buf <- chunk_get (t.promised - t.base);
      t.w_off <- 0
    end

let advance t n = t.pos <- t.pos + n

let align t a =
  let rem = t.pos land (a - 1) in
  if rem <> 0 then begin
    let pad = a - rem in
    ensure t pad;
    Bytes.fill t.buf (apos t 0) pad '\000';
    t.pos <- t.pos + pad
  end

(* -- unchecked stores ---------------------------------------------- *)

let set_u8 t off v =
  Bytes.unsafe_set t.buf (apos t off) (Char.unsafe_chr (v land 0xff))

let set_i16_be t off v =
  unsafe_set16 t.buf (apos t off) (if native_big then v else bswap16 v)

let set_i16_le t off v =
  unsafe_set16 t.buf (apos t off) (if native_big then bswap16 v else v)

let set_i32_be t off v =
  let v = Int32.of_int v in
  unsafe_set32 t.buf (apos t off) (if native_big then v else bswap32 v)

let set_i32_le t off v =
  let v = Int32.of_int v in
  unsafe_set32 t.buf (apos t off) (if native_big then bswap32 v else v)

let set_i64_be t off v =
  unsafe_set64 t.buf (apos t off) (if native_big then v else bswap64 v)

let set_i64_le t off v =
  unsafe_set64 t.buf (apos t off) (if native_big then bswap64 v else v)

let set_f32_be t off v =
  let bits = Int32.bits_of_float v in
  unsafe_set32 t.buf (apos t off) (if native_big then bits else bswap32 bits)

let set_f32_le t off v =
  let bits = Int32.bits_of_float v in
  unsafe_set32 t.buf (apos t off) (if native_big then bswap32 bits else bits)

let set_f64_be t off v =
  let bits = Int64.bits_of_float v in
  unsafe_set64 t.buf (apos t off) (if native_big then bits else bswap64 bits)

let set_f64_le t off v =
  let bits = Int64.bits_of_float v in
  unsafe_set64 t.buf (apos t off) (if native_big then bswap64 bits else bits)

let set_bytes t off src srcoff len =
  Bytes.blit src srcoff t.buf (apos t off) len;
  t.st_copied <- t.st_copied + len;
  t.st_copies <- t.st_copies + 1;
  g_copied := !g_copied + len;
  incr g_copies

let fill_zero t off len = Bytes.fill t.buf (apos t off) len '\000'

let set_string t off src srcoff len =
  Bytes.blit_string src srcoff t.buf (apos t off) len;
  t.st_copied <- t.st_copied + len;
  t.st_copies <- t.st_copies + 1;
  g_copied := !g_copied + len;
  incr g_copies

(* -- checked appends ------------------------------------------------ *)

let put_u8 t v =
  ensure t 1;
  set_u8 t 0 v;
  t.pos <- t.pos + 1

let put_i16 t ~be v =
  ensure t 2;
  if be then set_i16_be t 0 v else set_i16_le t 0 v;
  t.pos <- t.pos + 2

let put_i32 t ~be v =
  ensure t 4;
  if be then set_i32_be t 0 v else set_i32_le t 0 v;
  t.pos <- t.pos + 4

let put_i64 t ~be v =
  ensure t 8;
  if be then set_i64_be t 0 v else set_i64_le t 0 v;
  t.pos <- t.pos + 8

let put_f32 t ~be v =
  ensure t 4;
  if be then set_f32_be t 0 v else set_f32_le t 0 v;
  t.pos <- t.pos + 4

let put_f64 t ~be v =
  ensure t 8;
  if be then set_f64_be t 0 v else set_f64_le t 0 v;
  t.pos <- t.pos + 8

(* -- borrowed (zero-copy) segments ---------------------------------- *)

let put_borrow_string t s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Mbuf.put_borrow_string";
  if len > 0 then begin
    t.flat <- None;
    seal t;
    t.segs_rev <-
      { s_base = Bytes.unsafe_of_string s; s_off = off; s_len = len;
        s_owned = false }
      :: t.segs_rev;
    t.nsegs <- t.nsegs + 1;
    t.pos <- t.pos + len;
    t.base <- t.pos;
    t.st_borrowed <- t.st_borrowed + len;
    t.st_borrows <- t.st_borrows + 1;
    g_borrowed := !g_borrowed + len;
    incr g_borrows
  end

let put_borrow_bytes t b off len =
  put_borrow_string t (Bytes.unsafe_to_string b) off len

(* -- whole-message access ------------------------------------------- *)

(* Copy the full message into [dst.(0 .. pos)]. *)
let blit_all t dst =
  let off = ref 0 in
  List.iter
    (fun s ->
      Bytes.blit s.s_base s.s_off dst !off s.s_len;
      off := !off + s.s_len)
    (List.rev t.segs_rev);
  let alen = t.pos - t.base in
  if alen > 0 then Bytes.blit t.buf t.w_off dst !off alen

let flatten t =
  if t.segs_rev = [] then t.buf (* w_off = 0: buf.(0 .. pos) is the message *)
  else
    match t.flat with
    | Some b -> b
    | None ->
        let out = Bytes.create t.pos in
        blit_all t out;
        t.st_flattens <- t.st_flattens + 1;
        t.st_copied <- t.st_copied + t.pos;
        incr g_flattens;
        g_copied := !g_copied + t.pos;
        t.flat <- Some out;
        out

let contents t =
  let out = Bytes.create t.pos in
  blit_all t out;
  t.st_copied <- t.st_copied + t.pos;
  t.st_copies <- t.st_copies + 1;
  g_copied := !g_copied + t.pos;
  incr g_copies;
  out

let unsafe_contents t =
  t.exposed <- true;
  flatten t

let view t =
  t.exposed <- true;
  (flatten t, t.pos)

let iter_segments t f =
  List.iter (fun s -> f s.s_base s.s_off s.s_len) (List.rev t.segs_rev);
  let alen = t.pos - t.base in
  if alen > 0 then f t.buf t.w_off alen

let segment_count t = t.nsegs + (if t.pos > t.base then 1 else 0)

(* -- stats ----------------------------------------------------------- *)

type stats = {
  bytes_copied : int;
  bytes_borrowed : int;
  copies : int;
  borrows : int;
  flattens : int;
  seals : int;
}

let stats t =
  {
    bytes_copied = t.st_copied;
    bytes_borrowed = t.st_borrowed;
    copies = t.st_copies;
    borrows = t.st_borrows;
    flattens = t.st_flattens;
    seals = t.st_seals;
  }

let reset_stats t =
  t.st_copied <- 0;
  t.st_borrowed <- 0;
  t.st_copies <- 0;
  t.st_borrows <- 0;
  t.st_flattens <- 0;
  t.st_seals <- 0

(* -- writer pool ----------------------------------------------------- *)

let writer_pool : t list ref = ref []
let writer_pool_len = ref 0

(* Acquire/release counters for both pools: the difference is the
   number of pooled objects currently checked out, which leak checks
   (the server fault-injection tests) pin back to baseline after every
   request, reply, and failure path. *)
let writer_acquires = ref 0
let writer_releases = ref 0
let reader_acquires = ref 0
let reader_releases = ref 0

let acquire ?size () =
  incr writer_acquires;
  let w =
    match !writer_pool with
    | w :: rest ->
        writer_pool := rest;
        decr writer_pool_len;
        w
    | [] -> create chunk_size
  in
  (match size with
  | Some n when n > 0 ->
      ensure w n;
      w.promised <- 0
  | _ -> ());
  w

let release w =
  incr writer_releases;
  reset w;
  if !writer_pool_len < pool_max then begin
    writer_pool := w :: !writer_pool;
    incr writer_pool_len;
    if !writer_pool_len > !writer_pool_hw then
      writer_pool_hw := !writer_pool_len
  end

(* -- readers --------------------------------------------------------- *)

type reader = {
  mutable rbuf : bytes;  (* current window *)
  mutable rpos : int;  (* cursor inside [rbuf] *)
  mutable rend : int;  (* window end inside [rbuf] *)
  mutable rbase : int;  (* global position = rbase + rpos *)
  mutable rmore : (bytes * int * int) list;  (* segments after the window *)
  mutable rrest : int;  (* total bytes in [rmore] *)
  mutable rsrc : t option;  (* the writer whose storage the windows alias
                               (None for reader_of_bytes); lets
                               [pin_reader] detach that storage *)
}

(* Reader-side copy accounting, module-wide (readers are pooled and
   short-lived, so per-reader counters would be awkward to collect). *)
let rd_copied = ref 0
let rd_copies = ref 0
let rd_viewed = ref 0
let rd_views = ref 0

type reader_stats = {
  rbytes_copied : int;
  rcopies : int;
  rbytes_viewed : int;
  rviews : int;
}

let reader_stats () =
  {
    rbytes_copied = !rd_copied;
    rcopies = !rd_copies;
    rbytes_viewed = !rd_viewed;
    rviews = !rd_views;
  }

let reset_reader_stats () =
  rd_copied := 0;
  rd_copies := 0;
  rd_viewed := 0;
  rd_views := 0

let reader_of_bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Mbuf.reader_of_bytes";
  {
    rbuf = b;
    rpos = off;
    rend = off + len;
    rbase = 0;
    rmore = [];
    rrest = 0;
    rsrc = None;
  }

let fill_reader r fwd total =
  match fwd with
  | [] ->
      r.rbuf <- Bytes.empty;
      r.rpos <- 0;
      r.rend <- 0;
      r.rbase <- 0;
      r.rmore <- [];
      r.rrest <- 0
  | (b, off, len) :: rest ->
      r.rbuf <- b;
      r.rpos <- off;
      r.rend <- off + len;
      r.rbase <- -off;
      r.rmore <- rest;
      r.rrest <- total - len

(* Forward segment list of the first [total] bytes of [t]'s message. *)
let segs_forward t total =
  let rec take left = function
    | [] -> []
    | (b, off, slen) :: rest ->
        if left <= 0 then []
        else if slen >= left then [ (b, off, left) ]
        else (b, off, slen) :: take (left - slen) rest
  in
  let active =
    let alen = t.pos - t.base in
    if alen > 0 then [ (t.buf, t.w_off, alen) ] else []
  in
  take total
    (List.rev_map (fun s -> (s.s_base, s.s_off, s.s_len)) t.segs_rev @ active)

let init_reader r ?len t =
  let total =
    match len with
    | None -> t.pos
    | Some l -> if l < 0 || l > t.pos then invalid_arg "Mbuf.reader" else l
  in
  fill_reader r (segs_forward t total) total;
  r.rsrc <- Some t

let reader ?len t =
  let r =
    {
      rbuf = Bytes.empty;
      rpos = 0;
      rend = 0;
      rbase = 0;
      rmore = [];
      rrest = 0;
      rsrc = None;
    }
  in
  init_reader r ?len t;
  r

let pin_reader r =
  match r.rsrc with
  | Some t -> t.exposed <- true
  | None -> () (* reader_of_bytes: the caller owns the storage already *)

let rpos r = r.rbase + r.rpos
let remaining r = r.rend - r.rpos + r.rrest

(* Step into the next segment; precondition: cursor at window end. *)
let advance_seg r =
  match r.rmore with
  | (b, off, len) :: rest ->
      let g = r.rbase + r.rpos in
      r.rbuf <- b;
      r.rpos <- off;
      r.rend <- off + len;
      r.rbase <- g - off;
      r.rmore <- rest;
      r.rrest <- r.rrest - len
  | [] -> assert false

(* Gather [n] bytes spanning a segment boundary into a contiguous spill
   window so the unchecked [get_*] reads stay valid (BSD-mbuf pullup).
   Precondition: [remaining r >= n] and the current window is short. *)
let pullup r n =
  let g = r.rbase + r.rpos in
  let spill = Bytes.create n in
  let avail = r.rend - r.rpos in
  Bytes.blit r.rbuf r.rpos spill 0 avail;
  let filled = ref avail in
  while !filled < n do
    match r.rmore with
    | [] -> assert false
    | (b, off, len) :: rest ->
        let take = min len (n - !filled) in
        Bytes.blit b off spill !filled take;
        r.rrest <- r.rrest - take;
        r.rmore <- (if take < len then (b, off + take, len - take) :: rest else rest);
        filled := !filled + take
  done;
  r.rbuf <- spill;
  r.rpos <- 0;
  r.rend <- n;
  r.rbase <- g

let need r n =
  if r.rpos + n > r.rend then begin
    if r.rend - r.rpos + r.rrest < n then raise Short_buffer;
    let rec go () =
      if r.rpos + n > r.rend then
        if r.rpos = r.rend && r.rmore <> [] then begin
          advance_seg r;
          go ()
        end
        else pullup r n
    in
    go ()
  end

let skip r n =
  if n <= r.rend - r.rpos then r.rpos <- r.rpos + n
  else begin
    if remaining r < n then raise Short_buffer;
    let left = ref (n - (r.rend - r.rpos)) in
    r.rpos <- r.rend;
    while !left > 0 do
      advance_seg r;
      let take = min (r.rend - r.rpos) !left in
      r.rpos <- r.rpos + take;
      left := !left - take
    done
  end

let ralign r a =
  let rem = (r.rbase + r.rpos) land (a - 1) in
  if rem <> 0 then skip r (a - rem)

let get_u8 r off = Char.code (Bytes.unsafe_get r.rbuf (r.rpos + off))

let get_i16_be r off =
  let v = unsafe_get16 r.rbuf (r.rpos + off) in
  if native_big then v else bswap16 v

let get_i16_le r off =
  let v = unsafe_get16 r.rbuf (r.rpos + off) in
  if native_big then bswap16 v else v

let get_i32_be r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.to_int (if native_big then v else bswap32 v)

let get_i32_le r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.to_int (if native_big then bswap32 v else v)

let get_i64_be r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  if native_big then v else bswap64 v

let get_i64_le r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  if native_big then bswap64 v else v

let get_f32_be r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.float_of_bits (if native_big then v else bswap32 v)

let get_f32_le r off =
  let v = unsafe_get32 r.rbuf (r.rpos + off) in
  Int32.float_of_bits (if native_big then bswap32 v else v)

let get_f64_be r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  Int64.float_of_bits (if native_big then v else bswap64 v)

let get_f64_le r off =
  let v = unsafe_get64 r.rbuf (r.rpos + off) in
  Int64.float_of_bits (if native_big then bswap64 v else v)

let get_bytes r off len = Bytes.sub r.rbuf (r.rpos + off) len
let get_string r off len = Bytes.sub_string r.rbuf (r.rpos + off) len

let read_u8 r =
  need r 1;
  let v = get_u8 r 0 in
  r.rpos <- r.rpos + 1;
  v

let read_i16 r ~be =
  need r 2;
  let v = if be then get_i16_be r 0 else get_i16_le r 0 in
  r.rpos <- r.rpos + 2;
  v

let read_i32 r ~be =
  need r 4;
  let v = if be then get_i32_be r 0 else get_i32_le r 0 in
  r.rpos <- r.rpos + 4;
  v

let read_i64 r ~be =
  need r 8;
  let v = if be then get_i64_be r 0 else get_i64_le r 0 in
  r.rpos <- r.rpos + 8;
  v

let read_f32 r ~be =
  need r 4;
  let v = if be then get_f32_be r 0 else get_f32_le r 0 in
  r.rpos <- r.rpos + 4;
  v

let read_f64 r ~be =
  need r 8;
  let v = if be then get_f64_be r 0 else get_f64_le r 0 in
  r.rpos <- r.rpos + 8;
  v

(* Gather-aware bulk reads: the fast path is an in-window sub; the slow
   path copies across segment boundaries without disturbing the window
   (no pullup needed, the result is its own buffer). *)
let read_bytes r len =
  rd_copied := !rd_copied + max len 0;
  incr rd_copies;
  if len >= 0 && r.rpos + len <= r.rend then begin
    let v = Bytes.sub r.rbuf r.rpos len in
    r.rpos <- r.rpos + len;
    v
  end
  else begin
    if len < 0 || remaining r < len then raise Short_buffer;
    let out = Bytes.create len in
    let filled = ref 0 in
    while !filled < len do
      if r.rpos = r.rend then advance_seg r;
      let take = min (r.rend - r.rpos) (len - !filled) in
      Bytes.blit r.rbuf r.rpos out !filled take;
      r.rpos <- r.rpos + take;
      filled := !filled + take
    done;
    out
  end

let read_string r len =
  rd_copied := !rd_copied + max len 0;
  incr rd_copies;
  if len >= 0 && r.rpos + len <= r.rend then begin
    let v = Bytes.sub_string r.rbuf r.rpos len in
    r.rpos <- r.rpos + len;
    v
  end
  else begin
    (* undo the copy accounting done twice through read_bytes *)
    rd_copied := !rd_copied - max len 0;
    decr rd_copies;
    Bytes.unsafe_to_string (read_bytes r len)
  end

(* Zero-copy view of the next [len] bytes, when they sit whole inside
   one segment: returns the window slice and advances the cursor.
   [None] when the span crosses a segment boundary — the caller falls
   back to the gathering copy ([read_bytes]).  The returned slice
   aliases whatever backs the current window: the source writer's
   storage, a payload borrowed into the message, or a private pullup
   spill buffer.  See the reader-view aliasing contract in the mli. *)
let view_bytes r len =
  if len < 0 || remaining r < len then raise Short_buffer;
  while r.rpos = r.rend && r.rmore <> [] do
    advance_seg r
  done;
  if r.rpos + len <= r.rend then begin
    let res = (r.rbuf, r.rpos, len) in
    r.rpos <- r.rpos + len;
    rd_viewed := !rd_viewed + len;
    incr rd_views;
    Some res
  end
  else None

(* -- reader -> writer forwarding ------------------------------------ *)

(* Unchecked span copy for fused forward runs: the caller has already
   made the source span contiguous with [need] and reserved the
   destination with [ensure], so both sides are plain blits. *)
let copy_at r soff w doff len =
  if len > 0 then set_bytes w doff r.rbuf (r.rpos + soff) len

(* Move [len] bytes from the read cursor to the write cursor, the bulk
   primitive behind fused forward stubs.  Returns the number of bytes
   spliced by reference (0 when the span was copied). *)
let transfer ?(borrow = false) r w len =
  if len < 0 || remaining r < len then raise Short_buffer;
  let copy_spans () =
    ensure w len;
    let filled = ref 0 in
    while !filled < len do
      if r.rpos = r.rend then advance_seg r;
      let take = min (r.rend - r.rpos) (len - !filled) in
      set_bytes w !filled r.rbuf r.rpos take;
      r.rpos <- r.rpos + take;
      filled := !filled + take
    done;
    rd_copied := !rd_copied + len;
    incr rd_copies;
    advance w len;
    0
  in
  if len = 0 then 0
  else if borrow && borrow_eligible len then
    match view_bytes r len with
    | Some (base, off, n) ->
        (* The borrowed segment aliases the receive buffer: pin it so
           the source writer's next reset detaches the storage. *)
        pin_reader r;
        put_borrow_bytes w base off n;
        n
    | None -> copy_spans () (* span straddles a segment boundary *)
  else copy_spans ()

(* -- reader pool ----------------------------------------------------- *)

let reader_pool : reader list ref = ref []
let reader_pool_len = ref 0

let acquire_reader ?len t =
  incr reader_acquires;
  match !reader_pool with
  | r :: rest ->
      reader_pool := rest;
      decr reader_pool_len;
      init_reader r ?len t;
      r
  | [] -> reader ?len t

let release_reader r =
  incr reader_releases;
  r.rbuf <- Bytes.empty;
  r.rpos <- 0;
  r.rend <- 0;
  r.rbase <- 0;
  r.rmore <- [];
  r.rrest <- 0;
  r.rsrc <- None;
  if !reader_pool_len < pool_max then begin
    reader_pool := r :: !reader_pool;
    incr reader_pool_len;
    if !reader_pool_len > !reader_pool_hw then
      reader_pool_hw := !reader_pool_len
  end

(* -- pool accounting -------------------------------------------------- *)

type pool_stats = {
  writers_pooled : int;
  writers_outstanding : int;
  readers_pooled : int;
  readers_outstanding : int;
  chunks_pooled : int;
}

let pool_stats () =
  {
    writers_pooled = !writer_pool_len;
    writers_outstanding = !writer_acquires - !writer_releases;
    readers_pooled = !reader_pool_len;
    readers_outstanding = !reader_acquires - !reader_releases;
    chunks_pooled = !chunk_pool_len;
  }

(* -- metrics-registry export ----------------------------------------- *)

(* One pull-based probe for the whole wire layer: process-wide writer
   accounting, the module-global reader accounting, and pool occupancy
   with high-water marks.  Registered at module initialization, so any
   program linking the wire layer reports it in [flick stats]. *)
let () =
  Obs.probe "wire" (fun () ->
      let rs = reader_stats () in
      [
        ("bytes_copied", float_of_int !g_copied);
        ("copies", float_of_int !g_copies);
        ("bytes_borrowed", float_of_int !g_borrowed);
        ("borrows", float_of_int !g_borrows);
        ("flattens", float_of_int !g_flattens);
        ("seals", float_of_int !g_seals);
        ("read_bytes_copied", float_of_int rs.rbytes_copied);
        ("read_copies", float_of_int rs.rcopies);
        ("read_bytes_viewed", float_of_int rs.rbytes_viewed);
        ("read_views", float_of_int rs.rviews);
        ("pool.chunks", float_of_int !chunk_pool_len);
        ("pool.chunks_hw", float_of_int !chunk_pool_hw);
        ("pool.writers", float_of_int !writer_pool_len);
        ("pool.writers_hw", float_of_int !writer_pool_hw);
        ("pool.readers", float_of_int !reader_pool_len);
        ("pool.readers_hw", float_of_int !reader_pool_hw);
        ("pool.writers_outstanding",
         float_of_int (!writer_acquires - !writer_releases));
        ("pool.readers_outstanding",
         float_of_int (!reader_acquires - !reader_releases));
      ])
