(* Request-scoped tracing: per-request phase timelines on the
   simulator's virtual clock, plus the bounded flight-recorder ring.

   A record is created when the client transmits a frame and keyed by
   (domain, connection, sequence number) — the same correlation triple
   the server and gateway already demultiplex on, so trace context
   crosses hops without touching the wire format.  As the request moves
   through the system the owning layer marks phase boundaries; every
   boundary is rounded to integer virtual nanoseconds, and each phase
   duration is the integer difference of consecutive boundaries, so the
   eight phases telescope: their sum is exactly (end - t0), which is
   exactly the client-observed round trip when the client rounds its
   own clock readings the same way.  No float summation order can break
   the reconciliation — it is integer arithmetic by construction.

   A two-hop (gateway) request is two records sharing one trace id: the
   client-facing hop 0 skips over the backend window with [skip_to]
   (the skipped nanoseconds are the backend hop 1's own record), so
   hop-0 phases + hop-1 phases still telescope to the client RTT.

   Sampling: records with a fault outcome (shed, bad request, unknown
   op, killed or vanished connection) are always pushed into the ring;
   Ok records are head-sampled 1-in-N at creation time.  The ring keeps
   the last [ring_capacity] pushed records.

   Disabled (the default), nothing here runs: every instrumentation
   site in the server loop checks [enabled ()] — one load and a branch
   — before touching this module, so the recorder costs the hot path
   nothing and allocates nothing. *)

(* ------------------------------------------------------------------ *)
(* Phases                                                               *)
(* ------------------------------------------------------------------ *)

type phase =
  | Ingress_wire  (* client send -> frame at the server's parser *)
  | Header_parse  (* frame header decode (instantaneous in virtual time) *)
  | Queue_wait  (* admission + waiting for the serial CPU *)
  | Decode  (* unmarshal share of the service window *)
  | Handler  (* fixed dispatch/handler share of the service window *)
  | Encode  (* marshal share of the service window *)
  | Flush_wait  (* reply queued until its coalesced flush fires *)
  | Egress_wire  (* flush transmit -> delivery at the client *)

let n_phases = 8

let phase_index = function
  | Ingress_wire -> 0
  | Header_parse -> 1
  | Queue_wait -> 2
  | Decode -> 3
  | Handler -> 4
  | Encode -> 5
  | Flush_wait -> 6
  | Egress_wire -> 7

let phase_names =
  [|
    "ingress_wire"; "header_parse"; "queue_wait"; "decode"; "handler";
    "encode"; "flush_wait"; "egress_wire";
  |]

let phase_name p = phase_names.(phase_index p)

type outcome = Rok | Rshed | Rbad_request | Runknown_op | Rdropped | Rkilled

let outcome_name = function
  | Rok -> "ok"
  | Rshed -> "shed"
  | Rbad_request -> "bad_request"
  | Runknown_op -> "unknown_op"
  | Rdropped -> "dropped"
  | Rkilled -> "killed_conn"

(* ------------------------------------------------------------------ *)
(* Records                                                              *)
(* ------------------------------------------------------------------ *)

type record = {
  rq_trace : int;
  rq_hop : int;  (* 0 = client-facing hop, 1 = backend hop *)
  rq_domain : int;
  rq_conn : int;
  rq_seq : int;
  rq_t0_ns : int;  (* client transmit instant *)
  rq_phases : int array;  (* ns per phase, length n_phases *)
  mutable rq_end_ns : int;  (* last boundary recorded *)
  mutable rq_skip_ns : int;  (* hop-0 window owned by the other hop *)
  mutable rq_wire_queue_ns : int;  (* link-queueing share of the wire phases *)
  mutable rq_outcome : outcome;
  mutable rq_sampled : bool;  (* head-sampling decision, made at creation *)
  mutable rq_done : bool;
}

let trace_id r = r.rq_trace
let hop r = r.rq_hop
let conn r = r.rq_conn
let seq r = r.rq_seq
let outcome r = r.rq_outcome
let t0_ns r = r.rq_t0_ns
let end_ns r = r.rq_end_ns
let rtt_ns r = r.rq_end_ns - r.rq_t0_ns
let backend_ns r = r.rq_skip_ns
let wire_queue_ns r = r.rq_wire_queue_ns
let phase_ns r p = r.rq_phases.(phase_index p)
let phase_total_ns r = Array.fold_left ( + ) 0 r.rq_phases

(* Boundaries round half-up to integer virtual nanoseconds; the client
   and every hop round the same virtual-clock floats with this same
   function, so a shared instant always lands on the same integer. *)
let ns_of_s s = int_of_float (Float.round (s *. 1e9))

(* ------------------------------------------------------------------ *)
(* Recorder state                                                       *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false
let enabled () = !enabled_flag

let sample_every = ref 1
let next_trace = ref 0
let next_domain = ref 0
let head_tick = ref 0
let n_sampled = ref 0
let n_dropped = ref 0

let sampled_count () = !n_sampled
let dropped_count () = !n_dropped

let new_domain () =
  incr next_domain;
  !next_domain

(* In-flight records and propagated (pre-registered) trace contexts,
   both keyed by the correlation triple. *)
let inflight : (int * int * int, record) Hashtbl.t = Hashtbl.create 64

let pending_ctx : (int * int * int, int * int * bool) Hashtbl.t =
  Hashtbl.create 16

let sink : (record -> unit) option ref = ref None
let set_sink f = sink := f

(* The flight ring: last N pushed records, oldest overwritten first. *)
let ring_buf : record option array ref = ref (Array.make 256 None)
let ring_next = ref 0
let ring_count = ref 0

let ring_capacity () = Array.length !ring_buf

let ring_push r =
  let buf = !ring_buf in
  let cap = Array.length buf in
  buf.(!ring_next) <- Some r;
  ring_next := (!ring_next + 1) mod cap;
  if !ring_count < cap then incr ring_count

let ring_records () =
  let buf = !ring_buf in
  let cap = Array.length buf in
  let start = (!ring_next - !ring_count + cap) mod cap in
  List.init !ring_count (fun i ->
      match buf.((start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let clear () =
  Hashtbl.reset inflight;
  Hashtbl.reset pending_ctx;
  (* trace ids restart; recorder domains do not — live servers hold
     theirs, and colliding domains would cross-wire correlation *)
  next_trace := 0;
  Array.fill !ring_buf 0 (Array.length !ring_buf) None;
  ring_next := 0;
  ring_count := 0;
  head_tick := 0;
  n_sampled := 0;
  n_dropped := 0

let configure ?ring_capacity ?sample_every:se () =
  (match ring_capacity with
  | Some n when n >= 1 -> ring_buf := Array.make n None
  | _ -> ());
  (match se with Some n when n >= 1 -> sample_every := n | _ -> ());
  clear ()

(* ------------------------------------------------------------------ *)
(* Registry instruments (registered on first enable, so processes that
   never record keep their metric tables unchanged)                     *)
(* ------------------------------------------------------------------ *)

type inst = { i_phase : Obs.hist array; i_rtt : Obs.hist }

let inst =
  lazy
    (Obs.probe "serve.flight" (fun () ->
         [
           ("sampled", float_of_int !n_sampled);
           ("dropped", float_of_int !n_dropped);
         ]);
     {
       i_phase =
         Array.map
           (fun n -> Obs.hist (Printf.sprintf "serve.phase.%s_ns" n))
           phase_names;
       i_rtt = Obs.hist "serve.phase.rtt_ns";
     })

let set_enabled b =
  if b then ignore (Lazy.force inst);
  enabled_flag := b

let reset_metrics () =
  if Lazy.is_val inst then begin
    let i = Lazy.force inst in
    Array.iter Obs.reset_hist i.i_phase;
    Obs.reset_hist i.i_rtt
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let find ~domain ~conn ~seq = Hashtbl.find_opt inflight (domain, conn, seq)

(* Pre-register trace context for a request about to be transmitted on
   another hop: the gateway calls this with the backend connection and
   proxy sequence number before relaying, so the backend hop's record
   joins the client's trace instead of starting a fresh one. *)
let propagate ~domain ~conn ~seq ~trace ~hop ~sampled =
  if !enabled_flag then
    Hashtbl.replace pending_ctx (domain, conn, seq) (trace, hop, sampled)

let client_send ~domain ~conn ~seq ~now_s =
  let key = (domain, conn, seq) in
  let trace, hop, sampled =
    match Hashtbl.find_opt pending_ctx key with
    | Some (tr, hp, sm) ->
        Hashtbl.remove pending_ctx key;
        (tr, hp, sm)
    | None ->
        incr next_trace;
        let tick = !head_tick in
        incr head_tick;
        (!next_trace, 0, tick mod !sample_every = 0)
  in
  let n = ns_of_s now_s in
  let r =
    {
      rq_trace = trace;
      rq_hop = hop;
      rq_domain = domain;
      rq_conn = conn;
      rq_seq = seq;
      rq_t0_ns = n;
      rq_phases = Array.make n_phases 0;
      rq_end_ns = n;
      rq_skip_ns = 0;
      rq_wire_queue_ns = 0;
      rq_outcome = Rok;
      rq_sampled = sampled;
      rq_done = false;
    }
  in
  Hashtbl.replace inflight key r;
  r

let is_sampled r = r.rq_sampled

(* Advance the boundary cursor to [now], charging the elapsed interval
   to [p].  Marking the same phase twice accumulates. *)
let mark r p ~now_s =
  if not r.rq_done then begin
    let n = ns_of_s now_s in
    if n > r.rq_end_ns then begin
      r.rq_phases.(phase_index p) <- r.rq_phases.(phase_index p)
                                     + (n - r.rq_end_ns);
      r.rq_end_ns <- n
    end
  end

(* Charge an explicit duration to [p] (the service-window split hands
   out its decode/handler/encode shares this way). *)
let add_ns r p ns =
  if (not r.rq_done) && ns > 0 then begin
    r.rq_phases.(phase_index p) <- r.rq_phases.(phase_index p) + ns;
    r.rq_end_ns <- r.rq_end_ns + ns
  end

(* Advance the cursor without charging any phase: the skipped window
   belongs to the other hop's record (the gateway's backend round
   trip). *)
let skip_to r ~now_s =
  if not r.rq_done then begin
    let n = ns_of_s now_s in
    if n > r.rq_end_ns then begin
      r.rq_skip_ns <- r.rq_skip_ns + (n - r.rq_end_ns);
      r.rq_end_ns <- n
    end
  end

let add_wire_queue_ns r ns =
  if (not r.rq_done) && ns > 0 then
    r.rq_wire_queue_ns <- r.rq_wire_queue_ns + ns

let set_outcome r o = if not r.rq_done then r.rq_outcome <- o

let outcome_of_fault_status = function
  | 1 -> Rshed
  | 2 -> Rbad_request
  | 3 -> Runknown_op
  | _ -> Rok

(* Reconstruct the phase spans into the Chrome trace, one (pid, tid)
   lane per (hop, connection): the cursor starts at t0 and walks the
   phases in order, inserting the hop-0 skip window after Decode —
   which is where the gateway parks while the backend hop runs.  The
   first span of hop 0 starts the request's flow arrow, the first span
   of hop 1 terminates it, stitching the two hops in the viewer. *)
let emit_chrome r =
  if Obs_trace.enabled () then begin
    let lane = (r.rq_hop + 1, r.rq_conn + 1) in
    let cursor = ref r.rq_t0_ns in
    let first = ref true in
    Array.iteri
      (fun i ns ->
        if ns > 0 then begin
          let flow =
            if not !first then None
            else if r.rq_hop = 0 then Some (Obs_trace.Flow_out r.rq_trace)
            else Some (Obs_trace.Flow_in r.rq_trace)
          in
          first := false;
          Obs_trace.emit ~cat:"request" ~lane ?flow
            ~args:
              [
                ("trace", string_of_int r.rq_trace);
                ("seq", string_of_int r.rq_seq);
              ]
            ~name:phase_names.(i)
            ~ts_ns:(float_of_int !cursor)
            ~dur_ns:(float_of_int ns) ();
          cursor := !cursor + ns
        end;
        if i = phase_index Decode then cursor := !cursor + r.rq_skip_ns)
      r.rq_phases
  end

let finish r =
  if (not r.rq_done) && !enabled_flag then begin
    r.rq_done <- true;
    Hashtbl.remove inflight (r.rq_domain, r.rq_conn, r.rq_seq);
    if r.rq_outcome = Rok then begin
      let i = Lazy.force inst in
      Array.iteri
        (fun p ns ->
          Obs.observe_ex i.i_phase.(p) (float_of_int ns) ~exemplar:r.rq_trace)
        r.rq_phases;
      if r.rq_hop = 0 then
        Obs.observe_ex i.i_rtt (float_of_int (rtt_ns r)) ~exemplar:r.rq_trace
    end;
    emit_chrome r;
    (match !sink with Some f -> f r | None -> ());
    if r.rq_outcome <> Rok || r.rq_sampled then begin
      ring_push r;
      incr n_sampled
    end
    else incr n_dropped
  end

(* Flush every in-flight record of one connection into the ring with a
   terminal outcome — the killed/closed-connection paths call this so
   diagnostics carry the partial timelines.  [ensure_marker] records a
   synthetic seq -1 marker when the connection had nothing in flight
   (a garbage frame killed it before any request existed), so the ring
   always carries evidence of the kill. *)
let abort_conn ~domain ~conn ?(ensure_marker = false) ~outcome:o ~now_s () =
  if !enabled_flag then begin
    let victims =
      Hashtbl.fold
        (fun (d, c, _) r acc ->
          if d = domain && c = conn && not r.rq_done then r :: acc else acc)
        inflight []
      |> List.sort (fun a b -> compare a.rq_trace b.rq_trace)
    in
    List.iter
      (fun r ->
        r.rq_outcome <- o;
        finish r)
      victims;
    if ensure_marker && victims = [] then begin
      let r = client_send ~domain ~conn ~seq:(-1) ~now_s in
      r.rq_outcome <- o;
      finish r
    end
  end

(* ------------------------------------------------------------------ *)
(* Exports                                                              *)
(* ------------------------------------------------------------------ *)

let record_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"trace\":%d,\"hop\":%d,\"conn\":%d,\"seq\":%d,\"outcome\":\"%s\",\"t0_ns\":%d,\"rtt_ns\":%d,\"backend_ns\":%d,\"wire_queue_ns\":%d,\"phases\":{"
       r.rq_trace r.rq_hop r.rq_conn r.rq_seq
       (outcome_name r.rq_outcome)
       r.rq_t0_ns (rtt_ns r) r.rq_skip_ns r.rq_wire_queue_ns);
  Array.iteri
    (fun i ns ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\"%s_ns\":%d" phase_names.(i) ns))
    r.rq_phases;
  Buffer.add_string b "}}";
  Buffer.contents b

let flight_to_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"flight\":{\"capacity\":%d,\"sample_every\":%d,\"sampled\":%d,\"dropped\":%d,\"records\":["
       (ring_capacity ()) !sample_every !n_sampled !n_dropped);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n";
      Buffer.add_string b (record_to_json r))
    (ring_records ());
  Buffer.add_string b "\n]}}\n";
  Buffer.contents b

(* The phase-breakdown section of Obs.render_table: per-phase p50/p99
   and each phase's share of the total round-trip mass.  Shares sum to
   1 because a two-hop request's hop-0 record skips exactly the window
   the hop-1 record owns.  Renders nothing until a request completed,
   so recorder-free reports are unchanged. *)
let phase_section () =
  if not (Lazy.is_val inst) then ""
  else begin
    let i = Lazy.force inst in
    let rtt = Obs.hist_summary i.i_rtt in
    if rtt.Obs.count = 0 then ""
    else begin
      let b = Buffer.create 512 in
      Buffer.add_string b
        (Printf.sprintf
           "\nrequest phase breakdown (%d requests, mean RTT %.0f ns)\n"
           rtt.Obs.count
           (rtt.Obs.sum /. float_of_int rtt.Obs.count));
      Buffer.add_string b
        (Printf.sprintf "%-24s %12s %12s %8s  %s\n" "phase" "p50_ns" "p99_ns"
           "share" "p99 exemplar");
      Array.iteri
        (fun p h ->
          let s = Obs.hist_summary h in
          let share =
            if rtt.Obs.sum > 0. then s.Obs.sum /. rtt.Obs.sum else 0.
          in
          Buffer.add_string b
            (Printf.sprintf "%-24s %12.0f %12.0f %7.1f%%  %s\n"
               phase_names.(p) s.Obs.p50 s.Obs.p99 (100. *. share)
               (match s.Obs.p99_exemplar with
               | Some tr -> Printf.sprintf "trace %d" tr
               | None -> "-")))
        i.i_phase;
      Buffer.add_string b
        (Printf.sprintf "%-24s %12.0f %12.0f %7.1f%%  %s\n" "rtt"
           rtt.Obs.p50 rtt.Obs.p99 100.
           (match rtt.Obs.p99_exemplar with
           | Some tr -> Printf.sprintf "trace %d" tr
           | None -> "-"));
      Buffer.contents b
    end
  end

let () = Obs.add_section phase_section
