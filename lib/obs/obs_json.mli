(** A minimal JSON reader (the container ships no JSON library).

    Strict recursive-descent parser covering everything the repo's
    exporters generate plus standard escapes; used by the exporter
    round-trip tests and [bench/check_bench.ml].  Never on a hot
    path. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
