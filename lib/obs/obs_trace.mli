(** Span-based tracing with nested scopes and Chrome trace_event export.

    Spans read the {!Obs} clock at {!enter} and {!leave} and record one
    complete event per span.  Scopes must nest — leaving a span that is
    not the innermost open one raises {!Unbalanced_span}.  Disabled
    (the default), every entry point is a load-and-branch no-op. *)

type flow = Flow_out of int | Flow_in of int
(** Flow-arrow endpoints: the span carrying [Flow_out id] starts arrow
    [id], the one carrying [Flow_in id] terminates it — Chrome/Perfetto
    draw the arrow between the two slices, stitching one request's
    spans across lanes. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : float;  (** start, on the {!Obs} clock *)
  ev_dur_ns : float;
  ev_depth : int;  (** nesting depth at entry *)
  ev_args : (string * string) list;
  ev_pid : int;  (** trace lane: process row (default 1) *)
  ev_tid : int;  (** trace lane: thread row (default 1) *)
  ev_flow : flow option;
}

exception Unbalanced_span of string

type span
(** Token returned by {!enter}; a no-op when tracing is disabled. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val enter : ?cat:string -> ?args:(string * string) list -> string -> span
(** Open a span (category defaults to ["flick"]). *)

val leave : span -> unit
(** Close the span and record its event.
    @raise Unbalanced_span when the span is not the innermost open
    one. *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [enter]/[leave] around [f]; on an exception the span is popped
    without recording so the parent's scope stays balanced. *)

val emit :
  ?cat:string ->
  ?args:(string * string) list ->
  ?lane:int * int ->
  ?flow:flow ->
  name:string ->
  ts_ns:float ->
  dur_ns:float ->
  unit ->
  unit
(** Record a complete event with caller-supplied timestamps — for
    clocks the tracer does not own, e.g. the RPC simulator's virtual
    time.  [lane] places the event on its own [(pid, tid)] row of the
    Chrome export (default [(1, 1)], the shared row); [flow] binds it
    into a flow arrow. *)

val events : unit -> event list
(** Recorded events in completion order. *)

val clear : unit -> unit
(** Drop all events and any open spans. *)

val depth : unit -> int
(** Number of currently open spans. *)

val to_chrome_json : unit -> string
(** The trace as Chrome [trace_event] JSON (complete ["X"] events,
    microsecond timestamps) — loadable by chrome://tracing or
    Perfetto.  Events carrying lane metadata render on their own
    pid/tid row, flow annotations add the "s"/"f" records; traces
    without either are byte-identical to the historical single-lane
    output. *)
