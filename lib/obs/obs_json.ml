(* A minimal JSON reader.

   The container has no JSON library, and the observability layer both
   writes JSON (traces, metrics, bench artifacts) and needs to read it
   back — the exporter tests parse their own output, and
   bench/check_bench.ml validates every BENCH_*.json in CI.  This is a
   strict recursive-descent parser over the generated subset plus
   standard escapes; it is not a streaming parser and is never on a hot
   path. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st msg = raise (Fail (Printf.sprintf "at byte %d: %s" st.pos msg))

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                (* non-ASCII code points round-trip as '?': the
                   generated JSON only ever escapes control bytes *)
                Buffer.add_char b
                  (if code < 0x80 then Char.chr code else '?')
            | c -> fail st (Printf.sprintf "bad escape \\%C" c));
            go ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "expected a value, found end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail st "expected ',' or '}' in object"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']' in array"
        in
        Arr (elems [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing bytes at %d" st.pos)
      else Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None
