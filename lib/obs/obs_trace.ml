(* Span-based tracing with nested scopes.

   A span is entered, does work, and is left; leaving records one
   complete event with the duration between the two clock readings.
   Spans must nest: leaving a span that is not the innermost open one
   raises, because a trace with interleaved scopes renders as garbage
   in every flame-graph viewer and the bug is always in the caller.

   Disabled (the default), [enter] returns a no-op token without
   reading the clock, so instrumented code costs one load and branch.
   [emit] records an event with caller-supplied timestamps — the RPC
   simulator uses it to trace simulated (virtual) time. *)

(* Flow arrows stitch one logical request's spans across lanes: the
   span carrying [Flow_out id] starts arrow [id], the span carrying
   [Flow_in id] terminates it.  Chrome/Perfetto draw the arrow between
   the two slices. *)
type flow = Flow_out of int | Flow_in of int

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : float;
  ev_dur_ns : float;
  ev_depth : int;
  ev_args : (string * string) list;
  ev_pid : int;  (* trace lane: process row (default 1) *)
  ev_tid : int;  (* trace lane: thread row (default 1) *)
  ev_flow : flow option;
}

exception Unbalanced_span of string

let () =
  Printexc.register_printer (function
    | Unbalanced_span name ->
        Some (Printf.sprintf "Obs_trace.Unbalanced_span(%S)" name)
    | _ -> None)

type open_span = {
  sp_name : string;
  sp_cat : string;
  sp_args : (string * string) list;
  sp_start : float;
  sp_depth : int;
}

type span = open_span option

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let events_rev : event list ref = ref []
let stack : open_span list ref = ref []

let clear () =
  events_rev := [];
  stack := []

let depth () = List.length !stack
let events () = List.rev !events_rev

let enter ?(cat = "flick") ?(args = []) name : span =
  if not !enabled_flag then None
  else begin
    let sp =
      {
        sp_name = name;
        sp_cat = cat;
        sp_args = args;
        sp_start = Obs.now_ns ();
        sp_depth = List.length !stack;
      }
    in
    stack := sp :: !stack;
    Some sp
  end

let leave (s : span) =
  match s with
  | None -> ()
  | Some sp -> (
      match !stack with
      | top :: rest when top == sp ->
          stack := rest;
          events_rev :=
            {
              ev_name = sp.sp_name;
              ev_cat = sp.sp_cat;
              ev_ts_ns = sp.sp_start;
              ev_dur_ns = Obs.now_ns () -. sp.sp_start;
              ev_depth = sp.sp_depth;
              ev_args = sp.sp_args;
              ev_pid = 1;
              ev_tid = 1;
              ev_flow = None;
            }
            :: !events_rev
      | _ -> raise (Unbalanced_span sp.sp_name))

let with_span ?cat ?args name f =
  let sp = enter ?cat ?args name in
  match f () with
  | v ->
      leave sp;
      v
  | exception e ->
      (* pop without recording: a span that died mid-flight must not
         leave the stack poisoned for its parent's [leave] *)
      (match (sp, !stack) with
      | Some s, top :: rest when top == s -> stack := rest
      | _ -> ());
      raise e

let emit ?(cat = "flick") ?(args = []) ?(lane = (1, 1)) ?flow ~name ~ts_ns
    ~dur_ns () =
  if !enabled_flag then
    events_rev :=
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_ns = ts_ns;
        ev_dur_ns = dur_ns;
        ev_depth = List.length !stack;
        ev_args = args;
        ev_pid = fst lane;
        ev_tid = snd lane;
        ev_flow = flow;
      }
      :: !events_rev

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                            *)
(* ------------------------------------------------------------------ *)

(* The JSON Object Format of the trace_event spec: complete ("X")
   events with microsecond timestamps, loadable by chrome://tracing and
   Perfetto.  Events carrying lane metadata land on their own pid/tid
   row, and a flow annotation additionally emits the "s"/"f" flow
   record binding the slice into its request's arrow — events without
   either render exactly as they always did, so lane-free traces stay
   byte-identical. *)
let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let elem s =
    if not !first then Buffer.add_string b ",";
    first := false;
    Buffer.add_string b s
  in
  List.iter
    (fun ev ->
      elem
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{"
           (Obs.json_escape ev.ev_name)
           (Obs.json_escape ev.ev_cat)
           (ev.ev_ts_ns /. 1e3) (ev.ev_dur_ns /. 1e3) ev.ev_pid ev.ev_tid);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (Obs.json_escape k)
               (Obs.json_escape v)))
        ev.ev_args;
      Buffer.add_string b "}}";
      match ev.ev_flow with
      | None -> ()
      | Some (Flow_out id) ->
          elem
            (Printf.sprintf
               "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"id\":%d}"
               (Obs.json_escape ev.ev_name)
               (Obs.json_escape ev.ev_cat)
               (ev.ev_ts_ns /. 1e3) ev.ev_pid ev.ev_tid id)
      | Some (Flow_in id) ->
          elem
            (Printf.sprintf
               "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"f\",\"bp\":\"e\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"id\":%d}"
               (Obs.json_escape ev.ev_name)
               (Obs.json_escape ev.ev_cat)
               (ev.ev_ts_ns /. 1e3) ev.ev_pid ev.ev_tid id))
    (events ());
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b
