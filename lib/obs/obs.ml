(* The process-wide metrics registry and its injectable clock.

   Every layer of the system records into one flat namespace of named
   instruments — monotonic counters, gauges with high-water marks, and
   log-scale histograms — so one exporter can render the whole picture
   (flick stats, the JSONL dump) instead of each subsystem hand-rolling
   its own report.  Time always flows through [now_ns]: tests swap in a
   stepping fake clock and every duration in every export becomes
   deterministic, which is what keeps the trace goldens stable across
   machines. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                                *)
(* ------------------------------------------------------------------ *)

type clock = unit -> float

let real_clock () = Unix.gettimeofday () *. 1e9

(* Steps by a fixed amount per reading, so the Nth clock call of a
   deterministic computation always returns the same value. *)
let fake_clock ?(start = 0.) ?(step = 1000.) () =
  let t = ref (start -. step) in
  fun () ->
    t := !t +. step;
    !t

let current_clock = ref real_clock
let set_clock c = current_clock := c
let clock () = !current_clock
let now_ns () = !current_clock ()

let with_clock c f =
  let old = !current_clock in
  current_clock := c;
  Fun.protect ~finally:(fun () -> current_clock := old) f

(* ------------------------------------------------------------------ *)
(* Hot-path gate                                                        *)
(* ------------------------------------------------------------------ *)

(* Per-call stub timing costs two clock reads per encode/decode; the
   benches must not pay that, so the instrumented closures check this
   flag on every call (a load and a branch) and only then observe. *)
let timing = ref false
let timing_enabled () = !timing
let set_timing b = timing := b

(* ------------------------------------------------------------------ *)
(* Instruments                                                          *)
(* ------------------------------------------------------------------ *)

exception Duplicate_metric of string

let () =
  Printexc.register_printer (function
    | Duplicate_metric name ->
        Some (Printf.sprintf "Obs.Duplicate_metric(%S)" name)
    | _ -> None)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float; mutable g_high : float }

(* Bucket 0 holds values <= 1; bucket i holds (2^(i-1), 2^i]; the last
   bucket absorbs everything larger (the overflow bucket).  Log-scale
   is the right shape for both nanoseconds and byte sizes: relative
   error stays bounded across six orders of magnitude. *)
let n_buckets = 64

type hist = {
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  (* One representative trace id per bucket (0 = none), allocated on the
     first exemplared observation so plain histograms pay nothing. *)
  mutable h_exemplars : int array option;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of hist
  | Probe of (unit -> (string * float) list)

(* Registration order is report order; the list is tiny and only walked
   by exporters, so an assoc list beats a hashtable for determinism. *)
let metrics : (string * metric) list ref = ref []

let register name m =
  if List.mem_assoc name !metrics then raise (Duplicate_metric name);
  metrics := !metrics @ [ (name, m) ]

let counter name =
  let c = { c_value = 0 } in
  register name (Counter c);
  c

let incr c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge name =
  let g = { g_value = 0.; g_high = 0. } in
  register name (Gauge g);
  g

let set_gauge g v =
  g.g_value <- v;
  if v > g.g_high then g.g_high <- v

let gauge_value g = g.g_value
let gauge_high_water g = g.g_high

let hist name =
  let h =
    {
      h_buckets = Array.make n_buckets 0;
      h_count = 0;
      h_sum = 0.;
      h_min = 0.;
      h_max = 0.;
      h_exemplars = None;
    }
  in
  register name (Hist h);
  h

let bucket_of v =
  if not (v > 1.) then 0
  else begin
    let b = ref 0 and lim = ref 1. in
    while !b < n_buckets - 1 && v > !lim do
      Stdlib.incr b;
      lim := !lim *. 2.
    done;
    !b
  end

let observe h v =
  let v = if Float.is_nan v then 0. else v in
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  h.h_sum <- h.h_sum +. v;
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1

(* An exemplared observation additionally remembers which request landed
   in the bucket: the latest trace id wins, so a p99 bucket always names
   a concrete request timeline from the current run. *)
let observe_ex h v ~exemplar =
  observe h v;
  if exemplar <> 0 then begin
    let ex =
      match h.h_exemplars with
      | Some a -> a
      | None ->
          let a = Array.make n_buckets 0 in
          h.h_exemplars <- Some a;
          a
    in
    ex.(bucket_of (if Float.is_nan v then 0. else v)) <- exemplar
  end

let bucket_counts h = Array.copy h.h_buckets

let exemplars h =
  match h.h_exemplars with
  | None -> []
  | Some ex ->
      let acc = ref [] in
      for i = n_buckets - 1 downto 0 do
        if ex.(i) <> 0 then acc := (i, ex.(i)) :: !acc
      done;
      !acc

(* Sub-bucket estimate: walk the cumulative distribution to the bucket
   holding the requested rank, then interpolate linearly inside it —
   samples within a bucket are assumed uniform over (lo, hi], so a rank
   landing k-th of n in a bucket reads as lo + k/n * (hi - lo) rather
   than the bucket's upper bound.  On tight distributions (every sample
   in one or two power-of-two buckets — exactly the shape of per-tier
   stub latencies) this recovers sub-bucket resolution without touching
   recording cost.  The result is clamped into the observed [min, max]
   so degenerate shapes come out exact: empty -> 0, a single sample ->
   that sample; the overflow bucket has no meaningful width, so it
   still reports the true maximum. *)
let percentile h p =
  if h.h_count = 0 then 0.
  else begin
    let rank = Float.max 1. (Float.ceil (p /. 100. *. float_of_int h.h_count)) in
    let rec go i acc =
      if i >= n_buckets then h.h_max
      else
        let n = h.h_buckets.(i) in
        let acc' = acc + n in
        if float_of_int acc' >= rank then
          if i = n_buckets - 1 then h.h_max
          else begin
            let lo = if i = 0 then 0. else 2. ** float_of_int (i - 1) in
            let hi = 2. ** float_of_int i in
            let pos = (rank -. float_of_int acc) /. float_of_int n in
            Float.min h.h_max
              (Float.max h.h_min (lo +. (pos *. (hi -. lo))))
          end
        else go (i + 1) acc'
    in
    go 0 0
  end

(* The exemplar backing a percentile: the trace id retained in the
   bucket the percentile estimate falls into (or the nearest populated
   bucket below it, since clamping can pull the estimate under its
   rank's bucket boundary). *)
let exemplar_at h p =
  match h.h_exemplars with
  | None -> None
  | Some ex ->
      if h.h_count = 0 then None
      else begin
        let b = ref (bucket_of (percentile h p)) in
        while !b > 0 && ex.(!b) = 0 do
          decr b
        done;
        if ex.(!b) = 0 then None else Some ex.(!b)
      end

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p99_exemplar : int option;
      (* trace id retained in the p99 bucket, when one was recorded *)
}

let hist_summary h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    p50 = percentile h 50.;
    p90 = percentile h 90.;
    p99 = percentile h 99.;
    p99_exemplar = exemplar_at h 99.;
  }

let probe name f = register name (Probe f)

(* ------------------------------------------------------------------ *)
(* Snapshots and exporters                                              *)
(* ------------------------------------------------------------------ *)

type sample =
  | Scounter of string * int
  | Sgauge of string * float * float  (* value, high-water *)
  | Svalue of string * float  (* one probe reading *)
  | Shist of string * hist_summary

let snapshot () =
  List.concat_map
    (fun (name, m) ->
      match m with
      | Counter c -> [ Scounter (name, c.c_value) ]
      | Gauge g -> [ Sgauge (name, g.g_value, g.g_high) ]
      | Hist h -> [ Shist (name, hist_summary h) ]
      | Probe f ->
          List.map (fun (k, v) -> Svalue (name ^ "." ^ k, v)) (f ()))
    !metrics

let reset_hist h =
  Array.fill h.h_buckets 0 n_buckets 0;
  h.h_count <- 0;
  h.h_sum <- 0.;
  h.h_min <- 0.;
  h.h_max <- 0.;
  h.h_exemplars <- None

let reset_all () =
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g ->
          g.g_value <- 0.;
          g.g_high <- 0.
      | Hist h -> reset_hist h
      | Probe _ -> ())
    !metrics

(* Values are mostly nanoseconds or byte counts: print integers as
   integers and keep one decimal otherwise. *)
let pp_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

(* Extra report sections appended to the table by other layers (the
   request recorder's phase breakdown registers one).  A section
   renderer returning "" contributes nothing, so the table only grows
   when a section has data. *)
let sections : (unit -> string) list ref = ref []
let add_section f = sections := !sections @ [ f ]

let render_table () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-36s %s\n" "metric" "value");
  List.iter
    (fun s ->
      match s with
      | Scounter (name, v) ->
          Buffer.add_string b (Printf.sprintf "%-36s %d\n" name v)
      | Sgauge (name, v, hw) ->
          Buffer.add_string b
            (Printf.sprintf "%-36s %s (high-water %s)\n" name (pp_value v)
               (pp_value hw))
      | Svalue (name, v) ->
          Buffer.add_string b (Printf.sprintf "%-36s %s\n" name (pp_value v))
      | Shist (name, h) ->
          Buffer.add_string b
            (Printf.sprintf
               "%-36s count %d  sum %s  min %s  p50 %s  p90 %s  p99 %s  max \
                %s\n"
               name h.count (pp_value h.sum) (pp_value h.min) (pp_value h.p50)
               (pp_value h.p90) (pp_value h.p99) (pp_value h.max)))
    (snapshot ());
  List.iter (fun f -> Buffer.add_string b (f ())) !sections;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Not every float survives %g as JSON (nan, inf); everything we export
   is finite by construction, but guard anyway. *)
let json_num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "0"

let to_jsonl () =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  List.iter
    (fun s ->
      match s with
      | Scounter (name, v) ->
          line "{\"metric\":\"%s\",\"type\":\"counter\",\"value\":%d}"
            (json_escape name) v
      | Sgauge (name, v, hw) ->
          line
            "{\"metric\":\"%s\",\"type\":\"gauge\",\"value\":%s,\"high_water\":%s}"
            (json_escape name) (json_num v) (json_num hw)
      | Svalue (name, v) ->
          line "{\"metric\":\"%s\",\"type\":\"value\",\"value\":%s}"
            (json_escape name) (json_num v)
      | Shist (name, h) ->
          (* the exemplar member only appears when one was recorded, so
             exemplar-free exports stay byte-identical *)
          let ex =
            match h.p99_exemplar with
            | Some tr -> Printf.sprintf ",\"p99_exemplar\":%d" tr
            | None -> ""
          in
          line
            "{\"metric\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s%s}"
            (json_escape name) h.count (json_num h.sum) (json_num h.min)
            (json_num h.max) (json_num h.p50) (json_num h.p90)
            (json_num h.p99) ex)
    (snapshot ());
  Buffer.contents b
