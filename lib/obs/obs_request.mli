(** Request-scoped tracing and the flight recorder.

    Every client-transmitted request gets a {!record} keyed by the
    correlation triple [(domain, connection, sequence)] the server
    stack already demultiplexes on — trace context crosses the gateway
    without touching the wire format.  Phase boundaries are rounded to
    integer virtual nanoseconds, so the eight phase durations telescope
    exactly: for every completed request their sum equals the
    client-observed round trip to the nanosecond, including across both
    gateway hops (the client-facing record {!skip_to}s over the backend
    window that the backend hop's record owns).

    Completed Ok records feed the [serve.phase.*_ns] histograms (with
    the trace id as each bucket's exemplar); fault outcomes are always
    pushed into the bounded flight ring, Ok records head-sampled 1-in-N.
    Disabled (the default), every entry point behind {!enabled} is
    skipped by the callers' load-and-branch guard and nothing is
    allocated or registered. *)

(** {1 Phases and outcomes} *)

type phase =
  | Ingress_wire  (** client send -> frame at the server's parser *)
  | Header_parse  (** frame header decode *)
  | Queue_wait  (** admission + waiting for the serial CPU *)
  | Decode  (** unmarshal share of the service window *)
  | Handler  (** dispatch/handler share of the service window *)
  | Encode  (** marshal share of the service window *)
  | Flush_wait  (** reply queued until its coalesced flush fires *)
  | Egress_wire  (** flush transmit -> delivery at the client *)

val n_phases : int
val phase_name : phase -> string

type outcome = Rok | Rshed | Rbad_request | Runknown_op | Rdropped | Rkilled

val outcome_name : outcome -> string

val outcome_of_fault_status : int -> outcome
(** Map a non-zero wire reply status (shed / bad request / unknown op)
    to its outcome; status 0 maps to {!Rok}. *)

(** {1 Recorder control} *)

val set_enabled : bool -> unit
(** Enabling registers the phase histograms and flight probe in {!Obs}
    on first use; processes that never enable keep their registries
    unchanged. *)

val enabled : unit -> bool
(** The hot-path gate: one load and a branch. *)

val configure : ?ring_capacity:int -> ?sample_every:int -> unit -> unit
(** Resize the flight ring and/or set Ok-record head sampling to 1 in
    [sample_every] (defaults 256 and 1); clears all recorder state. *)

val clear : unit -> unit
(** Drop in-flight records, propagated contexts, the ring, and the
    sampled/dropped counters.  Histograms are left alone — see
    {!reset_metrics}. *)

val reset_metrics : unit -> unit
(** Zero the phase histograms in place (bench sweeps call this between
    load points). *)

type record
(** One hop of one request's timeline.  Mutable until {!finish}; all
    further marks on a finished record are no-ops. *)

val set_sink : (record -> unit) option -> unit
(** Test hook: called with every finished record before sampling. *)

val new_domain : unit -> int
(** A fresh recorder domain — one per server or gateway instance, so
    their connection ids never collide in the correlation tables. *)

(** {1 Lifecycle} *)

val client_send : domain:int -> conn:int -> seq:int -> now_s:float -> record
(** Open a record at the client-transmit instant.  Adopts a context
    pre-registered by {!propagate} for this triple (joining an existing
    trace) or starts a fresh trace at hop 0, making the head-sampling
    decision.  Only call while {!enabled}. *)

val propagate :
  domain:int -> conn:int -> seq:int -> trace:int -> hop:int -> sampled:bool ->
  unit
(** Pre-register trace context for a request about to be transmitted on
    another hop — the gateway calls this with the backend connection
    and proxy sequence before relaying. *)

val find : domain:int -> conn:int -> seq:int -> record option
(** Look up the in-flight record for a correlation triple. *)

val mark : record -> phase -> now_s:float -> unit
(** Advance the record's boundary cursor to [now], charging the
    elapsed interval to the phase.  Marking a phase twice
    accumulates. *)

val add_ns : record -> phase -> int -> unit
(** Charge an explicit duration — the service-window split hands out
    its decode/handler/encode shares this way. *)

val skip_to : record -> now_s:float -> unit
(** Advance the cursor without charging any phase: the skipped window
    belongs to the other hop's record. *)

val add_wire_queue_ns : record -> int -> unit
(** Attribute link-queueing time (transmit start minus request) inside
    the wire phases. *)

val set_outcome : record -> outcome -> unit

val finish : record -> unit
(** Close the record: drop it from the in-flight table, feed the phase
    histograms (Ok outcomes; the RTT histogram additionally for hop 0),
    emit its Chrome spans when {!Obs_trace} is live, hand it to the
    sink, then ring-push (forced for fault outcomes, head-sampled for
    Ok).  Idempotent. *)

val abort_conn :
  domain:int ->
  conn:int ->
  ?ensure_marker:bool ->
  outcome:outcome ->
  now_s:float ->
  unit ->
  unit
(** Flush every in-flight record of one connection into the ring with a
    terminal outcome — the killed/closed-connection paths call this so
    diagnostics keep the partial timelines.  [ensure_marker] (default
    false) records a synthetic seq [-1] marker when nothing was in
    flight, so a kill always leaves ring evidence. *)

(** {1 Record accessors} *)

val trace_id : record -> int
val hop : record -> int
val conn : record -> int
val seq : record -> int
val outcome : record -> outcome
val is_sampled : record -> bool
val t0_ns : record -> int
val end_ns : record -> int

val rtt_ns : record -> int
(** [end_ns - t0_ns]; for a finished Ok hop-0 record this is exactly
    the client-observed round trip. *)

val backend_ns : record -> int
(** Nanoseconds skipped over for the other hop (0 on direct serves). *)

val wire_queue_ns : record -> int
val phase_ns : record -> phase -> int

val phase_total_ns : record -> int
(** Sum of the eight phases; equals [rtt_ns - backend_ns] by
    construction. *)

val ns_of_s : float -> int
(** Round seconds of virtual time to integer nanoseconds — the one
    rounding rule every boundary (and the reconciling client) shares. *)

(** {1 Flight ring and exports} *)

val ring_capacity : unit -> int

val ring_records : unit -> record list
(** Ring contents, oldest first. *)

val sampled_count : unit -> int
val dropped_count : unit -> int

val record_to_json : record -> string

val flight_to_json : unit -> string
(** The ring as a JSON document ([flick serve --flight-out]). *)

val phase_section : unit -> string
(** The phase-breakdown section appended to {!Obs.render_table}
    (registered at module-load time); [""] until a request
    completes. *)
