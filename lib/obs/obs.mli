(** Process-wide metrics registry with an injectable clock.

    One flat namespace of named instruments — monotonic {!counter}s,
    {!gauge}s with high-water marks, and log-scale {!hist}ograms — that
    every layer records into, so one exporter ({!render_table},
    {!to_jsonl}) can show the whole system at once.  Registration is
    first-come-owns-the-name: registering a name twice raises
    {!Duplicate_metric}, which catches two subsystems silently sharing
    an instrument.

    All time flows through {!now_ns}.  Tests install {!fake_clock} via
    {!with_clock} and every duration in every export becomes
    deterministic — the trace goldens contain no real nanosecond
    values. *)

(** {1 Clock} *)

type clock = unit -> float
(** Nanoseconds since an arbitrary origin. *)

val real_clock : clock
(** Wall time ([Unix.gettimeofday], scaled to ns). *)

val fake_clock : ?start:float -> ?step:float -> unit -> clock
(** A deterministic clock advancing [step] ns (default 1000) per
    reading, first reading [start] (default 0). *)

val set_clock : clock -> unit
val clock : unit -> clock
val now_ns : unit -> float

val with_clock : clock -> (unit -> 'a) -> 'a
(** Run [f] with the given clock installed, restoring the previous one
    afterwards (also on exceptions). *)

(** {1 Hot-path gate} *)

val timing_enabled : unit -> bool

val set_timing : bool -> unit
(** Per-call stub timing (two clock reads per encode/decode) is off by
    default so benchmarks measure the marshal code, not the meter.
    [flick stats] and [--trace-out] switch it on. *)

(** {1 Instruments} *)

exception Duplicate_metric of string

type counter

val counter : string -> counter
(** Register a monotonic counter.  @raise Duplicate_metric. *)

val incr : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
(** Sets the value and raises the high-water mark when exceeded. *)

val gauge_value : gauge -> float
val gauge_high_water : gauge -> float

type hist
(** Log-2-bucketed histogram (64 buckets, the last one absorbing
    overflow) — the right shape for nanoseconds and byte sizes. *)

val hist : string -> hist
val observe : hist -> float -> unit

val observe_ex : hist -> float -> exemplar:int -> unit
(** {!observe}, additionally retaining [exemplar] (a trace id; 0 means
    none) as the representative of the bucket the value lands in — the
    latest observation wins, so a p99 bucket always names a concrete
    request from the current run.  The per-bucket exemplar array is
    allocated on first use; plain histograms pay nothing. *)

val exemplar_at : hist -> float -> int option
(** The trace id retained in the bucket the given percentile's estimate
    falls into (falling back to the nearest populated bucket below when
    clamping moved the estimate), or [None] when no exemplar was
    recorded. *)

val exemplars : hist -> (int * int) list
(** All retained [(bucket index, trace id)] exemplars, ascending. *)

val bucket_counts : hist -> int array
(** A copy of the per-bucket occupancy counts (64 log-2 buckets). *)

val reset_hist : hist -> unit
(** Zero one histogram's samples and exemplars in place. *)

val percentile : hist -> float -> float
(** Sub-bucket estimate: the rank's bucket is found on the cumulative
    distribution, then interpolated linearly inside — samples are
    assumed uniform over the bucket's (lo, hi] span, recovering
    resolution on tight distributions that land in one or two buckets.
    Clamped into the observed [min, max]: empty histograms report 0, a
    single sample reports itself, and the overflow bucket reports the
    true maximum. *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p99_exemplar : int option;
      (** trace id retained in the p99 bucket, when one was recorded *)
}

val hist_summary : hist -> hist_summary

val probe : string -> (unit -> (string * float) list) -> unit
(** Register a pull-based source sampled at {!snapshot} time; each
    [(key, value)] pair renders as [name.key].  Lets existing stat
    registries (e.g. {!Plan_cache.all_stats}) surface here without
    double bookkeeping.  @raise Duplicate_metric. *)

(** {1 Snapshots and exporters} *)

type sample =
  | Scounter of string * int
  | Sgauge of string * float * float  (** value, high-water *)
  | Svalue of string * float  (** one probe reading *)
  | Shist of string * hist_summary

val snapshot : unit -> sample list
(** All instruments in registration order, probes sampled now. *)

val reset_all : unit -> unit
(** Zero every instrument's state; registrations survive. *)

val render_table : unit -> string
(** Human-readable table ([flick stats]), followed by any registered
    {!add_section} renderings that return non-empty text. *)

val add_section : (unit -> string) -> unit
(** Append a report section to {!render_table}'s output.  The renderer
    runs at render time and should return [""] when it has nothing to
    show, so unused subsystems leave the table untouched (the request
    recorder's phase breakdown registers itself this way). *)

val to_jsonl : unit -> string
(** One JSON object per line per instrument ([--metrics-out]). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (shared by
    the exporters here and in {!Obs_trace}). *)
