(** Forward stubs: fused decode→encode relaying for gateways.

    A forward stub consumes a [src]-encoded message from a reader and
    emits the same message [dst]-encoded into a writer, executing a
    fused {!Fplan.plan} instead of the decode-then-reencode pair:
    same-encoding runs move as bulk blits (or scatter-gather borrows of
    the receive buffer — zero bytes touched), differing-encoding
    scalars convert in place, and only genuinely reshaped fields
    materialize values through the embedded fallback plans.

    Parity contract: on each buffer separately the engine performs
    exactly what {!Stub_opt}'s decoder does on the source and its
    encoder does on the destination — same reads, masks,
    length/padding conventions, and typed errors ({!Codec.Decode_error}
    / [Mbuf.Short_buffer]).  Relayed output is byte-identical to
    decode-then-reencode; on malformed input both engines fail (the
    exception class may differ when fusion reorders a bounds check, as
    with the decode rewrites — see peephole.mli).

    Observability ({!Obs} counters): [forward.fused_runs] (executed
    fused runs), [forward.borrowed_bytes] / [forward.copied_bytes]
    (payload bytes relayed by reference vs. through memcpy — fixed
    header fields moved inside runs are not payload),
    [forward.fallback_fields] (materialize executions), and
    [forward.{promotions,staged_calls,interp_calls}] for the tier
    machinery. *)

type forward = Mbuf.reader -> Mbuf.t -> unit
(** Relay one message: consume it from the reader, emit it into the
    writer.  Raises {!Codec.Decode_error} or [Mbuf.Short_buffer] on
    malformed input; the writer's contents are then unspecified
    (gateways discard the in-progress reply frame). *)

val forward_plan :
  ?config:Opt_config.t ->
  src:Encoding.t ->
  dst:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  ?sg:bool ->
  ?sg_threshold:int ->
  Dplan_compile.droot list ->
  Plan_compile.root list ->
  Fplan.plan
(** {!Fplan_compile.fuse} followed by the forward pass pipeline
    ({!Pass.run_forward}): move coalescing, then loop collapse to
    counted blits.  This is what [flick dump-plan --forward] prints and
    what the differential tests execute. *)

val forward_of_plan : Fplan.plan -> forward
(** Tier 0: direct interpretation of the (already optimized) plan. *)

val staged_forward_of_plan : Fplan.plan -> forward option
(** Tier 1: the op closures fused into one call chain (no dispatch on
    the hot path).  [None] when the plan contains materialize fallbacks
    (their embedded plans may carry recursive subroutines); callers
    fall back to tier 0.  Byte-identical to {!forward_of_plan}. *)

val compile_forward :
  ?config:Opt_config.t ->
  src:Encoding.t ->
  dst:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Dplan_compile.droot list ->
  Plan_compile.root list ->
  forward
(** The front door: fuse, optimize, and cache.  Closures are cached
    under a key covering {e both} fingerprints (source message
    structure + destination encoding name), the scatter-gather policy,
    the pass selection, the tier policy, and the fusion enable flag —
    flipping any of them compiles fresh.  When staging is enabled
    ([FLICK_STAGE]), the returned closure self-promotes to the staged
    tier at {!Opt_config.stage_threshold} calls, with hotness surviving
    cache eviction (same contract as {!Stub_opt.compile_encoder}). *)
