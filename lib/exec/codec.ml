exception Decode_error of string

let as_int (v : Value.t) =
  match v with
  | Value.Vint n -> n
  | Value.Vbool b -> if b then 1 else 0
  | Value.Vchar c -> Char.code c
  | Value.Vint64 n -> Int64.to_int n
  | Value.Vvoid | Value.Vfloat _ | Value.Vstring _ | Value.Vbytes _
  | Value.Vstring_view _ | Value.Vbytes_view _ | Value.Vint_array _
  | Value.Varray _ | Value.Vopt _ | Value.Vstruct _ | Value.Vunion _ ->
      invalid_arg "Codec.as_int"

let as_int64 (v : Value.t) =
  match v with
  | Value.Vint64 n -> n
  | Value.Vint n -> Int64.of_int n
  | _ -> invalid_arg "Codec.as_int64"

let as_float (v : Value.t) =
  match v with Value.Vfloat f -> f | _ -> invalid_arg "Codec.as_float"

let int_of_value (atom : Mplan.atom) v =
  match atom.Mplan.kind with
  | Encoding.Kbool -> ( match v with Value.Vbool b -> (if b then 1 else 0) | _ -> as_int v)
  | Encoding.Kchar -> ( match v with Value.Vchar c -> Char.code c | _ -> as_int v)
  | Encoding.Kint _ -> as_int v
  | Encoding.Kfloat _ -> invalid_arg "Codec.int_of_value: float"

(* -- stores ---------------------------------------------------------- *)

let write_at buf ~be off (atom : Mplan.atom) v =
  match (atom.Mplan.kind, atom.Mplan.size) with
  | Encoding.Kfloat { bits = 32 }, _ ->
      if be then Mbuf.set_f32_be buf off (as_float v)
      else Mbuf.set_f32_le buf off (as_float v)
  | Encoding.Kfloat _, _ ->
      if be then Mbuf.set_f64_be buf off (as_float v)
      else Mbuf.set_f64_le buf off (as_float v)
  | Encoding.Kint { bits = 64; _ }, _ ->
      if be then Mbuf.set_i64_be buf off (as_int64 v)
      else Mbuf.set_i64_le buf off (as_int64 v)
  | _, 1 -> Mbuf.set_u8 buf off (int_of_value atom v)
  | _, 2 ->
      if be then Mbuf.set_i16_be buf off (int_of_value atom v)
      else Mbuf.set_i16_le buf off (int_of_value atom v)
  | _, 4 ->
      if be then Mbuf.set_i32_be buf off (int_of_value atom v)
      else Mbuf.set_i32_le buf off (int_of_value atom v)
  | _, n -> invalid_arg (Printf.sprintf "Codec.write_at: size %d" n)

let write_const_at buf ~be off (atom : Mplan.atom) value =
  match (atom.Mplan.kind, atom.Mplan.size) with
  | Encoding.Kint { bits = 64; _ }, _ ->
      if be then Mbuf.set_i64_be buf off value else Mbuf.set_i64_le buf off value
  | _, 1 -> Mbuf.set_u8 buf off (Int64.to_int value)
  | _, 2 ->
      if be then Mbuf.set_i16_be buf off (Int64.to_int value)
      else Mbuf.set_i16_le buf off (Int64.to_int value)
  | _, 4 ->
      if be then Mbuf.set_i32_be buf off (Int64.to_int value)
      else Mbuf.set_i32_le buf off (Int64.to_int value)
  | _, n -> invalid_arg (Printf.sprintf "Codec.write_const_at: size %d" n)

let write_stream buf ~be (atom : Mplan.atom) v =
  Mbuf.align buf atom.Mplan.align;
  Mbuf.ensure buf atom.Mplan.size;
  write_at buf ~be 0 atom v;
  Mbuf.advance buf atom.Mplan.size

(* -- reads ----------------------------------------------------------- *)

let sign_extend n bits =
  let shift = Sys.int_size - bits in
  (n lsl shift) asr shift

let read_at r ~be off (atom : Mplan.atom) : Value.t =
  match atom.Mplan.kind with
  | Encoding.Kfloat { bits = 32 } ->
      Value.Vfloat (if be then Mbuf.get_f32_be r off else Mbuf.get_f32_le r off)
  | Encoding.Kfloat _ ->
      Value.Vfloat (if be then Mbuf.get_f64_be r off else Mbuf.get_f64_le r off)
  | Encoding.Kint { bits = 64; _ } ->
      Value.Vint64 (if be then Mbuf.get_i64_be r off else Mbuf.get_i64_le r off)
  | Encoding.Kbool -> (
      let n =
        match atom.Mplan.size with
        | 1 -> Mbuf.get_u8 r off
        | 4 -> (if be then Mbuf.get_i32_be r off else Mbuf.get_i32_le r off)
        | n -> invalid_arg (Printf.sprintf "Codec: bool size %d" n)
      in
      match n with
      | 0 -> Value.Vbool false
      | 1 -> Value.Vbool true
      | n -> raise (Decode_error (Printf.sprintf "invalid boolean %d" n)))
  | Encoding.Kchar ->
      let n =
        match atom.Mplan.size with
        | 1 -> Mbuf.get_u8 r off
        | 4 -> (if be then Mbuf.get_i32_be r off else Mbuf.get_i32_le r off)
        | n -> invalid_arg (Printf.sprintf "Codec: char size %d" n)
      in
      if n < 0 || n > 255 then
        raise (Decode_error (Printf.sprintf "invalid character %d" n))
      else Value.Vchar (Char.chr n)
  | Encoding.Kint { bits; signed } ->
      let raw =
        match atom.Mplan.size with
        | 1 -> Mbuf.get_u8 r off
        | 2 -> (if be then Mbuf.get_i16_be r off else Mbuf.get_i16_le r off)
        | 4 -> (if be then Mbuf.get_i32_be r off else Mbuf.get_i32_le r off)
        | n -> invalid_arg (Printf.sprintf "Codec: int size %d" n)
      in
      let v =
        if signed then sign_extend raw bits
        else if bits >= 32 then raw land 0xFFFFFFFF
        else raw land ((1 lsl bits) - 1)
      in
      Value.Vint v

let read_stream r ~be (atom : Mplan.atom) =
  Mbuf.ralign r atom.Mplan.align;
  Mbuf.need r atom.Mplan.size;
  let v = read_at r ~be 0 atom in
  Mbuf.skip r atom.Mplan.size;
  v

(* -- shared length/padding helpers ----------------------------------- *)

let read_len r ~be ~align =
  Mbuf.ralign r align;
  let n = Mbuf.read_i32 r ~be in
  if n < 0 then raise (Decode_error "negative length");
  n

let check_bounds ~what n ~min_len ~max_len =
  if n < min_len then
    raise (Decode_error (Printf.sprintf "%s shorter than minimum" what));
  match max_len with
  | Some m when n > m ->
      raise (Decode_error (Printf.sprintf "%s exceeds its bound" what))
  | Some _ | None -> ()

let skip_pad r ~pad_unit n =
  let padded = (n + pad_unit - 1) / pad_unit * pad_unit in
  if padded > n then Mbuf.skip r (padded - n)

(* -- value-dependent wire formats ------------------------------------ *)

(* Encoding's variable-header hooks speak primitives (int64, bool,
   float); these wrappers fix the Value.t mapping once so every engine
   (plan-driven, staged, rpcgen-style, interpretive) emits and accepts
   exactly the same bytes.  Malformed-header errors surface as
   [Decode_error] like every other wire fault; truncation stays
   [Mbuf.Short_buffer]. *)

let wrap_var f = try f () with Encoding.Var_error m -> raise (Decode_error m)

let write_var (vc : Encoding.varcodec) ~check (kind : Encoding.atom_kind) buf v
    =
  match kind with
  | Encoding.Kbool ->
      let b = match v with Value.Vbool b -> b | _ -> as_int v <> 0 in
      vc.Encoding.v_put_bool ~check buf b
  | Encoding.Kchar ->
      let code =
        match v with
        | Value.Vchar c -> Char.code c
        | _ -> as_int v land 0xFF
      in
      vc.Encoding.v_put_int ~check ~signed:false buf (Int64.of_int code)
  | Encoding.Kint { bits; signed } ->
      (* truncate to the declared width first, the same round trip a
         fixed-size store performs *)
      let n = Encoding.canon_int ~bits ~signed (as_int64 v) in
      vc.Encoding.v_put_int ~check ~signed buf n
  | Encoding.Kfloat { bits } ->
      vc.Encoding.v_put_float ~check ~bits buf (as_float v)

let read_var (vc : Encoding.varcodec) (kind : Encoding.atom_kind) r : Value.t =
  wrap_var (fun () ->
      match kind with
      | Encoding.Kbool -> Value.Vbool (vc.Encoding.v_get_bool r)
      | Encoding.Kchar ->
          let n = vc.Encoding.v_get_int ~signed:false r in
          if Int64.unsigned_compare n 255L > 0 then
            raise (Decode_error (Printf.sprintf "invalid character %Ld" n));
          Value.Vchar (Char.chr (Int64.to_int n))
      | Encoding.Kint { bits; signed } ->
          let n = vc.Encoding.v_get_int ~signed r in
          if Encoding.canon_int ~bits ~signed n <> n then
            raise
              (Decode_error
                 (Printf.sprintf "integer %Ld out of range for %d-bit field" n
                    bits));
          if bits <= 32 then Value.Vint (Int64.to_int n) else Value.Vint64 n
      | Encoding.Kfloat { bits } ->
          Value.Vfloat (vc.Encoding.v_get_float ~bits r))

let write_vlen (vc : Encoding.varcodec) ~check (lk : Encoding.lenkind) buf n =
  vc.Encoding.v_put_len ~check buf lk n

let read_vlen (vc : Encoding.varcodec) (lk : Encoding.lenkind) r =
  wrap_var (fun () -> vc.Encoding.v_get_len r lk)

let const_to_value (c : Mint.const) : Value.t =
  match c with
  | Mint.Cint n -> Value.Vint (Int64.to_int n)
  | Mint.Cbool b -> Value.Vbool b
  | Mint.Cchar c -> Value.Vchar c
  | Mint.Cstring s -> Value.Vstring s

let const_matches (c : Mint.const) (v : Value.t) =
  match (c, v) with
  | Mint.Cint n, Value.Vint m -> Int64.to_int n = m
  | Mint.Cbool b, Value.Vbool b' -> b = b'
  | Mint.Cchar c, Value.Vchar c' -> c = c'
  | Mint.Cstring s, Value.Vstring s' -> String.equal s s'
  | _, _ -> false
