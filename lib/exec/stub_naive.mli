(** The rpcgen-style baseline stub engine (the code shape of the
    compilers Flick is measured against in section 4).

    Traditional IDL compilers emit stubs that "invoke separate functions
    to marshal or unmarshal each datum in a message", check buffer space
    before every atomic datum, bump a write pointer after each one, and
    copy aggregates component by component.  This engine reproduces that
    shape: one closure per datum, a checked append per datum, per-element
    array processing, and (optionally) character-by-character string
    copies.

    It produces byte-identical messages to {!Stub_opt} — only the work
    per byte differs — which is asserted by the qcheck equivalence
    property. *)

type config = {
  per_char_strings : bool;
      (** copy strings character by character (the shape the paper's
          memcpy optimization removes); [false] restores the blit, for
          the A3 ablation *)
  per_elem_arrays : bool;
      (** marshal scalar arrays one element (and one capacity check) at
          a time; [false] restores the single-reservation tight loop,
          for the A1/A5 ablations *)
}

val default_config : config
(** Both flags on: the full rpcgen shape. *)

val compile_encoder :
  ?config:config ->
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Plan_compile.root list ->
  Stub_opt.encoder

val compile_decoder :
  ?config:config ->
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Stub_opt.droot list ->
  Stub_opt.decoder
