let random ?(string_max = 24) ?(seq_max = 6) ?(depth_limit = 6) rng mint ~named
    root_idx root_pres =
  let rand_int bits signed =
    if signed then
      let bound = Int64.to_int (Int64.shift_left 1L (min (bits - 1) 31)) in
      Random.State.full_int rng (2 * bound) - bound
    else
      let bound = Int64.to_int (Int64.shift_left 1L (min bits 32)) in
      Random.State.full_int rng bound
  in
  let rand_char () = Char.chr (32 + Random.State.int rng 95) in
  let rand_string n =
    String.init (Random.State.int rng (n + 1)) (fun _ -> rand_char ())
  in
  let rec go depth idx (pres : Pres.t) : Value.t =
    let def = Mint.get mint idx in
    match (def, pres) with
    | _, Pres.Ref name -> (
        match List.assoc_opt name named with
        | None -> invalid_arg ("Workload.random: unknown presentation " ^ name)
        | Some (sidx, spres) -> go (depth + 1) sidx spres)
    | Mint.Void, _ -> Value.Vvoid
    | Mint.Bool, _ -> Value.Vbool (Random.State.bool rng)
    | Mint.Char8, _ -> Value.Vchar (rand_char ())
    | Mint.Int { bits = 64; signed = _ }, _ ->
        Value.Vint64 (Random.State.int64 rng Int64.max_int)
    | Mint.Int { bits; signed }, _ -> Value.Vint (rand_int bits signed)
    | Mint.Float { bits = 32 }, _ ->
        (* values exactly representable in single precision *)
        Value.Vfloat (float_of_int (Random.State.int rng 1000000))
    | Mint.Float _, _ ->
        Value.Vfloat (Random.State.float rng 1e9)
    | ( Mint.Array { elem = _; min_len = _; max_len },
        (Pres.Terminated_string | Pres.Terminated_string_len _) ) ->
        let bound = match max_len with Some b -> min b string_max | None -> string_max in
        Value.Vstring (rand_string bound)
    | Mint.Array { elem; min_len; max_len }, Pres.Fixed_array sub -> (
        ignore max_len;
        match Mint.get mint elem with
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            Value.Vbytes
              (Bytes.init min_len (fun _ ->
                   Char.chr (Random.State.int rng 256)))
        | Mint.Int { bits; signed } when bits <= 32 ->
            Value.Vint_array (Array.init min_len (fun _ -> rand_int bits signed))
        | _ -> Value.Varray (Array.init min_len (fun _ -> go (depth + 1) elem sub)))
    | Mint.Array { elem; min_len; max_len }, Pres.Counted_seq { elem = sub; _ }
      -> (
        let lo = min_len in
        let hi =
          match max_len with
          | Some b -> min b (lo + seq_max)
          | None -> lo + seq_max
        in
        let n =
          if depth > depth_limit then lo
          else lo + Random.State.int rng (hi - lo + 1)
        in
        match Mint.get mint elem with
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            Value.Vbytes
              (Bytes.init n (fun _ -> Char.chr (Random.State.int rng 256)))
        | Mint.Int { bits; signed } when bits <= 32 ->
            Value.Vint_array (Array.init n (fun _ -> rand_int bits signed))
        | _ -> Value.Varray (Array.init n (fun _ -> go (depth + 1) elem sub)))
    | Mint.Array { elem; _ }, Pres.Opt_ptr sub ->
        if depth > depth_limit || Random.State.bool rng then Value.Vopt None
        else Value.Vopt (Some (go (depth + 1) elem sub))
    | Mint.Struct fields, Pres.Struct arms ->
        Value.Vstruct
          (Array.of_list
             (List.map2
                (fun (_, fidx) (_, sub) -> go (depth + 1) fidx sub)
                fields arms))
    | Mint.Union { discrim = _; cases; default }, Pres.Union { arms; default_arm; _ }
      ->
        let n_cases = List.length cases in
        let with_default = default <> None && default_arm <> None in
        let pick = Random.State.int rng (n_cases + if with_default then 1 else 0) in
        if pick < n_cases then begin
          let case = List.nth cases pick in
          let _, sub = List.nth arms pick in
          Value.Vunion
            {
              case = pick;
              discrim = case.Mint.c_const;
              payload = go (depth + 1) case.Mint.c_body sub;
            }
        end
        else begin
          (* a discriminator value not covered by any labeled case *)
          let used =
            List.filter_map
              (fun (c : Mint.case) ->
                match c.Mint.c_const with
                | Mint.Cint n -> Some n
                | Mint.Cbool _ | Mint.Cchar _ | Mint.Cstring _ -> None)
              cases
          in
          let rec fresh candidate =
            if List.mem candidate used then fresh (Int64.add candidate 1L)
            else candidate
          in
          let didx = match default with Some d -> d | None -> assert false in
          let _, sub = match default_arm with Some a -> a | None -> assert false in
          Value.Vunion
            {
              case = -1;
              discrim = Mint.Cint (fresh 1000L);
              payload = go (depth + 1) didx sub;
            }
        end
    | (Mint.Array _ | Mint.Struct _ | Mint.Union _), _ ->
        invalid_arg "Workload.random: PRES does not match MINT"
  in
  go 0 root_idx root_pres

(* ------------------------------------------------------------------ *)
(* The paper's three evaluation payloads                                *)
(* ------------------------------------------------------------------ *)

let int_array bytes =
  let n = max 1 (bytes / 4) in
  Value.Vint_array (Array.init n (fun i -> (i * 2654435761) land 0x7FFFFFFF))

let rect_array bytes =
  let n = max 1 (bytes / 16) in
  let coord i j = Value.Vstruct [| Value.Vint (i + j); Value.Vint (i - j) |] in
  Value.Varray
    (Array.init n (fun i -> Value.Vstruct [| coord i 0; coord i 1 |]))

let dirent_name_length = 112

let dirent_array bytes =
  (* each encoded entry is roughly 256 bytes: a ~112-byte name (plus its
     length prefix and padding) and the fixed 136-byte stat structure *)
  let n = max 1 (bytes / 256) in
  let name i =
    let base = Printf.sprintf "file-%08d-" i in
    base ^ String.make (dirent_name_length - String.length base) 'x'
  in
  let stat i =
    Value.Vstruct
      [|
        Value.Vint_array (Array.init 30 (fun k -> (i * 31) + k));
        Value.Vbytes (Bytes.make 16 (Char.chr (65 + (i mod 26))));
      |]
  in
  Value.Varray
    (Array.init n (fun i -> Value.Vstruct [| Value.Vstring (name i); stat i |]))
