(* Every operation below re-examines the MINT graph and the PRES tree
   at marshal time — the defining cost of interpretive marshaling. *)

let round_up n unit = (n + unit - 1) / unit * unit

let rec encode ~(enc : Encoding.t) ~mint ~named idx (pres : Pres.t) buf
    (v : Value.t) =
  let be = enc.Encoding.big_endian in
  let hdr () =
    if enc.Encoding.typed_headers then begin
      Mbuf.align buf 4;
      Mbuf.put_i32 buf ~be (Int64.to_int 0x4D544450L)
    end
  in
  let put_len_k lk n =
    match enc.Encoding.var with
    | Some vcc -> Codec.write_vlen vcc ~check:true lk buf n
    | None ->
        Mbuf.align buf enc.Encoding.len_prefix.Encoding.align;
        Mbuf.put_i32 buf ~be n
  in
  let put_len n = put_len_k Encoding.Larr n in
  let put_scalar kind v =
    match enc.Encoding.var with
    | Some vcc -> Codec.write_var vcc ~check:true kind buf v
    | None -> Codec.write_stream buf ~be (Plan_compile.atom_of enc kind) v
  in
  let def = Mint.get mint idx in
  match (def, pres) with
  | _, Pres.Ref name -> (
      (* table lookup at every reference, every time *)
      match List.assoc_opt name named with
      | None -> invalid_arg ("Stub_interp: unknown presentation " ^ name)
      | Some (sidx, spres) -> encode ~enc ~mint ~named sidx spres buf v)
  | Mint.Void, _ -> ()
  | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
      match Encoding.atom_of_mint def with
      | Some kind ->
          hdr ();
          put_scalar kind v
      | None -> assert false)
  | Mint.Array { elem; min_len; max_len = _ }, _ -> (
      let pad_unit = enc.Encoding.pad_unit in
      match pres with
      | Pres.Terminated_string | Pres.Terminated_string_len _ -> (
          match v with
          | Value.Vstring s ->
              hdr ();
              let data =
                String.length s + if enc.Encoding.string_nul then 1 else 0
              in
              put_len_k Encoding.Lstr data;
              String.iter (fun c -> Mbuf.put_u8 buf (Char.code c)) s;
              for _ = 1 to round_up data pad_unit - String.length s do
                Mbuf.put_u8 buf 0
              done
          | _ -> invalid_arg "Stub_interp: expected a string")
      | Pres.Opt_ptr sub -> (
          hdr ();
          match v with
          | Value.Vopt None -> put_len 0
          | Value.Vopt (Some p) ->
              put_len 1;
              encode ~enc ~mint ~named elem sub buf p
          | _ -> invalid_arg "Stub_interp: expected an optional")
      | Pres.Fixed_array sub | Pres.Counted_seq { elem = sub; _ } -> (
          let counted =
            match pres with Pres.Counted_seq _ -> true | _ -> false
          in
          match (Mint.get mint elem, v) with
          | (Mint.Char8 | Mint.Int { bits = 8; _ }), Value.Vbytes b ->
              hdr ();
              let len = Bytes.length b in
              if (not counted) && len <> min_len then
                invalid_arg "Stub_interp: fixed array length mismatch";
              if counted then put_len_k Encoding.Lbin len;
              Bytes.iter (fun c -> Mbuf.put_u8 buf (Char.code c)) b;
              for _ = 1 to round_up len pad_unit - len do
                Mbuf.put_u8 buf 0
              done
          | _, Value.Vint_array a ->
              hdr ();
              if counted then put_len (Array.length a);
              let kind =
                match Encoding.atom_of_mint (Mint.get mint elem) with
                | Some kind -> kind
                | None -> invalid_arg "Stub_interp: int array of aggregates"
              in
              Array.iter (fun x -> put_scalar kind (Value.Vint x)) a
          | _, Value.Varray a -> (
              hdr ();
              if counted then put_len (Array.length a);
              (* one descriptor covers the whole run: atomic elements do
                 not repeat it *)
              match Encoding.atom_of_mint (Mint.get mint elem) with
              | Some kind -> Array.iter (fun e -> put_scalar kind e) a
              | None ->
                  Array.iter (fun e -> encode ~enc ~mint ~named elem sub buf e) a)
          | _, _ -> invalid_arg "Stub_interp: expected an array")
      | Pres.Direct | Pres.Enum_direct | Pres.Struct _ | Pres.Union _
      | Pres.Void | Pres.Ref _ ->
          invalid_arg "Stub_interp: array PRES mismatch")
  | Mint.Struct fields, Pres.Struct arms -> (
      match v with
      | Value.Vstruct a ->
          List.iteri
            (fun i ((_, fidx), (_, sub)) ->
              encode ~enc ~mint ~named fidx sub buf a.(i))
            (List.combine fields arms)
      | _ -> invalid_arg "Stub_interp: expected a struct")
  | ( Mint.Union { discrim; cases; default },
      Pres.Union { arms; default_arm; _ } ) -> (
      match v with
      | Value.Vunion u -> (
          hdr ();
          (match Encoding.atom_of_mint (Mint.get mint discrim) with
          | Some kind -> put_scalar kind (Codec.const_to_value u.discrim)
          | None -> (
              match u.discrim with
              | Mint.Cstring key ->
                  let data =
                    String.length key + if enc.Encoding.string_nul then 1 else 0
                  in
                  put_len_k Encoding.Lstr data;
                  String.iter (fun c -> Mbuf.put_u8 buf (Char.code c)) key;
                  for _ = 1 to round_up data enc.Encoding.pad_unit - String.length key do
                    Mbuf.put_u8 buf 0
                  done
              | Mint.Cint _ | Mint.Cbool _ | Mint.Cchar _ ->
                  invalid_arg "Stub_interp: non-string key"));
          if u.case >= 0 then begin
            let case = List.nth cases u.case in
            let _, sub = List.nth arms u.case in
            encode ~enc ~mint ~named case.Mint.c_body sub buf u.payload
          end
          else
            match (default, default_arm) with
            | Some didx, Some (_, sub) ->
                encode ~enc ~mint ~named didx sub buf u.payload
            | _, _ -> invalid_arg "Stub_interp: default without default arm")
      | _ -> invalid_arg "Stub_interp: expected a union")
  | (Mint.Struct _ | Mint.Union _), _ ->
      invalid_arg "Stub_interp: PRES does not match MINT"

let compile_encoder ~enc ~mint ~named roots : Stub_opt.encoder =
  let be = enc.Encoding.big_endian in
  fun buf params ->
    List.iter
      (fun (root : Plan_compile.root) ->
        match root with
        | Plan_compile.Rconst_int (value, kind) -> (
            match enc.Encoding.var with
            | Some vcc ->
                Codec.write_var vcc ~check:true kind buf (Value.Vint64 value)
            | None ->
                if enc.Encoding.typed_headers then begin
                  Mbuf.align buf 4;
                  Mbuf.put_i32 buf ~be (Int64.to_int 0x4D544450L)
                end;
                Codec.write_stream buf ~be (Plan_compile.atom_of enc kind)
                  (Value.Vint (Int64.to_int value)))
        | Plan_compile.Rconst_str s -> (
            match enc.Encoding.var with
            | Some vcc ->
                Codec.write_vlen vcc ~check:true Encoding.Lstr buf
                  (String.length s);
                String.iter (fun c -> Mbuf.put_u8 buf (Char.code c)) s
            | None ->
                if enc.Encoding.typed_headers then begin
                  Mbuf.align buf 4;
                  Mbuf.put_i32 buf ~be (Int64.to_int 0x4D544450L)
                end;
                let data =
                  String.length s + if enc.Encoding.string_nul then 1 else 0
                in
                Mbuf.align buf enc.Encoding.len_prefix.Encoding.align;
                Mbuf.put_i32 buf ~be data;
                String.iter (fun c -> Mbuf.put_u8 buf (Char.code c)) s;
                for _ = 1 to round_up data enc.Encoding.pad_unit - String.length s do
                  Mbuf.put_u8 buf 0
                done)
        | Plan_compile.Rvalue (rv, idx, pres) -> (
            match rv with
            | Mplan.Rparam { index; _ } ->
                encode ~enc ~mint ~named idx pres buf params.(index)
            | _ -> invalid_arg "Stub_interp: roots must be parameters"))
      roots

(* Decoding interprets the type graph the same way.  The per-datum reads
   reuse the naive engine's checked discipline; what distinguishes this
   engine is that nothing is precompiled, so we simply rebuild the naive
   decoder closures on every message. *)
let compile_decoder ~enc ~mint ~named droots : Stub_opt.decoder =
  fun r ->
    let d =
      Stub_naive.compile_decoder ~config:Stub_naive.default_config ~enc ~mint
        ~named droots
    in
    d r
