(** Runtime values for the executable stub engine.

    The engine plays the role of the C programs that call
    Flick-generated stubs: values model the presented C data structures
    (the substitution DESIGN.md documents).  Every engine — optimized,
    rpcgen-style, and interpretive — marshals and unmarshals exactly
    these values, so their byte streams and timings are directly
    comparable.

    The representation of a (MINT, PRES) pair is fixed by {!rep_kind}:
    scalar arrays use the unboxed {!Vint_array}/{!Vbytes} forms (the
    targets of the paper's memcpy optimization), aggregate arrays use
    boxed {!Varray} (which is why rectangle arrays marshal slower than
    integer arrays, as in the paper's Figure 3). *)

type view = { v_base : bytes; v_off : int; v_len : int }
(** A borrowed byte range.  The decoder's zero-copy forms
    ({!Vstring_view}, {!Vbytes_view}) alias the receive buffer through
    one of these instead of copying the payload out; see the aliasing
    contract on [Mbuf.view_bytes] for how long the range stays valid
    and {!materialize} for converting to owned storage. *)

type t =
  | Vvoid
  | Vbool of bool
  | Vchar of char
  | Vint of int  (** integers up to 32 bits; unsigned values in [0, 2^32) *)
  | Vint64 of int64
  | Vfloat of float
  | Vstring of string  (** NUL-terminated [char *] *)
  | Vbytes of bytes  (** packed octet/char array *)
  | Vstring_view of view
      (** zero-copy string payload aliasing the receive buffer *)
  | Vbytes_view of view
      (** zero-copy octet payload aliasing the receive buffer *)
  | Vint_array of int array  (** array of scalars up to 32 bits *)
  | Varray of t array
  | Vopt of t option
  | Vstruct of t array
  | Vunion of { case : int; discrim : Mint.const; payload : t }
      (** [case] indexes the MINT union's case list; [-1] selects the
          default arm, with [discrim] carrying the wire tag *)

val string_of_view : view -> string
val bytes_of_view : view -> bytes

val materialize : t -> t
(** Deep-copy every view into owned {!Vstring}/{!Vbytes} storage.
    Identity on view-free values.  Call this before the buffer behind a
    view is invalidated (see the [Mbuf] aliasing contracts) or when a
    value must outlive its message. *)

type kind =
  | Kvoid
  | Kbool
  | Kchar
  | Kint
  | Kint64
  | Kfloat
  | Kstring
  | Kbytes
  | Kint_array of Encoding.atom_kind  (** element kind *)
  | Karray
  | Kopt
  | Kstruct
  | Kunion

val rep_kind : Mint.t -> Mint.idx -> Pres.t -> kind
(** The canonical runtime representation for a MINT/PRES pair.
    {!Pres.Ref} nodes are resolved by the caller before use; passing one
    raises [Invalid_argument]. *)

val equal : t -> t -> bool
(** Content equality: a view form equals the copy form holding the same
    bytes ([Vstring_view] vs [Vstring], [Vbytes_view] vs [Vbytes]), so
    differential checks compare zero-copy and copying decodes
    directly.  Floats compare NaN-tolerantly. *)

val pp : Format.formatter -> t -> unit

val byte_size : t -> int
(** Approximate payload size in bytes (used to label benchmark series by
    message size). *)
