(* The forward stub engine: executes fused forward plans ({!Fplan}),
   relaying a src-encoded message into a dst-encoded buffer without
   materializing values except at F_materialize fallbacks.

   Parity contract: on each buffer separately, this engine performs
   exactly the operations Stub_opt's decoder performs on the source and
   Stub_opt's encoder performs on the destination — same reads, same
   masks, same length/padding conventions, same typed errors.  The
   differential qcheck suite in test/test_forward.ml pins relayed
   output byte-identical to decode-then-reencode on every encoding
   pair, and failure parity on truncated/corrupted input. *)

type forward = Mbuf.reader -> Mbuf.t -> unit

(* Copy-elision accounting: [borrowed_bytes] moved by reference (zero
   bytes touched), [copied_bytes] crossed through memcpy — payload
   transfers only, small fixed-field moves inside fused runs are not
   payload.  [fallback_fields] counts executions of materialize ops. *)
let fused_runs = Obs.counter "forward.fused_runs"
let borrowed_bytes = Obs.counter "forward.borrowed_bytes"
let copied_bytes = Obs.counter "forward.copied_bytes"
let fallback_fields = Obs.counter "forward.fallback_fields"
let bswap_runs = Obs.counter "forward.bswap_runs"
let bswap_bytes = Obs.counter "forward.bswap_bytes"
let fwd_promotions = Obs.counter "forward.promotions"
let fwd_staged_calls = Obs.counter "forward.staged_calls"
let fwd_interp_calls = Obs.counter "forward.interp_calls"

let account ~len borrowed =
  if borrowed > 0 then Obs.incr borrowed_bytes borrowed;
  if len - borrowed > 0 then Obs.incr copied_bytes (len - borrowed)

let round_up n u = (n + u - 1) / u * u

(* Byte-reverse each 32-bit lane of a 64-bit word: two array elements
   endian-swapped per load on the relay's hottest convert shape. *)
let swap32x2 x =
  let open Int64 in
  logor
    (logor
       (shift_left (logand x 0x000000FF000000FFL) 24)
       (shift_left (logand x 0x0000FF000000FF00L) 8))
    (logor
       (logand (shift_right_logical x 8) 0x0000FF000000FF00L)
       (logand (shift_right_logical x 24) 0x000000FF000000FFL))

let counter_of ~be (c : Fplan.fcount) : Mbuf.reader -> int =
  match c with
  | Fplan.Fc_fixed n -> fun _ -> n
  | Fplan.Fc_wire { min_len; max_len; what } ->
      fun r ->
        let n = Codec.read_len r ~be ~align:4 in
        Codec.check_bounds ~what n ~min_len ~max_len;
        n

(* Put_len / Put_atom_array length-word shape: aligned to 4, then the
   count under the destination's byte order. *)
let write_len ~be w n =
  Mbuf.align w 4;
  Mbuf.ensure w 4;
  (if be then Mbuf.set_i32_be w 0 n else Mbuf.set_i32_le w 0 n);
  Mbuf.advance w 4

(* Put_string / Put_byteseq length word: no self-alignment (the plan
   carries any needed Align as an explicit op). *)
let write_raw_len ~be w n =
  Mbuf.ensure w 4;
  (if be then Mbuf.set_i32_be w 0 n else Mbuf.set_i32_le w 0 n);
  Mbuf.advance w 4

let zero_tail w tail =
  if tail > 0 then begin
    Mbuf.ensure w tail;
    Mbuf.fill_zero w 0 tail;
    Mbuf.advance w tail
  end

let compile_move ~src_be ~dst_be (m : Fplan.fmove) :
    Mbuf.reader -> Mbuf.t -> unit =
  match m with
  | Fplan.Fm_copy { src_off; dst_off; len } ->
      fun r w -> Mbuf.copy_at r src_off w dst_off len
  | Fplan.Fm_convert { src_off; src_atom; dst_off; dst_atom } ->
      fun r w ->
        Codec.write_at w ~be:dst_be dst_off dst_atom
          (Codec.read_at r ~be:src_be src_off src_atom)
  | Fplan.Fm_check { src_off; atom; value = expect } ->
      fun r _ ->
        let got =
          match Codec.read_at r ~be:src_be src_off atom with
          | Value.Vint n -> Int64.of_int n
          | Value.Vint64 n -> n
          | Value.Vbool b -> if b then 1L else 0L
          | Value.Vchar c -> Int64.of_int (Char.code c)
          | _ -> raise (Codec.Decode_error "bad constant")
        in
        if got <> expect then
          raise
            (Codec.Decode_error
               (Printf.sprintf "expected constant %Ld, found %Ld" expect got))
  | Fplan.Fm_const { dst_off; atom; value } ->
      fun _ w -> Codec.write_const_at w ~be:dst_be dst_off atom value
  | Fplan.Fm_zero { dst_off; len } -> fun _ w -> Mbuf.fill_zero w dst_off len

(* The 32-bit-integer decode fast path, exactly as the plan decoder
   runs it: one alignment, one bounds check, unchecked loads, then the
   signedness mask. *)
let read_i32s ~be ~signed ~bits r n =
  Mbuf.ralign r 4;
  Mbuf.need r (n * 4);
  let out = Array.make n 0 in
  (if be then
     for i = 0 to n - 1 do
       Array.unsafe_set out i (Mbuf.get_i32_be r (i * 4))
     done
   else
     for i = 0 to n - 1 do
       Array.unsafe_set out i (Mbuf.get_i32_le r (i * 4))
     done);
  Mbuf.skip r (n * 4);
  if signed || bits > 32 then out
  else if bits = 32 then Array.map (fun x -> x land 0xFFFFFFFF) out
  else Array.map (fun x -> x land ((1 lsl bits) - 1)) out

let rec compile_op ~(src : Encoding.t) ~(dst : Encoding.t) (op : Fplan.fop) :
    Mbuf.reader -> Mbuf.t -> unit =
  let src_be = src.Encoding.big_endian and dst_be = dst.Encoding.big_endian in
  match op with
  | Fplan.F_src_align n -> fun r _ -> Mbuf.ralign r n
  | Fplan.F_dst_align n -> fun _ w -> Mbuf.align w n
  | Fplan.F_run { src_size; dst_size; src_check; dst_check; moves } ->
      let fns =
        Array.of_list (List.map (compile_move ~src_be ~dst_be) moves)
      in
      let k = Array.length fns in
      fun r w ->
        if src_check && src_size > 0 then Mbuf.need r src_size;
        if dst_check && dst_size > 0 then Mbuf.ensure w dst_size;
        for i = 0 to k - 1 do
          (Array.unsafe_get fns i) r w
        done;
        if src_size > 0 then Mbuf.skip r src_size;
        if dst_size > 0 then Mbuf.advance w dst_size;
        Obs.incr fused_runs 1
  | Fplan.F_blit { len; src_pad; dst_tail; borrow } ->
      fun r w ->
        account ~len (Mbuf.transfer ~borrow r w len);
        zero_tail w dst_tail;
        Codec.skip_pad r ~pad_unit:src_pad len
  | Fplan.F_string { max_len; src_nul; dst_nul; src_pad; dst_pad; borrow } ->
      fun r w ->
        let wire_len = Codec.read_len r ~be:src_be ~align:4 in
        let data_len = if src_nul then wire_len - 1 else wire_len in
        if data_len < 0 then raise (Codec.Decode_error "bad string length");
        Codec.check_bounds ~what:"string" data_len ~min_len:0 ~max_len;
        let ddata = data_len + if dst_nul then 1 else 0 in
        write_raw_len ~be:dst_be w ddata;
        account ~len:data_len (Mbuf.transfer ~borrow r w data_len);
        zero_tail w (round_up ddata dst_pad - data_len);
        if src_nul then Mbuf.skip r 1;
        Codec.skip_pad r ~pad_unit:src_pad wire_len
  | Fplan.F_const_str { s; src_nul; src_pad; image } ->
      let n = String.length image in
      fun r w ->
        let wire_len = Codec.read_len r ~be:src_be ~align:4 in
        let data_len = if src_nul then wire_len - 1 else wire_len in
        if data_len < 0 then raise (Codec.Decode_error "bad key length");
        let key = Mbuf.read_string r data_len in
        if src_nul then Mbuf.skip r 1;
        Codec.skip_pad r ~pad_unit:src_pad wire_len;
        if key <> s then
          raise
            (Codec.Decode_error
               (Printf.sprintf "expected key %S, found %S" s key));
        Mbuf.ensure w n;
        Mbuf.set_string w 0 image 0 n;
        Mbuf.advance w n
  | Fplan.F_byteseq { count; emit_len; src_pad; dst_pad; borrow } ->
      let get_n = counter_of ~be:src_be count in
      fun r w ->
        let n = get_n r in
        if emit_len then write_raw_len ~be:dst_be w n;
        account ~len:n (Mbuf.transfer ~borrow r w n);
        zero_tail w (round_up n dst_pad - n);
        Codec.skip_pad r ~pad_unit:src_pad n
  | Fplan.F_atom_array
      { count; emit_len; src_atom; dst_atom; dst_packed; blit; borrow } -> (
      let get_n = counter_of ~be:src_be count in
      let ssize = src_atom.Mplan.size and dsize = dst_atom.Mplan.size in
      let s_fast =
        match (src_atom.Mplan.kind, ssize) with
        | Encoding.Kint { bits; _ }, 4 -> bits <= 32
        | _, _ -> false
      in
      let d_fast =
        match (dst_atom.Mplan.kind, dsize) with
        | Encoding.Kint { bits; _ }, 4 -> bits <= 32
        | _, _ -> false
      in
      (* destination-side preamble, exactly as the plan encoder's
         Put_atom_array (or, for [dst_packed], a chunk item run, which
         has no dynamic alignment at all) *)
      let dst_pre w n =
        if emit_len then write_len ~be:dst_be w n;
        if (not d_fast) && (not dst_packed) && n > 0 then
          Mbuf.align w dst_atom.Mplan.align
      in
      (* a convert run whose two layouts differ only in byte order is a
         pure per-element byte reversal (cdr -> fluke ints): swap two
         32-bit lanes per 64-bit word instead of materializing an int
         array and re-encoding element by element.  Same alignment,
         bounds checks and advances as the s_fast/d_fast convert path,
         so the relayed bytes and failure behavior are identical. *)
      let pure_swap32 =
        (not blit) && s_fast && d_fast && src_be <> dst_be
        &&
        match (src_atom.Mplan.kind, dst_atom.Mplan.kind) with
        | Encoding.Kint { bits = 32; _ }, Encoding.Kint { bits = 32; _ } ->
            true
        | _, _ -> false
      in
      if blit then
        (* same bytes under both encodings: bulk transfer, with the
           source side's alignment behavior replicated per path *)
        fun r w ->
          let n = get_n r in
          dst_pre w n;
          if s_fast then Mbuf.ralign r 4
          else if n > 0 then Mbuf.ralign r src_atom.Mplan.align;
          account ~len:(n * ssize) (Mbuf.transfer ~borrow r w (n * ssize))
      else if pure_swap32 then
        fun r w ->
          let n = get_n r in
          dst_pre w n;
          Mbuf.ralign r 4;
          let total = n * 4 in
          Mbuf.need r total;
          Mbuf.ensure w total;
          for i = 0 to (n / 2) - 1 do
            Mbuf.set_i64_be w (i * 8) (swap32x2 (Mbuf.get_i64_be r (i * 8)))
          done;
          if n land 1 = 1 then begin
            let off = n / 2 * 8 in
            Mbuf.set_i32_le w off (Mbuf.get_i32_be r off)
          end;
          Mbuf.skip r total;
          Mbuf.advance w total;
          Obs.incr bswap_runs 1;
          Obs.incr bswap_bytes total
      else
        (* convert: read exactly as the decoder, write exactly as the
           encoder, per-element *)
        match (s_fast, src_atom.Mplan.kind) with
        | true, Encoding.Kint { bits; signed } ->
            fun r w ->
              let n = get_n r in
              dst_pre w n;
              let elems = read_i32s ~be:src_be ~signed ~bits r n in
              if d_fast then begin
                let set =
                  if dst_be then Mbuf.set_i32_be w else Mbuf.set_i32_le w
                in
                Mbuf.ensure w (n * 4);
                for i = 0 to n - 1 do
                  set (i * 4) (Array.unsafe_get elems i)
                done;
                Mbuf.advance w (n * 4)
              end
              else begin
                Mbuf.ensure w (n * dsize);
                for i = 0 to n - 1 do
                  Codec.write_at w ~be:dst_be (i * dsize) dst_atom
                    (Value.Vint (Array.unsafe_get elems i))
                done;
                Mbuf.advance w (n * dsize)
              end
        | _, _ ->
            fun r w ->
              let n = get_n r in
              dst_pre w n;
              let elems = Array.make (max n 1) Value.Vvoid in
              for i = 0 to n - 1 do
                Array.unsafe_set elems i (Codec.read_stream r ~be:src_be src_atom)
              done;
              if d_fast then begin
                let set =
                  if dst_be then Mbuf.set_i32_be w else Mbuf.set_i32_le w
                in
                Mbuf.ensure w (n * 4);
                for i = 0 to n - 1 do
                  set (i * 4) (Codec.as_int (Array.unsafe_get elems i))
                done;
                Mbuf.advance w (n * 4)
              end
              else begin
                Mbuf.ensure w (n * dsize);
                for i = 0 to n - 1 do
                  Codec.write_at w ~be:dst_be (i * dsize) dst_atom
                    (Array.unsafe_get elems i)
                done;
                Mbuf.advance w (n * dsize)
              end)
  | Fplan.F_counted_blit { count; emit_len; unit_size; borrow } ->
      let get_n = counter_of ~be:src_be count in
      fun r w ->
        let n = get_n r in
        if emit_len then write_len ~be:dst_be w n;
        Mbuf.need r (n * unit_size);
        account ~len:(n * unit_size) (Mbuf.transfer ~borrow r w (n * unit_size))
  | Fplan.F_loop { count; emit_len; src_ensure; dst_ensure; body } ->
      let get_n = counter_of ~be:src_be count in
      let fns = compile_ops ~src ~dst body in
      let k = Array.length fns in
      fun r w ->
        let n = get_n r in
        if emit_len then write_len ~be:dst_be w n;
        (match src_ensure with Some u -> Mbuf.need r (n * u) | None -> ());
        (match dst_ensure with Some u -> Mbuf.ensure w (n * u) | None -> ());
        for _ = 1 to n do
          for i = 0 to k - 1 do
            (Array.unsafe_get fns i) r w
          done
        done
  | Fplan.F_opt { body } ->
      let fns = compile_ops ~src ~dst body in
      let k = Array.length fns in
      fun r w ->
        Mbuf.ralign r 4;
        let at = Mbuf.rpos r in
        let n = Codec.read_len r ~be:src_be ~align:4 in
        if n <> 0 && n <> 1 then
          raise
            (Codec.Decode_error
               (Printf.sprintf "optional count %d at byte %d" n at));
        write_len ~be:dst_be w n;
        if n = 1 then
          for i = 0 to k - 1 do
            (Array.unsafe_get fns i) r w
          done
  | Fplan.F_materialize { dplan; mplan; _ } ->
      let dec = Stub_opt.decoder_of_dplan ~enc:src dplan in
      let re = Stub_opt.encoder_of_plan ~enc:dst mplan in
      fun r w ->
        let vals = dec r in
        Obs.incr fallback_fields 1;
        re w vals

and compile_ops ~src ~dst ops =
  Array.of_list (List.map (compile_op ~src ~dst) ops)

(* ------------------------------------------------------------------ *)
(* Plan-level entry points and the tiered front door                    *)
(* ------------------------------------------------------------------ *)

let forward_plan ?config ~src ~dst ~mint ~named ?sg ?sg_threshold droots roots
    =
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  let plan =
    Fplan_compile.fuse ~config ~src ~dst ~mint ~named ?sg ?sg_threshold droots
      roots
  in
  Pass.run_forward ~config plan

let forward_of_plan (p : Fplan.plan) : forward =
  let fns = compile_ops ~src:p.Fplan.f_src ~dst:p.Fplan.f_dst p.Fplan.f_ops in
  let k = Array.length fns in
  fun r w ->
    for i = 0 to k - 1 do
      (Array.unsafe_get fns i) r w
    done

let rec has_materialize ops =
  List.exists
    (fun (op : Fplan.fop) ->
      match op with
      | Fplan.F_materialize _ -> true
      | Fplan.F_loop { body; _ } | Fplan.F_opt { body } -> has_materialize body
      | _ -> false)
    ops

(* Tier 1: fuse the closure list into one left-nested chain — no array
   dispatch on the hot path.  Declined (like the staged encoder on
   plans with subroutines) when the plan falls back to materialization:
   the embedded plans may carry recursive subroutines. *)
let staged_forward_of_plan (p : Fplan.plan) : forward option =
  if has_materialize p.Fplan.f_ops then None
  else begin
    let fns = compile_ops ~src:p.Fplan.f_src ~dst:p.Fplan.f_dst p.Fplan.f_ops in
    let chain =
      Array.fold_left
        (fun acc f ->
          match acc with
          | None -> Some f
          | Some g -> Some (fun r w -> g r w; f r w))
        None fns
    in
    match chain with None -> Some (fun _ _ -> ()) | Some f -> Some f
  end

let forward_cache : forward Plan_cache.t =
  Plan_cache.create ~name:"stub_forward" ()

(* Tier promotion, cloned from Stub_opt's tiered encoder: a stable
   wrapper counts calls through the cache's hotness counter and swaps
   its target to the staged chain at the stage threshold. *)
let tiered ~key (tier0 : forward) (staged : forward) : forward =
  let threshold = Opt_config.stage_threshold () in
  let calls = Plan_cache.hotness forward_cache key in
  let promoted = ref (!calls >= threshold) in
  if !promoted then Obs.incr fwd_promotions 1;
  let self = ref tier0 in
  let wrapper r w =
    if !promoted then begin
      Obs.incr fwd_staged_calls 1;
      staged r w
    end
    else begin
      Obs.incr fwd_interp_calls 1;
      incr calls;
      tier0 r w;
      if !calls >= threshold then begin
        promoted := true;
        Obs.incr fwd_promotions 1;
        Plan_cache.promote forward_cache key !self
      end
    end
  in
  self := wrapper;
  wrapper

let compile_forward ?config ~(src : Encoding.t) ~(dst : Encoding.t) ~mint
    ~named droots roots : forward =
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  let fp = Plan_cache.fp_create ~enc:src ~mint ~named () in
  (* both sides' structure is in the key: the source fingerprint seeds
     it, the destination encoding, scatter-gather policy, pass
     selection, tier policy, and the fusion enable flag tag it *)
  Plan_cache.fp_tag fp
    (Printf.sprintf "fwd:dst=%s,sg=%b,%d,%s,%s,%s" dst.Encoding.name
       (Mbuf.sg_enabled ())
       (Mbuf.borrow_threshold ())
       (Opt_config.selection_fingerprint config)
       (Opt_config.stage_fingerprint ())
       (Fplan_compile.fingerprint ()));
  List.iter (Plan_cache.fp_droot fp) droots;
  List.iter (Plan_cache.fp_root fp) roots;
  let key = Plan_cache.fp_contents fp in
  Plan_cache.find_or_add forward_cache key (fun () ->
      let plan = forward_plan ~config ~src ~dst ~mint ~named droots roots in
      let tier0 = forward_of_plan plan in
      if not (Opt_config.stage_enabled ()) then tier0
      else
        match staged_forward_of_plan plan with
        | None -> tier0
        | Some staged -> tiered ~key tier0 staged)
