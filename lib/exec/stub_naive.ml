type config = { per_char_strings : bool; per_elem_arrays : bool }

let default_config = { per_char_strings = true; per_elem_arrays = true }

(* Per-call latency/size histograms, same shape as Stub_opt's so
   [flick stats] shows the engines side by side. *)
let encode_ns = Obs.hist "stub_naive.encode_ns"
let encode_bytes = Obs.hist "stub_naive.encode_bytes"
let decode_ns = Obs.hist "stub_naive.decode_ns"
let decode_bytes = Obs.hist "stub_naive.decode_bytes"

let array_length (v : Value.t) =
  match v with
  | Value.Vstring s -> String.length s
  | Value.Vbytes b -> Bytes.length b
  | Value.Vint_array a -> Array.length a
  | Value.Varray a -> Array.length a
  | Value.Vopt None -> 0
  | Value.Vopt (Some _) -> 1
  | _ -> invalid_arg "Stub_naive.array_length"

(* ------------------------------------------------------------------ *)
(* Encoding: one closure and one checked append per datum               *)
(* ------------------------------------------------------------------ *)

let compile_value_encoder cfg (enc : Encoding.t) mint named :
    Mint.idx -> Pres.t -> Mbuf.t -> Value.t -> unit =
  let be = enc.Encoding.big_endian in
  let vc = enc.Encoding.var in
  let atom_of kind = Plan_compile.atom_of enc kind in
  let len_align = enc.Encoding.len_prefix.Encoding.align in
  let hdr buf =
    if enc.Encoding.typed_headers then begin
      Mbuf.align buf 4;
      Mbuf.put_i32 buf ~be (Int64.to_int 0x4D544450L)
    end
  in
  (* counts carry their container kind under a value-dependent encoding
     (string/bytes/array heads differ); fixed encodings ignore it *)
  let put_len_k lk buf n =
    match vc with
    | Some vcc -> Codec.write_vlen vcc ~check:true lk buf n
    | None ->
        Mbuf.align buf len_align;
        Mbuf.put_i32 buf ~be n
  in
  let put_len = put_len_k Encoding.Larr in
  let put_scalar kind : Mbuf.t -> Value.t -> unit =
    match vc with
    | Some vcc -> fun buf v -> Codec.write_var vcc ~check:true kind buf v
    | None ->
        let atom = atom_of kind in
        fun buf v -> Codec.write_stream buf ~be atom v
  in
  let put_pad buf n =
    (* traditional stubs emit pad bytes one at a time too *)
    for _ = 1 to n do
      Mbuf.put_u8 buf 0
    done
  in
  let put_string_body buf s data_len =
    let slen = String.length s in
    if cfg.per_char_strings then begin
      for i = 0 to slen - 1 do
        Mbuf.put_u8 buf (Char.code (String.unsafe_get s i))
      done;
      put_pad buf (data_len - slen)
    end
    else begin
      Mbuf.ensure buf data_len;
      Mbuf.set_string buf 0 s 0 slen;
      Mbuf.fill_zero buf slen (data_len - slen);
      Mbuf.advance buf data_len
    end
  in
  let subs : (string, (Mbuf.t -> Value.t -> unit) ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let rec enc_val idx (pres : Pres.t) : Mbuf.t -> Value.t -> unit =
    let def = Mint.get mint idx in
    match (def, pres) with
    | _, Pres.Ref name -> (
        match Hashtbl.find_opt subs name with
        | Some cell -> fun buf v -> !cell buf v
        | None -> (
            match List.assoc_opt name named with
            | None -> invalid_arg ("Stub_naive: unknown presentation " ^ name)
            | Some (sidx, spres) ->
                let cell = ref (fun _ _ -> ()) in
                Hashtbl.add subs name cell;
                let f = enc_val sidx spres in
                cell := f;
                fun buf v -> !cell buf v))
    | Mint.Void, _ -> fun _ _ -> ()
    | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
        match Encoding.atom_of_mint def with
        | Some kind ->
            let put = put_scalar kind in
            fun buf v ->
              hdr buf;
              put buf v
        | None -> assert false)
    | Mint.Array { elem; min_len; max_len }, _ ->
        enc_array ~elem ~min_len ~max_len pres
    | Mint.Struct fields, Pres.Struct arms ->
        let fns =
          Array.of_list
            (List.map2 (fun (_, fidx) (_, sub) -> enc_val fidx sub) fields arms)
        in
        fun buf v ->
          let a = match v with
            | Value.Vstruct a -> a
            | _ -> invalid_arg "Stub_naive: expected a struct"
          in
          for i = 0 to Array.length fns - 1 do
            fns.(i) buf a.(i)
          done
    | ( Mint.Union { discrim; cases; default },
        Pres.Union { arms; default_arm; _ } ) ->
        let datom = Encoding.atom_of_mint (Mint.get mint discrim) in
        let arm_fns =
          List.map2
            (fun (c : Mint.case) (_, sub) -> enc_val c.Mint.c_body sub)
            cases arms
          |> Array.of_list
        in
        let default_fn =
          match (default, default_arm) with
          | Some didx, Some (_, sub) -> Some (enc_val didx sub)
          | None, None -> None
          | _, _ -> invalid_arg "Stub_naive: PRES/MINT default mismatch"
        in
        fun buf v ->
          (match v with
          | Value.Vunion u ->
              hdr buf;
              (match datom with
              | Some kind ->
                  put_scalar kind buf (Codec.const_to_value u.discrim)
              | None -> (
                  match u.discrim with
                  | Mint.Cstring key ->
                      let data =
                        String.length key
                        + if enc.Encoding.string_nul then 1 else 0
                      in
                      let padded =
                        (data + enc.Encoding.pad_unit - 1)
                        / enc.Encoding.pad_unit * enc.Encoding.pad_unit
                      in
                      put_len_k Encoding.Lstr buf data;
                      put_string_body buf key data;
                      put_pad buf (padded - data)
                  | Mint.Cint _ | Mint.Cbool _ | Mint.Cchar _ ->
                      invalid_arg "Stub_naive: non-string key"));
              if u.case >= 0 then arm_fns.(u.case) buf u.payload
              else (
                match default_fn with
                | Some f -> f buf u.payload
                | None -> invalid_arg "Stub_naive: default without default arm")
          | _ -> invalid_arg "Stub_naive: expected a union")
    | (Mint.Struct _ | Mint.Union _), _ ->
        invalid_arg "Stub_naive: PRES does not match MINT"
  and enc_array ~elem ~min_len ~max_len (pres : Pres.t) =
    ignore max_len;
    let pad_unit = enc.Encoding.pad_unit in
    match pres with
    | Pres.Terminated_string | Pres.Terminated_string_len _ ->
        fun buf v ->
          let s = match v with
            | Value.Vstring s -> s
            | _ -> invalid_arg "Stub_naive: expected a string"
          in
          hdr buf;
          let data = String.length s + if enc.Encoding.string_nul then 1 else 0 in
          let padded = (data + pad_unit - 1) / pad_unit * pad_unit in
          put_len_k Encoding.Lstr buf data;
          put_string_body buf s data;
          put_pad buf (padded - data)
    | Pres.Opt_ptr sub ->
        let f = enc_val elem sub in
        fun buf v ->
          hdr buf;
          (match v with
          | Value.Vopt None -> put_len buf 0
          | Value.Vopt (Some p) ->
              put_len buf 1;
              f buf p
          | _ -> invalid_arg "Stub_naive: expected an optional")
    | Pres.Fixed_array sub -> (
        match Mint.get mint elem with
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            fun buf v ->
              hdr buf;
              let b = match v with
                | Value.Vbytes b -> b
                | _ -> invalid_arg "Stub_naive: expected bytes"
              in
              let len = Bytes.length b in
              if len <> min_len then
                invalid_arg "Stub_naive: fixed array length mismatch";
              let padded = (len + pad_unit - 1) / pad_unit * pad_unit in
              if cfg.per_char_strings then begin
                for i = 0 to len - 1 do
                  Mbuf.put_u8 buf (Char.code (Bytes.unsafe_get b i))
                done;
                put_pad buf (padded - len)
              end
              else begin
                Mbuf.ensure buf padded;
                Mbuf.set_bytes buf 0 b 0 len;
                Mbuf.fill_zero buf len (padded - len);
                Mbuf.advance buf padded
              end
        | Mint.Int { bits; _ }
          when bits = 32 && not cfg.per_elem_arrays && enc.Encoding.var = None ->
            (* ablation: the single-reservation tight loop of section 3.1 *)
            let atom = atom_of (Encoding.Kint { bits; signed = true }) in
            tight_int_loop atom ~with_len:false
        | _ ->
            let f = elem_encoder elem sub in
            fun buf v ->
              hdr buf;
              elements f buf v)
    | Pres.Counted_seq { elem = sub; _ } -> (
        match Mint.get mint elem with
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            fun buf v ->
              hdr buf;
              let b = match v with
                | Value.Vbytes b -> b
                | _ -> invalid_arg "Stub_naive: expected bytes"
              in
              let len = Bytes.length b in
              let padded = (len + pad_unit - 1) / pad_unit * pad_unit in
              put_len_k Encoding.Lbin buf len;
              if cfg.per_char_strings then begin
                for i = 0 to len - 1 do
                  Mbuf.put_u8 buf (Char.code (Bytes.unsafe_get b i))
                done;
                put_pad buf (padded - len)
              end
              else begin
                Mbuf.ensure buf padded;
                Mbuf.set_bytes buf 0 b 0 len;
                Mbuf.fill_zero buf len (padded - len);
                Mbuf.advance buf padded
              end
        | Mint.Int { bits; _ }
          when bits = 32 && not cfg.per_elem_arrays && enc.Encoding.var = None ->
            let atom = atom_of (Encoding.Kint { bits; signed = true }) in
            tight_int_loop atom ~with_len:true
        | _ ->
            let f = elem_encoder elem sub in
            fun buf v ->
              hdr buf;
              put_len buf (array_length v);
              elements f buf v)
    | Pres.Direct | Pres.Enum_direct | Pres.Struct _ | Pres.Union _
    | Pres.Void | Pres.Ref _ ->
        invalid_arg "Stub_naive: array PRES mismatch"
  (* array elements carry no Mach descriptor of their own: one
     descriptor covers the whole run *)
  and elem_encoder elem sub =
    match Encoding.atom_of_mint (Mint.get mint elem) with
    | Some kind -> put_scalar kind
    | None -> enc_val elem sub
  and tight_int_loop atom ~with_len buf v =
    match v with
    | Value.Vint_array a ->
        hdr buf;
        let n = Array.length a in
        if with_len then put_len buf n;
        Mbuf.align buf atom.Mplan.align;
        Mbuf.ensure buf (n * atom.Mplan.size);
        (if enc.Encoding.big_endian then
           for i = 0 to n - 1 do
             Mbuf.set_i32_be buf (i * 4) (Array.unsafe_get a i)
           done
         else
           for i = 0 to n - 1 do
             Mbuf.set_i32_le buf (i * 4) (Array.unsafe_get a i)
           done);
        Mbuf.advance buf (n * atom.Mplan.size)
    | _ -> invalid_arg "Stub_naive: expected an int array"
  and elements f buf (v : Value.t) =
    (* one closure invocation per element: the traditional shape *)
    match v with
    | Value.Vint_array a ->
        for i = 0 to Array.length a - 1 do
          f buf (Value.Vint (Array.unsafe_get a i))
        done
    | Value.Varray a ->
        for i = 0 to Array.length a - 1 do
          f buf (Array.unsafe_get a i)
        done
    | _ -> invalid_arg "Stub_naive: expected an array"
  in
  fun idx pres -> enc_val idx pres

let compile_encoder ?(config = default_config) ~enc ~mint ~named roots :
    Stub_opt.encoder =
  let be = enc.Encoding.big_endian in
  let enc_val = compile_value_encoder config enc mint named in
  let atom_of kind = Plan_compile.atom_of enc kind in
  let hdr buf =
    if enc.Encoding.typed_headers then begin
      Mbuf.align buf 4;
      Mbuf.put_i32 buf ~be (Int64.to_int 0x4D544450L)
    end
  in
  let steps =
    List.map
      (fun (root : Plan_compile.root) ->
        match root with
        | Plan_compile.Rconst_int (value, kind) -> (
            match enc.Encoding.var with
            | Some vcc ->
                `Const
                  (fun buf ->
                    Codec.write_var vcc ~check:true kind buf (Value.Vint64 value))
            | None ->
                let atom = atom_of kind in
                `Const
                  (fun buf ->
                    hdr buf;
                    Codec.write_stream buf ~be atom
                      (Value.Vint (Int64.to_int value))))
        | Plan_compile.Rconst_str s ->
            let data = String.length s + if enc.Encoding.string_nul then 1 else 0 in
            let padded =
              (data + enc.Encoding.pad_unit - 1)
              / enc.Encoding.pad_unit * enc.Encoding.pad_unit
            in
            `Const
              (match enc.Encoding.var with
              | Some vcc ->
                  fun buf ->
                    Codec.write_vlen vcc ~check:true Encoding.Lstr buf
                      (String.length s);
                    String.iter (fun c -> Mbuf.put_u8 buf (Char.code c)) s
              | None ->
                  fun buf ->
                    hdr buf;
                    Mbuf.align buf enc.Encoding.len_prefix.Encoding.align;
                    Mbuf.put_i32 buf ~be data;
                    String.iter (fun c -> Mbuf.put_u8 buf (Char.code c)) s;
                    for _ = 1 to padded - String.length s do
                      Mbuf.put_u8 buf 0
                    done)
        | Plan_compile.Rvalue (rv, idx, pres) ->
            let index =
              match rv with
              | Mplan.Rparam { index; _ } -> index
              | _ -> invalid_arg "Stub_naive: roots must be parameters"
            in
            let f = enc_val idx pres in
            `Param (index, f))
      roots
  in
  Stub_opt.instrument_encoder encode_ns encode_bytes (fun buf params ->
      List.iter
        (fun step ->
          match step with
          | `Const f -> f buf
          | `Param (i, f) -> f buf params.(i))
        steps)

(* ------------------------------------------------------------------ *)
(* Decoding: one closure and one checked read per datum                 *)
(* ------------------------------------------------------------------ *)

let compile_value_decoder cfg (enc : Encoding.t) mint named :
    Mint.idx -> Pres.t -> Mbuf.reader -> Value.t =
  let be = enc.Encoding.big_endian in
  let atom_of kind = Plan_compile.atom_of enc kind in
  let hdr r =
    if enc.Encoding.typed_headers then begin
      Mbuf.ralign r 4;
      Mbuf.skip r 4
    end
  in
  (* length/bounds/padding come from the shared Codec helpers, the same
     ones the optimized engine runs — one definition of the wire rules *)
  let vc = enc.Encoding.var in
  let read_len_k lk r =
    match vc with
    | Some vcc -> Codec.read_vlen vcc lk r
    | None ->
        Codec.read_len r ~be ~align:enc.Encoding.len_prefix.Encoding.align
  in
  let read_len = read_len_k Encoding.Larr in
  let read_scalar kind : Mbuf.reader -> Value.t =
    match vc with
    | Some vcc -> fun r -> Codec.read_var vcc kind r
    | None ->
        let atom = atom_of kind in
        fun r -> Codec.read_stream r ~be atom
  in
  let read_string_body r data_len =
    if cfg.per_char_strings then begin
      let b = Bytes.create data_len in
      for i = 0 to data_len - 1 do
        Bytes.unsafe_set b i (Char.chr (Mbuf.read_u8 r))
      done;
      b
    end
    else Mbuf.read_bytes r data_len
  in
  let check_max what n max_len =
    Codec.check_bounds ~what n ~min_len:0 ~max_len
  in
  let subs : (string, (Mbuf.reader -> Value.t) ref) Hashtbl.t = Hashtbl.create 4 in
  let rec dec idx (pres : Pres.t) : Mbuf.reader -> Value.t =
    let def = Mint.get mint idx in
    match (def, pres) with
    | _, Pres.Ref name -> (
        match Hashtbl.find_opt subs name with
        | Some cell -> fun r -> !cell r
        | None -> (
            match List.assoc_opt name named with
            | None -> invalid_arg ("Stub_naive: unknown presentation " ^ name)
            | Some (sidx, spres) ->
                let cell = ref (fun _ -> Value.Vvoid) in
                Hashtbl.add subs name cell;
                let d = dec sidx spres in
                cell := d;
                fun r -> !cell r))
    | Mint.Void, _ -> fun _ -> Value.Vvoid
    | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
        match Encoding.atom_of_mint def with
        | Some kind ->
            let get = read_scalar kind in
            fun r ->
              hdr r;
              get r
        | None -> assert false)
    | Mint.Array { elem; min_len; max_len }, _ ->
        dec_array ~elem ~min_len ~max_len pres
    | Mint.Struct fields, Pres.Struct arms ->
        let decs =
          Array.of_list
            (List.map2 (fun (_, fidx) (_, sub) -> dec fidx sub) fields arms)
        in
        fun r ->
          let n = Array.length decs in
          let out = Array.make n Value.Vvoid in
          for i = 0 to n - 1 do
            out.(i) <- decs.(i) r
          done;
          Value.Vstruct out
    | ( Mint.Union { discrim; cases; default },
        Pres.Union { arms; default_arm; _ } ) ->
        let datom = Encoding.atom_of_mint (Mint.get mint discrim) in
        (* linear compare chain: the traditional dispatch shape *)
        let arm_list =
          List.map2
            (fun (i, (c : Mint.case)) (_, sub) ->
              (c.Mint.c_const, i, dec c.Mint.c_body sub))
            (List.mapi (fun i c -> (i, c)) cases)
            arms
        in
        let default_dec =
          match (default, default_arm) with
          | Some didx, Some (_, sub) -> Some (dec didx sub)
          | None, None -> None
          | _, _ -> invalid_arg "Stub_naive: PRES/MINT default mismatch"
        in
        fun r ->
          hdr r;
          let const : Mint.const =
            match datom with
            | Some kind -> (
                match read_scalar kind r with
                | Value.Vint n -> Mint.Cint (Int64.of_int n)
                | Value.Vbool b -> Mint.Cbool b
                | Value.Vchar c -> Mint.Cchar c
                | _ -> raise (Codec.Decode_error "bad discriminator"))
            | None ->
                let wire_len = read_len_k Encoding.Lstr r in
                let data_len =
                  if enc.Encoding.string_nul then wire_len - 1 else wire_len
                in
                if data_len < 0 then raise (Codec.Decode_error "bad key length");
                let key = Bytes.to_string (read_string_body r data_len) in
                if enc.Encoding.string_nul then Mbuf.skip r 1;
                Codec.skip_pad r ~pad_unit:enc.Encoding.pad_unit wire_len;
                Mint.Cstring key
          in
          let rec find = function
            | [] -> (
                match default_dec with
                | Some d ->
                    Value.Vunion { case = -1; discrim = const; payload = d r }
                | None ->
                    raise
                      (Codec.Decode_error
                         (Format.asprintf "unknown discriminator %a"
                            Mint.pp_const const)))
            | (c, i, d) :: rest ->
                if Mint.equal_const c const then
                  Value.Vunion { case = i; discrim = const; payload = d r }
                else find rest
          in
          find arm_list
    | (Mint.Struct _ | Mint.Union _), _ ->
        invalid_arg "Stub_naive: PRES does not match MINT"
  and dec_array ~elem ~min_len ~max_len (pres : Pres.t) =
    let pad_unit = enc.Encoding.pad_unit in
    let skip_pad r n = Codec.skip_pad r ~pad_unit n in
    match pres with
    | Pres.Terminated_string | Pres.Terminated_string_len _ ->
        fun r ->
          hdr r;
          let wire_len = read_len_k Encoding.Lstr r in
          let data_len =
            if enc.Encoding.string_nul then wire_len - 1 else wire_len
          in
          if data_len < 0 then raise (Codec.Decode_error "bad string length");
          check_max "string" data_len max_len;
          let b = read_string_body r data_len in
          if enc.Encoding.string_nul then Mbuf.skip r 1;
          skip_pad r wire_len;
          Value.Vstring (Bytes.to_string b)
    | Pres.Opt_ptr sub -> (
        let d = dec elem sub in
        fun r ->
          hdr r;
          Mbuf.ralign r enc.Encoding.len_prefix.Encoding.align;
          let at = Mbuf.rpos r in
          match read_len r with
          | 0 -> Value.Vopt None
          | 1 -> Value.Vopt (Some (d r))
          | n ->
              raise
                (Codec.Decode_error
                   (Printf.sprintf "optional count %d at byte %d" n at)))
    | Pres.Fixed_array sub -> (
        match Mint.get mint elem with
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            fun r ->
              hdr r;
              let b = read_string_body r min_len in
              skip_pad r min_len;
              Value.Vbytes b
        | _ ->
            let d = elem_decoder elem sub in
            let as_int_array =
              match Mint.get mint elem with
              | Mint.Int { bits; _ } when bits <= 32 -> true
              | _ -> false
            in
            fun r ->
              hdr r;
              decode_elements d r min_len as_int_array)
    | Pres.Counted_seq { elem = sub; _ } -> (
        match Mint.get mint elem with
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            fun r ->
              hdr r;
              let n = read_len_k Encoding.Lbin r in
              check_max "sequence" n max_len;
              let b = read_string_body r n in
              skip_pad r n;
              Value.Vbytes b
        | _ ->
            let d = elem_decoder elem sub in
            let as_int_array =
              match Mint.get mint elem with
              | Mint.Int { bits; _ } when bits <= 32 -> true
              | _ -> false
            in
            fun r ->
              hdr r;
              let n = read_len r in
              check_max "sequence" n max_len;
              decode_elements d r n as_int_array)
    | Pres.Direct | Pres.Enum_direct | Pres.Struct _ | Pres.Union _
    | Pres.Void | Pres.Ref _ ->
        invalid_arg "Stub_naive: array PRES mismatch"
  and elem_decoder elem sub =
    (* array elements carry no Mach descriptor of their own *)
    match Encoding.atom_of_mint (Mint.get mint elem) with
    | Some kind -> read_scalar kind
    | None -> dec elem sub
  and decode_elements d r n as_int_array =
    if as_int_array then begin
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        out.(i) <- Codec.as_int (d r)
      done;
      Value.Vint_array out
    end
    else begin
      let out = Array.make n Value.Vvoid in
      for i = 0 to n - 1 do
        out.(i) <- d r
      done;
      Value.Varray out
    end
  in
  fun idx pres -> dec idx pres

let compile_decoder ?(config = default_config) ~enc ~mint ~named droots :
    Stub_opt.decoder =
  let be = enc.Encoding.big_endian in
  let dec_val = compile_value_decoder config enc mint named in
  let atom_of kind = Plan_compile.atom_of enc kind in
  let hdr r =
    if enc.Encoding.typed_headers then begin
      Mbuf.ralign r 4;
      Mbuf.skip r 4
    end
  in
  let steps =
    List.map
      (fun (droot : Stub_opt.droot) ->
        match droot with
        | Stub_opt.Dconst_int (expect, kind) ->
            let get =
              match enc.Encoding.var with
              | Some vcc -> fun r -> Codec.read_var vcc kind r
              | None ->
                  let atom = atom_of kind in
                  fun r -> Codec.read_stream r ~be atom
            in
            `Skip
              (fun r ->
                hdr r;
                let got =
                  match get r with
                  | Value.Vint n -> Int64.of_int n
                  | Value.Vint64 n -> n
                  | Value.Vbool b -> if b then 1L else 0L
                  | Value.Vchar c -> Int64.of_int (Char.code c)
                  | _ -> raise (Codec.Decode_error "bad constant")
                in
                if got <> expect then
                  raise (Codec.Decode_error "constant mismatch"))
        | Stub_opt.Dconst_str expect when enc.Encoding.var <> None ->
            let vcc = Option.get enc.Encoding.var in
            `Skip
              (fun r ->
                hdr r;
                let n = Codec.read_vlen vcc Encoding.Lstr r in
                let key = Mbuf.read_string r n in
                if key <> expect then
                  raise (Codec.Decode_error "operation key mismatch"))
        | Stub_opt.Dconst_str expect ->
            `Skip
              (fun r ->
                hdr r;
                Mbuf.ralign r enc.Encoding.len_prefix.Encoding.align;
                let wire_len = Mbuf.read_i32 r ~be in
                let data_len =
                  if enc.Encoding.string_nul then wire_len - 1 else wire_len
                in
                if data_len < 0 then raise (Codec.Decode_error "bad key length");
                let key = Mbuf.read_string r data_len in
                if enc.Encoding.string_nul then Mbuf.skip r 1;
                let padded =
                  (wire_len + enc.Encoding.pad_unit - 1)
                  / enc.Encoding.pad_unit * enc.Encoding.pad_unit
                in
                if padded > wire_len then Mbuf.skip r (padded - wire_len);
                if key <> expect then
                  raise (Codec.Decode_error "operation key mismatch"))
        | Stub_opt.Dvalue (idx, pres) -> `Value (dec_val idx pres))
      droots
  in
  Stub_opt.instrument_decoder decode_ns decode_bytes (fun r ->
      let out = ref [] in
      List.iter
        (fun step ->
          match step with `Skip f -> f r | `Value d -> out := d r :: !out)
        steps;
      Array.of_list (List.rev !out))
