type encoder = Mbuf.t -> Value.t array -> unit
type decoder = Mbuf.reader -> Value.t array

type droot =
  | Dconst_int of int64 * Encoding.atom_kind
  | Dconst_str of string
  | Dvalue of Mint.idx * Pres.t

type env = { params : Value.t array; vars : Value.t array }

let value_len (v : Value.t) =
  match v with
  | Value.Vstring s -> String.length s
  | Value.Vbytes b -> Bytes.length b
  | Value.Vstring_view v | Value.Vbytes_view v -> v.Value.v_len
  | Value.Vint_array a -> Array.length a
  | Value.Varray a -> Array.length a
  | Value.Vopt None -> 0
  | Value.Vopt (Some _) -> 1
  | Value.Vvoid | Value.Vbool _ | Value.Vchar _ | Value.Vint _
  | Value.Vint64 _ | Value.Vfloat _ | Value.Vstruct _ | Value.Vunion _ ->
      invalid_arg "Stub_opt.value_len"

(* ------------------------------------------------------------------ *)
(* rv evaluation, precompiled to closure chains                         *)
(* ------------------------------------------------------------------ *)

let rec compile_rv (rv : Mplan.rv) : env -> Value.t =
  match rv with
  | Mplan.Rparam { index; _ } -> fun e -> e.params.(index)
  | Mplan.Rvar i -> fun e -> e.vars.(i)
  | Mplan.Rfield { base; index; _ } -> (
      let b = compile_rv base in
      fun e ->
        match b e with
        | Value.Vstruct a -> a.(index)
        | Value.Varray a -> a.(index)
        | Value.Vint_array a -> Value.Vint a.(index)
        | Value.Vbytes s -> Value.Vchar (Bytes.get s index)
        | _ -> invalid_arg "Stub_opt: Rfield over a non-aggregate")
  | Mplan.Rarm { base; case; _ } -> (
      let b = compile_rv base in
      fun e ->
        match b e with
        | Value.Vunion u ->
            if u.case <> case then
              invalid_arg "Stub_opt: union payload case mismatch"
            else u.payload
        | _ -> invalid_arg "Stub_opt: Rarm over a non-union")
  | Mplan.Ropt base -> (
      let b = compile_rv base in
      fun e ->
        match b e with
        | Value.Vopt (Some v) -> v
        | _ -> invalid_arg "Stub_opt: Ropt over empty optional")
  | Mplan.Rdiscrim { base; _ } -> (
      let b = compile_rv base in
      fun e ->
        match b e with
        | Value.Vunion u -> Codec.const_to_value u.discrim
        | _ -> invalid_arg "Stub_opt: Rdiscrim over a non-union")

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let max_var ops =
  let m = ref (-1) in
  let rec go ops =
    List.iter
      (fun (op : Mplan.op) ->
        match op with
        | Mplan.Loop { var; body; _ } ->
            if var > !m then m := var;
            go body
        | Mplan.Switch { arms; default; _ } ->
            List.iter (fun (a : Mplan.arm) -> go a.Mplan.a_body) arms;
            (match default with None -> () | Some (_, b) -> go b)
        | Mplan.Align _ | Mplan.Chunk _ | Mplan.Ensure_count _
        | Mplan.Put_const_str _ | Mplan.Put_string _ | Mplan.Put_byteseq _
        | Mplan.Put_atom_array _ | Mplan.Put_blit _ | Mplan.Put_len _
        | Mplan.Put_varhead _ | Mplan.Call _ ->
            ())
      ops
  in
  go ops;
  !m

(* Precompute the byte image of a constant counted string. *)
let const_str_image ~be s nul pad_count =
  let data = String.length s + if nul then 1 else 0 in
  let total = 4 + data + pad_count in
  let b = Bytes.make total '\000' in
  if be then Bytes.set_int32_be b 0 (Int32.of_int data)
  else Bytes.set_int32_le b 0 (Int32.of_int data);
  Bytes.blit_string s 0 b 4 (String.length s);
  b


(* A loop body of the form [Align a?; Chunk items] whose items all read
   from the loop element can be fused into one store sequence per
   element.  Items must cover the whole chunk (no gaps) for the fused
   writer to skip zero-filling; chunks with static padding fall back to
   the generic path. *)
let rec rooted_at_var ~var (rv : Mplan.rv) =
  match rv with
  | Mplan.Rvar v -> v = var
  | Mplan.Rfield { base; _ } -> rooted_at_var ~var base
  | Mplan.Rarm _ | Mplan.Ropt _ | Mplan.Rdiscrim _ | Mplan.Rparam _ -> false

let gapless size (items : Mplan.item list) =
  let covered =
    List.map
      (fun (it : Mplan.item) ->
        match it with
        | Mplan.It_atom { off; atom; _ } -> (off, off + atom.Mplan.size)
        | Mplan.It_bytes { off; len; pad; _ } -> (off, off + len + pad)
        | Mplan.It_const { off; atom; _ } -> (off, off + atom.Mplan.size))
      items
    |> List.sort compare
  in
  let rec walk pos = function
    | [] -> pos = size
    | (s, e) :: rest -> s = pos && walk (max pos e) rest
  in
  walk 0 covered

let item_src_ok ~var (it : Mplan.item) =
  match it with
  | Mplan.It_atom { src; _ } | Mplan.It_bytes { src; _ } ->
      rooted_at_var ~var src
  | Mplan.It_const _ -> true

let fused_loop_body ~var (body : Mplan.op list) =
  let chunk = function
    | Mplan.Chunk { size; items; check = false; align = _ }
      when gapless size items && List.for_all (item_src_ok ~var) items ->
        Some (size, items)
    | _ -> None
  in
  match body with
  | [ op ] -> Option.map (fun (size, items) -> (1, size, items)) (chunk op)
  | [ Mplan.Align a; op ] ->
      Option.map (fun (size, items) -> (a, size, items)) (chunk op)
  | _ -> None

(* navigation from the loop element, with the environment cut away *)
let rec compile_elem_path ~var (rv : Mplan.rv) : Value.t -> Value.t =
  match rv with
  | Mplan.Rvar v when v = var -> fun v' -> v'
  | Mplan.Rfield { base; index; _ } -> (
      let b = compile_elem_path ~var base in
      fun e ->
        match b e with
        | Value.Vstruct a -> Array.unsafe_get a index
        | Value.Varray a -> a.(index)
        | Value.Vint_array a -> Value.Vint a.(index)
        | Value.Vbytes s -> Value.Vchar (Bytes.get s index)
        | _ -> invalid_arg "Stub_opt: Rfield over a non-aggregate")
  | _ -> invalid_arg "Stub_opt: unsupported fused path"

(* One chunk item, compiled to a store at its constant offset.  Shared
   between the tier-0 chunk writer and the tier-1 staged chunks (which
   regroup items but keep this form for whatever does not fuse). *)
let compile_item ~be (it : Mplan.item) : Mbuf.t -> env -> unit =
  match it with
  | Mplan.It_const { off; atom; value } ->
      fun buf _ -> Codec.write_const_at buf ~be off atom value
  | Mplan.It_bytes { off; len; pad; src } -> (
      let a = compile_rv src in
      fun buf env ->
        (match a env with
        | Value.Vbytes b ->
            if Bytes.length b <> len then
              invalid_arg "Stub_opt: fixed byte array length mismatch"
            else Mbuf.set_bytes buf off b 0 len
        | Value.Vstring s -> Mbuf.set_string buf off s 0 len
        | Value.Vbytes_view w | Value.Vstring_view w ->
            if w.Value.v_len <> len then
              invalid_arg "Stub_opt: fixed byte array length mismatch"
            else Mbuf.set_bytes buf off w.Value.v_base w.Value.v_off len
        | _ -> invalid_arg "Stub_opt: It_bytes over non-bytes");
        if pad > 0 then Mbuf.fill_zero buf (off + len) pad)
  | Mplan.It_atom { off; atom; src } -> (
      let a = compile_rv src in
      (* specialize the hot 32-bit case *)
      match (atom.Mplan.kind, atom.Mplan.size) with
      | Encoding.Kint { bits; _ }, 4 when bits <= 32 ->
          if be then fun buf env -> Mbuf.set_i32_be buf off (Codec.as_int (a env))
          else fun buf env -> Mbuf.set_i32_le buf off (Codec.as_int (a env))
      | _, _ -> fun buf env -> Codec.write_at buf ~be off atom (a env))

let compile_ops ~(enc : Encoding.t) ~subs ops : (Mbuf.t -> env -> unit) list =
  let be = enc.Encoding.big_endian in
  let vc = enc.Encoding.var in
  (* emit a precomputed wire image; with [check:false] the bytes ride a
     covering reservation, exactly like an unchecked chunk *)
  let put_image ~check img =
    let n = String.length img in
    if check then fun buf (_ : env) ->
      Mbuf.ensure buf n;
      Mbuf.set_string buf 0 img 0 n;
      Mbuf.advance buf n
    else fun buf (_ : env) ->
      Mbuf.set_string buf 0 img 0 n;
      Mbuf.advance buf n
  in
  let rec compile_op (op : Mplan.op) : Mbuf.t -> env -> unit =
    match op with
    | Mplan.Align n -> fun buf _ -> Mbuf.align buf n
    | Mplan.Chunk { size; items; check; align = _ } ->
        let writers = List.map (compile_item ~be) items in
        (* zero the spans items do not cover (alignment gaps) *)
        let gaps =
          let covered =
            List.map
              (fun (it : Mplan.item) ->
                match it with
                | Mplan.It_atom { off; atom; _ } -> (off, off + atom.Mplan.size)
                | Mplan.It_bytes { off; len; pad; _ } -> (off, off + len + pad)
                | Mplan.It_const { off; atom; _ } -> (off, off + atom.Mplan.size))
              items
            |> List.sort compare
          in
          let rec walk pos acc = function
            | [] -> if pos < size then (pos, size - pos) :: acc else acc
            | (s, e) :: rest ->
                let acc = if s > pos then (pos, s - pos) :: acc else acc in
                walk (max pos e) acc rest
          in
          List.rev (walk 0 [] covered)
        in
        fun buf env ->
          if check then Mbuf.ensure buf size;
          List.iter (fun (off, len) -> Mbuf.fill_zero buf off len) gaps;
          List.iter (fun w -> w buf env) writers;
          Mbuf.advance buf size
    | Mplan.Ensure_count { arr; unit_size; via = _ } ->
        let a = compile_rv arr in
        fun buf env -> Mbuf.ensure buf (value_len (a env) * unit_size)
    | Mplan.Put_const_str { s; nul = _; pad = _ } when vc <> None ->
        let vcc = Option.get vc in
        put_image ~check:true
          (vcc.Encoding.v_len_image Encoding.Lstr (String.length s) ^ s)
    | Mplan.Put_const_str { s; nul; pad } ->
        let image = const_str_image ~be s nul pad in
        let n = Bytes.length image in
        fun buf _ ->
          Mbuf.ensure buf n;
          Mbuf.set_bytes buf 0 image 0 n;
          Mbuf.advance buf n
    | Mplan.Put_string { src; _ } when vc <> None ->
        let vcc = Option.get vc in
        let a = compile_rv src in
        (* value-dependent header, then the unpadded payload; the header
           emit carries its own worst-case check *)
        fun buf env ->
          let s =
            match a env with
            | Value.Vstring s -> s
            | Value.Vstring_view v -> Value.string_of_view v
            | _ -> invalid_arg "Stub_opt: Put_string over a non-string"
          in
          let n = String.length s in
          Codec.write_vlen vcc ~check:true Encoding.Lstr buf n;
          Mbuf.ensure buf n;
          Mbuf.set_string buf 0 s 0 n;
          Mbuf.advance buf n
    | Mplan.Put_string { src; nul; pad; len_src = _; borrow } ->
        let a = compile_rv src in
        (* the borrow decision is baked in when the closure is built —
           the encoder fingerprint keys on the SG config, so a cached
           closure's behaviour is fully determined by its key, and the
           hot path pays one compare against a captured int instead of
           two global reads per string *)
        let thresh =
          if borrow && Mbuf.sg_enabled () then Mbuf.borrow_threshold ()
          else max_int
        in
        fun buf env ->
          let s = match a env with
            | Value.Vstring s -> s
            | Value.Vstring_view v -> Value.string_of_view v
            | _ -> invalid_arg "Stub_opt: Put_string over a non-string"
          in
          let slen = String.length s in
          let data = slen + if nul then 1 else 0 in
          let padded = (data + pad - 1) / pad * pad in
          if slen >= thresh then begin
            (* zero-copy: prefix in chunk storage, payload by reference,
               NUL/padding tail in chunk storage — same bytes as below *)
            Mbuf.ensure buf 4;
            (if be then Mbuf.set_i32_be buf 0 data
             else Mbuf.set_i32_le buf 0 data);
            Mbuf.advance buf 4;
            Mbuf.put_borrow_string buf s 0 slen;
            let tail = padded - slen in
            if tail > 0 then begin
              Mbuf.ensure buf tail;
              Mbuf.fill_zero buf 0 tail;
              Mbuf.advance buf tail
            end
          end
          else begin
            Mbuf.ensure buf (4 + padded);
            (if be then Mbuf.set_i32_be buf 0 data
             else Mbuf.set_i32_le buf 0 data);
            Mbuf.set_string buf 4 s 0 slen;
            Mbuf.fill_zero buf (4 + slen) (padded - slen);
            Mbuf.advance buf (4 + padded)
          end
    | Mplan.Put_byteseq { arr; _ } when vc <> None ->
        let vcc = Option.get vc in
        let a = compile_rv arr in
        fun buf env ->
          let b, boff, blen =
            match a env with
            | Value.Vbytes b -> (b, 0, Bytes.length b)
            | Value.Vbytes_view v ->
                (v.Value.v_base, v.Value.v_off, v.Value.v_len)
            | _ -> invalid_arg "Stub_opt: Put_byteseq over non-bytes"
          in
          Codec.write_vlen vcc ~check:true Encoding.Lbin buf blen;
          Mbuf.ensure buf blen;
          Mbuf.set_bytes buf 0 b boff blen;
          Mbuf.advance buf blen
    | Mplan.Put_byteseq { arr; pad; via = _; borrow } ->
        let a = compile_rv arr in
        let thresh =
          if borrow && Mbuf.sg_enabled () then Mbuf.borrow_threshold ()
          else max_int
        in
        fun buf env ->
          (* a view re-encodes without materializing: both the borrow
             and the copy path take (base, offset, length) ranges *)
          let b, boff, blen = match a env with
            | Value.Vbytes b -> (b, 0, Bytes.length b)
            | Value.Vbytes_view v -> (v.Value.v_base, v.Value.v_off, v.Value.v_len)
            | _ -> invalid_arg "Stub_opt: Put_byteseq over non-bytes"
          in
          let padded = (blen + pad - 1) / pad * pad in
          if blen >= thresh then begin
            Mbuf.ensure buf 4;
            (if be then Mbuf.set_i32_be buf 0 blen
             else Mbuf.set_i32_le buf 0 blen);
            Mbuf.advance buf 4;
            Mbuf.put_borrow_bytes buf b boff blen;
            let tail = padded - blen in
            if tail > 0 then begin
              Mbuf.ensure buf tail;
              Mbuf.fill_zero buf 0 tail;
              Mbuf.advance buf tail
            end
          end
          else begin
            Mbuf.ensure buf (4 + padded);
            (if be then Mbuf.set_i32_be buf 0 blen
             else Mbuf.set_i32_le buf 0 blen);
            Mbuf.set_bytes buf 4 b boff blen;
            Mbuf.fill_zero buf (4 + blen) (padded - blen);
            Mbuf.advance buf (4 + padded)
          end
    | Mplan.Put_atom_array { arr; atom; with_len; via = _ } when vc <> None ->
        let vcc = Option.get vc in
        let a = compile_rv arr in
        let kind = atom.Mplan.kind in
        (* one worst-case reservation for the whole run, then unchecked
           minimal-width emits per element *)
        let worst =
          match vcc.Encoding.v_size kind with
          | Encoding.Var { worst } -> worst
          | Encoding.Fixed n -> n
        in
        fun buf env ->
          let v = a env in
          let n = value_len v in
          if with_len then Codec.write_vlen vcc ~check:true Encoding.Larr buf n;
          Mbuf.ensure buf (n * worst);
          let write_elem (e : Value.t) =
            Codec.write_var vcc ~check:false kind buf e
          in
          (match v with
          | Value.Vint_array elems ->
              Array.iter (fun x -> write_elem (Value.Vint x)) elems
          | Value.Varray elems -> Array.iter write_elem elems
          | _ -> invalid_arg "Stub_opt: atom array over non-array")
    | Mplan.Put_atom_array { arr; atom; with_len; via = _ } ->
        (* never borrowed: the copy doubles as the byte-order transform *)
        compile_atom_array arr atom with_len
    | Mplan.Put_blit { src; len; pad } ->
        let a = compile_rv src in
        (* [len] is static, so the whole decision is compile-time *)
        let borrow = Mbuf.borrow_eligible len in
        fun buf env ->
          (match a env with
          | Value.Vbytes b ->
              if Bytes.length b <> len then
                invalid_arg "Stub_opt: fixed byte array length mismatch"
              else if borrow then Mbuf.put_borrow_bytes buf b 0 len
              else begin
                Mbuf.ensure buf len;
                Mbuf.set_bytes buf 0 b 0 len;
                Mbuf.advance buf len
              end
          | Value.Vbytes_view v ->
              if v.Value.v_len <> len then
                invalid_arg "Stub_opt: fixed byte array length mismatch"
              else if borrow then
                Mbuf.put_borrow_bytes buf v.Value.v_base v.Value.v_off len
              else begin
                Mbuf.ensure buf len;
                Mbuf.set_bytes buf 0 v.Value.v_base v.Value.v_off len;
                Mbuf.advance buf len
              end
          | Value.Vstring s ->
              if borrow && String.length s >= len then
                Mbuf.put_borrow_string buf s 0 len
              else begin
                Mbuf.ensure buf len;
                Mbuf.set_string buf 0 s 0 len;
                Mbuf.advance buf len
              end
          | _ -> invalid_arg "Stub_opt: Put_blit over non-bytes");
          if pad > 0 then begin
            Mbuf.ensure buf pad;
            Mbuf.fill_zero buf 0 pad;
            Mbuf.advance buf pad
          end
    | Mplan.Put_len { arr; via = _ } when vc <> None ->
        let vcc = Option.get vc in
        let a = compile_rv arr in
        fun buf env ->
          Codec.write_vlen vcc ~check:true Encoding.Larr buf
            (value_len (a env))
    | Mplan.Put_len { arr; via = _ } ->
        let a = compile_rv arr in
        fun buf env ->
          Mbuf.align buf 4;
          Mbuf.ensure buf 4;
          let n = value_len (a env) in
          (if be then Mbuf.set_i32_be buf 0 n else Mbuf.set_i32_le buf 0 n);
          Mbuf.advance buf 4
    | Mplan.Put_varhead { vh_kind; vh_check; vh_src; vh_image; vh_worst = _ }
      -> (
        let vcc =
          match vc with
          | Some v -> v
          | None -> invalid_arg "Stub_opt: Put_varhead under a fixed encoding"
        in
        match (vh_image, vh_src) with
        | Some img, _ -> put_image ~check:vh_check img
        | None, Mplan.Vh_const v ->
            put_image ~check:vh_check (vcc.Encoding.v_const_image vh_kind v)
        | None, Mplan.Vh_value rv ->
            let a = compile_rv rv in
            fun buf env ->
              Codec.write_var vcc ~check:vh_check vh_kind buf (a env))
    | Mplan.Loop { arr; var; body; via = _ }
      when fused_loop_body ~var body <> None -> (
        (* the shape inlined C compiles a struct-array loop into: one
           capacity reservation outside (Ensure_count), then per element
           an alignment and a run of stores at constant offsets *)
        let a = compile_rv arr in
        let align, size, items =
          match fused_loop_body ~var body with
          | Some x -> x
          | None -> assert false
        in
        let writers =
          Array.of_list
            (List.map
               (fun (it : Mplan.item) ->
                 match it with
                 | Mplan.It_atom { off; atom; src } -> (
                     let get = compile_elem_path ~var src in
                     match (atom.Mplan.kind, atom.Mplan.size) with
                     | Encoding.Kint { bits; _ }, 4 when bits <= 32 ->
                         if be then fun buf v ->
                           Mbuf.set_i32_be buf off (Codec.as_int (get v))
                         else fun buf v ->
                           Mbuf.set_i32_le buf off (Codec.as_int (get v))
                     | _, _ ->
                         fun buf v -> Codec.write_at buf ~be off atom (get v))
                 | Mplan.It_const { off; atom; value } ->
                     fun buf _ -> Codec.write_const_at buf ~be off atom value
                 | Mplan.It_bytes { off; len; pad; src } -> (
                     let get = compile_elem_path ~var src in
                     fun buf v ->
                       (match get v with
                       | Value.Vbytes b -> Mbuf.set_bytes buf off b 0 len
                       | Value.Vstring s -> Mbuf.set_string buf off s 0 len
                       | Value.Vbytes_view w | Value.Vstring_view w ->
                           Mbuf.set_bytes buf off w.Value.v_base w.Value.v_off len
                       | _ -> invalid_arg "Stub_opt: It_bytes over non-bytes");
                       if pad > 0 then Mbuf.fill_zero buf (off + len) pad))
               items)
        in
        let nw = Array.length writers in
        let write_elem buf v =
          if align > 1 then Mbuf.align buf align;
          Mbuf.ensure buf size;
          for k = 0 to nw - 1 do
            (Array.unsafe_get writers k) buf v
          done;
          Mbuf.advance buf size
        in
        fun buf env ->
          match a env with
          | Value.Varray elems ->
              for i = 0 to Array.length elems - 1 do
                write_elem buf (Array.unsafe_get elems i)
              done
          | Value.Vopt None -> ()
          | Value.Vopt (Some v) -> write_elem buf v
          | _ -> invalid_arg "Stub_opt: Loop over non-array")
    | Mplan.Loop { arr; var; body; via = _ } -> (
        let a = compile_rv arr in
        let body_fns = Array.of_list (List.map compile_op body) in
        let run_body buf env =
          for k = 0 to Array.length body_fns - 1 do
            (Array.unsafe_get body_fns k) buf env
          done
        in
        fun buf env ->
          match a env with
          | Value.Varray elems ->
              for i = 0 to Array.length elems - 1 do
                env.vars.(var) <- Array.unsafe_get elems i;
                run_body buf env
              done
          | Value.Vopt None -> ()
          | Value.Vopt (Some v) ->
              env.vars.(var) <- v;
              run_body buf env
          | Value.Vint_array elems ->
              for i = 0 to Array.length elems - 1 do
                env.vars.(var) <- Value.Vint (Array.unsafe_get elems i);
                run_body buf env
              done
          | _ -> invalid_arg "Stub_opt: Loop over non-array")
    | Mplan.Switch { u; arms; default; _ } -> (
        let sel = compile_rv u in
        let n_cases =
          List.fold_left (fun acc (a : Mplan.arm) -> max acc a.Mplan.a_case) (-1)
            arms
          + 1
        in
        let table = Array.make (max n_cases 1) None in
        List.iter
          (fun (a : Mplan.arm) ->
            let fns = List.map compile_op a.Mplan.a_body in
            table.(a.Mplan.a_case) <- Some (fun buf env -> List.iter (fun f -> f buf env) fns))
          arms;
        let default_fn =
          match default with
          | None -> None
          | Some (_, body) ->
              let fns = List.map compile_op body in
              Some (fun buf env -> List.iter (fun f -> f buf env) fns)
        in
        fun buf env ->
          match sel env with
          | Value.Vunion { case; _ } -> (
              if case >= 0 && case < Array.length table then
                match table.(case) with
                | Some f -> f buf env
                | None -> invalid_arg "Stub_opt: missing union arm"
              else
                match default_fn with
                | Some f -> f buf env
                | None -> invalid_arg "Stub_opt: union case out of range")
          | _ -> invalid_arg "Stub_opt: Switch over a non-union")
    | Mplan.Call (name, rv) -> (
        let a = compile_rv rv in
        let cell : (Mbuf.t -> env -> unit) ref =
          match Hashtbl.find_opt subs name with
          | Some c -> c
          | None -> invalid_arg ("Stub_opt: unknown subroutine " ^ name)
        in
        fun buf env ->
          let v = a env in
          !cell buf { params = [| v |]; vars = env.vars })
  and compile_atom_array arr (atom : Mplan.atom) with_len =
    let a = compile_rv arr in
    let size = atom.Mplan.size in
    let write_len buf n =
      Mbuf.align buf 4;
      Mbuf.ensure buf 4;
      (if be then Mbuf.set_i32_be buf 0 n else Mbuf.set_i32_le buf 0 n);
      Mbuf.advance buf 4
    in
    match (atom.Mplan.kind, size) with
    | Encoding.Kint { bits; _ }, 4 when bits <= 32 ->
        (* the memcpy-analog fast path: one reservation, one tight loop.
           Boxed arrays of ints (e.g. loops the peephole pass fused into
           Put_atom_array) take the same path through a per-element
           unbox. *)
        let set = if be then Mbuf.set_i32_be else Mbuf.set_i32_le in
        fun buf env ->
          (match a env with
          | Value.Vint_array elems ->
              let n = Array.length elems in
              if with_len then write_len buf n;
              Mbuf.ensure buf (n * 4);
              for i = 0 to n - 1 do
                set buf (i * 4) (Array.unsafe_get elems i)
              done;
              Mbuf.advance buf (n * 4)
          | Value.Varray elems ->
              let n = Array.length elems in
              if with_len then write_len buf n;
              Mbuf.ensure buf (n * 4);
              for i = 0 to n - 1 do
                set buf (i * 4) (Codec.as_int (Array.unsafe_get elems i))
              done;
              Mbuf.advance buf (n * 4)
          | _ -> invalid_arg "Stub_opt: atom array over non-int-array")
    | _, _ ->
        fun buf env ->
          let v = a env in
          let n = value_len v in
          if with_len then write_len buf n;
          (* an empty run writes nothing, not even alignment *)
          if n > 0 then Mbuf.align buf atom.Mplan.align;
          Mbuf.ensure buf (n * size);
          let write_elem i (e : Value.t) = Codec.write_at buf ~be (i * size) atom e in
          (match v with
          | Value.Vint_array elems ->
              Array.iteri (fun i x -> write_elem i (Value.Vint x)) elems
          | Value.Varray elems -> Array.iteri write_elem elems
          | _ -> invalid_arg "Stub_opt: atom array over non-array");
          Mbuf.advance buf (n * size)
  in
  List.map compile_op ops

let encoder_of_plan ~enc (plan : Plan_compile.plan) : encoder =
  let subs : (string, (Mbuf.t -> env -> unit) ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (name, _) -> Hashtbl.replace subs name (ref (fun _ _ -> ())))
    plan.Plan_compile.p_subs;
  List.iter
    (fun (name, body) ->
      let fns = compile_ops ~enc ~subs body in
      let nvars = max_var body + 1 in
      let cell = Hashtbl.find subs name in
      cell :=
        fun buf env ->
          let env = { env with vars = Array.make (max nvars 1) Value.Vvoid } in
          List.iter (fun f -> f buf env) fns)
    plan.Plan_compile.p_subs;
  let fns = compile_ops ~enc ~subs plan.Plan_compile.p_ops in
  let fns = Array.of_list fns in
  let nvars = max_var plan.Plan_compile.p_ops + 1 in
  fun buf params ->
    let env = { params; vars = Array.make (max nvars 1) Value.Vvoid } in
    for k = 0 to Array.length fns - 1 do
      (Array.unsafe_get fns k) buf env
    done

(* ------------------------------------------------------------------ *)
(* Tier 1: staged encoding                                              *)
(* ------------------------------------------------------------------ *)

(* Arity-specialized sequencing: a staged op list becomes one flat
   closure calling its parts directly, instead of the tier-0 shape of a
   dispatch loop over a closure array (longer sequences split in half,
   so the dispatch cost stays logarithmic). *)
let rec seq_fns (fns : ('a -> 'b -> unit) array) : 'a -> 'b -> unit =
  match fns with
  | [||] -> fun _ _ -> ()
  | [| f |] -> f
  | [| f; g |] ->
      fun a b ->
        f a b;
        g a b
  | [| f; g; h |] ->
      fun a b ->
        f a b;
        g a b;
        h a b
  | [| f; g; h; i |] ->
      fun a b ->
        f a b;
        g a b;
        h a b;
        i a b
  | fns ->
      let n = Array.length fns in
      let m = n / 2 in
      let l = seq_fns (Array.sub fns 0 m)
      and r = seq_fns (Array.sub fns m (n - m)) in
      fun a b ->
        l a b;
        r a b

(* The staged specializer: partially evaluate the plan into flat
   closures.  Chunks regroup through Plan_stage — constants fold into
   precomputed byte images written with one blit, runs of 32-bit fields
   of one aggregate resolve their base once and store through
   offset/index arrays — and loop/switch bodies become single fused
   closures instead of op-dispatch loops.  Ops with no fused form keep
   their tier-0 compilation, so every staged plan writes byte-identical
   messages (pinned by test/test_stage.ml and the stage bench
   self-checks).  Plans with marshal subroutines do not stage (None):
   recursion has no flat-closure form, and the caller falls back to
   tier 0. *)
let staged_encoder_of_plan ~(enc : Encoding.t) (plan : Plan_compile.plan) :
    encoder option =
  if not (Plan_stage.stageable plan) then None
  else begin
    let be = enc.Encoding.big_endian in
    let subs : (string, (Mbuf.t -> env -> unit) ref) Hashtbl.t =
      Hashtbl.create 1
    in
    (* stageable plans have no Call ops, so the empty table is safe *)
    let delegate op =
      match compile_ops ~enc ~subs [ op ] with
      | [ f ] -> f
      | _ -> assert false
    in
    let stage_seg (seg : Plan_stage.seg) : Mbuf.t -> env -> unit =
      match seg with
      | Plan_stage.Seg_image { off; image } ->
          let n = Bytes.length image in
          fun buf _ -> Mbuf.set_bytes buf off image 0 n
      | Plan_stage.Seg_run { base; offs; idxs } -> (
          let b = compile_rv base in
          let n = Array.length offs in
          let set = if be then Mbuf.set_i32_be else Mbuf.set_i32_le in
          fun buf env ->
            match b env with
            | Value.Vstruct fs ->
                for k = 0 to n - 1 do
                  set buf
                    (Array.unsafe_get offs k)
                    (Codec.as_int
                       (Array.unsafe_get fs (Array.unsafe_get idxs k)))
                done
            | Value.Vint_array a ->
                for k = 0 to n - 1 do
                  set buf
                    (Array.unsafe_get offs k)
                    (Array.unsafe_get a (Array.unsafe_get idxs k))
                done
            | Value.Varray a ->
                for k = 0 to n - 1 do
                  set buf
                    (Array.unsafe_get offs k)
                    (Codec.as_int (Array.unsafe_get a (Array.unsafe_get idxs k)))
                done
            | Value.Vbytes s ->
                for k = 0 to n - 1 do
                  set buf offs.(k) (Char.code (Bytes.get s idxs.(k)))
                done
            | _ -> invalid_arg "Stub_opt: staged field run over non-aggregate")
      | Plan_stage.Seg_item it -> compile_item ~be it
    in
    let rec stage_op (op : Mplan.op) : Mbuf.t -> env -> unit =
      match op with
      | Mplan.Chunk { size; items; check; align = _ } -> (
          let run =
            seq_fns
              (Array.of_list
                 (List.map stage_seg (Plan_stage.chunk_segments ~be items)))
          in
          match (check, Plan_stage.chunk_gaps size items) with
          | false, [] ->
              fun buf env ->
                run buf env;
                Mbuf.advance buf size
          | true, [] ->
              fun buf env ->
                Mbuf.ensure buf size;
                run buf env;
                Mbuf.advance buf size
          | check, gaps ->
              fun buf env ->
                if check then Mbuf.ensure buf size;
                List.iter (fun (off, len) -> Mbuf.fill_zero buf off len) gaps;
                run buf env;
                Mbuf.advance buf size)
      | Mplan.Loop { var; body; _ } when fused_loop_body ~var body <> None ->
          (* tier 0 already compiles this shape to flat per-element
             stores; nothing further to fold *)
          delegate op
      | Mplan.Loop { arr; var; body; via } -> (
          let a = compile_rv arr in
          let run = seq_fns (Array.of_list (List.map stage_op body)) in
          let run_elem buf env v =
            env.vars.(var) <- v;
            run buf env
          in
          let generic buf env v =
            match v with
            | Value.Varray elems ->
                for i = 0 to Array.length elems - 1 do
                  run_elem buf env (Array.unsafe_get elems i)
                done
            | Value.Vopt None -> ()
            | Value.Vopt (Some v) -> run_elem buf env v
            | Value.Vint_array elems ->
                for i = 0 to Array.length elems - 1 do
                  run_elem buf env (Value.Vint (Array.unsafe_get elems i))
                done
            | _ -> invalid_arg "Stub_opt: Loop over non-array"
          in
          (* tiny fixed trip counts unroll into straight-line calls *)
          match Plan_stage.fixed_count via with
          | Some 2 ->
              fun buf env -> (
                match a env with
                | Value.Varray [| v0; v1 |] ->
                    run_elem buf env v0;
                    run_elem buf env v1
                | v -> generic buf env v)
          | Some 3 ->
              fun buf env -> (
                match a env with
                | Value.Varray [| v0; v1; v2 |] ->
                    run_elem buf env v0;
                    run_elem buf env v1;
                    run_elem buf env v2
                | v -> generic buf env v)
          | Some 4 ->
              fun buf env -> (
                match a env with
                | Value.Varray [| v0; v1; v2; v3 |] ->
                    run_elem buf env v0;
                    run_elem buf env v1;
                    run_elem buf env v2;
                    run_elem buf env v3
                | v -> generic buf env v)
          | _ -> fun buf env -> generic buf env (a env))
      | Mplan.Switch { u; arms; default; _ } -> (
          let sel = compile_rv u in
          let n_cases =
            List.fold_left
              (fun acc (a : Mplan.arm) -> max acc a.Mplan.a_case)
              (-1) arms
            + 1
          in
          let table = Array.make (max n_cases 1) None in
          List.iter
            (fun (a : Mplan.arm) ->
              table.(a.Mplan.a_case) <-
                Some (seq_fns (Array.of_list (List.map stage_op a.Mplan.a_body))))
            arms;
          let default_fn =
            Option.map
              (fun (_, body) ->
                seq_fns (Array.of_list (List.map stage_op body)))
              default
          in
          fun buf env ->
            match sel env with
            | Value.Vunion { case; _ } -> (
                if case >= 0 && case < Array.length table then
                  match table.(case) with
                  | Some f -> f buf env
                  | None -> invalid_arg "Stub_opt: missing union arm"
                else
                  match default_fn with
                  | Some f -> f buf env
                  | None -> invalid_arg "Stub_opt: union case out of range")
            | _ -> invalid_arg "Stub_opt: Switch over a non-union")
      | op -> delegate op
    in
    let run =
      seq_fns (Array.of_list (List.map stage_op plan.Plan_compile.p_ops))
    in
    let nvars = max_var plan.Plan_compile.p_ops + 1 in
    Some
      (fun buf params ->
        let env = { params; vars = Array.make (max nvars 1) Value.Vvoid } in
        run buf env)
  end

(* Per-call latency and message-size histograms, shared shape across
   engines (Stub_naive registers its own set).  The closures test the
   Obs gate on every call: off (the default, and during benches) they
   cost one load and branch; on, two clock reads and two observations
   per operation. *)
let instrument_encoder ns bytes (e : encoder) : encoder =
 fun buf params ->
  if not (Obs.timing_enabled ()) then e buf params
  else begin
    let p0 = Mbuf.pos buf in
    let t0 = Obs.now_ns () in
    e buf params;
    Obs.observe ns (Obs.now_ns () -. t0);
    Obs.observe bytes (float_of_int (Mbuf.pos buf - p0))
  end

let instrument_decoder ns bytes (d : decoder) : decoder =
 fun r ->
  if not (Obs.timing_enabled ()) then d r
  else begin
    let r0 = Mbuf.remaining r in
    let t0 = Obs.now_ns () in
    let v = d r in
    Obs.observe ns (Obs.now_ns () -. t0);
    Obs.observe bytes (float_of_int (r0 - Mbuf.remaining r));
    v
  end

let encode_ns = Obs.hist "stub_opt.encode_ns"
let encode_bytes = Obs.hist "stub_opt.encode_bytes"
let decode_ns = Obs.hist "stub_opt.decode_ns"
let decode_bytes = Obs.hist "stub_opt.decode_bytes"

(* Tier bookkeeping: how many stubs were promoted, how calls split
   across tiers, and how often staging declined a plan — plus per-tier
   latency histograms (timing-gated like the per-engine ones above), so
   [flick stats] shows the interpreted-vs-staged latency gap
   directly. *)
let stage_promotions = Obs.counter "stage.promotions"
let stage_staged_calls = Obs.counter "stage.staged_calls"
let stage_interp_calls = Obs.counter "stage.interp_calls"
let stage_fallbacks = Obs.counter "stage.fallbacks"
let stage_encode_interp_ns = Obs.hist "stage.encode_interp_ns"
let stage_encode_staged_ns = Obs.hist "stage.encode_staged_ns"
let stage_decode_interp_ns = Obs.hist "stage.decode_interp_ns"
let stage_decode_staged_ns = Obs.hist "stage.decode_staged_ns"

(* Compiled encoders are memoized: the closure chains carry no per-call
   state (each invocation allocates its own env), so one encoder safely
   serves every request with the same message structure.  The key is the
   full structural fingerprint — see Plan_cache. *)
let encoder_cache : encoder Plan_cache.t =
  Plan_cache.create ~name:"stub_opt.encoder" ()

(* Tier promotion: the cached closure is a stable wrapper (so the
   physical-equality hot path of repeat compilations survives every
   tier change) that counts calls through the cache's per-fingerprint
   hotness counter and, when the counter reaches the threshold, swaps
   its target from the tier-0 interpreter to the staged closure and
   re-installs itself via Plan_cache.promote — counted under
   promotions, never inflating the hit rate.  The first [threshold]
   calls run interpreted; every later call runs staged.  Hotness
   counters survive cache eviction, so a hot plan recompiled after
   churn starts promoted. *)
let tiered_encoder ~key (tier0 : encoder) (staged : encoder) : encoder =
  let threshold = Opt_config.stage_threshold () in
  let calls = Plan_cache.hotness encoder_cache key in
  let promoted = ref (!calls >= threshold) in
  if !promoted then Obs.incr stage_promotions 1;
  let self = ref tier0 in
  let wrapper buf params =
    if !promoted then begin
      Obs.incr stage_staged_calls 1;
      if Obs.timing_enabled () then begin
        let t0 = Obs.now_ns () in
        staged buf params;
        Obs.observe stage_encode_staged_ns (Obs.now_ns () -. t0)
      end
      else staged buf params
    end
    else begin
      Obs.incr stage_interp_calls 1;
      incr calls;
      (if Obs.timing_enabled () then begin
         let t0 = Obs.now_ns () in
         tier0 buf params;
         Obs.observe stage_encode_interp_ns (Obs.now_ns () -. t0)
       end
       else tier0 buf params);
      if !calls >= threshold then begin
        promoted := true;
        Obs.incr stage_promotions 1;
        Plan_cache.promote encoder_cache key !self
      end
    end
  in
  self := wrapper;
  wrapper

let compile_encoder ?config ~enc ~mint ~named roots : encoder =
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  let fp = Plan_cache.fp_create ~enc ~mint ~named () in
  (* the compiled closures bake in the plan's scatter-gather decisions,
     the pass pipeline that shaped the plan, and the tier policy, so
     all three are part of the encoder key too *)
  Plan_cache.fp_tag fp
    (Printf.sprintf "sg=%b,%d,%s,%s" (Mbuf.sg_enabled ())
       (Mbuf.borrow_threshold ())
       (Opt_config.selection_fingerprint config)
       (Opt_config.stage_fingerprint ()));
  List.iter (Plan_cache.fp_root fp) roots;
  let key = Plan_cache.fp_contents fp in
  (* instrumented inside the cache: the cached closure IS the
     instrumented one, so repeat compilations return the same physical
     closure (pinned by the cache tests) and the gate check at call
     time keeps the wrapper free when timing is off *)
  Plan_cache.find_or_add encoder_cache key (fun () ->
      let plan = Plan_cache.plan ~enc ~mint ~named ~config roots in
      let tier0 =
        instrument_encoder encode_ns encode_bytes (encoder_of_plan ~enc plan)
      in
      if not (Opt_config.stage_enabled ()) then tier0
      else
        match staged_encoder_of_plan ~enc plan with
        | None ->
            Obs.incr stage_fallbacks 1;
            tier0
        | Some staged ->
            tiered_encoder ~key tier0
              (instrument_encoder encode_ns encode_bytes staged))

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

(* The count/bounds/padding conventions live in Codec (read_len,
   check_bounds, skip_pad), shared with the rpcgen-style and
   interpretive engines. *)

let compile_value_decoder ~(enc : Encoding.t) ~mint
    ~(named : (string * (Mint.idx * Pres.t)) list) root_idx root_pres :
    Mbuf.reader -> Value.t =
  let be = enc.Encoding.big_endian in
  let vc = enc.Encoding.var in
  let atom_of kind = Plan_compile.atom_of enc kind in
  let hdr =
    if enc.Encoding.typed_headers then fun r ->
      Mbuf.ralign r 4;
      Mbuf.skip r 4
    else fun _ -> ()
  in
  (* the var-aware primitives, shared with the plan-driven decoder so
     this closure-tree baseline accepts exactly the same inputs *)
  let read_scalar kind : Mbuf.reader -> Value.t =
    match vc with
    | Some vcc -> fun r -> Codec.read_var vcc kind r
    | None ->
        let atom = atom_of kind in
        fun r -> Codec.read_stream r ~be atom
  in
  let get_arr_len =
    match vc with
    | Some vcc -> fun r -> Codec.read_vlen vcc Encoding.Larr r
    | None -> fun r -> Codec.read_len r ~be ~align:4
  in
  let read_opt =
    match vc with
    | Some vcc ->
        fun r ->
          let at = Mbuf.rpos r in
          (Codec.read_vlen vcc Encoding.Larr r, at)
    | None ->
        fun r ->
          Mbuf.ralign r 4;
          let at = Mbuf.rpos r in
          (Codec.read_len r ~be ~align:4, at)
  in
  let read_key =
    match vc with
    | Some vcc ->
        fun r -> Mbuf.read_string r (Codec.read_vlen vcc Encoding.Lstr r)
    | None ->
        let nul = enc.Encoding.string_nul in
        let pad_unit = enc.Encoding.pad_unit in
        fun r ->
          let wire_len = Codec.read_len r ~be ~align:4 in
          let data_len = if nul then wire_len - 1 else wire_len in
          if data_len < 0 then raise (Codec.Decode_error "bad key length");
          let key = Mbuf.read_string r data_len in
          if nul then Mbuf.skip r 1;
          Codec.skip_pad r ~pad_unit wire_len;
          key
  in
  let subs : (string, (Mbuf.reader -> Value.t) ref) Hashtbl.t = Hashtbl.create 4 in
  let rec dec idx (pres : Pres.t) : Mbuf.reader -> Value.t =
    let def = Mint.get mint idx in
    match (def, pres) with
    | _, Pres.Ref name -> (
        match Hashtbl.find_opt subs name with
        | Some cell -> fun r -> !cell r
        | None -> (
            match List.assoc_opt name named with
            | None -> invalid_arg ("Stub_opt: unknown presentation " ^ name)
            | Some (sidx, spres) ->
                let cell = ref (fun _ -> Value.Vvoid) in
                Hashtbl.add subs name cell;
                let d = dec sidx spres in
                cell := d;
                fun r -> !cell r))
    | Mint.Void, _ -> fun _ -> Value.Vvoid
    | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
        match Encoding.atom_of_mint def with
        | Some kind ->
            let get = read_scalar kind in
            fun r ->
              hdr r;
              get r
        | None -> assert false)
    | Mint.Array { elem; min_len; max_len }, _ ->
        dec_array ~elem ~min_len ~max_len pres
    | Mint.Struct fields, Pres.Struct arms ->
        let decs =
          Array.of_list
            (List.map2 (fun (_, fidx) (_, sub) -> dec fidx sub) fields arms)
        in
        fun r ->
          let n = Array.length decs in
          let out = Array.make n Value.Vvoid in
          for i = 0 to n - 1 do
            out.(i) <- decs.(i) r
          done;
          Value.Vstruct out
    | ( Mint.Union { discrim; cases; default },
        Pres.Union { arms; default_arm; _ } ) ->
        dec_union ~discrim ~cases ~default ~arms ~default_arm
    | (Mint.Struct _ | Mint.Union _), _ ->
        invalid_arg "Stub_opt: PRES does not match MINT"
  and dec_array ~elem ~min_len ~max_len (pres : Pres.t) =
    let pad_unit = enc.Encoding.pad_unit in
    let skip_pad r n = Codec.skip_pad r ~pad_unit n in
    match pres with
    | (Pres.Terminated_string | Pres.Terminated_string_len _)
      when vc <> None ->
        let vcc = Option.get vc in
        fun r ->
          hdr r;
          let n = Codec.read_vlen vcc Encoding.Lstr r in
          Codec.check_bounds ~what:"string" n ~min_len:0 ~max_len;
          Value.Vstring (Mbuf.read_string r n)
    | Pres.Terminated_string | Pres.Terminated_string_len _ ->
        let nul = enc.Encoding.string_nul in
        fun r ->
          hdr r;
          let wire_len = Codec.read_len r ~be ~align:4 in
          let data_len = if nul then wire_len - 1 else wire_len in
          if data_len < 0 then raise (Codec.Decode_error "bad string length");
          Codec.check_bounds ~what:"string" data_len ~min_len:0 ~max_len;
          let s = Mbuf.read_string r data_len in
          if nul then Mbuf.skip r 1;
          skip_pad r wire_len;
          Value.Vstring s
    | Pres.Fixed_array sub -> (
        match Mint.get mint elem with
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            fun r ->
              hdr r;
              let b = Mbuf.read_bytes r min_len in
              skip_pad r min_len;
              Value.Vbytes b
        | _ -> (
            match Encoding.atom_of_mint (Mint.get mint elem) with
            | Some kind -> dec_scalar_array ~fixed:(Some min_len) ~max_len kind
            | None ->
                let d = dec elem sub in
                fun r ->
                  hdr r;
                  let out = Array.make min_len Value.Vvoid in
                  for i = 0 to min_len - 1 do
                    out.(i) <- d r
                  done;
                  Value.Varray out))
    | Pres.Counted_seq { elem = sub; _ } -> (
        match Mint.get mint elem with
        | (Mint.Char8 | Mint.Int { bits = 8; _ }) when vc <> None ->
            let vcc = Option.get vc in
            fun r ->
              hdr r;
              let n = Codec.read_vlen vcc Encoding.Lbin r in
              Codec.check_bounds ~what:"sequence" n ~min_len ~max_len;
              Value.Vbytes (Mbuf.read_bytes r n)
        | Mint.Char8 | Mint.Int { bits = 8; _ } ->
            fun r ->
              hdr r;
              let n = Codec.read_len r ~be ~align:4 in
              Codec.check_bounds ~what:"sequence" n ~min_len ~max_len;
              let b = Mbuf.read_bytes r n in
              skip_pad r n;
              Value.Vbytes b
        | _ -> (
            match Encoding.atom_of_mint (Mint.get mint elem) with
            | Some kind -> dec_scalar_array ~fixed:None ~max_len kind
            | None ->
                let d = dec elem sub in
                fun r ->
                  hdr r;
                  let n = get_arr_len r in
                  Codec.check_bounds ~what:"sequence" n ~min_len ~max_len;
                  let out = Array.make n Value.Vvoid in
                  for i = 0 to n - 1 do
                    out.(i) <- d r
                  done;
                  Value.Varray out))
    | Pres.Opt_ptr sub ->
        let d = dec elem sub in
        fun r ->
          hdr r;
          let n, at = read_opt r in
          (match n with
          | 0 -> Value.Vopt None
          | 1 -> Value.Vopt (Some (d r))
          | n ->
              raise
                (Codec.Decode_error
                   (Printf.sprintf "optional count %d at byte %d" n at)))
    | Pres.Direct | Pres.Enum_direct | Pres.Struct _ | Pres.Union _
    | Pres.Void | Pres.Ref _ ->
        invalid_arg "Stub_opt: array PRES mismatch"
  and dec_scalar_array ~fixed ~max_len kind =
    match vc with
    | Some vcc ->
        fun r ->
          hdr r;
          let n =
            match fixed with
            | Some n -> n
            | None ->
                let n = Codec.read_vlen vcc Encoding.Larr r in
                Codec.check_bounds ~what:"array" n ~min_len:0 ~max_len;
                n
          in
          let out = Array.make n Value.Vvoid in
          for i = 0 to n - 1 do
            out.(i) <- Codec.read_var vcc kind r
          done;
          (match kind with
          | Encoding.Kint { bits; _ } when bits <= 32 ->
              Value.Vint_array (Array.map Codec.as_int out)
          | _ -> Value.Varray out)
    | None -> dec_fixed_scalar_array ~fixed ~max_len kind
  and dec_fixed_scalar_array ~fixed ~max_len kind =
    let atom = atom_of kind in
    let size = atom.Mplan.size in
    match (kind, size) with
    | Encoding.Kint { bits; signed }, 4 when bits <= 32 ->
        (* chunked read: one bounds check for the whole run *)
        fun r ->
          hdr r;
          let n =
            match fixed with
            | Some n -> n
            | None ->
                let n = Codec.read_len r ~be ~align:4 in
                Codec.check_bounds ~what:"array" n ~min_len:0 ~max_len;
                n
          in
          Mbuf.ralign r 4;
          Mbuf.need r (n * 4);
          let out = Array.make n 0 in
          (if be then
             for i = 0 to n - 1 do
               Array.unsafe_set out i (Mbuf.get_i32_be r (i * 4))
             done
           else
             for i = 0 to n - 1 do
               Array.unsafe_set out i (Mbuf.get_i32_le r (i * 4))
             done);
          Mbuf.skip r (n * 4);
          let out =
            if signed || bits > 32 then out
            else if bits = 32 then Array.map (fun x -> x land 0xFFFFFFFF) out
            else Array.map (fun x -> x land ((1 lsl bits) - 1)) out
          in
          Value.Vint_array out
    | _, _ ->
        fun r ->
          hdr r;
          let n =
            match fixed with
            | Some n -> n
            | None ->
                let n = Codec.read_len r ~be ~align:4 in
                Codec.check_bounds ~what:"array" n ~min_len:0 ~max_len;
                n
          in
          let out = Array.make n Value.Vvoid in
          for i = 0 to n - 1 do
            out.(i) <- Codec.read_stream r ~be atom
          done;
          (match kind with
          | Encoding.Kint { bits; _ } when bits <= 32 ->
              Value.Vint_array (Array.map Codec.as_int out)
          | _ -> Value.Varray out)
  and dec_union ~discrim ~cases ~default ~arms ~default_arm =
    let datom = Encoding.atom_of_mint (Mint.get mint discrim) in
    let arm_decs =
      List.map2
        (fun (i, (c : Mint.case)) (_, sub) ->
          (c.Mint.c_const, i, dec c.Mint.c_body sub))
        (List.mapi (fun i c -> (i, c)) cases)
        arms
    in
    let default_dec =
      match (default, default_arm) with
      | Some didx, Some (_, sub) -> Some (dec didx sub)
      | None, None -> None
      | _, _ -> invalid_arg "Stub_opt: PRES/MINT default mismatch"
    in
    (* optimized dispatch: hash lookup rather than the linear compare
       chains of traditional stubs *)
    let table : (Mint.const, int * (Mbuf.reader -> Value.t)) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter (fun (c, i, d) -> Hashtbl.replace table c (i, d)) arm_decs;
    match datom with
    | Some kind ->
        let get_d = read_scalar kind in
        fun r ->
          hdr r;
          let v = get_d r in
          let const : Mint.const =
            match v with
            | Value.Vint n -> Mint.Cint (Int64.of_int n)
            | Value.Vbool b -> Mint.Cbool b
            | Value.Vchar c -> Mint.Cchar c
            | _ -> raise (Codec.Decode_error "bad discriminator")
          in
          (match Hashtbl.find_opt table const with
          | Some (case, d) ->
              Value.Vunion { case; discrim = const; payload = d r }
          | None -> (
              match default_dec with
              | Some d ->
                  Value.Vunion { case = -1; discrim = const; payload = d r }
              | None ->
                  raise
                    (Codec.Decode_error
                       (Format.asprintf "unknown discriminator %a" Mint.pp_const
                          const))))
    | None ->
        (* string-keyed operation union *)
        fun r ->
          hdr r;
          let key = read_key r in
          let const = Mint.Cstring key in
          (match Hashtbl.find_opt table const with
          | Some (case, d) ->
              Value.Vunion { case; discrim = const; payload = d r }
          | None ->
              raise (Codec.Decode_error ("unknown operation " ^ key)))
  in
  dec root_idx root_pres

let build_decoder ~enc ~mint ~named droots : decoder =
  let be = enc.Encoding.big_endian in
  let vc = enc.Encoding.var in
  let hdr =
    if enc.Encoding.typed_headers then fun r ->
      Mbuf.ralign r 4;
      Mbuf.skip r 4
    else fun _ -> ()
  in
  let steps =
    List.map
      (fun droot ->
        match droot with
        | Dconst_int (expect, kind) ->
            let get =
              match vc with
              | Some vcc -> fun r -> Codec.read_var vcc kind r
              | None ->
                  let atom = Plan_compile.atom_of enc kind in
                  fun r -> Codec.read_stream r ~be atom
            in
            `Skip
              (fun r ->
                hdr r;
                let v = get r in
                let got =
                  match v with
                  | Value.Vint n -> Int64.of_int n
                  | Value.Vint64 n -> n
                  | Value.Vbool b -> if b then 1L else 0L
                  | Value.Vchar c -> Int64.of_int (Char.code c)
                  | _ -> raise (Codec.Decode_error "bad constant")
                in
                if got <> expect then
                  raise
                    (Codec.Decode_error
                       (Printf.sprintf "expected constant %Ld, found %Ld" expect
                          got)))
        | Dconst_str expect ->
            let nul = enc.Encoding.string_nul in
            let pad_unit = enc.Encoding.pad_unit in
            let read_key =
              match vc with
              | Some vcc ->
                  fun r ->
                    Mbuf.read_string r (Codec.read_vlen vcc Encoding.Lstr r)
              | None ->
                  fun r ->
                    let wire_len = Codec.read_len r ~be ~align:4 in
                    let data_len = if nul then wire_len - 1 else wire_len in
                    if data_len < 0 then
                      raise (Codec.Decode_error "bad key length");
                    let key = Mbuf.read_string r data_len in
                    if nul then Mbuf.skip r 1;
                    let padded =
                      (wire_len + pad_unit - 1) / pad_unit * pad_unit
                    in
                    if padded > wire_len then Mbuf.skip r (padded - wire_len);
                    key
            in
            `Skip
              (fun r ->
                hdr r;
                let key = read_key r in
                if key <> expect then
                  raise
                    (Codec.Decode_error
                       (Printf.sprintf "expected key %S, found %S" expect key)))
        | Dvalue (idx, pres) ->
            `Value (compile_value_decoder ~enc ~mint ~named idx pres))
      droots
  in
  fun r ->
    let out = ref [] in
    List.iter
      (fun step ->
        match step with
        | `Skip f -> f r
        | `Value d -> out := d r :: !out)
      steps;
    Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Plan-driven decoding                                                 *)
(* ------------------------------------------------------------------ *)

(* The executor for Dplan programs: each frame decodes into a slot
   array, then its shape assembles the slots into one value.  Slot
   frames are allocated per call (and reused across loop iterations),
   so compiled decoders carry no cross-call state. *)

type dframe_exec = {
  fx_nslots : int;
  fx_run : Mbuf.reader -> Value.t array -> unit;
  fx_build : Value.t array -> Value.t;
}

let sign_extend n bits =
  let shift = Sys.int_size - bits in
  (n lsl shift) asr shift

let rec shape_builder (sh : Dplan.shape) : Value.t array -> Value.t =
  match sh with
  | Dplan.Sh_void -> fun _ -> Value.Vvoid
  | Dplan.Sh_slot i -> fun slots -> Array.unsafe_get slots i
  | Dplan.Sh_struct shapes
    when List.for_all
           (function Dplan.Sh_slot _ -> true | _ -> false)
           shapes ->
      (* flat field list: gather by index, no per-field closure calls *)
      let idxs =
        Array.of_list
          (List.map (function Dplan.Sh_slot i -> i | _ -> 0) shapes)
      in
      fun slots ->
        Value.Vstruct (Array.map (fun i -> Array.unsafe_get slots i) idxs)
  | Dplan.Sh_struct shapes -> (
      let builders = Array.of_list (List.map shape_builder shapes) in
      match builders with
      | [| a; b |] -> fun slots -> Value.Vstruct [| a slots; b slots |]
      | _ -> fun slots -> Value.Vstruct (Array.map (fun b -> b slots) builders))

(* The dplan op compiler, shared by the tier-0 executor and the tier-1
   staged specializer (which fuses what it can and compiles the rest
   through these). *)
type dcompiler = {
  c_op : Dplan.dop -> Mbuf.reader -> Value.t array -> unit;
  c_item : Dplan.ditem -> Mbuf.reader -> Value.t array -> unit;
  c_frame : Dplan.frame -> dframe_exec;
  c_count : Dplan.dcount -> Mbuf.reader -> int;
  c_key : Mbuf.reader -> string;
  c_opt : Mbuf.reader -> int * int;
      (* optional-count read: (count, byte position for diagnostics) *)
  c_discrim : Mplan.atom -> Mbuf.reader -> Value.t;
      (* union discriminator read, value-dependent under var codecs *)
}

let dcompiler ~(enc : Encoding.t) ~(subs : (string, dframe_exec ref) Hashtbl.t)
    : dcompiler =
  let be = enc.Encoding.big_endian in
  let vc = enc.Encoding.var in
  let nul = enc.Encoding.string_nul in
  let pad_unit = enc.Encoding.pad_unit in
  (* a view is handed out only when the payload clears the borrow
     threshold at runtime and the segmented reader can alias it in one
     piece; both decisions are baked per op when the closure is built,
     and the decoder cache keys on the view/SG configuration *)
  let view_threshold view =
    if view && Mbuf.sg_enabled () then Mbuf.borrow_threshold () else max_int
  in
  let compile_item (it : Dplan.ditem) : Mbuf.reader -> Value.t array -> unit =
    match it with
    | Dplan.Dit_atom { off; atom; slot } -> (
        match (atom.Mplan.kind, atom.Mplan.size) with
        | Encoding.Kint { bits; signed }, 4 when bits <= 32 ->
            (* the hot 32-bit load, with Codec.read_at's extension rules *)
            let get = if be then Mbuf.get_i32_be else Mbuf.get_i32_le in
            if signed then
              fun r slots ->
                slots.(slot) <- Value.Vint (sign_extend (get r off) bits)
            else if bits >= 32 then
              fun r slots ->
                slots.(slot) <- Value.Vint (get r off land 0xFFFFFFFF)
            else
              let mask = (1 lsl bits) - 1 in
              fun r slots -> slots.(slot) <- Value.Vint (get r off land mask)
        | _, _ -> fun r slots -> slots.(slot) <- Codec.read_at r ~be off atom)
    | Dplan.Dit_bytes { off; len; slot } ->
        fun r slots -> slots.(slot) <- Value.Vbytes (Mbuf.get_bytes r off len)
    | Dplan.Dit_const { off; atom; value = expect } ->
        fun r _ ->
          let got =
            match Codec.read_at r ~be off atom with
            | Value.Vint n -> Int64.of_int n
            | Value.Vint64 n -> n
            | Value.Vbool b -> if b then 1L else 0L
            | Value.Vchar c -> Int64.of_int (Char.code c)
            | _ -> raise (Codec.Decode_error "bad constant")
          in
          if got <> expect then
            raise
              (Codec.Decode_error
                 (Printf.sprintf "expected constant %Ld, found %Ld" expect got))
  in
  let read_count_lk lk (count : Dplan.dcount) : Mbuf.reader -> int =
    match count with
    | Dplan.Dc_fixed n -> fun _ -> n
    | Dplan.Dc_len { min_len; max_len; what } -> (
        match vc with
        | Some vcc ->
            fun r ->
              let n = Codec.read_vlen vcc lk r in
              Codec.check_bounds ~what n ~min_len ~max_len;
              n
        | None ->
            fun r ->
              let n = Codec.read_len r ~be ~align:4 in
              Codec.check_bounds ~what n ~min_len ~max_len;
              n)
  in
  let read_count = read_count_lk Encoding.Larr in
  let read_key =
    match vc with
    | Some vcc ->
        fun r ->
          let n = Codec.read_vlen vcc Encoding.Lstr r in
          Mbuf.read_string r n
    | None ->
        fun r ->
          let wire_len = Codec.read_len r ~be ~align:4 in
          let data_len = if nul then wire_len - 1 else wire_len in
          if data_len < 0 then raise (Codec.Decode_error "bad key length");
          let key = Mbuf.read_string r data_len in
          if nul then Mbuf.skip r 1;
          Codec.skip_pad r ~pad_unit wire_len;
          key
  in
  let read_opt =
    match vc with
    | Some vcc ->
        fun r ->
          let at = Mbuf.rpos r in
          (Codec.read_vlen vcc Encoding.Larr r, at)
    | None ->
        fun r ->
          Mbuf.ralign r 4;
          let at = Mbuf.rpos r in
          (Codec.read_len r ~be ~align:4, at)
  in
  let read_discrim (atom : Mplan.atom) : Mbuf.reader -> Value.t =
    match vc with
    | Some vcc -> fun r -> Codec.read_var vcc atom.Mplan.kind r
    | None -> fun r -> Codec.read_stream r ~be atom
  in
  let rec compile_op (op : Dplan.dop) : Mbuf.reader -> Value.t array -> unit =
    match op with
    | Dplan.D_align n -> fun r _ -> Mbuf.ralign r n
    | Dplan.D_chunk { size; items; check } -> (
        let readers = Array.of_list (List.map compile_item items) in
        let n = Array.length readers in
        (* the check decision and the common one-item shape are static:
           keep the per-message closure branch-free *)
        match (readers, check) with
        | [| f |], true ->
            fun r slots ->
              Mbuf.need r size;
              f r slots;
              Mbuf.skip r size
        | [| f |], false ->
            fun r slots ->
              f r slots;
              Mbuf.skip r size
        | _, true ->
            fun r slots ->
              Mbuf.need r size;
              for k = 0 to n - 1 do
                (Array.unsafe_get readers k) r slots
              done;
              Mbuf.skip r size
        | _, false ->
            fun r slots ->
              for k = 0 to n - 1 do
                (Array.unsafe_get readers k) r slots
              done;
              Mbuf.skip r size)
    | Dplan.D_get_string { max_len; slot; view } when vc <> None ->
        let vcc = Option.get vc in
        let vthresh = view_threshold view in
        fun r slots ->
          let n = Codec.read_vlen vcc Encoding.Lstr r in
          Codec.check_bounds ~what:"string" n ~min_len:0 ~max_len;
          let v =
            if n >= vthresh then
              match Mbuf.view_bytes r n with
              | Some (base, off, len) ->
                  Mbuf.pin_reader r;
                  Value.Vstring_view
                    { Value.v_base = base; v_off = off; v_len = len }
              | None -> Value.Vstring (Mbuf.read_string r n)
            else Value.Vstring (Mbuf.read_string r n)
          in
          slots.(slot) <- v
    | Dplan.D_get_string { max_len; slot; view } ->
        let vthresh = view_threshold view in
        fun r slots ->
          let wire_len = Codec.read_len r ~be ~align:4 in
          let data_len = if nul then wire_len - 1 else wire_len in
          if data_len < 0 then raise (Codec.Decode_error "bad string length");
          Codec.check_bounds ~what:"string" data_len ~min_len:0 ~max_len;
          let v =
            if data_len >= vthresh then
              match Mbuf.view_bytes r data_len with
              | Some (base, off, len) ->
                  Mbuf.pin_reader r;
                  Value.Vstring_view
                    { Value.v_base = base; v_off = off; v_len = len }
              | None -> Value.Vstring (Mbuf.read_string r data_len)
            else Value.Vstring (Mbuf.read_string r data_len)
          in
          if nul then Mbuf.skip r 1;
          Codec.skip_pad r ~pad_unit wire_len;
          slots.(slot) <- v
    | Dplan.D_const_str expect ->
        fun r _ ->
          let key = read_key r in
          if key <> expect then
            raise
              (Codec.Decode_error
                 (Printf.sprintf "expected key %S, found %S" expect key))
    | Dplan.D_get_byteseq { count; slot; view } ->
        let get_n = read_count_lk Encoding.Lbin count in
        let vthresh = view_threshold view in
        fun r slots ->
          let n = get_n r in
          let v =
            if n >= vthresh then
              match Mbuf.view_bytes r n with
              | Some (base, off, len) ->
                  Mbuf.pin_reader r;
                  Value.Vbytes_view
                    { Value.v_base = base; v_off = off; v_len = len }
              | None -> Value.Vbytes (Mbuf.read_bytes r n)
            else Value.Vbytes (Mbuf.read_bytes r n)
          in
          Codec.skip_pad r ~pad_unit n;
          slots.(slot) <- v
    | Dplan.D_get_atom_array { count; atom; slot } when vc <> None ->
        let vcc = Option.get vc in
        let get_n = read_count count in
        let kind = atom.Mplan.kind in
        (* every element is header-checked on its own: the advance is
           data-dependent, so no run-wide reservation is possible *)
        fun r slots ->
          let n = get_n r in
          let out = Array.make n Value.Vvoid in
          for i = 0 to n - 1 do
            out.(i) <- Codec.read_var vcc kind r
          done;
          slots.(slot) <-
            (match kind with
            | Encoding.Kint { bits; _ } when bits <= 32 ->
                Value.Vint_array (Array.map Codec.as_int out)
            | _ -> Value.Varray out)
    | Dplan.D_get_atom_array { count; atom; slot } -> (
        let get_n = read_count count in
        match (atom.Mplan.kind, atom.Mplan.size) with
        | Encoding.Kint { bits; signed }, 4 when bits <= 32 ->
            (* chunked read: one bounds check for the whole run *)
            fun r slots ->
              let n = get_n r in
              Mbuf.ralign r 4;
              Mbuf.need r (n * 4);
              let out = Array.make n 0 in
              (if be then
                 for i = 0 to n - 1 do
                   Array.unsafe_set out i (Mbuf.get_i32_be r (i * 4))
                 done
               else
                 for i = 0 to n - 1 do
                   Array.unsafe_set out i (Mbuf.get_i32_le r (i * 4))
                 done);
              Mbuf.skip r (n * 4);
              let out =
                if signed || bits > 32 then out
                else if bits = 32 then
                  Array.map (fun x -> x land 0xFFFFFFFF) out
                else Array.map (fun x -> x land ((1 lsl bits) - 1)) out
              in
              slots.(slot) <- Value.Vint_array out
        | _, _ ->
            fun r slots ->
              let n = get_n r in
              let out = Array.make n Value.Vvoid in
              for i = 0 to n - 1 do
                out.(i) <- Codec.read_stream r ~be atom
              done;
              slots.(slot) <-
                (match atom.Mplan.kind with
                | Encoding.Kint { bits; _ } when bits <= 32 ->
                    Value.Vint_array (Array.map Codec.as_int out)
                | _ -> Value.Varray out))
    | Dplan.D_loop { count; ensure; frame; slot } -> (
        let get_n = read_count count in
        let fx = compile_frame frame in
        let run = fx.fx_run and build = fx.fx_build in
        let nslots = max fx.fx_nslots 1 in
        match ensure with
        | Some u ->
            fun r slots ->
              let n = get_n r in
              Mbuf.need r (n * u);
              let out = Array.make n Value.Vvoid in
              let fslots = Array.make nslots Value.Vvoid in
              for i = 0 to n - 1 do
                run r fslots;
                Array.unsafe_set out i (build fslots)
              done;
              slots.(slot) <- Value.Varray out
        | None ->
            fun r slots ->
              let n = get_n r in
              let out = Array.make n Value.Vvoid in
              let fslots = Array.make nslots Value.Vvoid in
              for i = 0 to n - 1 do
                run r fslots;
                Array.unsafe_set out i (build fslots)
              done;
              slots.(slot) <- Value.Varray out)
    | Dplan.D_opt { frame; slot } ->
        let fx = compile_frame frame in
        fun r slots ->
          let n, at = read_opt r in
          (match n with
          | 0 -> slots.(slot) <- Value.Vopt None
          | 1 ->
              let fslots = Array.make (max fx.fx_nslots 1) Value.Vvoid in
              fx.fx_run r fslots;
              slots.(slot) <- Value.Vopt (Some (fx.fx_build fslots))
          | n ->
              raise
                (Codec.Decode_error
                   (Printf.sprintf "optional count %d at byte %d" n at)))
    | Dplan.D_switch { discrim_atom; arms; default; slot } -> (
        let table : (Mint.const, int * dframe_exec) Hashtbl.t =
          Hashtbl.create 16
        in
        List.iter
          (fun (a : Dplan.darm) ->
            Hashtbl.replace table a.Dplan.d_const
              (a.Dplan.d_case, compile_frame a.Dplan.d_frame))
          arms;
        let default_fx = Option.map compile_frame default in
        let run_frame (fx : dframe_exec) r =
          let fslots = Array.make (max fx.fx_nslots 1) Value.Vvoid in
          fx.fx_run r fslots;
          fx.fx_build fslots
        in
        match discrim_atom with
        | Some atom ->
            let get_d = read_discrim atom in
            fun r slots ->
              let v = get_d r in
              let const : Mint.const =
                match v with
                | Value.Vint n -> Mint.Cint (Int64.of_int n)
                | Value.Vbool b -> Mint.Cbool b
                | Value.Vchar c -> Mint.Cchar c
                | _ -> raise (Codec.Decode_error "bad discriminator")
              in
              (match Hashtbl.find_opt table const with
              | Some (case, fx) ->
                  slots.(slot) <-
                    Value.Vunion { case; discrim = const; payload = run_frame fx r }
              | None -> (
                  match default_fx with
                  | Some fx ->
                      slots.(slot) <-
                        Value.Vunion
                          { case = -1; discrim = const; payload = run_frame fx r }
                  | None ->
                      raise
                        (Codec.Decode_error
                           (Format.asprintf "unknown discriminator %a"
                              Mint.pp_const const))))
        | None ->
            (* string-keyed operation union: a miss is always an unknown
               operation (the closure decoder behaves the same) *)
            fun r slots ->
              let key = read_key r in
              let const = Mint.Cstring key in
              (match Hashtbl.find_opt table const with
              | Some (case, fx) ->
                  slots.(slot) <-
                    Value.Vunion { case; discrim = const; payload = run_frame fx r }
              | None ->
                  raise (Codec.Decode_error ("unknown operation " ^ key))))
    | Dplan.D_get_varhead { vh_kind; vh_slot; vh_expect; _ } -> (
        let vcc =
          match vc with
          | Some v -> v
          | None ->
              invalid_arg "Stub_opt: D_get_varhead under a fixed encoding"
        in
        match (vh_slot, vh_expect) with
        | Some slot, None ->
            fun r slots -> slots.(slot) <- Codec.read_var vcc vh_kind r
        | None, Some expect ->
            fun r _ ->
              let got =
                match Codec.read_var vcc vh_kind r with
                | Value.Vint n -> Int64.of_int n
                | Value.Vint64 n -> n
                | Value.Vbool b -> if b then 1L else 0L
                | Value.Vchar c -> Int64.of_int (Char.code c)
                | _ -> raise (Codec.Decode_error "bad constant")
              in
              if got <> expect then
                raise
                  (Codec.Decode_error
                     (Printf.sprintf "expected constant %Ld, found %Ld" expect
                        got))
        | _, _ -> invalid_arg "Stub_opt: D_get_varhead needs slot xor expect")
    | Dplan.D_call { sub; slot } ->
        let cell =
          match Hashtbl.find_opt subs sub with
          | Some c -> c
          | None -> invalid_arg ("Stub_opt: unknown unmarshal subroutine " ^ sub)
        in
        fun r slots ->
          let fx = !cell in
          let fslots = Array.make (max fx.fx_nslots 1) Value.Vvoid in
          fx.fx_run r fslots;
          slots.(slot) <- fx.fx_build fslots
  and compile_frame (frame : Dplan.frame) : dframe_exec =
    let fns = Array.of_list (List.map compile_op frame.Dplan.f_ops) in
    let n = Array.length fns in
    let run =
      (* loop bodies are usually one or two ops; skip the dispatch loop *)
      match fns with
      | [| f |] -> f
      | [| f; g |] ->
          fun r slots ->
            f r slots;
            g r slots
      | _ ->
          fun r slots ->
            for k = 0 to n - 1 do
              (Array.unsafe_get fns k) r slots
            done
    in
    {
      fx_nslots = frame.Dplan.f_nslots;
      fx_run = run;
      fx_build = shape_builder frame.Dplan.f_shape;
    }
  in
  {
    c_op = compile_op;
    c_item = compile_item;
    c_frame = compile_frame;
    c_count = read_count;
    c_key = read_key;
    c_opt = read_opt;
    c_discrim = read_discrim;
  }

let decoder_of_dplan ~(enc : Encoding.t) (plan : Dplan.plan) : decoder =
  let subs : (string, dframe_exec ref) Hashtbl.t = Hashtbl.create 4 in
  let c = dcompiler ~enc ~subs in
  (* subroutine cells first, so D_call sites (including recursive ones)
     can link before the bodies are compiled *)
  List.iter
    (fun (name, _) ->
      Hashtbl.replace subs name
        (ref
           {
             fx_nslots = 0;
             fx_run = (fun _ _ -> ());
             fx_build = (fun _ -> Value.Vvoid);
           }))
    plan.Dplan.d_subs;
  List.iter
    (fun (name, frame) -> Hashtbl.find subs name := c.c_frame frame)
    plan.Dplan.d_subs;
  let top =
    c.c_frame
      {
        Dplan.f_nslots = plan.Dplan.d_nslots;
        f_ops = plan.Dplan.d_ops;
        f_shape = Dplan.Sh_void;
      }
  in
  let builders = Array.of_list (List.map shape_builder plan.Dplan.d_shapes) in
  fun r ->
    let slots = Array.make (max plan.Dplan.d_nslots 1) Value.Vvoid in
    top.fx_run r slots;
    Array.map (fun b -> b slots) builders

(* ------------------------------------------------------------------ *)
(* Tier 1: staged decoding                                              *)
(* ------------------------------------------------------------------ *)

(* The decode-side specializer, mirroring staged_encoder_of_plan: chunk
   loads regroup through Dplan_stage (runs of 32-bit integer loads
   share one extension rule and a tight offset/slot loop), frame and
   arm op lists become single fused closures, and everything without a
   fused form keeps its tier-0 compilation.  Value results are
   identical to tier 0 on well-formed and malformed input alike
   (differential-tested in test/test_stage.ml). *)
let staged_decoder_of_dplan ~(enc : Encoding.t) (plan : Dplan.plan) :
    decoder option =
  if not (Dplan_stage.stageable plan) then None
  else begin
    let be = enc.Encoding.big_endian in
    (* stageable plans have no D_call ops, so the empty table is safe *)
    let subs : (string, dframe_exec ref) Hashtbl.t = Hashtbl.create 1 in
    let c = dcompiler ~enc ~subs in
    let stage_dseg (seg : Dplan_stage.dseg) :
        Mbuf.reader -> Value.t array -> unit =
      match seg with
      | Dplan_stage.Dseg_run { offs; slots; bits; signed } ->
          let n = Array.length offs in
          let get = if be then Mbuf.get_i32_be else Mbuf.get_i32_le in
          if signed then
            fun r sl ->
              for k = 0 to n - 1 do
                Array.unsafe_set sl
                  (Array.unsafe_get slots k)
                  (Value.Vint
                     (sign_extend (get r (Array.unsafe_get offs k)) bits))
              done
          else if bits >= 32 then
            fun r sl ->
              for k = 0 to n - 1 do
                Array.unsafe_set sl
                  (Array.unsafe_get slots k)
                  (Value.Vint (get r (Array.unsafe_get offs k) land 0xFFFFFFFF))
              done
          else
            let mask = (1 lsl bits) - 1 in
            fun r sl ->
              for k = 0 to n - 1 do
                Array.unsafe_set sl
                  (Array.unsafe_get slots k)
                  (Value.Vint (get r (Array.unsafe_get offs k) land mask))
              done
      | Dplan_stage.Dseg_item it -> c.c_item it
    in
    let rec stage_op (op : Dplan.dop) : Mbuf.reader -> Value.t array -> unit =
      match op with
      | Dplan.D_chunk { size; items; check } ->
          let run =
            seq_fns
              (Array.of_list
                 (List.map stage_dseg (Dplan_stage.chunk_dsegments items)))
          in
          if check then fun r slots ->
            Mbuf.need r size;
            run r slots;
            Mbuf.skip r size
          else fun r slots ->
            run r slots;
            Mbuf.skip r size
      | Dplan.D_loop { count; ensure; frame; slot } -> (
          let get_n = c.c_count count in
          let fx = stage_frame frame in
          let run = fx.fx_run and build = fx.fx_build in
          let nslots = max fx.fx_nslots 1 in
          match ensure with
          | Some u ->
              fun r slots ->
                let n = get_n r in
                Mbuf.need r (n * u);
                let out = Array.make n Value.Vvoid in
                let fslots = Array.make nslots Value.Vvoid in
                for i = 0 to n - 1 do
                  run r fslots;
                  Array.unsafe_set out i (build fslots)
                done;
                slots.(slot) <- Value.Varray out
          | None ->
              fun r slots ->
                let n = get_n r in
                let out = Array.make n Value.Vvoid in
                let fslots = Array.make nslots Value.Vvoid in
                for i = 0 to n - 1 do
                  run r fslots;
                  Array.unsafe_set out i (build fslots)
                done;
                slots.(slot) <- Value.Varray out)
      | Dplan.D_opt { frame; slot } ->
          let fx = stage_frame frame in
          fun r slots ->
            let n, at = c.c_opt r in
            (match n with
            | 0 -> slots.(slot) <- Value.Vopt None
            | 1 ->
                let fslots = Array.make (max fx.fx_nslots 1) Value.Vvoid in
                fx.fx_run r fslots;
                slots.(slot) <- Value.Vopt (Some (fx.fx_build fslots))
            | n ->
                raise
                  (Codec.Decode_error
                     (Printf.sprintf "optional count %d at byte %d" n at)))
      | Dplan.D_switch { discrim_atom; arms; default; slot } -> (
          let table : (Mint.const, int * dframe_exec) Hashtbl.t =
            Hashtbl.create 16
          in
          List.iter
            (fun (a : Dplan.darm) ->
              Hashtbl.replace table a.Dplan.d_const
                (a.Dplan.d_case, stage_frame a.Dplan.d_frame))
            arms;
          let default_fx = Option.map stage_frame default in
          let run_frame (fx : dframe_exec) r =
            let fslots = Array.make (max fx.fx_nslots 1) Value.Vvoid in
            fx.fx_run r fslots;
            fx.fx_build fslots
          in
          match discrim_atom with
          | Some atom ->
              let get_d = c.c_discrim atom in
              fun r slots ->
                let v = get_d r in
                let const : Mint.const =
                  match v with
                  | Value.Vint n -> Mint.Cint (Int64.of_int n)
                  | Value.Vbool b -> Mint.Cbool b
                  | Value.Vchar ch -> Mint.Cchar ch
                  | _ -> raise (Codec.Decode_error "bad discriminator")
                in
                (match Hashtbl.find_opt table const with
                | Some (case, fx) ->
                    slots.(slot) <-
                      Value.Vunion
                        { case; discrim = const; payload = run_frame fx r }
                | None -> (
                    match default_fx with
                    | Some fx ->
                        slots.(slot) <-
                          Value.Vunion
                            {
                              case = -1;
                              discrim = const;
                              payload = run_frame fx r;
                            }
                    | None ->
                        raise
                          (Codec.Decode_error
                             (Format.asprintf "unknown discriminator %a"
                                Mint.pp_const const))))
          | None ->
              fun r slots ->
                let key = c.c_key r in
                let const = Mint.Cstring key in
                (match Hashtbl.find_opt table const with
                | Some (case, fx) ->
                    slots.(slot) <-
                      Value.Vunion
                        { case; discrim = const; payload = run_frame fx r }
                | None ->
                    raise (Codec.Decode_error ("unknown operation " ^ key))))
      | Dplan.D_get_atom_array
          {
            count = Dplan.Dc_fixed n;
            atom =
              { Mplan.kind = Encoding.Kint { bits; signed }; size = 4; _ };
            slot;
          }
        when bits <= 32 && enc.Encoding.var = None ->
          (* fold the fixed element count: the byte total becomes a
             compile-time constant and the per-message count call
             disappears; extension rules match the tier-0 path.
             Value-dependent encodings fall through to the tier-0
             per-element reader: their elements are variable-width. *)
          let total = n * 4 in
          let fill =
            if be then fun r out ->
              for i = 0 to n - 1 do
                Array.unsafe_set out i (Mbuf.get_i32_be r (i * 4))
              done
            else fun r out ->
              for i = 0 to n - 1 do
                Array.unsafe_set out i (Mbuf.get_i32_le r (i * 4))
              done
          in
          let extend =
            if signed || bits > 32 then fun out -> out
            else if bits = 32 then
              fun out -> Array.map (fun x -> x land 0xFFFFFFFF) out
            else
              let mask = (1 lsl bits) - 1 in
              fun out -> Array.map (fun x -> x land mask) out
          in
          fun r slots ->
            Mbuf.ralign r 4;
            Mbuf.need r total;
            let out = Array.make n 0 in
            fill r out;
            Mbuf.skip r total;
            slots.(slot) <- Value.Vint_array (extend out)
      | op -> c.c_op op
    and stage_frame (frame : Dplan.frame) : dframe_exec =
      {
        fx_nslots = frame.Dplan.f_nslots;
        fx_run = seq_fns (Array.of_list (List.map stage_op frame.Dplan.f_ops));
        fx_build = shape_builder frame.Dplan.f_shape;
      }
    in
    let top =
      stage_frame
        {
          Dplan.f_nslots = plan.Dplan.d_nslots;
          f_ops = plan.Dplan.d_ops;
          f_shape = Dplan.Sh_void;
        }
    in
    let builders = Array.of_list (List.map shape_builder plan.Dplan.d_shapes) in
    Some
      (fun r ->
        let slots = Array.make (max plan.Dplan.d_nslots 1) Value.Vvoid in
        top.fx_run r slots;
        Array.map (fun b -> b slots) builders)
  end

(* Compiled decoders are stateless between calls (per-call state lives
   in the reader and the slot frames), so they are memoized under the
   same structural fingerprints as encoders.  A cached decoder that
   raised on one malformed message decodes the next message from
   scratch — test/test_decplan.ml injects truncations and corrupt
   discriminators against reused decoders to pin this. *)
let decoder_cache : decoder Plan_cache.t =
  Plan_cache.create ~name:"stub_opt.decoder" ()

let droot_key ~enc ~mint ~named ~views ~config droots =
  let fp = Plan_cache.fp_create ~enc ~mint ~named () in
  (* the compiled closures bake in the plan's view decisions and its
     pass pipeline, so the view/SG/pipeline configuration is part of
     the decoder key, mirroring the encoder's sg tag *)
  Plan_cache.fp_tag fp
    (Printf.sprintf "views=%b,sg=%b,%d,%s,%s" views (Mbuf.sg_enabled ())
       (Mbuf.borrow_threshold ())
       (Opt_config.selection_fingerprint config)
       (Opt_config.stage_fingerprint ()));
  List.iter
    (fun droot ->
      match droot with
      | Dconst_int (n, kind) ->
          Plan_cache.fp_tag fp "Di";
          Plan_cache.fp_tag fp (Int64.to_string n);
          Plan_cache.fp_kind fp kind
      | Dconst_str s ->
          Plan_cache.fp_tag fp "Ds";
          Plan_cache.fp_tag fp s
      | Dvalue (idx, pres) ->
          Plan_cache.fp_tag fp "Dv";
          Plan_cache.fp_type fp idx pres)
    droots;
  Plan_cache.fp_contents fp

let to_dplan_droot (droot : droot) : Dplan_compile.droot =
  match droot with
  | Dconst_int (n, kind) -> Dplan_compile.Dconst_int (n, kind)
  | Dconst_str s -> Dplan_compile.Dconst_str s
  | Dvalue (idx, pres) -> Dplan_compile.Dvalue (idx, pres)

(* Decode-side twin of tiered_encoder: same stable-wrapper promotion
   protocol against the decoder cache's hotness counters. *)
let tiered_decoder ~key (tier0 : decoder) (staged : decoder) : decoder =
  let threshold = Opt_config.stage_threshold () in
  let calls = Plan_cache.hotness decoder_cache key in
  let promoted = ref (!calls >= threshold) in
  if !promoted then Obs.incr stage_promotions 1;
  let self = ref tier0 in
  let wrapper r =
    if !promoted then begin
      Obs.incr stage_staged_calls 1;
      if Obs.timing_enabled () then begin
        let t0 = Obs.now_ns () in
        let v = staged r in
        Obs.observe stage_decode_staged_ns (Obs.now_ns () -. t0);
        v
      end
      else staged r
    end
    else begin
      Obs.incr stage_interp_calls 1;
      incr calls;
      let v =
        if Obs.timing_enabled () then begin
          let t0 = Obs.now_ns () in
          let v = tier0 r in
          Obs.observe stage_decode_interp_ns (Obs.now_ns () -. t0);
          v
        end
        else tier0 r
      in
      if !calls >= threshold then begin
        promoted := true;
        Obs.incr stage_promotions 1;
        Plan_cache.promote decoder_cache key !self
      end;
      v
    end
  in
  self := wrapper;
  wrapper

let compile_decoder ?config ~enc ~mint ~named ?(views = false) droots :
    decoder =
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  let key = droot_key ~enc ~mint ~named ~views ~config droots in
  (* as for encoders: instrumented inside the cache so repeat
     compilations share one physical closure *)
  Plan_cache.find_or_add decoder_cache key (fun () ->
      let dplan =
        Plan_cache.dplan ~enc ~mint ~named ~views ~config
          (List.map to_dplan_droot droots)
      in
      let tier0 =
        instrument_decoder decode_ns decode_bytes (decoder_of_dplan ~enc dplan)
      in
      if not (Opt_config.stage_enabled ()) then tier0
      else
        match staged_decoder_of_dplan ~enc dplan with
        | None ->
            Obs.incr stage_fallbacks 1;
            tier0
        | Some staged ->
            tiered_decoder ~key tier0
              (instrument_decoder decode_ns decode_bytes staged))
