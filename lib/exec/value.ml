type view = { v_base : bytes; v_off : int; v_len : int }

type t =
  | Vvoid
  | Vbool of bool
  | Vchar of char
  | Vint of int
  | Vint64 of int64
  | Vfloat of float
  | Vstring of string
  | Vbytes of bytes
  | Vstring_view of view
  | Vbytes_view of view
  | Vint_array of int array
  | Varray of t array
  | Vopt of t option
  | Vstruct of t array
  | Vunion of { case : int; discrim : Mint.const; payload : t }

let string_of_view v = Bytes.sub_string v.v_base v.v_off v.v_len
let bytes_of_view v = Bytes.sub v.v_base v.v_off v.v_len

(* Deep-copy every zero-copy view into owned storage; identity on
   view-free values. *)
let rec materialize v =
  match v with
  | Vstring_view w -> Vstring (string_of_view w)
  | Vbytes_view w -> Vbytes (bytes_of_view w)
  | Varray a -> Varray (Array.map materialize a)
  | Vopt (Some x) -> Vopt (Some (materialize x))
  | Vstruct a -> Vstruct (Array.map materialize a)
  | Vunion { case; discrim; payload } ->
      Vunion { case; discrim; payload = materialize payload }
  | Vvoid | Vbool _ | Vchar _ | Vint _ | Vint64 _ | Vfloat _ | Vstring _
  | Vbytes _ | Vint_array _ | Vopt None ->
      v

type kind =
  | Kvoid
  | Kbool
  | Kchar
  | Kint
  | Kint64
  | Kfloat
  | Kstring
  | Kbytes
  | Kint_array of Encoding.atom_kind
  | Karray
  | Kopt
  | Kstruct
  | Kunion

let rep_kind mint idx (pres : Pres.t) =
  match (Mint.get mint idx, pres) with
  | _, Pres.Ref _ -> invalid_arg "Value.rep_kind: unresolved Ref"
  | Mint.Void, _ -> Kvoid
  | Mint.Bool, _ -> Kbool
  | Mint.Char8, _ -> Kchar
  | Mint.Int { bits = 64; _ }, _ -> Kint64
  | Mint.Int _, _ -> Kint
  | Mint.Float _, _ -> Kfloat
  | Mint.Array _, (Pres.Terminated_string | Pres.Terminated_string_len _) -> Kstring
  | Mint.Array _, Pres.Opt_ptr _ -> Kopt
  | Mint.Array { elem; _ }, (Pres.Fixed_array _ | Pres.Counted_seq _) -> (
      match Mint.get mint elem with
      | Mint.Char8 | Mint.Int { bits = 8; _ } -> Kbytes
      | Mint.Int { bits; signed } when bits <= 32 ->
          Kint_array (Encoding.Kint { bits; signed })
      | Mint.Void | Mint.Bool | Mint.Int _ | Mint.Float _ | Mint.Array _
      | Mint.Struct _ | Mint.Union _ ->
          Karray)
  | Mint.Array _, _ -> Karray
  | Mint.Struct _, _ -> Kstruct
  | Mint.Union _, _ -> Kunion

(* Range-wise byte comparison, so view forms compare without copying. *)
let range_equal xb xo xl yb yo yl =
  xl = yl
  &&
  let rec go i =
    i = xl || (Bytes.unsafe_get xb (xo + i) = Bytes.unsafe_get yb (yo + i) && go (i + 1))
  in
  go 0

let str_range s = (Bytes.unsafe_of_string s, 0, String.length s)
let bytes_range b = (b, 0, Bytes.length b)
let view_range v = (v.v_base, v.v_off, v.v_len)

(* Equality is by content: a view form equals the copy form holding the
   same bytes (string-like and bytes-like stay distinct families). *)
let rec equal a b =
  match (a, b) with
  | Vvoid, Vvoid -> true
  | Vbool x, Vbool y -> x = y
  | Vchar x, Vchar y -> x = y
  | Vint x, Vint y -> x = y
  | Vint64 x, Vint64 y -> Int64.equal x y
  | Vfloat x, Vfloat y -> x = y || (x <> x && y <> y)
  | (Vstring _ | Vstring_view _), (Vstring _ | Vstring_view _) ->
      let range = function
        | Vstring s -> str_range s
        | Vstring_view v -> view_range v
        | _ -> assert false
      in
      let xb, xo, xl = range a and yb, yo, yl = range b in
      range_equal xb xo xl yb yo yl
  | (Vbytes _ | Vbytes_view _), (Vbytes _ | Vbytes_view _) ->
      let range = function
        | Vbytes b -> bytes_range b
        | Vbytes_view v -> view_range v
        | _ -> assert false
      in
      let xb, xo, xl = range a and yb, yo, yl = range b in
      range_equal xb xo xl yb yo yl
  | Vint_array x, Vint_array y -> x = y
  | Varray x, Varray y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri (fun i xi -> if not (equal xi y.(i)) then ok := false) x;
          !ok)
  | Vopt x, Vopt y -> (
      match (x, y) with
      | None, None -> true
      | Some x, Some y -> equal x y
      | None, Some _ | Some _, None -> false)
  | Vstruct x, Vstruct y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri (fun i xi -> if not (equal xi y.(i)) then ok := false) x;
          !ok)
  | Vunion x, Vunion y ->
      x.case = y.case
      && Mint.equal_const x.discrim y.discrim
      && equal x.payload y.payload
  | ( ( Vvoid | Vbool _ | Vchar _ | Vint _ | Vint64 _ | Vfloat _ | Vstring _
      | Vbytes _ | Vstring_view _ | Vbytes_view _ | Vint_array _ | Varray _
      | Vopt _ | Vstruct _ | Vunion _ ),
      _ ) ->
      false

let rec pp ppf = function
  | Vvoid -> Format.pp_print_string ppf "()"
  | Vbool b -> Format.fprintf ppf "%B" b
  | Vchar c -> Format.fprintf ppf "%C" c
  | Vint n -> Format.fprintf ppf "%d" n
  | Vint64 n -> Format.fprintf ppf "%LdL" n
  | Vfloat f -> Format.fprintf ppf "%h" f
  | Vstring s -> Format.fprintf ppf "%S" s
  | Vbytes b -> Format.fprintf ppf "bytes%S" (Bytes.to_string b)
  | Vstring_view v -> Format.fprintf ppf "view%S" (string_of_view v)
  | Vbytes_view v -> Format.fprintf ppf "bview%S" (string_of_view v)
  | Vint_array a ->
      Format.fprintf ppf "@[<hov 2>[|%a|]@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Format.pp_print_int)
        (Array.to_list a)
  | Varray a ->
      Format.fprintf ppf "@[<hov 2>[%a]@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        (Array.to_list a)
  | Vopt None -> Format.pp_print_string ppf "null"
  | Vopt (Some v) -> Format.fprintf ppf "&%a" pp v
  | Vstruct fields ->
      Format.fprintf ppf "@[<hov 2>{%a}@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        (Array.to_list fields)
  | Vunion { case; discrim; payload } ->
      Format.fprintf ppf "@[<hov 2>union[%d=%a](%a)@]" case Mint.pp_const
        discrim pp payload

let rec byte_size = function
  | Vvoid -> 0
  | Vbool _ | Vchar _ -> 1
  | Vint _ | Vfloat _ -> 4
  | Vint64 _ -> 8
  | Vstring s -> String.length s
  | Vbytes b -> Bytes.length b
  | Vstring_view v | Vbytes_view v -> v.v_len
  | Vint_array a -> 4 * Array.length a
  | Varray a -> Array.fold_left (fun acc v -> acc + byte_size v) 0 a
  | Vopt None -> 0
  | Vopt (Some v) -> byte_size v
  | Vstruct fields -> Array.fold_left (fun acc v -> acc + byte_size v) 0 fields
  | Vunion { payload; _ } -> 4 + byte_size payload
