(** The optimized stub engine: executes the marshal plans produced by
    {!Plan_compile}, embodying the same optimization decisions the C
    back ends print (one capacity check per chunk, static-offset stores,
    blits for byte runs, tight scalar-array loops, call-free inlined
    control flow except at recursive types).

    This engine stands in for running Flick-generated C stubs on the
    paper's testbed; the rpcgen-style ({!Stub_naive}) and interpretive
    ({!Stub_interp}) engines stand in for the compilers Flick was
    measured against.  All three produce byte-identical messages. *)

type encoder = Mbuf.t -> Value.t array -> unit
(** Marshal the given parameter values into the buffer (appending at the
    current position). *)

type decoder = Mbuf.reader -> Value.t array
(** Unmarshal one message body, returning one value per
    {!Plan_compile.root.Rvalue}/[Dvalue] root.  Raises
    {!Mbuf.Short_buffer} or {!Codec.Decode_error} on malformed input. *)

val instrument_encoder : Obs.hist -> Obs.hist -> encoder -> encoder
(** [instrument_encoder ns bytes e]: when {!Obs.timing_enabled}, each
    call observes its latency into [ns] and its produced message bytes
    into [bytes]; when the gate is off the wrapper costs one load and
    branch.  Shared with {!Stub_naive}, which wraps its own histograms
    around the same helper. *)

val instrument_decoder : Obs.hist -> Obs.hist -> decoder -> decoder
(** Decode-side twin of {!instrument_encoder}: latency plus consumed
    wire bytes. *)

(** Decoder-side description of a message body, mirroring
    {!Plan_compile.root}. *)
type droot =
  | Dconst_int of int64 * Encoding.atom_kind
      (** verify a constant discriminator *)
  | Dconst_str of string
  | Dvalue of Mint.idx * Pres.t

val to_dplan_droot : droot -> Dplan_compile.droot
(** The plan-compiler spelling of a decode root ({!Stub_forward} keys
    fused relays off the same roots the decoder compiles from). *)

val compile_encoder :
  ?config:Opt_config.t ->
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Plan_compile.root list ->
  encoder
(** Compile (through the shared {!Plan_cache}, with the {!Pass}
    pipeline [config] selects — default {!Opt_config.default}) and
    memoize: structurally identical requests reuse one encoder closure.
    The config's pass selection is part of the closure-cache key, so
    differently configured pipelines never share an encoder.  Encoders
    carry no per-call state, so sharing is safe under any call
    pattern. *)

val compile_decoder :
  ?config:Opt_config.t ->
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  ?views:bool ->
  droot list ->
  decoder
(** Compile through the shared {!Plan_cache.dplan} (with the {!Pass}
    decode pipeline [config] selects) and memoize: structurally
    identical messages reuse one decoder closure.  A cached decoder
    raises the same typed errors as a fresh one and keeps no state
    across messages.  [views:true] (default false) enables zero-copy
    decode: string/byte-sequence payloads at or above
    {!Mbuf.borrow_threshold} come back as [Value.Vstring_view] /
    [Vbytes_view] aliasing the receive buffer — see the [Mbuf] aliasing
    contract and {!Value.materialize}. *)

val encoder_of_plan :
  enc:Encoding.t -> Plan_compile.plan -> encoder
(** Lower-level entry: execute an already compiled plan (used by the
    ablation benchmarks, which tweak plans). *)

val staged_encoder_of_plan :
  enc:Encoding.t -> Plan_compile.plan -> encoder option
(** The tier-1 staged specializer: partially evaluate the plan into
    flat closures — constants folded into precomputed byte images, runs
    of 32-bit fields of one aggregate stored through offset/index
    arrays after resolving the base once, loop/switch bodies fused into
    single closures, tiny fixed loops unrolled.  Byte-identical to
    {!encoder_of_plan} on every input.  [None] when the plan has
    marshal subroutines (recursion has no flat-closure form); callers
    fall back to tier 0.  {!compile_encoder} installs this
    automatically once a plan's hotness counter passes
    {!Opt_config.stage_threshold}. *)

val staged_decoder_of_dplan :
  enc:Encoding.t -> Dplan.plan -> decoder option
(** Decode-side twin of {!staged_encoder_of_plan}: chunk loads regroup
    into fused integer runs, frame op lists become single closures.
    Decodes identically to {!decoder_of_dplan} on well-formed and
    malformed input alike; [None] on plans with unmarshal
    subroutines. *)

val decoder_of_dplan :
  enc:Encoding.t -> Dplan.plan -> decoder
(** Lower-level entry: execute an already compiled decode plan (used by
    the ablation benchmarks, which tweak plans). *)

val build_decoder :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  droot list ->
  decoder
(** The pre-plan closure-tree decoder, kept as the benchmark baseline:
    per-datum alignment and bounds checking, exactly the shape
    traditional stubs compile to.  Decodes byte-for-byte the same
    positions as the plan-driven decoder (pinned by
    [test/test_decplan.ml]). *)
