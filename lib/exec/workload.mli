(** Workload generation: random values for property tests and the
    paper's three evaluation payloads (section 4).

    The paper's methods take (1) an array of integers, (2) an array of
    rectangle structures — two coordinate pairs of integers each — and
    (3) an array of variable-size directory entries, each a
    variable-length name plus a fixed 136-byte stat-like structure
    (thirty 4-byte integers and one 16-byte character array), sized so
    that an encoded entry occupies about 256 bytes. *)

val random :
  ?string_max:int ->
  ?seq_max:int ->
  ?depth_limit:int ->
  Random.State.t ->
  Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Mint.idx ->
  Pres.t ->
  Value.t
(** A random value of the canonical representation ({!Value.rep_kind})
    for the given MINT/PRES pair, respecting declared bounds.
    Recursive types are cut off at [depth_limit]. *)

val int_array : int -> Value.t
(** [int_array bytes] — enough 32-bit integers to occupy [bytes]. *)

val rect_array : int -> Value.t
(** [rect_array bytes] — rectangles of four integers, 16 payload bytes
    each. *)

val dirent_array : int -> Value.t
(** [dirent_array bytes] — directory entries of roughly 256 encoded
    bytes each. *)

val dirent_name_length : int
(** Length of the synthetic file names in {!dirent_array}. *)
