(** Atom-level wire codec shared by the three stub engines.

    These helpers fix, once, how each {!Mplan.atom} maps runtime values
    to bytes under an encoding (endianness, widened XDR scalars, sign
    handling), so that the optimized, rpcgen-style and interpretive
    engines produce byte-identical messages — the property the central
    qcheck test asserts. *)

exception Decode_error of string
(** Raised for malformed wire data: invalid booleans/characters,
    out-of-range lengths, unknown discriminators. *)

val write_at : Mbuf.t -> be:bool -> int -> Mplan.atom -> Value.t -> unit
(** Unchecked store at a chunk offset ([Mbuf.ensure] already done). *)

val write_const_at : Mbuf.t -> be:bool -> int -> Mplan.atom -> int64 -> unit

val write_stream : Mbuf.t -> be:bool -> Mplan.atom -> Value.t -> unit
(** Checked, aligned append — the per-datum shape of traditional
    stubs. *)

val read_stream : Mbuf.reader -> be:bool -> Mplan.atom -> Value.t
(** Aligned, checked read; sign-extends or zero-extends per the atom's
    signedness and rejects malformed booleans. *)

val read_at : Mbuf.reader -> be:bool -> int -> Mplan.atom -> Value.t
(** Unchecked read at an offset ([Mbuf.need] already done). *)

val as_int : Value.t -> int
val as_int64 : Value.t -> int64

(** Length/padding helpers shared by every decode engine (closure-tree,
    plan-compiled, rpcgen-style), so the wire conventions for counted
    data live in exactly one place. *)

val read_len : Mbuf.reader -> be:bool -> align:int -> int
(** Aligned 32-bit count read; rejects negative counts with
    {!Decode_error}. *)

val check_bounds :
  what:string -> int -> min_len:int -> max_len:int option -> unit
(** Enforce a decoded count against the type's declared bounds. *)

val skip_pad : Mbuf.reader -> pad_unit:int -> int -> unit
(** Skip the trailing padding of an [n]-byte variable-length run up to
    the encoding's pad unit. *)

(** Value-dependent wire formats (msgpack, CBOR).  One mapping from
    {!Value.t} to the encoding's primitive hooks, shared by every
    engine, so differential parity across tiers holds by construction.
    All four translate {!Encoding.Var_error} into {!Decode_error};
    truncation surfaces as [Mbuf.Short_buffer] like the fixed paths. *)

val write_var :
  Encoding.varcodec -> check:bool -> Encoding.atom_kind -> Mbuf.t ->
  Value.t -> unit
(** Emit one scalar in canonical minimal-width form.  Integers are
    truncated to the declared field width first (the round trip a
    fixed-size store performs).  [check:false] requires the caller to
    have reserved the atom's worst case. *)

val read_var :
  Encoding.varcodec -> Encoding.atom_kind -> Mbuf.reader -> Value.t
(** Checked parse of one scalar; rejects non-minimal encodings and
    values outside the declared field width, so every decoder tier
    accepts exactly the same inputs. *)

val write_vlen :
  Encoding.varcodec -> check:bool -> Encoding.lenkind -> Mbuf.t -> int ->
  unit

val read_vlen : Encoding.varcodec -> Encoding.lenkind -> Mbuf.reader -> int

val const_to_value : Mint.const -> Value.t
val const_matches : Mint.const -> Value.t -> bool
