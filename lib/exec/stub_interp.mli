(** The interpretive baseline stub engine (the ILU / SunSoft-IIOP shape
    discussed in the paper's sections 4 and 5).

    Instead of compiling stubs, interpretive systems walk a runtime
    description of the message type for every value they marshal: each
    datum costs a type-graph traversal step, a dynamic dispatch on the
    node kind, and a table lookup at every named-type reference.  Hoschka
    and Huitema's "small, slow interpreted stubs" and ILU's
    per-datum marshal calls are this shape.

    Byte-identical to {!Stub_opt} and {!Stub_naive}; only the work per
    datum differs. *)

val compile_encoder :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Plan_compile.root list ->
  Stub_opt.encoder
(** "Compilation" here only records the roots: all type analysis happens
    at marshal time, per message. *)

val compile_decoder :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  Stub_opt.droot list ->
  Stub_opt.decoder
