type idx = int

type const =
  | Cint of int64
  | Cbool of bool
  | Cchar of char
  | Cstring of string

type def =
  | Void
  | Bool
  | Char8
  | Int of { bits : int; signed : bool }
  | Float of { bits : int }
  | Array of { elem : idx; min_len : int; max_len : int option }
  | Struct of (string * idx) list
  | Union of { discrim : idx; cases : case list; default : idx option }

and case = { c_const : const; c_body : idx }

type slot = Filled of def | Reserved

type t = {
  mutable nodes : slot array;
  mutable count : int;
  interned : (def, idx) Hashtbl.t;
}

let create () = { nodes = Array.make 64 Reserved; count = 0; interned = Hashtbl.create 64 }

let grow t =
  if t.count = Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) Reserved in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end

let alloc t slot =
  grow t;
  let i = t.count in
  t.nodes.(i) <- slot;
  t.count <- t.count + 1;
  i

let add t def =
  match Hashtbl.find_opt t.interned def with
  | Some i -> i
  | None ->
      let i = alloc t (Filled def) in
      Hashtbl.add t.interned def i;
      i

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Mint.get: index out of range";
  match t.nodes.(i) with
  | Filled def -> def
  | Reserved -> invalid_arg "Mint.get: node is reserved but not set"

let size t = t.count
let reserve t = alloc t Reserved

let set t i def =
  if i < 0 || i >= t.count then invalid_arg "Mint.set: index out of range";
  match t.nodes.(i) with
  | Reserved ->
      (* deliberately not interned: a node built through reserve/set may
         participate in a cycle, and structural equality on cyclic
         definitions does not terminate *)
      t.nodes.(i) <- Filled def
  | Filled _ -> invalid_arg "Mint.set: node already set"

let void t = add t Void
let bool_ t = add t Bool
let char8 t = add t Char8
let int_ t ~bits ~signed = add t (Int { bits; signed })
let int32 t = int_ t ~bits:32 ~signed:true
let uint32 t = int_ t ~bits:32 ~signed:false
let float_ t ~bits = add t (Float { bits })
let array t ~elem ~min_len ~max_len = add t (Array { elem; min_len; max_len })
let fixed_array t ~elem ~len = array t ~elem ~min_len:len ~max_len:(Some len)
let string_ t ~max_len = array t ~elem:(char8 t) ~min_len:0 ~max_len
let struct_ t fields = add t (Struct fields)
let union t ~discrim ~cases ~default = add t (Union { discrim; cases; default })

let equal_const (a : const) (b : const) = a = b

let pp_const ppf = function
  | Cint n -> Format.fprintf ppf "%Ld" n
  | Cbool b -> Format.fprintf ppf "%B" b
  | Cchar c -> Format.fprintf ppf "%C" c
  | Cstring s -> Format.fprintf ppf "%S" s

let pp t ppf root =
  let visiting = Hashtbl.create 8 in
  let rec go ppf i =
    if Hashtbl.mem visiting i then Format.fprintf ppf "<node %d>" i
    else begin
      Hashtbl.add visiting i ();
      (match get t i with
      | Void -> Format.pp_print_string ppf "void"
      | Bool -> Format.pp_print_string ppf "bool"
      | Char8 -> Format.pp_print_string ppf "char8"
      | Int { bits; signed } ->
          Format.fprintf ppf "%sint%d" (if signed then "" else "u") bits
      | Float { bits } -> Format.fprintf ppf "float%d" bits
      | Array { elem; min_len; max_len } ->
          let bound =
            match max_len with
            | Some m when m = min_len -> string_of_int m
            | Some m -> Printf.sprintf "%d..%d" min_len m
            | None -> Printf.sprintf "%d.." min_len
          in
          Format.fprintf ppf "@[<hov 2>array[%s](%a)@]" bound go elem
      | Struct fields ->
          Format.fprintf ppf "@[<hov 2>struct{";
          List.iteri
            (fun k (name, f) ->
              if k > 0 then Format.fprintf ppf ";@ ";
              Format.fprintf ppf "%s:%a" name go f)
            fields;
          Format.fprintf ppf "}@]"
      | Union { discrim; cases; default } ->
          Format.fprintf ppf "@[<hov 2>union(%a){" go discrim;
          List.iteri
            (fun k { c_const; c_body } ->
              if k > 0 then Format.fprintf ppf ";@ ";
              Format.fprintf ppf "%a=>%a" pp_const c_const go c_body)
            cases;
          (match default with
          | None -> ()
          | Some d -> Format.fprintf ppf ";@ default=>%a" go d);
          Format.fprintf ppf "}@]");
      Hashtbl.remove visiting i
    end
  in
  go ppf root

let iter_reachable t root f =
  let seen = Hashtbl.create 16 in
  let rec go i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      let def = get t i in
      f i def;
      match def with
      | Void | Bool | Char8 | Int _ | Float _ -> ()
      | Array { elem; min_len = _; max_len = _ } -> go elem
      | Struct fields -> List.iter (fun (_, x) -> go x) fields
      | Union { discrim; cases; default } ->
          go discrim;
          List.iter (fun { c_body; c_const = _ } -> go c_body) cases;
          (match default with None -> () | Some d -> go d)
    end
  in
  go root
