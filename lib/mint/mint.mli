(** MINT: the Message INTerface representation (paper section 2.2.1).

    A MINT graph describes the {e abstract} format of every message a
    client and server may exchange: the atomic values, aggregates and
    alternations that make up requests and replies — but none of the
    on-the-wire encoding details (byte order, alignment, length-prefix
    width), which are the back end's business, and none of the target
    language details, which PRES and CAST describe.

    MINT types form a directed graph that may be cyclic (XDR
    linked-list types).  Nodes live in an arena and are referenced by
    index; acyclic nodes are hash-consed so that structurally equal
    types share one node.  Cyclic nodes are created with
    {!reserve}/{!set}. *)

type idx = private int
(** Index of a node within an arena. *)

(** Constants used as union case labels.  Operation unions built by the
    CORBA presentation generator are keyed by operation-name strings
    (the GIOP convention); those built by the rpcgen presentation
    generator are keyed by procedure numbers. *)
type const =
  | Cint of int64
  | Cbool of bool
  | Cchar of char
  | Cstring of string

type def =
  | Void
  | Bool
  | Char8
  | Int of { bits : int; signed : bool }
  | Float of { bits : int }
  | Array of { elem : idx; min_len : int; max_len : int option }
      (** [min_len = max_len] is a fixed array; strings are arrays of
          {!Char8}; XDR optional data is an array with bounds [0, 1]. *)
  | Struct of (string * idx) list
  | Union of { discrim : idx; cases : case list; default : idx option }

and case = { c_const : const; c_body : idx }

type t

val create : unit -> t
val add : t -> def -> idx
(** Intern a definition (hash-consed for structurally equal acyclic
    definitions). *)

val get : t -> idx -> def
val size : t -> int

val reserve : t -> idx
(** Allocate a node to be filled in later with {!set}; used to build
    cyclic types.  Reading a reserved node before {!set} is an error. *)

val set : t -> idx -> def -> unit
(** Fill a reserved node.  Raises if the node was not reserved. *)

(** Convenience constructors. *)

val void : t -> idx
val bool_ : t -> idx
val char8 : t -> idx
val int_ : t -> bits:int -> signed:bool -> idx
val int32 : t -> idx
val uint32 : t -> idx
val float_ : t -> bits:int -> idx
val array : t -> elem:idx -> min_len:int -> max_len:int option -> idx
val fixed_array : t -> elem:idx -> len:int -> idx
val string_ : t -> max_len:int option -> idx
val struct_ : t -> (string * idx) list -> idx
val union : t -> discrim:idx -> cases:case list -> default:idx option -> idx

val equal_const : const -> const -> bool
val pp_const : Format.formatter -> const -> unit

val pp : t -> Format.formatter -> idx -> unit
(** Structural pretty-printer; cycles are cut with [<node N>]
    references. *)

val iter_reachable : t -> idx -> (idx -> def -> unit) -> unit
(** Apply a function once to every node reachable from the given root,
    in depth-first preorder. *)
