type t = {
  sim : Sim_core.t;
  lname : string;
  bandwidth : float;  (* bits per second, effective *)
  latency : float;
  per_msg_cpu : float;
  mutable busy_until : float;
}

let make ~sim ~name ~bandwidth_bps ~latency ~per_msg_cpu =
  { sim; lname = name; bandwidth = bandwidth_bps; latency; per_msg_cpu;
    busy_until = 0. }

let name t = t.lname

(* Process-wide link accounting for the metrics registry: how many
   messages and payload bytes crossed any simulated wire. *)
let g_msgs = Obs.counter "sim.link.msgs"
let g_bytes = Obs.counter "sim.link.bytes"

let transmit t ~bytes k =
  Obs.incr g_msgs 1;
  Obs.incr g_bytes bytes;
  let serialization = float_of_int (8 * bytes) /. t.bandwidth in
  let start = Float.max (Sim_core.now t.sim) t.busy_until in
  let done_sending = start +. serialization in
  t.busy_until <- done_sending;
  let arrival =
    done_sending +. t.latency +. (2. *. t.per_msg_cpu)
    -. Sim_core.now t.sim
  in
  Sim_core.schedule t.sim ~delay:arrival k

(* Like [transmit], but reports when the message reaches the receiver
   and how long it queued behind earlier traffic on the serialized
   wire.  The request tracer uses this to timestamp wire phases; the
   plain [transmit] stays allocation-free for untraced sends. *)
type timing = { tx_arrival_s : float; tx_queue_s : float }

let transmit_timed t ~bytes k =
  Obs.incr g_msgs 1;
  Obs.incr g_bytes bytes;
  let now = Sim_core.now t.sim in
  let serialization = float_of_int (8 * bytes) /. t.bandwidth in
  let start = Float.max now t.busy_until in
  let done_sending = start +. serialization in
  t.busy_until <- done_sending;
  let arrival_abs = done_sending +. t.latency +. (2. *. t.per_msg_cpu) in
  Sim_core.schedule t.sim ~delay:(arrival_abs -. now) k;
  { tx_arrival_s = arrival_abs; tx_queue_s = start -. now }

(* Scatter-gather send: the link only needs the message length — a real
   kernel would writev the iovec list — so a segmented message is
   transmitted without ever being flattened. *)
let transmit_mbuf t ~msg k = transmit t ~bytes:(Mbuf.pos msg) k

(* Effective bandwidths measured by the paper with ttcp: 10 Mbps
   Ethernet delivers about 7.5, 100 Mbps about 70, and 640 Mbps Myrinet
   only 84.5 because of the host protocol stack.  Per-message CPU costs
   reflect mid-90s protocol stacks. *)

let ethernet_10 ~sim =
  make ~sim ~name:"10Mbps Ethernet" ~bandwidth_bps:7.5e6 ~latency:1e-3
    ~per_msg_cpu:400e-6

let ethernet_100 ~sim =
  make ~sim ~name:"100Mbps Ethernet" ~bandwidth_bps:70e6 ~latency:1e-4
    ~per_msg_cpu:400e-6

let myrinet_640 ~sim =
  make ~sim ~name:"640Mbps Myrinet" ~bandwidth_bps:84.5e6 ~latency:5e-5
    ~per_msg_cpu:400e-6
