type stub_cost = {
  sc_name : string;
  sc_marshal : int -> float;
  sc_unmarshal : int -> float;
  sc_per_call : float;
}

(* Process-wide RPC accounting for the metrics registry. *)
let round_trips = Obs.counter "sim.rpc.round_trips"
let retransmits = Obs.counter "sim.rpc.retransmits"

(* A lost request is retried after a fixed timeout, the mid-90s
   coarse-grained kind (SunRPC defaulted to whole seconds; we use 10ms
   so simulated sweeps stay readable). *)
let retransmit_timeout = 0.01

let round_trip_throughput ~net ~cost ~msg_bytes ?(reply_bytes = 64)
    ?(rounds = 32) ?drop_every () =
  let sim = Sim_core.create () in
  let link = net ~sim in
  let finished = ref 0. in
  let sent = ref 0 in
  (* every [drop_every]-th request is lost on first transmission and
     retransmitted after the timeout; the deterministic schedule keeps
     figures reproducible (None: the paper's loss-free links) *)
  let send_request k =
    incr sent;
    let lost =
      match drop_every with Some n when n > 0 -> !sent mod n = 0 | _ -> false
    in
    if lost then begin
      Obs.incr retransmits 1;
      Sim_core.schedule sim ~delay:retransmit_timeout (fun () ->
          Link.transmit link ~bytes:msg_bytes k)
    end
    else Link.transmit link ~bytes:msg_bytes k
  in
  (* one round trip: client marshal -> wire -> server unmarshal ->
     server marshal reply -> wire -> client unmarshal -> next *)
  let rec round n =
    if n = 0 then finished := Sim_core.now sim
    else begin
      let t_start = Sim_core.now sim in
      Sim_core.schedule sim
        ~delay:(cost.sc_per_call +. cost.sc_marshal msg_bytes)
        (fun () ->
          send_request (fun () ->
              Sim_core.schedule sim ~delay:(cost.sc_unmarshal msg_bytes)
                (fun () ->
                  Sim_core.schedule sim ~delay:(cost.sc_marshal reply_bytes)
                    (fun () ->
                      Link.transmit link ~bytes:reply_bytes (fun () ->
                          Sim_core.schedule sim
                            ~delay:(cost.sc_unmarshal reply_bytes) (fun () ->
                              Obs.incr round_trips 1;
                              (* simulated (virtual) time, flagged by
                                 the category: these spans coexist with
                                 wall-clock compile spans in one trace
                                 but live on the simulator's clock *)
                              Obs_trace.emit ~cat:"sim"
                                ~args:
                                  [
                                    ("stub", cost.sc_name);
                                    ("link", Link.name link);
                                    ("bytes", string_of_int msg_bytes);
                                  ]
                                ~name:"round-trip" ~ts_ns:(t_start *. 1e9)
                                ~dur_ns:
                                  ((Sim_core.now sim -. t_start) *. 1e9)
                                ();
                              round (n - 1)))))))
    end
  in
  round rounds;
  Sim_core.run sim;
  let total = !finished in
  if total <= 0. then 0.
  else float_of_int (8 * msg_bytes * rounds) /. total /. 1e6
