type stub_cost = {
  sc_name : string;
  sc_marshal : int -> float;
  sc_unmarshal : int -> float;
  sc_per_call : float;
}

let round_trip_throughput ~net ~cost ~msg_bytes ?(reply_bytes = 64)
    ?(rounds = 32) () =
  let sim = Sim_core.create () in
  let link = net ~sim in
  let finished = ref 0. in
  (* one round trip: client marshal -> wire -> server unmarshal ->
     server marshal reply -> wire -> client unmarshal -> next *)
  let rec round n =
    if n = 0 then finished := Sim_core.now sim
    else
      Sim_core.schedule sim
        ~delay:(cost.sc_per_call +. cost.sc_marshal msg_bytes)
        (fun () ->
          Link.transmit link ~bytes:msg_bytes (fun () ->
              Sim_core.schedule sim ~delay:(cost.sc_unmarshal msg_bytes)
                (fun () ->
                  Sim_core.schedule sim ~delay:(cost.sc_marshal reply_bytes)
                    (fun () ->
                      Link.transmit link ~bytes:reply_bytes (fun () ->
                          Sim_core.schedule sim
                            ~delay:(cost.sc_unmarshal reply_bytes) (fun () ->
                              round (n - 1)))))))
  in
  round rounds;
  Sim_core.run sim;
  let total = !finished in
  if total <= 0. then 0.
  else float_of_int (8 * msg_bytes * rounds) /. total /. 1e6
