(** The Mach IPC cost model behind the paper's Figure 7 (MIG vs Flick
    end-to-end throughput on one host).

    MIG's stubs are specialized for Mach messages: very low fixed
    overhead, but typed-message per-byte processing.  Flick's stubs pay
    a higher fixed cost for their generality but marshal bytes faster.
    The model is calibrated to the paper's two anchor observations — MIG
    delivers twice Flick's throughput on tiny messages, and the curves
    cross at 8 KB — and then the whole curve is generated, so the
    remaining shape (Flick about 17% ahead at 64 KB in the paper) is an
    output, not an input. *)

type t = {
  mig_fixed : float;  (** seconds per message, MIG *)
  flick_fixed : float;
  mig_per_byte : float;
  flick_per_byte : float;
}

val calibrate : flick_per_byte:float -> mig_per_byte:float -> t
(** Solve the fixed costs from the two anchors, given measured per-byte
    costs (Flick: the optimized engine on Mach messages; MIG: the
    per-datum typed-message shape). *)

val throughput : t -> [ `Mig | `Flick ] -> bytes:int -> float
(** Single-host round-trip throughput in Mbit/s for an integer-array
    message of the given size. *)

val crossover : t -> float
(** Message size at which the Flick curve overtakes MIG. *)
