type t = {
  mig_fixed : float;
  flick_fixed : float;
  mig_per_byte : float;
  flick_per_byte : float;
}

(* Anchors (paper, Figure 7): at 64-byte messages MIG throughput is 2x
   Flick's; the curves cross at 8192 bytes.

     t_flick(64)  = 2 * t_mig(64)
     t_flick(8192) = t_mig(8192)

   with t_x(B) = fixed_x + B * per_byte_x.  Solving:

     flick_fixed - mig_fixed = 8192 * (mig_per_byte - flick_per_byte)
     mig_fixed = delta + 64*flick_per_byte - 128*mig_per_byte
*)
let calibrate ~flick_per_byte ~mig_per_byte =
  if mig_per_byte <= flick_per_byte then
    invalid_arg "Mach_model.calibrate: MIG must be slower per byte";
  let delta = 8192. *. (mig_per_byte -. flick_per_byte) in
  let mig_fixed =
    delta +. (64. *. flick_per_byte) -. (128. *. mig_per_byte)
  in
  let mig_fixed = Float.max mig_fixed (delta /. 16.) in
  { mig_fixed; flick_fixed = mig_fixed +. delta; mig_per_byte; flick_per_byte }

let time t which ~bytes =
  match which with
  | `Mig -> t.mig_fixed +. (float_of_int bytes *. t.mig_per_byte)
  | `Flick -> t.flick_fixed +. (float_of_int bytes *. t.flick_per_byte)

let throughput t which ~bytes =
  float_of_int (8 * bytes) /. time t which ~bytes /. 1e6

let crossover t =
  (t.flick_fixed -. t.mig_fixed) /. (t.mig_per_byte -. t.flick_per_byte)
