(** A small discrete-event simulation core.

    Stands in for the paper's testbed networks: client and server
    processes are callbacks scheduled on a virtual clock, links impose
    serialization and propagation delays ({!Link}).  Events at equal
    times fire in schedule order (deterministic runs). *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedule a callback [delay] seconds from now.  Negative delays are
    rejected. *)

val run : t -> unit
(** Process events until none remain. *)

val run_until : t -> float -> unit
(** Process events with timestamps up to the given time. *)

val events_processed : t -> int
