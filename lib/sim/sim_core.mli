(** A small discrete-event simulation core.

    Stands in for the paper's testbed networks: client and server
    processes are callbacks scheduled on a virtual clock, links impose
    serialization and propagation delays ({!Link}).  Events at equal
    times fire in schedule order (deterministic runs). *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedule a callback [delay] seconds from now.  Negative delays are
    rejected. *)

(** {2 Cancellable events}

    Long-lived producers (per-connection request generators, coalesced
    flush timers) need to withdraw work that is already on the heap when
    their connection dies.  A {!handle} names one scheduled event; the
    heap entry stays put but fires as a no-op once cancelled. *)

type handle

val schedule_cancellable : t -> delay:float -> (unit -> unit) -> handle
(** Like {!schedule}, returning a handle the caller can {!cancel}. *)

val cancel : handle -> unit
(** Withdraw the event: if it has not fired yet it never will.
    Cancelling an already-fired or already-cancelled event is a
    no-op. *)

val cancelled : handle -> bool
(** True once {!cancel} was called before the event fired. *)

val run : t -> unit
(** Process events until none remain. *)

val run_until : t -> float -> unit
(** Process events with timestamps up to the given time. *)

val events_processed : t -> int
