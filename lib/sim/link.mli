(** A simulated network link.

    Models the effective path between two hosts the way the paper's
    measurements see it: an {e effective} bandwidth (what ttcp reports
    after the OS protocol stack takes its share — 7.5 of 10 Mbps, 70 of
    100 Mbps, 84.5 of 640 Mbps in the paper), a propagation latency, and
    a fixed per-message protocol-stack CPU cost.  The link serializes:
    a message occupies it for [bytes / bandwidth] seconds, and queued
    messages wait. *)

type t

val make :
  sim:Sim_core.t ->
  name:string ->
  bandwidth_bps:float ->
  latency:float ->
  per_msg_cpu:float ->
  t

val name : t -> string

val transmit : t -> bytes:int -> (unit -> unit) -> unit
(** Deliver [bytes] over the link, invoking the continuation at the
    receiver when the last byte (plus per-message CPU cost at each end)
    has arrived. *)

type timing = {
  tx_arrival_s : float;  (** absolute arrival instant at the receiver *)
  tx_queue_s : float;  (** time spent queued behind earlier messages *)
}

val transmit_timed : t -> bytes:int -> (unit -> unit) -> timing
(** {!transmit}, additionally reporting the delivery timing — the
    request tracer timestamps wire phases with it.  Identical schedule
    to [transmit] for the same arguments. *)

val transmit_mbuf : t -> msg:Mbuf.t -> (unit -> unit) -> unit
(** Transmit a marshal buffer as it stands ({!Mbuf.pos} bytes).  Only
    the length is read — the segment list is handed to the (simulated)
    device as an iovec, so a scatter-gather message is never
    flattened. *)

(** The paper's three networks with their measured effective
    bandwidths. *)

val ethernet_10 : sim:Sim_core.t -> t
val ethernet_100 : sim:Sim_core.t -> t
val myrinet_640 : sim:Sim_core.t -> t
