(* A binary min-heap of (time, sequence, callback).  The sequence number
   makes simultaneous events fire in schedule order. *)

type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let dummy = { time = 0.; seq = 0; action = (fun () -> ()) }

let create () =
  { heap = Array.make 64 dummy; size = 0; clock = 0.; next_seq = 0; processed = 0 }

let now t = t.clock
let events_processed t = t.processed

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Sim_core.schedule: negative delay";
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let ev = { time = t.clock +. delay; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Cancellable events: the heap entry is not removed (heap deletion is
   not worth its bookkeeping for the handful of timers a server carries
   per connection); the wrapper just refuses to fire.  [h_fired] keeps
   [cancel]-after-fire a no-op that still reads back as "not
   cancelled". *)
type handle = { mutable h_cancelled : bool; mutable h_fired : bool }

let schedule_cancellable t ~delay action =
  let h = { h_cancelled = false; h_fired = false } in
  schedule t ~delay (fun () ->
      if not h.h_cancelled then begin
        h.h_fired <- true;
        action ()
      end);
  h

let cancel h = if not h.h_fired then h.h_cancelled <- true
let cancelled h = h.h_cancelled

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  top

let step t =
  let ev = pop t in
  t.clock <- ev.time;
  t.processed <- t.processed + 1;
  ev.action ()

let run t =
  while t.size > 0 do
    step t
  done

let run_until t limit =
  while t.size > 0 && t.heap.(0).time <= limit do
    step t
  done
