(** End-to-end RPC throughput simulation (paper Figures 4-6).

    The paper measures round-trip invocations of stubs sending arrays of
    increasing size across three networks, and explains the result
    structure as: marshal time (stub quality) + protocol stack + wire
    time, with the reply being a small message.  This module replays
    that experiment in the discrete-event simulator: the stub costs are
    {e measured} marshal/unmarshal seconds from the stub engines (scaled
    to the paper's hardware era by a calibration factor), and the wire
    is a {!Link} with the measured effective bandwidth.

    Expected shapes: on the slow Ethernet all compilers saturate the
    wire (the paper's 6-7.5 Mbps ceiling); on the fast links the
    marshal-bound compilers flatline while Flick-style stubs climb
    severalfold. *)

type stub_cost = {
  sc_name : string;
  sc_marshal : int -> float;  (** seconds to marshal a request of n payload bytes *)
  sc_unmarshal : int -> float;
  sc_per_call : float;  (** fixed per-invocation stub overhead, seconds *)
}

val round_trip_throughput :
  net:(sim:Sim_core.t -> Link.t) ->
  cost:stub_cost ->
  msg_bytes:int ->
  ?reply_bytes:int ->
  ?rounds:int ->
  ?drop_every:int ->
  unit ->
  float
(** Simulated end-to-end throughput in Mbit/s of payload, running
    [rounds] back-to-back round trips (default 32, reply 64 bytes).
    [drop_every:n] loses every [n]-th request on first transmission and
    retransmits it after a fixed timeout (deterministic, so figures
    stay reproducible; default: no loss, the paper's model).  Each
    completed round trip increments the [sim.rpc.round_trips] counter
    (retransmissions count into [sim.rpc.retransmits]) and — when
    tracing is enabled — emits a [round-trip] span on the simulator's
    {e virtual} clock (category ["sim"]). *)
