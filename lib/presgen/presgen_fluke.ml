(* Derived from the CORBA presentation: same data-type mapping and stub
   shapes, different request keying and no exception machinery. *)
let hooks =
  {
    Presgen_corba.hooks with
    Presgen_base.style = Pres_c.Fluke;
    request_case = (fun _intf op -> Mint.Cint op.Aoi.op_code);
    supports_exceptions = false;
    supports_self_reference = true;
  }

let generate spec q = Presgen_base.generate hooks spec q
