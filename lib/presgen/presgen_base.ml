type hooks = {
  style : Pres_c.style;
  scoped_name : Aoi.qname -> string;
  client_stub_name : string -> Aoi.operation -> string;
  server_func_name : string -> Aoi.operation -> string;
  request_case : Aoi.interface -> Aoi.operation -> Mint.const;
  seq_len_field : string;
  seq_buf_field : string;
  objref_ctype : Cast.ctype;
  supports_exceptions : bool;
  supports_self_reference : bool;
  client_first_params : string -> Cast.param list;
  client_last_params : string -> Cast.param list;
  server_last_params : string -> Cast.param list;
  string_len_params : bool;
      (* present 'in' string parameters as (char *, length) pairs so
         stubs never call strlen - the paper's section 2.2 example *)
}

type gen = {
  hooks : hooks;
  env : Aoi_env.t;
  report : Aoi_check.report;
  mint : Mint.t;
  mutable decls_rev : Cast.decl list;
  emitted : (string, unit) Hashtbl.t;  (* C type names already declared *)
  mint_memo : (string, Mint.idx) Hashtbl.t;
  mutable named_pres : (string * (Mint.idx * Pres.t)) list;
  pres_started : (string, unit) Hashtbl.t;
}

let key (q : Aoi.qname) = String.concat "::" q
let scope_of (q : Aoi.qname) = match List.rev q with [] -> [] | _ :: r -> List.rev r
let emit gen d = gen.decls_rev <- d :: gen.decls_rev

let interfaces_of spec = List.map fst (Aoi.interfaces spec)

(* ------------------------------------------------------------------ *)
(* Name resolution helpers                                             *)
(* ------------------------------------------------------------------ *)

let resolve gen scope q = Aoi_env.resolve_exn gen.env ~scope q

let enum_value gen scope q =
  match resolve gen scope q with
  | _, Aoi_env.Benumerator (_, v) -> v
  | _, ( Aoi_env.Btype _ | Aoi_env.Bconst _ | Aoi_env.Bexception _
       | Aoi_env.Binterface _ | Aoi_env.Bmodule ) ->
      Diag.error "%s is not an enumerator" (Aoi.qname_to_string q)

let mint_const_of_label gen scope (c : Aoi.const) : Mint.const =
  match c with
  | Aoi.Const_int n -> Mint.Cint n
  | Aoi.Const_bool b -> Mint.Cbool b
  | Aoi.Const_char ch -> Mint.Cchar ch
  | Aoi.Const_enum q -> Mint.Cint (enum_value gen scope q)
  | Aoi.Const_string _ | Aoi.Const_float _ ->
      Diag.error "invalid union case label"

let is_self_ref gen qn = Aoi_check.is_self_referential gen.report qn

(* ------------------------------------------------------------------ *)
(* AOI -> MINT                                                         *)
(* ------------------------------------------------------------------ *)

let rec mint_of gen scope (ty : Aoi.typ) : Mint.idx =
  let m = gen.mint in
  match ty with
  | Aoi.Void -> Mint.void m
  | Aoi.Boolean -> Mint.bool_ m
  | Aoi.Char -> Mint.char8 m
  | Aoi.Octet -> Mint.int_ m ~bits:8 ~signed:false
  | Aoi.Integer { bits; signed } -> Mint.int_ m ~bits ~signed
  | Aoi.Float bits -> Mint.float_ m ~bits
  | Aoi.String bound -> Mint.string_ m ~max_len:bound
  | Aoi.Sequence (elem, bound) ->
      Mint.array m ~elem:(mint_of gen scope elem) ~min_len:0 ~max_len:bound
  | Aoi.Array (elem, dims) ->
      let elem_idx = mint_of gen scope elem in
      List.fold_right
        (fun dim inner -> Mint.fixed_array m ~elem:inner ~len:dim)
        dims elem_idx
  | Aoi.Struct_type fields ->
      Mint.struct_ m
        (List.map (fun f -> (f.Aoi.f_name, mint_of gen scope f.Aoi.f_type)) fields)
  | Aoi.Union_type u ->
      let discrim = mint_of gen scope u.Aoi.u_discrim in
      let cases =
        List.concat_map
          (fun (c : Aoi.union_case) ->
            let body = mint_of gen scope c.Aoi.c_field.Aoi.f_type in
            List.map
              (fun label ->
                { Mint.c_const = mint_const_of_label gen scope label;
                  c_body = body })
              c.Aoi.c_labels)
          u.Aoi.u_cases
      in
      let default =
        Option.map (fun f -> mint_of gen scope f.Aoi.f_type) u.Aoi.u_default
      in
      Mint.union m ~discrim ~cases ~default
  | Aoi.Enum_type _ ->
      (* enums travel as 32-bit integers; the value set is a presentation
         concern *)
      Mint.int32 m
  | Aoi.Optional elem ->
      Mint.array m ~elem:(mint_of gen scope elem) ~min_len:0 ~max_len:(Some 1)
  | Aoi.Object _ ->
      (* object references travel as stringified references *)
      Mint.string_ m ~max_len:None
  | Aoi.Named q -> (
      match resolve gen scope q with
      | _, Aoi_env.Binterface _ -> Mint.string_ m ~max_len:None
      | qn, Aoi_env.Btype body -> (
          let k = key qn in
          match Hashtbl.find_opt gen.mint_memo k with
          | Some i -> i
          | None ->
              if is_self_ref gen qn then begin
                let r = Mint.reserve m in
                Hashtbl.add gen.mint_memo k r;
                let body_idx = mint_of gen (scope_of qn) body in
                Mint.set m r (Mint.get m body_idx);
                r
              end
              else begin
                let i = mint_of gen (scope_of qn) body in
                Hashtbl.add gen.mint_memo k i;
                i
              end)
      | _, ( Aoi_env.Bconst _ | Aoi_env.Benumerator _ | Aoi_env.Bexception _
           | Aoi_env.Bmodule ) ->
          Diag.error "%s does not name a type" (Aoi.qname_to_string q))

(* ------------------------------------------------------------------ *)
(* AOI -> PRES                                                         *)
(* ------------------------------------------------------------------ *)

let rec pres_of gen scope (ty : Aoi.typ) : Pres.t =
  match ty with
  | Aoi.Void -> Pres.Void
  | Aoi.Boolean | Aoi.Char | Aoi.Octet | Aoi.Integer _ | Aoi.Float _ ->
      Pres.Direct
  | Aoi.Enum_type _ -> Pres.Enum_direct
  | Aoi.String _ -> Pres.Terminated_string
  | Aoi.Sequence (elem, _) ->
      Pres.Counted_seq
        {
          len_field = gen.hooks.seq_len_field;
          buf_field = gen.hooks.seq_buf_field;
          elem = pres_of gen scope elem;
        }
  | Aoi.Array (elem, dims) ->
      let sub = pres_of gen scope elem in
      List.fold_right (fun _dim inner -> Pres.Fixed_array inner) dims sub
  | Aoi.Struct_type fields ->
      Pres.Struct
        (List.map (fun f -> (f.Aoi.f_name, pres_of gen scope f.Aoi.f_type)) fields)
  | Aoi.Union_type u ->
      let arms =
        List.concat_map
          (fun (c : Aoi.union_case) ->
            let member =
              match c.Aoi.c_field.Aoi.f_type with
              | Aoi.Void -> ""
              | _ -> c.Aoi.c_field.Aoi.f_name
            in
            let sub = pres_of gen scope c.Aoi.c_field.Aoi.f_type in
            List.map (fun _label -> (member, sub)) c.Aoi.c_labels)
          u.Aoi.u_cases
      in
      let default_arm =
        Option.map
          (fun (f : Aoi.field) ->
            let member = match f.Aoi.f_type with Aoi.Void -> "" | _ -> f.Aoi.f_name in
            (member, pres_of gen scope f.Aoi.f_type))
          u.Aoi.u_default
      in
      Pres.Union { discrim_field = "_d"; union_field = "_u"; arms; default_arm }
  | Aoi.Optional elem -> Pres.Opt_ptr (pres_of gen scope elem)
  | Aoi.Object _ -> Pres.Terminated_string
  | Aoi.Named q -> (
      match resolve gen scope q with
      | _, Aoi_env.Binterface _ -> Pres.Terminated_string
      | qn, Aoi_env.Btype body ->
          if is_self_ref gen qn then begin
            let name = gen.hooks.scoped_name qn in
            if not (Hashtbl.mem gen.pres_started name) then begin
              Hashtbl.add gen.pres_started name ();
              let idx = mint_of gen scope (Aoi.Named q) in
              let sub = pres_of gen (scope_of qn) body in
              gen.named_pres <- (name, (idx, sub)) :: gen.named_pres
            end;
            Pres.Ref name
          end
          else pres_of gen (scope_of qn) body
      | _, ( Aoi_env.Bconst _ | Aoi_env.Benumerator _ | Aoi_env.Bexception _
           | Aoi_env.Bmodule ) ->
          Diag.error "%s does not name a type" (Aoi.qname_to_string q))

(* ------------------------------------------------------------------ *)
(* AOI -> CAST types and declarations                                  *)
(* ------------------------------------------------------------------ *)

let rec ctype_of gen scope ~hint (ty : Aoi.typ) : Cast.ctype =
  match ty with
  | Aoi.Void -> Cast.Tvoid
  | Aoi.Boolean -> Cast.Tnamed "flick_bool_t"
  | Aoi.Char -> Cast.Tchar
  | Aoi.Octet -> Cast.uint8_t
  | Aoi.Integer { bits; signed } -> Cast.int_of_bits ~bits ~signed
  | Aoi.Float 32 -> Cast.Tfloat
  | Aoi.Float _ -> Cast.Tdouble
  | Aoi.String _ -> Cast.Tptr Cast.Tchar
  | Aoi.Sequence (elem, _) ->
      let elem_ct = ctype_of gen scope ~hint:(hint ^ "_elem") elem in
      let tag = hint ^ "_seq" in
      declare_seq_struct gen tag elem_ct;
      Cast.Tnamed tag
  | Aoi.Array (elem, dims) ->
      let elem_ct = ctype_of gen scope ~hint:(hint ^ "_elem") elem in
      List.fold_right (fun d inner -> Cast.Tarray (inner, Some d)) dims elem_ct
  | Aoi.Struct_type fields ->
      declare_struct gen scope ~tag:hint fields;
      Cast.Tnamed hint
  | Aoi.Union_type u ->
      declare_union gen scope ~tag:hint u;
      Cast.Tnamed hint
  | Aoi.Enum_type items ->
      declare_enum gen scope ~tag:hint items;
      Cast.Tnamed hint
  | Aoi.Optional elem -> Cast.Tptr (ctype_of gen scope ~hint elem)
  | Aoi.Object q ->
      let _ = resolve gen scope q in
      gen.hooks.objref_ctype
  | Aoi.Named q -> (
      match resolve gen scope q with
      | qn, Aoi_env.Binterface _ ->
          let name = gen.hooks.scoped_name qn in
          declare_objref gen name;
          Cast.Tnamed name
      | qn, Aoi_env.Btype body ->
          let name = gen.hooks.scoped_name qn in
          declare_named gen qn name body;
          Cast.Tnamed name
      | _, ( Aoi_env.Bconst _ | Aoi_env.Benumerator _ | Aoi_env.Bexception _
           | Aoi_env.Bmodule ) ->
          Diag.error "%s does not name a type" (Aoi.qname_to_string q))

and declare_seq_struct gen tag elem_ct =
  if not (Hashtbl.mem gen.emitted tag) then begin
    Hashtbl.add gen.emitted tag ();
    emit gen
      (Cast.Dstruct
         ( tag,
           [
             (gen.hooks.seq_len_field, Cast.uint32_t);
             (gen.hooks.seq_buf_field, Cast.Tptr elem_ct);
           ] ));
    emit gen (Cast.Dtypedef (tag, Cast.Tstruct_ref tag))
  end

and declare_struct gen scope ~tag fields =
  if not (Hashtbl.mem gen.emitted tag) then begin
    Hashtbl.add gen.emitted tag ();
    (* typedef first so that recursive member pointers can use the name *)
    emit gen (Cast.Dtypedef (tag, Cast.Tstruct_ref tag));
    let cfields =
      List.map
        (fun (f : Aoi.field) ->
          (f.Aoi.f_name, ctype_of gen scope ~hint:(tag ^ "_" ^ f.Aoi.f_name) f.Aoi.f_type))
        fields
    in
    emit gen (Cast.Dstruct (tag, cfields))
  end

and declare_union gen scope ~tag (u : Aoi.union_body) =
  if not (Hashtbl.mem gen.emitted tag) then begin
    Hashtbl.add gen.emitted tag ();
    emit gen (Cast.Dtypedef (tag, Cast.Tstruct_ref tag));
    let discrim_ct = ctype_of gen scope ~hint:(tag ^ "_d") u.Aoi.u_discrim in
    let arm (f : Aoi.field) =
      match f.Aoi.f_type with
      | Aoi.Void -> None
      | _ ->
          Some
            ( f.Aoi.f_name,
              ctype_of gen scope ~hint:(tag ^ "_" ^ f.Aoi.f_name) f.Aoi.f_type )
    in
    let arms =
      List.filter_map (fun (c : Aoi.union_case) -> arm c.Aoi.c_field) u.Aoi.u_cases
      @ (match u.Aoi.u_default with None -> [] | Some f -> Option.to_list (arm f))
    in
    let utag = tag ^ "_u" in
    if arms <> [] then emit gen (Cast.Dunion_decl (utag, arms));
    let fields =
      ("_d", discrim_ct)
      :: (if arms <> [] then [ ("_u", Cast.Tunion_ref utag) ] else [])
    in
    emit gen (Cast.Dstruct (tag, fields))
  end

and declare_enum gen scope ~tag items =
  ignore scope;
  if not (Hashtbl.mem gen.emitted tag) then begin
    Hashtbl.add gen.emitted tag ();
    let prefix = match tag with "" -> "" | _ -> tag ^ "_" in
    emit gen
      (Cast.Denum_decl (tag, List.map (fun (n, v) -> (prefix ^ n, v)) items));
    emit gen (Cast.Dtypedef (tag, Cast.Tenum_ref tag))
  end

and declare_objref gen name =
  if not (Hashtbl.mem gen.emitted name) then begin
    Hashtbl.add gen.emitted name ();
    emit gen (Cast.Dtypedef (name, gen.hooks.objref_ctype))
  end

and declare_named gen qn name body =
  if not (Hashtbl.mem gen.emitted name) then
    match (body : Aoi.typ) with
    | Aoi.Struct_type fields -> declare_struct gen (scope_of qn) ~tag:name fields
    | Aoi.Union_type u -> declare_union gen (scope_of qn) ~tag:name u
    | Aoi.Enum_type items -> declare_enum gen (scope_of qn) ~tag:name items
    | Aoi.Void | Aoi.Boolean | Aoi.Char | Aoi.Octet | Aoi.Integer _
    | Aoi.Float _ | Aoi.String _ | Aoi.Sequence _ | Aoi.Array _ | Aoi.Named _
    | Aoi.Optional _ | Aoi.Object _ ->
        Hashtbl.add gen.emitted name ();
        let ct = ctype_of gen (scope_of qn) ~hint:name body in
        emit gen (Cast.Dtypedef (name, ct))

(* ------------------------------------------------------------------ *)
(* Declarations for a whole specification                              *)
(* ------------------------------------------------------------------ *)

let rec emit_defs gen scope defs =
  List.iter
    (fun (def : Aoi.def) ->
      match def with
      | Aoi.Dtype (n, body) ->
          declare_named gen (scope @ [ n ]) (gen.hooks.scoped_name (scope @ [ n ])) body
      | Aoi.Dconst (n, _, v) -> (
          let cname = gen.hooks.scoped_name (scope @ [ n ]) in
          match v with
          | Aoi.Const_int i -> emit gen (Cast.Ddefine (cname, Int64.to_string i))
          | Aoi.Const_bool b -> emit gen (Cast.Ddefine (cname, if b then "1" else "0"))
          | Aoi.Const_char c ->
              emit gen (Cast.Ddefine (cname, Printf.sprintf "'%c'" c))
          | Aoi.Const_string s ->
              emit gen (Cast.Ddefine (cname, Printf.sprintf "%S" s))
          | Aoi.Const_float f ->
              emit gen (Cast.Ddefine (cname, Printf.sprintf "%.17g" f))
          | Aoi.Const_enum q ->
              emit gen (Cast.Ddefine (cname, gen.hooks.scoped_name q)))
      | Aoi.Dexception (n, fields) ->
          declare_struct gen scope ~tag:(gen.hooks.scoped_name (scope @ [ n ])) fields
      | Aoi.Dinterface i ->
          let qn = scope @ [ i.Aoi.i_name ] in
          declare_objref gen (gen.hooks.scoped_name qn);
          emit_defs gen qn i.Aoi.i_defs
      | Aoi.Dmodule (n, sub) -> emit_defs gen (scope @ [ n ]) sub)
    defs

(* ------------------------------------------------------------------ *)
(* Stubs                                                               *)
(* ------------------------------------------------------------------ *)

(* Classify the (resolved) shape of a type to pick parameter-passing
   conventions. *)
let rec passing_kind gen scope (ty : Aoi.typ) =
  match ty with
  | Aoi.Void -> `Void
  | Aoi.Boolean | Aoi.Char | Aoi.Octet | Aoi.Integer _ | Aoi.Float _
  | Aoi.Enum_type _ ->
      `Atomic
  | Aoi.String _ | Aoi.Object _ -> `Pointer
  | Aoi.Optional _ -> `Pointer
  | Aoi.Sequence _ | Aoi.Struct_type _ | Aoi.Union_type _ | Aoi.Array _ ->
      `Aggregate
  | Aoi.Named q -> (
      match resolve gen scope q with
      | _, Aoi_env.Binterface _ -> `Pointer
      | qn, Aoi_env.Btype body -> passing_kind gen (scope_of qn) body
      | _, ( Aoi_env.Bconst _ | Aoi_env.Benumerator _ | Aoi_env.Bexception _
           | Aoi_env.Bmodule ) ->
          Diag.error "%s does not name a type" (Aoi.qname_to_string q))

(* is this (possibly typedef'd) type a string? *)
let rec is_string_type gen scope (ty : Aoi.typ) =
  match ty with
  | Aoi.String _ -> true
  | Aoi.Named q -> (
      match resolve gen scope q with
      | qn, Aoi_env.Btype body -> is_string_type gen (scope_of qn) body
      | _, _ -> false)
  | _ -> false

let param_info gen scope ~hint (p : Aoi.param) : Pres_c.param_info =
  let base_ct = ctype_of gen scope ~hint p.Aoi.p_type in
  let kind = passing_kind gen scope p.Aoi.p_type in
  let ctype, byref =
    match (p.Aoi.p_dir, kind) with
    | Aoi.In, (`Atomic | `Pointer) -> (base_ct, false)
    | Aoi.In, `Aggregate -> (Cast.Tptr base_ct, true)
    | (Aoi.Out | Aoi.Inout), (`Atomic | `Pointer | `Aggregate) ->
        (Cast.Tptr base_ct, true)
    | _, `Void -> Diag.error "void parameter %s" p.Aoi.p_name
  in
  let pres = pres_of gen scope p.Aoi.p_type in
  let pres =
    if
      gen.hooks.string_len_params
      && p.Aoi.p_dir = Aoi.In
      && is_string_type gen scope p.Aoi.p_type
    then Pres.Terminated_string_len { len_param = p.Aoi.p_name ^ "_len" }
    else pres
  in
  {
    Pres_c.pi_name = p.Aoi.p_name;
    pi_dir = p.Aoi.p_dir;
    pi_ctype = ctype;
    pi_byref = byref;
    pi_mint = mint_of gen scope p.Aoi.p_type;
    pi_pres = pres;
  }

let return_info gen scope ~hint (ty : Aoi.typ) : Pres_c.param_info option =
  match passing_kind gen scope ty with
  | `Void -> None
  | kind ->
      let base_ct = ctype_of gen scope ~hint ty in
      let ctype, byref =
        match kind with
        | `Atomic | `Pointer -> (base_ct, false)
        | `Aggregate -> (Cast.Tptr base_ct, true)
        | `Void -> assert false
      in
      Some
        {
          Pres_c.pi_name = "_return";
          pi_dir = Aoi.Out;
          pi_ctype = ctype;
          pi_byref = byref;
          pi_mint = mint_of gen scope ty;
          pi_pres = pres_of gen scope ty;
        }

let exception_info gen scope q : string * Pres_c.param_info =
  let qn, fields =
    match resolve gen scope q with
    | qn, Aoi_env.Bexception fields -> (qn, fields)
    | _, ( Aoi_env.Btype _ | Aoi_env.Bconst _ | Aoi_env.Benumerator _
         | Aoi_env.Binterface _ | Aoi_env.Bmodule ) ->
        Diag.error "%s does not name an exception" (Aoi.qname_to_string q)
  in
  let cname = gen.hooks.scoped_name qn in
  let as_struct = Aoi.Struct_type fields in
  let escope = scope_of qn in
  ( Aoi.qname_to_string qn,
    {
      Pres_c.pi_name = cname;
      pi_dir = Aoi.Out;
      pi_ctype = Cast.Tptr (Cast.Tnamed cname);
      pi_byref = true;
      pi_mint = mint_of gen escope as_struct;
      pi_pres = pres_of gen escope as_struct;
    } )

(* All operations of an interface: inherited ones first (depth-first
   over parents), then the interface's own, then those derived from
   attributes.  Codes are reassigned sequentially unless the interface
   carries ONC program numbers, whose procedure numbers are
   authoritative. *)
let rec gather_ops gen scope (intf : Aoi.interface) : Aoi.operation list =
  let inherited =
    List.concat_map
      (fun q ->
        match resolve gen scope q with
        | qn, Aoi_env.Binterface parent -> gather_ops gen (scope_of qn) parent
        | _, ( Aoi_env.Btype _ | Aoi_env.Bconst _ | Aoi_env.Benumerator _
             | Aoi_env.Bexception _ | Aoi_env.Bmodule ) ->
            Diag.error "%s is not an interface" (Aoi.qname_to_string q))
      intf.Aoi.i_parents
  in
  let own = intf.Aoi.i_ops @ Aoi.attribute_operations intf in
  let all = inherited @ own in
  (* codes from the front end (procedure numbers, MIG message ids) are
     authoritative; only inheritance merging needs renumbering *)
  if inherited = [] then all
  else
    match intf.Aoi.i_program with
    | Some _ -> all
    | None ->
        List.mapi (fun i op -> { op with Aoi.op_code = Int64.of_int i }) all

let build_stub gen scope iface_cname (intf : Aoi.interface) (op : Aoi.operation)
    : Pres_c.op_stub =
  if (not gen.hooks.supports_exceptions) && op.Aoi.op_raises <> [] then
    Diag.error
      "operation %s raises exceptions, which the %s presentation cannot express"
      op.Aoi.op_name
      (match gen.hooks.style with
      | Pres_c.Corba -> "corba-c"
      | Pres_c.Rpcgen -> "rpcgen-c"
      | Pres_c.Mig -> "mig-c"
      | Pres_c.Fluke -> "fluke-c");
  let iscope = scope @ [ intf.Aoi.i_name ] in
  let hint = iface_cname ^ "_" ^ op.Aoi.op_name in
  let params =
    List.map
      (fun p -> param_info gen iscope ~hint:(hint ^ "_" ^ p.Aoi.p_name) p)
      op.Aoi.op_params
  in
  let ret = return_info gen iscope ~hint:(hint ^ "_ret") op.Aoi.op_return in
  let exceptions =
    List.map (exception_info gen iscope) op.Aoi.op_raises
  in
  {
    Pres_c.os_op = op;
    os_request_case = gen.hooks.request_case intf op;
    os_client_name = gen.hooks.client_stub_name iface_cname op;
    os_server_name = gen.hooks.server_func_name iface_cname op;
    os_params = params;
    os_return = ret;
    os_exceptions = exceptions;
  }

(* Request union: one case per operation, carrying the in/inout data. *)
let build_request gen (stubs : Pres_c.op_stub list) : Mint.idx =
  let m = gen.mint in
  let discrim =
    match stubs with
    | { Pres_c.os_request_case = Mint.Cstring _; _ } :: _ -> Mint.string_ m ~max_len:None
    | _ -> Mint.uint32 m
  in
  let cases =
    List.map
      (fun (st : Pres_c.op_stub) ->
        let fields =
          List.filter_map
            (fun (pi : Pres_c.param_info) ->
              match pi.Pres_c.pi_dir with
              | Aoi.In | Aoi.Inout -> Some (pi.Pres_c.pi_name, pi.Pres_c.pi_mint)
              | Aoi.Out -> None)
            st.Pres_c.os_params
        in
        { Mint.c_const = st.Pres_c.os_request_case;
          c_body = Mint.struct_ m fields })
      stubs
  in
  Mint.union m ~discrim ~cases ~default:None

(* Reply union: one case per non-oneway operation.  For exception-aware
   styles each case is itself a union over a completion status: 0 =
   success carrying result and out/inout data, 1 = a union of the user
   exceptions keyed by their wire names (the GIOP shape). *)
let build_reply gen (stubs : Pres_c.op_stub list) : Mint.idx =
  let m = gen.mint in
  let discrim =
    match stubs with
    | { Pres_c.os_request_case = Mint.Cstring _; _ } :: _ -> Mint.string_ m ~max_len:None
    | _ -> Mint.uint32 m
  in
  let cases =
    List.filter_map
      (fun (st : Pres_c.op_stub) ->
        if st.Pres_c.os_op.Aoi.op_oneway then None
        else begin
          let out_fields =
            (match st.Pres_c.os_return with
            | None -> []
            | Some r -> [ ("_return", r.Pres_c.pi_mint) ])
            @ List.filter_map
                (fun (pi : Pres_c.param_info) ->
                  match pi.Pres_c.pi_dir with
                  | Aoi.Out | Aoi.Inout ->
                      Some (pi.Pres_c.pi_name, pi.Pres_c.pi_mint)
                  | Aoi.In -> None)
                st.Pres_c.os_params
          in
          let success = Mint.struct_ m out_fields in
          let body =
            if gen.hooks.supports_exceptions then begin
              let exc_cases =
                List.map
                  (fun (wire_name, (pi : Pres_c.param_info)) ->
                    { Mint.c_const = Mint.Cstring wire_name;
                      c_body = pi.Pres_c.pi_mint })
                  st.Pres_c.os_exceptions
              in
              let status_cases =
                { Mint.c_const = Mint.Cint 0L; c_body = success }
                ::
                (if exc_cases = [] then []
                 else
                   [
                     {
                       Mint.c_const = Mint.Cint 1L;
                       c_body =
                         Mint.union m
                           ~discrim:(Mint.string_ m ~max_len:None)
                           ~cases:exc_cases ~default:None;
                     };
                   ])
              in
              Mint.union m ~discrim:(Mint.uint32 m) ~cases:status_cases
                ~default:None
            end
            else success
          in
          Some { Mint.c_const = st.Pres_c.os_request_case; c_body = body }
        end)
      stubs
  in
  Mint.union m ~discrim ~cases ~default:None

(* Stub prototypes for the generated header. *)
let stub_prototypes gen iface_cname (st : Pres_c.op_stub) : Cast.decl list =
  let param_decls =
    List.concat_map
      (fun (pi : Pres_c.param_info) ->
        (pi.Pres_c.pi_name, pi.Pres_c.pi_ctype)
        ::
        (match pi.Pres_c.pi_pres with
        | Pres.Terminated_string_len { len_param } ->
            [ (len_param, Cast.uint32_t) ]
        | _ -> []))
      st.Pres_c.os_params
  in
  let ret_ct =
    match st.Pres_c.os_return with
    | None -> Cast.Tvoid
    | Some r -> r.Pres_c.pi_ctype
  in
  let client_params =
    gen.hooks.client_first_params iface_cname
    @ param_decls
    @ gen.hooks.client_last_params iface_cname
  in
  let server_params =
    gen.hooks.client_first_params iface_cname
    @ param_decls
    @ gen.hooks.server_last_params iface_cname
  in
  [
    Cast.Dfun_proto (Cast.Public, st.Pres_c.os_client_name, ret_ct, client_params);
    Cast.Dfun_proto (Cast.Public, st.Pres_c.os_server_name, ret_ct, server_params);
  ]

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let generate hooks (spec : Aoi.spec) (iface_q : Aoi.qname) : Pres_c.t =
  let report = Aoi_check.check spec in
  if (not hooks.supports_self_reference) && report.Aoi_check.self_referential <> []
  then
    Diag.error
      "specification contains self-referential type %s, which the CORBA \
       presentation cannot express"
      (Aoi.qname_to_string (List.hd report.Aoi_check.self_referential));
  let gen =
    {
      hooks;
      env = report.Aoi_check.env;
      report;
      mint = Mint.create ();
      decls_rev = [];
      emitted = Hashtbl.create 32;
      mint_memo = Hashtbl.create 32;
      named_pres = [];
      pres_started = Hashtbl.create 4;
    }
  in
  let intf =
    match List.find_opt (fun (q, _) -> q = iface_q) (Aoi.interfaces spec) with
    | Some (_, i) -> i
    | None -> Diag.error "no interface named %s" (Aoi.qname_to_string iface_q)
  in
  let scope = scope_of iface_q in
  let iface_cname = hooks.scoped_name iface_q in
  emit gen (Cast.Dinclude_local "flick_runtime.h");
  emit_defs gen [] spec.Aoi.s_defs;
  let ops = gather_ops gen scope intf in
  let stubs = List.map (build_stub gen scope iface_cname intf) ops in
  List.iter
    (fun st -> List.iter (emit gen) (stub_prototypes gen iface_cname st))
    stubs;
  let request = build_request gen stubs in
  let reply = build_reply gen stubs in
  let presc =
    {
      Pres_c.pc_name = iface_cname;
      pc_qname = iface_q;
      pc_program = intf.Aoi.i_program;
      pc_style = hooks.style;
      pc_mint = gen.mint;
      pc_request = request;
      pc_reply = reply;
      pc_decls = List.rev gen.decls_rev;
      pc_stubs = stubs;
      pc_named = gen.named_pres;
    }
  in
  (match Pres_c.validate presc with
  | Ok () -> ()
  | Error msg -> Diag.error "internal presentation error: %s" msg);
  presc
