let scoped_name q =
  String.concat "_" (List.filter (fun s -> s <> "") q)

(* rpcgen names stubs after the procedure and version number alone; the
   program/interface name does not appear. *)
let version_suffix (intf : Aoi.interface) =
  match intf.Aoi.i_program with
  | Some (_, vers) -> Int64.to_string vers
  | None -> "1"

let hooks =
  {
    Presgen_base.style = Pres_c.Rpcgen;
    scoped_name;
    client_stub_name = (fun _iface op -> op.Aoi.op_name ^ "_stubv");
    server_func_name = (fun _iface op -> op.Aoi.op_name ^ "_stubv_svc");
    request_case = (fun _intf op -> Mint.Cint op.Aoi.op_code);
    seq_len_field = "len";
    seq_buf_field = "val";
    objref_ctype = Cast.Tnamed "flick_objref_t";
    supports_exceptions = false;
    supports_self_reference = true;
    client_first_params = (fun _ -> []);
    client_last_params =
      (fun _ -> [ ("_clnt", Cast.Tptr (Cast.Tnamed "flick_client_t")) ]);
    server_last_params =
      (fun _ -> [ ("_rqstp", Cast.Tptr (Cast.Tnamed "flick_svc_req_t")) ]);
    string_len_params = false;
  }

(* The version number is part of every stub name, so the hooks are
   re-derived per interface. *)
let hooks_for (intf : Aoi.interface) =
  let v = version_suffix intf in
  {
    hooks with
    Presgen_base.client_stub_name = (fun _iface op -> op.Aoi.op_name ^ "_" ^ v);
    server_func_name = (fun _iface op -> op.Aoi.op_name ^ "_" ^ v ^ "_svc");
  }

let generate spec q =
  let intf =
    match List.find_opt (fun (q', _) -> q' = q) (Aoi.interfaces spec) with
    | Some (_, i) -> i
    | None -> Diag.error "no interface named %s" (Aoi.qname_to_string q)
  in
  Presgen_base.generate (hooks_for intf) spec q
