(** The presentation-generator base library (paper section 2.2).

    Presentation generation decides how an AOI interface is mapped onto
    C constructs: the names and shapes of the presented data types, the
    stub signatures, the calling conventions, and the MINT/PRES
    description of how parameters travel in messages.  Almost all of
    that machinery is shared; a concrete presentation generator (CORBA,
    rpcgen, Fluke) is a small {!hooks} record of style decisions layered
    on this module — the code-reuse structure the paper's Table 1
    reports.

    A generator consumes {e any} AOI specification regardless of source
    IDL, with two documented restrictions (the paper's footnote 3),
    enforced here:

    - a presentation style without exceptions (rpcgen, Fluke) rejects
      interfaces whose operations have [raises] clauses;
    - a presentation style without self-referential types (CORBA)
      rejects specifications containing them. *)

type hooks = {
  style : Pres_c.style;
  scoped_name : Aoi.qname -> string;
      (** flatten a qualified name to a C identifier *)
  client_stub_name : string -> Aoi.operation -> string;
      (** interface C name -> operation -> client stub name *)
  server_func_name : string -> Aoi.operation -> string;
  request_case : Aoi.interface -> Aoi.operation -> Mint.const;
      (** how requests are keyed on the wire: operation-name strings for
          CORBA/GIOP, procedure numbers for ONC *)
  seq_len_field : string;  (** length member of sequence structs *)
  seq_buf_field : string;  (** buffer member of sequence structs *)
  objref_ctype : Cast.ctype;  (** C type presenting an object reference *)
  supports_exceptions : bool;
  supports_self_reference : bool;
  client_first_params : string -> Cast.param list;
      (** fixed leading stub parameters (e.g. the CORBA object
          reference), given the interface C name *)
  client_last_params : string -> Cast.param list;
      (** fixed trailing stub parameters (e.g. [CORBA_Environment *] or
          the ONC [CLIENT *] handle) *)
  server_last_params : string -> Cast.param list;
  string_len_params : bool;
      (** present [in] string parameters as (pointer, explicit length)
          pairs — the paper's section 2.2 presentation variation *)
}

val generate : hooks -> Aoi.spec -> Aoi.qname -> Pres_c.t
(** [generate hooks spec interface_qname] builds the complete PRES_C
    description of one interface of [spec].  Runs {!Aoi_check.check}
    first; raises {!Diag.Error} for ill-formed specifications or
    unsupported style/feature combinations. *)

val interfaces_of : Aoi.spec -> Aoi.qname list
(** Qualified names of every interface in the specification. *)
