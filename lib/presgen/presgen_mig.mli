(** The MIG presentation generator, conjoined with the MIG front end
    (paper section 2.1 and Figure 1).

    MIG interface definitions contain constructs applicable only to C
    and to Mach messaging, so — unlike the CORBA and ONC RPC front ends
    — the MIG path does not produce IDL-independent AOI: this module
    translates a parsed MIG subsystem directly into PRES_C.  Routines
    present as C functions named after themselves; requests are keyed by
    Mach message id (subsystem base + position); variable arrays present
    as MIG-style (count, data) pairs. *)

val aoi_of_mig : Mig_parser.spec -> Aoi.spec
(** The private AOI contract between the MIG front end and this
    generator (exposed for [flick dump-aoi]). *)

val generate : Mig_parser.spec -> Pres_c.t
