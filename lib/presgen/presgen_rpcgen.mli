(** The rpcgen C presentation generator: Sun's rpcgen-compatible mapping
    as a small specialization of {!Presgen_base} (paper Table 1: 281
    lines over the generic library).

    Stub names follow rpcgen: operation [send] of a version numbered 1
    presents as client stub [send_1] and server work function
    [send_1_svc]; the client handle appears as a trailing
    [flick_client_t *] parameter; requests are keyed by procedure
    number; self-referential XDR types are supported; CORBA-style
    exceptions are rejected (the paper's footnote 3: "there is no
    concept of exceptions in standard rpcgen presentations"). *)

val hooks : Presgen_base.hooks

val generate : Aoi.spec -> Aoi.qname -> Pres_c.t
