(** The CORBA C presentation generator: the OMG C language mapping, as a
    small specialization of {!Presgen_base} (paper Table 1: 770 + 3
    lines over the generic library).

    Scoped names flatten with underscores ([M::I] becomes [M_I]); the
    client stub for operation [op] of interface [M::I] is [M_I_op]; the
    object reference appears as the first parameter and a
    [flick_env_t *] environment as the last (the paper's example omits
    it "for clarity"); requests are keyed by operation-name strings, the
    GIOP convention; user exceptions are supported; self-referential
    types are rejected (the paper's footnote 3). *)

val hooks : Presgen_base.hooks

val generate : Aoi.spec -> Aoi.qname -> Pres_c.t

val generate_len : Aoi.spec -> Aoi.qname -> Pres_c.t
(** The paper's section 2.2 variation: [in] string parameters present as
    (pointer, explicit length) pairs — [Mail_send(obj, msg, len)] — so
    generated stubs marshal without calling [strlen]. *)
