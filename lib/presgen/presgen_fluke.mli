(** The Fluke presentation generator (paper Table 1: 301 lines, derived
    from the CORBA presentation library).

    Fluke's C mapping follows the CORBA mapping for data types and stub
    shapes, but requests are keyed by small integer message ids (Fluke
    kernel IPC has no operation-name strings) and exceptions are not
    part of the contract. *)

val hooks : Presgen_base.hooks

val generate : Aoi.spec -> Aoi.qname -> Pres_c.t
