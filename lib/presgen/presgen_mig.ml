(* The MIG path reuses the presentation machinery by translating the
   parsed subsystem into a private AOI spec; the restriction to scalars
   and arrays of scalars was already enforced by the parser. *)

let aoi_type (ty : Mig_parser.mig_type) : Aoi.typ =
  let scalar (s : Mig_parser.scalar) : Aoi.typ =
    match s with
    | Mig_parser.Sint -> Aoi.Integer { bits = 32; signed = true }
    | Mig_parser.Schar -> Aoi.Char
    | Mig_parser.Sbool -> Aoi.Boolean
  in
  match ty with
  | Mig_parser.Tscalar s -> scalar s
  | Mig_parser.Tfixed_array (s, n) -> Aoi.Array (scalar s, [ n ])
  | Mig_parser.Tcounted_array (s, bound) -> Aoi.Sequence (scalar s, Some bound)

let aoi_of_mig (spec : Mig_parser.spec) : Aoi.spec =
  let ops =
    List.map
      (fun (r : Mig_parser.routine) ->
        {
          Aoi.op_name = r.Mig_parser.r_name;
          op_oneway = r.Mig_parser.r_oneway;
          op_return = Aoi.Void;
          op_params =
            List.map
              (fun (a : Mig_parser.arg) ->
                {
                  Aoi.p_name = a.Mig_parser.a_name;
                  p_dir = a.Mig_parser.a_dir;
                  p_type = aoi_type a.Mig_parser.a_type;
                })
              r.Mig_parser.r_args;
          op_raises = [];
          op_code = r.Mig_parser.r_msg_id;
        })
      spec.Mig_parser.routines
  in
  {
    Aoi.s_file = spec.Mig_parser.sub_name ^ ".defs";
    s_defs =
      [
        Aoi.Dinterface
          {
            Aoi.i_name = spec.Mig_parser.sub_name;
            i_parents = [];
            i_defs = [];
            i_ops = ops;
            i_attrs = [];
            i_program = None;
          };
      ];
  }

let hooks =
  {
    Presgen_base.style = Pres_c.Mig;
    scoped_name = (fun q -> String.concat "_" (List.filter (fun s -> s <> "") q));
    (* MIG stubs are named after the routine alone *)
    client_stub_name = (fun _iface op -> op.Aoi.op_name);
    server_func_name = (fun _iface op -> op.Aoi.op_name ^ "_server");
    request_case = (fun _intf op -> Mint.Cint op.Aoi.op_code);
    seq_len_field = "count";
    seq_buf_field = "data";
    objref_ctype = Cast.Tnamed "flick_objref_t";
    supports_exceptions = false;
    supports_self_reference = false;
    client_first_params = (fun iface -> [ ("_obj", Cast.Tnamed iface) ]);
    client_last_params = (fun _ -> []);
    server_last_params = (fun _ -> []);
    string_len_params = false;
  }

let generate (spec : Mig_parser.spec) : Pres_c.t =
  Presgen_base.generate hooks (aoi_of_mig spec)
    [ spec.Mig_parser.sub_name ]
