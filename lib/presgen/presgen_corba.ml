let scoped_name q = String.concat "_" (List.filter (fun s -> s <> "") q)

let hooks =
  {
    Presgen_base.style = Pres_c.Corba;
    scoped_name;
    client_stub_name = (fun iface op -> iface ^ "_" ^ op.Aoi.op_name);
    server_func_name = (fun iface op -> iface ^ "_" ^ op.Aoi.op_name ^ "_impl");
    request_case = (fun _intf op -> Mint.Cstring op.Aoi.op_name);
    seq_len_field = "_length";
    seq_buf_field = "_buffer";
    objref_ctype = Cast.Tnamed "flick_objref_t";
    supports_exceptions = true;
    supports_self_reference = false;
    client_first_params = (fun iface -> [ ("_obj", Cast.Tnamed iface) ]);
    client_last_params =
      (fun _ -> [ ("_ev", Cast.Tptr (Cast.Tnamed "flick_env_t")) ]);
    server_last_params =
      (fun _ -> [ ("_ev", Cast.Tptr (Cast.Tnamed "flick_env_t")) ]);
    string_len_params = false;
  }

let generate spec q = Presgen_base.generate hooks spec q

(* The alternate presentation of section 2.2: 'in' strings carry an
   explicit length parameter, so stubs never count characters. *)
let hooks_len = { hooks with Presgen_base.string_len_params = true }

let generate_len spec q = Presgen_base.generate hooks_len spec q
