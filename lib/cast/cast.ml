type ctype =
  | Tvoid
  | Tchar
  | Tnamed of string
  | Tfloat
  | Tdouble
  | Tptr of ctype
  | Tconst_ptr of ctype
  | Tarray of ctype * int option
  | Tstruct_ref of string
  | Tunion_ref of string
  | Tenum_ref of string
  | Tfunc_ptr of { ret : ctype; params : ctype list }

type unop = Neg | Lognot | Bitnot | Deref | Addr

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Eid of string
  | Eint of int64
  | Echar of char
  | Estr of string
  | Efloat of float
  | Ecall of string * expr list
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Efield of expr * string
  | Earrow of expr * string
  | Eindex of expr * expr
  | Ecast of ctype * expr
  | Eassign of expr * expr
  | Eassign_op of binop * expr * expr
  | Econd of expr * expr * expr
  | Esizeof of ctype
  | Esizeof_expr of expr

type stmt =
  | Sexpr of expr
  | Sdecl of string * ctype * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of expr option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sswitch of expr * switch_case list
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string
  | Sblock of stmt list
  | Scomment of string
  | Sraw of string

and switch_case = { sc_labels : expr list; sc_body : stmt list }

type param = string * ctype
type storage = Public | Static

type decl =
  | Dinclude of string
  | Dinclude_local of string
  | Dcomment of string
  | Ddefine of string * string
  | Dtypedef of string * ctype
  | Dstruct of string * (string * ctype) list
  | Dunion_decl of string * (string * ctype) list
  | Denum_decl of string * (string * int64) list
  | Dvar of storage * string * ctype * expr option
  | Dfun_proto of storage * string * ctype * param list
  | Dfun of storage * string * ctype * param list * stmt list
  | Draw of string

type file = decl list

let int32_t = Tnamed "int32_t"
let uint32_t = Tnamed "uint32_t"
let int64_t = Tnamed "int64_t"
let uint64_t = Tnamed "uint64_t"
let int16_t = Tnamed "int16_t"
let uint16_t = Tnamed "uint16_t"
let int8_t = Tnamed "int8_t"
let uint8_t = Tnamed "uint8_t"

let int_of_bits ~bits ~signed =
  match (bits, signed) with
  | 8, true -> int8_t
  | 8, false -> uint8_t
  | 16, true -> int16_t
  | 16, false -> uint16_t
  | 32, true -> int32_t
  | 32, false -> uint32_t
  | 64, true -> int64_t
  | 64, false -> uint64_t
  | _, _ -> invalid_arg "Cast.int_of_bits"

let e0 name = Eid name
let call name args = Ecall (name, args)
let num n = Eint (Int64.of_int n)
