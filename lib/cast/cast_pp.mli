(** Rendering CAST as compilable C source text.

    The printer is deliberately deterministic and simple: two-space
    indentation, one statement per line, parentheses inserted from a
    standard C precedence table only where required.  Declarators are
    printed inside-out (arrays, pointers, function pointers), following
    C's declaration syntax. *)

val ctype : Cast.ctype -> string -> string
(** [ctype ty name] renders a declarator: the type wrapped around the
    (possibly empty) declared name, e.g. [ctype (Tptr Tchar) "s"] is
    ["char *s"] and [ctype (Tarray (int32_t, Some 4)) "v"] is
    ["int32_t v[4]"]. *)

val expr : Cast.expr -> string
val stmt : ?indent:int -> Cast.stmt -> string
val decl : Cast.decl -> string

val file : Cast.file -> string
(** Render a whole translation unit. *)

val guard : string -> Cast.file -> string
(** Render a header file wrapped in an include guard. *)
