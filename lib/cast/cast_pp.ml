open Cast

(* ------------------------------------------------------------------ *)
(* Declarators                                                         *)
(* ------------------------------------------------------------------ *)

(* C declarations wrap the declared name: base specifier on the left,
   array/function suffixes on the right, pointers binding tighter than
   suffixes.  [inner] is the declarator text built so far. *)
let rec declarator ty inner =
  match ty with
  | Tvoid -> ("void", inner)
  | Tchar -> ("char", inner)
  | Tnamed n -> (n, inner)
  | Tfloat -> ("float", inner)
  | Tdouble -> ("double", inner)
  | Tstruct_ref n -> ("struct " ^ n, inner)
  | Tunion_ref n -> ("union " ^ n, inner)
  | Tenum_ref n -> ("enum " ^ n, inner)
  | Tptr t -> declarator t ("*" ^ inner)
  | Tconst_ptr t -> declarator t ("*" ^ inner) |> fun (base, d) -> ("const " ^ base, d)
  | Tarray (t, n) ->
      let dim = match n with Some n -> string_of_int n | None -> "" in
      let inner = if needs_parens inner then "(" ^ inner ^ ")" else inner in
      declarator t (inner ^ "[" ^ dim ^ "]")
  | Tfunc_ptr { ret; params } ->
      let args =
        match params with
        | [] -> "void"
        | _ -> String.concat ", " (List.map (fun p -> ctype p "") params)
      in
      declarator ret ("(*" ^ inner ^ ")(" ^ args ^ ")")

(* a pointer declarator directly inside an array/function suffix needs
   parentheses *)
and needs_parens inner = String.length inner > 0 && inner.[0] = '*'

and ctype ty name =
  let base, d = declarator ty name in
  if d = "" then base else base ^ " " ^ d

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_token = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let binop_prec = function
  | Mul | Div | Mod -> 13
  | Add | Sub -> 12
  | Shl | Shr -> 11
  | Lt | Gt | Le | Ge -> 10
  | Eq | Ne -> 9
  | Band -> 8
  | Bxor -> 7
  | Bor -> 6
  | Land -> 5
  | Lor -> 4

let unop_token = function
  | Neg -> "-" | Lognot -> "!" | Bitnot -> "~" | Deref -> "*" | Addr -> "&"

let escape_char c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
  | c -> Printf.sprintf "\\%03o" (Char.code c)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\'' -> Buffer.add_char buf '\''
      | c -> Buffer.add_string buf (escape_char c))
    s;
  Buffer.contents buf

(* [prec] is the precedence of the context; parenthesize when the
   expression binds less tightly. *)
let rec expr_prec prec e =
  let text, my_prec =
    match e with
    | Eid s -> (s, 16)
    | Eint n ->
        (* INT64_MIN cannot be written as a plain literal *)
        if n = Int64.min_int then ("(-9223372036854775807LL - 1)", 16)
        else if Int64.compare n (Int64.of_int32 Int32.max_int) > 0
                || Int64.compare n (Int64.of_int32 Int32.min_int) < 0 then
          (Int64.to_string n ^ "LL", if Int64.compare n 0L < 0 then 14 else 16)
        else (Int64.to_string n, if Int64.compare n 0L < 0 then 14 else 16)
    | Echar c -> ("'" ^ escape_char c ^ "'", 16)
    | Estr s -> ("\"" ^ escape_string s ^ "\"", 16)
    | Efloat f -> (Printf.sprintf "%.17g" f, 16)
    | Ecall (f, args) ->
        (f ^ "(" ^ String.concat ", " (List.map (expr_prec 0) args) ^ ")", 15)
    | Eunop (op, a) -> (unop_token op ^ expr_prec 14 a, 14)
    | Ebinop (op, a, b) ->
        let p = binop_prec op in
        (* left-associative: right operand needs strictly higher prec *)
        ( expr_prec p a ^ " " ^ binop_token op ^ " " ^ expr_prec (p + 1) b,
          p )
    | Efield (a, f) -> (expr_prec 15 a ^ "." ^ f, 15)
    | Earrow (a, f) -> (expr_prec 15 a ^ "->" ^ f, 15)
    | Eindex (a, i) -> (expr_prec 15 a ^ "[" ^ expr_prec 0 i ^ "]", 15)
    | Ecast (ty, a) -> ("(" ^ ctype ty "" ^ ")" ^ expr_prec 14 a, 14)
    | Eassign (l, r) -> (expr_prec 15 l ^ " = " ^ expr_prec 2 r, 2)
    | Eassign_op (op, l, r) ->
        (expr_prec 15 l ^ " " ^ binop_token op ^ "= " ^ expr_prec 2 r, 2)
    | Econd (c, a, b) ->
        (expr_prec 4 c ^ " ? " ^ expr_prec 0 a ^ " : " ^ expr_prec 3 b, 3)
    | Esizeof ty -> ("sizeof(" ^ ctype ty "" ^ ")", 14)
    | Esizeof_expr e -> ("sizeof(" ^ expr_prec 0 e ^ ")", 14)
  in
  if my_prec < prec then "(" ^ text ^ ")" else text

let expr e = expr_prec 0 e

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmt_buf buf ind s =
  let pad = String.make (2 * ind) ' ' in
  let line text =
    Buffer.add_string buf pad;
    Buffer.add_string buf text;
    Buffer.add_char buf '\n'
  in
  match s with
  | Sexpr e -> line (expr e ^ ";")
  | Sdecl (name, ty, init) ->
      let d = ctype ty name in
      (match init with
      | None -> line (d ^ ";")
      | Some e -> line (d ^ " = " ^ expr e ^ ";"))
  | Sif (c, then_s, []) ->
      line ("if (" ^ expr c ^ ") {");
      List.iter (stmt_buf buf (ind + 1)) then_s;
      line "}"
  | Sif (c, then_s, else_s) ->
      line ("if (" ^ expr c ^ ") {");
      List.iter (stmt_buf buf (ind + 1)) then_s;
      line "} else {";
      List.iter (stmt_buf buf (ind + 1)) else_s;
      line "}"
  | Swhile (c, body) ->
      line ("while (" ^ expr c ^ ") {");
      List.iter (stmt_buf buf (ind + 1)) body;
      line "}"
  | Sfor (init, cond, step, body) ->
      let p = function None -> "" | Some e -> expr e in
      line ("for (" ^ p init ^ "; " ^ p cond ^ "; " ^ p step ^ ") {");
      List.iter (stmt_buf buf (ind + 1)) body;
      line "}"
  | Sreturn None -> line "return;"
  | Sreturn (Some e) -> line ("return " ^ expr e ^ ";")
  | Sswitch (scrutinee, cases) ->
      line ("switch (" ^ expr scrutinee ^ ") {");
      List.iter
        (fun { sc_labels; sc_body } ->
          (match sc_labels with
          | [] -> line "default:"
          | ls -> List.iter (fun l -> line ("case " ^ expr l ^ ":")) ls);
          List.iter (stmt_buf buf (ind + 1)) sc_body;
          if not (ends_in_jump sc_body) then
            stmt_buf buf (ind + 1) Sbreak)
        cases;
      line "}"
  | Sbreak -> line "break;"
  | Scontinue -> line "continue;"
  | Sgoto l -> line ("goto " ^ l ^ ";")
  | Slabel l ->
      Buffer.add_string buf (l ^ ":\n")
  | Sblock body ->
      line "{";
      List.iter (stmt_buf buf (ind + 1)) body;
      line "}"
  | Scomment text -> line ("/* " ^ text ^ " */")
  | Sraw text ->
      Buffer.add_string buf text;
      Buffer.add_char buf '\n'

and ends_in_jump body =
  match List.rev body with
  | (Sreturn _ | Sbreak | Scontinue | Sgoto _) :: _ -> true
  | _ -> false

let stmt ?(indent = 0) s =
  let buf = Buffer.create 128 in
  stmt_buf buf indent s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let storage_prefix = function Public -> "" | Static -> "static "

let params_text params =
  match params with
  | [] -> "void"
  | _ -> String.concat ", " (List.map (fun (n, ty) -> ctype ty n) params)

let decl_buf buf d =
  let line text =
    Buffer.add_string buf text;
    Buffer.add_char buf '\n'
  in
  match d with
  | Dinclude path -> line ("#include <" ^ path ^ ">")
  | Dinclude_local path -> line ("#include \"" ^ path ^ "\"")
  | Dcomment text -> line ("/* " ^ text ^ " */")
  | Ddefine (name, value) -> line ("#define " ^ name ^ " " ^ value)
  | Dtypedef (name, ty) -> line ("typedef " ^ ctype ty name ^ ";")
  | Dstruct (tag, fields) ->
      line ("struct " ^ tag ^ " {");
      List.iter (fun (n, ty) -> line ("  " ^ ctype ty n ^ ";")) fields;
      line "};"
  | Dunion_decl (tag, fields) ->
      line ("union " ^ tag ^ " {");
      List.iter (fun (n, ty) -> line ("  " ^ ctype ty n ^ ";")) fields;
      line "};"
  | Denum_decl (tag, items) ->
      line ("enum " ^ tag ^ " {");
      List.iter (fun (n, v) -> line (Printf.sprintf "  %s = %Ld," n v)) items;
      line "};"
  | Dvar (st, name, ty, init) ->
      let d = storage_prefix st ^ ctype ty name in
      (match init with
      | None -> line (d ^ ";")
      | Some e -> line (d ^ " = " ^ expr e ^ ";"))
  | Dfun_proto (st, name, ret, params) ->
      line (storage_prefix st ^ ctype ret (name ^ "(" ^ params_text params ^ ")") ^ ";")
  | Dfun (st, name, ret, params, body) ->
      line (storage_prefix st ^ ctype ret (name ^ "(" ^ params_text params ^ ")"));
      line "{";
      List.iter (stmt_buf buf 1) body;
      line "}"
  | Draw text -> line text

let decl d =
  let buf = Buffer.create 256 in
  decl_buf buf d;
  Buffer.contents buf

let file decls =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i d ->
      (match (i, d) with
      | 0, _ | _, (Dinclude _ | Dinclude_local _ | Ddefine _) -> ()
      | _, _ -> Buffer.add_char buf '\n');
      decl_buf buf d)
    decls;
  Buffer.contents buf

let guard name decls =
  let g = String.uppercase_ascii name |> String.map (fun c ->
    match c with 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') in
  "#ifndef " ^ g ^ "\n#define " ^ g ^ "\n\n" ^ file decls ^ "\n#endif /* " ^ g
  ^ " */\n"
