(** CAST: the C Abstract Syntax Tree (paper section 2.2.2).

    Flick keeps an explicit representation of every C declaration and
    statement it emits; presentation generators build the data type and
    stub declarations here, and back ends build the stub bodies.  The
    paper calls this explicit representation "critical to flexibility"
    and "critical to optimization" — it is what lets back ends associate
    target-language constructs with message constructs.

    The tree is deliberately a C subset: exactly what IDL-generated
    headers and stubs need.  {!Cast_pp} renders it as compilable C. *)

type ctype =
  | Tvoid
  | Tchar  (** plain [char] *)
  | Tnamed of string  (** a typedef name, e.g. [int32_t] *)
  | Tfloat
  | Tdouble
  | Tptr of ctype
  | Tconst_ptr of ctype  (** pointer to const, e.g. [const char *] *)
  | Tarray of ctype * int option
  | Tstruct_ref of string  (** [struct tag] *)
  | Tunion_ref of string
  | Tenum_ref of string
  | Tfunc_ptr of { ret : ctype; params : ctype list }

type unop = Neg | Lognot | Bitnot | Deref | Addr

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Eid of string
  | Eint of int64
  | Echar of char
  | Estr of string
  | Efloat of float
  | Ecall of string * expr list
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Efield of expr * string  (** [e.f] *)
  | Earrow of expr * string  (** [e->f] *)
  | Eindex of expr * expr
  | Ecast of ctype * expr
  | Eassign of expr * expr
  | Eassign_op of binop * expr * expr  (** [e op= e'] *)
  | Econd of expr * expr * expr
  | Esizeof of ctype
  | Esizeof_expr of expr

type stmt =
  | Sexpr of expr
  | Sdecl of string * ctype * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of expr option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sswitch of expr * switch_case list
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string
  | Sblock of stmt list
  | Scomment of string
  | Sraw of string  (** escape hatch: a preformatted line (e.g. [#ifdef]) *)

and switch_case = {
  sc_labels : expr list;  (** empty list means [default:] *)
  sc_body : stmt list;  (** printer appends [break] when the body does
                            not end in return/break/goto *)
}

type param = string * ctype

type storage = Public | Static

type decl =
  | Dinclude of string  (** system include, printed in angle brackets *)
  | Dinclude_local of string
  | Dcomment of string
  | Ddefine of string * string
  | Dtypedef of string * ctype
  | Dstruct of string * (string * ctype) list
  | Dunion_decl of string * (string * ctype) list
  | Denum_decl of string * (string * int64) list
  | Dvar of storage * string * ctype * expr option
  | Dfun_proto of storage * string * ctype * param list
  | Dfun of storage * string * ctype * param list * stmt list
  | Draw of string  (** preformatted text (vendored runtime snippets) *)

type file = decl list

(** Common helpers used throughout the compiler. *)

val int32_t : ctype
val uint32_t : ctype
val int64_t : ctype
val uint64_t : ctype
val int16_t : ctype
val uint16_t : ctype
val int8_t : ctype
val uint8_t : ctype
val int_of_bits : bits:int -> signed:bool -> ctype

val e0 : string -> expr
(** [e0 name] is {!Eid}. *)

val call : string -> expr list -> expr
val num : int -> expr
