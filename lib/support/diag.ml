type severity = Warning | Error_sev
type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t

let error ?(loc = Loc.dummy) fmt =
  Format.kasprintf
    (fun message -> raise (Error { severity = Error_sev; loc; message }))
    fmt

let errorf_at loc fmt = error ~loc fmt

let pp ppf t =
  let tag = match t.severity with Warning -> "warning" | Error_sev -> "error" in
  Format.fprintf ppf "%a: %s: %s" Loc.pp t.loc tag t.message

let to_string t = Format.asprintf "%a" pp t

type collector = { mutable items : t list }

let make_collector () = { items = [] }

let warn c ?(loc = Loc.dummy) fmt =
  Format.kasprintf
    (fun message ->
      c.items <- { severity = Warning; loc; message } :: c.items)
    fmt

let warnings c = List.rev c.items
