(** Source locations for IDL input files.

    A location identifies a half-open span of characters within a named
    source file.  Locations are attached to tokens by the lexer and
    propagated through the parsers into diagnostics. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

type t = {
  file : string;  (** source file name, or ["<string>"] for in-memory input *)
  start_pos : pos;
  end_pos : pos;
}

val dummy : t
(** A location for synthesized constructs with no source position. *)

val make : file:string -> start_pos:pos -> end_pos:pos -> t

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b].  Both
    locations must come from the same file; if either is {!dummy} the
    other is returned. *)

val pp : Format.formatter -> t -> unit
(** Prints as [file:line:col] (or [file:line:col-line:col] for
    multi-line spans). *)

val to_string : t -> string
