(** Diagnostics: errors and warnings with source locations.

    Every phase of the compiler reports problems through this module so
    that the driver and the command-line tool can render them uniformly.
    Fatal problems are raised as the {!Error} exception; warnings are
    accumulated in a {!collector}. *)

type severity = Warning | Error_sev

type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t
(** Raised for unrecoverable problems (syntax errors, unresolved names,
    unsupported presentation combinations, ...). *)

val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~loc fmt ...] raises {!Error} with a formatted message. *)

val errorf_at : Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Alias of {!error} with a mandatory location. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Accumulator for non-fatal warnings emitted during a compilation. *)
type collector

val make_collector : unit -> collector
val warn : collector -> ?loc:Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warnings : collector -> t list
(** Warnings in the order they were emitted. *)
