(** PRES: the message presentation mapping (paper section 2.2.3).

    A PRES tree connects a MINT message type with the C data structures
    that present it: each node is a type conversion between a MINT node
    and a CAST-level C representation.  The tree is structurally aligned
    with the MINT type — a {!Struct} node's arms correspond one-to-one
    with the MINT struct's fields, a {!Union} node's arms with the MINT
    union's cases — while its constructors carry the C-side navigation
    information (field names, length members, pointer conventions).

    The node variants cover the presentation styles used by the CORBA
    and rpcgen C mappings:

    - {!Direct}: an atomic value stored directly in a C scalar.
    - {!Enum_direct}: a C [enum] presented for a MINT integer.
    - {!Fixed_array}: a C array of static size.
    - {!Terminated_string}: a NUL-terminated [char *] whose wire form is
      a counted character array — the paper's [OPT_STR]/string example;
      a NULL pointer marshals as an empty array.
    - {!Counted_seq}: a counted sequence presented as a (length, buffer
      pointer) pair of struct members — CORBA sequences and rpcgen
      variable-length arrays.
    - {!Opt_ptr}: the paper's [OPT_PTR]: a nullable pointer presented
      for a 0-or-1-element MINT array (XDR optional data).
    - {!Struct} / {!Union}: aggregates, carrying C member names.
    - {!Void}: no data (void returns, void union arms). *)

type t =
  | Direct
  | Enum_direct
  | Fixed_array of t
  | Terminated_string
  | Terminated_string_len of { len_param : string }
      (** like {!Terminated_string}, but the presentation passes the
          length as a separate parameter so stubs never call [strlen] —
          the paper's section 2.2 example of changing the programmer's
          contract to enable optimization *)
  | Counted_seq of { len_field : string; buf_field : string; elem : t }
  | Opt_ptr of t
  | Struct of (string * t) list
  | Union of {
      discrim_field : string;
      union_field : string;  (** name of the inner C union member *)
      arms : (string * t) list;  (** C member name and sub-mapping per case *)
      default_arm : (string * t) option;
    }
  | Void
  | Ref of string
      (** reference to a named presentation, used at the recursion
          points of self-referential types; the paper's stubs switch
          from inlined code to a call of a per-type marshal function
          exactly here (section 3.3) *)

val validate :
  ?named:(string -> (Mint.idx * t) option) ->
  Mint.t ->
  Mint.idx ->
  t ->
  (unit, string) result
(** Check the structural alignment between a MINT type and a PRES tree:
    arms match cases, fields match fields, atoms map to atomic
    presentations.  [named] resolves {!Ref} nodes (each named
    presentation is checked once).  Returns a description of the first
    mismatch. *)

val pp : Format.formatter -> t -> unit
