type param_info = {
  pi_name : string;
  pi_dir : Aoi.param_dir;
  pi_ctype : Cast.ctype;
  pi_byref : bool;
  pi_mint : Mint.idx;
  pi_pres : Pres.t;
}

type op_stub = {
  os_op : Aoi.operation;
  os_request_case : Mint.const;
  os_client_name : string;
  os_server_name : string;
  os_params : param_info list;
  os_return : param_info option;
  os_exceptions : (string * param_info) list;
}

type style = Corba | Rpcgen | Mig | Fluke

type t = {
  pc_name : string;
  pc_qname : Aoi.qname;
  pc_program : (int64 * int64) option;
  pc_style : style;
  pc_mint : Mint.t;
  pc_request : Mint.idx;
  pc_reply : Mint.idx;
  pc_decls : Cast.decl list;
  pc_stubs : op_stub list;
  pc_named : (string * (Mint.idx * Pres.t)) list;
}

let validate_param ~named mint (pi : param_info) =
  match Pres.validate ~named mint pi.pi_mint pi.pi_pres with
  | Ok () -> Ok ()
  | Error msg -> Error (Printf.sprintf "parameter %s: %s" pi.pi_name msg)

let rec first_error = function
  | [] -> Ok ()
  | Ok () :: rest -> first_error rest
  | (Error _ as e) :: _ -> e

let validate t =
  let named name = List.assoc_opt name t.pc_named in
  let stub_results =
    List.concat_map
      (fun st ->
        List.map (validate_param ~named t.pc_mint) st.os_params
        @ (match st.os_return with
          | None -> []
          | Some r -> [ validate_param ~named t.pc_mint r ])
        @ List.map
            (fun (_, pi) -> validate_param ~named t.pc_mint pi)
            st.os_exceptions)
      t.pc_stubs
  in
  let union_results =
    match Mint.get t.pc_mint t.pc_request with
    | Mint.Union { cases; _ } ->
        let n_named = List.length cases in
        let n_stubs = List.length t.pc_stubs in
        if n_named <> n_stubs then
          [
            Error
              (Printf.sprintf "request union has %d cases but %d stubs" n_named
                 n_stubs);
          ]
        else []
    | Mint.Void | Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _
    | Mint.Array _ | Mint.Struct _ ->
        [ Error "request message is not a union over operations" ]
  in
  first_error (stub_results @ union_results)

let find_stub t name =
  List.find_opt (fun st -> st.os_op.Aoi.op_name = name) t.pc_stubs

let style_name = function
  | Corba -> "corba-c"
  | Rpcgen -> "rpcgen-c"
  | Mig -> "mig-c"
  | Fluke -> "fluke-c"

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>presentation %s (%s)" t.pc_name (style_name t.pc_style);
  (match t.pc_program with
  | None -> ()
  | Some (p, v) -> Format.fprintf ppf " program 0x%Lx version %Ld" p v);
  List.iter
    (fun st ->
      Format.fprintf ppf "@,  stub %s / server %s: %d param(s)%s, case %a"
        st.os_client_name st.os_server_name
        (List.length st.os_params)
        (match st.os_return with None -> "" | Some _ -> " + result")
        Mint.pp_const st.os_request_case)
    t.pc_stubs;
  Format.fprintf ppf "@]"

let pp ppf t =
  pp_summary ppf t;
  Format.fprintf ppf "@,@[<v>request MINT: %a@]" (Mint.pp t.pc_mint) t.pc_request;
  Format.fprintf ppf "@,@[<v>reply MINT: %a@]" (Mint.pp t.pc_mint) t.pc_reply;
  List.iter
    (fun st ->
      List.iter
        (fun pi ->
          Format.fprintf ppf "@,@[<hov 2>%s.%s: %a@ <-> %a@]"
            st.os_op.Aoi.op_name pi.pi_name (Mint.pp t.pc_mint) pi.pi_mint
            Pres.pp pi.pi_pres)
        st.os_params)
    t.pc_stubs;
  Format.fprintf ppf "@,---- generated header ----@,%s"
    (Cast_pp.file t.pc_decls)
