(** PRES_C: the complete description of a C presentation of an
    interface (paper section 2.2.4).

    A PRES_C value combines the three sublanguages: the CAST
    declarations of the presented data types and stub prototypes, the
    MINT descriptions of the request and reply messages, and the PRES
    trees connecting each stub parameter to its place in those messages.
    "It describes everything that a client or server must know in order
    to invoke or implement the operations provided by the interface";
    only the message encoding and transport are left to the back end. *)

(** How one C parameter (or result) participates in the messages. *)
type param_info = {
  pi_name : string;
  pi_dir : Aoi.param_dir;
  pi_ctype : Cast.ctype;  (** the type in the stub signature *)
  pi_byref : bool;
      (** true when the stub receives/returns a pointer that must be
          dereferenced to reach the presented value *)
  pi_mint : Mint.idx;  (** this parameter's slice of the message *)
  pi_pres : Pres.t;
}

(** Per-operation stub description. *)
type op_stub = {
  os_op : Aoi.operation;
  os_request_case : Mint.const;
      (** the discriminator constant keying this operation inside the
          request union (an operation-name string for CORBA-style
          presentations, a procedure number for rpcgen-style) *)
  os_client_name : string;  (** name of the generated client stub *)
  os_server_name : string;  (** name of the server work function *)
  os_params : param_info list;
  os_return : param_info option;  (** [None] for void *)
  os_exceptions : (string * param_info) list;
      (** user exceptions: (wire name, presentation of the exception
          struct); empty for rpcgen-style presentations *)
}

(** Presentation style, used by back ends for naming and framing. *)
type style = Corba | Rpcgen | Mig | Fluke

type t = {
  pc_name : string;  (** flat C name of the interface, e.g. [M_I] *)
  pc_qname : Aoi.qname;
  pc_program : (int64 * int64) option;  (** ONC (program, version) *)
  pc_style : style;
  pc_mint : Mint.t;
  pc_request : Mint.idx;  (** union over all operations' in-data *)
  pc_reply : Mint.idx;  (** union over all operations' reply data *)
  pc_decls : Cast.decl list;
      (** presented data types and stub prototypes — the contents of the
          generated header *)
  pc_stubs : op_stub list;
  pc_named : (string * (Mint.idx * Pres.t)) list;
      (** named presentations for self-referential types; {!Pres.Ref}
          nodes resolve here and back ends emit one marshal/unmarshal
          function per entry *)
}

val validate : t -> (unit, string) result
(** Check every parameter's PRES tree against its MINT slice, and that
    the request/reply unions have one case per (non-oneway) operation. *)

val find_stub : t -> string -> op_stub option
(** Look up a stub by operation name. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line-per-stub summary used by [flick dump-presc]. *)

val pp : Format.formatter -> t -> unit
(** Full dump: decls, MINT graphs and PRES trees (the textual
    equivalent of the paper's Figure 2). *)
