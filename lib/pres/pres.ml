type t =
  | Direct
  | Enum_direct
  | Fixed_array of t
  | Terminated_string
  | Terminated_string_len of { len_param : string }
  | Counted_seq of { len_field : string; buf_field : string; elem : t }
  | Opt_ptr of t
  | Struct of (string * t) list
  | Union of {
      discrim_field : string;
      union_field : string;
      arms : (string * t) list;
      default_arm : (string * t) option;
    }
  | Void
  | Ref of string

let validate ?(named = fun _ -> None) mint root_idx root_pres =
  let checked_refs = Hashtbl.create 4 in
  let rec go idx pres =
    let def = Mint.get mint idx in
    match (def, pres) with
    | _, Ref name -> (
        if Hashtbl.mem checked_refs name then Ok ()
        else
          match named name with
          | None -> Error (Printf.sprintf "unknown presentation reference %s" name)
          | Some (ref_idx, ref_pres) ->
              Hashtbl.add checked_refs name ();
              if ref_idx <> idx then
                Error
                  (Printf.sprintf
                     "presentation reference %s used at a different MINT node"
                     name)
              else go ref_idx ref_pres)
    | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), Direct -> Ok ()
    | Mint.Int _, Enum_direct -> Ok ()
    | Mint.Void, Void -> Ok ()
    | Mint.Array { elem; min_len; max_len }, Fixed_array sub ->
        if Some min_len <> max_len then
          Error "Fixed_array presentation over a variable-length MINT array"
        else go elem sub
    | ( Mint.Array { elem; min_len = _; max_len = _ },
        (Terminated_string | Terminated_string_len _) ) -> (
        match Mint.get mint elem with
        | Mint.Char8 -> Ok ()
        | Mint.Void | Mint.Bool | Mint.Int _ | Mint.Float _ | Mint.Array _
        | Mint.Struct _ | Mint.Union _ ->
            Error "Terminated_string over a non-character array")
    | Mint.Array { elem; min_len = _; max_len = _ }, Counted_seq { elem = sub; _ }
      ->
        go elem sub
    | Mint.Array { elem; min_len; max_len }, Opt_ptr sub ->
        if min_len <> 0 || max_len <> Some 1 then
          Error "Opt_ptr presentation requires a 0..1 MINT array"
        else go elem sub
    | Mint.Struct fields, Struct arms ->
        if List.length fields <> List.length arms then
          Error "Struct presentation arity mismatch"
        else
          List.fold_left2
            (fun acc (_, fidx) (_, sub) ->
              match acc with Error _ -> acc | Ok () -> go fidx sub)
            (Ok ()) fields arms
    | Mint.Union { discrim = _; cases; default }, Union u ->
        if List.length cases <> List.length u.arms then
          Error "Union presentation arity mismatch"
        else begin
          let arms_ok =
            List.fold_left2
              (fun acc (case : Mint.case) (_, sub) ->
                match acc with
                | Error _ -> acc
                | Ok () -> go case.Mint.c_body sub)
              (Ok ()) cases u.arms
          in
          match (arms_ok, default, u.default_arm) with
          | Error _, _, _ -> arms_ok
          | Ok (), None, None -> Ok ()
          | Ok (), Some d, Some (_, sub) -> go d sub
          | Ok (), Some _, None ->
              Error "MINT union has a default but PRES does not"
          | Ok (), None, Some _ ->
              Error "PRES union has a default but MINT does not"
        end
    | ( ( Mint.Void | Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _
        | Mint.Array _ | Mint.Struct _ | Mint.Union _ ),
        ( Direct | Enum_direct | Fixed_array _ | Terminated_string
        | Terminated_string_len _ | Counted_seq _ | Opt_ptr _ | Struct _
        | Union _ | Void ) ) ->
        Error "PRES node kind does not match MINT node kind"
  in
  go root_idx root_pres

let rec pp ppf = function
  | Direct -> Format.pp_print_string ppf "direct"
  | Enum_direct -> Format.pp_print_string ppf "enum"
  | Fixed_array sub -> Format.fprintf ppf "@[<hov 2>fixed_array(%a)@]" pp sub
  | Terminated_string -> Format.pp_print_string ppf "c_string"
  | Terminated_string_len { len_param } ->
      Format.fprintf ppf "c_string_len(%s)" len_param
  | Counted_seq { len_field; buf_field; elem } ->
      Format.fprintf ppf "@[<hov 2>counted_seq(%s,%s,%a)@]" len_field buf_field
        pp elem
  | Opt_ptr sub -> Format.fprintf ppf "@[<hov 2>opt_ptr(%a)@]" pp sub
  | Struct arms ->
      Format.fprintf ppf "@[<hov 2>struct{";
      List.iteri
        (fun i (name, sub) ->
          if i > 0 then Format.fprintf ppf ";@ ";
          Format.fprintf ppf "%s:%a" name pp sub)
        arms;
      Format.fprintf ppf "}@]"
  | Union { discrim_field; union_field; arms; default_arm } ->
      Format.fprintf ppf "@[<hov 2>union(%s,%s){" discrim_field union_field;
      List.iteri
        (fun i (name, sub) ->
          if i > 0 then Format.fprintf ppf ";@ ";
          Format.fprintf ppf "%s:%a" name pp sub)
        arms;
      (match default_arm with
      | None -> ()
      | Some (name, sub) -> Format.fprintf ppf ";@ default %s:%a" name pp sub);
      Format.fprintf ppf "}@]"
  | Void -> Format.pp_print_string ppf "void"
  | Ref name -> Format.fprintf ppf "ref(%s)" name
