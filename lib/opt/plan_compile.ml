type root =
  | Rconst_int of int64 * Encoding.atom_kind
  | Rconst_str of string
  | Rvalue of Mplan.rv * Mint.idx * Pres.t

type plan = {
  p_ops : Mplan.op list;
  p_subs : (string * Mplan.op list) list;
}

let atom_of (enc : Encoding.t) kind : Mplan.atom =
  let { Encoding.size; align } = enc.Encoding.atom kind in
  { Mplan.kind; size; align }

let len_atom (enc : Encoding.t) : Mplan.atom =
  {
    Mplan.kind = Encoding.Kint { bits = 32; signed = false };
    size = enc.Encoding.len_prefix.Encoding.size;
    align = enc.Encoding.len_prefix.Encoding.align;
  }

let round_up n unit = (n + unit - 1) / unit * unit

(* ------------------------------------------------------------------ *)
(* Storage analysis (section 3.1): conservative upper bound on encoded  *)
(* size, including worst-case alignment padding.                        *)
(* ------------------------------------------------------------------ *)

let max_size ~enc ~mint idx pres =
  let rec go idx pres =
    let def = Mint.get mint idx in
    match (def, (pres : Pres.t)) with
    | _, Pres.Ref _ -> None
    | Mint.Void, _ -> Some 0
    | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
        match Encoding.atom_of_mint def with
        | Some kind -> (
            match enc.Encoding.var with
            | Some vcc ->
                (* value-dependent scalar: reserve its worst-case width *)
                Some
                  (match vcc.Encoding.v_size kind with
                  | Encoding.Fixed n -> n
                  | Encoding.Var { worst } -> worst)
            | None ->
                let a = atom_of enc kind in
                let header = if enc.Encoding.typed_headers then 7 else 0 in
                Some (header + a.Mplan.size + a.Mplan.align - 1))
        | None -> None)
    | Mint.Array { elem; max_len; min_len = _ }, _ -> (
        match max_len with
        | None -> None
        | Some n -> (
            let header = if enc.Encoding.typed_headers then 7 else 0 in
            let prefix =
              match pres with
              | Pres.Fixed_array _ -> 0
              | _ -> enc.Encoding.len_prefix.Encoding.size + 3
            in
            let elem_pres =
              match pres with
              | Pres.Fixed_array p | Pres.Counted_seq { elem = p; _ }
              | Pres.Opt_ptr p ->
                  Some p
              | Pres.Terminated_string -> None
              | _ -> None
            in
            match Mint.get mint elem with
            | Mint.Char8 | Mint.Int { bits = 8; _ } ->
                (* packed bytes (plus NUL for CDR strings) *)
                let is_string =
                  match pres with
                  | Pres.Terminated_string | Pres.Terminated_string_len _ -> true
                  | _ -> false
                in
                let nul = if is_string && enc.Encoding.string_nul then 1 else 0 in
                Some
                  (header + prefix
                  + round_up (n + nul) enc.Encoding.pad_unit)
            | _ -> (
                match elem_pres with
                | None -> None
                | Some ep -> (
                    match go elem ep with
                    | None -> None
                    | Some e -> Some (header + prefix + (n * e))))))
    | Mint.Struct fields, Pres.Struct arms ->
        List.fold_left2
          (fun acc (_, fidx) (_, sub) ->
            match (acc, go fidx sub) with
            | Some a, Some b -> Some (a + b)
            | _, _ -> None)
          (Some 0) fields arms
    | ( Mint.Union { discrim; cases; default },
        Pres.Union { arms; default_arm; _ } ) ->
        let discrim_sz =
          match Encoding.atom_of_mint (Mint.get mint discrim) with
          | Some kind -> (
              match enc.Encoding.var with
              | Some vcc ->
                  Some
                    (match vcc.Encoding.v_size kind with
                    | Encoding.Fixed n -> n
                    | Encoding.Var { worst } -> worst)
              | None ->
                  let a = atom_of enc kind in
                  (* the discriminator is emitted like any other scalar:
                     under a typed-header encoding it carries its own
                     descriptor word (4 bytes, 4-aligned) *)
                  let header = if enc.Encoding.typed_headers then 7 else 0 in
                  Some (header + a.Mplan.size + a.Mplan.align - 1))
          | None -> None
        in
        let arm_sizes =
          List.map2 (fun (c : Mint.case) (_, sub) -> go c.Mint.c_body sub) cases
            arms
          @
          match (default, default_arm) with
          | Some d, Some (_, sub) -> [ go d sub ]
          | _, _ -> []
        in
        let worst =
          List.fold_left
            (fun acc s ->
              match (acc, s) with
              | Some a, Some b -> Some (max a b)
              | _, _ -> None)
            (Some 0) arm_sizes
        in
        (match (discrim_sz, worst) with
        | Some d, Some w -> Some (d + w)
        | _, _ -> None)
    | (Mint.Struct _ | Mint.Union _), _ -> None
  in
  go idx pres

(* ------------------------------------------------------------------ *)
(* The plan compiler state                                              *)
(* ------------------------------------------------------------------ *)

type chunk_state = { mutable c_size : int; mutable c_items : Mplan.item list }

type st = {
  enc : Encoding.t;
  mint : Mint.t;
  named : (string * (Mint.idx * Pres.t)) list;
  unroll_limit : int;
  chunked : bool;  (* false: flush after every atom (ablation A1/A4) *)
  sg : bool;  (* mark blit-shaped ops as borrowable (scatter-gather) *)
  sg_thresh : int;  (* split It_bytes >= this out of chunks as Put_blit *)
  mutable ops_rev : Mplan.op list;
  mutable chunk : chunk_state option;
  mutable abase : int;  (* position ≡ aoff (mod abase); abase in {1,2,4,8} *)
  mutable aoff : int;
  mutable covered : bool;  (* capacity pre-ensured: chunks skip their check *)
  mutable next_var : int;
  subs : (string, Mplan.op list option) Hashtbl.t;
      (* None while a subroutine is being compiled (recursion) *)
}

let flush st =
  match st.chunk with
  | None -> ()
  | Some c ->
      st.chunk <- None;
      if c.c_size > 0 then
        st.ops_rev <-
          Mplan.Chunk
            {
              size = c.c_size;
              align = 1;
              items = List.rev c.c_items;
              check = not st.covered;
            }
          :: st.ops_rev

let emit st op =
  flush st;
  st.ops_rev <- op :: st.ops_rev

(* advance the position congruence by a statically known n *)
let advance_static st n = st.aoff <- (st.aoff + n) mod st.abase

(* the position is now only known modulo [u] *)
let lose_alignment st u =
  let u = max u 1 in
  st.abase <- min st.abase u;
  (if st.abase < 1 then st.abase <- 1);
  st.aoff <- 0

(* Establish alignment [a].  Returns the number of statically known pad
   bytes to insert (when the congruence suffices), or emits a dynamic
   Align op. *)
let align_for st a =
  if a <= 1 then 0
  else if a <= st.abase then begin
    let pad = (a - (st.aoff mod a)) mod a in
    pad
  end
  else begin
    emit st (Mplan.Align a);
    st.abase <- a;
    st.aoff <- 0;
    0
  end

let chunk st =
  match st.chunk with
  | Some c -> c
  | None ->
      let c = { c_size = 0; c_items = [] } in
      st.chunk <- Some c;
      c

(* append one atom into the current chunk (starting one if needed) *)
let put_atom st (atom : Mplan.atom) (make : int -> Mplan.item) =
  if atom.Mplan.align > st.abase then begin
    (* cannot place statically: flush and realign dynamically *)
    flush st;
    ignore (align_for st atom.Mplan.align)
  end;
  let pad = align_for st atom.Mplan.align in
  let c = chunk st in
  let off = c.c_size + pad in
  c.c_items <- make off :: c.c_items;
  c.c_size <- off + atom.Mplan.size;
  advance_static st (pad + atom.Mplan.size);
  if not st.chunked then flush st

let put_header st =
  if st.enc.Encoding.typed_headers then begin
    let a = len_atom st.enc in
    (* a Mach-style type descriptor: constant word *)
    put_atom st a (fun off -> Mplan.It_const { off; atom = a; value = 0x4D544450L })
  end

let put_fixed_bytes st src len =
  let padded = round_up len st.enc.Encoding.pad_unit in
  if st.sg && len >= st.sg_thresh then begin
    (* large packed run: split out of the chunk so the engine can borrow
       the payload by reference instead of copying it *)
    emit st (Mplan.Put_blit { src; len; pad = padded - len });
    advance_static st padded
  end
  else begin
    let c = chunk st in
    let off = c.c_size in
    c.c_items <-
      Mplan.It_bytes { off; len; pad = padded - len; src } :: c.c_items;
    c.c_size <- off + padded;
    advance_static st padded
  end

(* state bookkeeping for the self-contained variable ops *)
let after_variable st =
  flush st;
  lose_alignment st st.enc.Encoding.pad_unit

let emit_const_str st s =
  (* the advance is statically known: align(4) + len + data + padding *)
  let pad_pre = align_for st st.enc.Encoding.len_prefix.Encoding.align in
  flush st;
  (* the pre-padding could not stay in a chunk: re-emit as Align when
     non-zero.  Static pads before self-contained ops are folded into the
     op by the engine's align; emitting Align is always correct. *)
  if pad_pre > 0 then st.ops_rev <- Mplan.Align st.enc.Encoding.len_prefix.Encoding.align :: st.ops_rev;
  let nul = st.enc.Encoding.string_nul in
  let data = String.length s + if nul then 1 else 0 in
  let padded = round_up data st.enc.Encoding.pad_unit in
  st.ops_rev <-
    Mplan.Put_const_str { s; nul; pad = padded - data } :: st.ops_rev;
  advance_static st (pad_pre + st.enc.Encoding.len_prefix.Encoding.size + padded)

(* Value-dependent scalars (msgpack, CBOR).  Floats keep a static wire
   image — a one-byte tag then a big-endian IEEE payload — so they stay
   chunkable; everything else becomes a [Put_varhead] that reserves its
   worst case and advances by the actual minimal width. *)

let vh_worst_of (vcc : Encoding.varcodec) kind =
  match vcc.Encoding.v_size kind with
  | Encoding.Fixed n -> n
  | Encoding.Var { worst } -> worst

let u8_atom : Mplan.atom =
  { Mplan.kind = Encoding.Kint { bits = 8; signed = false }; size = 1; align = 1 }

let put_var_scalar st (vcc : Encoding.varcodec) kind src =
  match kind with
  | Encoding.Kfloat { bits } ->
      put_atom st u8_atom (fun off ->
          Mplan.It_const
            {
              off;
              atom = u8_atom;
              value = Int64.of_int (vcc.Encoding.v_float_tag ~bits);
            });
      let payload = { Mplan.kind; size = bits / 8; align = 1 } in
      put_atom st payload (fun off ->
          Mplan.It_atom { off; atom = payload; src })
  | Encoding.Kbool | Encoding.Kchar | Encoding.Kint _ ->
      emit st
        (Mplan.Put_varhead
           {
             vh_kind = kind;
             vh_worst = vh_worst_of vcc kind;
             vh_check = not st.covered;
             vh_src = Mplan.Vh_value src;
             vh_image = None;
           });
      lose_alignment st 1

let put_var_const st (vcc : Encoding.varcodec) kind value =
  emit st
    (Mplan.Put_varhead
       {
         vh_kind = kind;
         vh_worst = vh_worst_of vcc kind;
         vh_check = not st.covered;
         vh_src = Mplan.Vh_const value;
         vh_image = Some (vcc.Encoding.v_const_image kind value);
       });
  lose_alignment st 1

(* ------------------------------------------------------------------ *)
(* Main recursion                                                       *)
(* ------------------------------------------------------------------ *)

let fresh_var st =
  let v = st.next_var in
  st.next_var <- v + 1;
  v

let is_byte_elem mint elem =
  match Mint.get mint elem with
  | Mint.Char8 | Mint.Int { bits = 8; _ } -> true
  | Mint.Void | Mint.Bool | Mint.Int _ | Mint.Float _ | Mint.Array _
  | Mint.Struct _ | Mint.Union _ ->
      false

let scalar_atom mint enc elem =
  match Encoding.atom_of_mint (Mint.get mint elem) with
  | Some kind -> Some (atom_of enc kind)
  | None -> None

let rec compile_value st (rv : Mplan.rv) idx (pres : Pres.t) =
  let def = Mint.get st.mint idx in
  match (def, pres) with
  | _, Pres.Ref name ->
      compile_sub st name;
      emit st (Mplan.Call (name, rv))
  | Mint.Void, _ -> ()
  | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
      match Encoding.atom_of_mint def with
      | Some kind -> (
          match st.enc.Encoding.var with
          | Some vcc -> put_var_scalar st vcc kind rv
          | None ->
              put_header st;
              let atom = atom_of st.enc kind in
              put_atom st atom (fun off -> Mplan.It_atom { off; atom; src = rv }))
      | None -> assert false)
  | Mint.Array { elem; min_len; max_len }, _ ->
      compile_array st rv ~elem ~min_len ~max_len pres
  | Mint.Struct fields, Pres.Struct arms ->
      List.iter2
        (fun (i, (_, fidx)) (member, sub) ->
          compile_value st
            (Mplan.Rfield { base = rv; index = i; member })
            fidx sub)
        (List.mapi (fun i f -> (i, f)) fields)
        arms
  | ( Mint.Union { discrim; cases; default },
      Pres.Union { discrim_field; union_field; arms; default_arm } ) ->
      compile_union st rv ~discrim ~cases ~default ~discrim_field ~union_field
        ~arms ~default_arm
  | (Mint.Struct _ | Mint.Union _), _ ->
      invalid_arg "Plan_compile: PRES does not match MINT"

and compile_array st rv ~elem ~min_len ~max_len (pres : Pres.t) =
  let enc = st.enc in
  let fixed = Some min_len = max_len in
  match pres with
  | Pres.Terminated_string | Pres.Terminated_string_len _ ->
      put_header st;
      let len_src =
        match pres with
        | Pres.Terminated_string_len { len_param } ->
            (* the explicit length parameter of the optimized
               presentation: generated C never calls strlen *)
            Some (Mplan.Rparam { index = 0; name = len_param; deref = false })
        | _ -> None
      in
      let pad_pre = align_for st enc.Encoding.len_prefix.Encoding.align in
      flush st;
      if pad_pre > 0 then
        st.ops_rev <- Mplan.Align enc.Encoding.len_prefix.Encoding.align :: st.ops_rev;
      st.ops_rev <-
        Mplan.Put_string
          { src = rv; nul = enc.Encoding.string_nul; pad = enc.Encoding.pad_unit;
            len_src; borrow = st.sg }
        :: st.ops_rev;
      after_variable st
  | Pres.Fixed_array sub when fixed && is_byte_elem st.mint elem ->
      put_header st;
      ignore sub;
      put_fixed_bytes st rv min_len
  | Pres.Fixed_array sub -> (
      put_header st;
      match scalar_atom st.mint enc elem with
      | Some atom
        when enc.Encoding.var = None && min_len <= st.unroll_limit ->
          (* unroll small scalar arrays into the surrounding chunk *)
          let rec unroll i =
            if i < min_len then begin
              put_atom st atom (fun off ->
                  Mplan.It_atom
                    {
                      off;
                      atom;
                      src = Mplan.Rfield { base = rv; index = i; member = Printf.sprintf "[%d]" i };
                    });
              unroll (i + 1)
            end
          in
          unroll 0
      | Some atom ->
          emit st
            (Mplan.Put_atom_array
               { arr = rv; via = Mplan.Via_fixed min_len; atom; with_len = false });
          lose_alignment st (min atom.Mplan.size 4)
      | None -> compile_loop st rv (Mplan.Via_fixed min_len) elem sub)
  | Pres.Counted_seq { len_field; buf_field; elem = sub } -> (
      put_header st;
      let via = Mplan.Via_seq { len_field; buf_field } in
      if is_byte_elem st.mint elem then begin
        let pad_pre = align_for st enc.Encoding.len_prefix.Encoding.align in
        flush st;
        if pad_pre > 0 then
          st.ops_rev <- Mplan.Align enc.Encoding.len_prefix.Encoding.align :: st.ops_rev;
        st.ops_rev <-
          Mplan.Put_byteseq
            { arr = rv; via; pad = enc.Encoding.pad_unit; borrow = st.sg }
          :: st.ops_rev;
        after_variable st
      end
      else
        match scalar_atom st.mint enc elem with
        | Some atom ->
            emit st (Mplan.Put_atom_array { arr = rv; via; atom; with_len = true });
            (* the run may be empty, leaving the position just after the
               4-byte count *)
            lose_alignment st (min atom.Mplan.size 4)
        | None ->
            emit st (Mplan.Put_len { arr = rv; via });
            lose_alignment st enc.Encoding.len_prefix.Encoding.size;
            compile_loop st rv via elem sub)
  | Pres.Opt_ptr sub ->
      put_header st;
      let via = Mplan.Via_opt in
      emit st (Mplan.Put_len { arr = rv; via });
      lose_alignment st st.enc.Encoding.len_prefix.Encoding.size;
      compile_loop st rv via elem sub
  | Pres.Direct | Pres.Enum_direct | Pres.Struct _ | Pres.Union _ | Pres.Void
  | Pres.Ref _ ->
      invalid_arg "Plan_compile: array PRES mismatch"

and compile_loop st arr via elem sub =
  (* Arrays of statically bounded elements get one capacity reservation
     for the whole run; their per-element chunks skip the check. *)
  let bounded = max_size ~enc:st.enc ~mint:st.mint elem sub in
  (match bounded with
  | Some unit_size when unit_size > 0 ->
      emit st (Mplan.Ensure_count { arr; via; unit_size })
  | Some _ | None -> ());
  let var = fresh_var st in
  let saved_covered = st.covered in
  let saved_base = st.abase and saved_off = st.aoff in
  flush st;
  let saved_ops = st.ops_rev in
  st.ops_rev <- [];
  st.covered <- (match bounded with Some _ -> true | None -> saved_covered);
  (* element positions are data dependent: only the encoding's layout
     granularity survives into and out of the body *)
  lose_alignment st st.enc.Encoding.granularity;
  compile_value st (Mplan.Rvar var) elem sub;
  flush st;
  let body = List.rev st.ops_rev in
  st.ops_rev <- saved_ops;
  st.covered <- saved_covered;
  st.abase <- saved_base;
  st.aoff <- saved_off;
  emit st (Mplan.Loop { arr; via; var; body });
  lose_alignment st st.enc.Encoding.granularity

and compile_union st rv ~discrim ~cases ~default ~discrim_field ~union_field
    ~arms ~default_arm =
  let enc = st.enc in
  let discrim_atom =
    match Encoding.atom_of_mint (Mint.get st.mint discrim) with
    | Some kind -> Some (atom_of enc kind)
    | None -> None (* string-keyed: operation unions *)
  in
  flush st;
  let entry_base = st.abase and entry_off = st.aoff in
  let compile_arm ~discrim_write body_f =
    let saved_ops = st.ops_rev in
    st.ops_rev <- [];
    st.chunk <- None;
    st.abase <- entry_base;
    st.aoff <- entry_off;
    discrim_write ();
    body_f ();
    flush st;
    let ops = List.rev st.ops_rev in
    st.ops_rev <- saved_ops;
    st.chunk <- None;
    ops
  in
  let const_value (c : Mint.const) =
    match c with
    | Mint.Cint n -> n
    | Mint.Cbool b -> if b then 1L else 0L
    | Mint.Cchar ch -> Int64.of_int (Char.code ch)
    | Mint.Cstring _ -> invalid_arg "Plan_compile: string label with atom discriminator"
  in
  let plan_arms =
    List.map2
      (fun (i, (case : Mint.case)) (member, sub) ->
        let payload_rv =
          Mplan.Rarm { base = rv; case = i; member; union_field }
        in
        let body =
          compile_arm
            ~discrim_write:(fun () ->
              match discrim_atom with
              | Some atom -> (
                  let value = const_value case.Mint.c_const in
                  match enc.Encoding.var with
                  | Some vcc -> put_var_const st vcc atom.Mplan.kind value
                  | None ->
                      put_header st;
                      put_atom st atom (fun off ->
                          Mplan.It_const { off; atom; value }))
              | None -> (
                  match case.Mint.c_const with
                  | Mint.Cstring key ->
                      put_header st;
                      emit_const_str st key
                  | Mint.Cint _ | Mint.Cbool _ | Mint.Cchar _ ->
                      invalid_arg
                        "Plan_compile: integer label with string discriminator"))
            (fun () -> compile_value st payload_rv case.Mint.c_body sub)
        in
        { Mplan.a_const = case.Mint.c_const; a_case = i; a_member = member;
          a_body = body })
      (List.mapi (fun i c -> (i, c)) cases)
      arms
  in
  let plan_default =
    match (default, default_arm) with
    | Some didx, Some (member, sub) ->
        let payload_rv =
          Mplan.Rarm { base = rv; case = -1; member; union_field }
        in
        let body =
          compile_arm
            ~discrim_write:(fun () ->
              match discrim_atom with
              | Some atom -> (
                  let src =
                    Mplan.Rdiscrim { base = rv; member = discrim_field }
                  in
                  match enc.Encoding.var with
                  | Some vcc -> put_var_scalar st vcc atom.Mplan.kind src
                  | None ->
                      put_header st;
                      put_atom st atom (fun off ->
                          Mplan.It_atom { off; atom; src }))
              | None ->
                  invalid_arg
                    "Plan_compile: default arm with string discriminator")
            (fun () -> compile_value st payload_rv didx sub)
        in
        Some (member, body)
    | None, None -> None
    | _, _ -> invalid_arg "Plan_compile: PRES/MINT default mismatch"
  in
  st.ops_rev <-
    Mplan.Switch
      {
        u = rv;
        discrim_atom;
        arms = plan_arms;
        default = plan_default;
        union_field;
        discrim_field;
      }
    :: st.ops_rev;
  (* arms end at data-dependent positions *)
  lose_alignment st enc.Encoding.granularity

and compile_sub st name =
  match Hashtbl.find_opt st.subs name with
  | Some _ -> ()
  | None -> (
      match List.assoc_opt name st.named with
      | None -> invalid_arg ("Plan_compile: unknown named presentation " ^ name)
      | Some (idx, pres) ->
          Hashtbl.add st.subs name None;
          (* compile the subroutine body with a fresh state sharing the
             subs table; called at arbitrary positions *)
          let sub_st =
            {
              st with
              ops_rev = [];
              chunk = None;
              abase = max 1 st.enc.Encoding.granularity;
              aoff = 0;
              covered = false;
              next_var = 0;
            }
          in
          compile_value sub_st
            (Mplan.Rparam { index = 0; name = "_v"; deref = true })
            idx pres;
          flush sub_st;
          Hashtbl.replace st.subs name (Some (List.rev sub_st.ops_rev)))

let compile ~enc ~mint ~named ?(start = (8, 0)) ?(unroll_limit = 64)
    ?(chunked = true) ?sg ?sg_threshold roots =
  let base, off = start in
  let st =
    {
      enc;
      mint;
      named;
      unroll_limit;
      chunked;
      sg = (match sg with Some b -> b | None -> Mbuf.sg_enabled ());
      sg_thresh =
        (match sg_threshold with
        | Some n -> n
        | None -> Mbuf.borrow_threshold ());
      ops_rev = [];
      chunk = None;
      abase = base;
      aoff = off;
      covered = false;
      next_var = 0;
      subs = Hashtbl.create 4;
    }
  in
  List.iter
    (fun root ->
      match root with
      | Rconst_int (value, kind) -> (
          match enc.Encoding.var with
          | Some vcc -> put_var_const st vcc kind value
          | None ->
              put_header st;
              let atom = atom_of enc kind in
              put_atom st atom (fun o -> Mplan.It_const { off = o; atom; value }))
      | Rconst_str s ->
          put_header st;
          emit_const_str st s
      | Rvalue (rv, idx, pres) -> compile_value st rv idx pres)
    roots;
  flush st;
  let subs =
    Hashtbl.fold
      (fun name body acc ->
        match body with Some b -> (name, b) :: acc | None -> acc)
      st.subs []
  in
  { p_ops = List.rev st.ops_rev; p_subs = subs }
