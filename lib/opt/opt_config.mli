(** Optimizer pipeline configuration.

    Selects which registered {!Pass} passes run and whether the
    {!Plan_verify} structural verifier runs after each one.  Threads
    from the entry points ({!Plan_cache}, [Stub_opt], [bin/flick],
    [bench]) down to {!Pass.run}.

    The pass {e selection} is part of every plan-cache key (see
    {!Plan_cache.plan}): differently configured pipelines produce
    different plans and must cache separately.  The {e verify} flag is
    not — verification never changes the plan. *)

type selection =
  | All  (** every registered pass, in registration order *)
  | Nothing  (** raw compiler output, no passes *)
  | Only of string list
      (** the named passes only (unknown names are reported by
          {!Pass.validate}; {!Pass.select} keeps registration order) *)

type t = { selection : selection; verify : bool }

val default : unit -> t
(** [All]; verify-after-every-pass iff the [FLICK_VERIFY_PLANS]
    environment variable is "1", "true", "yes" or "on" (re-read at each
    call so tests can toggle it). *)

val all : t
val none : t
val only : string list -> t
(** [all]/[none]/[only names] with [verify = false]. *)

val selection_fingerprint : t -> string
(** Canonical serialization of the selection (not the verify flag) for
    cache keys. *)

(** {1 Tiered execution}

    Process-global policy for the staged (tier 1) plan specializer:
    whether hot plans are promoted to staged flat closures, and after
    how many calls.  Global rather than per-compile because the
    decision is baked into cached closures; it is serialized into every
    encoder/decoder cache key via {!stage_fingerprint}.

    Resolution order: the programmatic setters win over the
    [FLICK_STAGE] environment variable ([unset] = on with threshold 32,
    ["0"] = off, ["N"] = on with threshold [N]), which is re-read at
    each call so tests and the forced-tier-0 CI run can toggle it. *)

val default_stage_threshold : int
(** 32 calls. *)

val stage_enabled : unit -> bool
val stage_threshold : unit -> int

val set_stage_enabled : bool -> unit
val set_stage_threshold : int -> unit
(** Raises [Invalid_argument] on thresholds below 1. *)

val clear_stage_override : unit -> unit
(** Forget the setter overrides; fall back to the environment. *)

val stage_fingerprint : unit -> string
(** ["stage=<bool>,<threshold>"] for cache keys. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** ["all"], ["none"], or comma-separated pass names (with or without
    the canonical ["only:"] prefix [to_string] emits), each optionally
    suffixed ["+verify"] — the [--passes] syntax of [flick dump-plan]
    and [bench/main.exe].  [of_string (to_string c) = Ok c]. *)
