(* Compiled-plan memoization.  Plan compilation is pure in the
   structure of its inputs, so the cache key is a canonical string of
   everything the compiler reads: the MINT subgraph reachable from the
   roots (cycles cut by serial numbers), the PRES trees, the named
   presentations, the encoding, and the compiler options.  The full key
   string — not a hash of it — indexes the table, so collisions cannot
   alias two different plans.  Keys are recomputed per lookup, which
   keeps mutation via Mint.set safe: a changed graph is a changed key. *)

(* ------------------------------------------------------------------ *)
(* Generic named caches with a stats registry                           *)
(* ------------------------------------------------------------------ *)

(* One stats record serves every cache — encode plans, decode plans,
   and the stub engine's closure caches — so reports (bench warm-cache
   sections) can render them uniformly: hit rate AND eviction pressure
   for both sides, not hit rates on one and nothing on the other.
   [evictions] counts entries lost; [resets] counts the overflow events
   that lost them, so one mass-eviction is distinguishable from
   sustained churn.  [promotions] counts in-place re-installs of an
   already-cached entry (tier promotion re-binding a key to its staged
   closure); they are deliberately not lookups, so they leave hits,
   misses and the hit rate untouched. *)
type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  resets : int;
  promotions : int;
}

let hit_rate st =
  float_of_int st.hits /. float_of_int (max 1 (st.hits + st.misses))

type 'a t = {
  name : string;
  tbl : (string, 'a) Hashtbl.t;
  max_entries : int;
  (* per-key call counts driving tier promotion: kept outside [tbl] so
     an overflow reset does not zero a plan's hotness — a hot plan that
     gets recompiled after churn re-promotes immediately *)
  hot : (string, int ref) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable resets : int;
  mutable promotions : int;
}

let registry : (string * (unit -> stats) * (unit -> unit)) list ref = ref []

let cache_stats c =
  {
    hits = c.hits;
    misses = c.misses;
    entries = Hashtbl.length c.tbl;
    evictions = c.evictions;
    resets = c.resets;
    promotions = c.promotions;
  }

let create ~name ?(max_entries = 512) () =
  let c =
    {
      name;
      tbl = Hashtbl.create 64;
      max_entries;
      hot = Hashtbl.create 64;
      hits = 0;
      misses = 0;
      evictions = 0;
      resets = 0;
      promotions = 0;
    }
  in
  let reset () =
    Hashtbl.reset c.tbl;
    Hashtbl.reset c.hot;
    c.hits <- 0;
    c.misses <- 0;
    c.evictions <- 0;
    c.resets <- 0;
    c.promotions <- 0
  in
  registry := !registry @ [ (name, (fun () -> cache_stats c), reset) ];
  c

let find_or_add c key build =
  match Hashtbl.find_opt c.tbl key with
  | Some v ->
      c.hits <- c.hits + 1;
      v
  | None ->
      c.misses <- c.misses + 1;
      let v = build () in
      (* overflow policy: drop everything rather than track recency —
         stub compilation working sets are tiny and the rebuild is the
         cached computation itself.  Every dropped entry counts as an
         eviction so the pressure is visible in reports. *)
      if Hashtbl.length c.tbl >= c.max_entries then begin
        c.evictions <- c.evictions + Hashtbl.length c.tbl;
        c.resets <- c.resets + 1;
        Hashtbl.reset c.tbl
      end;
      Hashtbl.add c.tbl key v;
      v

(* Per-key promotion counter.  The ref is what staged-promotion
   wrappers capture at compile time, so the count keeps accumulating
   across closure-cache evictions (the whole point of keeping [hot]
   outside the value table).  Bounded separately from [max_entries]:
   churny keys that never get hot are dropped in bulk, which at worst
   delays a re-compiled plan's promotion by one threshold's worth of
   calls. *)
let max_hot_entries = 4096

let hotness c key =
  match Hashtbl.find_opt c.hot key with
  | Some r -> r
  | None ->
      if Hashtbl.length c.hot >= max_hot_entries then Hashtbl.reset c.hot;
      let r = ref 0 in
      Hashtbl.add c.hot key r;
      r

(* Re-install a (possibly rewritten) value for a key that is already
   cached.  This is tier promotion's hook: it must NOT read as cache
   traffic — a promotion is not a lookup, and counting it as a hit
   would inflate [hit_rate] (pinned by test_serve's shadow model). *)
let promote c key v =
  Hashtbl.replace c.tbl key v;
  c.promotions <- c.promotions + 1

let all_stats () = List.map (fun (n, st, _) -> (n, st ())) !registry
let reset_all () = List.iter (fun (_, _, reset) -> reset ()) !registry

(* Re-export the whole cache registry through the metrics registry as
   one pull-based probe: caches created after this still appear, since
   the probe walks [registry] at snapshot time. *)
let () =
  Obs.probe "cache" (fun () ->
      List.concat_map
        (fun (name, (st : stats)) ->
          [
            (name ^ ".hits", float_of_int st.hits);
            (name ^ ".misses", float_of_int st.misses);
            (name ^ ".entries", float_of_int st.entries);
            (name ^ ".evictions", float_of_int st.evictions);
            (name ^ ".resets", float_of_int st.resets);
            (name ^ ".promotions", float_of_int st.promotions);
            (name ^ ".hit_rate", hit_rate st);
          ])
        (all_stats ()))

(* ------------------------------------------------------------------ *)
(* Structural fingerprints                                              *)
(* ------------------------------------------------------------------ *)

type fp = {
  buf : Buffer.t;
  mint : Mint.t;
  seen : (int, int) Hashtbl.t; (* mint idx -> serial number *)
  mutable next : int;
}

let fp_int fp n =
  Buffer.add_char fp.buf '#';
  Buffer.add_string fp.buf (string_of_int n)

(* every embedded string is length-prefixed so concatenations of
   different fields can never collide *)
let fp_str fp s =
  fp_int fp (String.length s);
  Buffer.add_char fp.buf ':';
  Buffer.add_string fp.buf s

let fp_tag fp s =
  Buffer.add_char fp.buf ' ';
  fp_str fp s

let fp_kind fp (k : Encoding.atom_kind) =
  match k with
  | Encoding.Kbool -> Buffer.add_string fp.buf "kb"
  | Encoding.Kchar -> Buffer.add_string fp.buf "kc"
  | Encoding.Kint { bits; signed } ->
      Buffer.add_string fp.buf (if signed then "ki" else "ku");
      fp_int fp bits
  | Encoding.Kfloat { bits } ->
      Buffer.add_string fp.buf "kf";
      fp_int fp bits

let fp_const fp (c : Mint.const) =
  match c with
  | Mint.Cint n ->
      Buffer.add_char fp.buf 'I';
      fp_str fp (Int64.to_string n)
  | Mint.Cbool b -> Buffer.add_string fp.buf (if b then "B1" else "B0")
  | Mint.Cchar c ->
      Buffer.add_char fp.buf 'C';
      fp_int fp (Char.code c)
  | Mint.Cstring s ->
      Buffer.add_char fp.buf 'S';
      fp_str fp s

let rec fp_mint fp idx =
  let i = (idx : Mint.idx :> int) in
  match Hashtbl.find_opt fp.seen i with
  | Some serial ->
      Buffer.add_char fp.buf '@';
      fp_int fp serial
  | None ->
      let serial = fp.next in
      fp.next <- serial + 1;
      Hashtbl.add fp.seen i serial;
      (match Mint.get fp.mint idx with
      | Mint.Void -> Buffer.add_char fp.buf 'v'
      | Mint.Bool -> Buffer.add_char fp.buf 'b'
      | Mint.Char8 -> Buffer.add_char fp.buf 'c'
      | Mint.Int { bits; signed } ->
          Buffer.add_char fp.buf (if signed then 'i' else 'u');
          fp_int fp bits
      | Mint.Float { bits } ->
          Buffer.add_char fp.buf 'f';
          fp_int fp bits
      | Mint.Array { elem; min_len; max_len } ->
          Buffer.add_char fp.buf 'a';
          fp_int fp min_len;
          fp_int fp (match max_len with None -> -1 | Some m -> m);
          fp_mint fp elem
      | Mint.Struct fields ->
          Buffer.add_char fp.buf 's';
          fp_int fp (List.length fields);
          List.iter
            (fun (name, fidx) ->
              fp_str fp name;
              fp_mint fp fidx)
            fields
      | Mint.Union { discrim; cases; default } ->
          Buffer.add_char fp.buf 'U';
          fp_mint fp discrim;
          fp_int fp (List.length cases);
          List.iter
            (fun (c : Mint.case) ->
              fp_const fp c.Mint.c_const;
              fp_mint fp c.Mint.c_body)
            cases;
          (match default with
          | None -> Buffer.add_char fp.buf '-'
          | Some d ->
              Buffer.add_char fp.buf 'd';
              fp_mint fp d))

let rec fp_pres fp (p : Pres.t) =
  match p with
  | Pres.Direct -> Buffer.add_string fp.buf "pD"
  | Pres.Enum_direct -> Buffer.add_string fp.buf "pE"
  | Pres.Fixed_array sub ->
      Buffer.add_string fp.buf "pF";
      fp_pres fp sub
  | Pres.Terminated_string -> Buffer.add_string fp.buf "pT"
  | Pres.Terminated_string_len { len_param } ->
      Buffer.add_string fp.buf "pL";
      fp_str fp len_param
  | Pres.Counted_seq { len_field; buf_field; elem } ->
      Buffer.add_string fp.buf "pC";
      fp_str fp len_field;
      fp_str fp buf_field;
      fp_pres fp elem
  | Pres.Opt_ptr sub ->
      Buffer.add_string fp.buf "pO";
      fp_pres fp sub
  | Pres.Struct arms ->
      Buffer.add_string fp.buf "pS";
      fp_int fp (List.length arms);
      List.iter
        (fun (name, sub) ->
          fp_str fp name;
          fp_pres fp sub)
        arms
  | Pres.Union { discrim_field; union_field; arms; default_arm } ->
      Buffer.add_string fp.buf "pU";
      fp_str fp discrim_field;
      fp_str fp union_field;
      fp_int fp (List.length arms);
      List.iter
        (fun (name, sub) ->
          fp_str fp name;
          fp_pres fp sub)
        arms;
      (match default_arm with
      | None -> Buffer.add_char fp.buf '-'
      | Some (name, sub) ->
          Buffer.add_char fp.buf 'd';
          fp_str fp name;
          fp_pres fp sub)
  | Pres.Void -> Buffer.add_string fp.buf "pV"
  | Pres.Ref name ->
      Buffer.add_string fp.buf "pR";
      fp_str fp name

let fp_type fp idx pres =
  fp_mint fp idx;
  fp_pres fp pres

let rec fp_rv fp (rv : Mplan.rv) =
  match rv with
  | Mplan.Rparam { index; name; deref } ->
      Buffer.add_string fp.buf (if deref then "rP*" else "rP");
      fp_int fp index;
      fp_str fp name
  | Mplan.Rfield { base; index; member } ->
      Buffer.add_string fp.buf "rF";
      fp_int fp index;
      fp_str fp member;
      fp_rv fp base
  | Mplan.Rvar i ->
      Buffer.add_string fp.buf "rV";
      fp_int fp i
  | Mplan.Rarm { base; case; member; union_field } ->
      Buffer.add_string fp.buf "rA";
      fp_int fp case;
      fp_str fp member;
      fp_str fp union_field;
      fp_rv fp base
  | Mplan.Ropt base ->
      Buffer.add_string fp.buf "rO";
      fp_rv fp base
  | Mplan.Rdiscrim { base; member } ->
      Buffer.add_string fp.buf "rD";
      fp_str fp member;
      fp_rv fp base

let fp_root fp (root : Plan_compile.root) =
  match root with
  | Plan_compile.Rconst_int (n, kind) ->
      Buffer.add_string fp.buf " Ri";
      fp_str fp (Int64.to_string n);
      fp_kind fp kind
  | Plan_compile.Rconst_str s ->
      Buffer.add_string fp.buf " Rs";
      fp_str fp s
  | Plan_compile.Rvalue (rv, idx, pres) ->
      Buffer.add_string fp.buf " Rv";
      fp_rv fp rv;
      fp_type fp idx pres

(* The four encodings form a closed set distinguished by name; the
   scalar fields ride along for robustness against future variants. *)
let fp_enc fp (enc : Encoding.t) =
  fp_str fp enc.Encoding.name;
  fp_int fp
    ((if enc.Encoding.big_endian then 1 else 0)
    + (if enc.Encoding.string_nul then 2 else 0)
    + if enc.Encoding.typed_headers then 4 else 0);
  fp_int fp enc.Encoding.pad_unit;
  fp_int fp enc.Encoding.max_align;
  fp_int fp enc.Encoding.granularity;
  fp_int fp enc.Encoding.len_prefix.Encoding.size;
  fp_int fp enc.Encoding.len_prefix.Encoding.align

let fp_create ~enc ~mint ~named () =
  let fp =
    { buf = Buffer.create 256; mint; seen = Hashtbl.create 32; next = 0 }
  in
  fp_enc fp enc;
  fp_int fp (List.length named);
  List.iter
    (fun (name, (idx, pres)) ->
      fp_str fp name;
      fp_type fp idx pres)
    named;
  fp

let fp_contents fp = Buffer.contents fp.buf

(* ------------------------------------------------------------------ *)
(* The shared compiled-plan cache                                       *)
(* ------------------------------------------------------------------ *)

let plans : Plan_compile.plan t = create ~name:"plan" ()

let plan_key ~enc ~mint ~named ?start ?(unroll_limit = 64) ?(chunked = true)
    ~config ~sg ~sg_threshold roots =
  let fp = fp_create ~enc ~mint ~named () in
  (match start with
  | None -> Buffer.add_char fp.buf '-'
  | Some (base, off) ->
      fp_int fp base;
      fp_int fp off);
  fp_int fp unroll_limit;
  fp_int fp (if chunked then 1 else 0);
  (* the pass selection changes the plan (verify does not, and is
     deliberately left out of the key) *)
  fp_str fp (Opt_config.selection_fingerprint config);
  (* scatter-gather options change the plan's structure (Put_blit
     splitting, borrow marks), so they are part of the key *)
  fp_int fp (if sg then 1 else 0);
  fp_int fp sg_threshold;
  List.iter (fp_root fp) roots;
  fp_contents fp

let plan ~enc ~mint ~named ?start ?unroll_limit ?chunked ?config ?sg
    ?sg_threshold roots =
  (* resolve the Mbuf-global defaults now so the key and the compile see
     the same values even if the globals change between calls *)
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  let sg = match sg with Some b -> b | None -> Mbuf.sg_enabled () in
  let sg_threshold =
    match sg_threshold with Some n -> n | None -> Mbuf.borrow_threshold ()
  in
  let key =
    plan_key ~enc ~mint ~named ?start ?unroll_limit ?chunked ~config ~sg
      ~sg_threshold roots
  in
  find_or_add plans key (fun () ->
      Obs_trace.with_span ~cat:"opt" "plan-compile" (fun () ->
          let p =
            Plan_compile.compile ~enc ~mint ~named ?start ?unroll_limit
              ?chunked ~sg ~sg_threshold roots
          in
          Pass.run_encode ~config p))

(* ------------------------------------------------------------------ *)
(* The shared compiled-decode-plan cache                                *)
(* ------------------------------------------------------------------ *)

let dplans : Dplan.plan t = create ~name:"dplan" ()

let fp_droot fp (droot : Dplan_compile.droot) =
  match droot with
  | Dplan_compile.Dconst_int (n, kind) ->
      Buffer.add_string fp.buf " Di";
      fp_str fp (Int64.to_string n);
      fp_kind fp kind
  | Dplan_compile.Dconst_str s ->
      Buffer.add_string fp.buf " Ds";
      fp_str fp s
  | Dplan_compile.Dvalue (idx, pres) ->
      Buffer.add_string fp.buf " Dv";
      fp_type fp idx pres

let dplan_key ~enc ~mint ~named ?start ?(chunked = true) ~config ~views
    ~view_threshold droots =
  let fp = fp_create ~enc ~mint ~named () in
  (match start with
  | None -> Buffer.add_char fp.buf '-'
  | Some (base, off) ->
      fp_int fp base;
      fp_int fp off);
  fp_int fp (if chunked then 1 else 0);
  (* as for [plan_key]: the selection is keyed, the verify flag is not *)
  fp_str fp (Opt_config.selection_fingerprint config);
  (* view options change the plan's structure (byte-run splitting, view
     marks), so they are part of the key *)
  fp_int fp (if views then 1 else 0);
  fp_int fp view_threshold;
  List.iter (fp_droot fp) droots;
  fp_contents fp

let dplan ~enc ~mint ~named ?start ?chunked ?config ?views ?view_threshold
    droots =
  (* as for [plan]: resolve the Mbuf-global defaults now so the key and
     the compile agree even if the globals change between calls *)
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  let views = match views with Some b -> b | None -> false in
  let view_threshold =
    match view_threshold with
    | Some n -> n
    | None -> Mbuf.borrow_threshold ()
  in
  let key =
    dplan_key ~enc ~mint ~named ?start ?chunked ~config ~views
      ~view_threshold droots
  in
  find_or_add dplans key (fun () ->
      Obs_trace.with_span ~cat:"opt" "dplan-compile" (fun () ->
          let p =
            Dplan_compile.compile ~enc ~mint ~named ?start ?chunked ~views
              ~view_threshold droots
          in
          Pass.run_decode ~config p))
