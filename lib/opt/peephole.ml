(* Peephole optimizer over marshal plans.  Every rewrite is
   byte-preserving: the optimized plan writes exactly the bytes of the
   original (Mbuf.ensure / flick_ensure only reserve capacity, so
   checking earlier or for more is invisible on the wire).  The
   differential qcheck suites in test/test_peephole.ml pin this. *)

type stats = {
  mutable chunks_merged : int;
  mutable aligns_removed : int;
  mutable loops_fused : int;
  mutable ensures_hoisted : int;
  mutable dead_removed : int;
  mutable heads_narrowed : int;
}

let fresh_stats () =
  {
    chunks_merged = 0;
    aligns_removed = 0;
    loops_fused = 0;
    ensures_hoisted = 0;
    dead_removed = 0;
    heads_narrowed = 0;
  }

let rewrites st =
  st.chunks_merged + st.aligns_removed + st.loops_fused + st.ensures_hoisted
  + st.dead_removed + st.heads_narrowed

(* Which rewrite classes the engine may apply.  The pass manager
   ({!Pass}) runs the engine once per class so each registered pass is
   observable on its own; [all_rewrites] is the historical monolithic
   behavior (still what {!optimize} does). *)
type rewrite_set = {
  rw_coalesce : bool;
  rw_fuse : bool;
  rw_hoist : bool;
  rw_dead : bool;
  rw_narrow : bool;
}

let all_rewrites =
  {
    rw_coalesce = true;
    rw_fuse = true;
    rw_hoist = true;
    rw_dead = true;
    rw_narrow = true;
  }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let shift_item delta (it : Mplan.item) =
  match it with
  | Mplan.It_atom a -> Mplan.It_atom { a with off = a.off + delta }
  | Mplan.It_bytes b -> Mplan.It_bytes { b with off = b.off + delta }
  | Mplan.It_const c -> Mplan.It_const { c with off = c.off + delta }

(* ------------------------------------------------------------------ *)
(* Ensure hoisting: static bound on how far one execution of an op can
   advance the buffer position.  None = unbounded (dynamic lengths).    *)
(* ------------------------------------------------------------------ *)

let rec bounded_advance (op : Mplan.op) : int option =
  match op with
  | Mplan.Align a -> if is_pow2 a then Some (a - 1) else None
  | Mplan.Chunk { size; _ } -> Some size
  | Mplan.Ensure_count _ -> Some 0
  | Mplan.Put_const_str { s; nul; pad } ->
      Some (4 + String.length s + (if nul then 1 else 0) + pad)
  | Mplan.Put_blit { len; pad; _ } -> Some (len + pad)
  | Mplan.Put_len _ -> Some 7 (* align 4 (≤ 3 bytes) + the 4-byte count;
                                 var encodings' worst length head is 5 *)
  | Mplan.Put_varhead { vh_worst; _ } -> Some vh_worst
  | Mplan.Loop { via = Mplan.Via_fixed n; body; _ } ->
      Option.map (fun u -> n * u) (bounded_advance_ops body)
  | Mplan.Switch { arms; default; _ } ->
      let bodies =
        List.map (fun (a : Mplan.arm) -> a.Mplan.a_body) arms
        @ match default with None -> [] | Some (_, b) -> [ b ]
      in
      List.fold_left
        (fun acc body ->
          match (acc, bounded_advance_ops body) with
          | Some m, Some u -> Some (max m u)
          | _, _ -> None)
        (Some 0) bodies
  | Mplan.Put_string _ | Mplan.Put_byteseq _ | Mplan.Put_atom_array _
  | Mplan.Loop _ | Mplan.Call _ ->
      None

and bounded_advance_ops ops =
  List.fold_left
    (fun acc op ->
      match (acc, bounded_advance op) with
      | Some a, Some b -> Some (a + b)
      | _, _ -> None)
    (Some 0) ops

let rec has_checked_chunk ops =
  List.exists
    (fun (op : Mplan.op) ->
      match op with
      | Mplan.Chunk { check; _ } -> check
      | Mplan.Put_varhead { vh_check; _ } -> vh_check
      | Mplan.Loop { body; _ } -> has_checked_chunk body
      | Mplan.Switch { arms; default; _ } ->
          List.exists (fun (a : Mplan.arm) -> has_checked_chunk a.Mplan.a_body) arms
          || (match default with
             | None -> false
             | Some (_, b) -> has_checked_chunk b)
      | _ -> false)
    ops

(* After hoisting one reservation that covers the whole loop, the
   chunks inside no longer need their own checks. *)
let rec clear_checks ops =
  List.map
    (fun (op : Mplan.op) ->
      match op with
      | Mplan.Chunk { size; align; items; check = _ } ->
          Mplan.Chunk { size; align; items; check = false }
      | Mplan.Put_varhead vh -> Mplan.Put_varhead { vh with vh_check = false }
      | Mplan.Loop { arr; via; var; body } ->
          Mplan.Loop { arr; via; var; body = clear_checks body }
      | Mplan.Switch { u; discrim_atom; arms; default; union_field; discrim_field }
        ->
          Mplan.Switch
            {
              u;
              discrim_atom;
              union_field;
              discrim_field;
              arms =
                List.map
                  (fun (a : Mplan.arm) ->
                    { a with Mplan.a_body = clear_checks a.Mplan.a_body })
                  arms;
              default = Option.map (fun (m, b) -> (m, clear_checks b)) default;
            }
      | op -> op)
    ops

(* ------------------------------------------------------------------ *)
(* Loop fusion guard                                                    *)
(* ------------------------------------------------------------------ *)

(* A per-element store may become Put_atom_array only when neither
   consumer would insert alignment the loop body did not have: atoms of
   alignment ≤ 1, or the 32-bit-integer fast path, whose positions the
   plan compiler only makes alignment-free when already aligned. *)
let fusable_atom (atom : Mplan.atom) =
  atom.Mplan.align <= 1
  ||
  match (atom.Mplan.kind, atom.Mplan.size) with
  | Encoding.Kint { bits; _ }, 4 -> bits <= 32
  | _, _ -> false

(* ------------------------------------------------------------------ *)
(* Reservation narrowing                                                *)
(* ------------------------------------------------------------------ *)

(* A variable-width header whose value is a compile-time constant has a
   statically known wire image (the compiler records it).  Narrowing
   replaces the Var reservation with a Fixed chunk of per-byte constant
   stores, which chunk coalescing then merges with its neighbors —
   e.g. an enum discriminator <= 127 becomes a one-byte fixint inside
   the surrounding chunk, re-enabling the single-check static run. *)

let u8_atom : Mplan.atom =
  { Mplan.kind = Encoding.Kint { bits = 8; signed = false }; size = 1; align = 1 }

let const_byte_items img =
  List.init (String.length img) (fun i ->
      Mplan.It_const
        { off = i; atom = u8_atom; value = Int64.of_int (Char.code img.[i]) })

let const_byte_ditems img =
  List.init (String.length img) (fun i ->
      Dplan.Dit_const
        { off = i; atom = u8_atom; value = Int64.of_int (Char.code img.[i]) })

(* ------------------------------------------------------------------ *)
(* The rewrite engine                                                   *)
(* ------------------------------------------------------------------ *)

let droppable (op : Mplan.op) =
  match op with
  | Mplan.Align a -> a <= 1 (* Mbuf.align / flick_align are no-ops *)
  | Mplan.Chunk { size = 0; items = []; _ } -> true
  | _ -> false

let rec optimize_ops rw st ops =
  merge rw st (List.concat_map (optimize_op rw st) ops)

and optimize_op rw st (op : Mplan.op) : Mplan.op list =
  match op with
  | Mplan.Loop { arr; via; var; body } -> (
      let body = optimize_ops rw st body in
      match (body, via) with
      (* (b) gapless scalar loop -> one tight array blit; the engine and
         the C emitter both self-ensure in Put_atom_array *)
      | ( [
            Mplan.Chunk
              {
                size;
                items = [ Mplan.It_atom { off = 0; atom; src = Mplan.Rvar v } ];
                check = _;
                align = _;
              };
          ],
          (Mplan.Via_seq _ | Mplan.Via_fixed _) )
        when rw.rw_fuse && v = var && size = atom.Mplan.size
             && fusable_atom atom ->
          st.loops_fused <- st.loops_fused + 1;
          [ Mplan.Put_atom_array { arr; via; atom; with_len = false } ]
      (* (c) every iteration advances at most [u] bytes: one reservation
         of len * u outside the loop covers every chunk inside *)
      | _, (Mplan.Via_seq _ | Mplan.Via_fixed _)
        when rw.rw_hoist && has_checked_chunk body -> (
          match bounded_advance_ops body with
          | Some u when u > 0 ->
              st.ensures_hoisted <- st.ensures_hoisted + 1;
              [
                Mplan.Ensure_count { arr; via; unit_size = u };
                Mplan.Loop { arr; via; var; body = clear_checks body };
              ]
          | _ -> [ Mplan.Loop { arr; via; var; body } ])
      | _, _ -> [ Mplan.Loop { arr; via; var; body } ])
  | Mplan.Switch { u; discrim_atom; arms; default; union_field; discrim_field }
    ->
      [
        Mplan.Switch
          {
            u;
            discrim_atom;
            union_field;
            discrim_field;
            arms =
              List.map
                (fun (a : Mplan.arm) ->
                  { a with Mplan.a_body = optimize_ops rw st a.Mplan.a_body })
                arms;
            default =
              Option.map (fun (m, b) -> (m, optimize_ops rw st b)) default;
          };
      ]
  | Mplan.Put_varhead { vh_image = Some img; vh_check; _ } when rw.rw_narrow ->
      st.heads_narrowed <- st.heads_narrowed + 1;
      [
        Mplan.Chunk
          {
            size = String.length img;
            align = 1;
            items = const_byte_items img;
            check = vh_check;
          };
      ]
  | op -> [ op ]

(* Adjacent-op rewriting, run to a fixpoint (each rewrite shortens the
   list, so this terminates). *)
and merge rw st = function
  | [] -> []
  | [ op ] when rw.rw_dead && droppable op ->
      st.dead_removed <- st.dead_removed + 1;
      []
  | [ op ] -> [ op ]
  | op1 :: op2 :: rest -> (
      match rewrite_pair rw st op1 op2 with
      | Some ops -> merge rw st (ops @ rest)
      | None -> op1 :: merge rw st (op2 :: rest))

and rewrite_pair rw st (op1 : Mplan.op) (op2 : Mplan.op) :
    Mplan.op list option =
  if rw.rw_dead && droppable op1 then (
    st.dead_removed <- st.dead_removed + 1;
    Some [ op2 ])
  else if rw.rw_dead && droppable op2 then (
    st.dead_removed <- st.dead_removed + 1;
    Some [ op1 ])
  else
    match (op1, op2) with
    (* consecutive power-of-two alignments: the larger one implies the
       smaller, in either order *)
    | Mplan.Align a, Mplan.Align b
      when rw.rw_coalesce && is_pow2 a && is_pow2 b ->
        st.aligns_removed <- st.aligns_removed + 1;
        Some [ Mplan.Align (max a b) ]
    (* (a) adjacent chunks become one: offsets of the second shift by the
       first's size, one capacity check covers both *)
    | Mplan.Chunk c1, Mplan.Chunk c2 when rw.rw_coalesce ->
        st.chunks_merged <- st.chunks_merged + 1;
        Some
          [
            Mplan.Chunk
              {
                size = c1.size + c2.size;
                align = c1.align;
                items = c1.items @ List.map (shift_item c1.size) c2.items;
                check = c1.check || c2.check;
              };
          ]
    (* a reservation made redundant by a fused array op that reserves
       for itself (compiler invariant: an Ensure_count covers exactly
       the array op that follows it) — part of the fusion pass, since
       only fusion creates the [Put_atom_array] that triggers it *)
    | ( Mplan.Ensure_count { arr; via; unit_size },
        Mplan.Put_atom_array { arr = arr2; via = via2; atom; with_len = false }
      )
      when rw.rw_fuse && arr = arr2 && via = via2
           && unit_size = atom.Mplan.size ->
        st.dead_removed <- st.dead_removed + 1;
        Some [ op2 ]
    | _, _ -> None

let optimize_with rw ?stats ops =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  optimize_ops rw st ops

let optimize ?stats ops = optimize_with all_rewrites ?stats ops

(* ------------------------------------------------------------------ *)
(* The decode-plan pass                                                 *)
(* ------------------------------------------------------------------ *)

(* Same rewrites over Dplan, with one crucial difference: on the decode
   side a bounds check is [Mbuf.need], which *raises* when the bytes are
   not there, so a hoisted loop reservation must cover *exactly* the
   bytes the body consumes — an upper bound (fine for encode's [ensure],
   which only reserves capacity) could reject well-formed messages.
   [exact_advance] therefore returns the advance only when it is the
   same for every run of the op. *)

let shift_ditem delta (it : Dplan.ditem) =
  match it with
  | Dplan.Dit_atom a -> Dplan.Dit_atom { a with off = a.off + delta }
  | Dplan.Dit_bytes b -> Dplan.Dit_bytes { b with off = b.off + delta }
  | Dplan.Dit_const c -> Dplan.Dit_const { c with off = c.off + delta }

let rec exact_advance_op (op : Dplan.dop) : int option =
  match op with
  | Dplan.D_align a -> if a <= 1 then Some 0 else None
  | Dplan.D_chunk { size; _ } -> Some size
  | Dplan.D_loop { count = Dplan.Dc_fixed n; frame; _ } ->
      Option.map (fun u -> n * u) (exact_advance frame.Dplan.f_ops)
  | Dplan.D_get_atom_array { count = Dplan.Dc_fixed n; atom; _ }
    when atom.Mplan.align <= 1 ->
      Some (n * atom.Mplan.size)
  | Dplan.D_get_string _ | Dplan.D_const_str _ | Dplan.D_get_byteseq _
  | Dplan.D_get_atom_array _ | Dplan.D_loop _ | Dplan.D_opt _
  | Dplan.D_switch _ | Dplan.D_call _ | Dplan.D_get_varhead _ ->
      None

and exact_advance ops =
  List.fold_left
    (fun acc op ->
      match (acc, exact_advance_op op) with
      | Some a, Some b -> Some (a + b)
      | _, _ -> None)
    (Some 0) ops

let rec d_has_checked_chunk ops =
  List.exists
    (fun (op : Dplan.dop) ->
      match op with
      | Dplan.D_chunk { check; _ } -> check
      | Dplan.D_loop { frame; _ } | Dplan.D_opt { frame; _ } ->
          d_has_checked_chunk frame.Dplan.f_ops
      | Dplan.D_switch { arms; default; _ } ->
          List.exists
            (fun (a : Dplan.darm) ->
              d_has_checked_chunk a.Dplan.d_frame.Dplan.f_ops)
            arms
          || (match default with
             | None -> false
             | Some f -> d_has_checked_chunk f.Dplan.f_ops)
      | _ -> false)
    ops

(* Under a hoisted reservation the bytes are already pulled up and
   verified present; interior chunks (including those of nested fixed
   loops — the only op kinds [exact_advance] admits) run check-free. *)
let rec clear_dchecks ops =
  List.map
    (fun (op : Dplan.dop) ->
      match op with
      | Dplan.D_chunk { size; items; check = _ } ->
          Dplan.D_chunk { size; items; check = false }
      | Dplan.D_loop { count; ensure; frame; slot } ->
          Dplan.D_loop
            {
              count;
              ensure;
              frame =
                { frame with Dplan.f_ops = clear_dchecks frame.Dplan.f_ops };
              slot;
            }
      | op -> op)
    ops

let d_droppable (op : Dplan.dop) =
  match op with
  | Dplan.D_align a -> a <= 1
  | Dplan.D_chunk { size = 0; items = []; _ } -> true
  | _ -> false

let rec optimize_dops_st rw st ops =
  merge_d rw st (List.concat_map (optimize_dop rw st) ops)

and optimize_dframe rw st frame =
  { frame with Dplan.f_ops = optimize_dops_st rw st frame.Dplan.f_ops }

(* A scalar loop fuses into one D_get_atom_array only when the array op
   reads the same bytes (no per-element re-alignment, so align <= 1)
   and builds the same value shape (the array op builds Vint_array for
   Kint bits <= 32 where the loop builds an array of Vint, so integer
   loops stay loops — the compiler lowers those to array ops directly
   anyway). *)
and d_fusable_atom (atom : Mplan.atom) =
  atom.Mplan.align <= 1
  && (match atom.Mplan.kind with
     | Encoding.Kint { bits; _ } -> bits > 32
     | Encoding.Kbool | Encoding.Kchar | Encoding.Kfloat _ -> true)

and optimize_dop rw st (op : Dplan.dop) : Dplan.dop list =
  match op with
  | Dplan.D_loop { count; ensure; frame; slot } -> (
      let frame = optimize_dframe rw st frame in
      match frame with
      | {
       Dplan.f_nslots = 1;
       f_ops =
         [
           Dplan.D_chunk
             { size; items = [ Dplan.Dit_atom { off = 0; atom; slot = 0 } ]; _ };
         ];
       f_shape = Dplan.Sh_slot 0;
      }
        when rw.rw_fuse && size = atom.Mplan.size && d_fusable_atom atom ->
          (* one scalar load covering the whole stride: the loop IS an
             atom array read (decode twin of the encode loop-blit
             fusion) *)
          st.loops_fused <- st.loops_fused + 1;
          [ Dplan.D_get_atom_array { count; atom; slot } ]
      | _ -> (
      match ensure with
      | Some _ -> [ Dplan.D_loop { count; ensure; frame; slot } ]
      | None -> (
          if
            (not rw.rw_hoist)
            || not (d_has_checked_chunk frame.Dplan.f_ops)
          then [ Dplan.D_loop { count; ensure; frame; slot } ]
          else
            match exact_advance frame.Dplan.f_ops with
            | Some u when u > 0 ->
                st.ensures_hoisted <- st.ensures_hoisted + 1;
                [
                  Dplan.D_loop
                    {
                      count;
                      ensure = Some u;
                      frame =
                        {
                          frame with
                          Dplan.f_ops = clear_dchecks frame.Dplan.f_ops;
                        };
                      slot;
                    };
                ]
            | _ -> [ Dplan.D_loop { count; ensure; frame; slot } ])))
  | Dplan.D_opt { frame; slot } ->
      [ Dplan.D_opt { frame = optimize_dframe rw st frame; slot } ]
  | Dplan.D_switch { discrim_atom; arms; default; slot } ->
      [
        Dplan.D_switch
          {
            discrim_atom;
            arms =
              List.map
                (fun (a : Dplan.darm) ->
                  { a with
                    Dplan.d_frame = optimize_dframe rw st a.Dplan.d_frame
                  })
                arms;
            default = Option.map (optimize_dframe rw st) default;
            slot;
          };
      ]
  (* decode twin of constant-header narrowing: the expected image
     becomes a byte-compare chunk; the var readers reject non-minimal
     forms, so the accepted message set is unchanged *)
  | Dplan.D_get_varhead { vh_image = Some img; vh_slot = None; _ }
    when rw.rw_narrow ->
      st.heads_narrowed <- st.heads_narrowed + 1;
      [
        Dplan.D_chunk
          { size = String.length img; items = const_byte_ditems img; check = true };
      ]
  | op -> [ op ]

and merge_d rw st = function
  | [] -> []
  | [ op ] when rw.rw_dead && d_droppable op ->
      st.dead_removed <- st.dead_removed + 1;
      []
  | [ op ] -> [ op ]
  | op1 :: op2 :: rest -> (
      match rewrite_dpair rw st op1 op2 with
      | Some ops -> merge_d rw st (ops @ rest)
      | None -> op1 :: merge_d rw st (op2 :: rest))

and rewrite_dpair rw st (op1 : Dplan.dop) (op2 : Dplan.dop) :
    Dplan.dop list option =
  if rw.rw_dead && d_droppable op1 then (
    st.dead_removed <- st.dead_removed + 1;
    Some [ op2 ])
  else if rw.rw_dead && d_droppable op2 then (
    st.dead_removed <- st.dead_removed + 1;
    Some [ op1 ])
  else
    match (op1, op2) with
    | Dplan.D_align a, Dplan.D_align b
      when rw.rw_coalesce && is_pow2 a && is_pow2 b ->
        st.aligns_removed <- st.aligns_removed + 1;
        Some [ Dplan.D_align (max a b) ]
    (* adjacent chunks: one [need] covers both; merging never changes
       which messages decode (the total byte requirement is identical,
       only checked earlier) *)
    | Dplan.D_chunk c1, Dplan.D_chunk c2 when rw.rw_coalesce ->
        st.chunks_merged <- st.chunks_merged + 1;
        Some
          [
            Dplan.D_chunk
              {
                size = c1.size + c2.size;
                items = c1.items @ List.map (shift_ditem c1.size) c2.items;
                check = c1.check || c2.check;
              };
          ]
    | _, _ -> None

let optimize_dops_with rw ?stats ops =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  optimize_dops_st rw st ops

let optimize_dops ?stats ops = optimize_dops_with all_rewrites ?stats ops

let optimize_dplan_with rw ?stats (plan : Dplan.plan) =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  {
    plan with
    Dplan.d_ops = optimize_dops_st rw st plan.Dplan.d_ops;
    d_subs =
      List.map
        (fun (name, frame) -> (name, optimize_dframe rw st frame))
        plan.Dplan.d_subs;
  }

let optimize_dplan ?stats plan = optimize_dplan_with all_rewrites ?stats plan

let optimize_plan_with rw ?stats (plan : Plan_compile.plan) =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  {
    Plan_compile.p_ops = optimize_ops rw st plan.Plan_compile.p_ops;
    p_subs =
      List.map
        (fun (name, ops) -> (name, optimize_ops rw st ops))
        plan.Plan_compile.p_subs;
  }

let optimize_plan ?stats plan = optimize_plan_with all_rewrites ?stats plan

(* ------------------------------------------------------------------ *)
(* Forward-plan rewrites                                                *)
(* ------------------------------------------------------------------ *)

(* Same contract as the plan rewrites above: destination bytes are
   preserved exactly, and the accepted message set is unchanged — only
   check timing may move earlier (the decode-side caveat applies). *)

let shift_fmove ~dsrc ~ddst (m : Fplan.fmove) =
  match m with
  | Fplan.Fm_copy c ->
      Fplan.Fm_copy
        { c with src_off = c.src_off + dsrc; dst_off = c.dst_off + ddst }
  | Fplan.Fm_convert c ->
      Fplan.Fm_convert
        { c with src_off = c.src_off + dsrc; dst_off = c.dst_off + ddst }
  | Fplan.Fm_check c -> Fplan.Fm_check { c with src_off = c.src_off + dsrc }
  | Fplan.Fm_const c -> Fplan.Fm_const { c with dst_off = c.dst_off + ddst }
  | Fplan.Fm_zero z -> Fplan.Fm_zero { z with dst_off = z.dst_off + ddst }

(* Contiguous same-delta copies (and contiguous zero fills) become one
   move — this is what turns a fused chunk of word-by-word copies into
   a single memcpy span. *)
let rec coalesce_fmoves st = function
  | Fplan.Fm_copy a :: Fplan.Fm_copy b :: rest
    when b.src_off = a.src_off + a.len && b.dst_off = a.dst_off + a.len ->
      st.chunks_merged <- st.chunks_merged + 1;
      coalesce_fmoves st (Fplan.Fm_copy { a with len = a.len + b.len } :: rest)
  | Fplan.Fm_zero a :: Fplan.Fm_zero b :: rest
    when b.dst_off = a.dst_off + a.len ->
      st.chunks_merged <- st.chunks_merged + 1;
      coalesce_fmoves st (Fplan.Fm_zero { a with len = a.len + b.len } :: rest)
  | m :: rest -> m :: coalesce_fmoves st rest
  | [] -> []

(* Adjacent runs merge like adjacent chunks: no op separates them, so
   both sides' static offsets stay valid after shifting. *)
let rec fwd_merge st = function
  | Fplan.F_run r1 :: Fplan.F_run r2 :: rest ->
      st.chunks_merged <- st.chunks_merged + 1;
      let moves2 =
        List.map (shift_fmove ~dsrc:r1.src_size ~ddst:r1.dst_size) r2.moves
      in
      fwd_merge st
        (Fplan.F_run
           {
             src_size = r1.src_size + r2.src_size;
             dst_size = r1.dst_size + r2.dst_size;
             src_check = r1.src_check || r2.src_check;
             dst_check = r1.dst_check || r2.dst_check;
             moves = coalesce_fmoves st (r1.moves @ moves2);
           }
        :: rest)
  | op :: rest -> op :: fwd_merge st rest
  | [] -> []

let rec fwd_coalesce_ops st ops =
  fwd_merge st
    (List.map
       (fun (op : Fplan.fop) ->
         match op with
         | Fplan.F_run r ->
             Fplan.F_run { r with moves = coalesce_fmoves st r.moves }
         | Fplan.F_loop l -> Fplan.F_loop { l with body = fwd_coalesce_ops st l.body }
         | Fplan.F_opt o -> Fplan.F_opt { body = fwd_coalesce_ops st o.body }
         | op -> op)
       ops)

let forward_coalesce ?stats ops =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  fwd_coalesce_ops st ops

(* A loop whose body is one whole-stride copy under exact reservations
   on both sides is a counted memcpy: count * unit bytes in one
   transfer, borrowable by reference above the threshold. *)
let rec fwd_collapse_ops st ops =
  List.map
    (fun (op : Fplan.fop) ->
      match op with
      | Fplan.F_opt o -> Fplan.F_opt { body = fwd_collapse_ops st o.body }
      | Fplan.F_loop l -> (
          let body = fwd_collapse_ops st l.body in
          match (l.src_ensure, l.dst_ensure, body) with
          | ( Some u,
              Some u',
              [
                Fplan.F_run
                  {
                    src_size;
                    dst_size;
                    moves = [ Fplan.Fm_copy { src_off = 0; dst_off = 0; len } ];
                    _;
                  };
              ] )
            when u = u' && src_size = u && dst_size = u && len = u ->
              st.loops_fused <- st.loops_fused + 1;
              Fplan.F_counted_blit
                {
                  count = l.count;
                  emit_len = l.emit_len;
                  unit_size = u;
                  borrow = true;
                }
          | _ -> Fplan.F_loop { l with body })
      | op -> op)
    ops

let forward_collapse ?stats ops =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  fwd_collapse_ops st ops
