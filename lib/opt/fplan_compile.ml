(* Cross-chunk copy propagation: fuse a decode plan and an encode plan
   for the same message shape into a forward plan.  See
   fplan_compile.mli for the pairing rules and the soundness
   argument. *)

exception Unsupported of string

(* A per-root encode plan that references parameters other than its own
   root (e.g. a string presented with a separate length parameter)
   cannot be fused or materialized root-by-root; the whole message
   falls back to one decode + re-encode pair. *)
exception Cross_root

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag
let fingerprint () = Printf.sprintf "fwd=%b" !enabled_flag

(* -- blit safety ----------------------------------------------------- *)

(* An atom may move as raw bytes only when decode-then-reencode is the
   identity on every bit pattern: full-width integers (masking and
   sign-extension preserve all stored bits) and single-byte chars.
   Booleans normalize to 0/1, wide chars zero their high bytes, and
   float32 may canonicalize NaNs through the double round-trip — those
   convert instead, which reproduces the baseline normalization. *)
let atom_blit_safe (a : Mplan.atom) =
  match a.Mplan.kind with
  | Encoding.Kint { bits; _ } -> bits = 8 * a.Mplan.size
  | Encoding.Kchar -> a.Mplan.size = 1
  | Encoding.Kbool | Encoding.Kfloat _ -> false

let pair_blit_safe ~src_be ~dst_be (sa : Mplan.atom) (da : Mplan.atom) =
  sa.Mplan.size = da.Mplan.size
  && sa.Mplan.kind = da.Mplan.kind
  && atom_blit_safe sa
  && (sa.Mplan.size = 1 || src_be = dst_be)

(* -- token streams ---------------------------------------------------

   Both plans explode into flat queues of atomic pieces: chunks break
   into their items plus the gaps between them (in offset order, which
   is wire order — the same MINT fields appear in the same sequence
   under every encoding), variable-length ops stay whole.  The fuser
   pairs the two queues head to head. *)

type spiece =
  | Sp_atom of Mplan.atom
  | Sp_bytes of int
  | Sp_const of Mplan.atom * int64
  | Sp_gap of int

type stok =
  | Ts_align of int
  | Ts_piece of bool * spiece (* chunk check flag, piece *)
  | Ts_var of Dplan.dop

type dpiece =
  | Dp_atom of Mplan.atom
  | Dp_bytes of int
  | Dp_const of Mplan.atom * int64
  | Dp_gap of int

type dtok =
  | Td_align of int
  | Td_piece of bool * dpiece
  | Td_var of Mplan.op

let explode_src_chunk size items check =
  let keyed =
    List.map
      (fun (it : Dplan.ditem) ->
        match it with
        | Dplan.Dit_atom { off; atom; _ } ->
            (off, atom.Mplan.size, [ Sp_atom atom ])
        | Dplan.Dit_bytes { off; len; _ } -> (off, len, [ Sp_bytes len ])
        | Dplan.Dit_const { off; atom; value } ->
            (off, atom.Mplan.size, [ Sp_const (atom, value) ]))
      items
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let rec walk pos acc = function
    | [] ->
        let acc = if pos < size then Sp_gap (size - pos) :: acc else acc in
        List.rev acc
    | (off, sz, pieces) :: rest ->
        if off < pos then raise (Unsupported "overlapping decode items");
        let acc = if off > pos then Sp_gap (off - pos) :: acc else acc in
        walk (off + sz) (List.rev_append pieces acc) rest
  in
  List.map (fun p -> Ts_piece (check, p)) (walk 0 [] keyed)

let explode_dst_chunk size items check =
  let keyed =
    List.map
      (fun (it : Mplan.item) ->
        match it with
        | Mplan.It_atom { off; atom; _ } ->
            (off, atom.Mplan.size, [ Dp_atom atom ])
        | Mplan.It_bytes { off; len; pad; _ } ->
            (* the item zero-fills its own pad: data then a gap *)
            ( off,
              len + pad,
              if pad > 0 then [ Dp_bytes len; Dp_gap pad ] else [ Dp_bytes len ]
            )
        | Mplan.It_const { off; atom; value } ->
            (off, atom.Mplan.size, [ Dp_const (atom, value) ]))
      items
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let rec walk pos acc = function
    | [] ->
        let acc = if pos < size then Dp_gap (size - pos) :: acc else acc in
        List.rev acc
    | (off, sz, pieces) :: rest ->
        if off < pos then raise (Unsupported "overlapping encode items");
        let acc = if off > pos then Dp_gap (off - pos) :: acc else acc in
        walk (off + sz) (List.rev_append pieces acc) rest
  in
  List.map (fun p -> Td_piece (check, p)) (walk 0 [] keyed)

let stoks_of ops =
  List.concat_map
    (function
      | Dplan.D_align n -> [ Ts_align n ]
      | Dplan.D_chunk { size; items; check } ->
          explode_src_chunk size items check
      | op -> [ Ts_var op ])
    ops

let dtoks_of ops =
  List.concat_map
    (function
      | Mplan.Align n -> [ Td_align n ]
      | Mplan.Chunk { size; items; check; align = _ } ->
          explode_dst_chunk size items check
      | op -> [ Td_var op ])
    ops

(* -- pairing --------------------------------------------------------- *)

type ctx = { src : Encoding.t; dst : Encoding.t; sg : bool }

let fcount_of = function
  | Dplan.Dc_fixed n -> Fplan.Fc_fixed n
  | Dplan.Dc_len { min_len; max_len; what } ->
      Fplan.Fc_wire { min_len; max_len; what }

let run1 ~src_size ~dst_size ~src_check ~dst_check moves =
  Fplan.F_run { src_size; dst_size; src_check; dst_check; moves }

(* Take exactly [n] uniform atom pieces off the destination queue — the
   unrolled fixed scalar array the encode side embeds in its chunk. *)
let take_atom_run n atom dtoks =
  let rec go k acc = function
    | d when k = 0 -> (List.rev acc, d)
    | Td_piece (_, Dp_atom a) :: rest when a = atom -> go (k - 1) (a :: acc) rest
    | _ -> raise (Unsupported "scalar array vs. non-uniform item run")
  in
  go n [] dtoks

let rec fuse_seq ctx stoks dtoks acc =
  match (stoks, dtoks) with
  | [], [] -> List.rev acc
  (* one-sided source tokens: padding skipped, constants verified *)
  | Ts_align n :: s, d -> fuse_seq ctx s d (Fplan.F_src_align n :: acc)
  | Ts_piece (c, Sp_gap n) :: s, d ->
      fuse_seq ctx s d
        (run1 ~src_size:n ~dst_size:0 ~src_check:c ~dst_check:false [] :: acc)
  | Ts_piece (c, Sp_const (a, v)) :: s, d ->
      fuse_seq ctx s d
        (run1 ~src_size:a.Mplan.size ~dst_size:0 ~src_check:c ~dst_check:false
           [ Fplan.Fm_check { src_off = 0; atom = a; value = v } ]
        :: acc)
  (* one-sided destination tokens: padding and constants regenerated *)
  | s, Td_align n :: d -> fuse_seq ctx s d (Fplan.F_dst_align n :: acc)
  | s, Td_piece (c, Dp_gap n) :: d ->
      fuse_seq ctx s d
        (run1 ~src_size:0 ~dst_size:n ~src_check:false ~dst_check:c
           [ Fplan.Fm_zero { dst_off = 0; len = n } ]
        :: acc)
  | s, Td_piece (c, Dp_const (a, v)) :: d ->
      fuse_seq ctx s d
        (run1 ~src_size:0 ~dst_size:a.Mplan.size ~src_check:false ~dst_check:c
           [ Fplan.Fm_const { dst_off = 0; atom = a; value = v } ]
        :: acc)
  (* fixed data pairs *)
  | Ts_piece (sc, Sp_atom sa) :: s, Td_piece (dc, Dp_atom da) :: d ->
      if sa.Mplan.kind <> da.Mplan.kind then
        raise (Unsupported "atom kind mismatch across plans");
      let moves =
        if
          pair_blit_safe ~src_be:ctx.src.Encoding.big_endian
            ~dst_be:ctx.dst.Encoding.big_endian sa da
        then [ Fplan.Fm_copy { src_off = 0; dst_off = 0; len = sa.Mplan.size } ]
        else
          [
            Fplan.Fm_convert
              { src_off = 0; src_atom = sa; dst_off = 0; dst_atom = da };
          ]
      in
      fuse_seq ctx s d
        (run1 ~src_size:sa.Mplan.size ~dst_size:da.Mplan.size ~src_check:sc
           ~dst_check:dc moves
        :: acc)
  | Ts_piece (sc, Sp_bytes n) :: s, Td_piece (dc, Dp_bytes m) :: d ->
      if n <> m then raise (Unsupported "fixed byte run length mismatch");
      fuse_seq ctx s d
        (run1 ~src_size:n ~dst_size:n ~src_check:sc ~dst_check:dc
           [ Fplan.Fm_copy { src_off = 0; dst_off = 0; len = n } ]
        :: acc)
  (* a decode-side scalar array against the unrolled item run the
     encode side kept inside its chunk *)
  | ( Ts_var (Dplan.D_get_atom_array { count = Dplan.Dc_fixed n; atom = sa; _ })
      :: s,
      (Td_piece (_, Dp_atom da) :: _ as d) ) ->
      if sa.Mplan.kind <> da.Mplan.kind then
        raise (Unsupported "atom kind mismatch across plans");
      let _, d = take_atom_run n da d in
      let blit =
        pair_blit_safe ~src_be:ctx.src.Encoding.big_endian
          ~dst_be:ctx.dst.Encoding.big_endian sa da
      in
      fuse_seq ctx s d
        (Fplan.F_atom_array
           {
             count = Fplan.Fc_fixed n;
             emit_len = false;
             src_atom = sa;
             dst_atom = da;
             dst_packed = true;
             blit;
             borrow = blit && ctx.sg;
           }
        :: acc)
  (* variable-length pairs *)
  | Ts_var sop :: s, d -> fuse_var ctx sop s d acc
  | Ts_piece _ :: _, _ -> raise (Unsupported "fixed data vs. variable op")
  | [], _ -> raise (Unsupported "trailing encode-side data")

and fuse_var ctx sop stoks dtoks acc =
  match (sop, dtoks) with
  | ( Dplan.D_get_string { max_len; view = _; _ },
      Td_var (Mplan.Put_string { nul; pad; len_src; borrow; src = _ }) :: d ) ->
      if len_src <> None then
        raise (Unsupported "string with a separate length parameter");
      fuse_seq ctx stoks d
        (Fplan.F_string
           {
             max_len;
             src_nul = ctx.src.Encoding.string_nul;
             dst_nul = nul;
             src_pad = ctx.src.Encoding.pad_unit;
             dst_pad = pad;
             borrow;
           }
        :: acc)
  | ( Dplan.D_const_str expect,
      Td_var (Mplan.Put_const_str { s; nul; pad }) :: d ) ->
      if expect <> s then raise (Unsupported "constant key mismatch");
      (* the destination image, exactly as Stub_opt emits it *)
      let data = String.length s + if nul then 1 else 0 in
      let img = Bytes.make (4 + data + pad) '\000' in
      (if ctx.dst.Encoding.big_endian then
         Bytes.set_int32_be img 0 (Int32.of_int data)
       else Bytes.set_int32_le img 0 (Int32.of_int data));
      Bytes.blit_string s 0 img 4 (String.length s);
      fuse_seq ctx stoks d
        (Fplan.F_const_str
           {
             s;
             src_nul = ctx.src.Encoding.string_nul;
             src_pad = ctx.src.Encoding.pad_unit;
             image = Bytes.unsafe_to_string img;
           }
        :: acc)
  | ( Dplan.D_get_byteseq { count = Dplan.Dc_len _ as c; view = _; _ },
      Td_var (Mplan.Put_byteseq { pad; borrow; _ }) :: d ) ->
      fuse_seq ctx stoks d
        (Fplan.F_byteseq
           {
             count = fcount_of c;
             emit_len = true;
             src_pad = ctx.src.Encoding.pad_unit;
             dst_pad = pad;
             borrow;
           }
        :: acc)
  | ( Dplan.D_get_byteseq { count = Dplan.Dc_fixed n; view = _; _ },
      Td_var (Mplan.Put_blit { len; pad; src = _ }) :: d ) ->
      if n <> len then raise (Unsupported "fixed blit length mismatch");
      fuse_seq ctx stoks d
        (Fplan.F_blit
           {
             len;
             src_pad = ctx.src.Encoding.pad_unit;
             dst_tail = pad;
             borrow = ctx.sg;
           }
        :: acc)
  | ( Dplan.D_get_atom_array { count; atom = sa; _ },
      Td_var (Mplan.Put_atom_array { atom = da; with_len; via; _ }) :: d ) ->
      if sa.Mplan.kind <> da.Mplan.kind then
        raise (Unsupported "atom kind mismatch across plans");
      let count =
        match (count, with_len, via) with
        | Dplan.Dc_len _, true, _ -> fcount_of count
        | Dplan.Dc_fixed n, false, Mplan.Via_fixed m when n = m ->
            Fplan.Fc_fixed n
        | _ -> raise (Unsupported "scalar array count mismatch")
      in
      let blit =
        pair_blit_safe ~src_be:ctx.src.Encoding.big_endian
          ~dst_be:ctx.dst.Encoding.big_endian sa da
      in
      fuse_seq ctx stoks d
        (Fplan.F_atom_array
           {
             count;
             emit_len = with_len;
             src_atom = sa;
             dst_atom = da;
             dst_packed = false;
             blit;
             borrow = blit && ctx.sg;
           }
        :: acc)
  | Dplan.D_loop { count; ensure; frame; _ }, d ->
      let emit_len, d =
        match d with
        | Td_var (Mplan.Put_len { via = Mplan.Via_opt; _ }) :: _ ->
            raise (Unsupported "loop vs. optional")
        | Td_var (Mplan.Put_len _) :: d' -> (true, d')
        | _ -> (false, d)
      in
      let dst_ensure, d =
        match d with
        | Td_var (Mplan.Ensure_count { unit_size; _ }) :: d' ->
            (Some unit_size, d')
        | _ -> (None, d)
      in
      let via, body, d =
        match d with
        | Td_var (Mplan.Loop { via; body; _ }) :: d' -> (via, body, d')
        | _ -> raise (Unsupported "decode loop without an encode loop")
      in
      (match (count, emit_len, via) with
      | Dplan.Dc_len _, true, (Mplan.Via_seq _ | Mplan.Via_string) -> ()
      | Dplan.Dc_fixed n, false, Mplan.Via_fixed m when n = m -> ()
      | _ -> raise (Unsupported "loop count mismatch"));
      let fbody = fuse_seq ctx (stoks_of frame.Dplan.f_ops) (dtoks_of body) [] in
      fuse_seq ctx stoks d
        (Fplan.F_loop
           {
             count = fcount_of count;
             emit_len;
             src_ensure = ensure;
             dst_ensure;
             body = fbody;
           }
        :: acc)
  | Dplan.D_opt { frame; _ }, d ->
      let d =
        match d with
        | Td_var (Mplan.Put_len { via = Mplan.Via_opt; _ }) :: d' -> d'
        | _ -> raise (Unsupported "optional without an encode length word")
      in
      let body, d =
        match d with
        | Td_var (Mplan.Loop { via = Mplan.Via_opt; body; _ }) :: d' ->
            (body, d')
        | _ -> raise (Unsupported "optional without an encode loop")
      in
      let fbody = fuse_seq ctx (stoks_of frame.Dplan.f_ops) (dtoks_of body) [] in
      fuse_seq ctx stoks d (Fplan.F_opt { body = fbody } :: acc)
  | (Dplan.D_switch _ | Dplan.D_call _), _ ->
      raise (Unsupported "union/recursive root")
  | _, Td_align n :: d -> fuse_var ctx sop stoks d (Fplan.F_dst_align n :: acc)
  | _, Td_piece (c, Dp_gap n) :: d ->
      fuse_var ctx sop stoks d
        (run1 ~src_size:0 ~dst_size:n ~src_check:false ~dst_check:c
           [ Fplan.Fm_zero { dst_off = 0; len = n } ]
        :: acc)
  | _, Td_piece (c, Dp_const (a, v)) :: d ->
      fuse_var ctx sop stoks d
        (run1 ~src_size:0 ~dst_size:a.Mplan.size ~src_check:false ~dst_check:c
           [ Fplan.Fm_const { dst_off = 0; atom = a; value = v } ]
        :: acc)
  | _, _ -> raise (Unsupported "variable op vs. fixed data")

(* -- per-root compilation ------------------------------------------- *)

let rec rw_rv (rv : Mplan.rv) : Mplan.rv =
  match rv with
  | Mplan.Rparam p -> Mplan.Rparam { p with index = 0 }
  | Mplan.Rfield f -> Mplan.Rfield { f with base = rw_rv f.base }
  | Mplan.Rarm a -> Mplan.Rarm { a with base = rw_rv a.base }
  | Mplan.Rdiscrim d -> Mplan.Rdiscrim { d with base = rw_rv d.base }
  | Mplan.Ropt r -> Mplan.Ropt (rw_rv r)
  | Mplan.Rvar _ -> rv

let rewrite_root (root : Plan_compile.root) : Plan_compile.root =
  match root with
  | Plan_compile.Rvalue (rv, idx, pres) ->
      Plan_compile.Rvalue (rw_rv rv, idx, pres)
  | r -> r

(* every Rparam index a compiled plan navigates from *)
let plan_param_indexes (p : Plan_compile.plan) =
  let acc = ref [] in
  let rec rv = function
    | Mplan.Rparam { index; _ } -> acc := index :: !acc
    | Mplan.Rfield { base; _ }
    | Mplan.Rarm { base; _ }
    | Mplan.Rdiscrim { base; _ } ->
        rv base
    | Mplan.Ropt r -> rv r
    | Mplan.Rvar _ -> ()
  in
  let item = function
    | Mplan.It_atom { src; _ } | Mplan.It_bytes { src; _ } -> rv src
    | Mplan.It_const _ -> ()
  in
  let rec op = function
    | Mplan.Align _ | Mplan.Put_const_str _ -> ()
    | Mplan.Chunk { items; _ } -> List.iter item items
    | Mplan.Ensure_count { arr; _ }
    | Mplan.Put_byteseq { arr; _ }
    | Mplan.Put_atom_array { arr; _ }
    | Mplan.Put_len { arr; _ } ->
        rv arr
    | Mplan.Put_string { src; len_src; _ } ->
        rv src;
        Option.iter rv len_src
    | Mplan.Put_blit { src; _ } -> rv src
    | Mplan.Put_varhead { vh_src = Mplan.Vh_value r; _ } -> rv r
    | Mplan.Put_varhead { vh_src = Mplan.Vh_const _; _ } -> ()
    | Mplan.Loop { arr; body; _ } ->
        rv arr;
        List.iter op body
    | Mplan.Switch { u; arms; default; _ } ->
        rv u;
        List.iter (fun (a : Mplan.arm) -> List.iter op a.Mplan.a_body) arms;
        Option.iter (fun (_, body) -> List.iter op body) default
    | Mplan.Call (_, r) -> rv r
  in
  List.iter op p.Plan_compile.p_ops;
  List.iter (fun (_, body) -> List.iter op body) p.Plan_compile.p_subs;
  !acc

(* Alignment congruence at a root boundary: the body starts max-aligned;
   after any complete root the position is a multiple of the encoding's
   granularity (every layout advances by a multiple of it), and nothing
   stronger survives variable-length roots in general. *)
let start_for (enc : Encoding.t) i =
  if i = 0 then (8, 0) else (max enc.Encoding.granularity 1, 0)

let fuse ?config ~(src : Encoding.t) ~(dst : Encoding.t) ~mint ~named
    ?(sg = Mbuf.sg_enabled ()) ?(sg_threshold = Mbuf.borrow_threshold ())
    (droots : Dplan_compile.droot list) (roots : Plan_compile.root list) :
    Fplan.plan =
  if List.length droots <> List.length roots then
    invalid_arg "Fplan_compile.fuse: root list arity mismatch";
  let dplan_for ~start droots =
    Plan_cache.dplan ~enc:src ~mint ~named ~start ?config ~views:sg
      ~view_threshold:sg_threshold droots
  in
  let mplan_for ~start roots =
    Plan_cache.plan ~enc:dst ~mint ~named ~start ?config ~sg ~sg_threshold
      roots
  in
  let full_fallback () =
    {
      Fplan.f_ops =
        [
          Fplan.F_materialize
            {
              index = -1;
              dplan = dplan_for ~start:(8, 0) droots;
              mplan = mplan_for ~start:(8, 0) roots;
            };
        ];
      f_src = src;
      f_dst = dst;
    }
  in
  (* value-dependent wire formats carry no fixed per-atom layout to pair
     token streams over: any self-describing side degrades the whole
     message to one decode + re-encode pair *)
  if
    (not (enabled ()))
    || src.Encoding.var <> None
    || dst.Encoding.var <> None
  then full_fallback ()
  else
    let ctx = { src; dst; sg } in
    let fuse_root i droot root =
      let root = rewrite_root root in
      let dp = dplan_for ~start:(start_for src i) [ droot ] in
      let mp = mplan_for ~start:(start_for dst i) [ root ] in
      if List.exists (fun ix -> ix <> 0) (plan_param_indexes mp) then
        raise Cross_root;
      if dp.Dplan.d_subs <> [] || mp.Plan_compile.p_subs <> [] then
        [ Fplan.F_materialize { index = i; dplan = dp; mplan = mp } ]
      else
        try fuse_seq ctx (stoks_of dp.Dplan.d_ops) (dtoks_of mp.Plan_compile.p_ops) []
        with Unsupported _ ->
          [ Fplan.F_materialize { index = i; dplan = dp; mplan = mp } ]
    in
    try
      let ops =
        List.concat
          (List.mapi
             (fun i (droot, root) -> fuse_root i droot root)
             (List.combine droots roots))
      in
      { Fplan.f_ops = ops; f_src = src; f_dst = dst }
    with Cross_root -> full_fallback ()
