(** On-the-wire data encodings (the back-end half of the paper's type
    chain: encoded type <-> MINT <-> PRES <-> CAST).

    An encoding fixes everything MINT deliberately leaves open: sizes,
    alignment, byte order, length-prefix format, padding, and whether
    items carry Mach-style type descriptors.  The four encodings
    correspond to the paper's four back ends. *)

type atom_kind =
  | Kbool
  | Kchar
  | Kint of { bits : int; signed : bool }
  | Kfloat of { bits : int }

type layout = { size : int; align : int }

type t = {
  name : string;
  big_endian : bool;
  atom : atom_kind -> layout;
  len_prefix : layout;  (** variable-length array count *)
  pad_unit : int;
      (** packed byte runs (strings, char/octet arrays) are padded to a
          multiple of this (XDR: 4, CDR: 1) *)
  string_nul : bool;
      (** CDR strings include the terminating NUL in the counted bytes *)
  typed_headers : bool;
      (** Mach 3 typed messages: a 4-byte type descriptor precedes every
          data item *)
  max_align : int;
  granularity : int;
      (** every layout advances the position by a multiple of this (XDR:
          4, others: 1); the plan compiler's static-position tracking
          survives loops and unions exactly at this granularity *)
}

val cdr : t
(** CORBA CDR as used by IIOP: natural sizes and alignment, big-endian
    (we always generate big-endian messages, like a SPARC sender). *)

val xdr : t
(** ONC XDR (RFC 1832): every scalar occupies a multiple of 4 bytes,
    big-endian; opaque/string data padded to 4. *)

val mach3 : t
(** Mach 3 typed messages: little-endian host order with a descriptor
    word before each item. *)

val fluke : t
(** Fluke kernel IPC: packed little-endian words, no descriptors — the
    lean format whose small messages travel in registers. *)

val all : t list
val by_name : string -> t option
val atom_of_mint : Mint.def -> atom_kind option
(** The atom for a MINT leaf ([None] for aggregates and [Void]). *)
