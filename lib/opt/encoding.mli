(** On-the-wire data encodings (the back-end half of the paper's type
    chain: encoded type <-> MINT <-> PRES <-> CAST).

    An encoding fixes everything MINT deliberately leaves open: sizes,
    alignment, byte order, length-prefix format, padding, and whether
    items carry Mach-style type descriptors.  The first four encodings
    correspond to the paper's four back ends; [msgpack] and [cbor] are
    self-describing formats whose scalar widths depend on the value —
    they carry a {!varcodec} and classify their atoms {!Var}. *)

type atom_kind =
  | Kbool
  | Kchar
  | Kint of { bits : int; signed : bool }
  | Kfloat of { bits : int }

type layout = { size : int; align : int }

type size_class = Fixed of int | Var of { worst : int }
(** How many wire bytes an atom occupies: a static size (every fixed
    encoding, and var-encoding floats: one tag byte plus the IEEE
    payload), or a value-dependent width bounded by [worst] — the
    compiler reserves [worst] and the emit advances by the actual. *)

type lenkind = Lstr | Lbin | Larr
(** The three length-header families of the self-describing formats
    (msgpack fixstr/str8.. vs bin8.. vs fixarray/array16..; CBOR major
    types 3, 2, 4).  Fixed per call site: strings use [Lstr], byte
    sequences [Lbin], element counts (arrays, sequences, options)
    [Larr]. *)

exception Var_error of string
(** Malformed variable-header input (wrong tag family, non-minimal
    width, out-of-range value).  Truncation raises
    {!Mbuf.Short_buffer} instead, exactly as the fixed readers do.
    Executors translate this to [Codec.Decode_error]. *)

type varcodec = {
  v_size : atom_kind -> size_class;
  v_float_tag : bits:int -> int;
      (** the canonical tag byte before a big-endian IEEE payload *)
  v_put_int : check:bool -> signed:bool -> Mbuf.t -> int64 -> unit;
      (** minimal-width emit; [check:false] requires the caller to have
          reserved the atom's worst case *)
  v_get_int : signed:bool -> Mbuf.reader -> int64;
      (** incremental checked parse; rejects non-minimal encodings so
          every decoder tier accepts exactly the same inputs *)
  v_put_bool : check:bool -> Mbuf.t -> bool -> unit;
  v_get_bool : Mbuf.reader -> bool;
  v_put_float : check:bool -> bits:int -> Mbuf.t -> float -> unit;
  v_get_float : bits:int -> Mbuf.reader -> float;
  v_put_len : check:bool -> Mbuf.t -> lenkind -> int -> unit;
  v_get_len : Mbuf.reader -> lenkind -> int;
      (** rejects lengths that do not fit in a 31-bit int *)
  v_const_image : atom_kind -> int64 -> string;
      (** the exact bytes [v_put_int]/[v_put_bool] would emit for a
          compile-time constant — what reservation narrowing folds into
          a fixed chunk *)
  v_len_image : lenkind -> int -> string;
}

type t = {
  name : string;
  big_endian : bool;
  atom : atom_kind -> layout;
  len_prefix : layout;  (** variable-length array count *)
  pad_unit : int;
      (** packed byte runs (strings, char/octet arrays) are padded to a
          multiple of this (XDR: 4, CDR: 1) *)
  string_nul : bool;
      (** CDR strings include the terminating NUL in the counted bytes *)
  typed_headers : bool;
      (** Mach 3 typed messages: a 4-byte type descriptor precedes every
          data item *)
  max_align : int;
  granularity : int;
      (** every layout advances the position by a multiple of this (XDR:
          4, others: 1); the plan compiler's static-position tracking
          survives loops and unions exactly at this granularity *)
  var : varcodec option;
      (** value-dependent header hooks; [None] for the fixed formats *)
}

val cdr : t
(** CORBA CDR as used by IIOP: natural sizes and alignment, big-endian
    (we always generate big-endian messages, like a SPARC sender). *)

val xdr : t
(** ONC XDR (RFC 1832): every scalar occupies a multiple of 4 bytes,
    big-endian; opaque/string data padded to 4. *)

val mach3 : t
(** Mach 3 typed messages: little-endian host order with a descriptor
    word before each item. *)

val fluke : t
(** Fluke kernel IPC: packed little-endian words, no descriptors — the
    lean format whose small messages travel in registers. *)

val msgpack : t
(** MessagePack: positive/negative fixints, uint8..64 / int8..64,
    fixstr/str8..32, bin8..32, fixarray/array16/32; multi-byte fields
    big-endian; minimal-width (canonical) forms only. *)

val cbor : t
(** CBOR (RFC 8949) with preferred serialization: 3-bit major type plus
    5-bit additional info, arguments 1/2/4/8 bytes big-endian, minimal
    width enforced on both sides. *)

val all : t list
val by_name : string -> t option

val atom_of_mint : Mint.def -> atom_kind option
(** The atom for a MINT leaf ([None] for aggregates and [Void]). *)

val canon_int : bits:int -> signed:bool -> int64 -> int64
(** Reduce a constant to its wire value at the declared width: keep the
    low [bits], then sign- or zero-extend — the same round trip a
    fixed-size store-then-load performs. *)
