(* The unmarshal plan: the decode-side mirror of Mplan.  Where an
   encode plan reads runtime values through Mplan.rv paths and writes
   wire bytes, a decode plan reads wire bytes and writes decoded values
   into numbered *slots* of the enclosing frame; a [shape] tree then
   assembles the frame's slots into one structured value.  The
   slot/frame split is what lets chunking work on the decode side:
   loads belonging to different struct fields can share one chunk (one
   bounds check, constant offsets) because each load says where its
   result goes, independent of any construction order. *)

type shape =
  | Sh_void
  | Sh_slot of int
  | Sh_struct of shape list

type ditem =
  | Dit_atom of { off : int; atom : Mplan.atom; slot : int }
  | Dit_bytes of { off : int; len : int; slot : int }
      (* small fixed byte run, copied out of the chunk *)
  | Dit_const of { off : int; atom : Mplan.atom; value : int64 }
      (* verify a constant word (message-format discriminators) *)

(* How a variable-length op learns its element count. *)
type dcount =
  | Dc_fixed of int  (* statically known; nothing on the wire *)
  | Dc_len of { min_len : int; max_len : int option; what : string }
      (* 32-bit count on the wire, checked against the type's bounds *)

type dop =
  | D_align of int
  | D_chunk of { size : int; items : ditem list; check : bool }
      (* one [need] ([check] false under a hoisted reservation), loads
         at constant offsets, one cursor advance; spans no item covers
         are skipped bytes (headers, padding) *)
  | D_get_varhead of {
      vh_kind : Encoding.atom_kind;
      vh_worst : int;
      vh_slot : int option;  (* None for constant expectations *)
      vh_expect : int64 option;  (* constant to verify (discriminator) *)
      vh_image : string option;  (* canonical bytes, for narrowing *)
      vh_what : string;
    }
      (* parse a value-dependent scalar header (self-describing
         encodings); always self-checking — the advance is data
         dependent, so it never rides a hoisted reservation *)
  | D_get_string of { max_len : int option; slot : int; view : bool }
  | D_const_str of string  (* verify a constant counted string *)
  | D_get_byteseq of { count : dcount; slot : int; view : bool }
  | D_get_atom_array of { count : dcount; atom : Mplan.atom; slot : int }
  | D_loop of { count : dcount; ensure : int option; frame : frame; slot : int }
      (* [ensure]: every iteration advances exactly that many bytes, so
         one [need count * ensure] covers the whole run *)
  | D_opt of { frame : frame; slot : int }
  | D_switch of {
      discrim_atom : Mplan.atom option;  (* None: string-keyed *)
      arms : darm list;
      default : frame option;
      slot : int;
    }
  | D_call of { sub : string; slot : int }

and darm = { d_const : Mint.const; d_case : int; d_frame : frame }
and frame = { f_nslots : int; f_ops : dop list; f_shape : shape }

type plan = {
  d_nslots : int;
  d_ops : dop list;
  d_shapes : shape list;  (* one per decoded output value, in order *)
  d_subs : (string * frame) list;
}

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp_shape ppf = function
  | Sh_void -> Format.pp_print_string ppf "()"
  | Sh_slot i -> Format.fprintf ppf "s%d" i
  | Sh_struct shapes ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
           pp_shape)
        shapes

let pp_atom = Mplan.pp_atom

let pp_item ppf = function
  | Dit_atom { off; atom; slot } ->
      Format.fprintf ppf "@[%d: s%d <- %a@]" off slot pp_atom atom
  | Dit_bytes { off; len; slot } ->
      Format.fprintf ppf "@[%d: s%d <- bytes[%d]@]" off slot len
  | Dit_const { off; atom; value } ->
      Format.fprintf ppf "@[%d: expect %a = %Ld@]" off pp_atom atom value

let pp_count ppf = function
  | Dc_fixed n -> Format.fprintf ppf "%d" n
  | Dc_len { min_len; max_len; what } ->
      Format.fprintf ppf "len(%s)[%d..%s]" what min_len
        (match max_len with None -> "" | Some m -> string_of_int m)

let rec pp_op ppf = function
  | D_align n -> Format.fprintf ppf "align %d" n
  | D_get_varhead { vh_kind; vh_worst; vh_slot; vh_expect; vh_what; _ } ->
      Format.fprintf ppf "%s <- get_varhead %a worst=%d (%s)"
        (match vh_slot with
        | Some s -> Printf.sprintf "s%d" s
        | None -> (
            match vh_expect with
            | Some v -> Printf.sprintf "expect %Ld" v
            | None -> "_"))
        Mplan.pp_kind vh_kind vh_worst vh_what
  | D_chunk { size; items; check } ->
      Format.fprintf ppf "@[<v 2>chunk size=%d%s {" size
        (if check then "" else " nocheck");
      List.iter (fun it -> Format.fprintf ppf "@,%a" pp_item it) items;
      Format.fprintf ppf "@]@,}"
  | D_get_string { max_len; slot; view } ->
      Format.fprintf ppf "s%d <- get_string%s%s" slot
        (match max_len with
        | None -> ""
        | Some m -> Printf.sprintf " max=%d" m)
        (if view then " view" else "")
  | D_const_str s -> Format.fprintf ppf "expect_str %S" s
  | D_get_byteseq { count; slot; view } ->
      Format.fprintf ppf "s%d <- get_byteseq %a%s" slot pp_count count
        (if view then " view" else "")
  | D_get_atom_array { count; atom; slot } ->
      Format.fprintf ppf "s%d <- get_atom_array %a %a" slot pp_count count
        pp_atom atom
  | D_loop { count; ensure; frame; slot } ->
      Format.fprintf ppf "@[<v 2>s%d <- for %a%s {" slot pp_count count
        (match ensure with
        | None -> ""
        | Some u -> Printf.sprintf " ensure*%d" u);
      pp_frame_body ppf frame;
      Format.fprintf ppf "@]@,}"
  | D_opt { frame; slot } ->
      Format.fprintf ppf "@[<v 2>s%d <- opt {" slot;
      pp_frame_body ppf frame;
      Format.fprintf ppf "@]@,}"
  | D_switch { discrim_atom; arms; default; slot } ->
      Format.fprintf ppf "@[<v 2>s%d <- switch%s {" slot
        (match discrim_atom with
        | Some a -> Format.asprintf " %a" pp_atom a
        | None -> " key");
      List.iter
        (fun arm ->
          Format.fprintf ppf "@,@[<v 2>case %a:" Mint.pp_const arm.d_const;
          pp_frame_body ppf arm.d_frame;
          Format.fprintf ppf "@]")
        arms;
      (match default with
      | None -> ()
      | Some frame ->
          Format.fprintf ppf "@,@[<v 2>default:";
          pp_frame_body ppf frame;
          Format.fprintf ppf "@]");
      Format.fprintf ppf "@]@,}"
  | D_call { sub; slot } -> Format.fprintf ppf "s%d <- call %s" slot sub

and pp_frame_body ppf frame =
  List.iter (fun op -> Format.fprintf ppf "@,%a" pp_op op) frame.f_ops;
  Format.fprintf ppf "@,=> %a" pp_shape frame.f_shape

let pp ppf ops =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i op ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_op ppf op)
    ops;
  Format.fprintf ppf "@]"

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>%a@,=> [%a]@]" pp plan.d_ops
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_shape)
    plan.d_shapes;
  List.iter
    (fun (name, frame) ->
      Format.fprintf ppf "@.@[<v 2>sub %s:" name;
      pp_frame_body ppf frame;
      Format.fprintf ppf "@]")
    plan.d_subs

(* ------------------------------------------------------------------ *)
(* Static size metrics (benchmark reporting)                           *)
(* ------------------------------------------------------------------ *)

let rec count_ops ops =
  List.fold_left
    (fun acc op ->
      acc
      +
      match op with
      | D_align _ | D_get_string _ | D_const_str _ | D_get_byteseq _
      | D_get_atom_array _ | D_call _ | D_get_varhead _ ->
          1
      | D_chunk { items; _ } -> 1 + List.length items
      | D_loop { frame; _ } | D_opt { frame; _ } -> 1 + count_ops frame.f_ops
      | D_switch { arms; default; _ } ->
          1
          + List.fold_left (fun a arm -> a + count_ops arm.d_frame.f_ops) 0 arms
          + (match default with None -> 0 | Some f -> count_ops f.f_ops))
    0 ops

(* Static count of bounds-check sites: checked chunks plus the
   self-checking reads of the variable-length ops (a count read and a
   payload read each perform one).  Loop and switch bodies count once —
   a static proxy, like {!count_ops}, for comparing plan shapes. *)
let rec count_checks ops =
  List.fold_left
    (fun acc op ->
      acc
      +
      match op with
      | D_align _ | D_call _ -> 0
      | D_chunk { check; _ } -> if check then 1 else 0
      | D_get_varhead _ -> 1
      | D_get_string _ | D_const_str _ -> 2
      | D_get_byteseq { count; _ } | D_get_atom_array { count; _ } -> (
          match count with Dc_fixed _ -> 1 | Dc_len _ -> 2)
      | D_loop { count; ensure; frame; _ } ->
          (match count with Dc_fixed _ -> 0 | Dc_len _ -> 1)
          + (match ensure with Some _ -> 1 | None -> 0)
          + count_checks frame.f_ops
      | D_opt { frame; _ } -> 1 + count_checks frame.f_ops
      | D_switch { arms; default; _ } ->
          1
          + List.fold_left
              (fun a arm -> a + count_checks arm.d_frame.f_ops)
              0 arms
          + (match default with None -> 0 | Some f -> count_checks f.f_ops))
    0 ops
