(** Peephole optimizer over {!Mplan} programs.

    A post-pass catching what {!Plan_compile}'s syntax-directed lowering
    misses, in the spirit of the paper's section 3.2 "optimize the
    generated code like a compiler would":

    - {b chunk coalescing}: adjacent {!Mplan.op.Chunk}s merge into one —
      the second chunk's static offsets shift by the first's size, and a
      single capacity check covers both.  On per-datum plans
      ([chunked:false]) this recovers the chunking the compiler was told
      not to do, including across nested struct boundaries;
    - {b loop fusion}: a loop whose body is a single gapless one-atom
      chunk rooted at the loop variable becomes a
      {!Mplan.op.Put_atom_array} blit;
    - {b ensure hoisting}: when every iteration of a loop advances the
      buffer by a statically bounded number of bytes, one
      {!Mplan.op.Ensure_count} reservation outside the loop replaces the
      per-chunk checks inside;
    - {b dead-op removal}: no-op alignments ([align 1] and doubled
      power-of-two alignments), empty chunks, and reservations made
      redundant by self-ensuring array ops.

    Every rewrite is byte-preserving: an optimized plan writes exactly
    the bytes of the original, for both plan consumers (the stub engine
    and the C emitter).  Capacity checks may move earlier or widen —
    [ensure] only reserves, so that is invisible on the wire. *)

type stats = {
  mutable chunks_merged : int;
  mutable aligns_removed : int;
  mutable loops_fused : int;
  mutable ensures_hoisted : int;
  mutable dead_removed : int;
  mutable heads_narrowed : int;
      (** constant variable-width headers folded into fixed chunks *)
}

val fresh_stats : unit -> stats
val rewrites : stats -> int
(** Total rewrites recorded in a {!stats}. *)

val bounded_advance_ops : Mplan.op list -> int option
(** Static worst-case bound on how far one execution of the op
    sequence advances the buffer position ([None] = unbounded, e.g. a
    dynamic-length string or a [Via_seq] loop).  Used by the
    ensure-hoisting rewrite to size loop reservations and by
    {!Plan_verify} to reject reservations smaller than the body they
    claim to cover. *)

type rewrite_set = {
  rw_coalesce : bool;
      (** adjacent-chunk merging and power-of-two alignment merging *)
  rw_fuse : bool;
      (** gapless scalar loop → {!Mplan.op.Put_atom_array}, and the
          removal of reservations the fused op makes redundant *)
  rw_hoist : bool;  (** loop reservation hoisting *)
  rw_dead : bool;  (** no-op alignments and empty chunks *)
  rw_narrow : bool;
      (** narrow constant [Put_varhead]/[D_get_varhead] reservations to
          fixed chunks of their canonical wire image, re-enabling chunk
          coalescing across them (self-describing encodings only) *)
}
(** Which rewrite classes one run of the engine may apply.  The pass
    manager ({!Pass}) registers one pass per class; composing them in
    registration order reproduces {!optimize} exactly (pinned by
    test/test_passes.ml). *)

val all_rewrites : rewrite_set

val optimize : ?stats:stats -> Mplan.op list -> Mplan.op list
(** Optimize one op sequence with every rewrite enabled.  Idempotent;
    counts rewrites into [stats] when given. *)

val optimize_with :
  rewrite_set -> ?stats:stats -> Mplan.op list -> Mplan.op list
(** {!optimize} restricted to the given rewrite classes. *)

val optimize_plan : ?stats:stats -> Plan_compile.plan -> Plan_compile.plan
(** {!optimize} applied to a plan's body and each of its marshal
    subroutines. *)

val optimize_plan_with :
  rewrite_set -> ?stats:stats -> Plan_compile.plan -> Plan_compile.plan

val optimize_dops : ?stats:stats -> Dplan.dop list -> Dplan.dop list
(** The same rewrites over unmarshal plans: chunk coalescing, alignment
    merging, dead-op removal, and loop reservation hoisting.  Decode
    hoisting is stricter than encode hoisting: [Mbuf.need] raises when
    bytes are missing, so a reservation is hoisted only when every
    iteration advances {e exactly} the same statically known number of
    bytes — an upper bound would reject well-formed messages.  All
    rewrites preserve which messages decode and to what values; on
    truncated input a merged check may surface as [Short_buffer] where
    the original plan failed a later, smaller check. *)

val optimize_dops_with :
  rewrite_set -> ?stats:stats -> Dplan.dop list -> Dplan.dop list
(** {!optimize_dops} restricted to the given rewrite classes
    ([rw_fuse] has no decode-side effect: the compiler emits
    [D_get_atom_array] directly). *)

val optimize_dplan : ?stats:stats -> Dplan.plan -> Dplan.plan
(** {!optimize_dops} applied to a decode plan's body and each of its
    unmarshal subroutines. *)

val optimize_dplan_with :
  rewrite_set -> ?stats:stats -> Dplan.plan -> Dplan.plan

(** {1 Forward-plan rewrites}

    The same engine over {!Fplan} programs, registered as the
    [forward-*] passes.  Both transforms are byte-preserving on the
    destination and accept exactly the messages the input plan accepts,
    with the same check-motion caveat as the decode rewrites: a merged
    bounds check may surface as [Short_buffer] where the original plan
    failed a later, smaller check. *)

val forward_coalesce : ?stats:stats -> Fplan.fop list -> Fplan.fop list
(** Merge adjacent {!Fplan.fop.F_run}s (the second run's moves shift by
    the first's sizes; one check per side covers both — counted under
    [chunks_merged]) and then merge contiguous [Fm_copy] / [Fm_zero]
    moves inside each run, recursing into loop and optional bodies. *)

val forward_collapse : ?stats:stats -> Fplan.fop list -> Fplan.fop list
(** Collapse a loop whose body is a single whole-stride copy run under
    exact reservations on both sides into one
    {!Fplan.fop.F_counted_blit} — [count * unit] bytes move in a single
    transfer, borrowable above the threshold (counted under
    [loops_fused]).  Runs after {!forward_coalesce}, which creates the
    single-copy bodies it matches. *)
