(* Tier-1 staging analysis for decode plans — the unmarshal twin of
   Plan_stage.

   Within a D_chunk every item loads from a distinct static offset and
   fills a distinct slot, with bounds established by the chunk's single
   capacity check, so items regroup freely: runs of 32-bit integer
   loads sharing one extension rule collapse into offset/slot arrays
   driven by a tight loop, eliminating the per-item closure dispatch.
   The closure emission lives in the stub engine. *)

(* ------------------------------------------------------------------ *)
(* Stageability                                                         *)
(* ------------------------------------------------------------------ *)

(* As on the encode side: recursion (D_call / d_subs) has no
   flat-closure form; such plans stay at tier 0. *)
let rec frame_stageable (f : Dplan.frame) = ops_stageable f.Dplan.f_ops

and ops_stageable (ops : Dplan.dop list) =
  List.for_all
    (fun (op : Dplan.dop) ->
      match op with
      | Dplan.D_call _ -> false
      | Dplan.D_loop { frame; _ } | Dplan.D_opt { frame; _ } ->
          frame_stageable frame
      | Dplan.D_switch { arms; default; _ } ->
          List.for_all
            (fun (a : Dplan.darm) -> frame_stageable a.Dplan.d_frame)
            arms
          && (match default with
             | None -> true
             | Some f -> frame_stageable f)
      | Dplan.D_align _ | Dplan.D_chunk _ | Dplan.D_get_string _
      | Dplan.D_const_str _ | Dplan.D_get_byteseq _
      | Dplan.D_get_atom_array _ | Dplan.D_get_varhead _ ->
          true)
    ops

let stageable (p : Dplan.plan) =
  p.Dplan.d_subs = [] && ops_stageable p.Dplan.d_ops

(* ------------------------------------------------------------------ *)
(* Chunk segmentation                                                   *)
(* ------------------------------------------------------------------ *)

type dseg =
  | Dseg_run of {
      offs : int array;
      slots : int array;
      bits : int;
      signed : bool;
    }
      (* a run of 4-byte integer loads sharing one extension rule:
         slot [slots.(k)] receives the word at [offs.(k)] *)
  | Dseg_item of Dplan.ditem  (* tier-0 single-item form *)

let run_candidate (it : Dplan.ditem) =
  match it with
  | Dplan.Dit_atom
      { off; atom = { Mplan.kind = Encoding.Kint { bits; signed }; size = 4; _ };
        slot }
    when bits <= 32 ->
      Some ((bits, signed), off, slot, it)
  | _ -> None

let chunk_dsegments (items : Dplan.ditem list) : dseg list =
  let cands = List.filter_map run_candidate items in
  let rest = List.filter (fun it -> run_candidate it = None) items in
  (* group by extension rule, preserving first-seen order *)
  let groups : ((int * bool) * (int * int * Dplan.ditem) list ref) list ref =
    ref []
  in
  List.iter
    (fun (key, off, slot, it) ->
      match List.find_opt (fun (k, _) -> k = key) !groups with
      | Some (_, cell) -> cell := (off, slot, it) :: !cell
      | None -> groups := !groups @ [ (key, ref [ (off, slot, it) ]) ])
    cands;
  let runs =
    List.map
      (fun ((bits, signed), cell) ->
        match !cell with
        | [ (_, _, it) ] -> Dseg_item it
        | loads ->
            let loads =
              List.sort (fun (o1, _, _) (o2, _, _) -> compare o1 o2) loads
            in
            Dseg_run
              { offs = Array.of_list (List.map (fun (o, _, _) -> o) loads);
                slots = Array.of_list (List.map (fun (_, s, _) -> s) loads);
                bits;
                signed })
      !groups
  in
  runs @ List.map (fun it -> Dseg_item it) rest
