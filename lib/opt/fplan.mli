(** The forward plan: a fused decode+encode program for gateway
    relaying — cross-chunk copy propagation across a decode plan
    ({!Dplan}) and an encode plan ({!Mplan}) for the same message
    shape.

    A gateway that re-encodes a message it just decoded normally
    materializes every field as a [Value.t] and marshals it again.
    {!Fplan_compile} walks the two plans in lockstep and pairs their
    (offset, atom) runs into direct reader→writer operations instead:

    - {b blit}: a span whose bytes are identical under both encodings
      (same sizes, same byte order, full-width integers) moves with one
      {!Mbuf.copy_at} — or is spliced by reference ({!Mbuf.transfer}
      with borrow, zero bytes touched) when it clears the borrow
      threshold;
    - {b convert}: a scalar whose representation differs (byte order,
      width, normalization) is re-read and re-written in place, still
      without touching a [Value.t];
    - {b fixup}: source-side constants are verified and skipped,
      destination-side constants/padding are regenerated — gap bytes
      are never copied from the source;
    - {b fallback}: a genuinely reshaped root keeps the decode +
      re-encode pair as an embedded {!constructor-F_materialize}.

    Executed by [Stub_forward] (lib/exec); verified by
    {!Plan_verify.check_fplan}; optimized by the [forward-*] passes in
    {!Pass}. *)

(** Element count of a variable-length forward op. *)
type fcount =
  | Fc_fixed of int  (** statically known; nothing on the wire *)
  | Fc_wire of { min_len : int; max_len : int option; what : string }
      (** 32-bit source wire count, checked against declared bounds *)

(** One move inside a fused run, offsets relative to the run's start on
    the respective side. *)
type fmove =
  | Fm_copy of { src_off : int; dst_off : int; len : int }
      (** bytes identical under both encodings *)
  | Fm_convert of {
      src_off : int;
      src_atom : Mplan.atom;
      dst_off : int;
      dst_atom : Mplan.atom;
    }  (** re-read under the source layout, re-write under the
          destination layout *)
  | Fm_check of { src_off : int; atom : Mplan.atom; value : int64 }
      (** verify a source constant (discriminators, type headers) *)
  | Fm_const of { dst_off : int; atom : Mplan.atom; value : int64 }
      (** regenerate a destination constant *)
  | Fm_zero of { dst_off : int; len : int }
      (** destination padding/gap bytes *)

type fop =
  | F_src_align of int  (** skip source padding to a power of two *)
  | F_dst_align of int  (** emit destination padding to a power of two *)
  | F_run of {
      src_size : int;
      dst_size : int;
      src_check : bool;  (** one [need src_size] covers every move *)
      dst_check : bool;  (** one [ensure dst_size] covers every move *)
      moves : fmove list;
    }  (** the fused chunk: fixed spans on both sides, one bounds check
          per side, then straight-line moves *)
  | F_blit of { len : int; src_pad : int; dst_tail : int; borrow : bool }
      (** fixed-length packed byte run split out for zero-copy:
          [src_pad] is the source pad unit to skip past, [dst_tail] the
          absolute zero tail on the destination *)
  | F_string of {
      max_len : int option;
      src_nul : bool;
      dst_nul : bool;
      src_pad : int;
      dst_pad : int;
      borrow : bool;
    }  (** counted string: length word re-emitted under destination
          conventions, payload transferred, NUL/pad regenerated *)
  | F_const_str of { s : string; src_nul : bool; src_pad : int; image : string }
      (** constant key: verified on the source side, emitted from a
          precomputed destination image *)
  | F_byteseq of {
      count : fcount;
      emit_len : bool;
      src_pad : int;
      dst_pad : int;
      borrow : bool;
    }
  | F_atom_array of {
      count : fcount;
      emit_len : bool;
      src_atom : Mplan.atom;
      dst_atom : Mplan.atom;
      dst_packed : bool;
          (** destination was an unrolled item run inside a chunk:
              store densely at the current position with one [ensure],
              no dynamic alignment or length word *)
      blit : bool;  (** element bytes identical → bulk transfer *)
      borrow : bool;
    }
  | F_counted_blit of {
      count : fcount;
      emit_len : bool;
      unit_size : int;
      borrow : bool;
    }  (** a collapsed loop whose body was one same-bytes run: transfer
          [count * unit_size] bytes in one move *)
  | F_loop of {
      count : fcount;
      emit_len : bool;
      src_ensure : int option;
          (** every iteration consumes exactly this many source bytes:
              reserve [count * u] once, interior runs check-free *)
      dst_ensure : int option;
      body : fop list;
    }
  | F_opt of { body : fop list }
      (** optional pointer: 0/1 count word verified and re-emitted *)
  | F_materialize of {
      index : int;  (** root index, for provenance (-1: whole message) *)
      dplan : Dplan.plan;
      mplan : Plan_compile.plan;
    }  (** fallback: decode this root to values, re-encode them *)

type plan = { f_ops : fop list; f_src : Encoding.t; f_dst : Encoding.t }

val provenance : fop -> string
(** The op's copy-elision class, one of ["blit"], ["borrow"],
    ["convert"], ["fixup"], ["fallback"], or a structural tag
    (["align"], ["loop"], ["opt"]) — what [dump-plan --forward]
    annotates each line with. *)

val pp_op : Format.formatter -> fop -> unit
val pp : Format.formatter -> fop list -> unit
val pp_plan : Format.formatter -> plan -> unit

val count_ops : fop list -> int
(** Total node count; embedded fallback plans count their own nodes. *)

val count_checks : fop list -> int
(** Static count of bounds-check sites across both sides. *)
