(** The optimizing unmarshal-plan compiler: decode mirror of
    {!Plan_compile}.

    Lowers (MINT, PRES, encoding) triples into {!Dplan} programs using
    the same congruence-based static position tracking (position ≡
    [aoff] mod [abase]) as the encode side, so XDR's 4-byte padding
    discipline survives across variable-length data and consecutive
    loads — including Mach typed-header skips and alignment gaps —
    coalesce into chunks with one bounds check each.  Where the
    congruence is lost (CDR strings, union arms, loop bodies) a dynamic
    {!Dplan.dop.D_align} re-aligns at runtime, exactly where hand-written
    stubs must.

    The compiled plan reads byte-for-byte the same wire positions as
    the closure-tree decoder; the differential tests in
    [test/test_decplan.ml] pin that equivalence per encoding. *)

type droot =
  | Dconst_int of int64 * Encoding.atom_kind
      (** verify a constant discriminator word (procedure number) *)
  | Dconst_str of string
      (** verify a constant counted-string key (GIOP operation name) *)
  | Dvalue of Mint.idx * Pres.t  (** decode one output value *)

val compile :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  ?start:int * int ->
  ?chunked:bool ->
  ?views:bool ->
  ?view_threshold:int ->
  droot list ->
  Dplan.plan
(** [compile ~enc ~mint ~named droots] produces the unmarshal plan for
    one message body.  [start] is the alignment congruence of the first
    byte (default [(8, 0)]).  [chunked:false] flushes after every load
    — the ablation that models a traditional per-datum stub.
    [views:true] marks string and byte-sequence loads view-eligible
    (zero-copy decode) and splits fixed byte runs of at least
    [view_threshold] (default {!Mbuf.borrow_threshold}) bytes out of
    their chunk so the engine can alias them. *)
