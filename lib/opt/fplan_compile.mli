(** Forward-plan fusion: cross-chunk copy propagation.

    [fuse] compiles a decode plan under the {e source} encoding and an
    encode plan under the {e destination} encoding for the same root
    list, then walks the two op streams in lockstep, pairing their
    (offset, atom-run) spans into the direct reader→writer program of
    {!Fplan}:

    - fixed chunks on both sides explode into their items plus the
      gaps between them (sorted by offset — wire order, which is the
      same field order under every encoding) and pair piecewise:
      same-representation spans coalesce into {!Fplan.Fm_copy} moves,
      differing scalars become {!Fplan.Fm_convert}, source constants
      are verified ({!Fplan.Fm_check}), destination constants and
      padding regenerated ({!Fplan.Fm_const}/{!Fplan.Fm_zero}) — gap
      bytes never cross sides;
    - variable-length ops pair structurally (string↔string,
      byteseq↔byteseq, scalar array↔scalar array or the unrolled item
      run the encode side kept inside a chunk, loop↔loop with bodies
      fused recursively, optional↔optional);
    - anything that does not pair — unions, recursive calls, plans with
      subroutines, reshaped fields — falls back to an
      {!Fplan.F_materialize} for that root alone.

    {b Per-root compilation.}  Each root is compiled on its own so a
    single unsupported root does not poison the rest of the message.
    Roots after the first start at the weakest alignment any complete
    root can leave behind (the encoding's granularity), which can only
    {e add} dynamic align ops relative to the whole-message plan — the
    emitted bytes are identical.  An encode root whose plan reads
    parameters beyond its own (a string with a separate length
    parameter) forces a whole-message materialize, since per-root
    decoding cannot supply foreign parameters.

    {b Soundness.}  A byte moves raw only when decode-then-reencode is
    the identity on it: full-width integers and single-byte chars with
    matching sizes and byte order.  Bools, wide chars, floats, and
    sub-width integers convert through {!Codec} read/write, reproducing
    the baseline's normalization exactly.  {!Plan_verify.check_fplan}
    re-checks the output's bounds obligations; the [forward-*] passes
    in {!Pass} then coalesce runs and collapse blit-only loops. *)

exception Unsupported of string
(** An op pair that cannot fuse; caught internally, surfaces only as an
    {!Fplan.F_materialize} fallback. *)

val set_enabled : bool -> unit
(** Globally disable fusion ([--no-forward]): [fuse] then returns a
    whole-message materialize plan — the decode-then-reencode baseline
    behind the forward-plan interface. *)

val enabled : unit -> bool

val fingerprint : unit -> string
(** Cache-key component covering the enable flag. *)

val fuse :
  ?config:Opt_config.t ->
  src:Encoding.t ->
  dst:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  ?sg:bool ->
  ?sg_threshold:int ->
  Dplan_compile.droot list ->
  Plan_compile.root list ->
  Fplan.plan
(** [fuse ~src ~dst ~mint ~named droots roots] builds the fused forward
    plan relaying a [src]-encoded message as a [dst]-encoded one.  The
    two root lists must have equal length and describe the same message
    shape (as the gateway's paired request specs do).  [sg] /
    [sg_threshold] (defaulting to the {!Mbuf} globals) gate the borrow
    paths, exactly as they do for the underlying plans.  Total: every
    unsupported shape degrades to materialization, never an error. *)
