(** The unmarshal plan: decode-side mirror of {!Mplan}.

    {!Dplan_compile} lowers a (MINT, PRES, encoding) triple into this
    IR with the same section-3 optimizations the encode side gets:

    - {b chunking}: consecutive fixed-size loads merge into a
      {!constructor-D_chunk} — one [Mbuf.need] bounds check, loads at
      constant offsets via the unchecked [Mbuf.get_*] reads, one cursor
      advance.  Spans no item covers (typed headers, alignment padding)
      are simply skipped by the advance;
    - {b memcpy specialization}: packed byte runs are bulk reads
      ({!constructor-D_get_byteseq}, {!constructor-Dit_bytes}) and
      scalar arrays decode in one tight loop behind a single
      reservation ({!constructor-D_get_atom_array});
    - {b zero-copy views}: string/byte-sequence payloads marked [view]
      may be returned as [Value.Vstring_view]/[Vbytes_view] slices of
      the receive buffer instead of copies, when scatter-gather views
      are enabled and the payload clears the borrow threshold;
    - {b inlined control flow} with {!constructor-D_call} exactly at
      the recursion points of self-referential types.

    Decoded atoms land in numbered {e slots} of the enclosing frame; a
    {!shape} tree assembles slots into the final structured value.
    This indirection decouples wire order from construction order,
    which is what lets one chunk span several struct fields. *)

type shape =
  | Sh_void
  | Sh_slot of int
  | Sh_struct of shape list

type ditem =
  | Dit_atom of { off : int; atom : Mplan.atom; slot : int }
  | Dit_bytes of { off : int; len : int; slot : int }
      (** small fixed byte run, copied out of the chunk *)
  | Dit_const of { off : int; atom : Mplan.atom; value : int64 }
      (** verify a constant word; mismatch raises [Codec.Decode_error] *)

(** How a variable-length op learns its element count. *)
type dcount =
  | Dc_fixed of int  (** statically known; nothing on the wire *)
  | Dc_len of { min_len : int; max_len : int option; what : string }
      (** 32-bit wire count, checked against the declared bounds *)

type dop =
  | D_align of int
  | D_chunk of { size : int; items : ditem list; check : bool }
      (** [check] is false when a hoisted loop reservation already
          guarantees the bytes *)
  | D_get_varhead of {
      vh_kind : Encoding.atom_kind;
      vh_worst : int;
      vh_slot : int option;  (** [None] for constant expectations *)
      vh_expect : int64 option;
          (** constant the wire value must equal (discriminators,
              constant roots); mismatch raises [Codec.Decode_error] *)
      vh_image : string option;
          (** canonical wire bytes of the expected constant — the
              narrowing pass folds this into a byte-compare chunk *)
      vh_what : string;
    }
      (** parse a value-dependent scalar header of a self-describing
          encoding; always self-checking (its advance is data
          dependent, so it can never ride a hoisted reservation) *)
  | D_get_string of { max_len : int option; slot : int; view : bool }
  | D_const_str of string
  | D_get_byteseq of { count : dcount; slot : int; view : bool }
  | D_get_atom_array of { count : dcount; atom : Mplan.atom; slot : int }
  | D_loop of { count : dcount; ensure : int option; frame : frame; slot : int }
      (** [ensure = Some u]: every iteration advances exactly [u]
          bytes, so the executor reserves [count * u] once and interior
          chunks run check-free *)
  | D_opt of { frame : frame; slot : int }
      (** optional pointer: wire count 0 or 1 *)
  | D_switch of {
      discrim_atom : Mplan.atom option;  (** [None]: string-keyed *)
      arms : darm list;
      default : frame option;
      slot : int;
    }
  | D_call of { sub : string; slot : int }

and darm = { d_const : Mint.const; d_case : int; d_frame : frame }

and frame = { f_nslots : int; f_ops : dop list; f_shape : shape }
(** One decoding scope (loop body, union arm, subroutine, or the plan's
    top level): ops fill the frame's slots, then [f_shape] assembles
    them into the frame's value. *)

type plan = {
  d_nslots : int;
  d_ops : dop list;
  d_shapes : shape list;  (** one per decoded output value, in order *)
  d_subs : (string * frame) list;
}

val pp_op : Format.formatter -> dop -> unit
val pp : Format.formatter -> dop list -> unit
val pp_plan : Format.formatter -> plan -> unit

val count_ops : dop list -> int
(** Total number of nodes — the decode analog of {!Mplan.count_ops}. *)

val count_checks : dop list -> int
(** Static count of bounds-check sites (checked chunks plus the
    self-checking variable-length reads); loop bodies count once. *)
