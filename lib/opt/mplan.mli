(** The marshal plan: Flick's optimization decisions as a small typed
    program over an abstract message buffer.

    The plan compiler ({!Plan_compile}) lowers a (MINT, PRES, encoding)
    triple into this IR, applying the paper's section-3 optimizations:

    - {b marshal buffer management}: consecutive fixed-size data merge
      into a {!constructor-Chunk} with one capacity check and static
      offsets (the paper's "chunk" with pointer-plus-constant-offset
      addressing); arrays of fixed-size elements get one
      {!constructor-Ensure_count} covering the whole run;
    - {b efficient copying}: packed byte runs become blits
      ({!constructor-Put_string}, {!constructor-Put_byteseq},
      {!constructor-It_bytes} inside chunks — the memcpy optimization);
      arrays of scalars become a single tight loop
      ({!constructor-Put_atom_array}) instead of per-element calls;
    - {b efficient control flow}: the tree is fully inlined except at
      {!constructor-Call} nodes, which appear exactly at the recursion
      points of self-referential types;
    - {b demultiplexing}: {!constructor-Switch} carries the information
      back ends need to build C [switch] dispatch (including the
      word-chunked comparison of string discriminators).

    Two consumers interpret plans: the C back ends print them as stub
    bodies (CAST statements), and {!Stub_opt} executes them directly
    over runtime values, which is how the benchmarks measure exactly the
    code shapes the compiler decided on. *)

(** How an array-like value is presented in C, i.e. how generated code
    obtains its length and its elements. *)
type via =
  | Via_seq of { len_field : string; buf_field : string }
      (** counted sequence struct *)
  | Via_string  (** NUL-terminated [char *]; length via [strlen] *)
  | Via_fixed of int  (** fixed-size array *)
  | Via_opt  (** nullable pointer: length 0 or 1 *)

type atom = { kind : Encoding.atom_kind; size : int; align : int }

(** A path from the stub's parameters to a value, mirrored by the C
    emitter (as an lvalue expression) and by the stub engine (as
    navigation over runtime values). *)
type rv =
  | Rparam of { index : int; name : string; deref : bool }
  | Rfield of { base : rv; index : int; member : string }
  | Rvar of int  (** a loop's element variable *)
  | Rarm of { base : rv; case : int; member : string; union_field : string }
  | Ropt of rv  (** payload of a non-null optional pointer *)
  | Rdiscrim of { base : rv; member : string }
      (** the discriminator value of a union *)

type item =
  | It_atom of { off : int; atom : atom; src : rv }
  | It_bytes of { off : int; len : int; pad : int; src : rv }
      (** fixed-length packed byte run — memcpy *)
  | It_const of { off : int; atom : atom; value : int64 }
      (** constant word (discriminators, Mach type descriptors) *)

(** What a variable-width header emits: a runtime scalar or a
    compile-time constant (union discriminators, constant roots). *)
type vh_src = Vh_value of rv | Vh_const of int64

type op =
  | Align of int  (** dynamic alignment to a power of two *)
  | Chunk of { size : int; align : int; items : item list; check : bool }
      (** one capacity check ([check] false inside pre-ensured loops),
          zero-filled span, stores at static offsets, single advance *)
  | Put_varhead of {
      vh_kind : Encoding.atom_kind;
      vh_worst : int;
          (** bytes reserved; the emit advances by the actual width *)
      vh_check : bool;
          (** false only under a covering worst-case reservation *)
      vh_src : vh_src;
      vh_image : string option;
          (** canonical wire bytes when [vh_src] is a constant — the
              narrowing pass folds this into a fixed chunk *)
    }
      (** value-dependent scalar emit for a self-describing encoding:
          reserve [vh_worst], write the minimal-width form *)
  | Ensure_count of { arr : rv; via : via; unit_size : int }
      (** reserve length * unit once for a whole array *)
  | Put_const_str of { s : string; nul : bool; pad : int }
      (** constant counted string (operation-name discriminators) *)
  | Put_string of {
      src : rv;
      nul : bool;
      pad : int;
      len_src : rv option;
      borrow : bool;
          (** payload may be spliced by reference when scatter-gather is
              on and the runtime length clears the borrow threshold *)
    }
  | Put_byteseq of { arr : rv; via : via; pad : int; borrow : bool }
  | Put_atom_array of { arr : rv; via : via; atom : atom; with_len : bool }
      (** never borrowable: scalar arrays need a per-element byte-order
          transform, so the copy is also the swap *)
  | Put_blit of { src : rv; len : int; pad : int }
      (** a fixed-length packed byte run large enough that it was split
          out of its chunk so the engine can borrow it by reference
          (zero-copy); falls back to a copy below the runtime
          threshold *)
  | Put_len of { arr : rv; via : via }
  | Loop of { arr : rv; via : via; var : int; body : op list }
  | Switch of {
      u : rv;
      discrim_atom : atom option;  (** [None] for string-keyed unions *)
      arms : arm list;
      default : (string * op list) option;
      union_field : string;
      discrim_field : string;
    }
  | Call of string * rv  (** named marshal routine (recursive types) *)

and arm = {
  a_const : Mint.const;
  a_case : int;  (** index into the MINT union's cases *)
  a_member : string;  (** C member carrying this arm's data *)
  a_body : op list;
}

val pp_atom : Format.formatter -> atom -> unit
val pp_kind : Format.formatter -> Encoding.atom_kind -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> op list -> unit
val pp_rv : Format.formatter -> rv -> unit

val count_ops : op list -> int
(** Total number of nodes, a rough proxy for generated code size. *)

val count_checks : op list -> int
(** Static count of capacity-check sites (checked chunks, explicit
    reservations, and the self-ensuring variable-length ops); loop
    bodies count once.  The encode analog of {!Dplan.count_checks}. *)
