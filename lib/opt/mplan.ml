type via =
  | Via_seq of { len_field : string; buf_field : string }
  | Via_string
  | Via_fixed of int
  | Via_opt

type atom = { kind : Encoding.atom_kind; size : int; align : int }

type rv =
  | Rparam of { index : int; name : string; deref : bool }
  | Rfield of { base : rv; index : int; member : string }
  | Rvar of int
  | Rarm of { base : rv; case : int; member : string; union_field : string }
  | Ropt of rv
  | Rdiscrim of { base : rv; member : string }

type item =
  | It_atom of { off : int; atom : atom; src : rv }
  | It_bytes of { off : int; len : int; pad : int; src : rv }
  | It_const of { off : int; atom : atom; value : int64 }

type vh_src = Vh_value of rv | Vh_const of int64

type op =
  | Align of int
  | Chunk of { size : int; align : int; items : item list; check : bool }
  | Put_varhead of {
      vh_kind : Encoding.atom_kind;
      vh_worst : int;
      vh_check : bool;
      vh_src : vh_src;
      vh_image : string option;
    }
  | Ensure_count of { arr : rv; via : via; unit_size : int }
  | Put_const_str of { s : string; nul : bool; pad : int }
  | Put_string of {
      src : rv;
      nul : bool;
      pad : int;
      len_src : rv option;
      borrow : bool;
    }
  | Put_byteseq of { arr : rv; via : via; pad : int; borrow : bool }
  | Put_atom_array of { arr : rv; via : via; atom : atom; with_len : bool }
  | Put_blit of { src : rv; len : int; pad : int }
  | Put_len of { arr : rv; via : via }
  | Loop of { arr : rv; via : via; var : int; body : op list }
  | Switch of {
      u : rv;
      discrim_atom : atom option;
      arms : arm list;
      default : (string * op list) option;
      union_field : string;
      discrim_field : string;
    }
  | Call of string * rv

and arm = {
  a_const : Mint.const;
  a_case : int;
  a_member : string;
  a_body : op list;
}

let rec pp_rv ppf = function
  | Rparam { name; deref; _ } ->
      Format.fprintf ppf "%s%s" (if deref then "*" else "") name
  | Rfield { base; member; _ } -> Format.fprintf ppf "%a.%s" pp_rv base member
  | Rvar i -> Format.fprintf ppf "_e%d" i
  | Rarm { base; member; union_field; _ } ->
      Format.fprintf ppf "%a.%s.%s" pp_rv base union_field member
  | Ropt base -> Format.fprintf ppf "*%a" pp_rv base
  | Rdiscrim { base; member } -> Format.fprintf ppf "%a.%s" pp_rv base member

let pp_atom ppf (a : atom) =
  let kind =
    match a.kind with
    | Encoding.Kbool -> "bool"
    | Encoding.Kchar -> "char"
    | Encoding.Kint { bits; signed } ->
        Printf.sprintf "%sint%d" (if signed then "" else "u") bits
    | Encoding.Kfloat { bits } -> Printf.sprintf "float%d" bits
  in
  Format.fprintf ppf "%s/%d" kind a.size

let pp_item ppf = function
  | It_atom { off; atom; src } ->
      Format.fprintf ppf "@[%d: %a <- %a@]" off pp_atom atom pp_rv src
  | It_bytes { off; len; pad; src } ->
      Format.fprintf ppf "@[%d: bytes[%d+%d] <- %a@]" off len pad pp_rv src
  | It_const { off; atom; value } ->
      Format.fprintf ppf "@[%d: %a <- const %Ld@]" off pp_atom atom value

let pp_kind ppf (k : Encoding.atom_kind) =
  let s =
    match k with
    | Encoding.Kbool -> "bool"
    | Encoding.Kchar -> "char"
    | Encoding.Kint { bits; signed } ->
        Printf.sprintf "%sint%d" (if signed then "" else "u") bits
    | Encoding.Kfloat { bits } -> Printf.sprintf "float%d" bits
  in
  Format.pp_print_string ppf s

let rec pp_op ppf = function
  | Align n -> Format.fprintf ppf "align %d" n
  | Put_varhead { vh_kind; vh_worst; vh_check; vh_src; vh_image } ->
      Format.fprintf ppf "put_varhead %a worst=%d%s <- %s%s" pp_kind vh_kind
        vh_worst
        (if vh_check then "" else " nocheck")
        (match vh_src with
        | Vh_const v -> Printf.sprintf "const %Ld" v
        | Vh_value rv -> Format.asprintf "%a" pp_rv rv)
        (match vh_image with
        | None -> ""
        | Some s -> Printf.sprintf " image=%d bytes" (String.length s))
  | Chunk { size; align; items; check } ->
      Format.fprintf ppf "@[<v 2>chunk size=%d align=%d%s {" size align
        (if check then "" else " nocheck");
      List.iter (fun it -> Format.fprintf ppf "@,%a" pp_item it) items;
      Format.fprintf ppf "@]@,}"
  | Ensure_count { arr; unit_size; via = _ } ->
      Format.fprintf ppf "ensure len(%a) * %d" pp_rv arr unit_size
  | Put_const_str { s; nul; pad } ->
      Format.fprintf ppf "put_const_str %S nul=%B pad=%d" s nul pad
  | Put_string { src; nul; pad; len_src; borrow = _ } ->
      Format.fprintf ppf "put_string %a nul=%B pad=%d%s" pp_rv src nul pad
        (match len_src with None -> "" | Some _ -> " (explicit length)")
  | Put_byteseq { arr; pad; via = _; borrow = _ } ->
      Format.fprintf ppf "put_byteseq %a pad=%d" pp_rv arr pad
  | Put_atom_array { arr; atom; with_len; via = _ } ->
      Format.fprintf ppf "put_atom_array %a %a%s" pp_rv arr pp_atom atom
        (if with_len then "" else " (no len)")
  | Put_blit { src; len; pad } ->
      Format.fprintf ppf "put_blit %a len=%d pad=%d" pp_rv src len pad
  | Put_len { arr; via = _ } -> Format.fprintf ppf "put_len %a" pp_rv arr
  | Loop { arr; var; body; via = _ } ->
      Format.fprintf ppf "@[<v 2>for _e%d in %a {" var pp_rv arr;
      List.iter (fun o -> Format.fprintf ppf "@,%a" pp_op o) body;
      Format.fprintf ppf "@]@,}"
  | Switch { u; arms; default; _ } ->
      Format.fprintf ppf "@[<v 2>switch %a {" pp_rv u;
      List.iter
        (fun arm ->
          Format.fprintf ppf "@,@[<v 2>case %a (%s):" Mint.pp_const arm.a_const
            arm.a_member;
          List.iter (fun o -> Format.fprintf ppf "@,%a" pp_op o) arm.a_body;
          Format.fprintf ppf "@]")
        arms;
      (match default with
      | None -> ()
      | Some (member, body) ->
          Format.fprintf ppf "@,@[<v 2>default (%s):" member;
          List.iter (fun o -> Format.fprintf ppf "@,%a" pp_op o) body;
          Format.fprintf ppf "@]");
      Format.fprintf ppf "@]@,}"
  | Call (name, rv) -> Format.fprintf ppf "call %s(%a)" name pp_rv rv

let pp ppf ops =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i op ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_op ppf op)
    ops;
  Format.fprintf ppf "@]"

let rec count_ops ops =
  List.fold_left
    (fun acc op ->
      acc
      +
      match op with
      | Align _ | Ensure_count _ | Put_const_str _ | Put_string _
      | Put_byteseq _ | Put_atom_array _ | Put_blit _ | Put_len _ | Call _
      | Put_varhead _ ->
          1
      | Chunk { items; _ } -> 1 + List.length items
      | Loop { body; _ } -> 1 + count_ops body
      | Switch { arms; default; _ } ->
          1
          + List.fold_left (fun a arm -> a + count_ops arm.a_body) 0 arms
          + (match default with None -> 0 | Some (_, b) -> count_ops b))
    0 ops

(* Static count of capacity-check sites, the encode analog of
   Dplan.count_checks: explicit reservations plus the self-ensuring
   variable-length ops.  A static proxy for comparing plan shapes —
   loop bodies count once, whatever the runtime trip count. *)
let rec count_checks ops =
  List.fold_left
    (fun acc op ->
      acc
      +
      match op with
      | Align _ | Call _ -> 0
      | Chunk { check; _ } -> if check then 1 else 0
      | Put_varhead { vh_check; _ } -> if vh_check then 1 else 0
      | Ensure_count _ -> 1
      (* each of these reserves for itself before writing *)
      | Put_const_str _ | Put_string _ | Put_byteseq _ | Put_atom_array _
      | Put_blit _ | Put_len _ ->
          1
      | Loop { body; _ } -> count_checks body
      | Switch { arms; default; _ } ->
          List.fold_left (fun a arm -> a + count_checks arm.a_body) 0 arms
          + (match default with None -> 0 | Some (_, b) -> count_checks b))
    0 ops
