(** Compiled-plan cache.

    Plan compilation is pure in the structure of its inputs, so plans
    are memoized under a canonical fingerprint of the
    (MINT, PRES, encoding) triple plus roots and compiler options.  The
    full fingerprint string indexes the table — no hash truncation, so
    two different inputs can never alias one plan.  Fingerprints are
    recomputed at every lookup, which makes mutation through
    {!Mint.set} safe: a changed graph fingerprints differently.

    {!plan} is the front door used by the stub engine and the C back
    ends: compile once, run the {!Pass} pipeline the {!Opt_config}
    selects, and reuse the result for every structurally identical
    request.  The pass {e selection} is part of every key, so
    differently configured pipelines cache separately; the verify flag
    is not, since verification never changes a plan.  The generic cache
    type below also backs the engine's encoder/decoder closure caches,
    all visible through one stats registry (surfaced by
    [bench/main.exe planopt] and [decplan]). *)

(** {1 Generic named caches} *)

type 'a t
(** A string-keyed memo table with hit/miss counters, registered under
    a name at creation. *)

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  resets : int;
  promotions : int;
}
(** One record for every cache, encode and decode alike: [evictions]
    counts entries dropped by overflow resets since the last
    {!reset_all}; [resets] counts the overflow events themselves, so
    one mass-eviction reads differently from sustained churn;
    [promotions] counts {!promote} re-installs, which are not lookups
    and never move the hit rate.  Every cache is also re-exported
    through the {!Obs} registry as the ["cache"] probe
    ([cache.<name>.hits] and friends). *)

val hit_rate : stats -> float
(** [hits / (hits + misses)], 0. when the cache was never consulted.
    Promotions are excluded on both sides of the ratio. *)

val create : name:string -> ?max_entries:int -> unit -> 'a t
(** [max_entries] (default 512) bounds the table; on overflow the whole
    table is dropped (stub working sets are tiny; recency tracking is
    not worth its bookkeeping). *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** Return the cached value for the key, building and inserting it on a
    miss.  An exception from the builder propagates and caches
    nothing. *)

val hotness : 'a t -> string -> int ref
(** The per-key call counter driving tier promotion.  Created on first
    use; deliberately stored outside the value table so an overflow
    reset does not forget how hot a plan was — a hot plan recompiled
    after churn re-promotes immediately.  The caller owns the
    increments (typically one per stub invocation). *)

val promote : 'a t -> string -> 'a -> unit
(** Re-install a value for an already-cached key (tier promotion
    swapping in a staged closure).  Counted under [promotions] only:
    not a hit, not a miss, no effect on {!hit_rate}. *)

val cache_stats : 'a t -> stats
val all_stats : unit -> (string * stats) list
(** Stats for every cache created so far, in creation order. *)

val reset_all : unit -> unit
(** Drop all entries and zero all counters (benchmark isolation). *)

(** {1 Structural fingerprints}

    Exposed so other layers (e.g. the stub engine's decoder cache) can
    key on the same canonical serialization. *)

type fp

val fp_create :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  unit ->
  fp
(** A fingerprint seeded with the encoding and the named-presentation
    environment. *)

val fp_tag : fp -> string -> unit
(** Append a distinguishing tag (length-prefixed). *)

val fp_int : fp -> int -> unit
val fp_kind : fp -> Encoding.atom_kind -> unit

val fp_type : fp -> Mint.idx -> Pres.t -> unit
(** Append a (MINT, PRES) pair; the MINT subgraph is serialized
    depth-first with back references for cycles. *)

val fp_root : fp -> Plan_compile.root -> unit
val fp_droot : fp -> Dplan_compile.droot -> unit
val fp_contents : fp -> string

(** {1 The shared plan cache} *)

val plan :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  ?start:int * int ->
  ?unroll_limit:int ->
  ?chunked:bool ->
  ?config:Opt_config.t ->
  ?sg:bool ->
  ?sg_threshold:int ->
  Plan_compile.root list ->
  Plan_compile.plan
(** Cached, pass-optimized {!Plan_compile.compile} (same defaults).
    [config] (default {!Opt_config.default}) selects the {!Pass}
    pipeline; its selection fingerprints into the key, so
    [Opt_config.none] caches separately from the full pipeline.  The
    scatter-gather options (defaulting to the {!Mbuf} globals) are part
    of the cache key, since they change plan structure. *)

val dplan :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  ?start:int * int ->
  ?chunked:bool ->
  ?config:Opt_config.t ->
  ?views:bool ->
  ?view_threshold:int ->
  Dplan_compile.droot list ->
  Dplan.plan
(** Cached, pass-optimized {!Dplan_compile.compile} (same defaults).
    The view options are part of the cache key — a view-enabled plan
    splits large byte runs differently — as are [chunked] and the
    [config] pass selection. *)
