(* Decode-plan compiler: lowers (MINT, PRES, encoding) into Dplan, the
   unmarshal mirror of Plan_compile.  It reuses the same congruence-
   based position tracking (position ≡ aoff mod abase) so statically
   known alignment padding folds into chunk offsets and survives across
   variable-length data exactly as on the encode side; where the
   congruence is insufficient a dynamic D_align is emitted, which is
   always position-correct at runtime (conservative congruence loss is
   therefore safe — it costs chunking quality, never correctness).

   The emitted plan decodes byte-for-byte the positions the closure
   decoder (Stub_opt.build_decoder) reads — the differential qcheck
   suite in test/test_decplan.ml pins plan = closure = naive = interp
   on every encoding. *)

type droot =
  | Dconst_int of int64 * Encoding.atom_kind
  | Dconst_str of string
  | Dvalue of Mint.idx * Pres.t

type chunk_state = { mutable c_size : int; mutable c_items : Dplan.ditem list }

type st = {
  enc : Encoding.t;
  mint : Mint.t;
  named : (string * (Mint.idx * Pres.t)) list;
  chunked : bool;  (* false: flush after every load (ablation) *)
  views : bool;  (* mark string/byteseq loads as view-eligible *)
  view_thresh : int;  (* split fixed byte runs >= this out of chunks *)
  mutable ops_rev : Dplan.dop list;
  mutable chunk : chunk_state option;
  mutable abase : int;  (* position ≡ aoff (mod abase) *)
  mutable aoff : int;
  mutable next_slot : int;
  subs : (string, Dplan.frame option) Hashtbl.t;
      (* None while a subroutine is being compiled (recursion) *)
}

let round_up = Plan_compile.round_up
let atom_of st kind = Plan_compile.atom_of st.enc kind
let len_atom st = Plan_compile.len_atom st.enc

let flush st =
  match st.chunk with
  | None -> ()
  | Some c ->
      st.chunk <- None;
      if c.c_size > 0 then
        st.ops_rev <-
          Dplan.D_chunk
            { size = c.c_size; items = List.rev c.c_items; check = true }
          :: st.ops_rev

let emit st op =
  flush st;
  st.ops_rev <- op :: st.ops_rev

let advance_static st n = st.aoff <- (st.aoff + n) mod st.abase

let lose_alignment st u =
  let u = max u 1 in
  st.abase <- min st.abase u;
  if st.abase < 1 then st.abase <- 1;
  st.aoff <- 0

let align_for st a =
  if a <= 1 then 0
  else if a <= st.abase then (a - (st.aoff mod a)) mod a
  else begin
    emit st (Dplan.D_align a);
    st.abase <- a;
    st.aoff <- 0;
    0
  end

(* Simulate an alignment that the executor performs dynamically inside
   an op (e.g. before a switch discriminator): advance the congruence
   without emitting anything. *)
let sim_align st a =
  if a > 1 then
    if a <= st.abase then advance_static st ((a - (st.aoff mod a)) mod a)
    else begin
      st.abase <- a;
      st.aoff <- 0
    end

let chunk st =
  match st.chunk with
  | Some c -> c
  | None ->
      let c = { c_size = 0; c_items = [] } in
      st.chunk <- Some c;
      c

(* Append one atom-sized load (or gap, when [make] yields no item) into
   the current chunk, starting one if needed. *)
let take_atom st (atom : Mplan.atom) (make : int -> Dplan.ditem option) =
  if atom.Mplan.align > st.abase then begin
    flush st;
    ignore (align_for st atom.Mplan.align)
  end;
  let pad = align_for st atom.Mplan.align in
  let c = chunk st in
  let off = c.c_size + pad in
  (match make off with Some it -> c.c_items <- it :: c.c_items | None -> ());
  c.c_size <- off + atom.Mplan.size;
  advance_static st (pad + atom.Mplan.size);
  if not st.chunked then flush st

(* Typed headers are skipped on decode (the encode side writes a
   constant descriptor word): a pure gap in the chunk. *)
let take_header st =
  if st.enc.Encoding.typed_headers then
    take_atom st (len_atom st) (fun _ -> None)

let take_fixed_bytes st slot len =
  let padded = round_up len st.enc.Encoding.pad_unit in
  if st.views && len >= st.view_thresh then begin
    (* large packed run: split out of the chunk so the engine can hand
       out a zero-copy view instead of copying the payload *)
    emit st
      (Dplan.D_get_byteseq { count = Dplan.Dc_fixed len; slot; view = true });
    advance_static st padded
  end
  else begin
    let c = chunk st in
    let off = c.c_size in
    c.c_items <- Dplan.Dit_bytes { off; len; slot } :: c.c_items;
    c.c_size <- off + padded;
    advance_static st padded;
    if not st.chunked then flush st
  end

let after_variable st =
  flush st;
  lose_alignment st st.enc.Encoding.pad_unit

(* The 4-byte count of a variable-length run: align + read, performed
   dynamically by the executor; the alignment is also folded into the
   congruence here, and when the congruence suffices the pre-padding is
   re-emitted as a (statically no-op at most [align-1] bytes) D_align,
   mirroring Plan_compile's handling of length prefixes. *)
let take_len_prefix st =
  let a = st.enc.Encoding.len_prefix.Encoding.align in
  let pad_pre = align_for st a in
  flush st;
  if pad_pre > 0 then st.ops_rev <- Dplan.D_align a :: st.ops_rev;
  advance_static st st.enc.Encoding.len_prefix.Encoding.size

let take_const_str st s =
  let pad_pre = align_for st st.enc.Encoding.len_prefix.Encoding.align in
  flush st;
  if pad_pre > 0 then
    st.ops_rev <-
      Dplan.D_align st.enc.Encoding.len_prefix.Encoding.align :: st.ops_rev;
  let nul = st.enc.Encoding.string_nul in
  let data = String.length s + if nul then 1 else 0 in
  let padded = round_up data st.enc.Encoding.pad_unit in
  st.ops_rev <- Dplan.D_const_str s :: st.ops_rev;
  advance_static st
    (pad_pre + st.enc.Encoding.len_prefix.Encoding.size + padded)

let fresh_slot st =
  let s = st.next_slot in
  st.next_slot <- s + 1;
  s

(* Compile [build] into its own frame: fresh slot namespace and op
   stream, entry congruence [abase]/[aoff].  The caller must have
   flushed its chunk. *)
let compile_frame st ~abase ~aoff build =
  let saved_ops = st.ops_rev
  and saved_chunk = st.chunk
  and saved_base = st.abase
  and saved_off = st.aoff
  and saved_slot = st.next_slot in
  st.ops_rev <- [];
  st.chunk <- None;
  st.abase <- abase;
  st.aoff <- aoff;
  st.next_slot <- 0;
  let shape = build () in
  flush st;
  let frame =
    { Dplan.f_nslots = st.next_slot; f_ops = List.rev st.ops_rev; f_shape = shape }
  in
  st.ops_rev <- saved_ops;
  st.chunk <- saved_chunk;
  st.abase <- saved_base;
  st.aoff <- saved_off;
  st.next_slot <- saved_slot;
  frame

(* Value-dependent scalars (msgpack, CBOR) — the decode mirror of
   Plan_compile.put_var_scalar/put_var_const.  Floats keep a static
   wire image (tag byte + big-endian IEEE payload) and stay chunkable;
   everything else parses through a self-checking [D_get_varhead]. *)

let take_var_scalar st (vcc : Encoding.varcodec) kind =
  match kind with
  | Encoding.Kfloat { bits } ->
      let slot = fresh_slot st in
      take_atom st Plan_compile.u8_atom (fun off ->
          Some
            (Dplan.Dit_const
               {
                 off;
                 atom = Plan_compile.u8_atom;
                 value = Int64.of_int (vcc.Encoding.v_float_tag ~bits);
               }));
      let payload = { Mplan.kind; size = bits / 8; align = 1 } in
      take_atom st payload (fun off ->
          Some (Dplan.Dit_atom { off; atom = payload; slot }));
      slot
  | Encoding.Kbool | Encoding.Kchar | Encoding.Kint _ ->
      let slot = fresh_slot st in
      emit st
        (Dplan.D_get_varhead
           {
             vh_kind = kind;
             vh_worst = Plan_compile.vh_worst_of vcc kind;
             vh_slot = Some slot;
             vh_expect = None;
             vh_image = None;
             vh_what = "scalar";
           });
      lose_alignment st 1;
      slot

let take_var_const st (vcc : Encoding.varcodec) kind value ~what =
  emit st
    (Dplan.D_get_varhead
       {
         vh_kind = kind;
         vh_worst = Plan_compile.vh_worst_of vcc kind;
         vh_slot = None;
         vh_expect = Some value;
         vh_image = Some (vcc.Encoding.v_const_image kind value);
         vh_what = what;
       });
  lose_alignment st 1

let is_byte_elem mint elem =
  match Mint.get mint elem with
  | Mint.Char8 | Mint.Int { bits = 8; _ } -> true
  | Mint.Void | Mint.Bool | Mint.Int _ | Mint.Float _ | Mint.Array _
  | Mint.Struct _ | Mint.Union _ ->
      false

(* ------------------------------------------------------------------ *)
(* Main recursion                                                      *)
(* ------------------------------------------------------------------ *)

let rec compile_value st idx (pres : Pres.t) : Dplan.shape =
  let def = Mint.get st.mint idx in
  match (def, pres) with
  | _, Pres.Ref name ->
      compile_sub st name;
      let slot = fresh_slot st in
      emit st (Dplan.D_call { sub = name; slot });
      (* the subroutine body ends at a data-dependent position *)
      lose_alignment st st.enc.Encoding.granularity;
      Dplan.Sh_slot slot
  | Mint.Void, _ -> Dplan.Sh_void
  | (Mint.Bool | Mint.Char8 | Mint.Int _ | Mint.Float _), _ -> (
      match Encoding.atom_of_mint def with
      | Some kind -> (
          match st.enc.Encoding.var with
          | Some vcc -> Dplan.Sh_slot (take_var_scalar st vcc kind)
          | None ->
              take_header st;
              let atom = atom_of st kind in
              let slot = fresh_slot st in
              take_atom st atom (fun off ->
                  Some (Dplan.Dit_atom { off; atom; slot }));
              Dplan.Sh_slot slot)
      | None -> assert false)
  | Mint.Array { elem; min_len; max_len }, _ ->
      compile_array st ~elem ~min_len ~max_len pres
  | Mint.Struct fields, Pres.Struct arms ->
      Dplan.Sh_struct
        (List.map2
           (fun (_, fidx) (_, sub) -> compile_value st fidx sub)
           fields arms)
  | ( Mint.Union { discrim; cases; default },
      Pres.Union { arms; default_arm; _ } ) ->
      compile_union st ~discrim ~cases ~default ~arms ~default_arm
  | (Mint.Struct _ | Mint.Union _), _ ->
      invalid_arg "Dplan_compile: PRES does not match MINT"

and compile_array st ~elem ~min_len ~max_len (pres : Pres.t) =
  let enc = st.enc in
  match pres with
  | Pres.Terminated_string | Pres.Terminated_string_len _ ->
      take_header st;
      take_len_prefix st;
      let slot = fresh_slot st in
      st.ops_rev <-
        Dplan.D_get_string { max_len; slot; view = st.views } :: st.ops_rev;
      after_variable st;
      Dplan.Sh_slot slot
  | Pres.Fixed_array _ when is_byte_elem st.mint elem ->
      take_header st;
      let slot = fresh_slot st in
      take_fixed_bytes st slot min_len;
      Dplan.Sh_slot slot
  | Pres.Fixed_array sub -> (
      take_header st;
      match Encoding.atom_of_mint (Mint.get st.mint elem) with
      | Some kind ->
          let atom = atom_of st kind in
          let slot = fresh_slot st in
          emit st
            (Dplan.D_get_atom_array
               { count = Dplan.Dc_fixed min_len; atom; slot });
          lose_alignment st (min atom.Mplan.size 4);
          Dplan.Sh_slot slot
      | None -> compile_loop st (Dplan.Dc_fixed min_len) elem sub)
  | Pres.Counted_seq { elem = sub; _ } -> (
      take_header st;
      if is_byte_elem st.mint elem then begin
        take_len_prefix st;
        let slot = fresh_slot st in
        st.ops_rev <-
          Dplan.D_get_byteseq
            {
              count = Dplan.Dc_len { min_len; max_len; what = "sequence" };
              slot;
              view = st.views;
            }
          :: st.ops_rev;
        after_variable st;
        Dplan.Sh_slot slot
      end
      else
        match Encoding.atom_of_mint (Mint.get st.mint elem) with
        | Some kind ->
            let atom = atom_of st kind in
            let slot = fresh_slot st in
            emit st
              (Dplan.D_get_atom_array
                 {
                   count = Dplan.Dc_len { min_len = 0; max_len; what = "array" };
                   atom;
                   slot;
                 });
            lose_alignment st (min atom.Mplan.size 4);
            Dplan.Sh_slot slot
        | None ->
            compile_loop st
              (Dplan.Dc_len { min_len; max_len; what = "sequence" })
              elem sub)
  | Pres.Opt_ptr sub ->
      take_header st;
      flush st;
      let frame =
        compile_frame st ~abase:(max 1 enc.Encoding.granularity) ~aoff:0
          (fun () -> compile_value st elem sub)
      in
      let slot = fresh_slot st in
      emit st (Dplan.D_opt { frame; slot });
      lose_alignment st enc.Encoding.granularity;
      Dplan.Sh_slot slot
  | Pres.Direct | Pres.Enum_direct | Pres.Struct _ | Pres.Union _ | Pres.Void
  | Pres.Ref _ ->
      invalid_arg "Dplan_compile: array PRES mismatch"

and compile_loop st count elem sub =
  flush st;
  (* element positions are data dependent: only the encoding's layout
     granularity survives into and out of the body *)
  let frame =
    compile_frame st ~abase:(max 1 st.enc.Encoding.granularity) ~aoff:0
      (fun () -> compile_value st elem sub)
  in
  let slot = fresh_slot st in
  emit st (Dplan.D_loop { count; ensure = None; frame; slot });
  lose_alignment st st.enc.Encoding.granularity;
  Dplan.Sh_slot slot

and compile_union st ~discrim ~cases ~default ~arms ~default_arm =
  let enc = st.enc in
  let discrim_atom =
    match Encoding.atom_of_mint (Mint.get st.mint discrim) with
    | Some kind -> Some (atom_of st kind)
    | None -> None (* string-keyed: operation unions *)
  in
  (* wire layout per arm is [header][discriminator][payload]; on decode
     the switch op reads the discriminator itself, so the arms start at
     the post-discriminator position *)
  take_header st;
  flush st;
  (match discrim_atom with
  | Some _ when enc.Encoding.var <> None ->
      (* value-dependent discriminator: data-dependent advance *)
      lose_alignment st 1
  | Some atom ->
      sim_align st atom.Mplan.align;
      advance_static st atom.Mplan.size
  | None ->
      (* counted string key: data-dependent advance *)
      lose_alignment st enc.Encoding.pad_unit);
  let entry_base = st.abase and entry_off = st.aoff in
  let plan_arms =
    List.map2
      (fun (i, (case : Mint.case)) (_member, sub) ->
        let frame =
          compile_frame st ~abase:entry_base ~aoff:entry_off (fun () ->
              compile_value st case.Mint.c_body sub)
        in
        { Dplan.d_const = case.Mint.c_const; d_case = i; d_frame = frame })
      (List.mapi (fun i c -> (i, c)) cases)
      arms
  in
  let plan_default =
    match (default, default_arm) with
    | Some didx, Some (_member, sub) ->
        Some
          (compile_frame st ~abase:entry_base ~aoff:entry_off (fun () ->
               compile_value st didx sub))
    | None, None -> None
    | _, _ -> invalid_arg "Dplan_compile: PRES/MINT default mismatch"
  in
  let slot = fresh_slot st in
  st.ops_rev <-
    Dplan.D_switch { discrim_atom; arms = plan_arms; default = plan_default; slot }
    :: st.ops_rev;
  (* arms end at data-dependent positions *)
  lose_alignment st enc.Encoding.granularity;
  Dplan.Sh_slot slot

and compile_sub st name =
  match Hashtbl.find_opt st.subs name with
  | Some _ -> ()
  | None -> (
      match List.assoc_opt name st.named with
      | None ->
          invalid_arg ("Dplan_compile: unknown named presentation " ^ name)
      | Some (idx, pres) ->
          Hashtbl.add st.subs name None;
          (* subroutines are called at arbitrary positions *)
          let frame =
            compile_frame st ~abase:(max 1 st.enc.Encoding.granularity)
              ~aoff:0 (fun () -> compile_value st idx pres)
          in
          Hashtbl.replace st.subs name (Some frame))

let compile ~enc ~mint ~named ?(start = (8, 0)) ?(chunked = true)
    ?(views = false) ?view_threshold droots : Dplan.plan =
  let base, off = start in
  let st =
    {
      enc;
      mint;
      named;
      chunked;
      views;
      view_thresh =
        (match view_threshold with
        | Some n -> n
        | None -> Mbuf.borrow_threshold ());
      ops_rev = [];
      chunk = None;
      abase = base;
      aoff = off;
      next_slot = 0;
      subs = Hashtbl.create 4;
    }
  in
  let shapes_rev = ref [] in
  List.iter
    (fun droot ->
      match droot with
      | Dconst_int (value, kind) -> (
          match enc.Encoding.var with
          | Some vcc -> take_var_const st vcc kind value ~what:"constant"
          | None ->
              take_header st;
              let atom = atom_of st kind in
              take_atom st atom (fun off ->
                  Some (Dplan.Dit_const { off; atom; value })))
      | Dconst_str s ->
          take_header st;
          take_const_str st s
      | Dvalue (idx, pres) ->
          shapes_rev := compile_value st idx pres :: !shapes_rev)
    droots;
  flush st;
  let subs =
    Hashtbl.fold
      (fun name body acc ->
        match body with Some b -> (name, b) :: acc | None -> acc)
      st.subs []
  in
  {
    Dplan.d_nslots = st.next_slot;
    d_ops = List.rev st.ops_rev;
    d_shapes = List.rev !shapes_rev;
    d_subs = subs;
  }
