(* Structural verifier for marshal (Mplan) and unmarshal (Dplan)
   programs.

   The plan compilers and the peephole passes maintain invariants that
   no OCaml type enforces: chunk items sit at monotone, non-overlapping
   offsets inside their chunk; a chunk whose capacity check was dropped
   is only legal under a reservation that covers it; a hoisted decode
   reservation must equal the frame's exact advance (decode checks
   *raise*, so an upper bound would reject well-formed messages); loop
   variables are referenced only in scope; decode slots are written
   once and read only after being written; Call/D_call targets resolve.

   The verifier re-derives each invariant independently of the
   optimizer (e.g. it has its own exact-advance computation), so a bug
   in a rewrite cannot hide behind the same bug in its checker.  It is
   pure and raises nothing: the result is [Ok ()] or [Error e] with a
   path into the plan.  The pass manager runs it after every pass when
   FLICK_VERIFY_PLANS=1 (or Opt_config.verify) is set. *)

type error = { ev_path : string; ev_msg : string }

let error_to_string e = Printf.sprintf "%s: %s" e.ev_path e.ev_msg

exception Fail of error

let failv path fmt =
  Printf.ksprintf (fun m -> raise (Fail { ev_path = path; ev_msg = m })) fmt

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* ------------------------------------------------------------------ *)
(* Shared atom / rv checks                                              *)
(* ------------------------------------------------------------------ *)

let check_atom path (a : Mplan.atom) =
  if a.Mplan.size < 1 || a.Mplan.size > 16 then
    failv path "atom size %d out of range" a.Mplan.size;
  if not (is_pow2 a.Mplan.align) then
    failv path "atom alignment %d is not a power of two" a.Mplan.align

(* Loop variables ([Rvar]) must be bound by an enclosing [Loop]. *)
let rec check_rv path vars (rv : Mplan.rv) =
  match rv with
  | Mplan.Rparam _ -> ()
  | Mplan.Rvar v ->
      if not (List.mem v vars) then
        failv path "loop variable v%d referenced out of scope" v
  | Mplan.Rfield { base; _ }
  | Mplan.Rarm { base; _ }
  | Mplan.Ropt base
  | Mplan.Rdiscrim { base; _ } ->
      check_rv path vars base

(* ------------------------------------------------------------------ *)
(* Encode plans                                                         *)
(* ------------------------------------------------------------------ *)

(* Static chunk layout: offsets monotone (no overlapping stores), every
   item inside the chunk's span, extents consistent with atom sizes and
   blit lengths + padding. *)
let check_chunk_items path ~vars ~size items =
  let _end =
    List.fold_left
      (fun prev_end (it : Mplan.item) ->
        let off, extent =
          match it with
          | Mplan.It_atom { off; atom; src } ->
              check_atom path atom;
              check_rv path vars src;
              (off, atom.Mplan.size)
          | Mplan.It_bytes { off; len; pad; src } ->
              if len < 0 then failv path "byte run with negative length %d" len;
              if pad < 0 then failv path "byte run with negative padding %d" pad;
              check_rv path vars src;
              (off, len + pad)
          | Mplan.It_const { off; atom; _ } ->
              check_atom path atom;
              (off, atom.Mplan.size)
        in
        if off < prev_end then
          failv path
            "item at offset %d overlaps the previous item (ends at %d): \
             offsets not monotone"
            off prev_end;
        if off + extent > size then
          failv path "item [%d, %d) extends past the chunk size %d" off
            (off + extent) size;
        off + extent)
      0 items
  in
  ()

(* [covered] is true inside a loop whose bytes are pre-reserved — by an
   [Ensure_count] immediately before the [Loop] (the compiler and the
   hoisting pass both emit exactly that shape) — and propagates into
   nested loops and switch arms, mirroring [Peephole.clear_checks].
   The central store-safety invariant: a chunk that skips its own
   capacity check ([check = false]) must be covered (size-0 chunks are
   exempt: they write nothing). *)
let rec check_ops path ~subs ~covered ~vars ops =
  let check_op i prev (op : Mplan.op) =
    let path = Printf.sprintf "%s[%d]" path i in
    match op with
    | Mplan.Align a ->
        if not (is_pow2 a) then
          failv path "alignment %d is not a power of two" a
    | Mplan.Chunk { size; align; items; check } ->
        if size < 0 then failv path "chunk with negative size %d" size;
        if align < 1 then failv path "chunk alignment %d < 1" align;
        if (not check) && (not covered) && size > 0 then
          failv path
            "chunk skips its capacity check outside any covering \
             reservation (dropped ensure)";
        check_chunk_items path ~vars ~size items
    | Mplan.Put_varhead { vh_kind = _; vh_worst; vh_check; vh_src; vh_image }
      ->
        if vh_worst < 1 || vh_worst > 9 then
          failv path "variable header worst-case %d out of range" vh_worst;
        if (not vh_check) && not covered then
          failv path
            "variable header skips its worst-case reservation outside any \
             covering reservation (dropped ensure)";
        (match vh_src with
        | Mplan.Vh_value rv -> (
            check_rv path vars rv;
            match vh_image with
            | Some _ ->
                failv path
                  "variable header carries a constant image but a runtime \
                   source"
            | None -> ())
        | Mplan.Vh_const _ -> ());
        (match vh_image with
        | Some img ->
            let n = String.length img in
            if n < 1 || n > vh_worst then
              failv path
                "variable header image of %d bytes exceeds its worst-case \
                 reservation of %d"
                n vh_worst
        | None -> ())
    | Mplan.Ensure_count { arr; via = _; unit_size } ->
        if unit_size <= 0 then
          failv path "reservation with non-positive unit size %d" unit_size;
        check_rv path vars arr
    | Mplan.Put_const_str { pad; _ } ->
        if pad < 0 then failv path "negative padding %d" pad
    | Mplan.Put_string { src; len_src; pad; _ } ->
        if pad < 0 then failv path "negative padding unit %d" pad;
        check_rv path vars src;
        Option.iter (check_rv path vars) len_src
    | Mplan.Put_byteseq { arr; pad; _ } ->
        if pad < 0 then failv path "negative padding unit %d" pad;
        check_rv path vars arr
    | Mplan.Put_atom_array { arr; atom; _ } ->
        check_atom path atom;
        check_rv path vars arr
    | Mplan.Put_blit { src; len; pad } ->
        if len < 0 then failv path "blit with negative length %d" len;
        if pad < 0 then failv path "blit with negative padding %d" pad;
        check_rv path vars src
    | Mplan.Put_len { arr; _ } -> check_rv path vars arr
    | Mplan.Loop { arr; via = _; var; body } ->
        check_rv path vars arr;
        if List.mem var vars then
          failv path "loop variable v%d shadows an enclosing loop's" var;
        let covered =
          covered
          ||
          (* pre-reserved iff the loop directly follows its reservation —
             and the reservation must be big enough: whenever the body's
             per-iteration advance has a static bound, the unit size must
             meet it (a smaller unit is exactly the under-reservation
             that lets unchecked stores run off the chunk).  An unbounded
             body is accepted: the compiler sizes those from the type's
             [max_len] bound, which the plan no longer carries. *)
          match prev with
          | Some (Mplan.Ensure_count { arr = e_arr; unit_size; _ })
            when e_arr = arr ->
              (match Peephole.bounded_advance_ops body with
              | Some u when u > unit_size ->
                  failv path
                    "loop reservation of %d bytes/element under-covers a \
                     worst-case per-element advance of %d"
                    unit_size u
              | _ -> ());
              true
          | _ -> false
        in
        check_ops (path ^ ".loop") ~subs ~covered ~vars:(var :: vars) body
    | Mplan.Switch { u; arms; default; _ } ->
        check_rv path vars u;
        List.iter
          (fun (a : Mplan.arm) ->
            check_ops
              (Printf.sprintf "%s.arm(%s)" path a.Mplan.a_member)
              ~subs ~covered ~vars a.Mplan.a_body)
          arms;
        (match default with
        | None -> ()
        | Some (m, b) ->
            check_ops
              (Printf.sprintf "%s.default(%s)" path m)
              ~subs ~covered ~vars b)
    | Mplan.Call (name, rv) ->
        if not (List.mem name subs) then
          failv path "call to undefined marshal subroutine %S" name;
        check_rv path vars rv
  in
  ignore
    (List.fold_left
       (fun (i, prev) op ->
         check_op i prev op;
         (i + 1, Some op))
       (0, None) ops)

let check_plan (plan : Plan_compile.plan) =
  let subs = List.map fst plan.Plan_compile.p_subs in
  try
    check_ops "ops" ~subs ~covered:false ~vars:[] plan.Plan_compile.p_ops;
    List.iter
      (fun (name, ops) ->
        check_ops
          (Printf.sprintf "subs(%s)" name)
          ~subs ~covered:false ~vars:[] ops)
      plan.Plan_compile.p_subs;
    Ok ()
  with Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Decode plans                                                         *)
(* ------------------------------------------------------------------ *)

(* Independent re-derivation of the decode hoisting bound: the exact
   number of bytes one run of the ops consumes, or None when it is data
   dependent.  Must agree with a [D_loop]'s [ensure] annotation. *)
let rec d_exact_advance_op (op : Dplan.dop) : int option =
  match op with
  | Dplan.D_align a -> if a <= 1 then Some 0 else None
  | Dplan.D_chunk { size; _ } -> Some size
  | Dplan.D_loop { count = Dplan.Dc_fixed n; frame; _ } ->
      Option.map (fun u -> n * u) (d_exact_advance frame.Dplan.f_ops)
  | Dplan.D_get_atom_array { count = Dplan.Dc_fixed n; atom; _ }
    when atom.Mplan.align <= 1 ->
      Some (n * atom.Mplan.size)
  | _ -> None

and d_exact_advance ops =
  List.fold_left
    (fun acc op ->
      match (acc, d_exact_advance_op op) with
      | Some a, Some b -> Some (a + b)
      | _, _ -> None)
    (Some 0) ops

let check_dcount path (c : Dplan.dcount) =
  match c with
  | Dplan.Dc_fixed n ->
      if n < 0 then failv path "fixed count %d is negative" n
  | Dplan.Dc_len { min_len; max_len; _ } -> (
      if min_len < 0 then failv path "negative minimum length %d" min_len;
      match max_len with
      | Some m when m < min_len ->
          failv path "length bounds inverted: min %d > max %d" min_len m
      | _ -> ())

(* One decoding scope.  Slot discipline: every op (and chunk item)
   writes its slot exactly once, slots lie inside the frame, and the
   shape tree reads only slots some op has written. *)
let rec check_frame path ~subs ~covered (f : Dplan.frame) =
  let written = Hashtbl.create 8 in
  let write path slot =
    if slot < 0 || slot >= f.Dplan.f_nslots then
      failv path "slot %d outside the frame's %d slots" slot f.Dplan.f_nslots;
    if Hashtbl.mem written slot then
      failv path "slot %d written twice" slot;
    Hashtbl.add written slot ()
  in
  let check_op i (op : Dplan.dop) =
    let path = Printf.sprintf "%s[%d]" path i in
    match op with
    | Dplan.D_align a ->
        if a >= 2 && not (is_pow2 a) then
          failv path "alignment %d is not a power of two" a
    | Dplan.D_chunk { size; items; check } ->
        if size < 0 then failv path "chunk with negative size %d" size;
        if (not check) && (not covered) && size > 0 then
          failv path
            "chunk skips its bounds check outside any hoisted reservation \
             (dropped need)";
        let _end =
          List.fold_left
            (fun prev_end (it : Dplan.ditem) ->
              let off, extent =
                match it with
                | Dplan.Dit_atom { off; atom; slot } ->
                    check_atom path atom;
                    write path slot;
                    (off, atom.Mplan.size)
                | Dplan.Dit_bytes { off; len; slot } ->
                    if len < 0 then
                      failv path "byte run with negative length %d" len;
                    write path slot;
                    (off, len)
                | Dplan.Dit_const { off; atom; _ } ->
                    check_atom path atom;
                    (off, atom.Mplan.size)
              in
              if off < prev_end then
                failv path
                  "item at offset %d overlaps the previous item (ends at \
                   %d): offsets not monotone"
                  off prev_end;
              if off + extent > size then
                failv path "item [%d, %d) extends past the chunk size %d" off
                  (off + extent) size;
              off + extent)
            0 items
        in
        ()
    | Dplan.D_get_varhead { vh_worst; vh_slot; vh_expect; vh_image; _ } -> (
        if vh_worst < 1 || vh_worst > 9 then
          failv path "variable header worst-case %d out of range" vh_worst;
        (match (vh_slot, vh_expect) with
        | Some slot, None -> write path slot
        | None, Some _ -> ()
        | Some _, Some _ ->
            failv path
              "variable header both writes a slot and expects a constant"
        | None, None ->
            failv path
              "variable header neither writes a slot nor expects a constant");
        match vh_image with
        | Some img ->
            if vh_expect = None then
              failv path
                "variable header carries a constant image but no expected \
                 value";
            let n = String.length img in
            if n < 1 || n > vh_worst then
              failv path
                "variable header image of %d bytes exceeds its worst-case \
                 reservation of %d"
                n vh_worst
        | None -> ())
    | Dplan.D_get_string { max_len; slot; _ } ->
        (match max_len with
        | Some m when m < 0 -> failv path "negative maximum length %d" m
        | _ -> ());
        write path slot
    | Dplan.D_const_str _ -> ()
    | Dplan.D_get_byteseq { count; slot; _ } ->
        check_dcount path count;
        write path slot
    | Dplan.D_get_atom_array { count; atom; slot } ->
        check_dcount path count;
        check_atom path atom;
        (* the array op reads elements at a fixed stride of [size]
           bytes with at most one leading alignment; a size that is not
           a multiple of the alignment would need per-element
           re-alignment the op does not perform *)
        if atom.Mplan.align > 1 && atom.Mplan.size mod atom.Mplan.align <> 0
        then
          failv path
            "atom array stride %d is not a multiple of its alignment %d"
            atom.Mplan.size atom.Mplan.align;
        write path slot
    | Dplan.D_loop { count; ensure; frame; slot } ->
        check_dcount path count;
        write path slot;
        (match ensure with
        | None -> check_frame (path ^ ".loop") ~subs ~covered frame
        | Some u ->
            if u <= 0 then
              failv path "hoisted reservation of %d bytes is not positive" u;
            (match d_exact_advance frame.Dplan.f_ops with
            | Some v when v = u -> ()
            | Some v ->
                failv path
                  "hoisted reservation says %d bytes/iteration but the \
                   frame consumes exactly %d"
                  u v
            | None ->
                failv path
                  "hoisted reservation of %d bytes over a frame whose \
                   advance is data dependent"
                  u);
            check_frame (path ^ ".loop") ~subs ~covered:true frame)
    | Dplan.D_opt { frame; slot } ->
        write path slot;
        check_frame (path ^ ".opt") ~subs ~covered:false frame
    | Dplan.D_switch { arms; default; slot; _ } ->
        write path slot;
        List.iter
          (fun (a : Dplan.darm) ->
            if a.Dplan.d_case < 0 then
              failv path "arm with negative case index %d" a.Dplan.d_case;
            check_frame
              (Printf.sprintf "%s.arm(%d)" path a.Dplan.d_case)
              ~subs ~covered:false a.Dplan.d_frame)
          arms;
        Option.iter
          (check_frame (path ^ ".default") ~subs ~covered:false)
          default
    | Dplan.D_call { sub; slot } ->
        if not (List.mem sub subs) then
          failv path "call to undefined unmarshal subroutine %S" sub;
        write path slot
  in
  List.iteri check_op f.Dplan.f_ops;
  let rec check_shape path (sh : Dplan.shape) =
    match sh with
    | Dplan.Sh_void -> ()
    | Dplan.Sh_slot s ->
        if s < 0 || s >= f.Dplan.f_nslots then
          failv path "shape reads slot %d outside the frame's %d slots" s
            f.Dplan.f_nslots;
        if not (Hashtbl.mem written s) then
          failv path "shape reads slot %d that no op writes" s
    | Dplan.Sh_struct subs_sh -> List.iter (check_shape path) subs_sh
  in
  check_shape (path ^ ".shape") f.Dplan.f_shape

let check_dplan (plan : Dplan.plan) =
  let subs = List.map fst plan.Dplan.d_subs in
  try
    check_frame "ops" ~subs ~covered:false
      {
        Dplan.f_nslots = plan.Dplan.d_nslots;
        f_ops = plan.Dplan.d_ops;
        f_shape = Dplan.Sh_struct plan.Dplan.d_shapes;
      };
    List.iter
      (fun (name, frame) ->
        check_frame (Printf.sprintf "subs(%s)" name) ~subs ~covered:false
          frame)
      plan.Dplan.d_subs;
    Ok ()
  with Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Forward plans                                                        *)
(* ------------------------------------------------------------------ *)

(* Forward-plan obligations, re-derived independently of Fplan_compile
   and the forward-* rewrites:

   - inside a run, every source-touching move lies at monotone,
     non-overlapping offsets within [0, src_size), and likewise every
     destination-touching move within [0, dst_size) — so one [need] and
     one [ensure] really do cover every blit;
   - a run that skips a check on a side it touches is only legal under
     a loop reservation covering that side;
   - a loop's source reservation must equal the body's *exact* static
     source advance (decode checks raise — the encode analogy of an
     upper bound would reject well-formed messages), while the
     destination reservation only needs to bound the body's static
     advance from above ([ensure] merely reserves capacity). *)

let check_fcount path (c : Fplan.fcount) =
  match c with
  | Fplan.Fc_fixed n ->
      if n < 0 then failv path "fixed count %d is negative" n
  | Fplan.Fc_wire { min_len; max_len; _ } -> (
      if min_len < 0 then failv path "negative minimum length %d" min_len;
      match max_len with
      | Some m when m < min_len ->
          failv path "length bounds inverted: min %d > max %d" min_len m
      | _ -> ())

let check_fmoves path ~src_size ~dst_size moves =
  let _ =
    List.fold_left
      (fun (src_end, dst_end) (m : Fplan.fmove) ->
        let src_span, dst_span =
          match m with
          | Fplan.Fm_copy { src_off; dst_off; len } ->
              if len <= 0 then
                failv path "copy with non-positive length %d" len;
              (Some (src_off, len), Some (dst_off, len))
          | Fplan.Fm_convert { src_off; src_atom; dst_off; dst_atom } ->
              check_atom path src_atom;
              check_atom path dst_atom;
              if src_atom.Mplan.kind <> dst_atom.Mplan.kind then
                failv path "convert changes the atom kind";
              ( Some (src_off, src_atom.Mplan.size),
                Some (dst_off, dst_atom.Mplan.size) )
          | Fplan.Fm_check { src_off; atom; _ } ->
              check_atom path atom;
              (Some (src_off, atom.Mplan.size), None)
          | Fplan.Fm_const { dst_off; atom; _ } ->
              check_atom path atom;
              (None, Some (dst_off, atom.Mplan.size))
          | Fplan.Fm_zero { dst_off; len } ->
              if len <= 0 then
                failv path "zero fill with non-positive length %d" len;
              (None, Some (dst_off, len))
        in
        let advance side side_end size = function
          | None -> side_end
          | Some (off, len) ->
              if off < side_end then
                failv path
                  "%s move at offset %d overlaps the previous move (ends at \
                   %d): offsets not monotone"
                  side off side_end;
              if off + len > size then
                failv path "%s move [%d, %d) extends past the run size %d"
                  side off (off + len) size;
              off + len
        in
        ( advance "source" src_end src_size src_span,
          advance "destination" dst_end dst_size dst_span ))
      (0, 0) moves
  in
  ()

(* Exact static source consumption of a forward op sequence — the
   forward twin of [d_exact_advance], admitting only the op kinds a
   reservation-carrying loop body can contain. *)
let rec f_src_exact_op (op : Fplan.fop) : int option =
  match op with
  | Fplan.F_src_align a -> if a <= 1 then Some 0 else None
  | Fplan.F_dst_align _ -> Some 0 (* destination-only: no source bytes *)
  | Fplan.F_run { src_size; _ } -> Some src_size
  | Fplan.F_loop { count = Fplan.Fc_fixed n; body; _ } ->
      Option.map (fun u -> n * u) (f_src_exact body)
  | _ -> None

and f_src_exact ops =
  List.fold_left
    (fun acc op ->
      match (acc, f_src_exact_op op) with
      | Some a, Some b -> Some (a + b)
      | _, _ -> None)
    (Some 0) ops

(* Static upper bound on destination bytes one run of the body emits. *)
let rec f_dst_bound_op (op : Fplan.fop) : int option =
  match op with
  | Fplan.F_dst_align a -> if is_pow2 a then Some (a - 1) else None
  | Fplan.F_src_align _ -> Some 0
  | Fplan.F_run { dst_size; _ } -> Some dst_size
  | Fplan.F_loop { count = Fplan.Fc_fixed n; body; _ } ->
      Option.map (fun u -> n * u) (f_dst_bound body)
  | _ -> None

and f_dst_bound ops =
  List.fold_left
    (fun acc op ->
      match (acc, f_dst_bound_op op) with
      | Some a, Some b -> Some (a + b)
      | _, _ -> None)
    (Some 0) ops

let rec check_fops path ~covered_src ~covered_dst ops =
  List.iteri
    (fun i (op : Fplan.fop) ->
      let path = Printf.sprintf "%s[%d]" path i in
      match op with
      | Fplan.F_src_align a | Fplan.F_dst_align a ->
          if a >= 2 && not (is_pow2 a) then
            failv path "alignment %d is not a power of two" a
      | Fplan.F_run { src_size; dst_size; src_check; dst_check; moves } ->
          if src_size < 0 then
            failv path "run with negative source size %d" src_size;
          if dst_size < 0 then
            failv path "run with negative destination size %d" dst_size;
          if (not src_check) && (not covered_src) && src_size > 0 then
            failv path
              "run skips its source bounds check outside any loop \
               reservation (dropped need)";
          if (not dst_check) && (not covered_dst) && dst_size > 0 then
            failv path
              "run skips its destination capacity check outside any loop \
               reservation (dropped ensure)";
          check_fmoves path ~src_size ~dst_size moves
      | Fplan.F_blit { len; src_pad; dst_tail; _ } ->
          if len < 0 then failv path "blit with negative length %d" len;
          if src_pad < 1 then
            failv path "blit source pad unit %d < 1" src_pad;
          if dst_tail < 0 then
            failv path "blit with negative destination tail %d" dst_tail
      | Fplan.F_string { max_len; src_pad; dst_pad; _ } ->
          (match max_len with
          | Some m when m < 0 -> failv path "negative maximum length %d" m
          | _ -> ());
          if src_pad < 1 then failv path "source pad unit %d < 1" src_pad;
          if dst_pad < 1 then failv path "destination pad unit %d < 1" dst_pad
      | Fplan.F_const_str { s; src_pad; image; _ } ->
          if src_pad < 1 then failv path "source pad unit %d < 1" src_pad;
          if String.length image < 4 + String.length s then
            failv path
              "constant image of %d bytes cannot hold the length word plus \
               %d payload bytes"
              (String.length image) (String.length s)
      | Fplan.F_byteseq { count; src_pad; dst_pad; _ } ->
          check_fcount path count;
          if src_pad < 1 then failv path "source pad unit %d < 1" src_pad;
          if dst_pad < 1 then failv path "destination pad unit %d < 1" dst_pad
      | Fplan.F_atom_array
          { count; src_atom; dst_atom; dst_packed; emit_len; blit; _ } ->
          check_fcount path count;
          check_atom path src_atom;
          check_atom path dst_atom;
          if src_atom.Mplan.kind <> dst_atom.Mplan.kind then
            failv path "scalar array changes the atom kind";
          if blit && src_atom.Mplan.size <> dst_atom.Mplan.size then
            failv path "blitted scalar array with differing atom sizes %d/%d"
              src_atom.Mplan.size dst_atom.Mplan.size;
          if dst_packed && emit_len then
            failv path
              "packed destination run cannot also emit a length word";
          if
            src_atom.Mplan.align > 1
            && src_atom.Mplan.size mod src_atom.Mplan.align <> 0
          then
            failv path
              "atom array stride %d is not a multiple of its alignment %d"
              src_atom.Mplan.size src_atom.Mplan.align
      | Fplan.F_counted_blit { count; unit_size; _ } ->
          check_fcount path count;
          if unit_size <= 0 then
            failv path "counted blit with non-positive unit size %d" unit_size
      | Fplan.F_loop { count; src_ensure; dst_ensure; body; _ } ->
          check_fcount path count;
          (match src_ensure with
          | None -> ()
          | Some u -> (
              if u <= 0 then
                failv path "source reservation of %d bytes is not positive" u;
              match f_src_exact body with
              | Some v when v = u -> ()
              | Some v ->
                  failv path
                    "source reservation says %d bytes/iteration but the body \
                     consumes exactly %d"
                    u v
              | None ->
                  failv path
                    "source reservation of %d bytes over a body whose \
                     advance is data dependent"
                    u));
          (match dst_ensure with
          | None -> ()
          | Some u -> (
              if u <= 0 then
                failv path
                  "destination reservation of %d bytes is not positive" u;
              match f_dst_bound body with
              | Some v when v > u ->
                  failv path
                    "destination reservation of %d bytes/element \
                     under-covers a worst-case per-element advance of %d"
                    u v
              | _ -> ()));
          check_fops (path ^ ".loop")
            ~covered_src:(covered_src || src_ensure <> None)
            ~covered_dst:(covered_dst || dst_ensure <> None)
            body
      | Fplan.F_opt { body } ->
          check_fops (path ^ ".opt") ~covered_src:false ~covered_dst:false
            body
      | Fplan.F_materialize { dplan; mplan; _ } -> (
          (match check_dplan dplan with
          | Ok () -> ()
          | Error e ->
              failv path "embedded decode plan: %s" (error_to_string e));
          match check_plan mplan with
          | Ok () -> ()
          | Error e ->
              failv path "embedded encode plan: %s" (error_to_string e)))
    ops

let check_fplan (plan : Fplan.plan) =
  try
    check_fops "fwd" ~covered_src:false ~covered_dst:false plan.Fplan.f_ops;
    Ok ()
  with Fail e -> Error e
