type atom_kind =
  | Kbool
  | Kchar
  | Kint of { bits : int; signed : bool }
  | Kfloat of { bits : int }

type layout = { size : int; align : int }

type t = {
  name : string;
  big_endian : bool;
  atom : atom_kind -> layout;
  len_prefix : layout;
  pad_unit : int;
  string_nul : bool;
  typed_headers : bool;
  max_align : int;
  granularity : int;
}

let natural = function
  | Kbool -> { size = 1; align = 1 }
  | Kchar -> { size = 1; align = 1 }
  | Kint { bits; signed = _ } ->
      let n = bits / 8 in
      { size = n; align = n }
  | Kfloat { bits } ->
      let n = bits / 8 in
      { size = n; align = n }

(* XDR: every scalar occupies a 4-byte multiple; nothing needs more than
   4-byte alignment. *)
let xdr_layout = function
  | Kbool | Kchar -> { size = 4; align = 4 }
  | Kint { bits = 64; _ } | Kfloat { bits = 64 } -> { size = 8; align = 4 }
  | Kint _ | Kfloat _ -> { size = 4; align = 4 }

let cdr =
  {
    name = "cdr";
    big_endian = true;
    atom = natural;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 1;
    string_nul = true;
    typed_headers = false;
    max_align = 8;
    granularity = 1;
  }

let xdr =
  {
    name = "xdr";
    big_endian = true;
    atom = xdr_layout;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 4;
    string_nul = false;
    typed_headers = false;
    max_align = 4;
    granularity = 4;
  }

let mach3 =
  {
    name = "mach3";
    big_endian = false;
    atom = natural;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 4;
    string_nul = false;
    typed_headers = true;
    max_align = 8;
    granularity = 1;
  }

let fluke =
  {
    name = "fluke";
    big_endian = false;
    atom = natural;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 1;
    string_nul = false;
    typed_headers = false;
    max_align = 8;
    granularity = 1;
  }

let all = [ cdr; xdr; mach3; fluke ]
let by_name n = List.find_opt (fun e -> e.name = n) all

let atom_of_mint (def : Mint.def) =
  match def with
  | Mint.Bool -> Some Kbool
  | Mint.Char8 -> Some Kchar
  | Mint.Int { bits; signed } -> Some (Kint { bits; signed })
  | Mint.Float { bits } -> Some (Kfloat { bits })
  | Mint.Void | Mint.Array _ | Mint.Struct _ | Mint.Union _ -> None
