type atom_kind =
  | Kbool
  | Kchar
  | Kint of { bits : int; signed : bool }
  | Kfloat of { bits : int }

type layout = { size : int; align : int }

(* A self-describing format (msgpack, CBOR) sizes a scalar by its
   *value*: the compiler can only reserve the worst case and let the
   emit advance by the actual width.  [Fixed] atoms keep the static
   story (chunks, blits) intact. *)
type size_class = Fixed of int | Var of { worst : int }

(* Which length-header family a count belongs to.  The three families
   differ on the wire (msgpack fixstr vs bin8 vs fixarray; CBOR major
   types 3/2/4), so every call site fixes its kind statically. *)
type lenkind = Lstr | Lbin | Larr

exception Var_error of string

type varcodec = {
  v_size : atom_kind -> size_class;
  v_float_tag : bits:int -> int;
      (** the canonical one-byte tag preceding a big-endian IEEE payload
          — floats are the one var scalar whose wire size is static *)
  v_put_int : check:bool -> signed:bool -> Mbuf.t -> int64 -> unit;
  v_get_int : signed:bool -> Mbuf.reader -> int64;
  v_put_bool : check:bool -> Mbuf.t -> bool -> unit;
  v_get_bool : Mbuf.reader -> bool;
  v_put_float : check:bool -> bits:int -> Mbuf.t -> float -> unit;
  v_get_float : bits:int -> Mbuf.reader -> float;
  v_put_len : check:bool -> Mbuf.t -> lenkind -> int -> unit;
  v_get_len : Mbuf.reader -> lenkind -> int;
  v_const_image : atom_kind -> int64 -> string;
  v_len_image : lenkind -> int -> string;
}

type t = {
  name : string;
  big_endian : bool;
  atom : atom_kind -> layout;
  len_prefix : layout;
  pad_unit : int;
  string_nul : bool;
  typed_headers : bool;
  max_align : int;
  granularity : int;
  var : varcodec option;
}

let natural = function
  | Kbool -> { size = 1; align = 1 }
  | Kchar -> { size = 1; align = 1 }
  | Kint { bits; signed = _ } ->
      let n = bits / 8 in
      { size = n; align = n }
  | Kfloat { bits } ->
      let n = bits / 8 in
      { size = n; align = n }

(* XDR: every scalar occupies a 4-byte multiple; nothing needs more than
   4-byte alignment. *)
let xdr_layout = function
  | Kbool | Kchar -> { size = 4; align = 4 }
  | Kint { bits = 64; _ } | Kfloat { bits = 64 } -> { size = 8; align = 4 }
  | Kint _ | Kfloat _ -> { size = 4; align = 4 }

let cdr =
  {
    name = "cdr";
    big_endian = true;
    atom = natural;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 1;
    string_nul = true;
    typed_headers = false;
    max_align = 8;
    granularity = 1;
    var = None;
  }

let xdr =
  {
    name = "xdr";
    big_endian = true;
    atom = xdr_layout;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 4;
    string_nul = false;
    typed_headers = false;
    max_align = 4;
    granularity = 4;
    var = None;
  }

let mach3 =
  {
    name = "mach3";
    big_endian = false;
    atom = natural;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 4;
    string_nul = false;
    typed_headers = true;
    max_align = 8;
    granularity = 1;
    var = None;
  }

let fluke =
  {
    name = "fluke";
    big_endian = false;
    atom = natural;
    len_prefix = { size = 4; align = 4 };
    pad_unit = 1;
    string_nul = false;
    typed_headers = false;
    max_align = 8;
    granularity = 1;
    var = None;
  }

(* ------------------------------------------------------------------ *)
(* Variable-header codecs                                               *)
(* ------------------------------------------------------------------ *)

let verr fmt = Printf.ksprintf (fun m -> raise (Var_error m)) fmt

(* canonicalize a constant to the wire semantics of its declared width:
   keep the low [bits], then sign- or zero-extend (what a fixed-size
   encoding's store-then-load round trip does) *)
let canon_int ~bits ~signed v =
  if bits >= 64 then v
  else
    let shift = 64 - bits in
    let low = Int64.shift_right_logical (Int64.shift_left v shift) shift in
    if signed then Int64.shift_right (Int64.shift_left v shift) shift else low

let u_le a b = Int64.unsigned_compare a b <= 0
let u_ge a b = Int64.unsigned_compare a b >= 0

(* big-endian image of the low [n] bytes of [v] *)
let be_bytes n v =
  String.init n (fun i ->
      Char.chr
        (Int64.to_int
           (Int64.logand (Int64.shift_right_logical v (8 * (n - 1 - i))) 0xFFL)))

let worst_of = function
  | Kbool -> Var { worst = 1 }
  | Kchar -> Var { worst = 2 }
  | Kint { bits = 8; _ } -> Var { worst = 2 }
  | Kint { bits = 16; _ } -> Var { worst = 3 }
  | Kint { bits = 32; _ } -> Var { worst = 5 }
  | Kint _ -> Var { worst = 9 }
  | Kfloat { bits } -> Fixed (1 + (bits / 8))

let put_image ~check b s =
  let n = String.length s in
  if check then Mbuf.ensure b n;
  Mbuf.set_string b 0 s 0 n;
  Mbuf.advance b n

(* read the [width]-byte big-endian payload that follows a one-byte tag,
   zero-extended; checks tag+payload are in bounds *)
let head_payload r width =
  Mbuf.need r (1 + width);
  let rec go acc i =
    if i = width then acc
    else
      go
        (Int64.logor (Int64.shift_left acc 8)
           (Int64.of_int (Mbuf.get_u8 r (1 + i))))
        (i + 1)
  in
  go 0L 0

let sext width v =
  let s = 64 - (8 * width) in
  Int64.shift_right (Int64.shift_left v s) s

(* ---------------------------- msgpack ----------------------------- *)

let mp_uint_image v =
  if u_le v 0x7fL then String.make 1 (Char.chr (Int64.to_int v))
  else if u_le v 0xffL then "\xcc" ^ be_bytes 1 v
  else if u_le v 0xffffL then "\xcd" ^ be_bytes 2 v
  else if u_le v 0xffff_ffffL then "\xce" ^ be_bytes 4 v
  else "\xcf" ^ be_bytes 8 v

let mp_int_image ~signed v =
  if (not signed) || Int64.compare v 0L >= 0 then mp_uint_image v
  else if Int64.compare v (-32L) >= 0 then be_bytes 1 v
  else if Int64.compare v (-128L) >= 0 then "\xd0" ^ be_bytes 1 v
  else if Int64.compare v (-32768L) >= 0 then "\xd1" ^ be_bytes 2 v
  else if Int64.compare v (-2147483648L) >= 0 then "\xd2" ^ be_bytes 4 v
  else "\xd3" ^ be_bytes 8 v

let mp_bool_image b = if b then "\xc3" else "\xc2"

let mp_len_image kind n =
  let v = Int64.of_int n in
  match kind with
  | Lstr ->
      if n <= 31 then String.make 1 (Char.chr (0xa0 lor n))
      else if n <= 0xff then "\xd9" ^ be_bytes 1 v
      else if n <= 0xffff then "\xda" ^ be_bytes 2 v
      else "\xdb" ^ be_bytes 4 v
  | Lbin ->
      if n <= 0xff then "\xc4" ^ be_bytes 1 v
      else if n <= 0xffff then "\xc5" ^ be_bytes 2 v
      else "\xc6" ^ be_bytes 4 v
  | Larr ->
      if n <= 15 then String.make 1 (Char.chr (0x90 lor n))
      else if n <= 0xffff then "\xdc" ^ be_bytes 2 v
      else "\xdd" ^ be_bytes 4 v

let mp_get_int ~signed r =
  Mbuf.need r 1;
  let t = Mbuf.get_u8 r 0 in
  let fin width v =
    Mbuf.skip r (1 + width);
    v
  in
  if t <= 0x7f then (
    Mbuf.skip r 1;
    Int64.of_int t)
  else if t >= 0xe0 then (
    if not signed then verr "msgpack: negative integer for unsigned field";
    Mbuf.skip r 1;
    Int64.of_int (t - 256))
  else
    match t with
    | 0xcc ->
        let v = head_payload r 1 in
        if not (u_ge v 0x80L) then verr "msgpack: non-minimal uint8";
        fin 1 v
    | 0xcd ->
        let v = head_payload r 2 in
        if not (u_ge v 0x100L) then verr "msgpack: non-minimal uint16";
        fin 2 v
    | 0xce ->
        let v = head_payload r 4 in
        if not (u_ge v 0x10000L) then verr "msgpack: non-minimal uint32";
        fin 4 v
    | 0xcf ->
        let v = head_payload r 8 in
        if not (u_ge v 0x1_0000_0000L) then verr "msgpack: non-minimal uint64";
        if signed && Int64.compare v 0L < 0 then
          verr "msgpack: integer out of range";
        fin 8 v
    | 0xd0 ->
        if not signed then verr "msgpack: negative integer for unsigned field";
        let v = sext 1 (head_payload r 1) in
        if Int64.compare v (-33L) > 0 then verr "msgpack: non-minimal int8";
        fin 1 v
    | 0xd1 ->
        if not signed then verr "msgpack: negative integer for unsigned field";
        let v = sext 2 (head_payload r 2) in
        if Int64.compare v (-129L) > 0 then verr "msgpack: non-minimal int16";
        fin 2 v
    | 0xd2 ->
        if not signed then verr "msgpack: negative integer for unsigned field";
        let v = sext 4 (head_payload r 4) in
        if Int64.compare v (-32769L) > 0 then verr "msgpack: non-minimal int32";
        fin 4 v
    | 0xd3 ->
        if not signed then verr "msgpack: negative integer for unsigned field";
        let v = head_payload r 8 in
        if Int64.compare v (-2147483649L) > 0 then
          verr "msgpack: non-minimal int64";
        fin 8 v
    | _ -> verr "msgpack: expected integer, got tag 0x%02x" t

let mp_get_bool r =
  Mbuf.need r 1;
  match Mbuf.get_u8 r 0 with
  | 0xc2 ->
      Mbuf.skip r 1;
      false
  | 0xc3 ->
      Mbuf.skip r 1;
      true
  | t -> verr "msgpack: expected bool, got tag 0x%02x" t

let mp_get_len r kind =
  Mbuf.need r 1;
  let t = Mbuf.get_u8 r 0 in
  let fin width n64 =
    if Int64.compare n64 0x7fff_ffffL > 0 then
      verr "msgpack: length %Ld out of range" n64;
    Mbuf.skip r (1 + width);
    Int64.to_int n64
  in
  match kind with
  | Lstr -> (
      if t land 0xe0 = 0xa0 then (
        Mbuf.skip r 1;
        t land 0x1f)
      else
        match t with
        | 0xd9 ->
            let n = head_payload r 1 in
            if not (u_ge n 32L) then verr "msgpack: non-minimal str8 length";
            fin 1 n
        | 0xda ->
            let n = head_payload r 2 in
            if not (u_ge n 0x100L) then verr "msgpack: non-minimal str16 length";
            fin 2 n
        | 0xdb ->
            let n = head_payload r 4 in
            if not (u_ge n 0x10000L) then
              verr "msgpack: non-minimal str32 length";
            fin 4 n
        | _ -> verr "msgpack: expected string, got tag 0x%02x" t)
  | Lbin -> (
      match t with
      | 0xc4 -> fin 1 (head_payload r 1)
      | 0xc5 ->
          let n = head_payload r 2 in
          if not (u_ge n 0x100L) then verr "msgpack: non-minimal bin16 length";
          fin 2 n
      | 0xc6 ->
          let n = head_payload r 4 in
          if not (u_ge n 0x10000L) then verr "msgpack: non-minimal bin32 length";
          fin 4 n
      | _ -> verr "msgpack: expected binary, got tag 0x%02x" t)
  | Larr -> (
      if t land 0xf0 = 0x90 then (
        Mbuf.skip r 1;
        t land 0x0f)
      else
        match t with
        | 0xdc ->
            let n = head_payload r 2 in
            if not (u_ge n 16L) then verr "msgpack: non-minimal array16 length";
            fin 2 n
        | 0xdd ->
            let n = head_payload r 4 in
            if not (u_ge n 0x10000L) then
              verr "msgpack: non-minimal array32 length";
            fin 4 n
        | _ -> verr "msgpack: expected array, got tag 0x%02x" t)

(* ----------------------------- CBOR ------------------------------- *)

(* RFC 8949 preferred (minimal-width) heads: 3-bit major type, 5-bit
   additional info, then a 1/2/4/8-byte big-endian argument. *)
let cbor_head major n =
  let mt = major lsl 5 in
  if u_le n 23L then String.make 1 (Char.chr (mt lor Int64.to_int n))
  else if u_le n 0xffL then String.make 1 (Char.chr (mt lor 24)) ^ be_bytes 1 n
  else if u_le n 0xffffL then String.make 1 (Char.chr (mt lor 25)) ^ be_bytes 2 n
  else if u_le n 0xffff_ffffL then
    String.make 1 (Char.chr (mt lor 26)) ^ be_bytes 4 n
  else String.make 1 (Char.chr (mt lor 27)) ^ be_bytes 8 n

let cbor_int_image ~signed v =
  if (not signed) || Int64.compare v 0L >= 0 then cbor_head 0 v
  else cbor_head 1 (Int64.lognot v)

let cbor_bool_image b = if b then "\xf5" else "\xf4"

let cbor_len_image kind n =
  let major = match kind with Lbin -> 2 | Lstr -> 3 | Larr -> 4 in
  cbor_head major (Int64.of_int n)

(* parse one head: returns (major, argument) with the cursor advanced;
   rejects non-minimal arguments and indefinite lengths *)
let cbor_get_head r =
  Mbuf.need r 1;
  let t = Mbuf.get_u8 r 0 in
  let major = t lsr 5 and info = t land 0x1f in
  if info <= 23 then (
    Mbuf.skip r 1;
    (major, Int64.of_int info))
  else
    let width, floor =
      match info with
      | 24 -> (1, 24L)
      | 25 -> (2, 0x100L)
      | 26 -> (4, 0x10000L)
      | 27 -> (8, 0x1_0000_0000L)
      | _ -> verr "cbor: malformed head 0x%02x" t
    in
    let n = head_payload r width in
    if not (u_ge n floor) then
      verr "cbor: non-minimal argument in head 0x%02x" t;
    Mbuf.skip r (1 + width);
    (major, n)

let cbor_get_int ~signed r =
  match cbor_get_head r with
  | 0, n ->
      if signed && Int64.compare n 0L < 0 then
        verr "cbor: integer out of range";
      n
  | 1, n ->
      if not signed then verr "cbor: negative integer for unsigned field";
      if Int64.compare n 0L < 0 then verr "cbor: integer out of range";
      Int64.lognot n
  | major, _ -> verr "cbor: expected integer, got major type %d" major

let cbor_get_bool r =
  Mbuf.need r 1;
  match Mbuf.get_u8 r 0 with
  | 0xf4 ->
      Mbuf.skip r 1;
      false
  | 0xf5 ->
      Mbuf.skip r 1;
      true
  | t -> verr "cbor: expected bool, got tag 0x%02x" t

let cbor_get_len r kind =
  let want = match kind with Lbin -> 2 | Lstr -> 3 | Larr -> 4 in
  match cbor_get_head r with
  | major, n when major = want ->
      if Int64.compare n 0x7fff_ffffL > 0 then
        verr "cbor: length %Ld out of range" n;
      Int64.to_int n
  | major, _ ->
      verr "cbor: expected major type %d, got %d" want major

(* ------------------------- shared plumbing ------------------------ *)

let mk_varcodec ~int_image ~bool_image ~len_image ~get_int ~get_bool ~get_len
    ~float_tag =
  let const_image kind v =
    match kind with
    | Kbool -> bool_image (Int64.compare v 0L <> 0)
    | Kchar -> int_image ~signed:false (Int64.logand v 0xffL)
    | Kint { bits; signed } -> int_image ~signed (canon_int ~bits ~signed v)
    | Kfloat _ -> invalid_arg "Encoding: float constants have no var image"
  in
  let put_float ~check ~bits b f =
    let n = bits / 8 in
    if check then Mbuf.ensure b (1 + n);
    Mbuf.set_u8 b 0 (float_tag ~bits);
    if bits = 32 then Mbuf.set_f32_be b 1 f else Mbuf.set_f64_be b 1 f;
    Mbuf.advance b (1 + n)
  in
  let get_float ~bits r =
    let n = bits / 8 in
    Mbuf.need r 1;
    let t = Mbuf.get_u8 r 0 in
    if t <> float_tag ~bits then
      verr "expected %d-bit float tag 0x%02x, got 0x%02x" bits
        (float_tag ~bits) t;
    Mbuf.need r (1 + n);
    let f = if bits = 32 then Mbuf.get_f32_be r 1 else Mbuf.get_f64_be r 1 in
    Mbuf.skip r (1 + n);
    f
  in
  {
    v_size = worst_of;
    v_float_tag = float_tag;
    v_put_int =
      (fun ~check ~signed b v -> put_image ~check b (int_image ~signed v));
    v_get_int = get_int;
    v_put_bool = (fun ~check b v -> put_image ~check b (bool_image v));
    v_get_bool = get_bool;
    v_put_float = (fun ~check ~bits b f -> put_float ~check ~bits b f);
    v_get_float = (fun ~bits r -> get_float ~bits r);
    v_put_len = (fun ~check b kind n -> put_image ~check b (len_image kind n));
    v_get_len = (fun r kind -> get_len r kind);
    v_const_image = const_image;
    v_len_image = len_image;
  }

let msgpack_codec =
  mk_varcodec ~int_image:mp_int_image ~bool_image:mp_bool_image
    ~len_image:mp_len_image ~get_int:mp_get_int ~get_bool:mp_get_bool
    ~get_len:mp_get_len
    ~float_tag:(fun ~bits -> if bits = 32 then 0xca else 0xcb)

let cbor_codec =
  mk_varcodec ~int_image:cbor_int_image ~bool_image:cbor_bool_image
    ~len_image:cbor_len_image ~get_int:cbor_get_int ~get_bool:cbor_get_bool
    ~get_len:cbor_get_len
    ~float_tag:(fun ~bits -> if bits = 32 then 0xfa else 0xfb)

(* Both self-describing encodings are byte-granular: every alignment
   field is 1, so the plan compilers' congruence machinery is inert
   (no pads, no Align ops).  [len_prefix.size] is the worst-case length
   head, used only for conservative reservations. *)
let selfdesc name var =
  {
    name;
    big_endian = true;
    atom = (fun k -> { size = (natural k).size; align = 1 });
    len_prefix = { size = 5; align = 1 };
    pad_unit = 1;
    string_nul = false;
    typed_headers = false;
    max_align = 1;
    granularity = 1;
    var = Some var;
  }

let msgpack = selfdesc "msgpack" msgpack_codec
let cbor = selfdesc "cbor" cbor_codec

let all = [ cdr; xdr; mach3; fluke; msgpack; cbor ]
let by_name n = List.find_opt (fun e -> e.name = n) all

let atom_of_mint (def : Mint.def) =
  match def with
  | Mint.Bool -> Some Kbool
  | Mint.Char8 -> Some Kchar
  | Mint.Int { bits; signed } -> Some (Kint { bits; signed })
  | Mint.Float { bits } -> Some (Kfloat { bits })
  | Mint.Void | Mint.Array _ | Mint.Struct _ | Mint.Union _ -> None
