(* The forward plan: a fused decode+encode program for gateway
   relaying.  See fplan.mli. *)

type fcount =
  | Fc_fixed of int
  | Fc_wire of { min_len : int; max_len : int option; what : string }

type fmove =
  | Fm_copy of { src_off : int; dst_off : int; len : int }
  | Fm_convert of {
      src_off : int;
      src_atom : Mplan.atom;
      dst_off : int;
      dst_atom : Mplan.atom;
    }
  | Fm_check of { src_off : int; atom : Mplan.atom; value : int64 }
  | Fm_const of { dst_off : int; atom : Mplan.atom; value : int64 }
  | Fm_zero of { dst_off : int; len : int }

type fop =
  | F_src_align of int
  | F_dst_align of int
  | F_run of {
      src_size : int;
      dst_size : int;
      src_check : bool;
      dst_check : bool;
      moves : fmove list;
    }
  | F_blit of { len : int; src_pad : int; dst_tail : int; borrow : bool }
  | F_string of {
      max_len : int option;
      src_nul : bool;
      dst_nul : bool;
      src_pad : int;
      dst_pad : int;
      borrow : bool;
    }
  | F_const_str of { s : string; src_nul : bool; src_pad : int; image : string }
  | F_byteseq of {
      count : fcount;
      emit_len : bool;
      src_pad : int;
      dst_pad : int;
      borrow : bool;
    }
  | F_atom_array of {
      count : fcount;
      emit_len : bool;
      src_atom : Mplan.atom;
      dst_atom : Mplan.atom;
      dst_packed : bool;
      blit : bool;
      borrow : bool;
    }
  | F_counted_blit of {
      count : fcount;
      emit_len : bool;
      unit_size : int;
      borrow : bool;
    }
  | F_loop of {
      count : fcount;
      emit_len : bool;
      src_ensure : int option;
      dst_ensure : int option;
      body : fop list;
    }
  | F_opt of { body : fop list }
  | F_materialize of {
      index : int;
      dplan : Dplan.plan;
      mplan : Plan_compile.plan;
    }

type plan = {
  f_ops : fop list;
  f_src : Encoding.t;
  f_dst : Encoding.t;
}

(* -- provenance ------------------------------------------------------ *)

let provenance = function
  | F_src_align _ | F_dst_align _ -> "align"
  | F_run { moves; _ } ->
      let rec classify conv data = function
        | [] -> if conv then "convert" else if data then "blit" else "fixup"
        | Fm_convert _ :: rest -> classify true data rest
        | Fm_copy _ :: rest -> classify conv true rest
        | _ :: rest -> classify conv data rest
      in
      classify false false moves
  | F_blit { borrow; _ } -> if borrow then "borrow" else "blit"
  | F_string { borrow; _ } -> if borrow then "borrow" else "blit"
  | F_const_str _ -> "fixup"
  | F_byteseq { borrow; _ } -> if borrow then "borrow" else "blit"
  | F_atom_array { blit; borrow; _ } ->
      if not blit then "convert" else if borrow then "borrow" else "blit"
  | F_counted_blit { borrow; _ } -> if borrow then "borrow" else "blit"
  | F_loop _ -> "loop"
  | F_opt _ -> "opt"
  | F_materialize _ -> "fallback"

(* -- pretty printer -------------------------------------------------- *)

let pp_count ppf = function
  | Fc_fixed n -> Format.fprintf ppf "%d" n
  | Fc_wire { min_len; max_len; what } ->
      Format.fprintf ppf "wire(%s %d..%s)" what min_len
        (match max_len with Some m -> string_of_int m | None -> "inf")

let pp_move ppf = function
  | Fm_copy { src_off; dst_off; len } ->
      Format.fprintf ppf "@[copy src@@%d -> dst@@%d len=%d@]" src_off dst_off
        len
  | Fm_convert { src_off; src_atom; dst_off; dst_atom } ->
      Format.fprintf ppf "@[convert src@@%d %a -> dst@@%d %a@]" src_off
        Mplan.pp_atom src_atom dst_off Mplan.pp_atom dst_atom
  | Fm_check { src_off; atom; value } ->
      Format.fprintf ppf "@[check src@@%d %a = %Ld@]" src_off Mplan.pp_atom
        atom value
  | Fm_const { dst_off; atom; value } ->
      Format.fprintf ppf "@[const dst@@%d %a <- %Ld@]" dst_off Mplan.pp_atom
        atom value
  | Fm_zero { dst_off; len } ->
      Format.fprintf ppf "@[zero dst@@%d len=%d@]" dst_off len

let rec pp_op ppf op =
  let tag = provenance op in
  match op with
  | F_src_align n -> Format.fprintf ppf "src_align %d" n
  | F_dst_align n -> Format.fprintf ppf "dst_align %d" n
  | F_run { src_size; dst_size; src_check; dst_check; moves } ->
      Format.fprintf ppf "@[<v 2>run src=%d%s dst=%d%s {  # %s" src_size
        (if src_check then "" else " nocheck")
        dst_size
        (if dst_check then "" else " nocheck")
        tag;
      List.iter (fun m -> Format.fprintf ppf "@,%a" pp_move m) moves;
      Format.fprintf ppf "@]@,}"
  | F_blit { len; src_pad; dst_tail; borrow = _ } ->
      Format.fprintf ppf "blit len=%d src_pad=%d dst_tail=%d  # %s" len
        src_pad dst_tail tag
  | F_string { max_len; src_nul; dst_nul; src_pad; dst_pad; borrow = _ } ->
      Format.fprintf ppf
        "string max=%s nul=%B->%B pad=%d->%d  # %s"
        (match max_len with Some m -> string_of_int m | None -> "inf")
        src_nul dst_nul src_pad dst_pad tag
  | F_const_str { s; src_nul; src_pad; image } ->
      Format.fprintf ppf "const_str %S nul=%B pad=%d image=%dB  # %s" s
        src_nul src_pad (String.length image) tag
  | F_byteseq { count; emit_len; src_pad; dst_pad; borrow = _ } ->
      Format.fprintf ppf "byteseq count=%a%s pad=%d->%d  # %s" pp_count count
        (if emit_len then " emit_len" else "")
        src_pad dst_pad tag
  | F_atom_array
      { count; emit_len; src_atom; dst_atom; dst_packed; blit; borrow = _ } ->
      Format.fprintf ppf "atom_array count=%a%s%s %a -> %a %s  # %s" pp_count
        count
        (if emit_len then " emit_len" else "")
        (if dst_packed then " packed" else "")
        Mplan.pp_atom src_atom Mplan.pp_atom dst_atom
        (if blit then "(blit)" else "(convert)")
        tag
  | F_counted_blit { count; emit_len; unit_size; borrow = _ } ->
      Format.fprintf ppf "counted_blit count=%a%s unit=%d  # %s" pp_count
        count
        (if emit_len then " emit_len" else "")
        unit_size tag
  | F_loop { count; emit_len; src_ensure; dst_ensure; body } ->
      let pp_ens ppf = function
        | Some u -> Format.fprintf ppf "%d" u
        | None -> Format.fprintf ppf "-"
      in
      Format.fprintf ppf
        "@[<v 2>loop count=%a%s ensure=%a->%a {" pp_count count
        (if emit_len then " emit_len" else "")
        pp_ens src_ensure pp_ens dst_ensure;
      List.iter (fun o -> Format.fprintf ppf "@,%a" pp_op o) body;
      Format.fprintf ppf "@]@,}"
  | F_opt { body } ->
      Format.fprintf ppf "@[<v 2>opt {";
      List.iter (fun o -> Format.fprintf ppf "@,%a" pp_op o) body;
      Format.fprintf ppf "@]@,}"
  | F_materialize { index; dplan; mplan } ->
      Format.fprintf ppf
        "materialize root#%d (decode %d ops, re-encode %d ops)  # %s" index
        (Dplan.count_ops dplan.Dplan.d_ops)
        (Mplan.count_ops mplan.Plan_compile.p_ops)
        tag

let pp ppf ops =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i op ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_op ppf op)
    ops;
  Format.fprintf ppf "@]"

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>forward %s -> %s@,%a@]" p.f_src.Encoding.name
    p.f_dst.Encoding.name pp p.f_ops

(* -- sizes ----------------------------------------------------------- *)

let rec op_nodes = function
  | F_loop { body; _ } | F_opt { body } ->
      1 + List.fold_left (fun a o -> a + op_nodes o) 0 body
  | F_materialize { dplan; mplan; _ } ->
      1
      + Dplan.count_ops dplan.Dplan.d_ops
      + Mplan.count_ops mplan.Plan_compile.p_ops
  | _ -> 1

let count_ops ops = List.fold_left (fun a o -> a + op_nodes o) 0 ops

(* Check sites: a run counts its source need and destination ensure
   separately; the self-checking variable ops count one each side;
   loop bodies count once (their interior runs are usually check-free
   under a hoisted reservation). *)
let rec op_checks = function
  | F_run { src_check; dst_check; _ } ->
      (if src_check then 1 else 0) + if dst_check then 1 else 0
  | F_blit _ | F_string _ | F_const_str _ | F_byteseq _ | F_atom_array _
  | F_counted_blit _ ->
      2
  | F_loop { src_ensure; dst_ensure; body; _ } ->
      (if src_ensure <> None then 1 else 0)
      + (if dst_ensure <> None then 1 else 0)
      + List.fold_left (fun a o -> a + op_checks o) 1 body
  | F_opt { body } ->
      List.fold_left (fun a o -> a + op_checks o) 1 body
  | F_materialize { dplan; mplan; _ } ->
      Dplan.count_checks dplan.Dplan.d_ops
      + Mplan.count_checks mplan.Plan_compile.p_ops
  | F_src_align _ | F_dst_align _ -> 0

let count_checks ops = List.fold_left (fun a o -> a + op_checks o) 0 ops
