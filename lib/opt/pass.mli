(** The instrumented pass manager over plan programs.

    A pass is a named, byte-preserving transform over an encode
    ({!Plan_compile.plan}) or decode ({!Dplan.plan}) program.
    {!run} executes the passes an {!Opt_config.t} selects, in
    registration order, instrumenting each with wall time, node and
    bounds-check counts before/after, and — when the config says so —
    the {!Plan_verify} structural verifier.

    The registered pipelines split the {!Peephole} monolith into its
    rewrite classes; running all of them reproduces
    {!Peephole.optimize_plan} / {!Peephole.optimize_dplan} output
    exactly (pinned by test/test_passes.ml), so the default pipeline is
    byte-for-byte the historical optimizer, now observable pass by
    pass. *)

type trace = {
  tr_side : string;  (** "encode" or "decode" *)
  tr_pass : string;
  tr_round : int;  (** fixpoint round, 1-based *)
  tr_nodes_before : int;
  tr_nodes_after : int;
  tr_checks_before : int;
  tr_checks_after : int;
  tr_wall_ns : float;
  tr_verified : bool;  (** the verifier ran (and passed) after this pass *)
}

type 'p pass = {
  p_name : string;
  p_transform : ?stats:Peephole.stats -> 'p -> 'p;
}

(** Instrumentation hooks for one program kind. *)
type 'p side = {
  s_name : string;
  s_nodes : 'p -> int;
  s_checks : 'p -> int;
  s_verify : 'p -> (unit, Plan_verify.error) result;
}

exception
  Verify_failed of { side : string; pass : string; error : Plan_verify.error }
(** Raised by {!run} when verification is on and a pass (or the
    compiler itself, reported as pass ["<compile>"]) breaks a plan
    invariant. *)

val encode_side : Plan_compile.plan side
val decode_side : Dplan.plan side
val forward_side : Fplan.plan side

val encode_passes : Plan_compile.plan pass list
(** ["chunk-coalesce"]; ["loop-blit-fusion"]; ["ensure-hoist"]. *)

val decode_passes : Dplan.plan pass list
(** ["chunk-merge"]; ["loop-ensure-hoist"]. *)

val forward_passes : Fplan.plan pass list
(** ["forward-run-coalesce"]; ["forward-loop-collapse"] — the order is
    load-bearing: collapsing matches the single-copy loop bodies
    coalescing creates. *)

val encode_pass_names : string list
val decode_pass_names : string list
val forward_pass_names : string list
val pass_names : string list
(** All registered pass names, encode first. *)

val validate : Opt_config.t -> (unit, string) result
(** Check an explicit selection against the registry (either side's
    names are accepted; [flick dump-plan --passes] surfaces the
    error). *)

val select : 'p pass list -> Opt_config.selection -> 'p pass list
(** The subset of [passes] the selection enables.  [All] runs in
    registration order; an explicit [Only] list runs in the {e
    caller's} order (the spelling is fingerprinted into cache keys, so
    reorderings cache separately and never alias).  Unknown names
    select nothing (see {!validate}). *)

val max_rounds : int
(** Fixpoint bound: {!run} repeats the selected pipeline until a round
    records zero {!Peephole} rewrites, at most this many rounds. *)

val run :
  ?config:Opt_config.t ->
  ?stats:Peephole.stats ->
  ?on_trace:(trace -> unit) ->
  'p side ->
  'p pass list ->
  'p ->
  'p
(** Run the selected passes to a fixpoint ([config] defaults to
    {!Opt_config.default}, so [FLICK_VERIFY_PLANS=1] turns the verifier
    on everywhere): the whole pipeline repeats until a round records
    zero rewrites, bounded by {!max_rounds} — one pass can expose work
    for an earlier-ordered one (pinned in test/test_passes.ml).  When
    verifying, the input program is checked once before the first pass,
    then after every pass of every round.  [stats] accumulates
    {!Peephole} rewrite counters across all rounds; [on_trace] receives
    one record per executed pass for round 1 and for any later round
    that rewrote something ([tr_round] tags them).  Wall times read the
    {!Obs} clock, and each pass runs under an [Obs_trace] span
    ([pass:<name>], category ["opt"]) when tracing is enabled. *)

val run_encode :
  ?config:Opt_config.t ->
  ?stats:Peephole.stats ->
  ?on_trace:(trace -> unit) ->
  Plan_compile.plan ->
  Plan_compile.plan

val run_decode :
  ?config:Opt_config.t ->
  ?stats:Peephole.stats ->
  ?on_trace:(trace -> unit) ->
  Dplan.plan ->
  Dplan.plan

val run_forward :
  ?config:Opt_config.t ->
  ?stats:Peephole.stats ->
  ?on_trace:(trace -> unit) ->
  Fplan.plan ->
  Fplan.plan
