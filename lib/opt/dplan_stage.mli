(** Tier-1 staging analysis for decode plans — the unmarshal twin of
    {!Plan_stage}.

    Pure analyses over the {!Dplan} IR deciding which chunk loads fuse
    into flat runs; the stub engine emits the closures.  Items within a
    [D_chunk] load from distinct static offsets into distinct slots
    under one capacity check, so regrouping never changes decode
    results. *)

val stageable : Dplan.plan -> bool
(** True iff the plan has no unmarshal subroutines ([D_call] targets
    recursion); non-stageable plans stay at tier 0. *)

type dseg =
  | Dseg_run of {
      offs : int array;
      slots : int array;
      bits : int;
      signed : bool;
    }
      (** a run of 4-byte integer loads sharing one extension rule:
          slot [slots.(k)] receives the word at [offs.(k)] *)
  | Dseg_item of Dplan.ditem  (** tier-0 single-item form *)

val chunk_dsegments : Dplan.ditem list -> dseg list
(** Regroup a chunk's items: 32-bit integer loads group by their
    (bits, signed) extension rule into offset/slot arrays, the rest
    stay single items. *)
