(** Tier-1 staging analysis for encode plans.

    The analysis half of the staged plan specializer: pure functions
    over the {!Mplan} IR that decide what fuses into flat closures and
    precompute the fused forms.  The stub engine ([Stub_opt]) consumes
    these to emit the tier-1 closures; the split keeps this module free
    of the runtime value representation.

    Items within a chunk store at distinct static offsets into space
    reserved by one capacity check, so {!chunk_segments} may regroup
    them freely without changing the bytes produced. *)

val unroll_limit : int
(** Fixed loops at or below this many elements (4) are unrolled into a
    straight-line sequence by the staged compiler. *)

val stageable : Plan_compile.plan -> bool
(** A plan stages iff it has no marshal subroutines ([Call] targets
    recursion, which has no flat-closure form); the staged engine falls
    back to tier 0 otherwise, keeping behaviour total. *)

type seg =
  | Seg_image of { off : int; image : Bytes.t }
      (** byte-adjacent constant items folded into one precomputed
          image, written with a single blit *)
  | Seg_run of { base : Mplan.rv; offs : int array; idxs : int array }
      (** a run of 4-byte integer fields of one aggregate: resolve
          [base] once, then store field [idxs.(k)] at [offs.(k)] *)
  | Seg_item of Mplan.item  (** tier-0 single-item form *)

val chunk_segments : be:bool -> Mplan.item list -> seg list
(** Regroup a chunk's items: constants fold into images, integer-field
    runs sharing a structurally equal base group into offset/index
    arrays, the rest stay single items.  Byte-identical to writing the
    items in order. *)

val chunk_gaps : int -> Mplan.item list -> (int * int) list
(** [(off, len)] spans of a [size]-byte chunk not covered by any item —
    the zero-filled alignment gaps, same walk as the tier-0 engine. *)

val fixed_count : Mplan.via -> int option
(** The static trip count when a loop is small enough to unroll
    ([Via_fixed n] with [n <= unroll_limit]). *)
