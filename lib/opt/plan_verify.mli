(** Structural verifier for marshal and unmarshal plans.

    Checks the invariants the plan compilers establish and every
    {!Peephole} rewrite must preserve, re-derived independently of the
    optimizer so a rewrite bug cannot hide behind its own checker:

    - chunk items sit at monotone, non-overlapping static offsets whose
      extents (atom sizes, blit lengths + padding) fit the chunk;
    - every store is covered by a check: a chunk with [check = false]
      appears only under a reservation that guarantees its bytes
      (encode: an {!Mplan.op.Ensure_count} immediately before the loop;
      decode: a [D_loop] with [ensure = Some _]);
    - a hoisted decode reservation equals the frame's {e exact} advance
      — decode bounds checks raise, so an upper bound would reject
      well-formed messages;
    - loop bodies are well-nested: [Rvar] references are in scope and
      loop variables do not shadow;
    - decode slots are written exactly once, lie inside their frame,
      and the shape tree reads only written slots;
    - [Call] / [D_call] targets resolve among the plan's subroutines;
    - scalar sanity: power-of-two alignments, non-negative lengths,
      padding, and length bounds.

    The verifier is pure and total: it returns [Error] with a path into
    the plan instead of raising.  {!Pass.run} invokes it after every
    pass when the {!Opt_config} says to (e.g. under
    [FLICK_VERIFY_PLANS=1]); test/test_passes.ml fuzzes it against
    random plans and pins that seeded corruptions are caught. *)

type error = { ev_path : string; ev_msg : string }

val error_to_string : error -> string

val check_plan : Plan_compile.plan -> (unit, error) result
val check_dplan : Dplan.plan -> (unit, error) result

val check_fplan : Fplan.plan -> (unit, error) result
(** Forward-plan obligations, in the same spirit: every blit inside a
    fused run lies at monotone, non-overlapping offsets covered by the
    run's single source check and destination reservation; a run that
    skips a check on a side it touches appears only under a loop
    reservation for that side; a loop's source reservation equals the
    body's exact static consumption while its destination reservation
    bounds the body's emission from above; embedded
    {!Fplan.fop.F_materialize} fallbacks re-check their decode and
    encode plans recursively. *)
