(* Pipeline selection for the plan optimizer.

   A configuration names which registered peephole passes run (all of
   them, none, or an explicit list in registration order) and whether
   the structural verifier runs after each.  It threads from the entry
   points (Stub_opt, Plan_cache, bin/flick, bench) down to Pass.run,
   and its pass selection is serialized into every plan-cache key so
   differently configured pipelines can never alias one plan.

   The verifier flag is deliberately NOT part of cache keys:
   verification never changes the plan, only whether building it can
   fail loudly. *)

type selection = All | Nothing | Only of string list

type t = { selection : selection; verify : bool }

let verify_env () =
  match Sys.getenv_opt "FLICK_VERIFY_PLANS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

(* Read the environment at each call: tests toggle the variable. *)
let default () = { selection = All; verify = verify_env () }

let all = { selection = All; verify = false }
let none = { selection = Nothing; verify = false }
let only names = { selection = Only names; verify = false }

(* Cache-key serialization of the pass selection.  Pass names never
   contain ','; [Only] keeps the caller's order (selection order does
   not affect which passes run — Pass.select filters the registry in
   registration order — but two spellings keying differently only costs
   a duplicate cache entry, never aliasing). *)
let selection_fingerprint t =
  match t.selection with
  | All -> "all"
  | Nothing -> "none"
  | Only names -> "only:" ^ String.concat "," names

let to_string t =
  Printf.sprintf "%s%s"
    (selection_fingerprint t)
    (if t.verify then "+verify" else "")

(* ------------------------------------------------------------------ *)
(* Tiered execution (staged specialization)                             *)
(* ------------------------------------------------------------------ *)

(* Tier policy is process-global, like the Mbuf scatter-gather knobs:
   it must be identical for every compile in a run because it is baked
   into cached closures (and fingerprinted into their keys).  The
   environment variable is the deployment switch; the setters are the
   CLI/test override and win over the environment:
     FLICK_STAGE unset -> staging on, threshold 32
     FLICK_STAGE=0     -> staging off (tier 0 forced)
     FLICK_STAGE=N     -> staging on, promote after N calls *)

let default_stage_threshold = 32
let stage_override : (bool * int) option ref = ref None

let stage_env () =
  match Sys.getenv_opt "FLICK_STAGE" with
  | None | Some "" -> (true, default_stage_threshold)
  | Some s -> (
      match int_of_string_opt s with
      | Some 0 -> (false, default_stage_threshold)
      | Some n when n > 0 -> (true, n)
      | Some _ | None -> (true, default_stage_threshold))

let stage_setting () =
  match !stage_override with Some s -> s | None -> stage_env ()

let stage_enabled () = fst (stage_setting ())
let stage_threshold () = snd (stage_setting ())

let set_stage_enabled on =
  stage_override := Some (on, snd (stage_setting ()))

let set_stage_threshold n =
  if n < 1 then invalid_arg "Opt_config.set_stage_threshold";
  stage_override := Some (fst (stage_setting ()), n)

let clear_stage_override () = stage_override := None

(* Cache-key component: closures compiled under one tier policy must
   never serve another. *)
let stage_fingerprint () =
  let on, threshold = stage_setting () in
  Printf.sprintf "stage=%b,%d" on threshold

let of_string s =
  let verify_suffix = "+verify" in
  let s, verify =
    if
      String.length s >= String.length verify_suffix
      && String.sub s
           (String.length s - String.length verify_suffix)
           (String.length verify_suffix)
         = verify_suffix
    then
      (String.sub s 0 (String.length s - String.length verify_suffix), true)
    else (s, false)
  in
  (* accept the canonical [to_string] spelling back: "only:" is
     optional on explicit lists *)
  let only_prefix = "only:" in
  let s =
    if
      String.length s >= String.length only_prefix
      && String.sub s 0 (String.length only_prefix) = only_prefix
    then String.sub s (String.length only_prefix)
           (String.length s - String.length only_prefix)
    else s
  in
  match s with
  | "all" -> Ok { selection = All; verify }
  | "none" -> Ok { selection = Nothing; verify }
  | "" -> Error "empty pass selection"
  | names ->
      Ok { selection = Only (String.split_on_char ',' names); verify }
