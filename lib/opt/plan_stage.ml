(* Tier-1 staging analysis for encode plans.

   The staged specializer partially evaluates a plan into flat closures:
   constant items fold into precomputed byte images, runs of 32-bit
   integer fields sharing one aggregate base collapse into offset/index
   arrays driven by a single tight loop, and everything else keeps its
   tier-0 shape.  This module is the analysis half — pure functions
   over the plan IR deciding what fuses and precomputing the fused
   forms — so it can live beside the plan compiler; the closure
   emission lives in the stub engine (Stub_opt), which owns the value
   representation.

   Within a chunk every item stores at a distinct static offset into
   space reserved by one capacity check, so items may be reordered
   freely: the segments below regroup a chunk's items by kind without
   changing the bytes produced. *)

(* Fixed loops at or below this many elements are unrolled into a
   straight-line sequence by the staged compiler. *)
let unroll_limit = 4

(* ------------------------------------------------------------------ *)
(* Stageability                                                         *)
(* ------------------------------------------------------------------ *)

(* A plan stages iff it contains no marshal subroutines: Call targets
   recursion, whose unbounded depth has no flat-closure form.  The
   staged engine keeps behaviour total by falling back to tier 0 for
   such plans. *)
let rec ops_stageable (ops : Mplan.op list) =
  List.for_all
    (fun (op : Mplan.op) ->
      match op with
      | Mplan.Call _ -> false
      | Mplan.Loop { body; _ } -> ops_stageable body
      | Mplan.Switch { arms; default; _ } ->
          List.for_all
            (fun (a : Mplan.arm) -> ops_stageable a.Mplan.a_body)
            arms
          && (match default with
             | None -> true
             | Some (_, body) -> ops_stageable body)
      | Mplan.Align _ | Mplan.Chunk _ | Mplan.Ensure_count _
      | Mplan.Put_const_str _ | Mplan.Put_string _ | Mplan.Put_byteseq _
      | Mplan.Put_atom_array _ | Mplan.Put_blit _ | Mplan.Put_len _
      (* variable headers stage as branchy-but-flat closures: the staged
         compiler binds the source path and worst-case once and defers
         the width branch to run time *)
      | Mplan.Put_varhead _ ->
          true)
    ops

let stageable (p : Plan_compile.plan) =
  p.Plan_compile.p_subs = [] && ops_stageable p.Plan_compile.p_ops

(* ------------------------------------------------------------------ *)
(* Chunk segmentation                                                   *)
(* ------------------------------------------------------------------ *)

type seg =
  | Seg_image of { off : int; image : Bytes.t }
      (* a run of constant items folded into one precomputed byte
         image, written with a single blit *)
  | Seg_run of { base : Mplan.rv; offs : int array; idxs : int array }
      (* a run of 4-byte integer fields of one aggregate: resolve
         [base] once, then store each field at its constant offset *)
  | Seg_item of Mplan.item  (* anything else: tier-0 single-item form *)

(* A constant folds into pure bytes exactly when the tier-0 writer
   (Codec.write_const_at) dispatches on size alone: 1/2/4-byte stores
   of the truncated value, or the 64-bit integer store. *)
let foldable_const (atom : Mplan.atom) =
  match atom.Mplan.size with
  | 1 | 2 | 4 -> true
  | 8 -> ( match atom.Mplan.kind with
           | Encoding.Kint { bits = 64; _ } -> true
           | _ -> false)
  | _ -> false

let write_const ~be (b : Bytes.t) off (atom : Mplan.atom) (v : int64) =
  match atom.Mplan.size with
  | 1 -> Bytes.set_uint8 b off (Int64.to_int v land 0xFF)
  | 2 ->
      if be then Bytes.set_int16_be b off (Int64.to_int v)
      else Bytes.set_int16_le b off (Int64.to_int v)
  | 4 ->
      if be then Bytes.set_int32_be b off (Int64.to_int32 v)
      else Bytes.set_int32_le b off (Int64.to_int32 v)
  | 8 ->
      if be then Bytes.set_int64_be b off v else Bytes.set_int64_le b off v
  | n -> invalid_arg (Printf.sprintf "Plan_stage: const size %d" n)

(* A groupable field store: the hot 32-bit integer case whose source is
   one member of an aggregate.  Runs sharing a structurally equal base
   resolve that base once and loop over (offset, index) pairs. *)
let run_candidate (it : Mplan.item) =
  match it with
  | Mplan.It_atom
      { off; atom = { Mplan.kind = Encoding.Kint { bits; _ }; size = 4; _ };
        src = Mplan.Rfield { base; index; _ } }
    when bits <= 32 ->
      Some (base, off, index, it)
  | _ -> None

let const_candidate (it : Mplan.item) =
  match it with
  | Mplan.It_const { off; atom; value } when foldable_const atom ->
      Some (off, atom, value)
  | _ -> None

(* Merge byte-adjacent constants into images (left-to-right over the
   offset-sorted list); only multi-item images pay for the blit. *)
let const_images ~be consts =
  let consts =
    List.sort (fun (o1, _, _) (o2, _, _) -> compare o1 o2) consts
  in
  let flush acc run =
    match List.rev run with
    | [] -> acc
    | [ (off, atom, value) ] -> Seg_item (Mplan.It_const { off; atom; value }) :: acc
    | (off0, _, _) :: _ as run ->
        let last_off, last_atom, _ = List.nth run (List.length run - 1) in
        let total = last_off + last_atom.Mplan.size - off0 in
        let image = Bytes.make total '\000' in
        List.iter
          (fun (off, atom, value) ->
            write_const ~be image (off - off0) atom value)
          run;
        Seg_image { off = off0; image } :: acc
  in
  let acc, run =
    List.fold_left
      (fun (acc, run) ((off, _, _) as c) ->
        match run with
        | [] -> (acc, [ c ])
        | (poff, (patom : Mplan.atom), _) :: _
          when poff + patom.Mplan.size = off ->
            (acc, c :: run)
        | _ -> (flush acc run, [ c ]))
      ([], []) consts
  in
  List.rev (flush acc run)

(* Group field candidates by structural base, preserving first-seen
   order of the bases; within a run, store in offset order. *)
let field_runs cands =
  let groups : (Mplan.rv * (int * int * Mplan.item) list ref) list ref =
    ref []
  in
  List.iter
    (fun (base, off, idx, it) ->
      match List.find_opt (fun (b, _) -> b = base) !groups with
      | Some (_, cell) -> cell := (off, idx, it) :: !cell
      | None -> groups := !groups @ [ (base, ref [ (off, idx, it) ]) ])
    cands;
  List.map
    (fun (base, cell) ->
      match !cell with
      | [ (_, _, it) ] ->
          (* a lone field is cheaper as a direct store *)
          Seg_item it
      | pairs ->
          let pairs =
            List.sort (fun (o1, _, _) (o2, _, _) -> compare o1 o2) pairs
          in
          Seg_run
            { base;
              offs = Array.of_list (List.map (fun (o, _, _) -> o) pairs);
              idxs = Array.of_list (List.map (fun (_, i, _) -> i) pairs) })
    !groups

let chunk_segments ~be (items : Mplan.item list) : seg list =
  let consts = List.filter_map const_candidate items in
  let fields = List.filter_map run_candidate items in
  let rest =
    List.filter
      (fun it -> const_candidate it = None && run_candidate it = None)
      items
  in
  const_images ~be consts
  @ field_runs fields
  @ List.map (fun it -> Seg_item it) rest

(* The spans items do not cover (alignment gaps), zero-filled by the
   chunk writer — same walk as the tier-0 engine. *)
let chunk_gaps size (items : Mplan.item list) =
  let covered =
    List.map
      (fun (it : Mplan.item) ->
        match it with
        | Mplan.It_atom { off; atom; _ } -> (off, off + atom.Mplan.size)
        | Mplan.It_bytes { off; len; pad; _ } -> (off, off + len + pad)
        | Mplan.It_const { off; atom; _ } -> (off, off + atom.Mplan.size))
      items
    |> List.sort compare
  in
  let rec walk pos acc = function
    | [] -> if pos < size then (pos, size - pos) :: acc else acc
    | (s, e) :: rest ->
        let acc = if s > pos then (pos, s - pos) :: acc else acc in
        walk (max pos e) acc rest
  in
  List.rev (walk 0 [] covered)

(* Fixed trip count, when the loop can be unrolled. *)
let fixed_count (via : Mplan.via) =
  match via with
  | Mplan.Via_fixed n when n <= unroll_limit -> Some n
  | Mplan.Via_fixed _ | Mplan.Via_seq _ | Mplan.Via_string | Mplan.Via_opt ->
      None
