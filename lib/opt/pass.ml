(* The instrumented pass manager over plan programs.

   A pass is a named, byte-preserving transform over an encode
   (Plan_compile.plan) or decode (Dplan.plan) program.  The manager
   runs the selected passes in registration order and instruments each
   one: wall time, node and bounds-check counts before and after, and
   (optionally) the structural verifier.  Traces stream through a
   callback so flick dump-plan --trace-passes and the bench ablations
   can show per-pass deltas without re-deriving them.

   The registered passes are the three rewrite classes of the encode
   peephole engine and the two of the decode engine.  Composing them in
   order reproduces the monolithic Peephole.optimize_plan /
   optimize_dplan output exactly (pinned by test/test_passes.ml):
   coalescing only creates bigger chunks, fusion only consumes
   single-chunk loop bodies coalescing has already normalized, and
   hoisting only fires on loops fusion left behind — the same
   bottom-up order the monolith applies within its single traversal. *)

type trace = {
  tr_side : string;  (** "encode" or "decode" *)
  tr_pass : string;
  tr_round : int;
  tr_nodes_before : int;
  tr_nodes_after : int;
  tr_checks_before : int;
  tr_checks_after : int;
  tr_wall_ns : float;
  tr_verified : bool;
}

type 'p pass = {
  p_name : string;
  p_transform : ?stats:Peephole.stats -> 'p -> 'p;
}

(* Per-program-kind instrumentation hooks. *)
type 'p side = {
  s_name : string;
  s_nodes : 'p -> int;
  s_checks : 'p -> int;
  s_verify : 'p -> (unit, Plan_verify.error) result;
}

exception
  Verify_failed of { side : string; pass : string; error : Plan_verify.error }

let () =
  Printexc.register_printer (function
    | Verify_failed { side; pass; error } ->
        Some
          (Printf.sprintf "Pass.Verify_failed(%s plan after %S: %s)" side pass
             (Plan_verify.error_to_string error))
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Registered passes                                                    *)
(* ------------------------------------------------------------------ *)

let plan_totals (p : Plan_compile.plan) count =
  count p.Plan_compile.p_ops
  + List.fold_left
      (fun acc (_, ops) -> acc + count ops)
      0 p.Plan_compile.p_subs

let dplan_totals (p : Dplan.plan) count =
  count p.Dplan.d_ops
  + List.fold_left
      (fun acc (_, f) -> acc + count f.Dplan.f_ops)
      0 p.Dplan.d_subs

let encode_side =
  {
    s_name = "encode";
    s_nodes = (fun p -> plan_totals p Mplan.count_ops);
    s_checks = (fun p -> plan_totals p Mplan.count_checks);
    s_verify = Plan_verify.check_plan;
  }

let decode_side =
  {
    s_name = "decode";
    s_nodes = (fun p -> dplan_totals p Dplan.count_ops);
    s_checks = (fun p -> dplan_totals p Dplan.count_checks);
    s_verify = Plan_verify.check_dplan;
  }

let rw_only ?(narrow = false) ~coalesce ~fuse ~hoist ~dead () =
  {
    Peephole.rw_coalesce = coalesce;
    rw_fuse = fuse;
    rw_hoist = hoist;
    rw_dead = dead;
    rw_narrow = narrow;
  }

(* Dead-op removal rides with coalescing (dropping an [Align 1] between
   two chunks is what lets them merge); the redundant-reservation drop
   rides with fusion (only fusion creates the array op that triggers
   it).  The registration order is load-bearing: see the head comment. *)
let encode_passes =
  [
    {
      (* before chunk-coalesce: folding a constant variable-width
         header into a fixed chunk is what lets coalescing absorb it
         into the surrounding static run in the same round *)
      p_name = "varhead-narrow";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_plan_with
            (rw_only ~narrow:true ~coalesce:false ~fuse:false ~hoist:false
               ~dead:false ())
            ?stats p);
    };
    {
      p_name = "chunk-coalesce";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_plan_with
            (rw_only ~coalesce:true ~fuse:false ~hoist:false ~dead:true ())
            ?stats p);
    };
    {
      p_name = "loop-blit-fusion";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_plan_with
            (rw_only ~coalesce:false ~fuse:true ~hoist:false ~dead:false ())
            ?stats p);
    };
    {
      p_name = "ensure-hoist";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_plan_with
            (rw_only ~coalesce:false ~fuse:false ~hoist:true ~dead:false ())
            ?stats p);
    };
  ]

let decode_passes =
  [
    {
      p_name = "dvarhead-narrow";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_dplan_with
            (rw_only ~narrow:true ~coalesce:false ~fuse:false ~hoist:false
               ~dead:false ())
            ?stats p);
    };
    {
      p_name = "chunk-merge";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_dplan_with
            (rw_only ~coalesce:true ~fuse:false ~hoist:false ~dead:true ())
            ?stats p);
    };
    {
      p_name = "loop-scalar-fusion";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_dplan_with
            (rw_only ~coalesce:false ~fuse:true ~hoist:false ~dead:false ())
            ?stats p);
    };
    {
      p_name = "loop-ensure-hoist";
      p_transform =
        (fun ?stats p ->
          Peephole.optimize_dplan_with
            (rw_only ~coalesce:false ~fuse:false ~hoist:true ~dead:false ())
            ?stats p);
    };
  ]

(* The forward side: fused decode+encode programs for gateway relaying.
   Coalescing must precede collapsing — the single-copy loop bodies the
   collapse matches are what move coalescing creates. *)
let forward_side =
  {
    s_name = "forward";
    s_nodes = (fun (p : Fplan.plan) -> Fplan.count_ops p.Fplan.f_ops);
    s_checks = (fun (p : Fplan.plan) -> Fplan.count_checks p.Fplan.f_ops);
    s_verify = Plan_verify.check_fplan;
  }

let forward_passes =
  [
    {
      p_name = "forward-run-coalesce";
      p_transform =
        (fun ?stats (p : Fplan.plan) ->
          { p with Fplan.f_ops = Peephole.forward_coalesce ?stats p.Fplan.f_ops });
    };
    {
      p_name = "forward-loop-collapse";
      p_transform =
        (fun ?stats (p : Fplan.plan) ->
          { p with Fplan.f_ops = Peephole.forward_collapse ?stats p.Fplan.f_ops });
    };
  ]

let encode_pass_names = List.map (fun p -> p.p_name) encode_passes
let decode_pass_names = List.map (fun p -> p.p_name) decode_passes
let forward_pass_names = List.map (fun p -> p.p_name) forward_passes
let pass_names = encode_pass_names @ decode_pass_names @ forward_pass_names

let validate (config : Opt_config.t) =
  match config.Opt_config.selection with
  | Opt_config.All | Opt_config.Nothing -> Ok ()
  | Opt_config.Only names -> (
      match List.filter (fun n -> not (List.mem n pass_names)) names with
      | [] -> Ok ()
      | unknown ->
          Error
            (Printf.sprintf "unknown pass%s %s (known: %s)"
               (if List.length unknown > 1 then "es" else "")
               (String.concat ", " unknown)
               (String.concat ", " pass_names)))

(* [Only] honors the caller's order, not registration order: the order
   is fingerprinted into cache keys anyway (differing spellings already
   cache separately), and an explicit list exists to experiment with
   pipelines — including ones that need a later-registered pass to run
   first (see the fixpoint test, where fusion precedes coalescing). *)
let select passes (sel : Opt_config.selection) =
  match sel with
  | Opt_config.All -> passes
  | Opt_config.Nothing -> []
  | Opt_config.Only names ->
      List.filter_map
        (fun n -> List.find_opt (fun p -> p.p_name = n) passes)
        names

(* ------------------------------------------------------------------ *)
(* The runner                                                           *)
(* ------------------------------------------------------------------ *)

let verify_or_raise side pass prog =
  match side.s_verify prog with
  | Ok () -> ()
  | Error error ->
      raise (Verify_failed { side = side.s_name; pass; error })

let max_rounds = 4

(* Iterate the selected pipeline to a fixpoint: one pass can expose
   work for another that already ran this round (chunk-coalesce
   normalizing a loop body that loop-blit-fusion then consumes), so the
   whole sequence repeats until a round records zero Peephole rewrites,
   bounded by [max_rounds] against a rewrite ping-pong.

   Trace policy: round 1 streams unconditionally; a later round's rows
   are flushed only when that round actually rewrote something.  A
   pipeline that converges immediately therefore traces exactly as the
   single-round manager did, and extra rounds show up as extra rows
   (tagged [tr_round]) only when they earned their keep. *)
let run ?config ?stats ?on_trace side passes prog =
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  let verify = config.Opt_config.verify in
  let selected = select passes config.Opt_config.selection in
  (* check the compiler's own output before any pass touches it *)
  if verify then verify_or_raise side "<compile>" prog;
  (* one stats record threads through every round: the caller sees the
     grand total, the runner reads per-round deltas off it *)
  let st =
    match stats with Some s -> s | None -> Peephole.fresh_stats ()
  in
  let rec rounds round prog =
    let rewrites_before = Peephole.rewrites st in
    let buffered = ref [] in
    let prog' =
      List.fold_left
        (fun prog pass ->
          let nodes_before = side.s_nodes prog
          and checks_before = side.s_checks prog in
          let sp =
            Obs_trace.enter ~cat:"opt"
              ~args:
                [ ("side", side.s_name); ("round", string_of_int round) ]
              ("pass:" ^ pass.p_name)
          in
          let t0 = Obs.now_ns () in
          let prog' = pass.p_transform ~stats:st prog in
          let wall_ns = Obs.now_ns () -. t0 in
          Obs_trace.leave sp;
          if verify then verify_or_raise side pass.p_name prog';
          (match on_trace with
          | None -> ()
          | Some _ ->
              buffered :=
                {
                  tr_side = side.s_name;
                  tr_pass = pass.p_name;
                  tr_round = round;
                  tr_nodes_before = nodes_before;
                  tr_nodes_after = side.s_nodes prog';
                  tr_checks_before = checks_before;
                  tr_checks_after = side.s_checks prog';
                  tr_wall_ns = wall_ns;
                  tr_verified = verify;
                }
                :: !buffered);
          prog')
        prog selected
    in
    let rewrote = Peephole.rewrites st - rewrites_before in
    if round = 1 || rewrote > 0 then (
      match on_trace with
      | None -> ()
      | Some f -> List.iter f (List.rev !buffered));
    if rewrote > 0 && round < max_rounds then rounds (round + 1) prog'
    else prog'
  in
  rounds 1 prog

let run_encode ?config ?stats ?on_trace plan =
  run ?config ?stats ?on_trace encode_side encode_passes plan

let run_decode ?config ?stats ?on_trace plan =
  run ?config ?stats ?on_trace decode_side decode_passes plan

let run_forward ?config ?stats ?on_trace plan =
  run ?config ?stats ?on_trace forward_side forward_passes plan
