(** The optimizing marshal-plan compiler (paper section 3).

    Lowers (MINT, PRES, encoding) triples into {!Mplan} programs,
    implementing Flick's domain-specific optimizations:

    - {b storage analysis}: every subtree is classified fixed / bounded
      / unbounded by walking the MINT graph with the encoding's layouts
      (section 3.1 "marshal buffer management");
    - {b chunking}: consecutive data whose positions are statically
      known merge into one {!Mplan.op.Chunk} — one capacity check, one
      pointer advance, stores at constant offsets (section 3.2's common
      subexpression elimination on message pointers).  Static position
      knowledge is tracked as a congruence (position ≡ offset mod base),
      which survives XDR's 4-byte padding discipline across
      variable-length data but is lost after CDR strings, exactly where
      real stubs must re-align dynamically;
    - {b memcpy}: byte-identical runs (strings, octet sequences, char
      arrays) become blits; scalar arrays become single tight loops;
      aggregate arrays remain element-by-element, which is why the
      paper's integer arrays marshal faster than its rectangle arrays;
    - {b inlining}: everything is expanded in place except
      self-referential types, which compile to named subroutines invoked
      by {!Mplan.op.Call} (section 3.3);
    - {b arrays of fixed-size elements} are covered by one
      {!Mplan.op.Ensure_count} and their per-element chunks skip the
      capacity check. *)

type root =
  | Rconst_int of int64 * Encoding.atom_kind
      (** a constant discriminator (procedure number, union tag) *)
  | Rconst_str of string  (** a constant string discriminator (GIOP op name) *)
  | Rvalue of Mplan.rv * Mint.idx * Pres.t

type plan = {
  p_ops : Mplan.op list;
  p_subs : (string * Mplan.op list) list;
      (** marshal subroutines for self-referential types; each takes its
          value as parameter 0 (named ["_v"]) *)
}

val compile :
  enc:Encoding.t ->
  mint:Mint.t ->
  named:(string * (Mint.idx * Pres.t)) list ->
  ?start:int * int ->
  ?unroll_limit:int ->
  ?chunked:bool ->
  ?sg:bool ->
  ?sg_threshold:int ->
  root list ->
  plan
(** [compile ~enc ~mint ~named roots] produces the marshal plan for the
    given message body.  [start] is the static alignment congruence of
    the first byte (default [(8, 0)]: the body begins max-aligned).
    Fixed scalar arrays of at most [unroll_limit] elements (default 64)
    are unrolled into their surrounding chunk.  [chunked:false] disables
    the section 3.1/3.2 chunk merging — every atom gets its own
    capacity check and pointer advance — and exists for the ablation
    benchmarks.  [sg] (default {!Mbuf.sg_enabled}) marks blit-shaped ops
    borrowable for the scatter-gather wire path and splits fixed byte
    runs of at least [sg_threshold] (default {!Mbuf.borrow_threshold})
    bytes out of their chunk as {!Mplan.op.Put_blit}. *)

val atom_of : Encoding.t -> Encoding.atom_kind -> Mplan.atom
(** The encoding's layout for one atom, as a plan atom. *)

val u8_atom : Mplan.atom
(** One unaligned byte — the tag slot preceding a float payload under a
    value-dependent encoding. *)

val vh_worst_of : Encoding.varcodec -> Encoding.atom_kind -> int
(** Worst-case wire width of one value-dependent scalar (the
    reservation a [Put_varhead]/[D_get_varhead] carries). *)

val len_atom : Encoding.t -> Mplan.atom
(** The encoding's length-prefix word as a plan atom (also the Mach
    typed-header descriptor layout). *)

val round_up : int -> int -> int
(** [round_up n unit] — smallest multiple of [unit] that is [>= n]. *)

val max_size :
  enc:Encoding.t ->
  mint:Mint.t ->
  Mint.idx ->
  Pres.t ->
  int option
(** Upper bound on the encoded size, including worst-case padding;
    [None] when unbounded.  The storage-class analysis of section 3.1:
    [Some] with an exact fixed layout is the paper's "fixed" class,
    [Some] otherwise is "variable but bounded", [None] is "unbounded". *)
