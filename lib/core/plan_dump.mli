(** Rendering for [flick dump-plan].

    Factored out of the CLI so [test/test_driver.ml] can cover the
    decode and pass-trace paths directly.  All failures — unknown
    [--op], unsupported IDL/presentation combinations, and even
    [Invalid_argument] escaping a plan compiler — are reported by
    raising {!Diag.Error}, which the CLI formats and turns into a
    non-zero exit. *)

type mode =
  | Marshal  (** the client-side encode plan (default) *)
  | Unmarshal  (** the server-side decode plan ([--decode]) *)
  | Trace
      (** per-pass optimizer trace for the encode and decode plans of
          each stub, in both chunked and per-datum compilation modes
          ([--trace-passes]): node and bounds-check counts before/after
          every pass plus wall time, with the verifier forced on *)
  | Forward of Driver.backend
      (** the fused gateway relay plan ([--forward BACKEND]): the
          request message arriving under the source backend's encoding
          re-emitted under the destination backend's, every op line
          annotated with its copy-elision provenance ([# blit] /
          [# borrow] / [# convert] / [# fixup] / [# fallback]), with an
          execution-tier line and a rolled-up elision tally *)

val render :
  idl:Driver.idl ->
  pres:Driver.presentation ->
  backend:Driver.backend ->
  interface:string option ->
  op:string option ->
  mode:mode ->
  ?config:Opt_config.t ->
  ?encoding:Encoding.t ->
  file:string ->
  source:string ->
  unit ->
  string
(** Render the plans (or traces) for every selected stub.  [op] limits
    output to one operation and raises {!Diag.Error} when no stub has
    that name, listing the operations that exist.  [config] (default
    {!Opt_config.default}) selects the {!Pass} pipeline; an unknown
    pass name in an [Only] selection is a diagnostic too.  [encoding]
    overrides the backend transport's wire format — the way to inspect
    the value-dependent msgpack/cbor plans, which no transport selects
    on its own; the plan headers then carry both names. *)
