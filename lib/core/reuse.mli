(** Code-reuse accounting: the reproduction of the paper's Table 1.

    The paper reports, for each compilation phase, the size of the
    shared base library and of each specialized component, with the
    component's share of the combined total — the evidence for the claim
    that front ends, presentation generators and back ends are small
    specializations of large common libraries.  This module computes the
    same table over this repository's own OCaml sources. *)

type row = {
  component : string;
  lines : int;
  percent : float;  (** of component + base, like the paper's column *)
}

type phase = {
  phase_name : string;
  base_lines : int;
  rows : row list;
}

val substantive_lines : string -> int
(** Count non-blank, non-comment lines of one OCaml source file. *)

val table1 : ?root:string -> unit -> phase list
(** [root] is the directory containing [lib/] (default: the current
    directory, walking up until found). *)

val render : phase list -> string
