(* Rendering for [flick dump-plan].

   The CLI is a thin shell around this module so the driver tests can
   cover the interesting paths — decode plans, pass traces, unknown
   operations — without running the binary.  Every failure surfaces as
   Diag.Error so the CLI's one handler formats it and exits non-zero;
   in particular an Invalid_argument escaping a plan compiler is turned
   into a diagnostic rather than an uncaught-exception backtrace. *)

type mode =
  | Marshal  (** the client-side encode plan (default) *)
  | Unmarshal  (** the server-side decode plan ([--decode]) *)
  | Trace  (** per-pass optimizer trace for both sides ([--trace-passes]) *)
  | Forward of Driver.backend
      (** the fused relay plan into this destination backend's encoding
          ([--forward]) *)

let request_params (st : Pres_c.op_stub) =
  List.filter
    (fun (pi : Pres_c.param_info) ->
      match pi.Pres_c.pi_dir with
      | Aoi.In | Aoi.Inout -> true
      | Aoi.Out -> false)
    st.Pres_c.os_params

let roots_of st =
  List.map
    (fun (pi : Pres_c.param_info) ->
      Plan_compile.Rvalue
        ( Mplan.Rparam
            { index = 0; name = pi.Pres_c.pi_name; deref = pi.Pres_c.pi_byref },
          pi.Pres_c.pi_mint,
          pi.Pres_c.pi_pres ))
    (request_params st)

let droots_of st =
  List.map
    (fun (pi : Pres_c.param_info) ->
      Dplan_compile.Dvalue (pi.Pres_c.pi_mint, pi.Pres_c.pi_pres))
    (request_params st)

(* A compiler bug (as opposed to an unsupported combination, which the
   compilers already report through Diag) must still come out as a
   diagnostic, not a backtrace. *)
let guarded what f =
  try f () with Invalid_argument msg ->
    Diag.error "dump-plan: internal error compiling the %s: %s" what msg

let select_stubs (pc : Pres_c.t) op =
  match op with
  | None -> pc.Pres_c.pc_stubs
  | Some name -> (
      match
        List.filter
          (fun st -> st.Pres_c.os_op.Aoi.op_name = name)
          pc.Pres_c.pc_stubs
      with
      | [] ->
          Diag.error "dump-plan: no operation named %S (available: %s)" name
            (String.concat ", "
               (List.map
                  (fun (st : Pres_c.op_stub) -> st.Pres_c.os_op.Aoi.op_name)
                  pc.Pres_c.pc_stubs))
      | stubs -> stubs)

(* ------------------------------------------------------------------ *)
(* Pass traces                                                          *)
(* ------------------------------------------------------------------ *)

(* Round 1 renders exactly as the single-round manager did; extra
   fixpoint rounds are flagged so a trace that needed them says so. *)
let trace_line b (tr : Pass.trace) =
  Buffer.add_string b
    (Printf.sprintf
       "  %-18s nodes %4d -> %4d   checks %4d -> %4d   %7.1fus%s%s\n"
       tr.Pass.tr_pass tr.Pass.tr_nodes_before tr.Pass.tr_nodes_after
       tr.Pass.tr_checks_before tr.Pass.tr_checks_after
       (tr.Pass.tr_wall_ns /. 1e3)
       (if tr.Pass.tr_verified then "   verified" else "")
       (if tr.Pass.tr_round > 1 then
          Printf.sprintf "   round %d" tr.Pass.tr_round
        else ""))

let trace_one_side b ~label ~nodes ~checks run prog =
  Buffer.add_string b
    (Printf.sprintf "%s: %d nodes, %d checks from the compiler\n" label
       (nodes prog) (checks prog));
  let traced = ref false in
  let result =
    run
      ~on_trace:(fun tr ->
        traced := true;
        trace_line b tr)
      prog
  in
  if not !traced then Buffer.add_string b "  (no passes selected)\n";
  result

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

(* One line under each plan header saying which execution tier the stub
   engine will run it at: whether the staged (tier 1) specializer is
   enabled, and whether this particular plan has a flat-closure form. *)
let tier_line stageable =
  if not (Opt_config.stage_enabled ()) then
    "tier: 0 interpreted (staging disabled)\n"
  else if stageable then
    Printf.sprintf
      "tier: 0 -> 1 staged flat closure after %d calls\n"
      (Opt_config.stage_threshold ())
  else
    "tier: 0 interpreted (subroutines block staging)\n"

(* Forward plans stage unless a materialize fallback is embedded (its
   plans may carry recursive subroutines). *)
let forward_tier_line plan =
  if not (Opt_config.stage_enabled ()) then
    "tier: 0 interpreted (staging disabled)\n"
  else if Option.is_some (Stub_forward.staged_forward_of_plan plan) then
    Printf.sprintf "tier: 0 -> 1 staged flat closure after %d calls\n"
      (Opt_config.stage_threshold ())
  else "tier: 0 interpreted (materialize fallbacks block staging)\n"

(* The copy-elision tally: how many ops of each provenance class the
   relay executes, counting through loop and optional bodies.  The
   per-op provenance is already on every rendered line (pp_op's
   [# tag]); this is the rollup the EXPERIMENTS table quotes. *)
let elision_summary (plan : Fplan.plan) =
  let tally = Hashtbl.create 8 in
  let bump tag =
    Hashtbl.replace tally tag
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally tag))
  in
  let rec walk op =
    bump (Fplan.provenance op);
    match op with
    | Fplan.F_loop { body; _ } | Fplan.F_opt { body } -> List.iter walk body
    | _ -> ()
  in
  List.iter walk plan.Fplan.f_ops;
  let parts =
    List.filter_map
      (fun tag ->
        match Hashtbl.find_opt tally tag with
        | Some n -> Some (Printf.sprintf "%s %d" tag n)
        | None -> None)
      [ "borrow"; "blit"; "convert"; "fixup"; "fallback"; "align"; "loop";
        "opt" ]
  in
  Printf.sprintf "elision: %s\n"
    (if parts = [] then "(empty plan)" else String.concat ", " parts)

let render ~idl ~pres ~backend ~interface ~op ~mode ?config ?encoding ~file
    ~source () =
  let config =
    match config with Some c -> c | None -> Opt_config.default ()
  in
  (match Pass.validate config with
  | Ok () -> ()
  | Error msg -> Diag.error "dump-plan: %s" msg);
  let pc = Driver.present idl pres ~file ~source ~interface in
  let tr = Driver.transport_of backend in
  (* [--encoding] swaps the wire format under the backend's message
     shape — the way to inspect msgpack/cbor plans, which no transport
     selects on its own *)
  let enc =
    match encoding with Some e -> e | None -> tr.Backend_base.tr_enc
  in
  let enc_label =
    match encoding with
    | Some e -> Printf.sprintf "%s, %s" tr.Backend_base.tr_name e.Encoding.name
    | None -> tr.Backend_base.tr_name
  in
  let mint = pc.Pres_c.pc_mint and named = pc.Pres_c.pc_named in
  let b = Buffer.create 1024 in
  List.iter
    (fun (st : Pres_c.op_stub) ->
      match mode with
      | Marshal ->
          let plan =
            guarded "marshal plan" (fun () ->
                Plan_cache.plan ~enc ~mint ~named ~config (roots_of st))
          in
          Buffer.add_string b
            (Format.asprintf "=== marshal plan: %s (%s) ===@."
               st.Pres_c.os_client_name enc_label);
          Buffer.add_string b (tier_line (Plan_stage.stageable plan));
          Buffer.add_string b
            (Format.asprintf "%a@." Mplan.pp plan.Plan_compile.p_ops);
          List.iter
            (fun (name, ops) ->
              Buffer.add_string b
                (Format.asprintf "--- subroutine %s ---@.%a@." name Mplan.pp
                   ops))
            plan.Plan_compile.p_subs
      | Unmarshal ->
          let plan =
            guarded "unmarshal plan" (fun () ->
                Plan_cache.dplan ~enc ~mint ~named ~config (droots_of st))
          in
          Buffer.add_string b
            (Format.asprintf "=== unmarshal plan: %s (%s) ===@."
               st.Pres_c.os_client_name enc_label);
          Buffer.add_string b (tier_line (Dplan_stage.stageable plan));
          Buffer.add_string b (Format.asprintf "%a@." Dplan.pp_plan plan)
      | Forward dst_backend ->
          let dtr = Driver.transport_of dst_backend in
          let dst = dtr.Backend_base.tr_enc in
          let plan =
            guarded "forward plan" (fun () ->
                Stub_forward.forward_plan ~config ~src:enc ~dst ~mint ~named
                  (droots_of st) (roots_of st))
          in
          Buffer.add_string b
            (Format.asprintf "=== forward plan: %s (%s -> %s) ===@."
               st.Pres_c.os_client_name enc_label
               dtr.Backend_base.tr_name);
          Buffer.add_string b (forward_tier_line plan);
          Buffer.add_string b (Format.asprintf "%a@." Fplan.pp_plan plan);
          Buffer.add_string b (elision_summary plan)
      | Trace ->
          (* compile outside the cache so the passes actually run, and
             verify after each one: a trace that lies about plan health
             is worse than none *)
          let config = { config with Opt_config.verify = true } in
          Buffer.add_string b
            (Printf.sprintf "=== pass trace: %s (%s) ===\n"
               st.Pres_c.os_client_name enc_label);
          (* both compilation modes: the production chunked plan is
             born mostly optimal, so the per-datum trace is where the
             passes visibly earn their keep *)
          List.iter
            (fun (chunked, mode_label) ->
              let raw =
                guarded "marshal plan" (fun () ->
                    Plan_compile.compile ~enc ~mint ~named ~chunked
                      (roots_of st))
              in
              ignore
                (trace_one_side b
                   ~label:(Printf.sprintf "encode (%s)" mode_label)
                   ~nodes:(fun p -> Pass.encode_side.Pass.s_nodes p)
                   ~checks:(fun p -> Pass.encode_side.Pass.s_checks p)
                   (fun ~on_trace p -> Pass.run_encode ~config ~on_trace p)
                   raw);
              let draw =
                guarded "unmarshal plan" (fun () ->
                    Dplan_compile.compile ~enc ~mint ~named ~chunked
                      (droots_of st))
              in
              ignore
                (trace_one_side b
                   ~label:(Printf.sprintf "decode (%s)" mode_label)
                   ~nodes:(fun p -> Pass.decode_side.Pass.s_nodes p)
                   ~checks:(fun p -> Pass.decode_side.Pass.s_checks p)
                   (fun ~on_trace p -> Pass.run_decode ~config ~on_trace p)
                   draw))
            [ (true, "chunked"); (false, "per-datum") ])
    (select_stubs pc op);
  Buffer.contents b
