(** The Flick kit driver: pick a front end, a presentation generator and
    a back end, and run the pipeline (the "mix and match" of the paper's
    Figure 1).

    The MIG front end is conjoined with its own presentation generator,
    so selecting the MIG IDL fixes the presentation; the other two IDLs
    combine freely with the CORBA, rpcgen and Fluke presentations, and
    every presentation combines with every back end. *)

type idl = Idl_corba | Idl_onc | Idl_mig
type presentation =
  | Pres_corba
  | Pres_corba_len  (** section 2.2: explicit string-length parameters *)
  | Pres_rpcgen
  | Pres_fluke
  | Pres_mig
type backend = Back_iiop | Back_oncrpc | Back_mach3 | Back_fluke

val idl_of_string : string -> idl option
val presentation_of_string : string -> presentation option
val backend_of_string : string -> backend option

val idl_names : string list
val presentation_names : string list
val backend_names : string list

val parse_spec : idl -> file:string -> string -> Aoi.spec
(** Front end only (MIG is translated through its private contract). *)

val interfaces : idl -> file:string -> string -> string list
(** The fully qualified interface names available in a source file. *)

val present :
  idl -> presentation -> file:string -> source:string -> interface:string option ->
  Pres_c.t
(** Run front end and presentation generator.  [interface] selects one
    of {!interfaces} (written with "::"); default: the only interface,
    or an error if there are several. *)

val transport_of : backend -> Backend_base.transport

val compile :
  idl ->
  presentation ->
  backend ->
  file:string ->
  source:string ->
  interface:string option ->
  (string * string) list
(** The full pipeline; returns generated [(filename, contents)] pairs
    (header, client, server).  Pair with {!Runtime.write_to} to obtain a
    compilable directory. *)
