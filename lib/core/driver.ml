type idl = Idl_corba | Idl_onc | Idl_mig
type presentation = Pres_corba | Pres_corba_len | Pres_rpcgen | Pres_fluke | Pres_mig
type backend = Back_iiop | Back_oncrpc | Back_mach3 | Back_fluke

let idl_of_string = function
  | "corba" -> Some Idl_corba
  | "onc" | "oncrpc" | "rpcgen" -> Some Idl_onc
  | "mig" -> Some Idl_mig
  | _ -> None

let presentation_of_string = function
  | "corba-c" | "corba" -> Some Pres_corba
  | "corba-len-c" | "corba-len" -> Some Pres_corba_len
  | "rpcgen-c" | "rpcgen" -> Some Pres_rpcgen
  | "fluke-c" | "fluke" -> Some Pres_fluke
  | "mig-c" | "mig" -> Some Pres_mig
  | _ -> None

let backend_of_string = function
  | "iiop" -> Some Back_iiop
  | "oncrpc" | "xdr" -> Some Back_oncrpc
  | "mach3" | "mach" -> Some Back_mach3
  | "fluke" -> Some Back_fluke
  | _ -> None

let idl_names = [ "corba"; "onc"; "mig" ]
let presentation_names = [ "corba-c"; "corba-len-c"; "rpcgen-c"; "fluke-c"; "mig-c" ]
let backend_names = [ "iiop"; "oncrpc"; "mach3"; "fluke" ]

let parse_spec idl ~file source =
  Obs_trace.with_span ~cat:"frontend" ~args:[ ("file", file) ] "parse"
    (fun () ->
      match idl with
      | Idl_corba -> Corba_parser.parse ~file source
      | Idl_onc -> Onc_parser.parse ~file source
      | Idl_mig -> Presgen_mig.aoi_of_mig (Mig_parser.parse ~file source))

let interfaces idl ~file source =
  let spec = parse_spec idl ~file source in
  List.map (fun (q, _) -> Aoi.qname_to_string q) (Aoi.interfaces spec)

let qname_of_string s = String.split_on_char ':' s |> List.filter (fun x -> x <> "")

let pick_interface spec interface =
  let available = Aoi.interfaces spec in
  match interface with
  | Some name -> (
      let q = qname_of_string name in
      match List.find_opt (fun (q', _) -> q' = q) available with
      | Some (q', _) -> q'
      | None -> Diag.error "no interface named %s" name)
  | None -> (
      match available with
      | [ (q, _) ] -> q
      | [] -> Diag.error "the specification declares no interfaces"
      | _ ->
          Diag.error "several interfaces found (%s); choose one with --interface"
            (String.concat ", "
               (List.map (fun (q, _) -> Aoi.qname_to_string q) available)))

(* Span names trace the pipeline of PAPER.md figure 1: "parse" covers
   source -> AOI, "presgen" AOI -> PRES_C (MINT + PRES + CAST), and
   "backend" (in [compile]) PRES_C -> C stubs; plan compilation and the
   optimizer passes nest their own spans inside (see Plan_cache and
   Pass). *)
let present idl presentation ~file ~source ~interface =
  match (idl, presentation) with
  | Idl_mig, (Pres_mig | Pres_corba | Pres_corba_len | Pres_rpcgen | Pres_fluke) ->
      (* the MIG front end is conjoined with its presentation generator *)
      let spec =
        Obs_trace.with_span ~cat:"frontend" ~args:[ ("file", file) ] "parse"
          (fun () -> Mig_parser.parse ~file source)
      in
      Obs_trace.with_span ~cat:"frontend" ~args:[ ("pres", "mig-c") ]
        "presgen"
        (fun () -> Presgen_mig.generate spec)
  | (Idl_corba | Idl_onc), Pres_mig ->
      Diag.error "the MIG presentation only applies to MIG input"
  | (Idl_corba | Idl_onc), _ ->
      let spec = parse_spec idl ~file source in
      let q = pick_interface spec interface in
      let pres_name =
        List.nth presentation_names
          (match presentation with
          | Pres_corba -> 0
          | Pres_corba_len -> 1
          | Pres_rpcgen -> 2
          | Pres_fluke -> 3
          | Pres_mig -> assert false)
      in
      Obs_trace.with_span ~cat:"frontend" ~args:[ ("pres", pres_name) ]
        "presgen"
        (fun () ->
          match presentation with
          | Pres_corba -> Presgen_corba.generate spec q
          | Pres_corba_len -> Presgen_corba.generate_len spec q
          | Pres_rpcgen -> Presgen_rpcgen.generate spec q
          | Pres_fluke -> Presgen_fluke.generate spec q
          | Pres_mig -> assert false)

let transport_of = function
  | Back_iiop -> Be_iiop.transport
  | Back_oncrpc -> Be_xdr.transport
  | Back_mach3 -> Be_mach.transport
  | Back_fluke -> Be_fluke.transport

let compile idl presentation backend ~file ~source ~interface =
  let pc = present idl presentation ~file ~source ~interface in
  let backend_name =
    match backend with
    | Back_iiop -> "iiop"
    | Back_oncrpc -> "oncrpc"
    | Back_mach3 -> "mach3"
    | Back_fluke -> "fluke"
  in
  Obs_trace.with_span ~cat:"backend" ~args:[ ("backend", backend_name) ]
    "backend"
    (fun () ->
      match backend with
      | Back_iiop -> Be_iiop.generate pc
      | Back_oncrpc -> Be_xdr.generate pc
      | Back_mach3 -> Be_mach.generate pc
      | Back_fluke -> Be_fluke.generate pc)
