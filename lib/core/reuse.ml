type row = { component : string; lines : int; percent : float }
type phase = { phase_name : string; base_lines : int; rows : row list }

(* Count lines that contain something other than whitespace and
   comments.  OCaml comments nest. *)
let substantive_lines path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let count = ref 0 in
  let depth = ref 0 in
  let in_string = ref false in
  let line_has_code = ref false in
  let i = ref 0 in
  let len = String.length src in
  while !i < len do
    let c = src.[!i] in
    (if !in_string then begin
       if c = '\\' then incr i
       else if c = '"' then in_string := false;
       if !depth = 0 then line_has_code := true
     end
     else if !depth > 0 then begin
       if c = '(' && !i + 1 < len && src.[!i + 1] = '*' then begin
         incr depth;
         incr i
       end
       else if c = '*' && !i + 1 < len && src.[!i + 1] = ')' then begin
         decr depth;
         incr i
       end
     end
     else
       match c with
       | '(' when !i + 1 < len && src.[!i + 1] = '*' ->
           depth := 1;
           incr i
       (* a quote character literal must not open a string *)
       | '\'' when !i + 2 < len && src.[!i + 1] = '"' && src.[!i + 2] = '\'' ->
           line_has_code := true;
           i := !i + 2
       | '"' ->
           in_string := true;
           line_has_code := true
       | ' ' | '\t' | '\r' -> ()
       | '\n' -> ()
       | _ -> line_has_code := true);
    if c = '\n' then begin
      if !line_has_code then incr count;
      line_has_code := false
    end;
    incr i
  done;
  if !line_has_code then incr count;
  !count

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "lib") then dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith "Reuse.table1: cannot locate the lib directory"
    else find_root parent

let files_of root paths =
  List.concat_map
    (fun rel ->
      let dir = Filename.concat root (Filename.dirname rel) in
      let base = Filename.basename rel in
      if String.contains base '*' then
        (* "dir/*" means every .ml/.mli in dir *)
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
        |> List.map (Filename.concat dir)
      else
        List.filter Sys.file_exists
          [ Filename.concat root (rel ^ ".ml"); Filename.concat root (rel ^ ".mli") ])
    paths

let total root paths =
  List.fold_left (fun acc f -> acc + substantive_lines f) 0 (files_of root paths)

let table1 ?root () =
  let root = match root with Some r -> r | None -> find_root (Sys.getcwd ()) in
  let phase name base components =
    let base_lines = total root base in
    {
      phase_name = name;
      base_lines;
      rows =
        List.map
          (fun (component, paths) ->
            let lines = total root paths in
            {
              component;
              lines;
              percent = 100. *. float_of_int lines /. float_of_int (lines + base_lines);
            })
          components;
    }
  in
  [
    phase "Front End"
      [
        "lib/support/*"; "lib/frontend/idl_token"; "lib/frontend/idl_lexer";
        "lib/frontend/parser_util"; "lib/frontend/const_eval";
      ]
      [
        ("CORBA IDL", [ "lib/frontend/corba_parser" ]);
        ("ONC RPC IDL", [ "lib/frontend/onc_parser" ]);
        ("MIG", [ "lib/frontend/mig_parser" ]);
      ];
    phase "Pres. Gen."
      [ "lib/aoi/*"; "lib/mint/*"; "lib/pres/*"; "lib/presgen/presgen_base" ]
      [
        ("CORBA Pres.", [ "lib/presgen/presgen_corba" ]);
        ("Fluke Pres.", [ "lib/presgen/presgen_fluke" ]);
        ("ONC RPC rpcgen Pres.", [ "lib/presgen/presgen_rpcgen" ]);
        ("MIG Pres.", [ "lib/presgen/presgen_mig" ]);
      ];
    phase "Back End"
      [
        "lib/opt/*"; "lib/wire/*"; "lib/backend/cgen";
        "lib/backend/backend_base"; "lib/backend/runtime";
      ]
      [
        ("CORBA IIOP", [ "lib/backend/be_iiop" ]);
        ("ONC RPC XDR", [ "lib/backend/be_xdr" ]);
        ("Mach 3 IPC", [ "lib/backend/be_mach" ]);
        ("Fluke IPC", [ "lib/backend/be_fluke" ]);
      ];
  ]

let render phases =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 1: code reuse within the Flick reproduction (substantive OCaml \
     lines)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-22s %7s %8s\n" "Phase" "Component" "Lines" "%");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-22s %7d\n" p.phase_name "Base Library"
           p.base_lines);
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "%-12s %-22s %7d %7.1f%%\n" "" r.component r.lines
               r.percent))
        p.rows)
    phases;
  Buffer.contents buf
