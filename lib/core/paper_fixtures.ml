let mail_corba = "interface Mail { void send(in string msg); };"

let mail_onc =
  "program Mail { version MailVers { void send(string) = 1; } = 1; } = \
   0x20000001;"

let bench_idl =
  "struct stat_info { long fields[30]; char tag[16]; };\n\
   struct dirent { string name; stat_info info; };\n\
   struct coord { long x; long y; };\n\
   struct rect { coord min; coord max; };\n\
   typedef sequence<long> long_seq;\n\
   typedef sequence<rect> rect_seq;\n\
   typedef sequence<dirent> dirent_seq;\n\
   interface Bench {\n\
  \  void send_ints(in long_seq data);\n\
  \  void send_rects(in rect_seq data);\n\
  \  void send_dirents(in dirent_seq data);\n\
   };"

let dir_idl =
  "struct stat_info { long fields[30]; char tag[16]; };\n\
   struct dirent { string name; stat_info info; };\n\
   typedef sequence<dirent> dirent_seq;\n\
   exception NotFound { string why; };\n\
   interface Dir {\n\
  \  dirent_seq read_dir(in string path) raises (NotFound);\n\
  \  long entry_count(in string path);\n\
   };"

let bench_spec = lazy (Corba_parser.parse ~file:"bench.idl" bench_idl)
let dir_spec = lazy (Corba_parser.parse ~file:"dir.idl" dir_idl)

(* the rpcgen presentation cannot express exceptions (footnote 3), so
   its directory interface drops the raises clause *)
let dir_idl_noexc =
  "struct stat_info { long fields[30]; char tag[16]; };\n\
   struct dirent { string name; stat_info info; };\n\
   typedef sequence<dirent> dirent_seq;\n\
   interface Dir {\n\
  \  dirent_seq read_dir(in string path);\n\
  \  long entry_count(in string path);\n\
   };"

let dir_spec_noexc = lazy (Corba_parser.parse ~file:"dir.idl" dir_idl_noexc)

let bench_presc style =
  let spec = Lazy.force bench_spec in
  match style with
  | `Corba -> Presgen_corba.generate spec [ "Bench" ]
  | `Rpcgen -> Presgen_rpcgen.generate spec [ "Bench" ]
  | `Fluke -> Presgen_fluke.generate spec [ "Bench" ]

let dir_presc style =
  match style with
  | `Corba -> Presgen_corba.generate (Lazy.force dir_spec) [ "Dir" ]
  | `Rpcgen -> Presgen_rpcgen.generate (Lazy.force dir_spec_noexc) [ "Dir" ]

type method_spec = {
  ms_name : string;
  ms_mint : Mint.t;
  ms_named : (string * (Mint.idx * Pres.t)) list;
  ms_roots : Plan_compile.root list;
  ms_droots : Stub_opt.droot list;
}

let u32_kind = Encoding.Kint { bits = 32; signed = false }

let request_spec (pc : Pres_c.t) ~op =
  let st =
    match Pres_c.find_stub pc op with
    | Some st -> st
    | None -> invalid_arg ("Paper_fixtures.request_spec: no operation " ^ op)
  in
  let key_root, key_droot =
    match st.Pres_c.os_request_case with
    | Mint.Cstring s -> (Plan_compile.Rconst_str s, Stub_opt.Dconst_str s)
    | Mint.Cint n ->
        (Plan_compile.Rconst_int (n, u32_kind), Stub_opt.Dconst_int (n, u32_kind))
    | Mint.Cbool _ | Mint.Cchar _ ->
        invalid_arg "Paper_fixtures: unexpected request key"
  in
  let params =
    List.filter
      (fun (pi : Pres_c.param_info) ->
        match pi.Pres_c.pi_dir with
        | Aoi.In | Aoi.Inout -> true
        | Aoi.Out -> false)
      st.Pres_c.os_params
  in
  {
    ms_name = op;
    ms_mint = pc.Pres_c.pc_mint;
    ms_named = pc.Pres_c.pc_named;
    ms_roots =
      key_root
      :: List.mapi
           (fun i (pi : Pres_c.param_info) ->
             Plan_compile.Rvalue
               ( Mplan.Rparam { index = i; name = pi.Pres_c.pi_name; deref = false },
                 pi.Pres_c.pi_mint,
                 pi.Pres_c.pi_pres ))
           params;
    ms_droots =
      key_droot
      :: List.map
           (fun (pi : Pres_c.param_info) ->
             Stub_opt.Dvalue (pi.Pres_c.pi_mint, pi.Pres_c.pi_pres))
           params;
  }

let payload which ~bytes =
  match which with
  | `Ints -> Workload.int_array bytes
  | `Rects -> Workload.rect_array bytes
  | `Dirents -> Workload.dirent_array bytes

let op_of_payload = function
  | `Ints -> "send_ints"
  | `Rects -> "send_rects"
  | `Dirents -> "send_dirents"
