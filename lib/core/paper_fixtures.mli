(** The interfaces and workloads of the paper's evaluation (section 4).

    The tested methods: one taking an array of integers, one an array of
    rectangle structures (two coordinate pairs each), and one an array
    of variable-size directory entries (a name string plus a 136-byte
    stat-like structure, about 256 encoded bytes per entry).  All three
    live on one [Bench] interface; the [Mail] interface is the paper's
    introductory example. *)

val mail_corba : string
val mail_onc : string
val bench_idl : string
(** CORBA IDL for the [Bench] interface. *)

val dir_idl : string
(** The directory interface used for Table 2's object-code comparison. *)

val bench_presc : [ `Corba | `Rpcgen | `Fluke ] -> Pres_c.t
(** The [Bench] presentation under each style (all derived from the same
    AOI — the kit's cross-presentation flexibility at work). *)

val dir_presc : [ `Corba | `Rpcgen ] -> Pres_c.t

(** Engine-ready description of one operation's request message. *)
type method_spec = {
  ms_name : string;
  ms_mint : Mint.t;
  ms_named : (string * (Mint.idx * Pres.t)) list;
  ms_roots : Plan_compile.root list;
  ms_droots : Stub_opt.droot list;
}

val request_spec : Pres_c.t -> op:string -> method_spec
(** Raises if the operation does not exist. *)

val payload : [ `Ints | `Rects | `Dirents ] -> bytes:int -> Value.t
(** The three workloads, sized to approximately [bytes] of payload. *)

val op_of_payload : [ `Ints | `Rects | `Dirents ] -> string
