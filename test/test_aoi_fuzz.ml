(* Fuzzing the front-end loop: a random AOI specification, printed by
   Aoi_pp in CORBA-like syntax, must reparse through the CORBA front
   end into an equivalent specification. *)

module G = QCheck.Gen

let ident_gen prefix st =
  Printf.sprintf "%s%d" prefix (Random.State.int st 1000000)

(* random well-formed AOI types over a set of already-declared names *)
let rec typ_gen ?(allow_array = true) declared depth st : Aoi.typ =
  let leaf () =
    match Random.State.int st (if declared = [] then 6 else 7) with
    | 0 -> Aoi.Integer { bits = 32; signed = true }
    | 1 -> Aoi.Integer { bits = 16; signed = false }
    | 2 -> Aoi.Boolean
    | 3 -> Aoi.Char
    | 4 -> Aoi.Octet
    | 5 -> Aoi.String (if Random.State.bool st then Some 32 else None)
    | _ -> Aoi.Named [ List.nth declared (Random.State.int st (List.length declared)) ]
  in
  if depth >= 2 then leaf ()
  else
    match Random.State.int st (if allow_array then 6 else 5) with
    | 0 | 1 | 2 -> leaf ()
    (* CORBA cannot write an anonymous array as a sequence element *)
    | 3 ->
        Aoi.Sequence
          ( typ_gen ~allow_array:false declared (depth + 1) st,
            Some (1 + Random.State.int st 16) )
    | 5 -> Aoi.Array (typ_gen ~allow_array:false declared (depth + 1) st,
                      [ 1 + Random.State.int st 8 ])
    (* anonymous structs cannot be written inline in CORBA IDL; structs
       enter the generated specs as named declarations (see spec_gen) *)
    | _ -> leaf ()

let spec_gen st : Aoi.spec =
  let n_types = 1 + Random.State.int st 4 in
  let declared = ref [] in
  let defs = ref [] in
  for i = 0 to n_types - 1 do
    let name = Printf.sprintf "T%d_%s" i (ident_gen "x" st) in
    let ty =
      if Random.State.bool st then
        Aoi.Struct_type
          (List.init
             (1 + Random.State.int st 3)
             (fun k ->
               { Aoi.f_name = Printf.sprintf "m%d" k;
                 f_type = typ_gen !declared 0 st }))
      else typ_gen !declared 0 st
    in
    defs := Aoi.Dtype (name, ty) :: !defs;
    declared := name :: !declared
  done;
  let params =
    List.init
      (Random.State.int st 3)
      (fun i ->
        {
          Aoi.p_name = Printf.sprintf "p%d" i;
          p_dir =
            (match Random.State.int st 3 with
            | 0 -> Aoi.In
            | 1 -> Aoi.Out
            | _ -> Aoi.Inout);
          (* CORBA parameters cannot carry array declarators; arrays
             reach parameters only through typedefs *)
          p_type = typ_gen ~allow_array:false !declared 0 st;
        })
  in
  let intf =
    {
      Aoi.i_name = "I";
      i_parents = [];
      i_defs = [];
      i_ops =
        [
          {
            Aoi.op_name = "f";
            op_oneway = false;
            op_return = Aoi.Void;
            op_params = params;
            op_raises = [];
            op_code = 0L;
          };
        ];
      i_attrs = [];
      i_program = None;
    }
  in
  { Aoi.s_file = "<fuzz>"; s_defs = List.rev (Aoi.Dinterface intf :: !defs) }

(* structural comparison after one round trip; the reparse may hoist
   inline constructed types into named siblings, so compare the fully
   resolved shapes of the interface parameters instead of raw defs *)
let rec resolved_shape env scope (ty : Aoi.typ) : string =
  match ty with
  | Aoi.Void -> "void"
  | Aoi.Boolean -> "bool"
  | Aoi.Char -> "char"
  | Aoi.Octet -> "octet"
  | Aoi.Integer { bits; signed } -> Printf.sprintf "i%d%b" bits signed
  | Aoi.Float bits -> Printf.sprintf "f%d" bits
  | Aoi.String b -> Printf.sprintf "s%s" (match b with None -> "" | Some n -> string_of_int n)
  | Aoi.Sequence (t, b) ->
      Printf.sprintf "q%s(%s)"
        (match b with None -> "" | Some n -> string_of_int n)
        (resolved_shape env scope t)
  | Aoi.Array (t, dims) ->
      (* nested arrays and multi-dimension lists are the same shape *)
      let rec flatten t dims =
        match (t : Aoi.typ) with
        | Aoi.Array (inner, more) -> flatten inner (dims @ more)
        | _ -> (t, dims)
      in
      let base, dims = flatten t dims in
      Printf.sprintf "a%s(%s)"
        (String.concat "x" (List.map string_of_int dims))
        (resolved_shape env scope base)
  | Aoi.Struct_type fields ->
      Printf.sprintf "{%s}"
        (String.concat ";"
           (List.map
              (fun f ->
                f.Aoi.f_name ^ ":" ^ resolved_shape env scope f.Aoi.f_type)
              fields))
  | Aoi.Union_type _ -> "union"
  | Aoi.Enum_type names -> Printf.sprintf "e%d" (List.length names)
  | Aoi.Optional t -> Printf.sprintf "o(%s)" (resolved_shape env scope t)
  | Aoi.Object _ -> "objref"
  | Aoi.Named q -> (
      match Aoi_env.resolve env ~scope q with
      | Some (qn, Aoi_env.Btype body) ->
          resolved_shape env (match List.rev qn with [] -> [] | _ :: r -> List.rev r) body
      | Some (_, Aoi_env.Binterface _) -> "objref"
      | _ -> "?")

let shape_of_spec spec =
  let report = Aoi_check.check spec in
  let env = report.Aoi_check.env in
  match Aoi.interfaces spec with
  | [ (q, i) ] ->
      let scope = match List.rev q with [] -> [] | _ :: r -> List.rev r in
      String.concat ","
        (List.concat_map
           (fun op ->
             List.map
               (fun p ->
                 Printf.sprintf "%s/%s:%s" p.Aoi.p_name
                   (match p.Aoi.p_dir with
                   | Aoi.In -> "in"
                   | Aoi.Out -> "out"
                   | Aoi.Inout -> "inout")
                   (resolved_shape env (scope @ [ i.Aoi.i_name ]) p.Aoi.p_type))
               op.Aoi.op_params)
           i.Aoi.i_ops)
  | _ -> "<no single interface>"

let roundtrip_prop spec =
  let printed = Aoi_pp.spec_to_string spec in
  match Corba_parser.parse ~file:"<fuzz>" printed with
  | reparsed ->
      let before = shape_of_spec spec in
      let after = shape_of_spec reparsed in
      if before <> after then
        QCheck.Test.fail_reportf
          "shapes differ@.before: %s@.after: %s@.--- printed ---@.%s" before
          after printed
      else true
  | exception Diag.Error d ->
      QCheck.Test.fail_reportf "reparse failed: %s@.--- printed ---@.%s"
        (Diag.to_string d) printed

let suite =
  [
    ( "aoi:fuzz",
      [
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make ~count:200
             ~name:"printed AOI reparses with identical parameter shapes"
             (QCheck.make ~print:Aoi_pp.spec_to_string spec_gen)
             roundtrip_prop);
      ] );
  ]
