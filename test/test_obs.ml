(* The observability layer: metrics registry, histogram percentiles,
   span tracer, and both exporters — with every exported timing coming
   from the injectable fake clock, and the exporters' JSON re-parsed by
   the repo's own reader (Obs_json) rather than eyeballed. *)

let test name f = Alcotest.test_case name `Quick f

let fl = Alcotest.float 1e-9

(* Registration is global and first-come-owns-the-name, so every test
   registers under a unique "test.obs." name. *)

(* -- clock ----------------------------------------------------------- *)

let clock_tests =
  [
    test "fake clock steps deterministically" (fun () ->
        Obs.with_clock
          (Obs.fake_clock ~start:100. ~step:10. ())
          (fun () ->
            Alcotest.check fl "first reading" 100. (Obs.now_ns ());
            Alcotest.check fl "second reading" 110. (Obs.now_ns ());
            Alcotest.check fl "third reading" 120. (Obs.now_ns ())));
    test "with_clock restores the previous clock on exception" (fun () ->
        let before = Obs.clock () in
        (try
           Obs.with_clock (Obs.fake_clock ()) (fun () -> failwith "boom")
         with Failure _ -> ());
        Alcotest.(check bool) "restored" true (Obs.clock () == before));
  ]

(* -- instruments ----------------------------------------------------- *)

let instrument_tests =
  [
    test "registering a name twice raises Duplicate_metric" (fun () ->
        ignore (Obs.counter "test.obs.dup");
        Alcotest.check_raises "counter" (Obs.Duplicate_metric "test.obs.dup")
          (fun () -> ignore (Obs.counter "test.obs.dup"));
        (* the namespace is shared across instrument kinds *)
        Alcotest.check_raises "hist" (Obs.Duplicate_metric "test.obs.dup")
          (fun () -> ignore (Obs.hist "test.obs.dup"));
        Alcotest.check_raises "probe" (Obs.Duplicate_metric "test.obs.dup")
          (fun () -> Obs.probe "test.obs.dup" (fun () -> [])));
    test "counter accumulates; gauge tracks its high-water mark" (fun () ->
        let c = Obs.counter "test.obs.ctr" in
        Obs.incr c 3;
        Obs.incr c 4;
        Alcotest.(check int) "counter" 7 (Obs.counter_value c);
        let g = Obs.gauge "test.obs.gauge" in
        Obs.set_gauge g 5.;
        Obs.set_gauge g 2.;
        Alcotest.check fl "value is the last set" 2. (Obs.gauge_value g);
        Alcotest.check fl "high water survives" 5. (Obs.gauge_high_water g));
  ]

(* -- histogram percentile edges -------------------------------------- *)

let hist_tests =
  [
    test "empty histogram reports zeros" (fun () ->
        let h = Obs.hist "test.obs.h.empty" in
        Alcotest.check fl "p50" 0. (Obs.percentile h 0.5);
        let s = Obs.hist_summary h in
        Alcotest.(check int) "count" 0 s.Obs.count;
        Alcotest.check fl "sum" 0. s.Obs.sum);
    test "single sample reports itself at every percentile" (fun () ->
        let h = Obs.hist "test.obs.h.single" in
        Obs.observe h 5000.;
        List.iter
          (fun q ->
            Alcotest.check fl
              (Printf.sprintf "p%.0f" (q *. 100.))
              5000. (Obs.percentile h q))
          [ 0.5; 0.9; 0.99 ]);
    test "overflow bucket reports the true maximum" (fun () ->
        let h = Obs.hist "test.obs.h.overflow" in
        (* 1e30 is far beyond bucket 62 (2^62 ~ 4.6e18): lands in the
           overflow bucket, whose percentile must be the observed max,
           not a bucket boundary *)
        Obs.observe h 1e30;
        Obs.observe h 2e30;
        Alcotest.check fl "p99 = max" 2e30 (Obs.percentile h 0.99);
        let s = Obs.hist_summary h in
        Alcotest.check fl "max" 2e30 s.Obs.max;
        Alcotest.check fl "min" 1e30 s.Obs.min);
    test "percentiles are clamped into [min, max]" (fun () ->
        let h = Obs.hist "test.obs.h.clamp" in
        List.iter (Obs.observe h) [ 3.; 5.; 6.; 100.; 300. ];
        List.iter
          (fun q ->
            let v = Obs.percentile h q in
            Alcotest.(check bool)
              (Printf.sprintf "p%.0f=%g within [3, 300]" (q *. 100.) v)
              true
              (v >= 3. && v <= 300.))
          [ 0.01; 0.5; 0.9; 0.99 ];
        Alcotest.(check bool)
          "p50 <= p99" true
          (Obs.percentile h 0.5 <= Obs.percentile h 0.99));
    test "sub-bucket interpolation pins exact quantiles across buckets"
      (fun () ->
        (* 4 samples in (8, 16] and 6 in (16, 32]; ranks interpolate
           linearly inside each bucket: p50 is rank 5, the 1st of 6 in
           (16, 32] -> 16 + 1/6 * 16; p90 is rank 9, the 5th of 6 ->
           16 + 5/6 * 16; p99 is rank 10, the last -> the bucket's
           upper bound, which is also the observed max *)
        let h = Obs.hist "test.obs.h.interp" in
        List.iter (Obs.observe h)
          [ 9.; 10.; 12.; 16.; 17.; 20.; 24.; 28.; 30.; 32. ];
        Alcotest.check fl "p50" (16. +. (16. /. 6.)) (Obs.percentile h 50.);
        Alcotest.check fl "p90" (16. +. (5. /. 6. *. 16.))
          (Obs.percentile h 90.);
        Alcotest.check fl "p99" 32. (Obs.percentile h 99.);
        let s = Obs.hist_summary h in
        Alcotest.check fl "summary p50" (16. +. (16. /. 6.)) s.Obs.p50;
        Alcotest.check fl "summary p90" (16. +. (5. /. 6. *. 16.)) s.Obs.p90);
    test "one-bucket distribution recovers sub-bucket resolution"
      (fun () ->
        (* all 10 samples land in (1024, 2048] — the shape of a tight
           latency distribution.  Without interpolation every quantile
           would report the bucket bound 2048; with it, p50 reads the
           bucket midpoint and p99 clamps to the observed max *)
        let h = Obs.hist "test.obs.h.tight" in
        List.iter
          (fun i -> Obs.observe h (1100. +. (100. *. float_of_int i)))
          [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
        Alcotest.check fl "p50 = bucket midpoint" 1536.
          (Obs.percentile h 50.);
        Alcotest.check fl "p90" (1024. +. (0.9 *. 1024.))
          (Obs.percentile h 90.);
        Alcotest.check fl "p99 clamps to the observed max" 2000.
          (Obs.percentile h 99.));
  ]

(* -- span tracer ------------------------------------------------------ *)

(* Tracing is process-global: each test enables it, runs under the fake
   clock, and restores the disabled default. *)
let traced f =
  Obs_trace.clear ();
  Obs_trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs_trace.set_enabled false;
      Obs_trace.clear ())
    (fun () -> Obs.with_clock (Obs.fake_clock ()) f)

let span_tests =
  [
    test "spans nest and record depth and fake-clock durations" (fun () ->
        traced (fun () ->
            Obs_trace.with_span "outer" (fun () ->
                Alcotest.(check int) "depth inside outer" 1 (Obs_trace.depth ());
                Obs_trace.with_span ~cat:"inner-cat" "inner" (fun () ->
                    Alcotest.(check int) "depth inside inner" 2
                      (Obs_trace.depth ()));
                Alcotest.(check int) "depth after inner" 1 (Obs_trace.depth ()));
            Alcotest.(check int) "depth at top" 0 (Obs_trace.depth ());
            match Obs_trace.events () with
            | [ inner; outer ] ->
                (* completion order: inner closes first *)
                Alcotest.(check string) "inner name" "inner"
                  inner.Obs_trace.ev_name;
                Alcotest.(check string) "inner cat" "inner-cat"
                  inner.Obs_trace.ev_cat;
                Alcotest.(check int) "inner depth" 1 inner.Obs_trace.ev_depth;
                Alcotest.(check string) "outer name" "outer"
                  outer.Obs_trace.ev_name;
                Alcotest.(check int) "outer depth" 0 outer.Obs_trace.ev_depth;
                (* fake clock: one reading per enter/leave, step 1000 —
                   inner spans one step, outer three *)
                Alcotest.check fl "inner dur" 1000. inner.Obs_trace.ev_dur_ns;
                Alcotest.check fl "outer dur" 3000. outer.Obs_trace.ev_dur_ns;
                Alcotest.(check bool)
                  "outer starts before inner" true
                  (outer.Obs_trace.ev_ts_ns < inner.Obs_trace.ev_ts_ns)
            | evs ->
                Alcotest.failf "expected 2 events, got %d" (List.length evs)));
    test "leaving a non-innermost span raises Unbalanced_span" (fun () ->
        traced (fun () ->
            let a = Obs_trace.enter "a" in
            let b = Obs_trace.enter "b" in
            Alcotest.check_raises "unbalanced" (Obs_trace.Unbalanced_span "a")
              (fun () -> Obs_trace.leave a);
            Obs_trace.leave b;
            Obs_trace.leave a));
    test "with_span pops without recording when the body raises" (fun () ->
        traced (fun () ->
            (try Obs_trace.with_span "doomed" (fun () -> failwith "boom")
             with Failure _ -> ());
            Alcotest.(check int) "no event recorded" 0
              (List.length (Obs_trace.events ()));
            Alcotest.(check int) "scope rebalanced" 0 (Obs_trace.depth ())));
    test "disabled tracer records nothing" (fun () ->
        Obs_trace.clear ();
        Obs_trace.with_span "invisible" (fun () -> ());
        Obs_trace.emit ~name:"also-invisible" ~ts_ns:0. ~dur_ns:1. ();
        Alcotest.(check int) "no events" 0 (List.length (Obs_trace.events ())));
  ]

(* -- exporters, re-parsed with Obs_json ------------------------------- *)

let member_exn what name j =
  match Obs_json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %S" what name

let exporter_tests =
  [
    test "Chrome trace JSON parses back with the span structure" (fun () ->
        traced (fun () ->
            Obs_trace.with_span ~cat:"frontend"
              ~args:[ ("file", "a\"b.idl") ]
              "parse"
              (fun () -> Obs_trace.with_span ~cat:"opt" "pass:x" (fun () -> ()));
            let s = Obs_trace.to_chrome_json () in
            match Obs_json.parse s with
            | Error msg -> Alcotest.failf "invalid trace JSON: %s" msg
            | Ok j -> (
                match
                  Obs_json.to_list (member_exn "trace" "traceEvents" j)
                with
                | Some [ inner; outer ] ->
                    let str name ev =
                      match Obs_json.to_string (member_exn "event" name ev) with
                      | Some s -> s
                      | None -> Alcotest.failf "%s is not a string" name
                    in
                    let num name ev =
                      match Obs_json.to_float (member_exn "event" name ev) with
                      | Some f -> f
                      | None -> Alcotest.failf "%s is not a number" name
                    in
                    Alcotest.(check string) "ph" "X" (str "ph" inner);
                    Alcotest.(check string) "name" "pass:x" (str "name" inner);
                    Alcotest.(check string) "cat" "opt" (str "cat" inner);
                    Alcotest.(check string) "outer name" "parse"
                      (str "name" outer);
                    (* fake clock, exported in microseconds: inner spans
                       one 1000ns step = 1us *)
                    Alcotest.check fl "inner dur us" 1. (num "dur" inner);
                    Alcotest.check fl "outer dur us" 3. (num "dur" outer);
                    Alcotest.check fl "pid" 1. (num "pid" outer);
                    (* args round-trip, including the escaped quote *)
                    let args = member_exn "event" "args" outer in
                    Alcotest.(check (option string))
                      "args.file" (Some "a\"b.idl")
                      (Option.bind (Obs_json.member "file" args)
                         Obs_json.to_string)
                | Some evs ->
                    Alcotest.failf "expected 2 events, got %d"
                      (List.length evs)
                | None -> Alcotest.fail "traceEvents is not an array")));
    test "metrics JSONL parses back line by line" (fun () ->
        let c = Obs.counter "test.obs.jsonl.ctr" in
        Obs.incr c 42;
        let h = Obs.hist "test.obs.jsonl.h" in
        Obs.observe h 7.;
        let lines =
          List.filter
            (fun l -> l <> "")
            (String.split_on_char '\n' (Obs.to_jsonl ()))
        in
        Alcotest.(check bool) "has lines" true (List.length lines > 0);
        let parsed =
          List.map
            (fun l ->
              match Obs_json.parse l with
              | Ok j -> j
              | Error msg -> Alcotest.failf "bad JSONL line %S: %s" l msg)
            lines
        in
        let find name =
          List.find_opt
            (fun j ->
              Obs_json.member "metric" j
              |> Option.fold ~none:false ~some:(fun m ->
                     Obs_json.to_string m = Some name))
            parsed
        in
        (match find "test.obs.jsonl.ctr" with
        | Some j ->
            Alcotest.(check (option (float 1e-9)))
              "counter value" (Some 42.)
              (Option.bind (Obs_json.member "value" j) Obs_json.to_float)
        | None -> Alcotest.fail "counter line missing");
        match find "test.obs.jsonl.h" with
        | Some j ->
            Alcotest.(check (option (float 1e-9)))
              "hist count" (Some 1.)
              (Option.bind (Obs_json.member "count" j) Obs_json.to_float)
        | None -> Alcotest.fail "histogram line missing");
    test "render_table lists instruments in registration order" (fun () ->
        let _ = Obs.counter "test.obs.table.a" in
        let _ = Obs.counter "test.obs.table.b" in
        let t = Obs.render_table () in
        let idx needle =
          let n = String.length t and m = String.length needle in
          let rec go i = if i + m > n then -1
            else if String.sub t i m = needle then i else go (i + 1)
          in
          go 0
        in
        let a = idx "test.obs.table.a" and b = idx "test.obs.table.b" in
        Alcotest.(check bool) "both present, a before b" true
          (a >= 0 && b >= 0 && a < b));
  ]

(* -- the instrumented compile pipeline -------------------------------- *)

let pipeline_tests =
  [
    test "compiling traces every front-end stage and optimizer pass"
      (fun () ->
        traced (fun () ->
            ignore
              (Driver.compile Driver.Idl_corba Driver.Pres_corba
                 Driver.Back_oncrpc ~file:"bench.idl"
                 ~source:Paper_fixtures.bench_idl ~interface:None);
            let names =
              List.map
                (fun e -> e.Obs_trace.ev_name)
                (Obs_trace.events ())
            in
            List.iter
              (fun stage ->
                Alcotest.(check bool)
                  (stage ^ " span present") true (List.mem stage names))
              [ "parse"; "presgen"; "backend"; "plan-compile" ];
            List.iter
              (fun pass ->
                Alcotest.(check bool)
                  ("pass:" ^ pass ^ " span present") true
                  (List.mem ("pass:" ^ pass) names))
              Pass.encode_pass_names;
            (* stage spans nest under the compile, pass spans under
               plan-compile: depths prove the scopes really nested *)
            List.iter
              (fun e ->
                if e.Obs_trace.ev_name = "plan-compile" then
                  Alcotest.(check bool) "plan-compile nested under backend"
                    true
                    (e.Obs_trace.ev_depth >= 1))
              (Obs_trace.events ())));
  ]

let suite =
  [
    ("obs:clock", clock_tests);
    ("obs:instruments", instrument_tests);
    ("obs:histograms", hist_tests);
    ("obs:spans", span_tests);
    ("obs:exporters", exporter_tests);
    ("obs:pipeline", pipeline_tests);
  ]
