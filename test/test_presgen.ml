(* Tests for the presentation generators (AOI -> PRES_C). *)

let mail_idl = "interface Mail { void send(in string msg); };"

let mail_x =
  "program Mail { version MailVers { void send(string) = 1; } = 1; } = \
   0x20000001;"

(* The directory interface used throughout the paper's evaluation. *)
let dir_idl =
  "struct stat_info { long fields[30]; char tag[16]; };\n\
   struct dirent { string name; stat_info info; };\n\
   typedef sequence<dirent> dirent_seq;\n\
   interface Dir {\n\
  \  dirent_seq read_dir(in string path);\n\
   };"

let test name f = Alcotest.test_case name `Quick f

let corba_tests =
  [
    test "Mail presents as Mail_send with obj and env params" (fun () ->
        let spec = Corba_parser.parse ~file:"mail.idl" mail_idl in
        let pc = Presgen_corba.generate spec [ "Mail" ] in
        Alcotest.(check string) "name" "Mail" pc.Pres_c.pc_name;
        let st = List.hd pc.Pres_c.pc_stubs in
        Alcotest.(check string) "stub" "Mail_send" st.Pres_c.os_client_name;
        Alcotest.(check bool)
          "request keyed by op name" true
          (st.Pres_c.os_request_case = Mint.Cstring "send");
        (* header must contain the stub prototype with obj first, env last *)
        let header = Cast_pp.file pc.Pres_c.pc_decls in
        Alcotest.(check bool)
          "prototype printed" true
          (let expected =
             "void Mail_send(Mail _obj, char *msg, flick_env_t *_ev);"
           in
           let found = ref false in
           String.split_on_char '\n' header
           |> List.iter (fun l -> if l = expected then found := true);
           !found))
    ;
    test "paper directory interface presents and validates" (fun () ->
        let spec = Corba_parser.parse ~file:"dir.idl" dir_idl in
        let pc = Presgen_corba.generate spec [ "Dir" ] in
        Alcotest.(check bool) "validates" true (Pres_c.validate pc = Ok ());
        let st = List.hd pc.Pres_c.pc_stubs in
        (match st.Pres_c.os_return with
        | Some r ->
            Alcotest.(check bool) "returns pointer" true r.Pres_c.pi_byref
        | None -> Alcotest.fail "expected a return value");
        (* the sequence must present as a counted struct *)
        let header = Cast_pp.file pc.Pres_c.pc_decls in
        Alcotest.(check bool)
          "sequence struct emitted" true
          (let contains hay needle =
             let nl = String.length needle and hl = String.length hay in
             let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
             go 0
           in
           contains header "uint32_t _length;"))
    ;
    test "CORBA presentation rejects self-referential types" (fun () ->
        let spec =
          Onc_parser.parse ~file:"list.x"
            "struct node { int v; node *next; }; program P { version V { \
             node *get(void) = 1; } = 1; } = 9;"
        in
        match Presgen_corba.generate spec [ "P"; "V" ] with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ())
    ;
    test "exceptions produce a status reply union" (fun () ->
        let spec =
          Corba_parser.parse ~file:"exc.idl"
            "exception NotFound { string why; }; interface I { long f(in \
             long x) raises (NotFound); };"
        in
        let pc = Presgen_corba.generate spec [ "I" ] in
        let st = List.hd pc.Pres_c.pc_stubs in
        Alcotest.(check int) "one exception" 1 (List.length st.Pres_c.os_exceptions);
        let wire, _ = List.hd st.Pres_c.os_exceptions in
        Alcotest.(check string) "wire name" "NotFound" wire)
    ;
    test "attributes become stubs" (fun () ->
        let spec =
          Corba_parser.parse ~file:"attr.idl"
            "interface I { attribute long x; readonly attribute string n; };"
        in
        let pc = Presgen_corba.generate spec [ "I" ] in
        Alcotest.(check (list string))
          "stub names"
          [ "I__get_x"; "I__set_x"; "I__get_n" ]
          (List.map (fun s -> s.Pres_c.os_client_name) pc.Pres_c.pc_stubs))
    ;
    test "interface inheritance pulls in parent operations" (fun () ->
        let spec =
          Corba_parser.parse ~file:"inh.idl"
            "interface A { void f(); }; interface B : A { void g(); };"
        in
        let pc = Presgen_corba.generate spec [ "B" ] in
        Alcotest.(check (list string))
          "ops" [ "B_f"; "B_g" ]
          (List.map (fun s -> s.Pres_c.os_client_name) pc.Pres_c.pc_stubs))
    ;
  ]

let rpcgen_tests =
  [
    test "Mail presents rpcgen-style" (fun () ->
        let spec = Onc_parser.parse ~file:"mail.x" mail_x in
        let pc = Presgen_rpcgen.generate spec [ "Mail"; "MailVers" ] in
        let st = List.hd pc.Pres_c.pc_stubs in
        Alcotest.(check string) "stub" "send_1" st.Pres_c.os_client_name;
        Alcotest.(check string) "server" "send_1_svc" st.Pres_c.os_server_name;
        Alcotest.(check bool)
          "request keyed by proc number" true
          (st.Pres_c.os_request_case = Mint.Cint 1L);
        Alcotest.(check bool)
          "program recorded" true
          (pc.Pres_c.pc_program = Some (0x20000001L, 1L)))
    ;
    test "rpcgen presentation accepts self-referential types" (fun () ->
        let spec =
          Onc_parser.parse ~file:"list.x"
            "struct node { int v; node *next; }; program P { version V { \
             node *get(void) = 1; } = 1; } = 9;"
        in
        let pc = Presgen_rpcgen.generate spec [ "P"; "V" ] in
        Alcotest.(check bool) "has named presentation" true
          (List.mem_assoc "node" pc.Pres_c.pc_named);
        Alcotest.(check bool) "validates" true (Pres_c.validate pc = Ok ()))
    ;
    test "rpcgen presentation rejects CORBA exceptions" (fun () ->
        let spec =
          Corba_parser.parse ~file:"exc.idl"
            "exception E { long c; }; interface I { void f() raises (E); };"
        in
        match Presgen_rpcgen.generate spec [ "I" ] with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ())
    ;
    test "cross-IDL: CORBA input through rpcgen presentation" (fun () ->
        let spec = Corba_parser.parse ~file:"mail.idl" mail_idl in
        let pc = Presgen_rpcgen.generate spec [ "Mail" ] in
        let st = List.hd pc.Pres_c.pc_stubs in
        Alcotest.(check string) "stub" "send_1" st.Pres_c.os_client_name;
        Alcotest.(check bool) "keyed by code" true
          (st.Pres_c.os_request_case = Mint.Cint 0L))
    ;
    test "cross-IDL: ONC input through CORBA presentation" (fun () ->
        let spec = Onc_parser.parse ~file:"mail.x" mail_x in
        let pc = Presgen_corba.generate spec [ "Mail"; "MailVers" ] in
        let st = List.hd pc.Pres_c.pc_stubs in
        Alcotest.(check string) "stub" "Mail_MailVers_send"
          st.Pres_c.os_client_name)
    ;
  ]

let fluke_tests =
  [
    test "fluke presentation keys requests by message id" (fun () ->
        let spec = Corba_parser.parse ~file:"mail.idl" mail_idl in
        let pc = Presgen_fluke.generate spec [ "Mail" ] in
        let st = List.hd pc.Pres_c.pc_stubs in
        Alcotest.(check bool) "int key" true
          (st.Pres_c.os_request_case = Mint.Cint 0L);
        Alcotest.(check bool) "style" true (pc.Pres_c.pc_style = Pres_c.Fluke))
    ;
  ]

let mint_tests =
  [
    test "request union shape for the directory interface" (fun () ->
        let spec = Corba_parser.parse ~file:"dir.idl" dir_idl in
        let pc = Presgen_corba.generate spec [ "Dir" ] in
        match Mint.get pc.Pres_c.pc_mint pc.Pres_c.pc_request with
        | Mint.Union { cases; _ } ->
            Alcotest.(check int) "one op" 1 (List.length cases);
            let case = List.hd cases in
            (match Mint.get pc.Pres_c.pc_mint case.Mint.c_body with
            | Mint.Struct [ ("path", p) ] -> (
                match Mint.get pc.Pres_c.pc_mint p with
                | Mint.Array { min_len = 0; max_len = None; _ } -> ()
                | _ -> Alcotest.fail "path should be an unbounded array")
            | _ -> Alcotest.fail "request case should be a struct of params")
        | _ -> Alcotest.fail "request should be a union")
    ;
    test "mint hash-consing shares nodes" (fun () ->
        let m = Mint.create () in
        let a = Mint.int32 m in
        let b = Mint.int_ m ~bits:32 ~signed:true in
        Alcotest.(check bool) "same node" true (a = b);
        let s1 = Mint.struct_ m [ ("x", a); ("y", b) ] in
        let s2 = Mint.struct_ m [ ("x", b); ("y", a) ] in
        Alcotest.(check bool) "same struct" true (s1 = s2))
    ;
    test "reserve/set builds cyclic types" (fun () ->
        let m = Mint.create () in
        let node = Mint.reserve m in
        let next = Mint.array m ~elem:node ~min_len:0 ~max_len:(Some 1) in
        Mint.set m node (Mint.Struct [ ("v", Mint.int32 m); ("next", next) ]);
        match Mint.get m node with
        | Mint.Struct [ _; ("next", n) ] -> (
            match Mint.get m n with
            | Mint.Array { elem; _ } ->
                Alcotest.(check bool) "cycle closed" true (elem = node)
            | _ -> Alcotest.fail "next should be an array")
        | _ -> Alcotest.fail "node should be a struct")
    ;
  ]

let suite =
  [
    ("presgen:corba", corba_tests);
    ("presgen:rpcgen", rpcgen_tests);
    ("presgen:fluke", fluke_tests);
    ("presgen:mint", mint_tests);
  ]
