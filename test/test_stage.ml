(* Differential coverage for the tier-1 staged plan specializer
   (Plan_stage / Dplan_stage and the tiered closures in Stub_opt).

   For >= 500 random (MINT, PRES) cases per paper encoding:

   1. every subroutine-free plan has a flat-closure form, and the
      staged encoder produces bytes identical to the tier-0 plan
      executor and the rpcgen-style engine;
   2. the staged decoder recovers the encoded value (Value.equal) and
      consumes the whole message, exactly like tier 0;
   3. truncated prefixes and a corrupted byte keep the two decode
      tiers in agreement: both fail (Short_buffer / Decode_error) or
      both succeed on the same value.

   Unit tests pin the promotion machinery itself: the per-fingerprint
   hotness counter promotes an encoder and a decoder exactly at the
   configured threshold (the first N calls run interpreted, every
   later call staged, bytes and values unchanged across the
   boundary); a threshold of 1 promotes on the very first call;
   recursive plans decline staging, are counted under stage.fallbacks,
   and still marshal correctly at tier 0; and a serve workload driven
   across a mid-run promotion returns every pooled buffer. *)

let rng = Random.State.make [| 0x57a6ed |]

(* The stage counters are private to Stub_opt; read them back by name
   from the registry snapshot. *)
let counter name =
  List.fold_left
    (fun acc s ->
      match s with Obs.Scounter (n, v) when n = name -> v | _ -> acc)
    0 (Obs.snapshot ())

let tiers () =
  ( counter "stage.interp_calls",
    counter "stage.promotions",
    counter "stage.staged_calls" )

let encode_to (e : Stub_opt.encoder) v =
  let buf = Mbuf.create 64 in
  e buf [| v |];
  Bytes.to_string (Mbuf.contents buf)

type outcome = Ok_value of Value.t | Failed

let run_dec (d : Stub_opt.decoder) (wire : bytes) : outcome =
  match d (Mbuf.reader_of_bytes wire) with
  | [| v |] -> Ok_value v
  | _ -> Failed
  | exception (Mbuf.Short_buffer | Codec.Decode_error _) -> Failed

let same_outcome a b =
  match (a, b) with
  | Ok_value x, Ok_value y -> Value.equal x y
  | Failed, Failed -> true
  | Ok_value _, Failed | Failed, Ok_value _ -> false

let pp_outcome fmt = function
  | Ok_value v -> Format.fprintf fmt "ok %a" Value.pp v
  | Failed -> Format.pp_print_string fmt "failed"

let dplan_droots (c : Test_engines.case) =
  [ Dplan_compile.Dvalue (c.Test_engines.idx, c.Test_engines.pres) ]

(* -- staged == tier 0 == naive, on good and bad input ---------------- *)

let staged_prop enc (c : Test_engines.case) =
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let v =
    Workload.random rng mint ~named c.Test_engines.idx c.Test_engines.pres
  in
  let plan = Plan_cache.plan ~enc ~mint ~named (Test_engines.roots_of c) in
  let staged =
    match Stub_opt.staged_encoder_of_plan ~enc plan with
    | Some e -> e
    | None ->
        QCheck.Test.fail_reportf
          "subroutine-free plan has no flat closure on %s" c.Test_engines.label
  in
  let tier0 = Stub_opt.encoder_of_plan ~enc plan in
  let b1 = encode_to staged v and b0 = encode_to tier0 v in
  if b1 <> b0 then
    QCheck.Test.fail_reportf "staged/tier-0 bytes differ on %s:@.%s@.%s"
      c.Test_engines.label (Test_engines.hex b1) (Test_engines.hex b0);
  let naive =
    Test_engines.encode_with
      (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
      enc c (Test_engines.roots_of c) v
  in
  if b1 <> naive then
    QCheck.Test.fail_reportf "staged/naive bytes differ on %s:@.%s@.%s"
      c.Test_engines.label (Test_engines.hex b1) (Test_engines.hex naive);
  let dplan = Plan_cache.dplan ~enc ~mint ~named (dplan_droots c) in
  let dec1 =
    match Stub_opt.staged_decoder_of_dplan ~enc dplan with
    | Some d -> d
    | None ->
        QCheck.Test.fail_reportf
          "subroutine-free decode plan has no flat closure on %s"
          c.Test_engines.label
  in
  let dec0 = Stub_opt.decoder_of_dplan ~enc dplan in
  let wire = Bytes.of_string b1 in
  (* well-formed input: the staged decode recovers the value and
     consumes the whole message, and tier 0 agrees *)
  let r = Mbuf.reader_of_bytes wire in
  (match dec1 r with
  | [| v' |] ->
      if not (Value.equal v v') then
        QCheck.Test.fail_reportf "staged decode mismatch on %s:@.%a@.%a"
          c.Test_engines.label Value.pp v Value.pp v';
      if Mbuf.remaining r <> 0 then
        QCheck.Test.fail_reportf "staged decode left trailing bytes on %s"
          c.Test_engines.label
  | _ -> QCheck.Test.fail_reportf "wrong arity on %s" c.Test_engines.label);
  (match run_dec dec0 wire with
  | Ok_value v' when Value.equal v v' -> ()
  | out ->
      QCheck.Test.fail_reportf "tier-0 decode disagrees on %s: %a"
        c.Test_engines.label pp_outcome out);
  (* truncation parity between the tiers *)
  let n = Bytes.length wire in
  List.iter
    (fun cut ->
      if cut >= 0 && cut < n then begin
        let prefix = Bytes.sub wire 0 cut in
        let a = run_dec dec1 prefix and b = run_dec dec0 prefix in
        if not (same_outcome a b) then
          QCheck.Test.fail_reportf
            "truncation at %d/%d disagrees on %s: staged %a, tier-0 %a" cut n
            c.Test_engines.label pp_outcome a pp_outcome b
      end)
    [ n - 1; n / 2; (if n > 0 then Random.State.int rng n else -1) ];
  (* corruption parity: a flipped bit lands on discriminators, bools,
     counts, ... and must fail (or not) identically in both tiers *)
  if n > 0 then begin
    let corrupt = Bytes.copy wire in
    let at = Random.State.int rng n in
    Bytes.set corrupt at
      (Char.chr
         (Char.code (Bytes.get corrupt at) lxor (1 lsl Random.State.int rng 8)));
    let a = run_dec dec1 corrupt and b = run_dec dec0 corrupt in
    if not (same_outcome a b) then
      QCheck.Test.fail_reportf
        "corrupt byte %d disagrees on %s: staged %a, tier-0 %a" at
        c.Test_engines.label pp_outcome a pp_outcome b
  end;
  true

let qtest name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name Test_engines.arbitrary_case prop)

let property_tests =
  List.map
    (fun enc ->
      qtest
        (enc.Encoding.name ^ ": staged tier agrees with tier 0 and naive")
        (staged_prop enc))
    Encoding.all

(* -- promotion machinery --------------------------------------------- *)

(* Each deterministic test below picks a threshold used nowhere else in
   the suite: the threshold is part of the stage fingerprint and so of
   the closure-cache key, giving the test a fresh hotness counter no
   matter what ran before it. *)
let with_stage ~threshold f =
  Fun.protect ~finally:Opt_config.clear_stage_override (fun () ->
      Opt_config.set_stage_enabled true;
      Opt_config.set_stage_threshold threshold;
      f ())

let case_for seed = Test_engines.gen_case (Random.State.make [| seed |])

let promotion_encode_test () =
  with_stage ~threshold:6 @@ fun () ->
  let c = case_for 0x9707 in
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let v =
    Workload.random rng mint ~named c.Test_engines.idx c.Test_engines.pres
  in
  let e =
    Stub_opt.compile_encoder ~enc:Encoding.xdr ~mint ~named
      (Test_engines.roots_of c)
  in
  let i0, p0, s0 = tiers () in
  let expect = encode_to e v in
  (* calls 2..5: below the threshold, still interpreted *)
  for _ = 2 to 5 do
    Alcotest.(check string) "bytes stable while interpreted" expect
      (encode_to e v)
  done;
  let i1, p1, s1 = tiers () in
  Alcotest.(check int) "five interpreted calls" (i0 + 5) i1;
  Alcotest.(check int) "no promotion below the threshold" p0 p1;
  Alcotest.(check int) "no staged calls below the threshold" s0 s1;
  (* call 6: runs interpreted and promotes *)
  Alcotest.(check string) "bytes stable at the threshold" expect
    (encode_to e v);
  let i2, p2, s2 = tiers () in
  Alcotest.(check int) "threshold call still interpreted" (i0 + 6) i2;
  Alcotest.(check int) "promotion exactly at the threshold" (p0 + 1) p2;
  Alcotest.(check int) "threshold call not yet staged" s0 s2;
  (* calls 7..9: staged, bytes unchanged across the boundary *)
  for _ = 7 to 9 do
    Alcotest.(check string) "bytes stable after promotion" expect
      (encode_to e v)
  done;
  let i3, p3, s3 = tiers () in
  Alcotest.(check int) "interpreted count frozen after promotion" (i0 + 6) i3;
  Alcotest.(check int) "exactly one promotion" (p0 + 1) p3;
  Alcotest.(check int) "three staged calls" (s0 + 3) s3

let threshold_one_test () =
  with_stage ~threshold:1 @@ fun () ->
  let c = case_for 0x1707 in
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let v =
    Workload.random rng mint ~named c.Test_engines.idx c.Test_engines.pres
  in
  let e =
    Stub_opt.compile_encoder ~enc:Encoding.cdr ~mint ~named
      (Test_engines.roots_of c)
  in
  let i0, p0, s0 = tiers () in
  let expect = encode_to e v in
  let i1, p1, s1 = tiers () in
  Alcotest.(check int) "first call interpreted" (i0 + 1) i1;
  Alcotest.(check int) "first call promotes" (p0 + 1) p1;
  Alcotest.(check int) "first call not staged" s0 s1;
  Alcotest.(check string) "bytes stable across promotion" expect
    (encode_to e v);
  let i2, p2, s2 = tiers () in
  Alcotest.(check int) "second call not interpreted" (i0 + 1) i2;
  Alcotest.(check int) "still one promotion" (p0 + 1) p2;
  Alcotest.(check int) "second call staged" (s0 + 1) s2

let promotion_decode_test () =
  with_stage ~threshold:7 @@ fun () ->
  let c = case_for 0x3707 in
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let v =
    Workload.random rng mint ~named c.Test_engines.idx c.Test_engines.pres
  in
  let enc = Encoding.mach3 in
  (* encode through the plan executor directly so the encoder side's
     own tier bookkeeping stays out of the counters under test *)
  let plan = Plan_cache.plan ~enc ~mint ~named (Test_engines.roots_of c) in
  let wire = Bytes.of_string (encode_to (Stub_opt.encoder_of_plan ~enc plan) v) in
  let d =
    Stub_opt.compile_decoder ~enc ~mint ~named (Test_engines.droots_of c)
  in
  let decode_once () =
    match d (Mbuf.reader_of_bytes wire) with
    | [| v' |] ->
        Alcotest.(check bool) "decoded value stable" true (Value.equal v v')
    | _ -> Alcotest.fail "wrong arity"
  in
  let i0, p0, s0 = tiers () in
  for _ = 1 to 6 do decode_once () done;
  let i1, p1, s1 = tiers () in
  Alcotest.(check int) "six interpreted decodes" (i0 + 6) i1;
  Alcotest.(check int) "no promotion below the threshold" p0 p1;
  Alcotest.(check int) "no staged decodes below the threshold" s0 s1;
  decode_once ();
  let i2, p2, s2 = tiers () in
  Alcotest.(check int) "threshold decode still interpreted" (i0 + 7) i2;
  Alcotest.(check int) "promotion exactly at the threshold" (p0 + 1) p2;
  Alcotest.(check int) "threshold decode not yet staged" s0 s2;
  decode_once ();
  decode_once ();
  let i3, p3, s3 = tiers () in
  Alcotest.(check int) "interpreted count frozen after promotion" (i0 + 7) i3;
  Alcotest.(check int) "exactly one promotion" (p0 + 1) p3;
  Alcotest.(check int) "two staged decodes" (s0 + 2) s3

(* -- fallback: recursive plans stay at tier 0 ------------------------ *)

let fallback_test () =
  with_stage ~threshold:9 @@ fun () ->
  let c = Test_engines.linked_list_case () in
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let v = Test_engines.list_value 7 in
  let enc = Encoding.xdr in
  let plan = Plan_cache.plan ~enc ~mint ~named (Test_engines.roots_of c) in
  Alcotest.(check bool) "recursive plan is unstageable" false
    (Plan_stage.stageable plan);
  (match Stub_opt.staged_encoder_of_plan ~enc plan with
  | None -> ()
  | Some _ -> Alcotest.fail "staged encoder built for a recursive plan");
  let dplan = Plan_cache.dplan ~enc ~mint ~named (dplan_droots c) in
  Alcotest.(check bool) "recursive decode plan is unstageable" false
    (Dplan_stage.stageable dplan);
  (match Stub_opt.staged_decoder_of_dplan ~enc dplan with
  | None -> ()
  | Some _ -> Alcotest.fail "staged decoder built for a recursive plan");
  (* the cached entry points count the declined plans ... *)
  let f0 = counter "stage.fallbacks" in
  let e =
    Stub_opt.compile_encoder ~enc ~mint ~named (Test_engines.roots_of c)
  in
  Alcotest.(check int) "encoder fallback counted" (f0 + 1)
    (counter "stage.fallbacks");
  let d =
    Stub_opt.compile_decoder ~enc ~mint ~named (Test_engines.droots_of c)
  in
  Alcotest.(check int) "decoder fallback counted" (f0 + 2)
    (counter "stage.fallbacks");
  (* ... and the fallback closures run correctly, entirely at tier 0 *)
  let _, p0, s0 = tiers () in
  let wire = encode_to e v in
  let naive =
    Test_engines.encode_with
      (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
      enc c (Test_engines.roots_of c) v
  in
  Alcotest.(check string) "fallback bytes = naive" naive wire;
  (match d (Mbuf.reader_of_bytes (Bytes.of_string wire)) with
  | [| v' |] ->
      Alcotest.(check bool) "fallback roundtrip" true (Value.equal v v')
  | _ -> Alcotest.fail "wrong arity");
  let _, p1, s1 = tiers () in
  Alcotest.(check int) "no promotion on the fallback path" p0 p1;
  Alcotest.(check int) "no staged calls on the fallback path" s0 s1

(* -- pool hygiene across a mid-run promotion ------------------------- *)

let serve_pool_test () =
  with_stage ~threshold:3 @@ fun () ->
  let before = Mbuf.pool_stats () in
  let _, p0, s0 = tiers () in
  let sp = Rpc_serve.run_workload ~requests_per_conn:25 ~conns:4 () in
  Alcotest.(check bool) "every reply byte-identical" true
    sp.Rpc_serve.sp_diff_ok;
  let _, p1, s1 = tiers () in
  Alcotest.(check bool) "promotion happened mid-run" true (p1 > p0);
  Alcotest.(check bool) "staged closures served requests" true (s1 > s0);
  let after = Mbuf.pool_stats () in
  Alcotest.(check int) "writers all returned to the pool"
    before.Mbuf.writers_outstanding after.Mbuf.writers_outstanding;
  Alcotest.(check int) "readers all returned to the pool"
    before.Mbuf.readers_outstanding after.Mbuf.readers_outstanding

let unit_tests =
  [
    Alcotest.test_case "encoder promotes exactly at the threshold" `Quick
      promotion_encode_test;
    Alcotest.test_case "threshold 1 promotes on the first call" `Quick
      threshold_one_test;
    Alcotest.test_case "decoder promotes exactly at the threshold" `Quick
      promotion_decode_test;
    Alcotest.test_case "recursive plans fall back to tier 0" `Quick
      fallback_test;
    Alcotest.test_case "staged serve run returns every pooled buffer" `Quick
      serve_pool_test;
  ]

let suite =
  [ ("stage:properties", property_tests); ("stage:promotion", unit_tests) ]
