(* Wire-level tests: marshal buffers and golden byte layouts.

   The XDR vectors follow RFC 1832's worked example conventions; the
   CDR vectors check GIOP's alignment and NUL-counted strings. *)

let test name f = Alcotest.test_case name `Quick f

let hex b =
  String.concat ""
    (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (String.to_seq (Bytes.to_string b)))))

let mbuf_tests =
  [
    test "append and read back every width" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_u8 b 0xAB;
        Mbuf.put_i16 b ~be:true 0x1234;
        Mbuf.put_i32 b ~be:true 0x01020304;
        Mbuf.put_i64 b ~be:true 0x1122334455667788L;
        Mbuf.put_f64 b ~be:true 1.5;
        let r = Mbuf.reader b in
        Alcotest.(check int) "u8" 0xAB (Mbuf.read_u8 r);
        Alcotest.(check int) "i16" 0x1234 (Mbuf.read_i16 r ~be:true);
        Alcotest.(check int) "i32" 0x01020304 (Mbuf.read_i32 r ~be:true);
        Alcotest.(check int64) "i64" 0x1122334455667788L (Mbuf.read_i64 r ~be:true);
        Alcotest.(check (float 0.)) "f64" 1.5 (Mbuf.read_f64 r ~be:true));
    test "little endian stores" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_i32 b ~be:false 0x01020304;
        Alcotest.(check string) "layout" "04030201" (hex (Mbuf.contents b)));
    test "align pads with zeros" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_u8 b 0xFF;
        Mbuf.align b 4;
        Mbuf.put_u8 b 0xEE;
        Alcotest.(check string) "layout" "ff000000ee" (hex (Mbuf.contents b)));
    test "growth preserves contents" (fun () ->
        let b = Mbuf.create 4 in
        for i = 0 to 999 do
          Mbuf.put_i32 b ~be:true i
        done;
        let r = Mbuf.reader b in
        for i = 0 to 999 do
          Alcotest.(check int) "value" i (Mbuf.read_i32 r ~be:true)
        done);
    test "reader bounds are enforced" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_i32 b ~be:true 7;
        let r = Mbuf.reader b in
        ignore (Mbuf.read_i32 r ~be:true);
        match Mbuf.read_u8 r with
        | _ -> Alcotest.fail "expected Short_buffer"
        | exception Mbuf.Short_buffer -> ());
    test "set at offset then advance (chunk discipline)" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.ensure b 8;
        Mbuf.set_i32_be b 4 0xBEEF;
        Mbuf.set_i32_be b 0 0xCAFE;
        Mbuf.advance b 8;
        Alcotest.(check string) "layout" "0000cafe0000beef" (hex (Mbuf.contents b)));
  ]

(* Scatter-gather: borrowed segments, segmented readers, the pools, and
   the writer-reuse aliasing contract pinned in mbuf.mli. *)

let sg_tests =
  [
    test "borrow splices payload by reference" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.put_i32 b ~be:true 0xAABB;
        let payload = String.make 600 'x' in
        Mbuf.put_borrow_string b payload 0 600;
        Mbuf.put_i32 b ~be:true 0xCCDD;
        Alcotest.(check int) "pos" 608 (Mbuf.pos b);
        Alcotest.(check int) "segments" 3 (Mbuf.segment_count b);
        let st = Mbuf.stats b in
        Alcotest.(check int) "borrowed bytes" 600 st.Mbuf.bytes_borrowed;
        Alcotest.(check int) "borrows" 1 st.Mbuf.borrows;
        let c = Mbuf.contents b in
        Alcotest.(check int) "flat length" 608 (Bytes.length c);
        Alcotest.(check string) "payload lands between the ints" payload
          (Bytes.sub_string c 4 600);
        Alcotest.(check string) "suffix" "0000ccdd"
          (hex (Bytes.sub c 604 4)));
    test "iter_segments walks the message in order without flattening"
      (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.put_u8 b 0x01;
        Mbuf.put_borrow_string b "abc" 0 3;
        Mbuf.put_u8 b 0x02;
        let acc = Buffer.create 8 in
        Mbuf.iter_segments b (fun base off len ->
            Buffer.add_subbytes acc base off len);
        Alcotest.(check string) "bytes" "0161626302" (hex (Buffer.to_bytes acc));
        Alcotest.(check int) "no flatten" 0 (Mbuf.stats b).Mbuf.flattens);
    test "multi-width reads gather across a borrow boundary" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.put_u8 b 0x01;
        Mbuf.put_borrow_string b "\x02\x03\x04" 0 3;
        Mbuf.put_u8 b 0x05;
        Mbuf.put_i64 b ~be:true 0x1122334455667788L;
        let r = Mbuf.reader b in
        (* the i32 spans active/borrow/active: need pulls it together *)
        Alcotest.(check int) "spanning i32" 0x01020304
          (Mbuf.read_i32 r ~be:true);
        Alcotest.(check int) "next byte" 0x05 (Mbuf.read_u8 r);
        Alcotest.(check int64) "i64 after the span" 0x1122334455667788L
          (Mbuf.read_i64 r ~be:true);
        Alcotest.(check int) "global position" 13 (Mbuf.rpos r);
        Alcotest.(check int) "fully consumed" 0 (Mbuf.remaining r));
    test "bulk read gathers across segments" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.put_u8 b 0xFF;
        Mbuf.put_borrow_string b "hello world" 0 11;
        Mbuf.put_u8 b 0xEE;
        let r = Mbuf.reader b in
        Alcotest.(check int) "lead" 0xFF (Mbuf.read_u8 r);
        Alcotest.(check string) "spanning read_string" "hello world\xee"
          (Mbuf.read_string r 12));
    test "truncation mid-segment raises Short_buffer" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.put_i32 b ~be:true 600;
        Mbuf.put_borrow_string b (String.make 600 'y') 0 600;
        (* cut 300 bytes into the borrowed segment *)
        let r = Mbuf.reader ~len:304 b in
        Alcotest.(check int) "length header" 600 (Mbuf.read_i32 r ~be:true);
        Alcotest.(check int) "readable prefix" 300
          (Bytes.length (Mbuf.read_bytes r 300));
        (match Mbuf.read_u8 r with
        | _ -> Alcotest.fail "expected Short_buffer"
        | exception Mbuf.Short_buffer -> ());
        (* a spanning datum cut by the truncation also fails cleanly *)
        let r2 = Mbuf.reader ~len:6 b in
        Mbuf.skip r2 4;
        match Mbuf.read_i32 r2 ~be:true with
        | _ -> Alcotest.fail "expected Short_buffer"
        | exception Mbuf.Short_buffer -> ());
    test "ensure reservation survives an interleaved borrow" (fun () ->
        (* the hoisted Ensure_count shape: reserve, store, borrow, store *)
        let b = Mbuf.create 16 in
        Mbuf.ensure b 16;
        Mbuf.set_i32_be b 0 0x1111;
        Mbuf.advance b 4;
        Mbuf.put_borrow_string b (String.make 700 'z') 0 700;
        Mbuf.set_i32_be b 0 0x2222;
        Mbuf.advance b 4;
        let c = Mbuf.contents b in
        Alcotest.(check int) "length" 708 (Bytes.length c);
        Alcotest.(check string) "head" "00001111" (hex (Bytes.sub c 0 4));
        Alcotest.(check string) "tail" "00002222" (hex (Bytes.sub c 704 4)));
    (* the writer-reuse aliasing regression (mbuf.mli contract):
       bytes handed out by unsafe_contents/view, and borrowed payloads,
       must survive a subsequent reset+encode on the same writer *)
    test "unsafe_contents is not corrupted by reset+reencode" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.put_i32 b ~be:true 0x11111111;
        let kept, klen = Mbuf.view b in
        Alcotest.(check int) "view length" 4 klen;
        Mbuf.reset b;
        Mbuf.put_i32 b ~be:true 0x22222222;
        Mbuf.put_i32 b ~be:true 0x33333333;
        Alcotest.(check string) "old message intact" "11111111"
          (hex (Bytes.sub kept 0 4)));
    test "segmented unsafe_contents survives reset+reencode" (fun () ->
        let b = Mbuf.create 16 in
        let payload = String.make 600 'p' in
        Mbuf.put_i32 b ~be:true 600;
        Mbuf.put_borrow_string b payload 0 600;
        let kept = Mbuf.unsafe_contents b in
        let snapshot = Bytes.sub kept 0 (Mbuf.pos b) in
        Mbuf.reset b;
        Mbuf.put_i32 b ~be:true 3;
        Mbuf.put_borrow_string b "abc" 0 3;
        ignore (Mbuf.unsafe_contents b);
        Alcotest.(check string) "old flat message intact" (hex snapshot)
          (hex (Bytes.sub kept 0 604));
        Alcotest.(check string) "borrowed source never mutated"
          (String.make 600 'p') payload);
    test "pooled writer reuse keeps messages independent" (fun () ->
        let w = Mbuf.acquire ~size:64 () in
        Mbuf.put_i32 w ~be:true 0xAAAA;
        let first = Mbuf.unsafe_contents w in
        let fsnap = hex (Bytes.sub first 0 4) in
        Mbuf.release w;
        let w2 = Mbuf.acquire () in
        Alcotest.(check bool) "pool returned the same writer" true (w == w2);
        Alcotest.(check int) "came back reset" 0 (Mbuf.pos w2);
        Mbuf.put_i32 w2 ~be:true 0xBBBB;
        Alcotest.(check string) "first message intact" fsnap
          (hex (Bytes.sub first 0 4));
        Mbuf.release w2);
    test "reader pool round-trips" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.put_i32 b ~be:true 42;
        let r = Mbuf.acquire_reader b in
        Alcotest.(check int) "value" 42 (Mbuf.read_i32 r ~be:true);
        Mbuf.release_reader r;
        let r2 = Mbuf.acquire_reader b in
        Alcotest.(check bool) "pool returned the same reader" true (r == r2);
        Alcotest.(check int) "value again" 42 (Mbuf.read_i32 r2 ~be:true);
        Mbuf.release_reader r2);
    test "borrow threshold validates and gates eligibility" (fun () ->
        let old = Mbuf.borrow_threshold () in
        Fun.protect
          ~finally:(fun () -> Mbuf.set_borrow_threshold old)
          (fun () ->
            Mbuf.set_borrow_threshold 8;
            Alcotest.(check bool) "8 eligible" true (Mbuf.borrow_eligible 8);
            Alcotest.(check bool) "7 not" false (Mbuf.borrow_eligible 7);
            (match Mbuf.set_borrow_threshold 0 with
            | _ -> Alcotest.fail "expected Invalid_argument"
            | exception Invalid_argument _ -> ());
            Mbuf.set_sg_enabled false;
            Alcotest.(check bool) "disabled gates everything" false
              (Mbuf.borrow_eligible 1_000_000);
            Mbuf.set_sg_enabled true));
  ]

(* golden vectors through the optimized engine *)
let encode_with enc mint pres value =
  let encoder =
    Stub_opt.compile_encoder ~enc ~mint ~named:[]
      [
        Plan_compile.Rvalue
          (Mplan.Rparam { index = 0; name = "v"; deref = false },
           (match pres with `P (idx, _) -> idx),
           (match pres with `P (_, p) -> p));
      ]
  in
  let b = Mbuf.create 64 in
  encoder b [| value |];
  hex (Mbuf.contents b)

let golden name enc build expected =
  test name (fun () ->
      let mint = Mint.create () in
      let idx, pres, value = build mint in
      Alcotest.(check string) name expected
        (encode_with enc mint (`P (idx, pres)) value))

let xdr_goldens =
  [
    (* RFC 1832: integers are 4-byte big-endian two's complement *)
    golden "xdr: -1 is ffffffff" Encoding.xdr
      (fun m -> (Mint.int32 m, Pres.Direct, Value.Vint (-1)))
      "ffffffff";
    golden "xdr: bool true is 4 bytes" Encoding.xdr
      (fun m -> (Mint.bool_ m, Pres.Direct, Value.Vbool true))
      "00000001";
    golden "xdr: hyper" Encoding.xdr
      (fun m ->
        (Mint.int_ m ~bits:64 ~signed:true, Pres.Direct, Value.Vint64 0x1122334455667788L))
      "1122334455667788";
    (* RFC 1832 section 3.11's style of example: the string "sillyprog"
       (9 bytes) occupies a 4-byte length plus 12 bytes of data+pad *)
    golden "xdr: string pads to 4" Encoding.xdr
      (fun m ->
        (Mint.string_ m ~max_len:None, Pres.Terminated_string,
         Value.Vstring "sillyprog"))
      "0000000973696c6c7970726f67000000";
    golden "xdr: opaque<> with 3 bytes" Encoding.xdr
      (fun m ->
        ( Mint.array m ~elem:(Mint.int_ m ~bits:8 ~signed:false) ~min_len:0
            ~max_len:None,
          Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = Pres.Direct },
          Value.Vbytes (Bytes.of_string "\001\002\003") ))
      "0000000301020300";
    golden "xdr: variable int array" Encoding.xdr
      (fun m ->
        ( Mint.array m ~elem:(Mint.int32 m) ~min_len:0 ~max_len:None,
          Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = Pres.Direct },
          Value.Vint_array [| 1; 2 |] ))
      "000000020000000100000002";
    golden "xdr: optional present" Encoding.xdr
      (fun m ->
        ( Mint.array m ~elem:(Mint.int32 m) ~min_len:0 ~max_len:(Some 1),
          Pres.Opt_ptr Pres.Direct,
          Value.Vopt (Some (Value.Vint 5)) ))
      "0000000100000005";
    golden "xdr: small ints widen to 4 bytes" Encoding.xdr
      (fun m ->
        (Mint.int_ m ~bits:16 ~signed:true, Pres.Direct, Value.Vint (-2)))
      "fffffffe";
  ]

let cdr_goldens =
  [
    (* CDR strings count the terminating NUL *)
    golden "cdr: string counts its NUL" Encoding.cdr
      (fun m ->
        (Mint.string_ m ~max_len:None, Pres.Terminated_string, Value.Vstring "abc"))
      "0000000461626300";
    golden "cdr: char is one byte" Encoding.cdr
      (fun m -> (Mint.char8 m, Pres.Direct, Value.Vchar 'A'))
      "41";
    golden "cdr: natural alignment inserts padding" Encoding.cdr
      (fun m ->
        ( Mint.struct_ m [ ("c", Mint.char8 m); ("n", Mint.int32 m) ],
          Pres.Struct [ ("c", Pres.Direct); ("n", Pres.Direct) ],
          Value.Vstruct [| Value.Vchar 'x'; Value.Vint 1 |] ))
      "7800000000000001";
    golden "cdr: double aligns to 8" Encoding.cdr
      (fun m ->
        ( Mint.struct_ m [ ("n", Mint.int32 m); ("d", Mint.float_ m ~bits:64) ],
          Pres.Struct [ ("n", Pres.Direct); ("d", Pres.Direct) ],
          Value.Vstruct [| Value.Vint 1; Value.Vfloat 1.0 |] ))
      ("0000000100000000" ^ "3ff0000000000000");
    golden "cdr: bool is one byte" Encoding.cdr
      (fun m -> (Mint.bool_ m, Pres.Direct, Value.Vbool true))
      "01";
  ]

let fluke_goldens =
  [
    golden "fluke: little endian packed" Encoding.fluke
      (fun m ->
        ( Mint.struct_ m [ ("a", Mint.int32 m); ("b", Mint.int32 m) ],
          Pres.Struct [ ("a", Pres.Direct); ("b", Pres.Direct) ],
          Value.Vstruct [| Value.Vint 1; Value.Vint 2 |] ))
      "0100000002000000";
  ]

let mach_goldens =
  [
    golden "mach3: type descriptor precedes the datum" Encoding.mach3
      (fun m -> (Mint.int32 m, Pres.Direct, Value.Vint 7))
      (* 'MTDP' descriptor little-endian then the value *)
      "5044544d07000000";
  ]

(* Failure injection against *cached* decoders: Stub_opt memoizes
   decoder closures, so the decoder under attack here is a cache hit.
   Malformed input must raise the same typed errors as from a fresh
   decoder, and the closure must keep working on valid input
   afterwards (no state is poisoned by a failed decode). *)

let cached_failure_tests =
  let union_spec () =
    let m = Mint.create () in
    let seq =
      Mint.array m ~elem:(Mint.int32 m) ~min_len:0 ~max_len:(Some 8)
    in
    let u =
      Mint.union m ~discrim:(Mint.int32 m)
        ~cases:
          [
            { Mint.c_const = Mint.Cint 1L; c_body = Mint.int32 m };
            { Mint.c_const = Mint.Cint 2L; c_body = seq };
          ]
        ~default:None
    in
    let pres =
      Pres.Union
        {
          discrim_field = "_d";
          union_field = "_u";
          arms =
            [
              ("n", Pres.Direct);
              ( "xs",
                Pres.Counted_seq
                  { len_field = "len"; buf_field = "val"; elem = Pres.Direct }
              );
            ];
          default_arm = None;
        }
    in
    (m, u, pres)
  in
  let cached_decoder ~enc m u pres =
    let droots = [ Stub_opt.Dvalue (u, pres) ] in
    (* compile twice: the one we attack is served from the cache *)
    let first = Stub_opt.compile_decoder ~enc ~mint:m ~named:[] droots in
    let dec = Stub_opt.compile_decoder ~enc ~mint:m ~named:[] droots in
    Alcotest.(check bool) "decoder came from the cache" true (first == dec);
    dec
  in
  let reader_of s = Mbuf.reader_of_bytes (Bytes.of_string s) in
  [
    test "cached decoder raises Short_buffer on every truncation" (fun () ->
        let m, u, pres = union_spec () in
        let enc = Encoding.xdr in
        let dec = cached_decoder ~enc m u pres in
        let enc_fn = Stub_opt.compile_encoder ~enc ~mint:m ~named:[]
            [ Plan_compile.Rvalue
                (Mplan.Rparam { index = 0; name = "u"; deref = false }, u, pres) ]
        in
        let buf = Mbuf.create 64 in
        enc_fn buf
          [| Value.Vunion
               { case = 1; discrim = Mint.Cint 2L;
                 payload = Value.Vint_array [| 10; 20; 30 |] } |];
        let bytes = Bytes.to_string (Mbuf.contents buf) in
        (* sanity: the full message decodes *)
        (match dec (reader_of bytes) with
        | [| Value.Vunion { case = 1; _ } |] -> ()
        | _ -> Alcotest.fail "expected the sequence arm back");
        (* every strict prefix fails with a typed error, never succeeds:
           the discriminator and the length header promise more bytes *)
        for cut = 0 to String.length bytes - 1 do
          match dec (reader_of (String.sub bytes 0 cut)) with
          | _ -> Alcotest.failf "truncation at %d decoded" cut
          | exception Mbuf.Short_buffer -> ()
          | exception Codec.Decode_error _ -> ()
        done);
    test "cached decoder rejects a bad union discriminator" (fun () ->
        let m, u, pres = union_spec () in
        let enc = Encoding.cdr in
        let dec = cached_decoder ~enc m u pres in
        let buf = Mbuf.create 16 in
        Mbuf.put_i32 buf ~be:true 9 (* no such case *);
        Mbuf.put_i32 buf ~be:true 7;
        (match dec (Mbuf.reader buf) with
        | _ -> Alcotest.fail "expected a decode error"
        | exception Codec.Decode_error _ -> ());
        (* the same cached closure still decodes valid input *)
        let ok = Mbuf.create 16 in
        Mbuf.put_i32 ok ~be:true 1;
        Mbuf.put_i32 ok ~be:true 42;
        match dec (Mbuf.reader ok) with
        | [| Value.Vunion { case = 0; payload = Value.Vint 42; _ } |] -> ()
        | _ -> Alcotest.fail "cached decoder poisoned by failed decode");
    test "cached decoder rejects an oversized sequence length" (fun () ->
        let m, u, pres = union_spec () in
        let enc = Encoding.xdr in
        let dec = cached_decoder ~enc m u pres in
        let buf = Mbuf.create 64 in
        Mbuf.put_i32 buf ~be:true 2 (* the sequence arm *);
        Mbuf.put_i32 buf ~be:true 99 (* claims 99 > bound 8 *);
        for i = 1 to 99 do
          Mbuf.put_i32 buf ~be:true i
        done;
        match dec (Mbuf.reader buf) with
        | _ -> Alcotest.fail "expected a decode error"
        | exception Codec.Decode_error _ -> ());
  ]

let suite =
  [
    ("wire:mbuf", mbuf_tests);
    ("wire:scatter-gather", sg_tests);
    ("wire:xdr-golden", xdr_goldens);
    ("wire:cdr-golden", cdr_goldens);
    ("wire:fluke-golden", fluke_goldens);
    ("wire:mach-golden", mach_goldens);
    ("wire:cached-decoder-failures", cached_failure_tests);
  ]
