(* Wire-level tests: marshal buffers and golden byte layouts.

   The XDR vectors follow RFC 1832's worked example conventions; the
   CDR vectors check GIOP's alignment and NUL-counted strings. *)

let test name f = Alcotest.test_case name `Quick f

let hex b =
  String.concat ""
    (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (String.to_seq (Bytes.to_string b)))))

let mbuf_tests =
  [
    test "append and read back every width" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_u8 b 0xAB;
        Mbuf.put_i16 b ~be:true 0x1234;
        Mbuf.put_i32 b ~be:true 0x01020304;
        Mbuf.put_i64 b ~be:true 0x1122334455667788L;
        Mbuf.put_f64 b ~be:true 1.5;
        let r = Mbuf.reader b in
        Alcotest.(check int) "u8" 0xAB (Mbuf.read_u8 r);
        Alcotest.(check int) "i16" 0x1234 (Mbuf.read_i16 r ~be:true);
        Alcotest.(check int) "i32" 0x01020304 (Mbuf.read_i32 r ~be:true);
        Alcotest.(check int64) "i64" 0x1122334455667788L (Mbuf.read_i64 r ~be:true);
        Alcotest.(check (float 0.)) "f64" 1.5 (Mbuf.read_f64 r ~be:true));
    test "little endian stores" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_i32 b ~be:false 0x01020304;
        Alcotest.(check string) "layout" "04030201" (hex (Mbuf.contents b)));
    test "align pads with zeros" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_u8 b 0xFF;
        Mbuf.align b 4;
        Mbuf.put_u8 b 0xEE;
        Alcotest.(check string) "layout" "ff000000ee" (hex (Mbuf.contents b)));
    test "growth preserves contents" (fun () ->
        let b = Mbuf.create 4 in
        for i = 0 to 999 do
          Mbuf.put_i32 b ~be:true i
        done;
        let r = Mbuf.reader b in
        for i = 0 to 999 do
          Alcotest.(check int) "value" i (Mbuf.read_i32 r ~be:true)
        done);
    test "reader bounds are enforced" (fun () ->
        let b = Mbuf.create 4 in
        Mbuf.put_i32 b ~be:true 7;
        let r = Mbuf.reader b in
        ignore (Mbuf.read_i32 r ~be:true);
        match Mbuf.read_u8 r with
        | _ -> Alcotest.fail "expected Short_buffer"
        | exception Mbuf.Short_buffer -> ());
    test "set at offset then advance (chunk discipline)" (fun () ->
        let b = Mbuf.create 16 in
        Mbuf.ensure b 8;
        Mbuf.set_i32_be b 4 0xBEEF;
        Mbuf.set_i32_be b 0 0xCAFE;
        Mbuf.advance b 8;
        Alcotest.(check string) "layout" "0000cafe0000beef" (hex (Mbuf.contents b)));
  ]

(* golden vectors through the optimized engine *)
let encode_with enc mint pres value =
  let encoder =
    Stub_opt.compile_encoder ~enc ~mint ~named:[]
      [
        Plan_compile.Rvalue
          (Mplan.Rparam { index = 0; name = "v"; deref = false },
           (match pres with `P (idx, _) -> idx),
           (match pres with `P (_, p) -> p));
      ]
  in
  let b = Mbuf.create 64 in
  encoder b [| value |];
  hex (Mbuf.contents b)

let golden name enc build expected =
  test name (fun () ->
      let mint = Mint.create () in
      let idx, pres, value = build mint in
      Alcotest.(check string) name expected
        (encode_with enc mint (`P (idx, pres)) value))

let xdr_goldens =
  [
    (* RFC 1832: integers are 4-byte big-endian two's complement *)
    golden "xdr: -1 is ffffffff" Encoding.xdr
      (fun m -> (Mint.int32 m, Pres.Direct, Value.Vint (-1)))
      "ffffffff";
    golden "xdr: bool true is 4 bytes" Encoding.xdr
      (fun m -> (Mint.bool_ m, Pres.Direct, Value.Vbool true))
      "00000001";
    golden "xdr: hyper" Encoding.xdr
      (fun m ->
        (Mint.int_ m ~bits:64 ~signed:true, Pres.Direct, Value.Vint64 0x1122334455667788L))
      "1122334455667788";
    (* RFC 1832 section 3.11's style of example: the string "sillyprog"
       (9 bytes) occupies a 4-byte length plus 12 bytes of data+pad *)
    golden "xdr: string pads to 4" Encoding.xdr
      (fun m ->
        (Mint.string_ m ~max_len:None, Pres.Terminated_string,
         Value.Vstring "sillyprog"))
      "0000000973696c6c7970726f67000000";
    golden "xdr: opaque<> with 3 bytes" Encoding.xdr
      (fun m ->
        ( Mint.array m ~elem:(Mint.int_ m ~bits:8 ~signed:false) ~min_len:0
            ~max_len:None,
          Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = Pres.Direct },
          Value.Vbytes (Bytes.of_string "\001\002\003") ))
      "0000000301020300";
    golden "xdr: variable int array" Encoding.xdr
      (fun m ->
        ( Mint.array m ~elem:(Mint.int32 m) ~min_len:0 ~max_len:None,
          Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = Pres.Direct },
          Value.Vint_array [| 1; 2 |] ))
      "000000020000000100000002";
    golden "xdr: optional present" Encoding.xdr
      (fun m ->
        ( Mint.array m ~elem:(Mint.int32 m) ~min_len:0 ~max_len:(Some 1),
          Pres.Opt_ptr Pres.Direct,
          Value.Vopt (Some (Value.Vint 5)) ))
      "0000000100000005";
    golden "xdr: small ints widen to 4 bytes" Encoding.xdr
      (fun m ->
        (Mint.int_ m ~bits:16 ~signed:true, Pres.Direct, Value.Vint (-2)))
      "fffffffe";
  ]

let cdr_goldens =
  [
    (* CDR strings count the terminating NUL *)
    golden "cdr: string counts its NUL" Encoding.cdr
      (fun m ->
        (Mint.string_ m ~max_len:None, Pres.Terminated_string, Value.Vstring "abc"))
      "0000000461626300";
    golden "cdr: char is one byte" Encoding.cdr
      (fun m -> (Mint.char8 m, Pres.Direct, Value.Vchar 'A'))
      "41";
    golden "cdr: natural alignment inserts padding" Encoding.cdr
      (fun m ->
        ( Mint.struct_ m [ ("c", Mint.char8 m); ("n", Mint.int32 m) ],
          Pres.Struct [ ("c", Pres.Direct); ("n", Pres.Direct) ],
          Value.Vstruct [| Value.Vchar 'x'; Value.Vint 1 |] ))
      "7800000000000001";
    golden "cdr: double aligns to 8" Encoding.cdr
      (fun m ->
        ( Mint.struct_ m [ ("n", Mint.int32 m); ("d", Mint.float_ m ~bits:64) ],
          Pres.Struct [ ("n", Pres.Direct); ("d", Pres.Direct) ],
          Value.Vstruct [| Value.Vint 1; Value.Vfloat 1.0 |] ))
      ("0000000100000000" ^ "3ff0000000000000");
    golden "cdr: bool is one byte" Encoding.cdr
      (fun m -> (Mint.bool_ m, Pres.Direct, Value.Vbool true))
      "01";
  ]

let fluke_goldens =
  [
    golden "fluke: little endian packed" Encoding.fluke
      (fun m ->
        ( Mint.struct_ m [ ("a", Mint.int32 m); ("b", Mint.int32 m) ],
          Pres.Struct [ ("a", Pres.Direct); ("b", Pres.Direct) ],
          Value.Vstruct [| Value.Vint 1; Value.Vint 2 |] ))
      "0100000002000000";
  ]

let mach_goldens =
  [
    golden "mach3: type descriptor precedes the datum" Encoding.mach3
      (fun m -> (Mint.int32 m, Pres.Direct, Value.Vint 7))
      (* 'MTDP' descriptor little-endian then the value *)
      "5044544d07000000";
  ]

(* Failure injection against *cached* decoders: Stub_opt memoizes
   decoder closures, so the decoder under attack here is a cache hit.
   Malformed input must raise the same typed errors as from a fresh
   decoder, and the closure must keep working on valid input
   afterwards (no state is poisoned by a failed decode). *)

let cached_failure_tests =
  let union_spec () =
    let m = Mint.create () in
    let seq =
      Mint.array m ~elem:(Mint.int32 m) ~min_len:0 ~max_len:(Some 8)
    in
    let u =
      Mint.union m ~discrim:(Mint.int32 m)
        ~cases:
          [
            { Mint.c_const = Mint.Cint 1L; c_body = Mint.int32 m };
            { Mint.c_const = Mint.Cint 2L; c_body = seq };
          ]
        ~default:None
    in
    let pres =
      Pres.Union
        {
          discrim_field = "_d";
          union_field = "_u";
          arms =
            [
              ("n", Pres.Direct);
              ( "xs",
                Pres.Counted_seq
                  { len_field = "len"; buf_field = "val"; elem = Pres.Direct }
              );
            ];
          default_arm = None;
        }
    in
    (m, u, pres)
  in
  let cached_decoder ~enc m u pres =
    let droots = [ Stub_opt.Dvalue (u, pres) ] in
    (* compile twice: the one we attack is served from the cache *)
    let first = Stub_opt.compile_decoder ~enc ~mint:m ~named:[] droots in
    let dec = Stub_opt.compile_decoder ~enc ~mint:m ~named:[] droots in
    Alcotest.(check bool) "decoder came from the cache" true (first == dec);
    dec
  in
  let reader_of s = Mbuf.reader_of_bytes (Bytes.of_string s) in
  [
    test "cached decoder raises Short_buffer on every truncation" (fun () ->
        let m, u, pres = union_spec () in
        let enc = Encoding.xdr in
        let dec = cached_decoder ~enc m u pres in
        let enc_fn = Stub_opt.compile_encoder ~enc ~mint:m ~named:[]
            [ Plan_compile.Rvalue
                (Mplan.Rparam { index = 0; name = "u"; deref = false }, u, pres) ]
        in
        let buf = Mbuf.create 64 in
        enc_fn buf
          [| Value.Vunion
               { case = 1; discrim = Mint.Cint 2L;
                 payload = Value.Vint_array [| 10; 20; 30 |] } |];
        let bytes = Bytes.to_string (Mbuf.contents buf) in
        (* sanity: the full message decodes *)
        (match dec (reader_of bytes) with
        | [| Value.Vunion { case = 1; _ } |] -> ()
        | _ -> Alcotest.fail "expected the sequence arm back");
        (* every strict prefix fails with a typed error, never succeeds:
           the discriminator and the length header promise more bytes *)
        for cut = 0 to String.length bytes - 1 do
          match dec (reader_of (String.sub bytes 0 cut)) with
          | _ -> Alcotest.failf "truncation at %d decoded" cut
          | exception Mbuf.Short_buffer -> ()
          | exception Codec.Decode_error _ -> ()
        done);
    test "cached decoder rejects a bad union discriminator" (fun () ->
        let m, u, pres = union_spec () in
        let enc = Encoding.cdr in
        let dec = cached_decoder ~enc m u pres in
        let buf = Mbuf.create 16 in
        Mbuf.put_i32 buf ~be:true 9 (* no such case *);
        Mbuf.put_i32 buf ~be:true 7;
        (match dec (Mbuf.reader buf) with
        | _ -> Alcotest.fail "expected a decode error"
        | exception Codec.Decode_error _ -> ());
        (* the same cached closure still decodes valid input *)
        let ok = Mbuf.create 16 in
        Mbuf.put_i32 ok ~be:true 1;
        Mbuf.put_i32 ok ~be:true 42;
        match dec (Mbuf.reader ok) with
        | [| Value.Vunion { case = 0; payload = Value.Vint 42; _ } |] -> ()
        | _ -> Alcotest.fail "cached decoder poisoned by failed decode");
    test "cached decoder rejects an oversized sequence length" (fun () ->
        let m, u, pres = union_spec () in
        let enc = Encoding.xdr in
        let dec = cached_decoder ~enc m u pres in
        let buf = Mbuf.create 64 in
        Mbuf.put_i32 buf ~be:true 2 (* the sequence arm *);
        Mbuf.put_i32 buf ~be:true 99 (* claims 99 > bound 8 *);
        for i = 1 to 99 do
          Mbuf.put_i32 buf ~be:true i
        done;
        match dec (Mbuf.reader buf) with
        | _ -> Alcotest.fail "expected a decode error"
        | exception Codec.Decode_error _ -> ());
  ]

let suite =
  [
    ("wire:mbuf", mbuf_tests);
    ("wire:xdr-golden", xdr_goldens);
    ("wire:cdr-golden", cdr_goldens);
    ("wire:fluke-golden", fluke_goldens);
    ("wire:mach-golden", mach_goldens);
    ("wire:cached-decoder-failures", cached_failure_tests);
  ]
